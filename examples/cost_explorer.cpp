// Explores the price/performance trade-off space of worker configurations
// (the M and F knobs of Section 5.2) for a scan-heavy query, printing the
// pareto-optimal frontier a user would choose from.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cloud/cloud.h"
#include "common/units.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;  // NOLINT

namespace {

struct Point {
  int memory_mib;
  int files_per_worker;
  double latency_s;
  double cost_usd;
};

}  // namespace

int main() {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 200;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions load;
  load.num_rows = 64 * 500;
  load.num_files = 64;
  load.row_groups_per_file = 4;
  load.virtual_bytes_per_file = 500 * kMB;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", load));

  std::vector<Point> points;
  for (int mem : {512, 1024, 1792, 3008}) {
    for (int f : {1, 2, 4, 8}) {
      core::RunOptions opts;
      opts.memory_mib = mem;
      opts.files_per_worker = f;
      // Hot run (second execution) — the steady-state cost.
      auto q = workload::TpchQ1("s3://tpch/li/*.lpq");
      LAMBADA_CHECK(driver.RunToCompletion(q, opts).ok());
      auto report = driver.RunToCompletion(q, opts);
      LAMBADA_CHECK(report.ok()) << report.status().ToString();
      points.push_back(Point{mem, f, report->latency_s,
                             report->CostUsd(cloud.pricing())});
    }
  }

  std::printf("%-10s %-4s %-10s %-10s %s\n", "M [MiB]", "F", "latency",
              "cost", "pareto");
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.latency_s < b.latency_s;
  });
  double best_cost = 1e300;
  for (const auto& p : points) {
    bool pareto = p.cost_usd < best_cost;
    if (pareto) best_cost = p.cost_usd;
    std::printf("%-10d %-4d %-10s %-10s %s\n", p.memory_mib,
                p.files_per_worker, FormatSeconds(p.latency_s).c_str(),
                FormatUsd(p.cost_usd).c_str(), pareto ? "*" : "");
  }
  std::printf(
      "\n'*' marks the pareto frontier: no other configuration is both\n"
      "faster and cheaper. Which point to pick \"depends on her preference\n"
      "for price or speed\" (Section 5.2).\n");
  return 0;
}
