// Demonstrates the purely serverless exchange operator (Section 4.4): a
// query that repartitions data by key across workers through S3 — no
// always-on infrastructure — and compares the request footprint of the
// one-, two-, and three-level variants.

#include <cstdio>

#include "cloud/cloud.h"
#include "common/units.h"
#include "core/driver.h"
#include "core/exchange.h"
#include "format/writer.h"

using namespace lambada;  // NOLINT

namespace {

/// Builds a 16-file dataset of (user, clicks) events where every file
/// contains every user: a grouped aggregate *requires* a shuffle if groups
/// must end up co-located.
void LoadEvents(cloud::Cloud& cloud) {
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("events"));
  auto schema = std::make_shared<engine::Schema>(std::vector<engine::Field>{
      {"user", engine::DataType::kInt64},
      {"clicks", engine::DataType::kInt64}});
  Rng rng(11);
  for (int f = 0; f < 16; ++f) {
    std::vector<int64_t> user, clicks;
    for (int i = 0; i < 5000; ++i) {
      user.push_back(rng.UniformInt(1, 2000));
      clicks.push_back(rng.UniformInt(1, 20));
    }
    engine::TableChunk chunk(schema,
                             {engine::Column::Int64(std::move(user)),
                              engine::Column::Int64(std::move(clicks))});
    auto file = format::FileWriter::WriteTable(chunk);
    LAMBADA_CHECK_OK(file);
    LAMBADA_CHECK_OK(cloud.s3().PutDirect(
        "events", "day/part-" + std::to_string(f) + ".lpq",
        Buffer::FromVector(*std::move(file))));
  }
}

}  // namespace

int main() {
  using engine::Col;

  std::printf("exchange variants on a 16-worker shuffle:\n\n");
  std::printf("%-8s %-6s %8s %8s %8s %10s %10s\n", "variant", "levels",
              "PUTs", "GETs", "LISTs", "latency", "cost");
  for (int levels : {1, 2}) {
    for (bool wc : {false, true}) {
      cloud::Cloud cloud;
      core::Driver driver(&cloud);
      LAMBADA_CHECK_OK(driver.Install());
      LoadEvents(cloud);
      core::ExchangeSpec spec;
      spec.levels = levels;
      spec.write_combining = wc;
      spec.num_buckets = 8;
      auto query =
          core::Query::FromParquet("s3://events/day/*.lpq")
              .Repartition({"user"}, spec)
              .Aggregate({"user"}, {engine::Sum(Col("clicks"), "total")});
      auto report = driver.RunToCompletion(query, core::RunOptions{});
      LAMBADA_CHECK(report.ok()) << report.status().ToString();
      std::printf("%-8s %-6d %8lld %8lld %8lld %10s %10s\n",
                  wc ? "wc" : "basic", levels,
                  static_cast<long long>(report->cost.s3_put_requests),
                  static_cast<long long>(report->cost.s3_get_requests),
                  static_cast<long long>(report->cost.s3_list_requests),
                  FormatSeconds(report->latency_s).c_str(),
                  FormatUsd(report->CostUsd(cloud.pricing())).c_str());
      // Sanity: the grouped result is the same no matter the variant.
      LAMBADA_CHECK_EQ(report->result.num_rows(), 2000u);
    }
  }
  std::printf(
      "\nWrite combining turns O(P) writes per worker into one; the\n"
      "multi-level grid turns O(P) reads per worker into O(P^(1/levels)).\n"
      "The request model of Table 2 (per-variant totals for P workers):\n\n");
  std::printf("%-8s %10s %10s %10s\n", "variant", "reads", "writes",
              "lists");
  for (int levels : {1, 2, 3}) {
    for (bool wc : {false, true}) {
      auto c = core::PredictExchangeRequests(4096, levels, wc);
      std::printf("%dl%-6s %10.0f %10.0f %10.0f\n", levels,
                  wc ? "-wc" : "", c.reads, c.writes, c.lists);
    }
  }
  return 0;
}
