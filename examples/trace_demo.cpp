// Observability demo: run TPC-H Q3 with tracing on, write the Chrome
// trace_event JSON (load it at chrome://tracing or ui.perfetto.dev), and
// print the EXPLAIN ANALYZE rendering. CI runs this to produce the sample
// trace artifact; scripts/summarize_trace.py aggregates the JSON into a
// per-phase virtual-time breakdown.
//
// Usage: trace_demo [trace.json]   (default ./trace_q3.json)

#include <cstdio>

#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;  // NOLINT

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "trace_q3.json";

  cloud::Cloud cloud;
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  // The obs_test Q3 fixture: LINEITEM joined to ORDERS and CUSTOMER.
  workload::LoadOptions li;
  li.num_rows = 8000;
  li.num_files = 8;
  li.row_groups_per_file = 4;
  li.seed = 77;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
  workload::LoadOptions oo;
  oo.num_rows = workload::MaxOrderKey(workload::GenerateLineitem(li.num_rows, 77));
  oo.num_files = 4;
  oo.seed = 123;
  LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
  workload::LoadOptions co;
  co.num_rows = 60;
  co.num_files = 2;
  co.seed = 555;
  LAMBADA_CHECK_OK(workload::LoadCustomer(&cloud.s3(), "tpch", "customer/", co));

  core::RunOptions ropts;
  ropts.trace.enabled = true;
  ropts.trace.chrome_json_path = trace_path;
  auto q = workload::TpchQ3("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq",
                            "s3://tpch/customer/*.lpq");
  auto report = driver.RunToCompletion(q, ropts);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();
  LAMBADA_CHECK(!report->trace_path.empty()) << "trace JSON was not written";

  std::printf("%s\n", report->explain_analyze_text.c_str());
  std::printf("trace: %zu spans -> %s\n", report->trace->spans().size(),
              report->trace_path.c_str());
  return 0;
}
