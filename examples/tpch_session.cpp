// The "lone-wolf data scientist" session from the paper's introduction:
// interactive analytics on cold TPC-H data. The user explores with a
// sample query, then runs the full TPC-H Q1 and Q6, paying only for what
// runs — the dataset sits cold on S3 between queries.

#include <cstdio>

#include "common/units.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;  // NOLINT

namespace {

void PrintReport(const char* label, const core::QueryReport& r,
                 const cloud::Pricing& pricing) {
  std::printf("%-28s %10s   %10s   (%d workers)\n", label,
              FormatSeconds(r.latency_s).c_str(),
              FormatUsd(r.CostUsd(pricing)).c_str(), r.workers);
}

}  // namespace

int main() {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 400;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  // The cold dataset: LINEITEM at SF-1000 shape (320 files x ~500 MB),
  // sorted by l_shipdate.
  std::printf("loading LINEITEM (320 files, ~156 GiB modeled)...\n");
  workload::LoadOptions load;
  load.num_rows = 320 * 500;
  load.num_files = 320;
  load.row_groups_per_file = 4;
  load.virtual_bytes_per_file = 500 * kMB;
  auto info = workload::LoadLineitem(&cloud.s3(), "tpch", "li/", load);
  LAMBADA_CHECK_OK(info);
  std::printf("dataset: %d files, %s modeled\n\n", info->files,
              FormatBytes(info->virtual_bytes).c_str());

  std::printf("%-28s %10s   %10s\n", "query", "latency", "cost");

  // Session: first explore on a sample (a handful of files)...
  auto sample = workload::TpchQ6("s3://tpch/li/part-000?.lpq");
  auto sample_report = driver.RunToCompletion(sample, core::RunOptions{});
  LAMBADA_CHECK(sample_report.ok()) << sample_report.status().ToString();
  PrintReport("Q6 on a 10-file sample", *sample_report, cloud.pricing());

  // ... think ... then run the full queries. The think time costs nothing:
  // no cluster is running.
  auto q1 = driver.RunToCompletion(workload::TpchQ1("s3://tpch/li/*.lpq"),
                                   core::RunOptions{});
  LAMBADA_CHECK(q1.ok()) << q1.status().ToString();
  PrintReport("Q1 full (cold workers)", *q1, cloud.pricing());

  auto q1_hot = driver.RunToCompletion(workload::TpchQ1("s3://tpch/li/*.lpq"),
                                       core::RunOptions{});
  LAMBADA_CHECK(q1_hot.ok());
  PrintReport("Q1 full (hot workers)", *q1_hot, cloud.pricing());

  auto q6 = driver.RunToCompletion(workload::TpchQ6("s3://tpch/li/*.lpq"),
                                   core::RunOptions{});
  LAMBADA_CHECK(q6.ok());
  PrintReport("Q6 full", *q6, cloud.pricing());

  // Q1's pricing summary, as a user would see it.
  std::printf("\nTPC-H Q1 result (%zu groups):\n", q1->result.num_rows());
  const auto& r = q1->result;
  std::printf("%3s %3s %14s %12s %10s\n", "rf", "ls", "sum_qty",
              "avg_price", "count");
  for (size_t i = 0; i < r.num_rows(); ++i) {
    std::printf("%3lld %3lld %14.1f %12.2f %10lld\n",
                static_cast<long long>(r.column(0).i64()[i]),
                static_cast<long long>(r.column(1).i64()[i]),
                r.column(2).f64()[i], r.column(7).f64()[i],
                static_cast<long long>(r.column(9).i64()[i]));
  }
  return 0;
}
