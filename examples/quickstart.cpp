// Quickstart: the smallest end-to-end Lambada session.
//
// 1. Spin up a simulated serverless cloud (one AWS region).
// 2. Upload a small columnar dataset to (simulated) S3.
// 3. Install Lambada and run a filter-map-reduce query (Listing 1 of the
//    paper) on a fleet of serverless workers.
// 4. Print the result, the end-to-end latency, and the pay-per-use bill.

#include <cstdio>

#include "cloud/cloud.h"
#include "common/units.h"
#include "core/driver.h"
#include "engine/expr.h"
#include "format/writer.h"

using namespace lambada;  // NOLINT

int main() {
  // ---- 1. A simulated cloud region. ----
  cloud::Cloud cloud;

  // ---- 2. A dataset: 8 files of (product, price, rating). ----
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("shop"));
  auto schema = std::make_shared<engine::Schema>(std::vector<engine::Field>{
      {"product", engine::DataType::kInt64},
      {"price", engine::DataType::kFloat64},
      {"rating", engine::DataType::kFloat64}});
  Rng rng(2024);
  for (int f = 0; f < 8; ++f) {
    std::vector<int64_t> product;
    std::vector<double> price, rating;
    for (int i = 0; i < 10000; ++i) {
      product.push_back(rng.UniformInt(1, 500));
      price.push_back(rng.Uniform(1.0, 99.0));
      rating.push_back(rng.Uniform(0.0, 5.0));
    }
    engine::TableChunk chunk(
        schema, {engine::Column::Int64(std::move(product)),
                 engine::Column::Float64(std::move(price)),
                 engine::Column::Float64(std::move(rating))});
    auto file = format::FileWriter::WriteTable(chunk);
    LAMBADA_CHECK_OK(file);
    LAMBADA_CHECK_OK(cloud.s3().PutDirect(
        "shop", "sales/part-" + std::to_string(f) + ".lpq",
        Buffer::FromVector(*std::move(file))));
  }

  // ---- 3. Install Lambada and run a query. ----
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  using engine::Col;
  using engine::Lit;
  // "Revenue from well-rated items": filter -> map -> reduce.
  auto query = core::Query::FromParquet("s3://shop/sales/*.lpq")
                   .Filter(Col("rating") >= Lit(4.0))
                   .Map(Col("price") * Lit(1.08), "gross")  // Add tax.
                   .ReduceSum("gross");

  core::RunOptions options;
  options.memory_mib = 1792;
  options.files_per_worker = 1;
  auto report = driver.RunToCompletion(query, options);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();

  // ---- 4. Results. ----
  std::printf("revenue (rating >= 4.0): $%.2f\n",
              report->result.column(0).f64()[0]);
  std::printf("workers:                 %d\n", report->workers);
  std::printf("end-to-end latency:      %s\n",
              FormatSeconds(report->latency_s).c_str());
  std::printf("query bill:              %s\n",
              FormatUsd(report->CostUsd(cloud.pricing())).c_str());
  std::printf("\ncost breakdown:\n%s\n",
              report->cost.ToString(cloud.pricing()).c_str());
  return 0;
}
