// A batch SQL shell over Lambada: loads the TPC-H LINEITEM dataset and
// executes SQL statements (from argv, or a built-in demo script) through
// the serverless engine, printing results, latency, and cost per query.
// Statements starting with EXPLAIN ANALYZE run traced and print the
// annotated plan (docs/OBSERVABILITY.md) instead of rows.

#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "common/units.h"
#include "core/driver.h"
#include "core/sql.h"
#include "workload/tpch.h"

using namespace lambada;  // NOLINT

namespace {

void PrintResult(const engine::TableChunk& r) {
  for (size_t c = 0; c < r.num_columns(); ++c) {
    std::printf("%-18s", r.schema()->field(c).name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < std::min<size_t>(r.num_rows(), 20); ++row) {
    for (size_t c = 0; c < r.num_columns(); ++c) {
      if (r.column(c).type() == engine::DataType::kInt64) {
        std::printf("%-18lld",
                    static_cast<long long>(r.column(c).i64()[row]));
      } else {
        std::printf("%-18.4f", r.column(c).f64()[row]);
      }
    }
    std::printf("\n");
  }
  if (r.num_rows() > 20) {
    std::printf("... (%zu rows total)\n", r.num_rows());
  }
}

bool StartsWithExplain(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string word;
  while (i < sql.size() && std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word += static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[i++])));
  }
  return word == "EXPLAIN";
}

/// Synchronous wrapper around core::ExplainAnalyzeSql, mirroring
/// Driver::RunToCompletion: spawn, drive the simulator dry, return.
Result<std::string> ExplainAnalyzeToCompletion(cloud::Cloud* cloud,
                                               core::Driver* driver,
                                               const std::string& sql) {
  core::RunOptions ropts;
  auto out = std::make_shared<Result<std::string>>(
      Status::Internal("query did not finish"));
  sim::Spawn([](core::Driver* d, const std::string* s,
                const core::RunOptions* opts,
                std::shared_ptr<Result<std::string>> res)
                 -> sim::Async<void> {
    *res = co_await core::ExplainAnalyzeSql(d, *s, *opts);
  }(driver, &sql, &ropts, out));
  cloud->sim().Run();
  return std::move(*out);
}

}  // namespace

int main(int argc, char** argv) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 200;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  std::printf("loading TPC-H LINEITEM (32 files)...\n\n");
  workload::LoadOptions load;
  load.num_rows = 64000;
  load.num_files = 32;
  load.row_groups_per_file = 4;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", load));

  std::vector<std::string> statements;
  for (int i = 1; i < argc; ++i) statements.push_back(argv[i]);
  if (statements.empty()) {
    statements = {
        // TPC-H Q6 in SQL.
        "SELECT SUM(l_extendedprice * l_discount) AS revenue "
        "FROM 's3://tpch/li/*.lpq' "
        "WHERE l_shipdate >= DATE '1994-01-01' "
        "AND l_shipdate < DATE '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        // A grouped report.
        "SELECT l_returnflag, l_linestatus, COUNT(*) AS orders, "
        "AVG(l_extendedprice) AS avg_price FROM 's3://tpch/li/*.lpq' "
        "WHERE l_shipdate <= DATE '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus",
        // A projection with arithmetic.
        "SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS net "
        "FROM 's3://tpch/li/*.lpq' WHERE l_extendedprice > 104000",
    };
  }

  for (const auto& sql : statements) {
    std::printf("sql> %s\n", sql.c_str());
    if (StartsWithExplain(sql)) {
      auto text = ExplainAnalyzeToCompletion(&cloud, &driver, sql);
      if (text.ok()) {
        std::printf("%s\n", text->c_str());
      } else {
        std::printf("explain error: %s\n\n", text.status().ToString().c_str());
      }
      continue;
    }
    auto query = core::ParseSql(sql);
    if (!query.ok()) {
      std::printf("parse error: %s\n\n", query.status().ToString().c_str());
      continue;
    }
    auto report = driver.RunToCompletion(*query, core::RunOptions{});
    if (!report.ok()) {
      std::printf("execution error: %s\n\n",
                  report.status().ToString().c_str());
      continue;
    }
    PrintResult(report->result);
    std::printf("(%s, %s, %d workers)\n\n",
                FormatSeconds(report->latency_s).c_str(),
                FormatUsd(report->CostUsd(cloud.pricing())).c_str(),
                report->workers);
  }
  return 0;
}
