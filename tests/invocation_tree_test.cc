#include "core/invocation_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "common/binio.h"
#include "common/rng.h"
#include "core/driver.h"
#include "core/messages.h"
#include "engine/chunk_serde.h"
#include "models/costmodel.h"
#include "workload/tpch.h"

namespace lambada::core {
namespace {

/// The planner's cost parameters derived the way the driver derives them.
TreeOptions OptionsFor(cloud::Cloud& cloud, int depth) {
  TreeOptions topt;
  topt.depth = depth;
  topt.cost.driver_invoke_latency_s = cloud.region().remote_invoke_latency_s;
  topt.cost.driver_rate_per_s = cloud.region().remote_client_rate_per_s;
  topt.cost.driver_threads = 128;
  topt.cost.worker_invoke_latency_s = cloud.region().intra_invoke_latency_s;
  topt.cost.worker_start_s = cloud.faas().config().cold_start_median_s +
                             cloud.faas().config().cold_init_cpu_s;
  return topt;
}

/// Expands the whole tree host-side (driver's roots, then every node's
/// children recursively) and records how often each worker id appears as
/// a node's own id (`begin`).
void ExpandTree(const TreePlan& plan, std::vector<int>* counts) {
  counts->assign(plan.workers, 0);
  std::vector<TreeNode> frontier = TreeRoots(plan);
  EXPECT_LE(frontier.size(), plan.fanout.empty() ? 0u : plan.fanout[0]);
  while (!frontier.empty()) {
    std::vector<TreeNode> next;
    for (const TreeNode& node : frontier) {
      ASSERT_LT(node.begin, plan.workers);
      ++(*counts)[node.begin];
      auto children = TreeChildren(plan, node);
      ASSERT_TRUE(children.ok()) << children.status().ToString();
      if (static_cast<int>(node.generation) < plan.depth()) {
        EXPECT_LE(children->size(), plan.fanout[node.generation])
            << "generation " << node.generation << " branching bound";
      } else {
        EXPECT_TRUE(children->empty());
      }
      for (const TreeNode& c : *children) {
        EXPECT_EQ(c.generation, node.generation + 1);
        EXPECT_GT(c.end, c.begin);
        EXPECT_LE(c.end, node.end);
        next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
}

// ---------------------------------------------------------------------------
// Planner properties
// ---------------------------------------------------------------------------

TEST(InvocationTreeTest, EveryIdExactlyOnceAcrossFleetsAndDepths) {
  // The tentpole property: for arbitrary (non-square, prime, huge) fleet
  // sizes and every supported depth, expanding the tree yields every
  // worker id exactly once — no overlaps, no holes — and every node
  // respects the plan's branching bounds. Pure arithmetic, so this also
  // certifies the partitioning is identical on the driver and worker
  // sides regardless of thread count.
  const std::vector<uint32_t> fleets = {1,    2,    7,     100,  4095,
                                        4096, 4097, 10000, 16384};
  for (uint32_t workers : fleets) {
    for (int depth : {2, 3}) {
      TreeOptions topt;
      topt.depth = depth;
      TreePlan plan = PlanInvocationTree(workers, topt);
      ASSERT_EQ(plan.workers, workers);
      ASSERT_EQ(plan.depth(), depth);
      std::vector<int> counts;
      ExpandTree(plan, &counts);
      for (uint32_t id = 0; id < workers; ++id) {
        ASSERT_EQ(counts[id], 1)
            << "worker " << id << " of " << workers << ", depth " << depth;
      }
    }
  }
}

TEST(InvocationTreeTest, DepthTwoReproducesHistoricalSqrtGrouping) {
  // Two-level plans must keep the released invocation layout bit-for-bit:
  // group = ceil(sqrt(P)) ids per generation-1 root, fixed chunks.
  for (uint32_t workers : {5u, 36u, 100u, 4095u, 4096u, 4097u, 10000u}) {
    TreeOptions topt;
    topt.depth = 2;
    TreePlan plan = PlanInvocationTree(workers, topt);
    const uint32_t group = static_cast<uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(workers))));
    EXPECT_EQ(plan.SubtreeCapacity(1), group);
    std::vector<TreeNode> roots = TreeRoots(plan);
    ASSERT_EQ(roots.size(), (workers + group - 1) / group);
    for (size_t g = 0; g < roots.size(); ++g) {
      EXPECT_EQ(roots[g].begin, g * group);
      EXPECT_EQ(roots[g].end,
                std::min<uint32_t>((g + 1) * group, workers));
    }
  }
}

TEST(InvocationTreeTest, AutoDepthFollowsTheCostModel) {
  // The unforced planner picks the modeled-best depth: two levels for the
  // paper's 4096-worker fleet (its committed schedule), three beyond.
  cloud::Cloud cloud;
  TreeOptions topt = OptionsFor(cloud, 0);
  EXPECT_EQ(PlanInvocationTree(3, topt).depth(), 1);  // Driver-direct.
  EXPECT_EQ(PlanInvocationTree(4096, topt).depth(), 2);
  EXPECT_EQ(PlanInvocationTree(10000, topt).depth(), 3);
  EXPECT_EQ(PlanInvocationTree(16384, topt).depth(), 3);
  // The model itself orders the choice.
  for (uint32_t w : {10000u, 16384u}) {
    TreeOptions d2 = topt;
    d2.depth = 2;
    TreeOptions d3 = topt;
    d3.depth = 3;
    EXPECT_LT(models::TreeAllRunningTime(PlanInvocationTree(w, d3).fanout, w,
                                         topt.cost),
              models::TreeAllRunningTime(PlanInvocationTree(w, d2).fanout, w,
                                         topt.cost));
  }
  // Start skew is nonnegative and grows with the fleet.
  const double skew_small = models::TreeStartSkew(
      PlanInvocationTree(100, topt).fanout, 100, topt.cost);
  const double skew_big = models::TreeStartSkew(
      PlanInvocationTree(16384, topt).fanout, 16384, topt.cost);
  EXPECT_GE(skew_small, 0.0);
  EXPECT_GT(skew_big, skew_small);
}

TEST(InvocationTreeTest, ForgedRangesAreLoudErrors) {
  TreeOptions topt;
  topt.depth = 3;
  TreePlan plan = PlanInvocationTree(1000, topt);
  TreeNode node;
  node.generation = 1;
  node.begin = 0;
  node.end = plan.SubtreeCapacity(1) + 5;  // Overlaps the next sibling.
  EXPECT_FALSE(TreeChildren(plan, node).ok());
  node.end = 0;  // Inverted.
  EXPECT_FALSE(TreeChildren(plan, node).ok());
  node.begin = 990;
  node.end = 1005;  // Beyond the fleet.
  EXPECT_FALSE(TreeChildren(plan, node).ok());
  node.begin = 0;
  node.end = 10;
  node.generation = 7;  // Beyond the declared depth.
  EXPECT_FALSE(TreeChildren(plan, node).ok());
  EXPECT_FALSE(TreeChildren(TreePlan{}, node).ok());  // Empty plan.
}

// ---------------------------------------------------------------------------
// Wire format: tree sections and the batched input table
// ---------------------------------------------------------------------------

InvocationPayload SamplePayload() {
  InvocationPayload p;
  p.query_id = "q7";
  p.total_workers = 100;
  p.plan_bucket = "sys";
  p.plan_key = "plans/q7";
  p.result_queue = "res";
  p.data_scale = 2.5;
  p.hedge_gets = true;
  p.self.worker_id = 10;
  p.self.attempt = 3;
  p.self.files = {{"data", "a.lpq"}, {"data", "b.lpq"}};
  return p;
}

TEST(InvocationTreeSerdeTest, TreePayloadRoundTrips) {
  InvocationPayload p = SamplePayload();
  p.self.files.clear();  // Batched payloads carry no explicit inputs.
  p.tree.subtree_end = 20;
  p.tree.generation = 1;
  p.tree.fanout = {10, 3, 3};
  p.tree.inputs_key = "plans/q7.inputs";
  auto parsed = InvocationPayload::Parse(p.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tree.subtree_end, 20u);
  EXPECT_EQ(parsed->tree.generation, 1u);
  EXPECT_EQ(parsed->tree.fanout, (std::vector<uint32_t>{10, 3, 3}));
  EXPECT_EQ(parsed->tree.inputs_key, "plans/q7.inputs");
  EXPECT_EQ(parsed->self.worker_id, 10u);
  EXPECT_EQ(parsed->self.attempt, 3u);
  EXPECT_TRUE(parsed->tree.active());
}

TEST(InvocationTreeSerdeTest, LegacyPayloadBytesAreUnchanged) {
  // A two-level payload (explicit to_invoke, no tree section) must
  // serialize to exactly the pre-tree wire bytes: the reference encoder
  // below replicates the frozen field sequence of the original format.
  InvocationPayload p = SamplePayload();
  WorkerInput child;
  child.worker_id = 11;
  child.files = {{"data", "c.lpq"}};
  p.to_invoke.push_back(child);

  BinaryWriter w;
  w.PutString(p.query_id);
  w.PutU32(p.total_workers);
  w.PutString(p.plan_bucket);
  w.PutString(p.plan_key);
  w.PutString(p.result_queue);
  p.self.Serialize(&w);
  w.PutVarint(p.to_invoke.size());
  for (const auto& t : p.to_invoke) t.Serialize(&w);
  w.PutF64(p.data_scale);
  w.PutU8(1);  // hedge_gets.
  auto expected = w.Take();

  const std::string got = p.Serialize();
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(0, std::memcmp(got.data(), expected.data(), expected.size()));
  auto parsed = InvocationPayload::Parse(got);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->tree.active());
}

TEST(InvocationTreeSerdeTest, TruncatedTreeSectionsAreTypedErrors) {
  InvocationPayload p = SamplePayload();
  p.self.files.clear();
  p.tree.subtree_end = 20;
  p.tree.generation = 1;
  p.tree.fanout = {10, 9};
  p.tree.inputs_key = "plans/q7.inputs";
  const std::string full = p.Serialize();
  InvocationPayload legacy = p;
  legacy.tree = TreeAssignment{};
  const size_t legacy_size = legacy.Serialize().size();
  ASSERT_GT(full.size(), legacy_size);
  // Every strict truncation inside the tree section must be a typed
  // error — never a crash, never a silently shorter tree.
  for (size_t len = legacy_size + 1; len < full.size(); ++len) {
    auto parsed = InvocationPayload::Parse(full.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "length " << len;
  }
  // Truncating the whole section yields the valid legacy payload.
  auto stripped = InvocationPayload::Parse(full.substr(0, legacy_size));
  ASSERT_TRUE(stripped.ok()) << stripped.status().ToString();
  EXPECT_FALSE(stripped->tree.active());
}

TEST(InvocationTreeSerdeTest, OverlappingAndForgedRangesAreRejected) {
  auto expect_invalid = [](InvocationPayload p, const std::string& what) {
    auto parsed = InvocationPayload::Parse(p.Serialize());
    EXPECT_FALSE(parsed.ok()) << what;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << what << ": " << parsed.status().ToString();
    }
  };
  InvocationPayload base = SamplePayload();
  base.self.files.clear();
  base.tree.generation = 2;
  base.tree.fanout = {10, 3, 3};
  base.tree.subtree_end = 14;  // Capacity of a gen-2 subtree: 1+3*1 = 4.

  InvocationPayload overlap = base;
  overlap.tree.subtree_end = 20;  // 10 ids > capacity 4.
  expect_invalid(overlap, "sibling overlap");

  InvocationPayload inverted = base;
  inverted.tree.subtree_end = 5;  // Ends before self.worker_id = 10.
  expect_invalid(inverted, "inverted range");

  InvocationPayload beyond = base;
  beyond.tree.subtree_end = 300;  // total_workers is 100.
  expect_invalid(beyond, "beyond the fleet");

  InvocationPayload deep = base;
  deep.tree.generation = 9;  // fanout declares depth 3.
  expect_invalid(deep, "generation beyond depth");

  InvocationPayload both = base;
  WorkerInput child;
  child.worker_id = 11;
  both.to_invoke.push_back(child);
  expect_invalid(both, "tree range plus explicit invoke list");
}

TEST(InvocationTreeSerdeTest, SeededFuzzNeverCrashesTheParser) {
  // Byte-level chaos: random truncations and bit flips over valid tree
  // payloads must always produce either a valid payload or a typed error.
  InvocationPayload p = SamplePayload();
  p.self.files.clear();
  p.tree.subtree_end = 20;
  p.tree.generation = 1;
  p.tree.fanout = {10, 9};
  p.tree.inputs_key = "plans/q7.inputs";
  const std::string full = p.Serialize();
  Rng rng(20260808);
  int rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = full;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (rng.NextDouble() < 0.3) {
      mutated.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(mutated.size()))));
    }
    auto parsed = InvocationPayload::Parse(mutated);
    if (!parsed.ok()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST(InvocationTreeSerdeTest, WorkerInputTableRoundTrips) {
  std::vector<WorkerInput> inputs(5);
  for (uint32_t w = 0; w < inputs.size(); ++w) {
    inputs[w].worker_id = w;
    inputs[w].attempt = w % 2;
    inputs[w].files = {{"data", "f" + std::to_string(w) + ".lpq"}};
  }
  const std::vector<uint8_t> table = EncodeWorkerInputTable(inputs);

  BinaryReader header(table.data(), table.size());
  auto count = header.GetU32();
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(*count, inputs.size());
  const int64_t blobs_at =
      WorkerInputTableHeaderBytes(static_cast<uint32_t>(inputs.size()));
  for (uint32_t w = 0; w < inputs.size(); ++w) {
    BinaryReader offsets(table.data() + WorkerInputOffsetPos(w), 16);
    auto begin = offsets.GetU64();
    auto end = offsets.GetU64();
    ASSERT_TRUE(begin.ok() && end.ok());
    ASSERT_LT(*begin, *end);
    ASSERT_LE(blobs_at + static_cast<int64_t>(*end),
              static_cast<int64_t>(table.size()));
    auto entry = DecodeWorkerInputEntry(
        table.data() + blobs_at + static_cast<int64_t>(*begin),
        static_cast<size_t>(*end - *begin));
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    EXPECT_EQ(entry->worker_id, w);
    EXPECT_EQ(entry->attempt, w % 2);
    ASSERT_EQ(entry->files.size(), 1u);
    EXPECT_EQ(entry->files[0].key, "f" + std::to_string(w) + ".lpq");
    // Truncated entries are typed errors.
    EXPECT_FALSE(DecodeWorkerInputEntry(
                     table.data() + blobs_at + static_cast<int64_t>(*begin),
                     static_cast<size_t>(*end - *begin) - 1)
                     .ok());
  }
}

// ---------------------------------------------------------------------------
// End to end: deep batched trees run real queries byte-identically
// ---------------------------------------------------------------------------

TEST(InvocationTreeQueryTest, DepthThreeBatchedMatchesDepthTwoAtAllThreads) {
  // A real Q6 fleet forced through the depth-3 batched tree must produce
  // result bytes identical to the default two-level run — at 1, 2, and 8
  // worker threads, and across repeated runs (the determinism contract).
  auto run = [](int depth, int threads) {
    cloud::Cloud cloud;
    DriverOptions dopts;
    dopts.invocation_tree_depth = depth;
    if (threads > 1) {
      dopts.worker_exec = exec::ExecContext::Parallel(threads, 4096);
    }
    Driver driver(&cloud, dopts);
    LAMBADA_CHECK_OK(driver.Install());
    workload::LoadOptions li;
    li.num_rows = 6000;
    li.num_files = 30;
    li.row_groups_per_file = 2;
    li.seed = 17;
    LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
    auto q = workload::TpchQ6("s3://tpch/li/*.lpq");
    RunOptions ropts;
    // Worker-order merge: result bytes become schedule-invariant, so the
    // two tree shapes (different arrival orders) are comparable.
    ropts.mitigation.enabled = true;
    auto report = driver.RunToCompletion(q, ropts);
    LAMBADA_CHECK(report.ok()) << report.status().ToString();
    LAMBADA_CHECK(report->tree_depth == depth);
    LAMBADA_CHECK(report->batched_invocation == (depth >= 3));
    return engine::SerializeChunk(report->result);
  };
  const std::vector<uint8_t> ref = run(2, 1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run(2, 1), ref);  // Repeated run, identical bytes.
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(run(3, threads), ref) << threads << " threads, depth 3";
  }
}

}  // namespace
}  // namespace lambada::core
