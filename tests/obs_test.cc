#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "cloud/cloud.h"
#include "core/driver.h"
#include "core/sql.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/tpch.h"

#ifndef LAMBADA_SOURCE_DIR
#error "obs_test needs LAMBADA_SOURCE_DIR to locate its golden files"
#endif

namespace lambada {
namespace {

using core::QueryReport;
using core::RunOptions;

// ---------------------------------------------------------------------------
// Golden helpers. Goldens live in tests/golden/ and are byte-compared;
// regenerate with LAMBADA_UPDATE_GOLDENS=1 after an intentional change.
// ---------------------------------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(LAMBADA_SOURCE_DIR) + "/tests/golden/" + name;
}

void ExpectMatchesGolden(const std::string& actual, const std::string& name) {
  const std::string path = GoldenPath(name);
  if (std::getenv("LAMBADA_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with LAMBADA_UPDATE_GOLDENS=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(actual, buf.str()) << "golden mismatch: " << name;
}

// ---------------------------------------------------------------------------
// Traced fleet harness: a fixed deployment + TPC-H load, the worker thread
// count as the only variable. The determinism contract says the trace is a
// function of (workload, seed) alone — never of the thread count.
// ---------------------------------------------------------------------------

QueryReport RunTraced(int query, int threads,
                      cloud::FaultPlan fault = {},
                      bool mitigate = false) {
  cloud::CloudConfig cfg;
  cfg.fault = fault;
  cloud::Cloud cloud(cfg);
  core::DriverOptions dopts;
  if (threads > 1) {
    dopts.worker_exec = exec::ExecContext::Parallel(threads, 4096);
  }
  core::Driver driver(&cloud, dopts);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions li;
  li.num_rows = 8000;
  li.num_files = 8;
  li.row_groups_per_file = 4;
  li.seed = 77;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
  std::optional<core::Query> q;
  if (query == 6) {
    q = workload::TpchQ6("s3://tpch/li/*.lpq");
  } else {
    const int64_t orders_rows =
        workload::MaxOrderKey(workload::GenerateLineitem(li.num_rows, 77));
    workload::LoadOptions oo;
    oo.num_rows = orders_rows;
    oo.num_files = 4;
    oo.seed = 123;
    LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
    if (query == 3) {
      workload::LoadOptions co;
      co.num_rows = 60;
      co.num_files = 2;
      co.seed = 555;
      LAMBADA_CHECK_OK(
          workload::LoadCustomer(&cloud.s3(), "tpch", "customer/", co));
      q = workload::TpchQ3("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq",
                           "s3://tpch/customer/*.lpq");
    } else {
      q = workload::TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq");
    }
  }
  RunOptions ropts;
  ropts.trace.enabled = true;
  if (query == 12) {
    // Pin the strategy so the golden is not hostage to cost-model tweaks.
    ropts.join_strategy = core::JoinStrategyOverride::kForcePartitioned;
  }
  if (mitigate) {
    ropts.mitigation.enabled = true;
    ropts.mitigation.max_attempts = 6;
    ropts.mitigation.stall_timeout_s = 10.0;
    ropts.hedge_gets = true;
  }
  auto report = driver.RunToCompletion(*q, ropts);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();
  LAMBADA_CHECK(report->trace != nullptr);
  return *std::move(report);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SerdeRoundTripAndMerge) {
  obs::MetricsRegistry a;
  a.Add(obs::Metric::kRowsScanned, 1000);
  a.Add(obs::Metric::kScanBytesMoved, 1 << 20);
  a.Set(obs::Metric::kProcessingTime, 1.25);
  a.Observe(obs::Metric::kExchangeRoundTime, 0.002);
  a.Observe(obs::Metric::kExchangeRoundTime, 5.0);

  BinaryWriter w;
  a.Serialize(&w);
  auto bytes = w.Take();
  BinaryReader r(bytes.data(), bytes.size());
  auto back = obs::MetricsRegistry::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->counter(obs::Metric::kRowsScanned), 1000);
  EXPECT_EQ(back->counter(obs::Metric::kScanBytesMoved), 1 << 20);
  EXPECT_DOUBLE_EQ(back->gauge(obs::Metric::kProcessingTime), 1.25);
  const obs::Histogram* h = back->histogram(obs::Metric::kExchangeRoundTime);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_DOUBLE_EQ(h->sum, 5.002);

  obs::MetricsRegistry b;
  b.Add(obs::Metric::kRowsScanned, 11);
  b.Set(obs::Metric::kProcessingTime, 0.75);
  b.Observe(obs::Metric::kExchangeRoundTime, 0.002);
  b.Merge(*back);
  EXPECT_EQ(b.counter(obs::Metric::kRowsScanned), 1011);
  EXPECT_DOUBLE_EQ(b.gauge(obs::Metric::kProcessingTime), 2.0);
  EXPECT_EQ(b.histogram(obs::Metric::kExchangeRoundTime)->count, 3);
}

TEST(MetricsRegistryTest, NameTableIsDenseAndUnique) {
  const auto& table = obs::MetricTable();
  ASSERT_EQ(table.size(), static_cast<size_t>(obs::Metric::kCount));
  std::set<std::string> names;
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(table[i].id), i);
    EXPECT_TRUE(names.insert(table[i].name).second)
        << "duplicate metric name " << table[i].name;
  }
}

TEST(MetricsRegistryTest, EmptyRegistrySerializesEmpty) {
  obs::MetricsRegistry empty;
  EXPECT_TRUE(empty.empty());
  BinaryWriter w;
  empty.Serialize(&w);
  auto bytes = w.Take();
  BinaryReader r(bytes.data(), bytes.size());
  auto back = obs::MetricsRegistry::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  EXPECT_EQ(r.remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, SpanTreeAndNullTolerance) {
  sim::Simulator sim;
  obs::Tracer t(&sim);
  EXPECT_EQ(t.span(t.root()).name, "query");
  uint64_t child = t.BeginSpan(0, "driver", "plan");
  EXPECT_EQ(t.span(child).parent, t.root());
  t.AddArg(child, "workers", static_cast<int64_t>(8));
  t.Instant(child, "note");
  t.EndSpan(child);
  t.EndSpan(child);  // Idempotent.
  EXPECT_GE(t.span(child).end, 0.0);

  // Tracing disabled: Begin returns 0 and every mutator is a no-op.
  EXPECT_EQ(obs::Begin(nullptr, 0, "x", "y"), 0u);
  obs::End(nullptr, 0);
  t.AddArg(0, "k", "v");
  t.EndSpan(0);
}

// ---------------------------------------------------------------------------
// Deterministic trace goldens (the tentpole's contract): byte-identical
// text across 1/2/8 worker threads and across identical runs, matching
// the committed golden.
// ---------------------------------------------------------------------------

TEST(TraceGoldenTest, Q6SingleTableTraceIsThreadCountInvariant) {
  QueryReport r1 = RunTraced(6, 1);
  const std::string text = r1.trace->DeterministicText();
  EXPECT_EQ(text, RunTraced(6, 2).trace->DeterministicText());
  EXPECT_EQ(text, RunTraced(6, 8).trace->DeterministicText());
  ExpectMatchesGolden(text, "trace_q6.txt");
  // The Chrome export is a pure function of the spans: also invariant.
  EXPECT_EQ(r1.trace->ChromeTraceJson(),
            RunTraced(6, 8).trace->ChromeTraceJson());
}

TEST(TraceGoldenTest, Q12PartitionedJoinTraceIsThreadCountInvariant) {
  QueryReport r1 = RunTraced(12, 1);
  const std::string text = r1.trace->DeterministicText();
  EXPECT_EQ(text, RunTraced(12, 2).trace->DeterministicText());
  EXPECT_EQ(text, RunTraced(12, 8).trace->DeterministicText());
  ExpectMatchesGolden(text, "trace_q12.txt");
}

TEST(TraceGoldenTest, IdenticalRunsProduceIdenticalTraces) {
  EXPECT_EQ(RunTraced(6, 1).trace->DeterministicText(),
            RunTraced(6, 1).trace->DeterministicText());
}

// ---------------------------------------------------------------------------
// Fault annotations: a chaos plan's injected faults must surface as
// annotations on the spans where they struck, and the trace must stay
// thread-count invariant under chaos + mitigation.
// ---------------------------------------------------------------------------

TEST(TraceFaultTest, ChaosRunAnnotatesFaultsOnTheRightSpans) {
  cloud::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 4242;
  plan.worker_crash_rate = 0.25;
  plan.straggler_rate = 0.3;
  plan.straggler_cpu_factor = 0.05;
  plan.straggler_net_factor = 0.05;
  plan.s3_get_error_rate = 0.02;
  plan.s3_slowdown_rate = 0.05;
  QueryReport r1 = RunTraced(6, 1, plan, /*mitigate=*/true);
  const std::string text = r1.trace->DeterministicText();
  EXPECT_EQ(text,
            RunTraced(6, 2, plan, true).trace->DeterministicText());
  EXPECT_EQ(text,
            RunTraced(6, 8, plan, true).trace->DeterministicText());

  bool crash_on_worker = false;
  bool straggler_armed = false;
  bool s3_fault_instant = false;
  bool reinvoke_on_collect = false;
  for (const auto& s : r1.trace->spans()) {
    for (const auto& [k, v] : s.args) {
      // Fate annotations belong to worker-attempt root spans only.
      if (k.rfind("fault.", 0) == 0) {
        EXPECT_EQ(s.name, "worker");
      }
      if (k == "fault.straggler_cpu") straggler_armed = true;
    }
    for (const auto& [when, what] : s.instants) {
      if (what == "fault.crash") {
        crash_on_worker = true;
        // The crash instant lands on the span that was current when the
        // worker died — a worker-attempt span or one of its operation
        // children, never a driver span.
        EXPECT_NE(s.track, 0) << "crash annotated on a driver span";
      }
      // (no else: each instant may match several tallies)
      if (what.rfind("fault.s3_", 0) == 0 || what == "s3.retry") {
        s3_fault_instant = true;
      }
      if (what.rfind("reinvoke ", 0) == 0) {
        EXPECT_EQ(s.cat, "driver");
        EXPECT_EQ(s.name, "collect");
        reinvoke_on_collect = true;
      }
    }
  }
  EXPECT_TRUE(crash_on_worker);
  EXPECT_TRUE(straggler_armed);
  EXPECT_TRUE(s3_fault_instant);
  EXPECT_TRUE(reinvoke_on_collect);
  EXPECT_GT(r1.total_attempts, r1.workers);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

TEST(ExplainAnalyzeTest, Q3GoldenIsThreadCountInvariant) {
  QueryReport r1 = RunTraced(3, 1);
  ASSERT_FALSE(r1.explain_analyze_text.empty());
  EXPECT_EQ(r1.explain_analyze_text, RunTraced(3, 8).explain_analyze_text);
  ExpectMatchesGolden(r1.explain_analyze_text, "explain_analyze_q3.txt");
  // The annotated rendering starts from the optimizer's plan text.
  EXPECT_NE(r1.explain_analyze_text.find(r1.explain_text.substr(
                0, r1.explain_text.find('\n'))),
            std::string::npos);
}

TEST(ExplainAnalyzeTest, SingleTableQueryGetsScanActuals) {
  QueryReport r = RunTraced(6, 1);
  ASSERT_FALSE(r.explain_text.empty())
      << "single-table plans must render explain text";
  EXPECT_NE(r.explain_analyze_text.find("actual: rows_scanned="),
            std::string::npos);
  EXPECT_NE(r.explain_analyze_text.find("fleet metrics:"),
            std::string::npos);
  // Zone-map pruning drops row groups before decode, so the fleet scans a
  // strict subset of the 8000 loaded rows.
  EXPECT_GT(r.fleet_metrics.counter(obs::Metric::kRowsScanned), 0);
  EXPECT_LE(r.fleet_metrics.counter(obs::Metric::kRowsScanned), 8000);
  EXPECT_GT(r.fleet_metrics.counter(obs::Metric::kRowGroupsPruned), 0);
}

TEST(ExplainAnalyzeTest, SqlFrontendRunsAndRenders) {
  cloud::Cloud cloud;
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions li;
  li.num_rows = 2000;
  li.num_files = 4;
  li.seed = 7;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
  auto out = std::make_shared<Result<std::string>>(
      Status::Internal("did not run"));
  // Arguments are named locals (not call-site temporaries): GCC 12
  // miscompiles full-expression temporaries held across a co_await
  // suspension, double-destroying them at frame teardown.
  sim::Spawn([](core::Driver* d, std::shared_ptr<Result<std::string>> res)
                 -> sim::Async<void> {
    const std::string sql =
        "EXPLAIN ANALYZE SELECT SUM(l_extendedprice) AS revenue "
        "FROM 's3://tpch/li/*.lpq' WHERE l_quantity < 24";
    core::RunOptions ropts;
    *res = co_await core::ExplainAnalyzeSql(d, sql, ropts);
  }(&driver, out));
  cloud.sim().Run();
  ASSERT_TRUE(out->ok()) << out->status().ToString();
  EXPECT_NE((*out)->find("plan for"), std::string::npos);
  EXPECT_NE((*out)->find("actual: rows_scanned="), std::string::npos);
  EXPECT_NE((*out)->find("actual totals:"), std::string::npos);

  // A malformed prefix is rejected up front.
  auto bad = std::make_shared<Result<std::string>>(Status::OK());
  sim::Spawn([](core::Driver* d, std::shared_ptr<Result<std::string>> res)
                 -> sim::Async<void> {
    const std::string sql = "SELECT 1";
    core::RunOptions ropts;
    *res = co_await core::ExplainAnalyzeSql(d, sql, ropts);
  }(&driver, bad));
  cloud.sim().Run();
  EXPECT_FALSE(bad->ok());
}

// ---------------------------------------------------------------------------
// Tracing must not perturb the simulation: latency, cost, and results of
// a traced run are bit-identical to the untraced run.
// ---------------------------------------------------------------------------

TEST(TraceOverheadTest, TracingDoesNotPerturbTheSimulation) {
  QueryReport traced = RunTraced(12, 1);
  cloud::Cloud cloud;
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions li;
  li.num_rows = 8000;
  li.num_files = 8;
  li.row_groups_per_file = 4;
  li.seed = 77;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
  workload::LoadOptions oo;
  oo.num_rows =
      workload::MaxOrderKey(workload::GenerateLineitem(li.num_rows, 77));
  oo.num_files = 4;
  oo.seed = 123;
  LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
  RunOptions ropts;
  ropts.join_strategy = core::JoinStrategyOverride::kForcePartitioned;
  auto plain = driver.RunToCompletion(
      workload::TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq"),
      ropts);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->trace, nullptr);
  EXPECT_DOUBLE_EQ(plain->latency_s, traced.latency_s);
  EXPECT_EQ(plain->cost.s3_get_requests, traced.cost.s3_get_requests);
  EXPECT_EQ(plain->cost.s3_put_requests, traced.cost.s3_put_requests);
  EXPECT_EQ(plain->result.num_rows(), traced.result.num_rows());
  EXPECT_EQ(plain->fleet_metrics.ToText(), traced.fleet_metrics.ToText());
}

}  // namespace
}  // namespace lambada
