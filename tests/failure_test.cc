#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/driver.h"
#include "core/exchange.h"
#include "engine/expr.h"
#include "format/writer.h"

namespace lambada::core {
namespace {

using engine::Col;
using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Lit;
using engine::Schema;
using engine::TableChunk;

/// Uploads `files` copies of a (k, v) table with `rows` rows each.
void UploadTable(cloud::Cloud& cloud, const std::string& prefix, int files,
                 int rows) {
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  Rng rng(8);
  for (int f = 0; f < files; ++f) {
    std::vector<int64_t> k;
    std::vector<double> v;
    for (int i = 0; i < rows; ++i) {
      k.push_back(rng.UniformInt(0, 99));
      v.push_back(rng.NextDouble());
    }
    TableChunk t(schema, {Column::Int64(std::move(k)),
                          Column::Float64(std::move(v))});
    format::WriterOptions wo;
    wo.codec = compress::CodecId::kNone;  // Keep chunks big in memory.
    auto file = format::FileWriter::WriteTable(t, wo);
    LAMBADA_CHECK_OK(file);
    char name[64];
    std::snprintf(name, sizeof(name), "%spart-%05d.lpq", prefix.c_str(), f);
    LAMBADA_CHECK_OK(cloud.s3().PutDirect(
        "data", name, Buffer::FromVector(*std::move(file))));
  }
}

TEST(FailureTest, WorkerOutOfMemoryIsReportedNotSilent) {
  // A 128 MiB worker has a ~32 MiB engine budget; make it collect a chunk
  // larger than that: rows land in `collected` without an aggregate.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "big/", 1, 2'500'000);  // ~40 MB of row data.
  // No filter: projection push-down must not shrink the scan below the
  // budget (a select-* collect reads both columns).
  auto q = Query::FromParquet("s3://data/big/*.lpq");
  RunOptions opts;
  opts.memory_mib = 128;
  auto report = driver.RunToCompletion(q, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfMemory);
  EXPECT_NE(report.status().message().find("worker"), std::string::npos);
}

TEST(FailureTest, LargeResultsSpillToS3) {
  // Collect ~3 MB of rows: far beyond the 256 KiB SQS limit, so the
  // worker must spill to S3 and the driver must fetch the spill.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "spill/", 2, 100'000);
  auto q = Query::FromParquet("s3://data/spill/*.lpq");
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.num_rows(), 200'000u);
  int spilled = 0;
  for (const auto& r : report->worker_results) {
    if (!r.spill_bucket.empty()) ++spilled;
    EXPECT_TRUE(r.inline_result.empty() || r.spill_bucket.empty());
  }
  EXPECT_EQ(spilled, 2);
}

TEST(FailureTest, DriverRetriesThroughConcurrencyThrottling) {
  // 16 workers against a concurrency limit of 4: invocations get
  // throttled (429) and must succeed via retry as slots free up.
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 4;
  cloud::Cloud cloud(cfg);
  DriverOptions dopts;
  dopts.two_level_invocation = false;  // All 16 invokes from the driver.
  Driver driver(&cloud, dopts);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "throttle/", 16, 2000);
  auto q = Query::FromParquet("s3://data/throttle/*.lpq").ReduceCount();
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.column(0).i64()[0], 16 * 2000);
  EXPECT_EQ(report->workers, 16);
}

TEST(FailureTest, OversizedPayloadFailsCleanly) {
  // One worker assigned thousands of files: the payload exceeds the
  // 256 KB async-invocation limit and the driver reports the error
  // instead of hanging.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  TableChunk t(schema, {Column::Int64({1})});
  auto file = format::FileWriter::WriteTable(t, format::WriterOptions{});
  ASSERT_TRUE(file.ok());
  auto blob = Buffer::FromVector(*std::move(file));
  for (int f = 0; f < 12000; ++f) {
    char name[64];
    std::snprintf(name, sizeof(name), "many/%08d.lpq", f);
    ASSERT_TRUE(cloud.s3().PutDirect("data", name, blob).ok());
  }
  auto q = Query::FromParquet("s3://data/many/*.lpq").ReduceCount();
  RunOptions opts;
  opts.num_workers = 1;  // All 12000 file refs into one payload.
  auto report = driver.RunToCompletion(q, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureTest, ExchangeSurvivesRateLimitThrottling) {
  // A single-bucket BasicExchange under tight per-bucket rate limits:
  // SlowDown responses are retried and the shuffle still completes
  // correctly (this is the pain that motivates multiple buckets).
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 64;
  cfg.s3.read_rate_per_bucket = 150;
  cfg.s3.write_rate_per_bucket = 100;
  cfg.s3.rate_burst = 20;
  cfg.s3.slowdown_queue_threshold_s = 0.2;
  cloud::Cloud cloud(cfg);
  ExchangeSpec spec;
  spec.keys = {"k"};
  spec.levels = 1;
  spec.write_combining = false;
  spec.num_buckets = 1;
  spec.exchange_id = "throttled";
  ASSERT_TRUE(CreateExchangeBuckets(&cloud.s3(), spec).ok());
  const int P = 12;
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"k", DataType::kInt64}});
  int64_t received = 0;
  int failures = 0;
  cloud::FunctionConfig fn;
  fn.name = "xw";
  fn.memory_mib = 2048;
  fn.handler = [&, schema](cloud::WorkerEnv& env,
                           std::string payload) -> sim::Async<Status> {
    int p = std::stoi(payload);
    std::vector<int64_t> keys;
    for (int i = 0; i < 200; ++i) {
      keys.push_back(static_cast<int64_t>(p) * 200 + i);
    }
    TableChunk input(schema, {Column::Int64(std::move(keys))});
    auto out = co_await RunExchange(env, spec, p, P, std::move(input));
    if (!out.ok()) {
      ++failures;
      co_return out.status();
    }
    received += static_cast<int64_t>(out->num_rows());
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  for (int p = 0; p < P; ++p) {
    sim::Spawn([](cloud::Cloud* c, int worker) -> sim::Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "xw",
                                std::to_string(worker));
    }(&cloud, p));
  }
  cloud.sim().Run();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(received, P * 200);
}

TEST(FailureTest, MalformedPayloadCountsAsHandlerFailure) {
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  ASSERT_TRUE(driver.EnsureFunction(1792).ok());
  sim::Spawn([](cloud::Cloud* c) -> sim::Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "lambada-w1792", "not a payload");
  }(&cloud));
  cloud.sim().Run();
  EXPECT_EQ(cloud.faas().failed_handlers(), 1);
}

}  // namespace
}  // namespace lambada::core
