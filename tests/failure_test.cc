#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cloud/cloud.h"
#include "cloud/scan_share.h"
#include "core/driver.h"
#include "core/exchange.h"
#include "core/messages.h"
#include "core/session_manager.h"
#include "engine/chunk_serde.h"
#include "engine/expr.h"
#include "format/writer.h"
#include "workload/tpch.h"

namespace lambada::core {
namespace {

using engine::Col;
using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Lit;
using engine::Schema;
using engine::TableChunk;

/// Uploads `files` copies of a (k, v) table with `rows` rows each.
void UploadTable(cloud::Cloud& cloud, const std::string& prefix, int files,
                 int rows) {
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  Rng rng(8);
  for (int f = 0; f < files; ++f) {
    std::vector<int64_t> k;
    std::vector<double> v;
    for (int i = 0; i < rows; ++i) {
      k.push_back(rng.UniformInt(0, 99));
      v.push_back(rng.NextDouble());
    }
    TableChunk t(schema, {Column::Int64(std::move(k)),
                          Column::Float64(std::move(v))});
    format::WriterOptions wo;
    wo.codec = compress::CodecId::kNone;  // Keep chunks big in memory.
    auto file = format::FileWriter::WriteTable(t, wo);
    LAMBADA_CHECK_OK(file);
    char name[64];
    std::snprintf(name, sizeof(name), "%spart-%05d.lpq", prefix.c_str(), f);
    LAMBADA_CHECK_OK(cloud.s3().PutDirect(
        "data", name, Buffer::FromVector(*std::move(file))));
  }
}

TEST(FailureTest, WorkerOutOfMemoryIsReportedNotSilent) {
  // A 128 MiB worker has a ~32 MiB engine budget; make it collect a chunk
  // larger than that: rows land in `collected` without an aggregate.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "big/", 1, 2'500'000);  // ~40 MB of row data.
  // No filter: projection push-down must not shrink the scan below the
  // budget (a select-* collect reads both columns).
  auto q = Query::FromParquet("s3://data/big/*.lpq");
  RunOptions opts;
  opts.memory_mib = 128;
  auto report = driver.RunToCompletion(q, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfMemory);
  EXPECT_NE(report.status().message().find("worker"), std::string::npos);
}

TEST(FailureTest, LargeResultsSpillToS3) {
  // Collect ~3 MB of rows: far beyond the 256 KiB SQS limit, so the
  // worker must spill to S3 and the driver must fetch the spill.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "spill/", 2, 100'000);
  auto q = Query::FromParquet("s3://data/spill/*.lpq");
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.num_rows(), 200'000u);
  int spilled = 0;
  for (const auto& r : report->worker_results) {
    if (!r.spill_bucket.empty()) ++spilled;
    EXPECT_TRUE(r.inline_result.empty() || r.spill_bucket.empty());
  }
  EXPECT_EQ(spilled, 2);
}

TEST(FailureTest, DriverRetriesThroughConcurrencyThrottling) {
  // 16 workers against a concurrency limit of 4: invocations get
  // throttled (429) and must succeed via retry as slots free up.
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 4;
  cloud::Cloud cloud(cfg);
  DriverOptions dopts;
  dopts.two_level_invocation = false;  // All 16 invokes from the driver.
  Driver driver(&cloud, dopts);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "throttle/", 16, 2000);
  auto q = Query::FromParquet("s3://data/throttle/*.lpq").ReduceCount();
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.column(0).i64()[0], 16 * 2000);
  EXPECT_EQ(report->workers, 16);
}

TEST(FailureTest, OversizedPayloadFailsCleanly) {
  // One worker assigned thousands of files: the payload exceeds the
  // 256 KB async-invocation limit and the driver reports the error
  // instead of hanging.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  TableChunk t(schema, {Column::Int64({1})});
  auto file = format::FileWriter::WriteTable(t, format::WriterOptions{});
  ASSERT_TRUE(file.ok());
  auto blob = Buffer::FromVector(*std::move(file));
  for (int f = 0; f < 12000; ++f) {
    char name[64];
    std::snprintf(name, sizeof(name), "many/%08d.lpq", f);
    ASSERT_TRUE(cloud.s3().PutDirect("data", name, blob).ok());
  }
  auto q = Query::FromParquet("s3://data/many/*.lpq").ReduceCount();
  RunOptions opts;
  opts.num_workers = 1;  // All 12000 file refs into one payload.
  auto report = driver.RunToCompletion(q, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureTest, ExchangeSurvivesRateLimitThrottling) {
  // A single-bucket BasicExchange under tight per-bucket rate limits:
  // SlowDown responses are retried and the shuffle still completes
  // correctly (this is the pain that motivates multiple buckets).
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 64;
  cfg.s3.read_rate_per_bucket = 150;
  cfg.s3.write_rate_per_bucket = 100;
  cfg.s3.rate_burst = 20;
  cfg.s3.slowdown_queue_threshold_s = 0.2;
  cloud::Cloud cloud(cfg);
  ExchangeSpec spec;
  spec.keys = {"k"};
  spec.levels = 1;
  spec.write_combining = false;
  spec.num_buckets = 1;
  spec.exchange_id = "throttled";
  ASSERT_TRUE(CreateExchangeBuckets(&cloud.s3(), spec).ok());
  const int P = 12;
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"k", DataType::kInt64}});
  int64_t received = 0;
  int failures = 0;
  cloud::FunctionConfig fn;
  fn.name = "xw";
  fn.memory_mib = 2048;
  fn.handler = [&, schema](cloud::WorkerEnv& env,
                           std::string payload) -> sim::Async<Status> {
    int p = std::stoi(payload);
    std::vector<int64_t> keys;
    for (int i = 0; i < 200; ++i) {
      keys.push_back(static_cast<int64_t>(p) * 200 + i);
    }
    TableChunk input(schema, {Column::Int64(std::move(keys))});
    auto out = co_await RunExchange(env, spec, p, P, std::move(input));
    if (!out.ok()) {
      ++failures;
      co_return out.status();
    }
    received += static_cast<int64_t>(out->num_rows());
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  for (int p = 0; p < P; ++p) {
    sim::Spawn([](cloud::Cloud* c, int worker) -> sim::Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "xw",
                                std::to_string(worker));
    }(&cloud, p));
  }
  cloud.sim().Run();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(received, P * 200);
}

TEST(FailureTest, QueryDeadlineNamesMissingWorkers) {
  // Every worker is fated to crash silently (no result message). Without
  // mitigation the driver waits until its deadline and must fail with a
  // clean DeadlineExceeded naming the workers it never heard from.
  cloud::CloudConfig cfg;
  cfg.fault.enabled = true;
  cfg.fault.worker_crash_rate = 1.0;
  cloud::Cloud cloud(cfg);
  DriverOptions dopts;
  dopts.query_timeout_s = 60.0;
  Driver driver(&cloud, dopts);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "dead/", 4, 1000);
  auto q = Query::FromParquet("s3://data/dead/*.lpq").ReduceCount();
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(report.status().message().find("missing workers"),
            std::string::npos)
      << report.status().ToString();
  EXPECT_NE(report.status().message().find("0/4"), std::string::npos)
      << report.status().ToString();
  EXPECT_GE(cloud.fault().crashes_armed(), 4);
}

TEST(FailureTest, DuplicateResultDeliveryIsDedupedNotDoubleMerged) {
  // SQS is at-least-once: the same ResultMessage (same worker, same
  // attempt) can arrive twice. Collection is first-result-wins per worker
  // id, so the duplicate must be counted and dropped, never merged twice.
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  UploadTable(cloud, "dup/", 2, 500);

  // Forge worker 0's partial for the driver's first query ("q0") and send
  // it twice before the fleet starts: both copies beat the real workers to
  // the queue, so the first is taken and the second is a pure duplicate.
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  TableChunk forged(schema, {Column::Int64({1, 2, 3}),
                             Column::Float64({0.5, 0.25, 0.125})});
  ResultMessage msg;
  msg.query_id = "q0";
  msg.worker_id = 0;
  msg.attempt = 0;
  msg.inline_result = engine::SerializeChunk(forged);
  std::string body = msg.Serialize();
  for (int copy = 0; copy < 2; ++copy) {
    sim::Spawn([](cloud::Cloud* c, std::string b) -> sim::Async<void> {
      co_await c->sqs().Send(c->driver_net(), "lambada-results",
                             std::move(b));
    }(&cloud, body));
  }

  auto q = Query::FromParquet("s3://data/dup/*.lpq");
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Worker 0's slot was satisfied by the first forged copy; the second
  // copy and the real worker-0 message are both dropped as duplicates.
  EXPECT_EQ(report->duplicate_results, 2);
  EXPECT_EQ(report->result.num_rows(), 3u + 500u);
  EXPECT_EQ(report->total_attempts, 2);
}

TEST(FailureTest, InjectedS3ErrorsAreRetriedAndCounted) {
  // A tenth of S3 GETs fail with injected 500s/SlowDowns: the shared
  // client retry (bounded exponential backoff + seeded jitter) must absorb
  // them all, and the attempts must surface in the report telemetry.
  auto count_with = [](const cloud::FaultPlan& fault,
                       int64_t* retries) -> int64_t {
    cloud::CloudConfig cfg;
    cfg.fault = fault;
    cloud::Cloud cloud(cfg);
    Driver driver(&cloud);
    LAMBADA_CHECK_OK(driver.Install());
    UploadTable(cloud, "retry/", 8, 2000);
    auto q = Query::FromParquet("s3://data/retry/*.lpq").ReduceCount();
    auto report = driver.RunToCompletion(q, RunOptions{});
    LAMBADA_CHECK(report.ok()) << report.status().ToString();
    *retries = report->worker_s3_retries;
    return report->result.column(0).i64()[0];
  };
  int64_t clean_retries = 0;
  int64_t clean = count_with(cloud::FaultPlan{}, &clean_retries);
  EXPECT_EQ(clean, 8 * 2000);
  EXPECT_EQ(clean_retries, 0);

  cloud::FaultPlan flaky;
  flaky.enabled = true;
  flaky.s3_get_error_rate = 0.05;
  flaky.s3_slowdown_rate = 0.05;
  int64_t faulted_retries = 0;
  int64_t faulted = count_with(flaky, &faulted_retries);
  EXPECT_EQ(faulted, clean);
  EXPECT_GT(faulted_retries, 0);
}

TEST(FailureTest, HedgedGetsDuplicateSlowRequests) {
  // With hedging on, a GET that outlives the observed latency quantile is
  // duplicated and the first response wins. Over many requests some draws
  // land in the tail, so hedges must fire; every GET still succeeds.
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("h"));
  LAMBADA_CHECK_OK(cloud.s3().PutDirect(
      "h", "obj", Buffer::FromVector(std::vector<uint8_t>(64 * 1024, 7))));
  cloud::RequestStats observed;
  int failures = 0;
  cloud::FunctionConfig fn;
  fn.name = "hedger";
  fn.memory_mib = 1792;
  fn.handler = [&](cloud::WorkerEnv& env,
                   std::string) -> sim::Async<Status> {
    env.hedge_config().enabled = true;
    cloud::S3Client client(env.services().s3, env.net());
    for (int i = 0; i < 200; ++i) {
      auto got = co_await client.Get("h", "obj");
      if (!got.ok() || (*got)->size() != 64 * 1024) ++failures;
    }
    observed = env.request_stats();
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  sim::Spawn([](cloud::Cloud* c) -> sim::Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "hedger", "");
  }(&cloud));
  cloud.sim().Run();
  EXPECT_EQ(failures, 0);
  EXPECT_GT(observed.hedged_requests, 0);
  EXPECT_LE(observed.hedge_wins, observed.hedged_requests);
  EXPECT_EQ(observed.inflight_requests, 0);
}

// ---------------------------------------------------------------------------
// Chaos sweep: crash/straggler/error grids over real query fleets
// ---------------------------------------------------------------------------

/// One chaos run distilled: the merged result bytes plus the recovery
/// telemetry the sweep asserts on.
struct ChaosRun {
  std::vector<uint8_t> bytes;
  int64_t total_attempts = 0;
  int reinvoked_workers = 0;
  int64_t crashes_armed = 0;
  int64_t stragglers_armed = 0;
};

/// Runs Q1/Q6/Q12/Q14/Q3 fleets under injected fault schedules. The
/// mitigation stack (progress deadlines, speculative re-invocation,
/// first-result-wins dedup, idempotent exchange recovery) must deliver a
/// result byte-identical to the fault-free reference — at every worker
/// thread count and under every crash/retry schedule.
class ChaosSweepTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 8000;
  static constexpr uint64_t kSeed = 77;

  static cloud::FaultPlan Crashes(double rate, uint64_t seed = 1) {
    cloud::FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed;
    plan.worker_crash_rate = rate;
    return plan;
  }

  static cloud::FaultPlan Stragglers(double rate, uint64_t seed = 2) {
    cloud::FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed;
    plan.straggler_rate = rate;
    plan.straggler_cpu_factor = 0.25;
    plan.straggler_net_factor = 0.25;
    return plan;
  }

  /// Everything at once: crashes, stragglers, flaky S3, flaky Invoke.
  static cloud::FaultPlan Mixed(uint64_t seed) {
    cloud::FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed;
    plan.worker_crash_rate = 0.05;
    plan.straggler_rate = 0.2;
    plan.s3_get_error_rate = 0.01;
    plan.s3_put_error_rate = 0.01;
    plan.s3_slowdown_rate = 0.01;
    plan.invoke_error_rate = 0.02;
    return plan;
  }

  void SetUp() override {
    orders_rows_ =
        workload::MaxOrderKey(workload::GenerateLineitem(kRows, kSeed));
  }

  ChaosRun RunFleet(int query, int threads, const cloud::FaultPlan& fault,
                    JoinStrategyOverride strategy =
                        JoinStrategyOverride::kAuto) {
    cloud::CloudConfig cfg;
    cfg.fault = fault;
    cloud::Cloud cloud(cfg);
    DriverOptions dopts;
    if (threads > 1) {
      dopts.worker_exec = exec::ExecContext::Parallel(threads, 4096);
    }
    Driver driver(&cloud, dopts);
    LAMBADA_CHECK_OK(driver.Install());
    workload::LoadOptions li;
    li.num_rows = kRows;
    li.num_files = 8;
    li.row_groups_per_file = 4;
    li.seed = kSeed;
    LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
    auto load_orders = [&] {
      workload::LoadOptions oo;
      oo.num_rows = orders_rows_;
      oo.num_files = 4;
      oo.seed = 123;
      LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "ord/", oo));
    };
    std::optional<Query> q;
    switch (query) {
      case 1:
        q = workload::TpchQ1("s3://tpch/li/*.lpq");
        break;
      case 6:
        q = workload::TpchQ6("s3://tpch/li/*.lpq");
        break;
      case 12:
        load_orders();
        q = workload::TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/ord/*.lpq");
        break;
      case 14: {
        workload::LoadOptions po;
        po.num_rows = 20000;  // Sparse part table; identity needs no coverage.
        po.num_files = 2;
        po.seed = 321;
        LAMBADA_CHECK_OK(workload::LoadPart(&cloud.s3(), "tpch", "part/", po));
        q = workload::TpchQ14("s3://tpch/li/*.lpq", "s3://tpch/part/*.lpq");
        break;
      }
      default: {
        load_orders();
        workload::LoadOptions co;
        co.num_rows = 30000;  // Sparse customer table, same reasoning.
        co.num_files = 2;
        co.seed = 555;
        LAMBADA_CHECK_OK(
            workload::LoadCustomer(&cloud.s3(), "tpch", "cust/", co));
        q = workload::TpchQ3("s3://tpch/li/*.lpq", "s3://tpch/ord/*.lpq",
                             "s3://tpch/cust/*.lpq");
        break;
      }
    }
    RunOptions ropts;
    ropts.join_strategy = strategy;
    ropts.mitigation.enabled = true;
    ropts.mitigation.max_attempts = 6;
    ropts.mitigation.stall_timeout_s = 10.0;
    auto report = driver.RunToCompletion(*q, ropts);
    LAMBADA_CHECK(report.ok()) << report.status().ToString();
    ChaosRun run;
    run.bytes = engine::SerializeChunk(report->result);
    run.total_attempts = report->total_attempts;
    run.reinvoked_workers = report->reinvoked_workers;
    run.crashes_armed = cloud.fault().crashes_armed();
    run.stragglers_armed = cloud.fault().stragglers_armed();
    return run;
  }

  /// Fault grid shared by all sweeps: crash rates up to the acceptance 5%
  /// plus a heavy-crash point that guarantees recovery is exercised, a
  /// straggler-only schedule, and two all-at-once schedules whose seeds
  /// give two different retry orders.
  void Sweep(int query, const std::vector<int>& thread_counts,
             JoinStrategyOverride strategy = JoinStrategyOverride::kAuto) {
    int64_t crashes_seen = 0;
    int64_t stragglers_seen = 0;
    int64_t reinvocations = 0;
    for (int threads : thread_counts) {
      ChaosRun ref = RunFleet(query, threads, cloud::FaultPlan{}, strategy);
      ASSERT_FALSE(ref.bytes.empty());
      EXPECT_EQ(ref.crashes_armed, 0);
      const std::vector<cloud::FaultPlan> plans = {
          Crashes(0.02, 11), Crashes(0.05, 12), Crashes(0.05, 13),
          Crashes(0.35, 14), Stragglers(0.3),   Mixed(21),
          Mixed(22),
      };
      for (size_t i = 0; i < plans.size(); ++i) {
        ChaosRun run = RunFleet(query, threads, plans[i], strategy);
        EXPECT_EQ(run.bytes, ref.bytes)
            << "query " << query << ", " << threads << " threads, plan "
            << i;
        crashes_seen += run.crashes_armed;
        stragglers_seen += run.stragglers_armed;
        reinvocations += run.reinvoked_workers;
      }
    }
    // The grid must actually have exercised the fault paths.
    EXPECT_GT(crashes_seen, 0);
    EXPECT_GT(stragglers_seen, 0);
    EXPECT_GT(reinvocations, 0);
  }

  int64_t orders_rows_ = 0;
};

TEST_F(ChaosSweepTest, Q1SingleTableByteIdenticalUnderFaults) {
  Sweep(1, {1, 2, 8});
}

TEST_F(ChaosSweepTest, Q6SingleTableByteIdenticalUnderFaults) {
  Sweep(6, {1, 2, 8});
}

TEST_F(ChaosSweepTest, Q12PartitionedJoinByteIdenticalUnderFaults) {
  Sweep(12, {1, 2, 8}, JoinStrategyOverride::kForcePartitioned);
}

TEST_F(ChaosSweepTest, Q14BroadcastJoinByteIdenticalUnderFaults) {
  Sweep(14, {1, 8}, JoinStrategyOverride::kForceBroadcast);
}

TEST_F(ChaosSweepTest, Q3MultiJoinByteIdenticalUnderFaults) {
  Sweep(3, {1, 2, 8});
}

// ---------------------------------------------------------------------------
// Chaos under concurrency: fault grids through the serving front end
// ---------------------------------------------------------------------------

/// One serving-mode chaos run: the per-submission result bytes (submission
/// order) plus the injected-fault telemetry.
struct ServedRun {
  std::vector<std::vector<uint8_t>> bytes;
  int64_t crashes_armed = 0;
  int64_t stragglers_armed = 0;
};

/// Runs four sessions (Q1, Q6, Q12, Q1) through a QueryService over one
/// shared Cloud under `fault` — all submitted at virtual time zero when
/// `concurrent`, strictly one after the other otherwise.
ServedRun RunServedFleet(const cloud::FaultPlan& fault, bool concurrent) {
  constexpr int64_t kRows = 6000;
  constexpr uint64_t kSeed = 99;
  cloud::CloudConfig cfg;
  cfg.fault = fault;
  cloud::Cloud cloud(cfg);
  workload::LoadOptions li;
  li.num_rows = kRows;
  li.num_files = 6;
  li.row_groups_per_file = 2;
  li.seed = kSeed;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
  workload::LoadOptions oo;
  oo.num_rows =
      workload::MaxOrderKey(workload::GenerateLineitem(kRows, kSeed));
  oo.num_files = 3;
  oo.seed = 124;
  LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "ord/", oo));

  ServingOptions sopts;
  sopts.max_concurrent = 4;
  QueryService svc(&cloud, sopts);
  TenantOptions tenant;
  tenant.id = "grid";
  tenant.max_concurrent = 4;
  tenant.queue_deadline_s = 1e9;
  LAMBADA_CHECK_OK(svc.AddTenant(tenant));

  auto queries = std::make_shared<std::vector<Query>>();
  queries->push_back(workload::TpchQ1("s3://tpch/li/*.lpq"));
  queries->push_back(workload::TpchQ6("s3://tpch/li/*.lpq"));
  queries->push_back(
      workload::TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/ord/*.lpq"));
  queries->push_back(workload::TpchQ1("s3://tpch/li/*.lpq"));
  auto results = std::make_shared<std::vector<Result<QueryReport>>>(
      queries->size(), Status::Internal("pending"));

  if (concurrent) {
    for (size_t i = 0; i < queries->size(); ++i) {
      sim::Spawn([](QueryService* s, std::shared_ptr<std::vector<Query>> qs,
                    std::shared_ptr<std::vector<Result<QueryReport>>> out,
                    size_t idx) -> sim::Async<void> {
        // Named local, not a prvalue: GCC 12 bitwise-copies braced prvalue
        // aggregates when promoting them into coroutine frames.
        RunOptions ro;
        ro.mitigation.enabled = true;
        ro.mitigation.max_attempts = 6;
        ro.mitigation.stall_timeout_s = 10.0;
        (*out)[idx] = co_await s->Submit("grid", (*qs)[idx], ro);
      }(&svc, queries, results, i));
    }
  } else {
    sim::Spawn([](QueryService* s, std::shared_ptr<std::vector<Query>> qs,
                  std::shared_ptr<std::vector<Result<QueryReport>>> out)
                   -> sim::Async<void> {
      RunOptions ro;
      ro.mitigation.enabled = true;
      ro.mitigation.max_attempts = 6;
      ro.mitigation.stall_timeout_s = 10.0;
      for (size_t i = 0; i < qs->size(); ++i) {
        (*out)[i] = co_await s->Submit("grid", (*qs)[i], ro);
      }
    }(&svc, queries, results));
  }
  cloud.sim().Run();

  ServedRun run;
  for (const auto& r : *results) {
    LAMBADA_CHECK(r.ok()) << r.status().ToString();
    run.bytes.push_back(engine::SerializeChunk(r->result));
  }
  run.crashes_armed = cloud.fault().crashes_armed();
  run.stragglers_armed = cloud.fault().stragglers_armed();
  return run;
}

/// Four sessions sharing one deployment, with workers crashing and
/// straggling underneath all of them at once: every query of every plan
/// must come back byte-identical to the fault-free solo reference.
TEST_F(ChaosSweepTest, FourConcurrentServedSessionsByteIdenticalUnderFaults) {
  ServedRun ref = RunServedFleet(cloud::FaultPlan{}, /*concurrent=*/false);
  ASSERT_EQ(ref.bytes.size(), 4u);
  EXPECT_EQ(ref.crashes_armed, 0);
  const std::vector<cloud::FaultPlan> plans = {
      Crashes(0.05, 61), Crashes(0.35, 62), Stragglers(0.3, 63), Mixed(64),
  };
  int64_t crashes_seen = 0;
  int64_t stragglers_seen = 0;
  for (size_t p = 0; p < plans.size(); ++p) {
    ServedRun run = RunServedFleet(plans[p], /*concurrent=*/true);
    ASSERT_EQ(run.bytes.size(), ref.bytes.size());
    for (size_t i = 0; i < ref.bytes.size(); ++i) {
      EXPECT_EQ(run.bytes[i], ref.bytes[i])
          << "plan " << p << ", session " << i;
    }
    crashes_seen += run.crashes_armed;
    stragglers_seen += run.stragglers_armed;
  }
  EXPECT_GT(crashes_seen, 0);
  EXPECT_GT(stragglers_seen, 0);
}

/// When a shared-scan fetcher burns through its whole retry budget and
/// fails, the attacher must not be poisoned by the fetcher's error: it
/// re-arms the GET itself and completes with the real bytes. Seeds are
/// scanned deterministically until one produces that exact schedule (first
/// fetch exhausts retries, re-armed fetch succeeds); the shape of every
/// intermediate run is asserted along the way.
TEST(ServingChaosTest, AttachersSurviveFetcherFailureByRearming) {
  bool witnessed = false;
  for (uint64_t seed = 1; seed <= 24 && !witnessed; ++seed) {
    cloud::CloudConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = seed;
    cfg.fault.s3_get_error_rate = 0.9;
    cloud::Cloud cloud(cfg);
    LAMBADA_CHECK_OK(cloud.s3().CreateBucket("b"));
    cloud::SharedScanBroker broker(&cloud.sim());
    auto a_st = std::make_shared<Status>(Status::OK());
    auto b_st = std::make_shared<Status>(Status::OK());
    auto b_len = std::make_shared<int64_t>(-1);
    sim::Spawn([](cloud::Cloud* c, cloud::SharedScanBroker* br,
                  std::shared_ptr<Status> a_st, std::shared_ptr<Status> b_st,
                  std::shared_ptr<int64_t> b_len) -> sim::Async<void> {
      {
        cloud::S3Client setup(&c->s3(), c->driver_net());
        LAMBADA_CHECK_OK(co_await setup.Put(
            "b", "obj",
            Buffer::FromVector(std::vector<uint8_t>(64 * 1024, 0x5a))));
      }
      auto read = [](cloud::Cloud* c, cloud::SharedScanBroker* br,
                     std::shared_ptr<Status> st,
                     std::shared_ptr<int64_t> len) -> sim::Async<void> {
        cloud::S3Client client(&c->s3(), c->driver_net());
        auto r = co_await br->Get(&client, "b", "obj", 0, 64 * 1024);
        *st = r.ok() ? Status::OK() : r.status();
        if (r.ok()) {
          LAMBADA_CHECK((*r)->data()[7] == 0x5a);
          if (len != nullptr) *len = static_cast<int64_t>((*r)->size());
        }
      };
      std::vector<sim::Async<void>> readers;
      readers.push_back(read(c, br, a_st, nullptr));   // Fetcher.
      readers.push_back(read(c, br, b_st, b_len));     // Attacher.
      co_await sim::WhenAllVoid(&c->sim(), std::move(readers));
    }(&cloud, &broker, a_st, b_st, b_len));
    cloud.sim().Run();

    const auto& stats = broker.stats();
    // Shape invariants that hold for every seed: one initial fetch plus
    // one attach; at most one re-arm (the second reader is the only
    // candidate); a successful attacher always saw the full object.
    EXPECT_EQ(stats.attaches, 1) << "seed " << seed;
    EXPECT_GE(stats.fetches, 1) << "seed " << seed;
    EXPECT_LE(stats.fetches, 2) << "seed " << seed;
    EXPECT_EQ(stats.rearms, stats.fetches - 1) << "seed " << seed;
    if (b_st->ok()) {
      EXPECT_EQ(*b_len, 64 * 1024) << "seed " << seed;
    }
    witnessed = !a_st->ok() && b_st->ok() && stats.fetches == 2 &&
                stats.rearms == 1;
  }
  EXPECT_TRUE(witnessed)
      << "no seed in [1, 24] produced fetcher-fails/attacher-survives";
}

// ---------------------------------------------------------------------------
// Invoker-subtree recovery
// ---------------------------------------------------------------------------

/// A fault plan that kills tree invokers (and only invokers): a worker
/// with a subtree to start dies before any child or mid-branch, weighted
/// by `before_w` / `during_w`, for generations <= `max_generation`.
cloud::FaultPlan InvokerCrashes(double rate, int max_generation,
                                double before_w, double during_w,
                                uint64_t seed) {
  cloud::FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  plan.invoker_crash_rate = rate;
  plan.invoker_crash_max_generation = max_generation;
  plan.invoker_crash_before_weight = before_w;
  plan.invoker_crash_during_weight = during_w;
  return plan;
}

TEST(FailureTest, LostGen1BranchRecoversViaSubtreeReinvocation) {
  // A 36-worker two-level fleet (6 roots of 6): gen-1 invokers die before
  // starting their branch, leaving whole ID ranges silent. With subtree
  // recovery the driver re-invokes only the dead branch through its
  // invoker — one Invoke call, branch-sized re-runs, never a fleet
  // restart — and the merged result stays byte-identical to the
  // fault-free reference at every worker thread count.
  auto run = [](int threads, const cloud::FaultPlan& fault,
                int* subtree_reinvocations, int* reinvoked,
                int64_t* invoker_crashes) {
    cloud::CloudConfig cfg;
    cfg.fault = fault;
    cloud::Cloud cloud(cfg);
    DriverOptions dopts;
    if (threads > 1) {
      dopts.worker_exec = exec::ExecContext::Parallel(threads, 4096);
    }
    Driver driver(&cloud, dopts);
    LAMBADA_CHECK_OK(driver.Install());
    UploadTable(cloud, "branch/", 36, 400);
    auto q = Query::FromParquet("s3://data/branch/*.lpq");
    RunOptions ropts;
    ropts.mitigation.enabled = true;
    ropts.mitigation.subtree_recovery = true;
    ropts.mitigation.max_attempts = 6;
    ropts.mitigation.stall_timeout_s = 5.0;
    auto report = driver.RunToCompletion(q, ropts);
    LAMBADA_CHECK(report.ok()) << report.status().ToString();
    LAMBADA_CHECK(report->tree_depth == 2);
    if (subtree_reinvocations != nullptr) {
      *subtree_reinvocations = report->subtree_reinvocations;
    }
    if (reinvoked != nullptr) *reinvoked = report->reinvoked_workers;
    if (invoker_crashes != nullptr) {
      *invoker_crashes = cloud.fault().invoker_crashes_armed();
    }
    return engine::SerializeChunk(report->result);
  };
  const cloud::FaultPlan dead_branch = InvokerCrashes(0.4, 1, 1.0, 0.0, 7);
  for (int threads : {1, 2, 8}) {
    auto ref = run(threads, cloud::FaultPlan{}, nullptr, nullptr, nullptr);
    int branches = 0;
    int reinvoked = 0;
    int64_t crashes = 0;
    auto got = run(threads, dead_branch, &branches, &reinvoked, &crashes);
    EXPECT_EQ(got, ref) << threads << " threads";
    EXPECT_GE(crashes, 1) << threads << " threads";
    EXPECT_GE(branches, 1) << threads << " threads";
    EXPECT_GE(reinvoked, 2) << threads << " threads";   // A branch...
    EXPECT_LT(reinvoked, 36) << threads << " threads";  // ...not the fleet.
  }
}

// ---------------------------------------------------------------------------
// Fleet scale: 10k-worker invocation trees under invoker loss
// ---------------------------------------------------------------------------

/// Q1/Q6/Q12 fleets of 10000 workers started through the depth-3 batched
/// invocation tree, with gen-1 and gen-2 invokers dying underneath. Every
/// faulted run must come back byte-identical to the fault-free reference,
/// and recovery must cost lost-branch-sized re-invocation, never a fleet
/// restart. Registered as its own ctest entry under the `slow_fleet`
/// label (tests/CMakeLists.txt): each run starts >10k simulated workers.
class TenKFleetChaosTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 10000;
  static constexpr uint64_t kSeed = 5;

  struct FleetRun {
    std::vector<uint8_t> bytes;
    int tree_depth = 0;
    bool batched = false;
    int subtree_reinvocations = 0;
    int reinvoked_workers = 0;
    int workers = 0;
    int64_t invoker_crashes = 0;
  };

  FleetRun RunFleet(int query, const cloud::FaultPlan& fault) {
    cloud::CloudConfig cfg;
    cfg.concurrency_limit = 24000;
    // S3 request limits scale per prefix; a 10000-file dataset spans many
    // partitions, so model a bucket scaled to ~10x the single-prefix
    // rates (otherwise Q12's broadcast build fetch alone is 40k GETs
    // against one limiter and the run dies in SlowDown, not chaos).
    cfg.s3.read_rate_per_bucket = 55000.0;
    cfg.s3.write_rate_per_bucket = 35000.0;
    cfg.s3.rate_burst = 2000.0;
    cfg.fault = fault;
    cloud::Cloud cloud(cfg);
    Driver driver(&cloud);
    LAMBADA_CHECK_OK(driver.Install());
    workload::LoadOptions li;
    li.num_rows = kWorkers;  // One row per file: the fan-out is the point.
    li.num_files = kWorkers;
    li.row_groups_per_file = 1;
    li.seed = kSeed;
    LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
    std::optional<Query> q;
    switch (query) {
      case 1:
        q = workload::TpchQ1("s3://tpch/li/*.lpq");
        break;
      case 6:
        q = workload::TpchQ6("s3://tpch/li/*.lpq");
        break;
      default: {
        workload::LoadOptions oo;
        oo.num_rows =
            workload::MaxOrderKey(workload::GenerateLineitem(kWorkers, kSeed));
        oo.num_files = 4;
        oo.seed = 123;
        LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "ord/", oo));
        q = workload::TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/ord/*.lpq");
        break;
      }
    }
    RunOptions ropts;
    ropts.mitigation.enabled = true;
    ropts.mitigation.subtree_recovery = true;
    ropts.mitigation.fleet_aware = true;
    ropts.mitigation.max_attempts = 6;
    auto report = driver.RunToCompletion(*q, ropts);
    LAMBADA_CHECK(report.ok()) << report.status().ToString();
    FleetRun run;
    run.bytes = engine::SerializeChunk(report->result);
    run.tree_depth = report->tree_depth;
    run.batched = report->batched_invocation;
    run.subtree_reinvocations = report->subtree_reinvocations;
    run.reinvoked_workers = report->reinvoked_workers;
    run.workers = report->workers;
    run.invoker_crashes = cloud.fault().invoker_crashes_armed();
    return run;
  }

  void Grid(int query, const cloud::FaultPlan& fault) {
    FleetRun ref = RunFleet(query, cloud::FaultPlan{});
    EXPECT_EQ(ref.invoker_crashes, 0);
    EXPECT_EQ(ref.tree_depth, 3);
    EXPECT_TRUE(ref.batched);
    EXPECT_GE(ref.workers, 9000);
    FleetRun run = RunFleet(query, fault);
    EXPECT_EQ(run.bytes, ref.bytes) << "query " << query;
    EXPECT_GE(run.invoker_crashes, 1);
    EXPECT_GE(run.subtree_reinvocations, 1);
    EXPECT_GT(run.reinvoked_workers, 0);
    // Lost-branch-sized recovery, never a fleet restart.
    EXPECT_LT(run.reinvoked_workers, run.workers / 2);
  }
};

TEST_F(TenKFleetChaosTest, Q1Gen1InvokerLossByteIdentical) {
  Grid(1, InvokerCrashes(0.08, 1, 1.0, 0.0, 31));
}

TEST_F(TenKFleetChaosTest, Q6Gen2InvokerLossByteIdentical) {
  Grid(6, InvokerCrashes(0.04, 2, 1.0, 1.0, 32));
}

TEST_F(TenKFleetChaosTest, Q12MidInvokeLossByteIdentical) {
  Grid(12, InvokerCrashes(0.08, 2, 0.0, 1.0, 33));
}

TEST(FailureTest, MalformedPayloadCountsAsHandlerFailure) {
  cloud::Cloud cloud;
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  ASSERT_TRUE(driver.EnsureFunction(1792).ok());
  sim::Spawn([](cloud::Cloud* c) -> sim::Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "lambada-w1792", "not a payload");
  }(&cloud));
  cloud.sim().Run();
  EXPECT_EQ(cloud.faas().failed_handlers(), 1);
}

}  // namespace
}  // namespace lambada::core
