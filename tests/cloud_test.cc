#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "common/units.h"

namespace lambada::cloud {
namespace {

using sim::Async;
using sim::Spawn;

/// Runs a driver coroutine on a fresh cloud and returns after the
/// simulation drains.
template <typename Fn>
void RunOnCloud(Cloud& cloud, Fn body) {
  Spawn(body(&cloud));
  cloud.sim().Run();
}

// ---------------------------------------------------------------------------
// ObjectStore
// ---------------------------------------------------------------------------

TEST(ObjectStoreTest, PutGetRoundTrip) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  Status put_status = Status::Internal("unset");
  std::string got;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    put_status = co_await c->s3().Put(c->driver_net(), "b", "k",
                                      Buffer::FromString("payload"));
    auto r = co_await c->s3().Get(c->driver_net(), "b", "k");
    if (r.ok()) got = (*r)->ToString();
  });
  EXPECT_TRUE(put_status.ok());
  EXPECT_EQ(got, "payload");
  EXPECT_EQ(cloud.ledger().totals().s3_put_requests, 1);
  EXPECT_EQ(cloud.ledger().totals().s3_get_requests, 1);
}

TEST(ObjectStoreTest, RangeGetClampsLikeHttp) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  ASSERT_TRUE(
      cloud.s3().PutDirect("b", "k", Buffer::FromString("0123456789")).ok());
  std::string got_mid, got_tail;
  Status oob = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    auto r1 = co_await c->s3().Get(c->driver_net(), "b", "k", 2, 3);
    got_mid = (*r1)->ToString();
    auto r2 = co_await c->s3().Get(c->driver_net(), "b", "k", 8, 100);
    got_tail = (*r2)->ToString();
    auto r3 = co_await c->s3().Get(c->driver_net(), "b", "k", 20, 1);
    oob = r3.status();
  });
  EXPECT_EQ(got_mid, "234");
  EXPECT_EQ(got_tail, "89");
  EXPECT_EQ(oob.code(), StatusCode::kOutOfRange);
}

TEST(ObjectStoreTest, MissingKeyIsNotFoundAndBilled) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  Status s = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    auto r = co_await c->s3().Get(c->driver_net(), "b", "nope");
    s = r.status();
  });
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(cloud.ledger().totals().s3_get_requests, 1);
}

TEST(ObjectStoreTest, VirtualScaleInflatesTransferTimeAndBytes) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  // 1 MiB real data scaled 100x => 100 MiB modeled.
  std::vector<uint8_t> data(1 * kMiB, 7);
  ASSERT_TRUE(cloud.s3()
                  .PutDirect("b", "big", Buffer::FromVector(std::move(data)),
                             /*scale=*/100.0)
                  .ok());
  EXPECT_EQ(*cloud.s3().VirtualSize("b", "big"), 100 * kMiB);
  double elapsed = 0;
  size_t real_size = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    double t0 = c->sim().Now();
    auto r = co_await c->s3().Get(c->driver_net(), "b", "big");
    elapsed = c->sim().Now() - t0;
    real_size = (*r)->size();
  });
  EXPECT_EQ(real_size, static_cast<size_t>(1 * kMiB));
  EXPECT_EQ(cloud.ledger().totals().s3_bytes_read, 100 * kMiB);
  // Driver link is ~1000 MiB/s: 100 MiB takes ~0.1 s plus small latency.
  EXPECT_GT(elapsed, 0.09);
  EXPECT_LT(elapsed, 0.5);
}

TEST(ObjectStoreTest, RateLimitTriggersSlowDown) {
  CloudConfig cfg;
  cfg.s3.read_rate_per_bucket = 10.0;
  cfg.s3.rate_burst = 5.0;
  cfg.s3.slowdown_queue_threshold_s = 0.2;
  Cloud cloud(cfg);
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  ASSERT_TRUE(cloud.s3().PutDirect("b", "k", Buffer::FromString("x")).ok());
  int slowdowns = 0, oks = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    std::vector<Async<void>> gets;
    for (int i = 0; i < 50; ++i) {
      gets.push_back([](Cloud* cl, int* sd, int* ok) -> Async<void> {
        auto r = co_await cl->s3().Get(cl->driver_net(), "b", "k");
        if (r.ok()) {
          ++*ok;
        } else if (r.status().IsResourceExhausted()) {
          ++*sd;
        }
      }(c, &slowdowns, &oks));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(gets));
  });
  EXPECT_GT(slowdowns, 0);
  EXPECT_GT(oks, 0);
  EXPECT_EQ(slowdowns + oks, 50);
}

TEST(ObjectStoreTest, S3ClientRetriesThroughSlowDown) {
  CloudConfig cfg;
  cfg.s3.read_rate_per_bucket = 50.0;
  cfg.s3.rate_burst = 5.0;
  cfg.s3.slowdown_queue_threshold_s = 0.05;
  Cloud cloud(cfg);
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  ASSERT_TRUE(cloud.s3().PutDirect("b", "k", Buffer::FromString("x")).ok());
  int failures = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    std::vector<Async<void>> gets;
    for (int i = 0; i < 40; ++i) {
      gets.push_back([](Cloud* cl, int* fail) -> Async<void> {
        S3Client client(&cl->s3(), cl->driver_net());
        auto r = co_await client.Get("b", "k");
        if (!r.ok()) ++*fail;
      }(c, &failures));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(gets));
  });
  EXPECT_EQ(failures, 0);
}

TEST(ObjectStoreTest, GetWhenAvailablePollsUntilPut) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  std::string got;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    // A writer that publishes late.
    Spawn([](Cloud* cl) -> Async<void> {
      co_await sim::Sleep(&cl->sim(), 2.0);
      co_await cl->s3().Put(cl->driver_net(), "b", "late",
                            Buffer::FromString("v"));
    }(c));
    S3Client client(&c->s3(), c->driver_net());
    auto r = co_await client.GetWhenAvailable("b", "late", 0.1, 10.0);
    if (r.ok()) got = (*r)->ToString();
  });
  EXPECT_EQ(got, "v");
  EXPECT_GE(cloud.sim().Now(), 2.0);
}

TEST(ObjectStoreTest, GetWhenAvailableTimesOut) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  Status s = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    S3Client client(&c->s3(), c->driver_net());
    auto r = co_await client.GetWhenAvailable("b", "never", 0.1, 1.0);
    s = r.status();
  });
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(ObjectStoreTest, BatchedVerbsRoundTripInSlotOrder) {
  // The batched entry points (depth-bounded fan-out via
  // exec::RequestBatcher) must return results in request-slot order
  // whatever the depth, and a polling batch must ride out late writers.
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  std::vector<Status> put_statuses;
  std::vector<std::string> got;
  std::vector<std::string> polled;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    S3Client client(&c->s3(), c->driver_net());
    std::vector<S3Client::PutRequest> puts;
    for (int i = 0; i < 8; ++i) {
      puts.push_back({"b", "k" + std::to_string(i),
                      Buffer::FromString("v" + std::to_string(i))});
    }
    put_statuses = co_await client.BatchPut(std::move(puts), /*depth=*/3);
    std::vector<S3Client::RangeRequest> gets;
    for (int i = 0; i < 8; ++i) {
      gets.push_back({"b", "k" + std::to_string(i)});
    }
    auto results = co_await client.BatchGet(std::move(gets), /*depth=*/3);
    for (auto& r : results) {
      got.push_back(r.ok() ? (*r)->ToString() : "ERR");
    }
    // A writer that publishes one key late: the polling batch must wait.
    Spawn([](Cloud* cl) -> Async<void> {
      co_await sim::Sleep(&cl->sim(), 1.0);
      co_await cl->s3().Put(cl->driver_net(), "b", "late",
                            Buffer::FromString("vlate"));
    }(c));
    std::vector<S3Client::KeyRequest> keys;
    for (int i = 0; i < 3; ++i) keys.push_back({"b", "k" + std::to_string(i)});
    keys.push_back({"b", "late"});
    auto waited =
        co_await client.BatchGetWhenAvailable(std::move(keys), 0.1, 10.0,
                                              /*depth=*/2);
    for (auto& r : waited) {
      polled.push_back(r.ok() ? (*r)->ToString() : "ERR");
    }
  });
  for (const auto& s : put_statuses) EXPECT_TRUE(s.ok());
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], "v" + std::to_string(i));
  EXPECT_EQ(polled, (std::vector<std::string>{"v0", "v1", "v2", "vlate"}));
  EXPECT_GE(cloud.sim().Now(), 1.0);
}

TEST(ObjectStoreTest, ListReturnsPrefixedKeysSorted) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  for (const char* k : {"x/2", "x/1", "y/1", "x/3"}) {
    ASSERT_TRUE(cloud.s3().PutDirect("b", k, Buffer::FromString("d")).ok());
  }
  std::vector<std::string> keys;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    auto r = co_await c->s3().List(c->driver_net(), "b", "x/");
    for (const auto& o : *r) keys.push_back(o.key);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"x/1", "x/2", "x/3"}));
  EXPECT_EQ(cloud.ledger().totals().s3_list_requests, 1);
}

TEST(ObjectStoreTest, OversizedKeyRejected) {
  Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("b").ok());
  Status s = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    std::string key(2000, 'k');
    s = co_await c->s3().Put(c->driver_net(), "b", key,
                             Buffer::FromString("x"));
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// QueueService
// ---------------------------------------------------------------------------

TEST(QueueServiceTest, SendReceiveFifo) {
  Cloud cloud;
  ASSERT_TRUE(cloud.sqs().CreateQueue("q").ok());
  std::vector<std::string> got;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->sqs().Send(c->driver_net(), "q", "m1");
    co_await c->sqs().Send(c->driver_net(), "q", "m2");
    auto r = co_await c->sqs().Receive(c->driver_net(), "q", 10, 1.0);
    got = *r;
  });
  EXPECT_EQ(got, (std::vector<std::string>{"m1", "m2"}));
}

TEST(QueueServiceTest, LongPollWaitsForMessage) {
  Cloud cloud;
  ASSERT_TRUE(cloud.sqs().CreateQueue("q").ok());
  std::vector<std::string> got;
  double received_at = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    Spawn([](Cloud* cl) -> Async<void> {
      co_await sim::Sleep(&cl->sim(), 0.5);
      co_await cl->sqs().Send(cl->driver_net(), "q", "late");
    }(c));
    auto r = co_await c->sqs().Receive(c->driver_net(), "q", 10, 5.0);
    got = *r;
    received_at = c->sim().Now();
  });
  EXPECT_EQ(got, (std::vector<std::string>{"late"}));
  EXPECT_GE(received_at, 0.5);
  EXPECT_LT(received_at, 1.0);
}

TEST(QueueServiceTest, ReceiveTimesOutEmpty) {
  Cloud cloud;
  ASSERT_TRUE(cloud.sqs().CreateQueue("q").ok());
  bool empty = false;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    auto r = co_await c->sqs().Receive(c->driver_net(), "q", 10, 0.5);
    empty = r->empty();
  });
  EXPECT_TRUE(empty);
  EXPECT_GE(cloud.sim().Now(), 0.5);
}

TEST(QueueServiceTest, BatchLimitIsTen) {
  Cloud cloud;
  ASSERT_TRUE(cloud.sqs().CreateQueue("q").ok());
  size_t first_batch = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    for (int i = 0; i < 15; ++i) {
      co_await c->sqs().Send(c->driver_net(), "q", "m");
    }
    auto r = co_await c->sqs().Receive(c->driver_net(), "q", 100, 0.1);
    first_batch = r->size();
  });
  EXPECT_EQ(first_batch, 10u);
  EXPECT_EQ(cloud.sqs().DepthDirect("q"), 5u);
}

TEST(QueueServiceTest, OversizedMessageRejected) {
  Cloud cloud;
  ASSERT_TRUE(cloud.sqs().CreateQueue("q").ok());
  Status s = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    s = co_await c->sqs().Send(c->driver_net(), "q",
                               std::string(300 * 1024, 'x'));
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// KeyValueStore
// ---------------------------------------------------------------------------

TEST(KeyValueStoreTest, PutGetDelete) {
  Cloud cloud;
  ASSERT_TRUE(cloud.ddb().CreateTable("t").ok());
  std::string got;
  Status after_delete = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->ddb().Put(c->driver_net(), "t", "k", "v1");
    auto r = co_await c->ddb().Get(c->driver_net(), "t", "k");
    got = *r;
    co_await c->ddb().Delete(c->driver_net(), "t", "k");
    auto r2 = co_await c->ddb().Get(c->driver_net(), "t", "k");
    after_delete = r2.status();
  });
  EXPECT_EQ(got, "v1");
  EXPECT_TRUE(after_delete.IsNotFound());
  EXPECT_EQ(cloud.ledger().totals().ddb_writes, 2);
  EXPECT_EQ(cloud.ledger().totals().ddb_reads, 2);
}

TEST(KeyValueStoreTest, IncrementIsAtomicCounter) {
  Cloud cloud;
  ASSERT_TRUE(cloud.ddb().CreateTable("t").ok());
  int64_t last = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    std::vector<Async<void>> incs;
    for (int i = 0; i < 10; ++i) {
      incs.push_back([](Cloud* cl) -> Async<void> {
        co_await cl->ddb().Increment(cl->driver_net(), "t", "n", 1);
      }(c));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(incs));
    auto r = co_await c->ddb().Get(c->driver_net(), "t", "n");
    last = std::stoll(*r);
  });
  EXPECT_EQ(last, 10);
}

// ---------------------------------------------------------------------------
// FaasService
// ---------------------------------------------------------------------------

FunctionConfig EchoFunction(std::vector<std::string>* sink,
                            int memory_mib = 2048) {
  FunctionConfig cfg;
  cfg.name = "echo";
  cfg.memory_mib = memory_mib;
  cfg.handler = [sink](WorkerEnv& env, std::string payload) -> Async<Status> {
    co_await env.Compute(0.1);
    sink->push_back(payload);
    co_return Status::OK();
  };
  return cfg;
}

TEST(FaasTest, InvokeRunsHandler) {
  Cloud cloud;
  std::vector<std::string> sink;
  ASSERT_TRUE(cloud.faas().CreateFunction(EchoFunction(&sink)).ok());
  Status s = Status::Internal("unset");
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    s = co_await c->faas().Invoke(c->driver_invoker_profile(),
                                  &c->driver_rng(), "echo", "hello");
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(sink, (std::vector<std::string>{"hello"}));
  EXPECT_EQ(cloud.ledger().totals().lambda_invocations, 1);
  EXPECT_GT(cloud.ledger().totals().lambda_gib_seconds, 0.0);
}

TEST(FaasTest, SecondInvocationIsWarmAndFaster) {
  Cloud cloud;
  std::vector<std::string> sink;
  ASSERT_TRUE(cloud.faas().CreateFunction(EchoFunction(&sink)).ok());
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "echo", "a");
    co_await sim::Sleep(&c->sim(), 5.0);  // Let the first one finish.
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "echo", "b");
  });
  const auto& metrics = cloud.faas().completed_metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_TRUE(metrics[0].cold_start);
  EXPECT_FALSE(metrics[1].cold_start);
  double cold_duration = metrics[0].handler_end - metrics[0].handler_start;
  double warm_duration = metrics[1].handler_end - metrics[1].handler_start;
  EXPECT_GT(cold_duration, warm_duration);
}

TEST(FaasTest, ConcurrencyLimitThrottles) {
  CloudConfig cfg;
  cfg.concurrency_limit = 3;
  Cloud cloud(cfg);
  FunctionConfig fn;
  fn.name = "slow";
  fn.memory_mib = 1792;
  fn.handler = [](WorkerEnv& env, std::string) -> Async<Status> {
    co_await sim::Sleep(env.sim(), 10.0);
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  int ok = 0, throttled = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    for (int i = 0; i < 5; ++i) {
      Status s = co_await c->faas().Invoke(c->driver_invoker_profile(),
                                           &c->driver_rng(), "slow", "");
      if (s.ok()) {
        ++ok;
      } else if (s.IsResourceExhausted()) {
        ++throttled;
      }
    }
  });
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(throttled, 2);
}

TEST(FaasTest, BillingRoundsUpTo100msAndScalesWithMemory) {
  CloudConfig cfg;
  cfg.faas.cold_init_cpu_s = 0;  // Isolate the billing arithmetic.
  Cloud cloud(cfg);
  FunctionConfig fn;
  fn.name = "f";
  fn.memory_mib = 1024;  // 1 GiB => GiB-s == seconds billed.
  fn.handler = [](WorkerEnv& env, std::string) -> Async<Status> {
    co_await sim::Sleep(env.sim(), 0.25);  // Bills as 0.3 s.
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "f", "");
  });
  EXPECT_NEAR(cloud.ledger().totals().lambda_gib_seconds, 0.3, 1e-9);
}

TEST(FaasTest, HandlerErrorIsCountedNotFatal) {
  Cloud cloud;
  FunctionConfig fn;
  fn.name = "f";
  fn.memory_mib = 1792;
  fn.handler = [](WorkerEnv&, std::string) -> Async<Status> {
    co_return Status::OutOfMemory("boom");
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "f", "");
  });
  EXPECT_EQ(cloud.faas().failed_handlers(), 1);
}

TEST(FaasTest, OversizedPayloadRejected) {
  Cloud cloud;
  std::vector<std::string> sink;
  ASSERT_TRUE(cloud.faas().CreateFunction(EchoFunction(&sink)).ok());
  Status s = Status::OK();
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    s = co_await c->faas().Invoke(c->driver_invoker_profile(),
                                  &c->driver_rng(), "echo",
                                  std::string(300 * 1024, 'x'));
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FaasTest, WorkerEnvMemoryAccounting) {
  Cloud cloud;
  FunctionConfig fn;
  fn.name = "f";
  fn.memory_mib = 512;
  Status reserve_big = Status::OK();
  fn.handler = [&](WorkerEnv& env, std::string) -> Async<Status> {
    // 512 MiB function: budget is below 512 MiB but well above 256.
    LAMBADA_CHECK_OK(env.ReserveMemory(256 * kMiB));
    reserve_big = env.ReserveMemory(256 * kMiB);
    env.ReleaseMemory(256 * kMiB);
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "f", "");
  });
  EXPECT_EQ(reserve_big.code(), StatusCode::kOutOfMemory);
}

TEST(FaasTest, CpuShareMatchesFigure4Model) {
  // A 1-vCPU-second job on a 512 MiB worker takes 1792/512 = 3.5 s;
  // on a 1792 MiB worker it takes 1 s.
  for (auto [mem, expected] : std::vector<std::pair<int, double>>{
           {512, 3.5}, {1792, 1.0}, {3008, 1.0}}) {
    Cloud cloud;
    FunctionConfig fn;
    fn.name = "f";
    fn.memory_mib = mem;
    double duration = -1;
    fn.handler = [&duration](WorkerEnv& env, std::string) -> Async<Status> {
      double t0 = env.sim()->Now();
      co_await env.Compute(1.0);
      duration = env.sim()->Now() - t0;
      co_return Status::OK();
    };
    ASSERT_TRUE(cloud.faas().CreateFunction(fn).ok());
    RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "f", "");
    });
    EXPECT_NEAR(duration, expected, 1e-6) << "memory " << mem;
  }
}

TEST(FaasTest, DriverInvocationRateMatchesTable1) {
  // 128 concurrent invocation threads from the driver should achieve
  // roughly the region's client rate (Table 1: eu = 294/s).
  Cloud cloud;
  std::vector<std::string> sink;
  ASSERT_TRUE(cloud.faas().CreateFunction(EchoFunction(&sink)).ok());
  cloud.faas().set_concurrency_limit(4000);
  const int kInvocations = 512;
  double elapsed = 0;
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    double t0 = c->sim().Now();
    auto sem = std::make_shared<sim::Semaphore>(&c->sim(), 128);
    std::vector<Async<void>> calls;
    for (int i = 0; i < kInvocations; ++i) {
      calls.push_back([](Cloud* cl,
                         std::shared_ptr<sim::Semaphore> s) -> Async<void> {
        co_await s->Acquire();
        co_await cl->faas().Invoke(cl->driver_invoker_profile(),
                                   &cl->driver_rng(), "echo", "x");
        s->Release();
      }(c, sem));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(calls));
    elapsed = c->sim().Now() - t0;
  });
  double rate = kInvocations / elapsed;
  EXPECT_GT(rate, 250.0);
  EXPECT_LT(rate, 370.0);  // Client-bucket burst inflates short runs.
}

TEST(FaasTest, IntraRegionSequentialRateMatchesTable1) {
  // A worker invoking sequentially achieves ~81/s (Table 1).
  Cloud cloud;
  cloud.faas().set_concurrency_limit(4000);
  std::vector<std::string> sink;
  ASSERT_TRUE(cloud.faas().CreateFunction(EchoFunction(&sink)).ok());
  FunctionConfig parent;
  parent.name = "parent";
  parent.memory_mib = 2048;
  double rate = 0;
  parent.handler = [&rate](WorkerEnv& env, std::string) -> Async<Status> {
    double t0 = env.sim()->Now();
    for (int i = 0; i < 100; ++i) {
      co_await env.services().faas->Invoke(env.invoker_profile(), &env.rng(),
                                           "echo", "x");
    }
    rate = 100 / (env.sim()->Now() - t0);
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud.faas().CreateFunction(parent).ok());
  RunOnCloud(cloud, [&](Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "parent", "");
  });
  EXPECT_GT(rate, 70.0);
  EXPECT_LT(rate, 95.0);
}

}  // namespace
}  // namespace lambada::cloud
