#include <gtest/gtest.h>

#include "engine/table.h"

namespace lambada::engine {
namespace {

SchemaPtr S2() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"a", DataType::kInt64}, {"b", DataType::kFloat64}});
}

TEST(SchemaTest, FieldLookup) {
  auto s = S2();
  EXPECT_EQ(s->FieldIndex("a"), 0);
  EXPECT_EQ(s->FieldIndex("b"), 1);
  EXPECT_EQ(s->FieldIndex("c"), -1);
  EXPECT_FALSE(s->RequireField("c").ok());
  EXPECT_EQ(*s->RequireField("b"), 1u);
}

TEST(SchemaTest, ProjectReorders) {
  auto p = S2()->Project({1, 0});
  EXPECT_EQ(p.field(0).name, "b");
  EXPECT_EQ(p.field(1).name, "a");
}

TEST(ColumnTest, TypedAccessAndWidening) {
  Column c = Column::Int64({1, 2, 3});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.ValueAsDouble(2), 3.0);
  Column f = Column::Float64({2.5});
  EXPECT_EQ(f.ValueAsInt64(0), 2);
}

TEST(ColumnTest, Filter) {
  Column c = Column::Int64({1, 2, 3, 4});
  Column out = c.Filter({true, false, true, false});
  EXPECT_EQ(out.i64(), (std::vector<int64_t>{1, 3}));
}

TEST(TableChunkTest, ConstructionValidatesLengths) {
  TableChunk t(S2(), {Column::Int64({1, 2}), Column::Float64({0.5, 1.5})});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableChunkTest, ProjectAndFilter) {
  TableChunk t(S2(), {Column::Int64({1, 2, 3}),
                      Column::Float64({0.5, 1.5, 2.5})});
  auto p = t.Project({1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->schema()->field(0).name, "b");
  TableChunk f = t.Filter({false, true, true});
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_EQ(f.column(0).i64(), (std::vector<int64_t>{2, 3}));
  EXPECT_FALSE(t.Project({5}).ok());
}

TEST(TableChunkTest, AppendChecksSchema) {
  TableChunk a(S2(), {Column::Int64({1}), Column::Float64({0.5})});
  TableChunk b(S2(), {Column::Int64({2}), Column::Float64({1.5})});
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_rows(), 2u);
  auto other = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  TableChunk c(other, {Column::Int64({9})});
  EXPECT_FALSE(a.Append(c).ok());
}

TEST(TableChunkTest, ConcatAndEmpty) {
  auto empty = ConcatChunks({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
  TableChunk a(S2(), {Column::Int64({1}), Column::Float64({0.5})});
  TableChunk b(S2(), {Column::Int64({2, 3}), Column::Float64({1.5, 2.5})});
  auto cat = ConcatChunks({a, b});
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->num_rows(), 3u);
  EXPECT_EQ(cat->column(0).i64(), (std::vector<int64_t>{1, 2, 3}));
}

TEST(TableChunkTest, MemoryBytes) {
  TableChunk t(S2(), {Column::Int64({1, 2}), Column::Float64({0.5, 1.5})});
  EXPECT_EQ(t.memory_bytes(), 2 * 2 * 8);
}

}  // namespace
}  // namespace lambada::engine
