#include <gtest/gtest.h>

#include "test_util.h"

#include "cloud/cloud.h"
#include "common/units.h"
#include "core/driver.h"
#include "workload/tpch.h"

namespace lambada::workload {
namespace {

using engine::TableChunk;

TEST(TpchDateTest, KnownDates) {
  EXPECT_EQ(TpchDate(1992, 1, 1), 0);
  EXPECT_EQ(TpchDate(1992, 1, 2), 1);
  EXPECT_EQ(TpchDate(1992, 2, 1), 31);
  EXPECT_EQ(TpchDate(1993, 1, 1), 366);  // 1992 is a leap year.
  EXPECT_EQ(TpchDate(1998, 12, 1), 2526);
  EXPECT_EQ(Q1CutoffDate(), TpchDate(1998, 9, 2));
}

TEST(TpchGenTest, SchemaAndSortedness) {
  TableChunk li = GenerateLineitem(20000, 42);
  EXPECT_EQ(li.num_rows(), 20000u);
  EXPECT_EQ(li.num_columns(), 16u);
  EXPECT_EQ(li.schema()->FieldIndex("l_shipdate"), 10);
  const auto& ship = li.column(10).i64();
  for (size_t i = 1; i < ship.size(); ++i) {
    ASSERT_LE(ship[i - 1], ship[i]) << "not sorted by l_shipdate";
  }
}

TEST(TpchGenTest, ValueDistributions) {
  TableChunk li = GenerateLineitem(50000, 1);
  const auto& qty = li.column(4).f64();
  const auto& disc = li.column(6).f64();
  const auto& tax = li.column(7).f64();
  const auto& rf = li.column(8).i64();
  const auto& ls = li.column(9).i64();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GE(qty[i], 1.0);
    ASSERT_LE(qty[i], 50.0);
    ASSERT_GE(disc[i], 0.0);
    ASSERT_LE(disc[i], 0.10 + 1e-12);
    ASSERT_GE(tax[i], 0.0);
    ASSERT_LE(tax[i], 0.08 + 1e-12);
    ASSERT_TRUE(rf[i] == 0 || rf[i] == 1 || rf[i] == 2);
    ASSERT_TRUE(ls[i] == 0 || ls[i] == 1);
  }
}

TEST(TpchGenTest, DeterministicForSeed) {
  TableChunk a = GenerateLineitem(1000, 5);
  TableChunk b = GenerateLineitem(1000, 5);
  EXPECT_EQ(a.column(0).i64(), b.column(0).i64());
  EXPECT_EQ(a.column(5).f64(), b.column(5).f64());
}

TEST(TpchGenTest, Q1SelectivityAround98Percent) {
  TableChunk li = GenerateLineitem(50000, 9);
  const auto& ship = li.column(10).i64();
  int64_t selected = 0;
  for (int64_t d : ship) {
    if (d <= Q1CutoffDate()) ++selected;
  }
  double sel = static_cast<double>(selected) / ship.size();
  EXPECT_GT(sel, 0.95);
  EXPECT_LT(sel, 0.995);
}

TEST(TpchGenTest, Q6SelectivityAround2Percent) {
  TableChunk li = GenerateLineitem(100000, 9);
  const auto& ship = li.column(10).i64();
  const auto& disc = li.column(6).f64();
  const auto& qty = li.column(4).f64();
  int64_t selected = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (ship[i] >= TpchDate(1994, 1, 1) && ship[i] < TpchDate(1995, 1, 1) &&
        disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24.0) {
      ++selected;
    }
  }
  double sel = static_cast<double>(selected) / li.num_rows();
  EXPECT_GT(sel, 0.010);
  EXPECT_LT(sel, 0.035);
}

TEST(TpchLoadTest, LoadsFilesWithVirtualScale) {
  cloud::Cloud cloud;
  LoadOptions opts;
  opts.num_rows = 8000;
  opts.num_files = 4;
  opts.row_groups_per_file = 4;
  opts.virtual_bytes_per_file = 500 * kMB;
  auto info = LoadLineitem(&cloud.s3(), "tpch", "sf/", opts);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto files = cloud.s3().ListDirect("tpch", "sf/");
  ASSERT_EQ(files.size(), 4u);
  for (const auto& f : files) {
    EXPECT_NEAR(static_cast<double>(f.size), 500e6, 1e6);
  }
  EXPECT_NEAR(static_cast<double>(info->virtual_bytes), 4 * 500e6, 4e6);
}

class TpchQueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = std::make_unique<cloud::Cloud>();
    driver_ = std::make_unique<core::Driver>(cloud_.get());
    ASSERT_TRUE(driver_->Install().ok());
    LoadOptions opts;
    opts.num_rows = 30000;
    opts.num_files = 8;
    opts.row_groups_per_file = 4;
    opts.seed = 77;
    ASSERT_TRUE(LoadLineitem(&cloud_->s3(), "tpch", "li/", opts).ok());
    reference_input_ = GenerateLineitem(opts.num_rows, opts.seed);
  }

  std::unique_ptr<cloud::Cloud> cloud_;
  std::unique_ptr<core::Driver> driver_;
  TableChunk reference_input_;
};

TEST_F(TpchQueryFixture, Q1MatchesReference) {
  auto report = driver_->RunToCompletion(TpchQ1("s3://tpch/li/*.lpq"),
                                         core::RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  TableChunk expected = ReferenceQ1(reference_input_);
  const TableChunk& got = report->result;
  ASSERT_EQ(got.num_rows(), expected.num_rows());
  ASSERT_EQ(got.num_columns(), expected.num_columns());
  for (size_t c = 0; c < got.num_columns(); ++c) {
    for (size_t r = 0; r < got.num_rows(); ++r) {
      if (got.column(c).type() == engine::DataType::kInt64) {
        EXPECT_EQ(got.column(c).i64()[r], expected.column(c).i64()[r])
            << "col " << c << " row " << r;
      } else {
        double e = expected.column(c).f64()[r];
        EXPECT_NEAR(got.column(c).f64()[r], e,
                    std::abs(e) * 1e-9 + 1e-9)
            << "col " << c << " row " << r;
      }
    }
  }
  // Q1 prunes only the tail of the relation (ships after 1998-09-02).
  int64_t pruned = 0, total = 0;
  for (const auto& wr : report->worker_results) {
    pruned += wr.metrics.row_groups_pruned;
    total += wr.metrics.row_groups_total;
  }
  EXPECT_GT(total, 0);
  EXPECT_LT(static_cast<double>(pruned) / total, 0.15);
}

TEST_F(TpchQueryFixture, Q6MatchesReferenceAndPrunesMost) {
  auto report = driver_->RunToCompletion(TpchQ6("s3://tpch/li/*.lpq"),
                                         core::RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  double expected = ReferenceQ6(reference_input_);
  ASSERT_EQ(report->result.num_rows(), 1u);
  EXPECT_NEAR(report->result.column(0).f64()[0], expected,
              std::abs(expected) * 1e-9 + 1e-9);
  // The relation is sorted by l_shipdate and Q6 selects one year of seven:
  // most row groups must be pruned via min/max statistics (Section 5.3).
  int64_t pruned = 0, total = 0;
  for (const auto& wr : report->worker_results) {
    pruned += wr.metrics.row_groups_pruned;
    total += wr.metrics.row_groups_total;
  }
  double frac = static_cast<double>(pruned) / total;
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.95);
}

TEST_F(TpchQueryFixture, Q6CheaperAndLighterThanQ1) {
  auto q1 = driver_->RunToCompletion(TpchQ1("s3://tpch/li/*.lpq"),
                                     core::RunOptions{});
  auto q6 = driver_->RunToCompletion(TpchQ6("s3://tpch/li/*.lpq"),
                                     core::RunOptions{});
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q6.ok());
  // Q6 reads fewer bytes (pruning + fewer columns).
  EXPECT_LT(q6->cost.s3_bytes_read, q1->cost.s3_bytes_read);
}

}  // namespace
}  // namespace lambada::workload
