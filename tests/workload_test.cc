#include <gtest/gtest.h>

#include "test_util.h"

#include <cmath>
#include <optional>

#include "cloud/cloud.h"
#include "common/units.h"
#include "core/driver.h"
#include "engine/chunk_serde.h"
#include "workload/tpch.h"

namespace lambada::workload {
namespace {

using engine::TableChunk;

TEST(TpchDateTest, KnownDates) {
  EXPECT_EQ(TpchDate(1992, 1, 1), 0);
  EXPECT_EQ(TpchDate(1992, 1, 2), 1);
  EXPECT_EQ(TpchDate(1992, 2, 1), 31);
  EXPECT_EQ(TpchDate(1993, 1, 1), 366);  // 1992 is a leap year.
  EXPECT_EQ(TpchDate(1998, 12, 1), 2526);
  EXPECT_EQ(Q1CutoffDate(), TpchDate(1998, 9, 2));
}

TEST(TpchGenTest, SchemaAndSortedness) {
  TableChunk li = GenerateLineitem(20000, 42);
  EXPECT_EQ(li.num_rows(), 20000u);
  EXPECT_EQ(li.num_columns(), 16u);
  EXPECT_EQ(li.schema()->FieldIndex("l_shipdate"), 10);
  const auto& ship = li.column(10).i64();
  for (size_t i = 1; i < ship.size(); ++i) {
    ASSERT_LE(ship[i - 1], ship[i]) << "not sorted by l_shipdate";
  }
}

TEST(TpchGenTest, ValueDistributions) {
  TableChunk li = GenerateLineitem(50000, 1);
  const auto& qty = li.column(4).f64();
  const auto& disc = li.column(6).f64();
  const auto& tax = li.column(7).f64();
  const auto& rf = li.column(8).i64();
  const auto& ls = li.column(9).i64();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GE(qty[i], 1.0);
    ASSERT_LE(qty[i], 50.0);
    ASSERT_GE(disc[i], 0.0);
    ASSERT_LE(disc[i], 0.10 + 1e-12);
    ASSERT_GE(tax[i], 0.0);
    ASSERT_LE(tax[i], 0.08 + 1e-12);
    ASSERT_TRUE(rf[i] == 0 || rf[i] == 1 || rf[i] == 2);
    ASSERT_TRUE(ls[i] == 0 || ls[i] == 1);
  }
}

TEST(TpchGenTest, DeterministicForSeed) {
  TableChunk a = GenerateLineitem(1000, 5);
  TableChunk b = GenerateLineitem(1000, 5);
  EXPECT_EQ(a.column(0).i64(), b.column(0).i64());
  EXPECT_EQ(a.column(5).f64(), b.column(5).f64());
}

TEST(TpchGenTest, Q1SelectivityAround98Percent) {
  TableChunk li = GenerateLineitem(50000, 9);
  const auto& ship = li.column(10).i64();
  int64_t selected = 0;
  for (int64_t d : ship) {
    if (d <= Q1CutoffDate()) ++selected;
  }
  double sel = static_cast<double>(selected) / ship.size();
  EXPECT_GT(sel, 0.95);
  EXPECT_LT(sel, 0.995);
}

TEST(TpchGenTest, Q6SelectivityAround2Percent) {
  TableChunk li = GenerateLineitem(100000, 9);
  const auto& ship = li.column(10).i64();
  const auto& disc = li.column(6).f64();
  const auto& qty = li.column(4).f64();
  int64_t selected = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (ship[i] >= TpchDate(1994, 1, 1) && ship[i] < TpchDate(1995, 1, 1) &&
        disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24.0) {
      ++selected;
    }
  }
  double sel = static_cast<double>(selected) / li.num_rows();
  EXPECT_GT(sel, 0.010);
  EXPECT_LT(sel, 0.035);
}

TEST(TpchLoadTest, LoadsFilesWithVirtualScale) {
  cloud::Cloud cloud;
  LoadOptions opts;
  opts.num_rows = 8000;
  opts.num_files = 4;
  opts.row_groups_per_file = 4;
  opts.virtual_bytes_per_file = 500 * kMB;
  auto info = LoadLineitem(&cloud.s3(), "tpch", "sf/", opts);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto files = cloud.s3().ListDirect("tpch", "sf/");
  ASSERT_EQ(files.size(), 4u);
  // 500 MB is the PLAIN file's virtual size; the auto-encoded file models
  // fewer bytes by exactly the encodings' savings.
  for (const auto& f : files) {
    EXPECT_LE(static_cast<double>(f.size), 501e6);
    EXPECT_GE(static_cast<double>(f.size), 200e6);
  }
  EXPECT_LE(static_cast<double>(info->virtual_bytes), 4 * 501e6);

  // A plain-encoded fixture hits the target exactly.
  opts.auto_encoding = false;
  auto plain_info = LoadLineitem(&cloud.s3(), "tpch", "sf-plain/", opts);
  ASSERT_TRUE(plain_info.ok());
  for (const auto& f : cloud.s3().ListDirect("tpch", "sf-plain/")) {
    EXPECT_NEAR(static_cast<double>(f.size), 500e6, 1e6);
  }
  EXPECT_NEAR(static_cast<double>(plain_info->virtual_bytes), 4 * 500e6,
              4e6);
}

class TpchQueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = std::make_unique<cloud::Cloud>();
    driver_ = std::make_unique<core::Driver>(cloud_.get());
    ASSERT_TRUE(driver_->Install().ok());
    LoadOptions opts;
    opts.num_rows = 30000;
    opts.num_files = 8;
    opts.row_groups_per_file = 4;
    opts.seed = 77;
    ASSERT_TRUE(LoadLineitem(&cloud_->s3(), "tpch", "li/", opts).ok());
    reference_input_ = GenerateLineitem(opts.num_rows, opts.seed);
  }

  std::unique_ptr<cloud::Cloud> cloud_;
  std::unique_ptr<core::Driver> driver_;
  TableChunk reference_input_;
};

TEST_F(TpchQueryFixture, Q1MatchesReference) {
  auto report = driver_->RunToCompletion(TpchQ1("s3://tpch/li/*.lpq"),
                                         core::RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  TableChunk expected = ReferenceQ1(reference_input_);
  const TableChunk& got = report->result;
  ASSERT_EQ(got.num_rows(), expected.num_rows());
  ASSERT_EQ(got.num_columns(), expected.num_columns());
  for (size_t c = 0; c < got.num_columns(); ++c) {
    for (size_t r = 0; r < got.num_rows(); ++r) {
      if (got.column(c).type() == engine::DataType::kInt64) {
        EXPECT_EQ(got.column(c).i64()[r], expected.column(c).i64()[r])
            << "col " << c << " row " << r;
      } else {
        double e = expected.column(c).f64()[r];
        EXPECT_NEAR(got.column(c).f64()[r], e,
                    std::abs(e) * 1e-9 + 1e-9)
            << "col " << c << " row " << r;
      }
    }
  }
  // Q1 prunes only the tail of the relation (ships after 1998-09-02).
  int64_t pruned = 0, total = 0;
  for (const auto& wr : report->worker_results) {
    pruned += wr.metrics.row_groups_pruned();
    total += wr.metrics.row_groups_total();
  }
  EXPECT_GT(total, 0);
  EXPECT_LT(static_cast<double>(pruned) / total, 0.15);
}

TEST_F(TpchQueryFixture, Q6MatchesReferenceAndPrunesMost) {
  auto report = driver_->RunToCompletion(TpchQ6("s3://tpch/li/*.lpq"),
                                         core::RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  double expected = ReferenceQ6(reference_input_);
  ASSERT_EQ(report->result.num_rows(), 1u);
  EXPECT_NEAR(report->result.column(0).f64()[0], expected,
              std::abs(expected) * 1e-9 + 1e-9);
  // The relation is sorted by l_shipdate and Q6 selects one year of seven:
  // most row groups must be pruned via min/max statistics (Section 5.3).
  int64_t pruned = 0, total = 0;
  for (const auto& wr : report->worker_results) {
    pruned += wr.metrics.row_groups_pruned();
    total += wr.metrics.row_groups_total();
  }
  double frac = static_cast<double>(pruned) / total;
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.95);
}

TEST_F(TpchQueryFixture, Q6CheaperAndLighterThanQ1) {
  auto q1 = driver_->RunToCompletion(TpchQ1("s3://tpch/li/*.lpq"),
                                     core::RunOptions{});
  auto q6 = driver_->RunToCompletion(TpchQ6("s3://tpch/li/*.lpq"),
                                     core::RunOptions{});
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q6.ok());
  // Q6 reads fewer bytes (pruning + fewer columns).
  EXPECT_LT(q6->cost.s3_bytes_read, q1->cost.s3_bytes_read);
}

// ---------------------------------------------------------------------------
// Distributed joins: Q12 (orders) and Q14 (part)
// ---------------------------------------------------------------------------

TEST(TpchGenJoinTest, OrdersAndPartCoverTheLineitemKeys) {
  TableChunk li = GenerateLineitem(20000, 7);
  int64_t max_order = MaxOrderKey(li);
  EXPECT_GT(max_order, 0);
  TableChunk orders = GenerateOrders(max_order, 9);
  EXPECT_EQ(orders.num_rows(), static_cast<size_t>(max_order));
  EXPECT_EQ(orders.num_columns(), 9u);
  // o_orderkey is dense 1..N, so every l_orderkey has its order.
  EXPECT_EQ(orders.column(0).i64().front(), 1);
  EXPECT_EQ(orders.column(0).i64().back(), max_order);
  TableChunk part = GeneratePart(kPartCount, 9);
  EXPECT_EQ(part.num_rows(), static_cast<size_t>(kPartCount));
  const auto& types = part.column(4).i64();
  int64_t promo = 0;
  for (int64_t t : types) {
    ASSERT_GE(t, 0);
    ASSERT_LE(t, 149);
    if (t < kPromoTypeCutoff) ++promo;
  }
  // ~1/6 of types are promotional, as in TPC-H.
  double frac = static_cast<double>(promo) / static_cast<double>(kPartCount);
  EXPECT_GT(frac, 0.13);
  EXPECT_LT(frac, 0.21);
}

TEST(TpchGenJoinTest, CustomerCoversTheOrderCustkeys) {
  TableChunk customer = GenerateCustomer(kCustomerCount, 5);
  EXPECT_EQ(customer.num_rows(), static_cast<size_t>(kCustomerCount));
  EXPECT_EQ(customer.num_columns(), 6u);
  EXPECT_EQ(customer.column(0).i64().front(), 1);
  EXPECT_EQ(customer.column(0).i64().back(), kCustomerCount);
  const auto& seg = customer.column(3).i64();
  int64_t building = 0;
  for (int64_t s : seg) {
    ASSERT_GE(s, 0);
    ASSERT_LE(s, 4);
    if (s == kMktSegmentBuilding) ++building;
  }
  // Five segments, uniform: Q3 keeps ~1/5 of customers.
  double frac =
      static_cast<double>(building) / static_cast<double>(kCustomerCount);
  EXPECT_GT(frac, 0.17);
  EXPECT_LT(frac, 0.23);
}

/// Runs a join query through the simulated fleet with the given
/// worker-local kernel thread count. A fresh cloud per run keeps the
/// virtual-time schedule identical across thread counts — the runtime
/// must not leak into results, so the reports must be byte-identical.
class TpchJoinFixture : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 24000;
  static constexpr uint64_t kSeed = 77;

  void SetUp() override {
    reference_lineitem_ = GenerateLineitem(kRows, kSeed);
    orders_rows_ = MaxOrderKey(reference_lineitem_);
    reference_orders_ = GenerateOrders(orders_rows_, 123);
    reference_part_ = GeneratePart(kPartCount, 321);
    reference_customer_ = GenerateCustomer(kCustomerCount, 555);
  }

  core::QueryReport RunFleetReport(
      int query, int threads,
      core::JoinStrategyOverride strategy =
          core::JoinStrategyOverride::kAuto) {
    cloud::Cloud cloud;
    core::DriverOptions dopts;
    if (threads > 1) {
      dopts.worker_exec = exec::ExecContext::Parallel(threads, 4096);
    }
    core::Driver driver(&cloud, dopts);
    LAMBADA_CHECK_OK(driver.Install());
    LoadOptions li;
    li.num_rows = kRows;
    li.num_files = 8;
    li.row_groups_per_file = 4;
    li.seed = kSeed;
    LAMBADA_CHECK_OK(LoadLineitem(&cloud.s3(), "tpch", "li/", li));
    auto load_orders = [&] {
      LoadOptions oo;
      oo.num_rows = orders_rows_;
      oo.num_files = 4;
      oo.seed = 123;
      LAMBADA_CHECK_OK(LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
    };
    auto load_part = [&] {
      LoadOptions po;
      po.num_rows = kPartCount;
      po.num_files = 4;
      po.seed = 321;
      LAMBADA_CHECK_OK(LoadPart(&cloud.s3(), "tpch", "part/", po));
    };
    auto load_customer = [&] {
      LoadOptions co;
      co.num_rows = kCustomerCount;
      co.num_files = 2;
      co.seed = 555;
      LAMBADA_CHECK_OK(LoadCustomer(&cloud.s3(), "tpch", "customer/", co));
    };
    std::optional<core::Query> q;
    switch (query) {
      case 3:
        load_orders();
        load_customer();
        q = TpchQ3("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq",
                   "s3://tpch/customer/*.lpq");
        break;
      case 12:
        load_orders();
        q = TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq");
        break;
      case 14:
        load_part();
        q = TpchQ14("s3://tpch/li/*.lpq", "s3://tpch/part/*.lpq");
        break;
      case 18:
        load_orders();
        load_customer();
        q = TpchQ18("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq",
                    "s3://tpch/customer/*.lpq", kQ18MinQuantity);
        break;
      default:
        load_part();
        q = TpchQ19("s3://tpch/li/*.lpq", "s3://tpch/part/*.lpq");
        break;
    }
    core::RunOptions ropts;
    ropts.join_strategy = strategy;
    auto report = driver.RunToCompletion(*q, ropts);
    LAMBADA_CHECK(report.ok()) << report.status().ToString();
    LAMBADA_CHECK_EQ(report->workers, 8);
    return std::move(*report);
  }

  TableChunk RunFleet(int query, int threads) {
    return RunFleetReport(query, threads).result;
  }

  /// TPC-H says 300, but the generator's 1..7 lines of 1..50 units make
  /// that nearly empty at 24k rows; 250 keeps a few dozen groups.
  static constexpr double kQ18MinQuantity = 250.0;

  TableChunk reference_lineitem_;
  TableChunk reference_orders_;
  TableChunk reference_part_;
  TableChunk reference_customer_;
  int64_t orders_rows_ = 0;
};

TEST_F(TpchJoinFixture, Q12MatchesReferenceAtEveryThreadCount) {
  TableChunk expected =
      ReferenceQ12(reference_lineitem_, reference_orders_);
  ASSERT_EQ(expected.num_rows(), 2u);  // MAIL and SHIP.
  TableChunk base = RunFleet(12, 1);
  ASSERT_EQ(base.num_rows(), expected.num_rows());
  ASSERT_EQ(base.num_columns(), 3u);
  // High/low line counts are integral sums of 0/1 — exact in float64, so
  // the fleet must match the single-process reference exactly.
  for (size_t e = 0; e < expected.num_rows(); ++e) {
    int64_t mode = expected.column(0).i64()[e];
    bool found = false;
    for (size_t r = 0; r < base.num_rows(); ++r) {
      if (base.column(0).i64()[r] != mode) continue;
      found = true;
      EXPECT_EQ(base.column(1).f64()[r], expected.column(1).f64()[e])
          << "high_line_count for mode " << mode;
      EXPECT_EQ(base.column(2).f64()[r], expected.column(2).f64()[e])
          << "low_line_count for mode " << mode;
    }
    EXPECT_TRUE(found) << "mode " << mode << " missing";
  }
  // The morsel runtime must not leak into results: byte-identical at
  // every worker thread count.
  auto base_bytes = engine::SerializeChunk(base);
  for (int threads : {2, 8}) {
    EXPECT_EQ(engine::SerializeChunk(RunFleet(12, threads)), base_bytes)
        << threads << " threads";
  }
}

TEST_F(TpchJoinFixture, Q14MatchesReferenceAtEveryThreadCount) {
  Q14Result expected = ReferenceQ14(reference_lineitem_, reference_part_);
  ASSERT_GT(expected.total_revenue, 0);
  TableChunk base = RunFleet(14, 1);
  ASSERT_EQ(base.num_rows(), 1u);
  ASSERT_EQ(base.num_columns(), 2u);
  double promo = base.column(0).f64()[0];
  double total = base.column(1).f64()[0];
  EXPECT_NEAR(promo, expected.promo_revenue,
              std::abs(expected.promo_revenue) * 1e-9 + 1e-9);
  EXPECT_NEAR(total, expected.total_revenue,
              std::abs(expected.total_revenue) * 1e-9 + 1e-9);
  // ~1/6 of parts are promotional.
  double pct = 100.0 * promo / total;
  EXPECT_GT(pct, 8.0);
  EXPECT_LT(pct, 25.0);
  auto base_bytes = engine::SerializeChunk(base);
  for (int threads : {2, 8}) {
    EXPECT_EQ(engine::SerializeChunk(RunFleet(14, threads)), base_bytes)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Multi-join queries through the cost-based optimizer: Q3, Q18, Q19
// ---------------------------------------------------------------------------

/// Compares a fleet result against a reference chunk keyed by the int64
/// column `key_col` (unique per row). Int64 columns must match exactly,
/// float64 within a relative tolerance (the fleet's partial aggregates
/// add in a different order than the reference's single loop).
void ExpectMatchesByKey(const TableChunk& got, const TableChunk& expected,
                        size_t key_col) {
  ASSERT_EQ(got.num_rows(), expected.num_rows());
  ASSERT_EQ(got.num_columns(), expected.num_columns());
  for (size_t e = 0; e < expected.num_rows(); ++e) {
    int64_t key = expected.column(key_col).i64()[e];
    bool found = false;
    for (size_t r = 0; r < got.num_rows(); ++r) {
      if (got.column(key_col).i64()[r] != key) continue;
      found = true;
      for (size_t c = 0; c < got.num_columns(); ++c) {
        if (got.column(c).type() == engine::DataType::kInt64) {
          EXPECT_EQ(got.column(c).i64()[r], expected.column(c).i64()[e])
              << "col " << c << " key " << key;
        } else {
          double want = expected.column(c).f64()[e];
          EXPECT_NEAR(got.column(c).f64()[r], want,
                      std::abs(want) * 1e-9 + 1e-9)
              << "col " << c << " key " << key;
        }
      }
    }
    EXPECT_TRUE(found) << "key " << key << " missing";
  }
}

TEST_F(TpchJoinFixture, Q3MatchesReferenceAtEveryThreadCount) {
  TableChunk expected = ReferenceQ3(reference_lineitem_, reference_orders_,
                                    reference_customer_);
  ASSERT_GT(expected.num_rows(), 100u);
  auto base = RunFleetReport(3, 1);
  ASSERT_EQ(base.result.num_columns(), 4u);
  // Both joins went through the optimizer and carry a costed decision.
  ASSERT_EQ(base.join_choices.size(), 2u);
  for (const auto& c : base.join_choices) {
    EXPECT_GT(c.partitioned_usd, 0.0);
  }
  EXPECT_FALSE(base.explain_text.empty());
  ExpectMatchesByKey(base.result, expected, 0);
  auto base_bytes = engine::SerializeChunk(base.result);
  for (int threads : {2, 8}) {
    EXPECT_EQ(engine::SerializeChunk(RunFleet(3, threads)), base_bytes)
        << threads << " threads";
  }
}

TEST_F(TpchJoinFixture, Q3BothStrategiesMatchTheReference) {
  TableChunk expected = ReferenceQ3(reference_lineitem_, reference_orders_,
                                    reference_customer_);
  auto part = RunFleetReport(3, 1, core::JoinStrategyOverride::kForcePartitioned);
  auto bcast = RunFleetReport(3, 1, core::JoinStrategyOverride::kForceBroadcast);
  // Partitioned runs two-sided exchanges; broadcast runs none.
  auto rounds = [](const core::QueryReport& r) {
    int64_t n = 0;
    for (const auto& wr : r.worker_results) n += wr.metrics.exchange_rounds();
    return n;
  };
  EXPECT_GT(rounds(part), 0);
  EXPECT_EQ(rounds(bcast), 0);
  for (const auto& c : part.join_choices) EXPECT_FALSE(c.broadcast);
  for (const auto& c : bcast.join_choices) EXPECT_TRUE(c.broadcast);
  // Same rows either way (aggregation order differs, so values are NEAR).
  ExpectMatchesByKey(part.result, expected, 0);
  ExpectMatchesByKey(bcast.result, expected, 0);
}

TEST_F(TpchJoinFixture, Q18MatchesReferenceAtEveryThreadCount) {
  TableChunk expected =
      ReferenceQ18(reference_lineitem_, reference_orders_,
                   reference_customer_, kQ18MinQuantity);
  // The HAVING threshold keeps a small, non-empty set of big orders.
  ASSERT_GT(expected.num_rows(), 0u);
  ASSERT_LT(expected.num_rows(), 500u);
  auto base = RunFleetReport(18, 1);
  ASSERT_EQ(base.result.num_columns(), 5u);
  ExpectMatchesByKey(base.result, expected, 1);  // Key col: l_orderkey.
  auto base_bytes = engine::SerializeChunk(base.result);
  for (int threads : {2, 8}) {
    EXPECT_EQ(engine::SerializeChunk(RunFleet(18, threads)), base_bytes)
        << threads << " threads";
  }
}

TEST_F(TpchJoinFixture, Q19MatchesReferenceAtEveryThreadCount) {
  double expected = ReferenceQ19(reference_lineitem_, reference_part_);
  ASSERT_GT(expected, 0.0);
  auto base = RunFleetReport(19, 1);
  ASSERT_EQ(base.result.num_rows(), 1u);
  ASSERT_EQ(base.result.num_columns(), 1u);
  EXPECT_NEAR(base.result.column(0).f64()[0], expected,
              std::abs(expected) * 1e-9 + 1e-9);
  auto base_bytes = engine::SerializeChunk(base.result);
  for (int threads : {2, 8}) {
    EXPECT_EQ(engine::SerializeChunk(RunFleet(19, threads)), base_bytes)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace lambada::workload
