#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

namespace lambada {
namespace {

/// The whole stack is a deterministic simulation: identical deployments
/// and workloads must produce bit-identical latencies, costs, and results.
core::QueryReport RunOnce(uint64_t seed) {
  cloud::CloudConfig cfg;
  cfg.seed = seed;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions load;
  load.num_rows = 8000;
  load.num_files = 8;
  load.seed = 5;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", load));
  auto report = driver.RunToCompletion(
      workload::TpchQ1("s3://tpch/li/*.lpq"), core::RunOptions{});
  LAMBADA_CHECK(report.ok()) << report.status().ToString();
  return *std::move(report);
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  auto a = RunOnce(1);
  auto b = RunOnce(1);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.cost.lambda_gib_seconds, b.cost.lambda_gib_seconds);
  EXPECT_EQ(a.cost.s3_get_requests, b.cost.s3_get_requests);
  ASSERT_EQ(a.result.num_rows(), b.result.num_rows());
  for (size_t c = 0; c < a.result.num_columns(); ++c) {
    for (size_t r = 0; r < a.result.num_rows(); ++r) {
      if (a.result.column(c).type() == engine::DataType::kInt64) {
        EXPECT_EQ(a.result.column(c).i64()[r], b.result.column(c).i64()[r]);
      } else {
        EXPECT_DOUBLE_EQ(a.result.column(c).f64()[r],
                         b.result.column(c).f64()[r]);
      }
    }
  }
}

TEST(DeterminismTest, DifferentSeedsSameResultDifferentTiming) {
  auto a = RunOnce(1);
  auto b = RunOnce(2);
  // Latency depends on sampled latencies; the answer must not.
  EXPECT_NE(a.latency_s, b.latency_s);
  ASSERT_EQ(a.result.num_rows(), b.result.num_rows());
  for (size_t r = 0; r < a.result.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(a.result.column(2).f64()[r],
                     b.result.column(2).f64()[r]);
  }
}

}  // namespace
}  // namespace lambada
