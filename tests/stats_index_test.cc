#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/driver.h"
#include "core/stats_index.h"
#include "workload/tpch.h"

namespace lambada::core {
namespace {

class StatsIndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = std::make_unique<cloud::Cloud>();
    driver_ = std::make_unique<Driver>(cloud_.get());
    ASSERT_TRUE(driver_->Install().ok());
    index_ = std::make_unique<StatsIndex>(&cloud_->ddb());
    workload::LoadOptions opts;
    opts.num_rows = 16000;
    opts.num_files = 16;
    opts.row_groups_per_file = 2;
    opts.stats_index = index_.get();
    opts.dataset = "tpch/li/";
    ASSERT_TRUE(
        workload::LoadLineitem(&cloud_->s3(), "tpch", "li/", opts).ok());
  }

  std::unique_ptr<cloud::Cloud> cloud_;
  std::unique_ptr<Driver> driver_;
  std::unique_ptr<StatsIndex> index_;
};

TEST_F(StatsIndexFixture, LookupReturnsPerFileBounds) {
  std::vector<StatsIndex::FileBounds> bounds;
  sim::Spawn([](cloud::Cloud* c, StatsIndex* idx,
                std::vector<StatsIndex::FileBounds>* out)
                 -> sim::Async<void> {
    auto r = co_await idx->Lookup(c->driver_net(), "tpch/li/",
                                  "l_shipdate");
    if (r.ok()) *out = *r;
  }(cloud_.get(), index_.get(), &bounds));
  cloud_->sim().Run();
  ASSERT_EQ(bounds.size(), 16u);
  // The relation is sorted by l_shipdate: file bounds are ascending and
  // (nearly) disjoint.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GE(bounds[i].min, bounds[i - 1].min);
    EXPECT_GE(bounds[i].max, bounds[i - 1].max);
  }
  EXPECT_EQ(cloud_->ledger().totals().ddb_reads, 1);
}

TEST_F(StatsIndexFixture, PruneFilesDropsDisjointFiles) {
  auto files = cloud_->s3().ListDirect("tpch", "li/");
  std::vector<std::string> keys;
  for (const auto& f : files) keys.push_back(f.key);
  // One year of seven: most files should be pruned.
  auto predicate =
      (engine::Col("l_shipdate") >=
       engine::Lit(workload::TpchDate(1994, 1, 1))) &&
      (engine::Col("l_shipdate") < engine::Lit(workload::TpchDate(1995, 1, 1)));
  std::vector<std::string> kept;
  sim::Spawn([](cloud::Cloud* c, StatsIndex* idx,
                std::vector<std::string> file_keys, engine::ExprPtr pred,
                std::vector<std::string>* out) -> sim::Async<void> {
    auto r = co_await idx->PruneFiles(c->driver_net(), "tpch/li/",
                                      std::move(file_keys), pred);
    if (r.ok()) *out = *r;
  }(cloud_.get(), index_.get(), keys, predicate, &kept));
  cloud_->sim().Run();
  EXPECT_LT(kept.size(), 6u);
  EXPECT_GE(kept.size(), 1u);
}

TEST_F(StatsIndexFixture, UnindexedColumnKeepsEverything) {
  auto files = cloud_->s3().ListDirect("tpch", "li/");
  std::vector<std::string> keys;
  for (const auto& f : files) keys.push_back(f.key);
  auto predicate = engine::Col("not_a_column") < engine::Lit(0);
  std::vector<std::string> kept;
  sim::Spawn([](cloud::Cloud* c, StatsIndex* idx,
                std::vector<std::string> file_keys, engine::ExprPtr pred,
                std::vector<std::string>* out) -> sim::Async<void> {
    auto r = co_await idx->PruneFiles(c->driver_net(), "tpch/li/",
                                      std::move(file_keys), pred);
    if (r.ok()) *out = *r;
  }(cloud_.get(), index_.get(), keys, predicate, &kept));
  cloud_->sim().Run();
  EXPECT_EQ(kept.size(), keys.size());
}

TEST_F(StatsIndexFixture, DriverSkipsWorkersWithIndex) {
  auto q6 = workload::TpchQ6("s3://tpch/li/*.lpq");
  RunOptions without;
  auto base = driver_->RunToCompletion(q6, without);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  RunOptions with;
  with.use_stats_index = true;
  auto indexed = driver_->RunToCompletion(q6, with);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  // Same answer...
  ASSERT_EQ(indexed->result.num_rows(), 1u);
  EXPECT_NEAR(indexed->result.column(0).f64()[0],
              base->result.column(0).f64()[0], 1e-6);
  // ... with far fewer workers started (most files can't match Q6's
  // one-year ship-date range).
  EXPECT_LT(indexed->workers, base->workers / 2);
  EXPECT_LT(indexed->cost.lambda_invocations,
            base->cost.lambda_invocations / 2);
}

TEST_F(StatsIndexFixture, IndexNeverDropsMatchingRows) {
  // Property: for a sweep of ship-date ranges, the indexed run returns the
  // same count as the unindexed run.
  for (int year : {1992, 1994, 1996, 1998}) {
    auto q = Query::FromParquet("s3://tpch/li/*.lpq")
                 .Filter(engine::Col("l_shipdate") >=
                         engine::Lit(workload::TpchDate(year, 1, 1)))
                 .Filter(engine::Col("l_shipdate") <
                         engine::Lit(workload::TpchDate(year + 1, 1, 1)))
                 .ReduceCount();
    auto base = driver_->RunToCompletion(q, RunOptions{});
    ASSERT_TRUE(base.ok());
    RunOptions with;
    with.use_stats_index = true;
    auto indexed = driver_->RunToCompletion(q, with);
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(indexed->result.column(0).i64()[0],
              base->result.column(0).i64()[0])
        << "year " << year;
  }
}

}  // namespace
}  // namespace lambada::core
