#include <gtest/gtest.h>

#include "test_util.h"

#include <numeric>
#include <set>

#include "cloud/cloud.h"
#include "common/rng.h"
#include "core/dataflow.h"
#include "core/driver.h"
#include "core/exchange.h"
#include "core/messages.h"
#include "core/optimizer.h"
#include "core/plan.h"
#include "core/planner.h"
#include "core/worker.h"
#include "engine/chunk_serde.h"
#include "engine/partition.h"
#include "exec/exec_context.h"
#include "format/writer.h"

namespace lambada::core {
namespace {

using engine::Col;
using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Lit;
using engine::Schema;
using engine::TableChunk;

// ---------------------------------------------------------------------------
// Plan / message serialization
// ---------------------------------------------------------------------------

TEST(PlanTest, FragmentSerializationRoundTrip) {
  PlanFragment f;
  f.scan_projection = {"a", "b"};
  f.scan_filter = Col("a") >= Lit(5);
  PlanOp filter;
  filter.kind = PlanOp::Kind::kFilter;
  filter.expr = Col("b") < Lit(1.5);
  f.ops.push_back(filter);
  PlanOp map;
  map.kind = PlanOp::Kind::kMap;
  map.expr = Col("a") * Col("b");
  map.name = "ab";
  f.ops.push_back(map);
  PlanOp ex;
  ex.kind = PlanOp::Kind::kExchange;
  ExchangeSpec spec;
  spec.keys = {"a"};
  spec.levels = 2;
  spec.exchange_id = "t-x";
  ex.exchange = spec;
  f.ops.push_back(ex);
  PlanOp agg;
  agg.kind = PlanOp::Kind::kAggregate;
  agg.group_by = {"a"};
  agg.aggs = {engine::Sum(Col("ab"), "s"), engine::Count("n")};
  f.ops.push_back(agg);
  f.tuning.row_group_parallelism = 3;
  f.tuning.chunk_bytes = 123456;
  f.tuning.coalesce_gap_bytes = 65536;

  auto bytes = f.Serialize();
  auto back = PlanFragment::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->scan_projection, f.scan_projection);
  EXPECT_EQ(back->scan_filter->ToString(), f.scan_filter->ToString());
  ASSERT_EQ(back->ops.size(), 4u);
  EXPECT_EQ(back->ops[2].exchange->keys, spec.keys);
  EXPECT_EQ(back->ops[3].aggs.size(), 2u);
  EXPECT_EQ(back->tuning.row_group_parallelism, 3);
  EXPECT_EQ(back->tuning.chunk_bytes, 123456);
  EXPECT_EQ(back->tuning.coalesce_gap_bytes, 65536);
  EXPECT_TRUE(back->EndsInAggregate());
}

TEST(PlanTest, JoinFragmentSerializationRoundTrip) {
  PlanFragment f;
  f.scan_projection = {"l_orderkey", "l_shipmode"};
  PlanOp ex;
  ex.kind = PlanOp::Kind::kExchange;
  ExchangeSpec probe_spec;
  probe_spec.keys = {"l_orderkey"};
  probe_spec.exchange_id = "q-x";
  ex.exchange = probe_spec;
  f.ops.push_back(ex);
  PlanOp jop;
  jop.kind = PlanOp::Kind::kJoin;
  JoinSpec join;
  join.type = engine::JoinType::kLeftSemi;
  join.probe_keys = {"l_orderkey"};
  join.build_keys = {"o_orderkey"};
  join.build_pattern = "s3://tpch/orders/*.lpq";
  join.build_scan_projection = {"o_orderkey", "o_orderpriority"};
  join.build_scan_filter = Col("o_orderpriority") <= Lit(1);
  PlanOp bsel;
  bsel.kind = PlanOp::Kind::kSelect;
  bsel.exprs = {Col("o_orderkey")};
  bsel.names = {"o_orderkey"};
  join.build_ops.push_back(bsel);
  join.build_exchange.keys = {"o_orderkey"};
  join.build_exchange.exchange_id = "q-xb";
  jop.join = join;
  f.ops.push_back(jop);
  PlanOp agg;
  agg.kind = PlanOp::Kind::kAggregate;
  agg.group_by = {"l_shipmode"};
  agg.aggs = {engine::Count("n")};
  f.ops.push_back(agg);

  auto bytes = f.Serialize();
  auto back = PlanFragment::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->JoinIndex(), 1);
  const JoinSpec& j = *back->ops[1].join;
  EXPECT_EQ(j.type, engine::JoinType::kLeftSemi);
  EXPECT_EQ(j.probe_keys, join.probe_keys);
  EXPECT_EQ(j.build_keys, join.build_keys);
  EXPECT_EQ(j.build_pattern, join.build_pattern);
  EXPECT_EQ(j.build_scan_projection, join.build_scan_projection);
  EXPECT_EQ(j.build_scan_filter->ToString(),
            join.build_scan_filter->ToString());
  ASSERT_EQ(j.build_ops.size(), 1u);
  EXPECT_EQ(j.build_ops[0].kind, PlanOp::Kind::kSelect);
  EXPECT_EQ(j.build_exchange.exchange_id, "q-xb");
  EXPECT_TRUE(back->EndsInAggregate());
}

/// Wraps `op` in a fresh JoinSpec-carrying kJoin whose build_ops is {op}.
PlanOp NestJoin(PlanOp op) {
  JoinSpec spec;
  spec.probe_keys = {"a"};
  spec.build_keys = {"b"};
  spec.build_ops.push_back(std::move(op));
  PlanOp join;
  join.kind = PlanOp::Kind::kJoin;
  join.join = std::move(spec);
  return join;
}

TEST(PlanTest, NestedJoinWithinDepthLimitRoundTrips) {
  // A kJoin inside build_ops is representable up to kMaxPlanDepth levels;
  // whether the executor accepts a breaker there is its own check.
  JoinSpec inner_spec;
  inner_spec.probe_keys = {"a"};
  inner_spec.build_keys = {"b"};
  PlanOp inner;
  inner.kind = PlanOp::Kind::kJoin;
  inner.join = inner_spec;
  PlanFragment f;
  f.ops.push_back(NestJoin(inner));
  auto bytes = f.Serialize();
  auto back = PlanFragment::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->ops.size(), 1u);
  ASSERT_EQ(back->ops[0].join->build_ops.size(), 1u);
  EXPECT_EQ(back->ops[0].join->build_ops[0].kind, PlanOp::Kind::kJoin);
}

TEST(PlanTest, JoinNestingBeyondDepthLimitRejected) {
  // Nesting past kMaxPlanDepth must come back as a clean parse error —
  // the guard fires before the mutually recursive deserializers can smash
  // the stack on crafted input.
  JoinSpec leaf;
  leaf.probe_keys = {"a"};
  leaf.build_keys = {"b"};
  PlanOp op;
  op.kind = PlanOp::Kind::kJoin;
  op.join = leaf;
  for (int i = 0; i < kMaxPlanDepth; ++i) op = NestJoin(std::move(op));
  PlanFragment f;
  f.ops.push_back(op);
  auto bytes = f.Serialize();
  auto back = PlanFragment::Deserialize(bytes.data(), bytes.size());
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("kMaxPlanDepth"),
            std::string::npos);
}

TEST(PlanTest, UnknownOpKindRejected) {
  // A plan whose op tag is beyond the known range must be refused, not
  // guessed at — the tag-compatibility rule of plan.h.
  PlanFragment f;
  PlanOp filter;
  filter.kind = PlanOp::Kind::kFilter;
  filter.expr = Col("a") >= Lit(5);
  f.ops.push_back(filter);
  auto bytes = f.Serialize();
  // The op tag byte follows the projection vector (varint 0), the null
  // filter byte, and the op-count varint (1).
  bytes[3] = 0x7f;
  EXPECT_FALSE(PlanFragment::Deserialize(bytes.data(), bytes.size()).ok());
}

TEST(PlanTest, CorruptFragmentRejected) {
  PlanFragment f;
  auto bytes = f.Serialize();
  EXPECT_FALSE(
      PlanFragment::Deserialize(bytes.data(), bytes.size() / 2).ok());
}

TEST(MessagesTest, PayloadRoundTrip) {
  InvocationPayload p;
  p.query_id = "q7";
  p.total_workers = 64;
  p.plan_bucket = "sys";
  p.plan_key = "plans/q7";
  p.result_queue = "results";
  p.data_scale = 12.5;
  p.self.worker_id = 3;
  p.self.files = {{"data", "part-0.lpq"}, {"data", "part-1.lpq"}};
  p.self.build_files = {{"data", "orders-0.lpq"}, {"data", "cust-0.lpq"}};
  p.self.build_counts = {1, 1};  // Two joins' build slices.
  WorkerInput child;
  child.worker_id = 4;
  child.files = {{"data", "part-2.lpq"}};
  child.build_files = {{"data", "orders-1.lpq"}};
  p.to_invoke.push_back(child);

  auto back = InvocationPayload::Parse(p.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->query_id, "q7");
  EXPECT_EQ(back->total_workers, 64u);
  EXPECT_EQ(back->self.files[1].key, "part-1.lpq");
  ASSERT_EQ(back->self.build_files.size(), 2u);
  EXPECT_EQ(back->self.build_files[0].key, "orders-0.lpq");
  EXPECT_EQ(back->self.build_counts, (std::vector<uint32_t>{1, 1}));
  // A single-join child payload leaves build_counts empty.
  EXPECT_TRUE(back->to_invoke[0].build_counts.empty());
  ASSERT_EQ(back->to_invoke.size(), 1u);
  EXPECT_EQ(back->to_invoke[0].worker_id, 4u);
  // Build files are part of the per-worker WorkerInput, so the invocation
  // tree forwards each child its own.
  EXPECT_EQ(back->to_invoke[0].build_files[0].key, "orders-1.lpq");
  EXPECT_DOUBLE_EQ(back->data_scale, 12.5);
}

TEST(MessagesTest, ResultRoundTripWithError) {
  ResultMessage m;
  m.query_id = "q1";
  m.worker_id = 9;
  m.status_code = StatusCode::kOutOfMemory;
  m.status_message = "boom";
  m.metrics.registry.Set(obs::Metric::kProcessingTime, 2.5);
  m.metrics.registry.Add(obs::Metric::kRowsScanned, 100);
  m.metrics.registry.Add(obs::Metric::kScanBytesMoved, 123456789);
  m.metrics.registry.Add(obs::Metric::kRowsDictFiltered, 42);
  m.metrics.registry.Add(obs::Metric::kExchangeBytesWritten, 1000);
  m.metrics.registry.Add(obs::Metric::kExchangeBytesRead, 2000);
  m.inline_result = {1, 2, 3};
  auto back = ResultMessage::Parse(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status_code, StatusCode::kOutOfMemory);
  EXPECT_EQ(back->inline_result, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(back->metrics.processing_time_s(), 2.5);
  EXPECT_EQ(back->metrics.rows_scanned(), 100);
  EXPECT_EQ(back->metrics.scan_bytes_moved(), 123456789);
  EXPECT_EQ(back->metrics.rows_dict_filtered(), 42);
  EXPECT_EQ(back->metrics.exchange_bytes_written(), 1000);
  EXPECT_EQ(back->metrics.exchange_bytes_read(), 2000);
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

TEST(PlannerTest, LeadingFiltersPushIntoScan) {
  auto q = Query::FromParquet("s3://d/*.lpq")
               .Filter(Col("a") >= Lit(1))
               .Filter(Col("b") < Lit(2))
               .Aggregate({}, {engine::Count("n")});
  auto phys = PlanQuery(q);
  ASSERT_TRUE(phys.ok());
  ASSERT_NE(phys->fragment.scan_filter, nullptr);
  // Both filters folded into one conjunction.
  EXPECT_NE(phys->fragment.scan_filter->ToString().find("and"),
            std::string::npos);
  // Only the aggregate remains as an op.
  ASSERT_EQ(phys->fragment.ops.size(), 1u);
  EXPECT_EQ(phys->fragment.ops[0].kind, PlanOp::Kind::kAggregate);
  EXPECT_TRUE(phys->has_final_aggregate);
}

TEST(PlannerTest, ProjectionPushdownCollectsReferencedColumns) {
  auto q = Query::FromParquet("s3://d/*.lpq")
               .Filter(Col("f") > Lit(0))
               .Map(Col("x") * Col("y"), "v")
               .ReduceSum("v");
  auto phys = PlanQuery(q);
  ASSERT_TRUE(phys.ok());
  std::set<std::string> proj(phys->fragment.scan_projection.begin(),
                             phys->fragment.scan_projection.end());
  EXPECT_EQ(proj, (std::set<std::string>{"f", "x", "y"}));
  // The derived column "v" must not be in the scan projection.
  EXPECT_EQ(proj.count("v"), 0u);
}

TEST(PlannerTest, AggregateMustBeLast) {
  // Non-filter ops after the aggregate are rejected...
  auto q = Query::FromParquet("s3://d/*.lpq")
               .Aggregate({}, {engine::Count("n")})
               .Map(Col("n") * Lit(2), "n2");
  EXPECT_FALSE(PlanQuery(q).ok());
  // ...but trailing filters become driver-scope HAVING ops.
  auto having = PlanQuery(Query::FromParquet("s3://d/*.lpq")
                              .Aggregate({}, {engine::Count("n")})
                              .Filter(Col("n") > Lit(0)));
  ASSERT_TRUE(having.ok()) << having.status().ToString();
  ASSERT_EQ(having->driver_ops.size(), 1u);
  EXPECT_EQ(having->driver_ops[0].kind, PlanOp::Kind::kFilter);
  EXPECT_TRUE(having->has_final_aggregate);
  EXPECT_EQ(having->fragment.ops.back().kind, PlanOp::Kind::kAggregate);
}

TEST(PlannerTest, FilterAfterMapStaysInPipeline) {
  auto q = Query::FromParquet("s3://d/*.lpq")
               .Map(Col("x") * Lit(2), "x2")
               .Filter(Col("x2") > Lit(10));
  auto phys = PlanQuery(q);
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ(phys->fragment.scan_filter, nullptr);
  ASSERT_EQ(phys->fragment.ops.size(), 2u);
  EXPECT_EQ(phys->fragment.ops[0].kind, PlanOp::Kind::kMap);
  EXPECT_EQ(phys->fragment.ops[1].kind, PlanOp::Kind::kFilter);
}

TEST(PlannerTest, JoinInsertsTwoSidedExchange) {
  auto build = Query::FromParquet("s3://d/orders/*.lpq")
                   .Filter(Col("o_orderpriority") <= Lit(1))
                   .Select({Col("o_orderkey"), Col("o_orderpriority")},
                           {"o_orderkey", "o_orderpriority"});
  auto q = Query::FromParquet("s3://d/li/*.lpq")
               .Filter(Col("l_shipmode") == Lit(2))
               .JoinWith(build, {"l_orderkey"}, {"o_orderkey"})
               .Aggregate({"l_shipmode"},
                          {engine::Sum(Col("o_orderpriority"), "s")});
  auto phys = PlanQuery(q);
  ASSERT_TRUE(phys.ok()) << phys.status().ToString();
  ASSERT_EQ(phys->build_inputs.size(), 1u);
  EXPECT_EQ(phys->build_inputs[0].pattern, "s3://d/orders/*.lpq");
  EXPECT_FALSE(phys->build_inputs[0].broadcast);
  // Probe pipeline: filter pushed into the scan, then exchange -> join ->
  // aggregate.
  ASSERT_NE(phys->fragment.scan_filter, nullptr);
  ASSERT_EQ(phys->fragment.ops.size(), 3u);
  EXPECT_EQ(phys->fragment.ops[0].kind, PlanOp::Kind::kExchange);
  EXPECT_EQ(phys->fragment.ops[0].exchange->keys,
            (std::vector<std::string>{"l_orderkey"}));
  EXPECT_EQ(phys->fragment.ops[1].kind, PlanOp::Kind::kJoin);
  EXPECT_EQ(phys->fragment.ops[2].kind, PlanOp::Kind::kAggregate);
  const JoinSpec& join = *phys->fragment.ops[1].join;
  EXPECT_EQ(join.build_exchange.keys,
            (std::vector<std::string>{"o_orderkey"}));
  // Build-side pushdown: the filter moved into the build scan, and the
  // closed Select output lets both projections be exact.
  ASSERT_NE(join.build_scan_filter, nullptr);
  ASSERT_EQ(join.build_ops.size(), 1u);
  EXPECT_EQ(join.build_ops[0].kind, PlanOp::Kind::kSelect);
  EXPECT_EQ(join.build_scan_projection,
            (std::vector<std::string>{"o_orderkey", "o_orderpriority"}));
  std::set<std::string> probe_proj(phys->fragment.scan_projection.begin(),
                                   phys->fragment.scan_projection.end());
  EXPECT_EQ(probe_proj,
            (std::set<std::string>{"l_orderkey", "l_shipmode"}));
  EXPECT_TRUE(phys->has_final_aggregate);
}

TEST(PlannerTest, JoinWithoutClosedBuildOutputScansEverything) {
  // No terminal Select on the build side: post-join references cannot be
  // attributed to a side, so both scans read all columns.
  auto build = Query::FromParquet("s3://d/orders/*.lpq");
  auto q = Query::FromParquet("s3://d/li/*.lpq")
               .JoinWith(build, {"l_orderkey"}, {"o_orderkey"})
               .Aggregate({}, {engine::Sum(Col("o_totalprice"), "s")});
  auto phys = PlanQuery(q);
  ASSERT_TRUE(phys.ok()) << phys.status().ToString();
  EXPECT_TRUE(phys->fragment.scan_projection.empty());
  const JoinSpec& join = *phys->fragment.ops[phys->fragment.JoinIndex()]
                              .join;
  EXPECT_TRUE(join.build_scan_projection.empty());
}

TEST(PlannerTest, JoinProvidedColumnsRespectJoinType) {
  // A probe column may share its name with a build output ("w"). A
  // left-semi join drops ALL build columns, so the post-join reference
  // must read probe's own "w"; an inner join's dropped build key ("dg")
  // likewise stays attributable to the probe scan.
  auto build = Query::FromParquet("s3://d/dim/*.lpq")
                   .Select({Col("dg"), Col("w")}, {"dg", "w"});
  auto semi = PlanQuery(Query::FromParquet("s3://d/t/*.lpq")
                            .JoinWith(build, {"g"}, {"dg"},
                                      engine::JoinType::kLeftSemi)
                            .Aggregate({}, {engine::Sum(Col("w"), "s")}));
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  std::set<std::string> semi_proj(semi->fragment.scan_projection.begin(),
                                  semi->fragment.scan_projection.end());
  EXPECT_EQ(semi_proj, (std::set<std::string>{"g", "w"}));

  auto inner = PlanQuery(Query::FromParquet("s3://d/t/*.lpq")
                             .JoinWith(build, {"g"}, {"dg"})
                             .Aggregate({"dg"}, {engine::Sum(Col("w"),
                                                             "s")}));
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  std::set<std::string> inner_proj(
      inner->fragment.scan_projection.begin(),
      inner->fragment.scan_projection.end());
  // "w" comes from the build side (provided); the dropped build key "dg"
  // referenced post-join must come from the probe scan.
  EXPECT_EQ(inner_proj, (std::set<std::string>{"dg", "g"}));
}

TEST(PlannerTest, JoinRejections) {
  auto build = Query::FromParquet("s3://d/b/*.lpq");
  // Two joins now plan as a chained fragment (the cost-based optimizer's
  // multi-join path).
  auto two = PlanQuery(Query::FromParquet("s3://d/a/*.lpq")
                           .JoinWith(build, {"k"}, {"k2"})
                           .JoinWith(build, {"k"}, {"k2"}));
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  EXPECT_EQ(two->fragment.JoinIndices().size(), 2u);
  ASSERT_EQ(two->build_inputs.size(), 2u);
  // Explicit repartition before the join.
  EXPECT_FALSE(PlanQuery(Query::FromParquet("s3://d/a/*.lpq")
                             .Repartition({"k"})
                             .JoinWith(build, {"k"}, {"k2"}))
                   .ok());
  // Aggregating build side.
  EXPECT_FALSE(
      PlanQuery(Query::FromParquet("s3://d/a/*.lpq")
                    .JoinWith(build.Aggregate({}, {engine::Count("n")}),
                              {"k"}, {"k2"}))
          .ok());
  // Build-side Select that drops the build key.
  EXPECT_FALSE(
      PlanQuery(Query::FromParquet("s3://d/a/*.lpq")
                    .JoinWith(build.Select({Col("v")}, {"v"}), {"k"},
                              {"k2"}))
          .ok());
  // Probe-side Select that drops the probe key: caught at plan time, not
  // after the fleet is already running.
  EXPECT_FALSE(
      PlanQuery(Query::FromParquet("s3://d/a/*.lpq")
                    .Select({Col("v")}, {"v"})
                    .JoinWith(build.Select({Col("k2")}, {"k2"}), {"k"},
                              {"k2"}))
          .ok());
}

// ---------------------------------------------------------------------------
// Cost-based optimizer
// ---------------------------------------------------------------------------

TEST(OptimizerTest, NoInformationKeepsSyntaxOrderDeterministically) {
  auto b1 = Query::FromParquet("s3://d/b1/*.lpq")
                .Select({Col("k2"), Col("v")}, {"k2", "v"});
  auto b2 = Query::FromParquet("s3://d/b2/*.lpq")
                .Select({Col("j2"), Col("w")}, {"j2", "w"});
  auto q = Query::FromParquet("s3://d/a/*.lpq")
               .JoinWith(b1, {"k"}, {"k2"})
               .JoinWith(b2, {"j"}, {"j2"})
               .ReduceCount();
  auto a = OptimizeQuery(q, Catalog{}, OptimizerOptions{});
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_EQ(a->build_inputs.size(), 2u);
  // Without statistics every alternative costs the same; ties preserve
  // the query's syntax order and fall back to partitioned exchanges.
  EXPECT_EQ(a->build_inputs[0].pattern, "s3://d/b1/*.lpq");
  EXPECT_EQ(a->build_inputs[1].pattern, "s3://d/b2/*.lpq");
  for (const auto& c : a->join_choices) EXPECT_FALSE(c.broadcast);
  // The whole decision chain is deterministic: a second run renders the
  // byte-identical plan.
  auto b = OptimizeQuery(q, Catalog{}, OptimizerOptions{});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->explain_text, b->explain_text);
  EXPECT_FALSE(a->explain_text.empty());
}

TEST(OptimizerTest, KeyProvenanceConstrainsJoinOrder) {
  // The second join's probe key (ck) is emitted by the FIRST join's build
  // side, so no ordering may schedule it first — even though its build
  // relation is far smaller and the DP would otherwise prefer it.
  auto orders = Query::FromParquet("s3://d/orders/*.lpq")
                    .Select({Col("ok"), Col("ck")}, {"ok", "ck"});
  auto customer = Query::FromParquet("s3://d/customer/*.lpq")
                      .Select({Col("ck2")}, {"ck2"});
  auto q = Query::FromParquet("s3://d/li/*.lpq")
               .JoinWith(orders, {"k"}, {"ok"})
               .JoinWith(customer, {"ck"}, {"ck2"}, engine::JoinType::kLeftSemi)
               .ReduceCount();
  Catalog catalog;
  catalog.relations["s3://d/li/*.lpq"] = {1e7, 1e9, 16, {}};
  catalog.relations["s3://d/orders/*.lpq"] = {1e6, 1e8, 8, {}};
  catalog.relations["s3://d/customer/*.lpq"] = {100, 1e3, 1, {}};
  OptimizerOptions oo;
  oo.workers = 8;
  auto a = OptimizeQuery(q, catalog, oo);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_EQ(a->build_inputs.size(), 2u);
  EXPECT_EQ(a->build_inputs[0].pattern, "s3://d/orders/*.lpq");
  EXPECT_EQ(a->build_inputs[1].pattern, "s3://d/customer/*.lpq");
  // The tiny customer relation broadcasts; its estimates made it into the
  // decision record.
  ASSERT_EQ(a->join_choices.size(), 2u);
  EXPECT_TRUE(a->join_choices[1].broadcast);
  EXPECT_GT(a->join_choices[1].broadcast_usd, 0.0);
  EXPECT_GT(a->join_choices[1].partitioned_usd,
            a->join_choices[1].broadcast_usd);
}

TEST(OptimizerTest, SelectivityEstimates) {
  std::map<std::string, engine::Interval> cols;
  cols["x"] = {0.0, 100.0};
  // Range predicate interpolates into the bounds: x < 25 on [0,100] ~ 1/4.
  double quarter =
      EstimateSelectivity(Col("x") < engine::Lit(25.0), cols, 1000);
  EXPECT_NEAR(quarter, 0.25, 0.05);
  // Conjunction multiplies, so it can only shrink.
  double both = EstimateSelectivity(
      Col("x") < engine::Lit(25.0) && Col("x") >= engine::Lit(0.0), cols,
      1000);
  EXPECT_LE(both, quarter + 1e-9);
  // Disjunction grows but stays a probability.
  double either = EstimateSelectivity(
      Col("x") < engine::Lit(25.0) || Col("x") > engine::Lit(90.0), cols,
      1000);
  EXPECT_GE(either, quarter - 1e-9);
  EXPECT_LE(either, 1.0);
}

// ---------------------------------------------------------------------------
// Exchange factorization
// ---------------------------------------------------------------------------

TEST(ExchangeFactorTest, ExactProducts) {
  for (int P : {4, 16, 64, 100, 250, 320, 500, 1000, 1250, 2500, 4096}) {
    for (int levels : {1, 2}) {
      auto f = FactorizeWorkers(P, levels);
      ASSERT_TRUE(f.ok()) << "P=" << P << " levels=" << levels;
      int prod = 1;
      for (int s : *f) prod *= s;
      EXPECT_EQ(prod, P);
      EXPECT_EQ(f->size(), static_cast<size_t>(levels));
    }
  }
  auto f3 = FactorizeWorkers(1000, 3);
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ((*f3)[0] * (*f3)[1] * (*f3)[2], 1000);
}

TEST(ExchangeFactorTest, BalancedNearRoot) {
  auto f = FactorizeWorkers(2500, 2);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)[0], 50);
  EXPECT_EQ((*f)[1], 50);
  auto g = FactorizeWorkers(4096, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)[0], 16);
}

TEST(ExchangeFactorTest, LargePrimesRejected) {
  EXPECT_FALSE(FactorizeWorkers(997, 2).ok());
  EXPECT_GT(LargestFactorizableWorkerCount(997, 2), 900);
}

TEST(ExchangeFactorTest, RequestCountModelMatchesTable2) {
  // Table 2: 1l -> P^2 reads and writes; 2l -> 2P*sqrt(P); write combining
  // drops writes to (levels * P).
  auto c1 = PredictExchangeRequests(100, 1, false);
  EXPECT_DOUBLE_EQ(c1.reads, 100.0 * 100.0);
  EXPECT_DOUBLE_EQ(c1.writes, 100.0 * 100.0);
  auto c2 = PredictExchangeRequests(100, 2, false);
  EXPECT_DOUBLE_EQ(c2.reads, 2.0 * 100.0 * 10.0);
  auto c2wc = PredictExchangeRequests(100, 2, true);
  EXPECT_DOUBLE_EQ(c2wc.writes, 200.0);
  auto c3 = PredictExchangeRequests(1000, 3, false);
  EXPECT_NEAR(c3.reads, 3.0 * 1000.0 * 10.0, 1e-6);
}

// ---------------------------------------------------------------------------
// End-to-end exchange on simulated workers
// ---------------------------------------------------------------------------

struct ExchangeResult {
  std::vector<TableChunk> outputs;  // Per worker.
  Status status = Status::OK();
};

/// Runs a P-worker exchange where worker p holds rows with values
/// p*rows_per_worker..(p+1)*rows_per_worker-1, then checks that every row
/// arrived at exactly the worker its hash designates.
ExchangeResult RunExchangeExperiment(int P, ExchangeSpec spec,
                                     int rows_per_worker = 200,
                                     exec::ExecContext exec_ctx = {}) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = P + 10;
  cloud::Cloud cloud(cfg);
  LAMBADA_CHECK_OK(CreateExchangeBuckets(&cloud.s3(), spec));
  spec.exchange_id = "test-x";

  ExchangeResult result;
  result.outputs.resize(static_cast<size_t>(P));
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});

  cloud::FunctionConfig fn;
  fn.name = "xworker";
  fn.memory_mib = 2048;
  fn.handler = [&, schema](cloud::WorkerEnv& env,
                           std::string payload) -> sim::Async<Status> {
    env.exec = exec_ctx;
    int p = std::stoi(payload);
    std::vector<int64_t> keys;
    std::vector<double> vals;
    for (int i = 0; i < rows_per_worker; ++i) {
      int64_t k = static_cast<int64_t>(p) * rows_per_worker + i;
      keys.push_back(k);
      vals.push_back(static_cast<double>(k) * 0.5);
    }
    TableChunk input(schema, {Column::Int64(std::move(keys)),
                              Column::Float64(std::move(vals))});
    auto out = co_await RunExchange(env, spec, p, P, std::move(input));
    if (!out.ok()) {
      if (result.status.ok()) result.status = out.status();
      co_return out.status();
    }
    result.outputs[static_cast<size_t>(p)] = *std::move(out);
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  for (int p = 0; p < P; ++p) {
    sim::Spawn([](cloud::Cloud* c, int worker) -> sim::Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "xworker",
                                std::to_string(worker));
    }(&cloud, p));
  }
  cloud.sim().Run();
  return result;
}

void CheckExchangeCorrect(int P, const ExchangeResult& r,
                          int rows_per_worker) {
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  int64_t total = 0;
  std::set<int64_t> seen;
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  for (int p = 0; p < P; ++p) {
    const TableChunk& out = r.outputs[static_cast<size_t>(p)];
    total += static_cast<int64_t>(out.num_rows());
    if (out.num_rows() == 0) continue;
    int k_idx = out.schema()->FieldIndex("k");
    ASSERT_GE(k_idx, 0);
    for (size_t i = 0; i < out.num_rows(); ++i) {
      int64_t k = out.column(static_cast<size_t>(k_idx)).i64()[i];
      // Row must be at the worker its hash designates.
      TableChunk probe(schema, {Column::Int64({k}), Column::Float64({0})});
      auto ids = engine::ComputePartitionIds(probe, {0}, P);
      ASSERT_TRUE(ids.ok());
      EXPECT_EQ(static_cast<int>((*ids)[0]), p) << "key " << k;
      EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
    }
  }
  EXPECT_EQ(total, static_cast<int64_t>(P) * rows_per_worker);
}

struct ExchangeVariant {
  int levels;
  bool write_combining;
  bool offsets_in_name;
  int P;
};

class ExchangeVariantTest
    : public ::testing::TestWithParam<ExchangeVariant> {};

INSTANTIATE_TEST_SUITE_P(
    Variants, ExchangeVariantTest,
    ::testing::Values(ExchangeVariant{1, false, false, 9},
                      ExchangeVariant{1, true, true, 9},
                      ExchangeVariant{2, false, false, 16},
                      ExchangeVariant{2, true, true, 16},
                      ExchangeVariant{2, true, false, 16},
                      ExchangeVariant{2, true, true, 20},   // Non-square.
                      ExchangeVariant{3, true, true, 27},
                      ExchangeVariant{3, true, true, 30}),  // Mixed radix.
    [](const auto& info) {
      const auto& v = info.param;
      return std::to_string(v.levels) + "l" +
             (v.write_combining ? "wc" : "") +
             (v.offsets_in_name ? "names" : "idx") + "P" +
             std::to_string(v.P);
    });

TEST_P(ExchangeVariantTest, AllRowsReachTheirPartition) {
  const auto& v = GetParam();
  ExchangeSpec spec;
  spec.keys = {"k"};
  spec.levels = v.levels;
  spec.write_combining = v.write_combining;
  spec.offsets_in_name = v.offsets_in_name;
  spec.num_buckets = 4;
  auto result = RunExchangeExperiment(v.P, spec, 100);
  CheckExchangeCorrect(v.P, result, 100);
}

TEST(ExchangeTest, ParallelRuntimeProducesIdenticalOutput) {
  // The morsel-parallel kernels plus depth-bounded request batching must
  // deliver the same rows in the same order as the serial runtime: the
  // per-worker outputs are compared serialized, byte for byte.
  for (auto variant : {std::pair<int, bool>{1, false},
                       std::pair<int, bool>{2, true},
                       std::pair<int, bool>{2, false}}) {
    ExchangeSpec spec;
    spec.keys = {"k"};
    spec.levels = variant.first;
    spec.write_combining = variant.second;
    spec.num_buckets = 4;
    auto sequential = RunExchangeExperiment(16, spec, 150);
    ASSERT_TRUE(sequential.status.ok()) << sequential.status.ToString();

    exec::ExecContext parallel = exec::ExecContext::Parallel(4, 64);
    parallel.io_depth = 4;
    auto batched = RunExchangeExperiment(16, spec, 150, parallel);
    ASSERT_TRUE(batched.status.ok()) << batched.status.ToString();

    for (int p = 0; p < 16; ++p) {
      EXPECT_EQ(
          engine::SerializeChunk(sequential.outputs[static_cast<size_t>(p)]),
          engine::SerializeChunk(batched.outputs[static_cast<size_t>(p)]))
          << "worker " << p << " levels " << variant.first << " wc "
          << variant.second;
    }
  }
}

TEST(ExchangeTest, RequestCountsMatchModel) {
  // 2l-wc on a 16-worker grid: Table 2 predicts 2*P*sqrt(P) reads
  // (= 128 GETs) and 2P writes (= 32 PUTs). Our implementation skips GETs
  // for empty slices, so reads are bounded above by the model.
  for (bool wc : {false, true}) {
    cloud::CloudConfig cfg;
    ExchangeSpec spec;
    spec.keys = {"k"};
    spec.levels = 2;
    spec.write_combining = wc;
    spec.num_buckets = 4;
    auto before_counts = [] {};
    cloud::Cloud cloud(cfg);
    (void)before_counts;
    LAMBADA_CHECK_OK(CreateExchangeBuckets(&cloud.s3(), spec));
    // Re-run the experiment inline to capture this cloud's ledger.
    // (RunExchangeExperiment owns its own cloud, so replicate briefly.)
    spec.exchange_id = "cnt-x";
    const int P = 16;
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"k", DataType::kInt64}});
    cloud::FunctionConfig fn;
    fn.name = "xw";
    fn.memory_mib = 2048;
    fn.handler = [&, schema](cloud::WorkerEnv& env,
                             std::string payload) -> sim::Async<Status> {
      int p = std::stoi(payload);
      std::vector<int64_t> keys;
      for (int i = 0; i < 500; ++i) {
        keys.push_back(static_cast<int64_t>(p) * 500 + i);
      }
      TableChunk input(schema, {Column::Int64(std::move(keys))});
      auto out = co_await RunExchange(env, spec, p, P, std::move(input));
      co_return out.ok() ? Status::OK() : out.status();
    };
    LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
    for (int p = 0; p < P; ++p) {
      sim::Spawn([](cloud::Cloud* c, int worker) -> sim::Async<void> {
        co_await c->faas().Invoke(c->driver_invoker_profile(),
                                  &c->driver_rng(), "xw",
                                  std::to_string(worker));
      }(&cloud, p));
    }
    cloud.sim().Run();
    EXPECT_EQ(cloud.faas().failed_handlers(), 0);
    auto t = cloud.ledger().totals();
    auto model = PredictExchangeRequests(P, 2, wc);
    if (wc) {
      EXPECT_EQ(t.s3_put_requests, static_cast<int64_t>(model.writes));
      EXPECT_LE(t.s3_get_requests, static_cast<int64_t>(model.reads));
      EXPECT_GT(t.s3_get_requests,
                static_cast<int64_t>(model.reads) / 2);
      EXPECT_GE(t.s3_list_requests, static_cast<int64_t>(model.lists));
    } else {
      EXPECT_EQ(t.s3_put_requests, static_cast<int64_t>(model.writes));
      EXPECT_GE(t.s3_get_requests, static_cast<int64_t>(model.reads));
    }
  }
}

// ---------------------------------------------------------------------------
// Driver end-to-end
// ---------------------------------------------------------------------------

class DriverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = std::make_unique<cloud::Cloud>();
    driver_ = std::make_unique<Driver>(cloud_.get());
    ASSERT_TRUE(driver_->Install().ok());
    ASSERT_TRUE(cloud_->s3().CreateBucket("data").ok());
    // 4 files of a simple (g, x) table: g in 0..3, x = row index.
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"g", DataType::kInt64}, {"x", DataType::kFloat64}});
    Rng rng(3);
    for (int f = 0; f < 4; ++f) {
      std::vector<int64_t> g;
      std::vector<double> x;
      for (int i = 0; i < 1000; ++i) {
        int64_t key = rng.UniformInt(0, 3);
        g.push_back(key);
        double val = static_cast<double>(f * 1000 + i);
        x.push_back(val);
        expected_sum_[key] += val;
        expected_count_[key] += 1;
        total_sum_ += val;
        if (key == 2 && val < 250.0) expected_g2_small_ += val;
      }
      TableChunk t(schema, {Column::Int64(std::move(g)),
                            Column::Float64(std::move(x))});
      format::WriterOptions wo;
      wo.row_group_rows = 250;
      auto file = format::FileWriter::WriteTable(t, wo);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(cloud_->s3()
                      .PutDirect("data",
                                 "t/part-" + std::to_string(f) + ".lpq",
                                 Buffer::FromVector(*std::move(file)))
                      .ok());
    }
    // One dimension file (dg, w): dg = 0..3, w = dg * 10. A single build
    // file also exercises workers whose build scan is empty.
    auto dim_schema = std::make_shared<Schema>(std::vector<Field>{
        {"dg", DataType::kInt64}, {"w", DataType::kFloat64}});
    TableChunk dim(dim_schema, {Column::Int64({0, 1, 2, 3}),
                                Column::Float64({0, 10, 20, 30})});
    auto dim_file =
        format::FileWriter::WriteTable(dim, format::WriterOptions{});
    ASSERT_TRUE(dim_file.ok());
    ASSERT_TRUE(cloud_->s3()
                    .PutDirect("data", "dim/part-0.lpq",
                               Buffer::FromVector(*std::move(dim_file)))
                    .ok());
  }

  /// The dimension table as a build-side query with a closed output set.
  static Query DimQuery() {
    return Query::FromParquet("s3://data/dim/*.lpq")
        .Select({Col("dg"), Col("w")}, {"dg", "w"});
  }

  std::unique_ptr<cloud::Cloud> cloud_;
  std::unique_ptr<Driver> driver_;
  std::map<int64_t, double> expected_sum_;
  std::map<int64_t, int64_t> expected_count_;
  double total_sum_ = 0;
  double expected_g2_small_ = 0;
};

TEST_F(DriverFixture, GroupedAggregateAcrossWorkers) {
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .Aggregate({"g"}, {engine::Sum(Col("x"), "s"),
                                  engine::Count("n")});
  RunOptions opts;
  opts.files_per_worker = 1;
  auto report = driver_->RunToCompletion(q, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->workers, 4);
  const TableChunk& r = report->result;
  ASSERT_EQ(r.num_rows(), 4u);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    int64_t g = r.column(0).i64()[i];
    EXPECT_NEAR(r.column(1).f64()[i], expected_sum_[g], 1e-6);
    EXPECT_EQ(r.column(2).i64()[i], expected_count_[g]);
  }
  EXPECT_GT(report->latency_s, 0);
  EXPECT_GT(report->cost.lambda_gib_seconds, 0);
  EXPECT_EQ(report->cost.lambda_invocations, 4);
  // Every worker reports the real bytes its scan moved.
  for (const auto& wr : report->worker_results) {
    EXPECT_GT(wr.metrics.scan_bytes_moved(), 0);
  }
}

TEST(PlannerTest, AdaptiveChunkBytesFollowsFigure7) {
  constexpr int64_t kMiB = 1024 * 1024;
  // One connection on a big scan: the bandwidth-saturating 16 MiB knee.
  EXPECT_EQ(AdaptiveChunkBytes(1000 * kMiB, 1), 16 * kMiB);
  // k connections pipeline their request latencies: chunk divides by k.
  EXPECT_EQ(AdaptiveChunkBytes(1000 * kMiB, 4), 4 * kMiB);
  // Small per-worker scans shrink toward 1/8 of their bytes...
  EXPECT_EQ(AdaptiveChunkBytes(32 * kMiB, 1), 4 * kMiB);
  // ...but never below the 1 MiB request-cost floor.
  EXPECT_EQ(AdaptiveChunkBytes(2 * kMiB, 1), kMiB);
  EXPECT_EQ(AdaptiveChunkBytes(0, 1), 16 * kMiB);  // Unknown stats.
  EXPECT_EQ(AdaptiveChunkBytes(1000 * kMiB, 64), kMiB);  // Floor again.
}

TEST_F(DriverFixture, FilterMapReduce) {
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .Filter(Col("g") == Lit(2))
               .Map(Col("x") * Lit(2.0), "x2")
               .ReduceSum("x2");
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->result.num_rows(), 1u);
  EXPECT_NEAR(report->result.column(0).f64()[0], 2.0 * expected_sum_[2],
              1e-6);
}

TEST_F(DriverFixture, FilesPerWorkerControlsWorkerCount) {
  auto q = Query::FromParquet("s3://data/t/*.lpq").ReduceCount();
  RunOptions opts;
  opts.files_per_worker = 2;
  auto report = driver_->RunToCompletion(q, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->workers, 2);
  EXPECT_EQ(report->result.column(0).i64()[0], 4000);
}

TEST_F(DriverFixture, NoMatchingFilesFails) {
  auto q = Query::FromParquet("s3://data/missing/*.lpq").ReduceCount();
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsNotFound());
}

TEST_F(DriverFixture, QueryWithExchangeProducesSameAggregate) {
  // Repartition by g before aggregating: same result, now computed after
  // a shuffle (each group entirely on one worker).
  ExchangeSpec spec;
  spec.levels = 2;
  spec.num_buckets = 4;
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .Repartition({"g"}, spec)
               .Aggregate({"g"}, {engine::Sum(Col("x"), "s")});
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->workers, 4);
  const TableChunk& r = report->result;
  ASSERT_EQ(r.num_rows(), 4u);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    int64_t g = r.column(0).i64()[i];
    EXPECT_NEAR(r.column(1).f64()[i], expected_sum_[g], 1e-6);
  }
}

TEST_F(DriverFixture, CollectRowsWithoutAggregate) {
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .Filter(Col("x") < Lit(10.0));
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.num_rows(), 10u);
}

TEST_F(DriverFixture, SecondRunIsWarm) {
  auto q = Query::FromParquet("s3://data/t/*.lpq").ReduceCount();
  auto cold = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(cold.ok());
  auto hot = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(hot.ok());
  EXPECT_LT(hot->latency_s, cold->latency_s);
  for (const auto& m : cold->worker_metrics) EXPECT_TRUE(m.cold_start);
  for (const auto& m : hot->worker_metrics) EXPECT_FALSE(m.cold_start);
}

TEST_F(DriverFixture, ExchangeToleratesFullyPrunedWorkers) {
  // x < 250 prunes every row group on workers 1-3 (their x ranges start
  // at 1000), so they enter the exchange schema-less; g == 2 then routes
  // every surviving row to one worker, so at least two of them receive
  // nothing either and must contribute an empty partial instead of
  // failing the post-exchange Map on an unknown column.
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .Filter(Col("x") < Lit(250.0))
               .Filter(Col("g") == Lit(2))
               .Repartition({"g"})
               .Map(Col("x") * Lit(2.0), "x2")
               .Aggregate({}, {engine::Sum(Col("x2"), "s")});
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->result.num_rows(), 1u);
  EXPECT_NEAR(report->result.column(0).f64()[0], 2.0 * expected_g2_small_,
              1e-6);
}

TEST_F(DriverFixture, InnerJoinThroughTwoSidedExchange) {
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .JoinWith(DimQuery(), {"g"}, {"dg"})
               .Aggregate({"g"}, {engine::Sum(Col("x"), "sx"),
                                  engine::Sum(Col("w"), "sw")});
  // This test exercises the partitioned path; left to its own devices the
  // cost model would broadcast the tiny dimension table (see
  // BroadcastJoinMatchesPartitioned).
  RunOptions opts;
  opts.join_strategy = JoinStrategyOverride::kForcePartitioned;
  auto report = driver_->RunToCompletion(q, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->workers, 4);
  const TableChunk& r = report->result;
  ASSERT_EQ(r.num_rows(), 4u);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    int64_t g = r.column(0).i64()[i];
    // Every probe row matched exactly one dimension row.
    EXPECT_NEAR(r.column(1).f64()[i], expected_sum_[g], 1e-6);
    EXPECT_NEAR(r.column(2).f64()[i],
                static_cast<double>(expected_count_[g] * g) * 10.0, 1e-6);
  }
  // Both exchanges ran on every worker.
  int64_t rounds = 0, joined = 0;
  for (const auto& wr : report->worker_results) {
    rounds += wr.metrics.exchange_rounds();
    joined += wr.metrics.rows_joined();
  }
  EXPECT_EQ(rounds, 4 * 2 * 2);  // 4 workers x 2 exchanges x 2 levels.
  EXPECT_EQ(joined, 4000);
}

TEST_F(DriverFixture, BroadcastJoinMatchesPartitioned) {
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .JoinWith(DimQuery(), {"g"}, {"dg"})
               .Aggregate({"g"}, {engine::Sum(Col("x"), "sx"),
                                  engine::Sum(Col("w"), "sw")});
  // Left to the cost model, the single tiny dimension file broadcasts:
  // shipping it once to each of 4 workers is far cheaper than pushing
  // both relations through a two-sided hash exchange.
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->join_choices.size(), 1u);
  EXPECT_TRUE(report->join_choices[0].broadcast);
  EXPECT_LT(report->join_choices[0].broadcast_usd,
            report->join_choices[0].partitioned_usd);
  EXPECT_GT(report->join_choices[0].partitioned_usd, 0.0);
  int64_t rounds = 0, joined = 0;
  for (const auto& wr : report->worker_results) {
    rounds += wr.metrics.exchange_rounds();
    joined += wr.metrics.rows_joined();
  }
  EXPECT_EQ(rounds, 0);  // The broadcast path runs no exchange at all.
  EXPECT_EQ(joined, 4000);
  // Same answer as the partitioned plan of InnerJoinThroughTwoSidedExchange.
  const TableChunk& r = report->result;
  ASSERT_EQ(r.num_rows(), 4u);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    int64_t g = r.column(0).i64()[i];
    EXPECT_NEAR(r.column(1).f64()[i], expected_sum_[g], 1e-6);
    EXPECT_NEAR(r.column(2).f64()[i],
                static_cast<double>(expected_count_[g] * g) * 10.0, 1e-6);
  }
}

TEST_F(DriverFixture, LeftSemiJoinFiltersProbeRows) {
  auto dim = Query::FromParquet("s3://data/dim/*.lpq")
                 .Filter(Col("dg") <= Lit(1))
                 .Select({Col("dg")}, {"dg"});
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .JoinWith(dim, {"g"}, {"dg"}, engine::JoinType::kLeftSemi)
               .ReduceSum("x");
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->result.num_rows(), 1u);
  EXPECT_NEAR(report->result.column(0).f64()[0],
              expected_sum_[0] + expected_sum_[1], 1e-6);
}

TEST_F(DriverFixture, JoinWithoutAggregateCollectsRows) {
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .Filter(Col("x") < Lit(10.0))
               .JoinWith(DimQuery(), {"g"}, {"dg"});
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->result.num_rows(), 10u);
  ASSERT_EQ(report->result.num_columns(), 3u);  // g, x, w.
  int w_idx = report->result.schema()->FieldIndex("w");
  ASSERT_GE(w_idx, 0);
  for (size_t i = 0; i < report->result.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(
        report->result.column(static_cast<size_t>(w_idx)).f64()[i],
        static_cast<double>(report->result.column(0).i64()[i]) * 10.0);
  }
}

TEST_F(DriverFixture, MissingBuildFilesFails) {
  auto dim = Query::FromParquet("s3://data/nothing/*.lpq")
                 .Select({Col("dg")}, {"dg"});
  auto q = Query::FromParquet("s3://data/t/*.lpq")
               .JoinWith(dim, {"g"}, {"dg"}, engine::JoinType::kLeftSemi)
               .ReduceCount();
  auto report = driver_->RunToCompletion(q, RunOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Two-level invocation tree
// ---------------------------------------------------------------------------

TEST(InvocationTreeTest, AllWorkersStartAndInvocationIsSublinear) {
  // 256 workers: the driver should only issue ~sqrt(256)=16 Invoke calls;
  // the rest are started by first-generation workers.
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 1000;
  cloud::Cloud cloud(cfg);
  Driver driver(&cloud);
  ASSERT_TRUE(driver.Install().ok());
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  for (int f = 0; f < 256; ++f) {
    TableChunk t(schema, {Column::Int64({f})});
    auto file = format::FileWriter::WriteTable(t, format::WriterOptions{});
    ASSERT_TRUE(file.ok());
    char name[32];
    std::snprintf(name, sizeof(name), "p/%04d.lpq", f);
    ASSERT_TRUE(cloud.s3()
                    .PutDirect("data", name,
                               Buffer::FromVector(*std::move(file)))
                    .ok());
  }
  auto q = Query::FromParquet("s3://data/p/*.lpq").ReduceCount();
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->workers, 256);
  EXPECT_EQ(report->result.column(0).i64()[0], 256);
  // All 256 workers ran exactly once.
  EXPECT_EQ(report->cost.lambda_invocations, 256);
  std::set<int64_t> ids;
  for (const auto& m : report->worker_metrics) ids.insert(m.worker_id);
  EXPECT_EQ(ids.size(), 256u);
  // Invocation issue time is far below what 256 sequential driver calls
  // would take (256/294 ~ 0.87 s at the client rate; the tree needs only
  // 16 calls + in-region fan-out).
  EXPECT_LT(report->invocation_issue_s, 0.6);
}

TEST(InvocationTreeTest, DirectInvocationAlsoWorks) {
  cloud::Cloud cloud;
  DriverOptions dopts;
  dopts.two_level_invocation = false;
  Driver driver(&cloud, dopts);
  ASSERT_TRUE(driver.Install().ok());
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  for (int f = 0; f < 16; ++f) {
    TableChunk t(schema, {Column::Int64({f})});
    auto file = format::FileWriter::WriteTable(t, format::WriterOptions{});
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(cloud.s3()
                    .PutDirect("data", "p/" + std::to_string(f) + ".lpq",
                               Buffer::FromVector(*std::move(file)))
                    .ok());
  }
  auto q = Query::FromParquet("s3://data/p/*.lpq").ReduceCount();
  auto report = driver.RunToCompletion(q, RunOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->result.column(0).i64()[0], 16);
}

}  // namespace
}  // namespace lambada::core
