#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "compress/codec.h"

namespace lambada::compress {
namespace {

std::vector<uint8_t> RoundTrip(const Codec& codec,
                               const std::vector<uint8_t>& input) {
  auto compressed = codec.Compress(input);
  auto r = codec.Decompress(compressed.data(), compressed.size(),
                            input.size());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<uint8_t>{};
}

class AllCodecsTest : public ::testing::TestWithParam<CodecId> {};

INSTANTIATE_TEST_SUITE_P(Codecs, AllCodecsTest,
                         ::testing::Values(CodecId::kNone, CodecId::kRle,
                                           CodecId::kLz, CodecId::kHeavy),
                         [](const auto& info) {
                           return std::string(CodecName(info.param));
                         });

TEST_P(AllCodecsTest, EmptyInput) {
  const Codec& codec = GetCodec(GetParam());
  EXPECT_EQ(RoundTrip(codec, {}), std::vector<uint8_t>{});
}

TEST_P(AllCodecsTest, SingleByte) {
  const Codec& codec = GetCodec(GetParam());
  std::vector<uint8_t> in = {42};
  EXPECT_EQ(RoundTrip(codec, in), in);
}

TEST_P(AllCodecsTest, ShortAscii) {
  const Codec& codec = GetCodec(GetParam());
  std::string s = "hello, lambada!";
  std::vector<uint8_t> in(s.begin(), s.end());
  EXPECT_EQ(RoundTrip(codec, in), in);
}

TEST_P(AllCodecsTest, AllSameByte) {
  const Codec& codec = GetCodec(GetParam());
  std::vector<uint8_t> in(10000, 0xAB);
  EXPECT_EQ(RoundTrip(codec, in), in);
}

TEST_P(AllCodecsTest, RandomBytesRoundTrip) {
  const Codec& codec = GetCodec(GetParam());
  Rng rng(99);
  for (size_t size : {1u, 7u, 100u, 4096u, 70000u}) {
    std::vector<uint8_t> in(size);
    for (auto& b : in) b = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(RoundTrip(codec, in), in) << "size " << size;
  }
}

TEST_P(AllCodecsTest, RepetitiveDataRoundTrip) {
  const Codec& codec = GetCodec(GetParam());
  // Int64 columns with small value ranges: the typical Lambada payload.
  std::vector<int64_t> values;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.UniformInt(0, 50));
  std::vector<uint8_t> in(values.size() * sizeof(int64_t));
  std::memcpy(in.data(), values.data(), in.size());
  EXPECT_EQ(RoundTrip(codec, in), in);
}

TEST_P(AllCodecsTest, DecompressRejectsWrongSize) {
  const Codec& codec = GetCodec(GetParam());
  std::vector<uint8_t> in(1000, 1);
  auto compressed = codec.Compress(in);
  auto r = codec.Decompress(compressed.data(), compressed.size(),
                            in.size() + 1);
  EXPECT_FALSE(r.ok());
}

TEST_P(AllCodecsTest, DecompressRejectsTruncatedInput) {
  const Codec& codec = GetCodec(GetParam());
  std::vector<uint8_t> in(5000);
  Rng rng(3);
  for (auto& b : in) b = static_cast<uint8_t>(rng.UniformInt(0, 3));
  auto compressed = codec.Compress(in);
  ASSERT_GT(compressed.size(), 4u);
  auto r = codec.Decompress(compressed.data(), compressed.size() / 2,
                            in.size());
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, CompressionRatiosOrdered) {
  // On repetitive columnar data: heavy <= lz (heavy never worse), and both
  // do substantially better than raw.
  std::vector<int64_t> values;
  Rng rng(17);
  int64_t v = 0;
  for (int i = 0; i < 50000; ++i) {
    v += rng.UniformInt(0, 3);
    values.push_back(v % 1000);
  }
  std::vector<uint8_t> in(values.size() * sizeof(int64_t));
  std::memcpy(in.data(), values.data(), in.size());
  size_t lz = GetCodec(CodecId::kLz).Compress(in).size();
  size_t heavy = GetCodec(CodecId::kHeavy).Compress(in).size();
  EXPECT_LE(heavy, lz);
  EXPECT_LT(heavy, in.size() / 2);
}

TEST(CodecTest, RleCompressesRuns) {
  std::vector<uint8_t> in(100000, 0);
  size_t rle = GetCodec(CodecId::kRle).Compress(in).size();
  EXPECT_LT(rle, in.size() / 40);
}

TEST(CodecTest, NamesRoundTrip) {
  for (CodecId id : {CodecId::kNone, CodecId::kRle, CodecId::kLz,
                     CodecId::kHeavy}) {
    auto r = CodecFromName(CodecName(id));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, id);
  }
  EXPECT_FALSE(CodecFromName("gzip").ok());
}

TEST(CodecTest, CpuCostModelOrdering) {
  // Heavier codecs must cost more virtual CPU per output byte.
  EXPECT_LT(GetCodec(CodecId::kNone).DecompressCpuSecondsPerByte(),
            GetCodec(CodecId::kRle).DecompressCpuSecondsPerByte());
  EXPECT_LT(GetCodec(CodecId::kRle).DecompressCpuSecondsPerByte(),
            GetCodec(CodecId::kLz).DecompressCpuSecondsPerByte());
  EXPECT_LT(GetCodec(CodecId::kLz).DecompressCpuSecondsPerByte(),
            GetCodec(CodecId::kHeavy).DecompressCpuSecondsPerByte());
}

TEST(CodecTest, LzHandlesOverlappingMatches) {
  // "abcabcabc..." forces offset < match length (self-overlapping copy).
  std::vector<uint8_t> in;
  for (int i = 0; i < 3000; ++i) in.push_back("abc"[i % 3]);
  EXPECT_EQ(RoundTrip(GetCodec(CodecId::kLz), in), in);
  EXPECT_EQ(RoundTrip(GetCodec(CodecId::kHeavy), in), in);
}

TEST(CodecTest, LongLiteralRunsUseExtendedLengths) {
  // Incompressible block > 15 literals exercises extended length paths.
  Rng rng(23);
  std::vector<uint8_t> in(1000);
  for (auto& b : in) b = static_cast<uint8_t>(rng.Next());
  EXPECT_EQ(RoundTrip(GetCodec(CodecId::kLz), in), in);
}

}  // namespace
}  // namespace lambada::compress
