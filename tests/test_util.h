#ifndef LAMBADA_TESTS_TEST_UTIL_H_
#define LAMBADA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

/// ASSERT_* macros use `return`, which is illegal inside coroutines; these
/// variants record the failure and co_return instead.
#define CO_ASSERT_TRUE(cond)            \
  if (!(cond)) {                        \
    ADD_FAILURE() << "failed: " #cond;  \
    co_return;                          \
  }

#define CO_ASSERT_OK(expr)                                        \
  if (const auto& _co_assert_result = (expr);                     \
      !_co_assert_result.ok()) {                                  \
    ADD_FAILURE() << "not OK: "                                   \
                  << ::lambada::internal::ToStatus(               \
                         _co_assert_result)                       \
                         .ToString();                             \
    co_return;                                                    \
  }

#endif  // LAMBADA_TESTS_TEST_UTIL_H_
