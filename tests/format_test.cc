#include <gtest/gtest.h>

#include "test_util.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "cloud/cloud.h"
#include "common/rng.h"
#include "common/units.h"
#include "engine/table.h"
#include "format/encoding.h"
#include "format/metadata.h"
#include "format/reader.h"
#include "format/source.h"
#include "format/writer.h"

namespace lambada::format {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::SchemaPtr;
using engine::TableChunk;

SchemaPtr TwoColumnSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"id", DataType::kInt64}, {"price", DataType::kFloat64}});
}

TableChunk MakeTable(size_t rows, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<int64_t> ids;
  std::vector<double> prices;
  for (size_t i = 0; i < rows; ++i) {
    ids.push_back(static_cast<int64_t>(i));
    prices.push_back(rng.Uniform(0, 1000));
  }
  return TableChunk(TwoColumnSchema(),
                    {Column::Int64(std::move(ids)),
                     Column::Float64(std::move(prices))});
}

/// Opens a reader over in-memory bytes and reads everything back.
TableChunk ReadAll(const std::vector<uint8_t>& file,
                   std::vector<int> columns = {}) {
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(file)));
  TableChunk out;
  bool done = false;
  sim::Spawn([](std::shared_ptr<InMemorySource> src, std::vector<int> cols,
                TableChunk* result, bool* flag) -> sim::Async<void> {
    auto reader = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(reader.ok());
    std::vector<int> proj = cols;
    if (proj.empty()) {
      for (size_t i = 0; i < (*reader)->schema()->num_fields(); ++i) {
        proj.push_back(static_cast<int>(i));
      }
    }
    std::vector<TableChunk> chunks;
    for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      auto chunk = co_await (*reader)->ReadRowGroup(rg, proj);
      CO_ASSERT_TRUE(chunk.ok());
      chunks.push_back(*std::move(chunk));
    }
    auto all = engine::ConcatChunks(chunks);
    CO_ASSERT_TRUE(all.ok());
    *result = *std::move(all);
    *flag = true;
  }(source, std::move(columns), &out, &done));
  sim.Run();
  EXPECT_TRUE(done);
  return out;
}

// ---------------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------------

TEST(EncodingTest, PlainRoundTripInt64) {
  Column c = Column::Int64({1, -5, 1000000, 0});
  auto bytes = EncodeColumn(c, Encoding::kPlain);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kPlain, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), c.i64());
}

TEST(EncodingTest, PlainRoundTripFloat64) {
  Column c = Column::Float64({1.5, -2.25, 0.0, 1e300});
  auto bytes = EncodeColumn(c, Encoding::kPlain);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kFloat64,
                           Encoding::kPlain, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->f64(), c.f64());
}

TEST(EncodingTest, DeltaRoundTripAndCompact) {
  std::vector<int64_t> sorted;
  for (int64_t i = 0; i < 10000; ++i) sorted.push_back(10000 + i / 3);
  Column c = Column::Int64(sorted);
  auto bytes = EncodeColumn(c, Encoding::kDelta);
  ASSERT_TRUE(bytes.ok());
  // Sorted data: ~1 byte per value vs 8 plain.
  EXPECT_LT(bytes->size(), sorted.size() * 2);
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kDelta, sorted.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), sorted);
}

TEST(EncodingTest, DeltaHandlesNegativesAndExtremes) {
  std::vector<int64_t> v = {INT64_MAX, INT64_MIN, 0, -1, 1};
  Column c = Column::Int64(v);
  auto bytes = EncodeColumn(c, Encoding::kDelta);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kDelta, v.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), v);
}

TEST(EncodingTest, DictRoundTripLowCardinality) {
  Rng rng(3);
  std::vector<int64_t> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.UniformInt(0, 2));
  Column c = Column::Int64(v);
  auto bytes = EncodeColumn(c, Encoding::kDict);
  ASSERT_TRUE(bytes.ok());
  EXPECT_LT(bytes->size(), v.size() * 2);
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kDict, v.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), v);
}

TEST(EncodingTest, DeltaRejectedForFloat) {
  Column c = Column::Float64({1.0});
  EXPECT_FALSE(EncodeColumn(c, Encoding::kDelta).ok());
  EXPECT_FALSE(EncodeColumn(c, Encoding::kDict).ok());
}

TEST(EncodingTest, AutoPicksCompactEncoding) {
  // Low-cardinality: dict or delta must beat plain.
  Rng rng(9);
  std::vector<int64_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.UniformInt(0, 4));
  auto enc = EncodeColumnAuto(Column::Int64(v));
  EXPECT_NE(enc.encoding, Encoding::kPlain);
  EXPECT_LT(enc.bytes.size(), v.size() * 8);
}

TEST(EncodingTest, RleRoundTripInt64Runs) {
  std::vector<int64_t> v;
  for (int run = 0; run < 50; ++run) {
    for (int i = 0; i < run + 1; ++i) v.push_back(run * 7 - 100);
  }
  Column c = Column::Int64(v);
  auto bytes = EncodeColumn(c, Encoding::kRle);
  ASSERT_TRUE(bytes.ok());
  EXPECT_LT(bytes->size(), v.size());  // 50 runs, ~3 bytes each.
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kRle, v.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), v);
}

TEST(EncodingTest, RleRoundTripFloat64BitPatterns) {
  // Bit-pattern equality must round-trip NaN and signed zeros exactly.
  const double nan = std::nan("");
  std::vector<double> v = {0.0,  0.0, -0.0, -0.0, nan, nan,
                           1e300, 1e300, -1.5};
  Column c = Column::Float64(v);
  auto bytes = EncodeColumn(c, Encoding::kRle);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kFloat64,
                           Encoding::kRle, v.size());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->f64().size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    uint64_t a, b;
    std::memcpy(&a, &back->f64()[i], 8);
    std::memcpy(&b, &v[i], 8);
    EXPECT_EQ(a, b) << "row " << i;
  }
}

TEST(EncodingTest, RleExtremesAndSingleValue) {
  for (std::vector<int64_t> v :
       {std::vector<int64_t>{INT64_MAX}, std::vector<int64_t>{INT64_MIN},
        std::vector<int64_t>{INT64_MAX, INT64_MIN, INT64_MAX},
        std::vector<int64_t>{0}}) {
    auto bytes = EncodeColumn(Column::Int64(v), Encoding::kRle);
    ASSERT_TRUE(bytes.ok());
    auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                             Encoding::kRle, v.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->i64(), v);
  }
}

/// Property-style round trips: random run lengths and cardinalities, for
/// every encoding applicable to the generated column.
TEST(EncodingTest, PropertyRoundTripsAllEncodings) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    size_t n = static_cast<size_t>(rng.UniformInt(0, 5000));
    int64_t cardinality = rng.UniformInt(1, 64);
    int64_t max_run = rng.UniformInt(1, 50);
    std::vector<int64_t> vi;
    while (vi.size() < n) {
      int64_t value = rng.UniformInt(-cardinality, cardinality) * 1000003;
      int64_t run = rng.UniformInt(1, max_run);
      for (int64_t r = 0; r < run && vi.size() < n; ++r) vi.push_back(value);
    }
    Column ci = Column::Int64(vi);
    for (Encoding e : {Encoding::kPlain, Encoding::kDelta, Encoding::kDict,
                       Encoding::kRle}) {
      auto bytes = EncodeColumn(ci, e);
      ASSERT_TRUE(bytes.ok()) << "seed " << seed;
      auto back = DecodeColumn(bytes->data(), bytes->size(),
                               DataType::kInt64, e, vi.size());
      ASSERT_TRUE(back.ok()) << "seed " << seed << " encoding "
                             << static_cast<int>(e);
      EXPECT_EQ(back->i64(), vi) << "seed " << seed;
    }
    std::vector<double> vf;
    for (size_t i = 0; i < n; ++i) {
      vf.push_back(static_cast<double>(vi[i]) * 0.25);
    }
    Column cf = Column::Float64(vf);
    for (Encoding e : {Encoding::kPlain, Encoding::kRle}) {
      auto bytes = EncodeColumn(cf, e);
      ASSERT_TRUE(bytes.ok());
      auto back = DecodeColumn(bytes->data(), bytes->size(),
                               DataType::kFloat64, e, vf.size());
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back->f64(), vf) << "seed " << seed;
    }
    // Auto-selection round-trips whatever it picked.
    auto auto_i = EncodeColumnAuto(ci);
    auto back_i = DecodeColumn(auto_i.bytes.data(), auto_i.bytes.size(),
                               DataType::kInt64, auto_i.encoding, vi.size());
    ASSERT_TRUE(back_i.ok());
    EXPECT_EQ(back_i->i64(), vi) << "seed " << seed;
  }
}

TEST(EncodingTest, EmptyColumnsRoundTrip) {
  for (Encoding e : {Encoding::kPlain, Encoding::kDelta, Encoding::kDict,
                     Encoding::kRle}) {
    Column c = Column::Int64({});
    auto bytes = EncodeColumn(c, e);
    ASSERT_TRUE(bytes.ok());
    auto back =
        DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64, e, 0);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size(), 0u);
  }
}

TEST(EncodingTest, AutoPrefersDictNearTies) {
  // Small-range ints: dict codes and delta varints are both one byte per
  // value, delta marginally smaller. Dict must still win (only it supports
  // code-range predicate push-down).
  Rng rng(11);
  std::vector<int64_t> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.UniformInt(0, 6));
  auto enc = EncodeColumnAuto(Column::Int64(v));
  EXPECT_EQ(enc.encoding, Encoding::kDict);
}

TEST(EncodingTest, AutoPrefersDictWhenRleIsMarginallySmaller) {
  // Large-magnitude low-cardinality values in runs averaging 4.25: dict
  // codes are one byte per value, run-length lands a few percent SMALLER
  // (one 1-byte length + one multi-byte value delta per run), and delta
  // pays the multi-byte boundary jumps. Order: rle < dict < delta <
  // plain, with dict within the 5% preference window — dict must still
  // win (regression: the tie-break used to inspect a moved-from buffer
  // and silently fall through to rle).
  std::vector<int64_t> v;
  int value = 0;
  for (int run = 0; v.size() < 21000; ++run) {
    int len = (run % 4 == 3) ? 5 : 4;
    for (int i = 0; i < len; ++i) v.push_back((value % 7 + 1) * 1000000);
    ++value;
  }
  Column c = Column::Int64(v);
  size_t rle = EncodeColumn(c, Encoding::kRle)->size();
  size_t dict = EncodeColumn(c, Encoding::kDict)->size();
  size_t delta = EncodeColumn(c, Encoding::kDelta)->size();
  ASSERT_LT(rle, dict) << "fixture must make rle the raw winner";
  ASSERT_LT(dict, delta);
  ASSERT_LE(static_cast<double>(dict), 1.05 * static_cast<double>(rle))
      << "fixture must land dict inside the preference window";
  EXPECT_EQ(EncodeColumnAuto(c).encoding, Encoding::kDict);
}

TEST(EncodingTest, DictViewMatchesMaterialization) {
  Rng rng(13);
  std::vector<int64_t> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.UniformInt(0, 9) * 123457);
  auto bytes = EncodeColumn(Column::Int64(v), Encoding::kDict);
  ASSERT_TRUE(bytes.ok());
  auto view = DecodeDictView(bytes->data(), bytes->size(), v.size());
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(std::is_sorted(view->values.begin(), view->values.end()));
  EXPECT_EQ(MaterializeDictView(*view).i64(), v);
}

TEST(EncodingTest, CorruptDataFailsCleanly) {
  std::vector<uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kDelta, 100)
                   .ok());
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kDict, 100)
                   .ok());
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kPlain, 100)
                   .ok());
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kRle, 100)
                   .ok());
  // RLE runs must cover exactly num_rows: a run overshooting the column is
  // corruption, not padding.
  auto good = EncodeColumn(Column::Int64({1, 1, 1, 2}), Encoding::kRle);
  ASSERT_TRUE(good.ok());
  EXPECT_FALSE(DecodeColumn(good->data(), good->size(), DataType::kInt64,
                            Encoding::kRle, 3)
                   .ok());
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

TEST(MetadataTest, StatsComputed) {
  auto s = ColumnStats::Compute(Column::Int64({5, -2, 9}));
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.min_i64, -2);
  EXPECT_EQ(s.max_i64, 9);
  auto f = ColumnStats::Compute(Column::Float64({1.5, 0.25}));
  EXPECT_DOUBLE_EQ(f.min_f64, 0.25);
  EXPECT_DOUBLE_EQ(f.max_f64, 1.5);
  auto e = ColumnStats::Compute(Column::Int64({}));
  EXPECT_FALSE(e.valid);
}

TEST(MetadataTest, FooterRoundTrip) {
  FileMetadata meta;
  meta.schema = *TwoColumnSchema();
  meta.num_rows = 100;
  RowGroupMeta rg;
  rg.num_rows = 100;
  ColumnChunkMeta c0;
  c0.offset = 4;
  c0.compressed_size = 50;
  c0.uncompressed_size = 800;
  c0.encoding = Encoding::kDelta;
  c0.codec = compress::CodecId::kHeavy;
  c0.stats.valid = true;
  c0.stats.min_i64 = 0;
  c0.stats.max_i64 = 99;
  ColumnChunkMeta c1;
  c1.offset = 54;
  c1.compressed_size = 700;
  c1.uncompressed_size = 800;
  c1.codec = compress::CodecId::kLz;
  c1.stats.valid = true;
  c1.stats.min_f64 = 0.5;
  c1.stats.max_f64 = 999.5;
  rg.columns = {c0, c1};
  meta.row_groups.push_back(rg);

  auto bytes = meta.Serialize();
  auto parsed = FileMetadata::Parse(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, meta.schema);
  EXPECT_EQ(parsed->num_rows, 100u);
  ASSERT_EQ(parsed->row_groups.size(), 1u);
  const auto& prg = parsed->row_groups[0];
  EXPECT_EQ(prg.columns[0].stats.max_i64, 99);
  EXPECT_EQ(prg.columns[0].encoding, Encoding::kDelta);
  EXPECT_EQ(prg.columns[1].codec, compress::CodecId::kLz);
  EXPECT_DOUBLE_EQ(prg.columns[1].stats.max_f64, 999.5);
}

TEST(MetadataTest, ParseRejectsCorruption) {
  FileMetadata meta;
  meta.schema = *TwoColumnSchema();
  auto bytes = meta.Serialize();
  // Truncated.
  EXPECT_FALSE(FileMetadata::Parse(bytes.data(), bytes.size() / 2).ok());
  // Bad version.
  auto bad = bytes;
  bad[0] = 99;
  EXPECT_FALSE(FileMetadata::Parse(bad.data(), bad.size()).ok());
}

// ---------------------------------------------------------------------------
// Writer + Reader round trips
// ---------------------------------------------------------------------------

class WriterCodecTest : public ::testing::TestWithParam<compress::CodecId> {};

INSTANTIATE_TEST_SUITE_P(Codecs, WriterCodecTest,
                         ::testing::Values(compress::CodecId::kNone,
                                           compress::CodecId::kRle,
                                           compress::CodecId::kLz,
                                           compress::CodecId::kHeavy),
                         [](const auto& info) {
                           return std::string(
                               compress::CodecName(info.param));
                         });

TEST_P(WriterCodecTest, RoundTripAllCodecs) {
  TableChunk table = MakeTable(5000);
  WriterOptions opts;
  opts.codec = GetParam();
  opts.row_group_rows = 1024;
  auto file = FileWriter::WriteTable(table, opts);
  ASSERT_TRUE(file.ok());
  TableChunk back = ReadAll(*file);
  ASSERT_EQ(back.num_rows(), table.num_rows());
  EXPECT_EQ(back.column(0).i64(), table.column(0).i64());
  EXPECT_EQ(back.column(1).f64(), table.column(1).f64());
}

TEST(WriterTest, RowGroupsCutAtConfiguredSize) {
  TableChunk table = MakeTable(10000);
  WriterOptions opts;
  opts.row_group_rows = 3000;
  auto file = FileWriter::WriteTable(table, opts);
  ASSERT_TRUE(file.ok());
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(*file)));
  std::shared_ptr<FileReader> reader;
  sim::Spawn([](std::shared_ptr<InMemorySource> src,
                std::shared_ptr<FileReader>* out) -> sim::Async<void> {
    auto r = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(r.ok());
    *out = *r;
  }(source, &reader));
  sim.Run();
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->num_row_groups(), 4);  // 3000+3000+3000+1000.
  EXPECT_EQ(reader->metadata().row_groups[3].num_rows, 1000u);
  EXPECT_EQ(reader->metadata().num_rows, 10000u);
}

TEST(WriterTest, MultipleAppendsAccumulate) {
  FileWriter writer(TwoColumnSchema(), WriterOptions{});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.Append(MakeTable(100, i)).ok());
  }
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(ReadAll(*file).num_rows(), 500u);
}

TEST(WriterTest, EmptyTableProducesValidFile) {
  auto file = FileWriter::WriteTable(TableChunk::Empty(TwoColumnSchema()));
  ASSERT_TRUE(file.ok());
  TableChunk back = ReadAll(*file);
  EXPECT_EQ(back.num_rows(), 0u);
}

TEST(WriterTest, SchemaMismatchRejected) {
  FileWriter writer(TwoColumnSchema(), WriterOptions{});
  auto other = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  TableChunk wrong(other, {Column::Int64({1})});
  EXPECT_FALSE(writer.Append(wrong).ok());
}

/// A table whose columns auto-select four different encodings: sorted ints
/// (rle), a low-cardinality flag (dict), a strictly increasing key
/// (delta), and random doubles (plain).
TableChunk MixedEncodingTable(size_t rows) {
  Rng rng(17);
  std::vector<int64_t> sorted, flag, key;
  std::vector<double> noise;
  int64_t date = 8000;
  for (size_t i = 0; i < rows; ++i) {
    if (rng.UniformInt(0, 200) == 0) ++date;
    sorted.push_back(date);
    flag.push_back(rng.UniformInt(0, 3));
    key.push_back(static_cast<int64_t>(i) * 7 +
                  rng.UniformInt(0, 6));  // Increasing, irregular steps.
    noise.push_back(rng.Uniform(0, 1e9));
  }
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"sorted", DataType::kInt64},
      {"flag", DataType::kInt64},
      {"key", DataType::kInt64},
      {"noise", DataType::kFloat64}});
  return TableChunk(schema,
                    {Column::Int64(std::move(sorted)),
                     Column::Int64(std::move(flag)),
                     Column::Int64(std::move(key)),
                     Column::Float64(std::move(noise))});
}

TEST(WriterTest, MixedEncodingFilesByteIdenticalAcrossThreadCounts) {
  TableChunk table = MixedEncodingTable(20000);
  WriterOptions base;
  base.row_group_rows = 4096;
  auto reference = FileWriter::WriteTable(table, base);
  ASSERT_TRUE(reference.ok());
  // The file actually mixes encodings.
  {
    uint32_t footer_len;
    std::memcpy(&footer_len, reference->data() + reference->size() - 8, 4);
    auto meta = FileMetadata::Parse(
        reference->data() + reference->size() - 8 - footer_len, footer_len);
    ASSERT_TRUE(meta.ok());
    std::set<Encoding> used;
    for (const auto& rg : meta->row_groups) {
      for (const auto& cc : rg.columns) used.insert(cc.encoding);
    }
    EXPECT_EQ(used.size(), 4u) << "expected rle+dict+delta+plain";
  }
  for (int threads : {2, 8}) {
    WriterOptions opts = base;
    opts.exec = exec::ExecContext::Parallel(threads);
    auto file = FileWriter::WriteTable(table, opts);
    ASSERT_TRUE(file.ok());
    EXPECT_EQ(*file, *reference) << "writer threads " << threads;
  }
  // And the mixed file scans back to the original rows.
  TableChunk back = ReadAll(*reference);
  ASSERT_EQ(back.num_rows(), table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).type() == DataType::kInt64) {
      EXPECT_EQ(back.column(c).i64(), table.column(c).i64());
    } else {
      EXPECT_EQ(back.column(c).f64(), table.column(c).f64());
    }
  }
}

TEST(ReaderTest, ProjectionReadsOnlyRequestedColumns) {
  TableChunk table = MakeTable(2000);
  auto file = FileWriter::WriteTable(table, WriterOptions{});
  ASSERT_TRUE(file.ok());
  TableChunk back = ReadAll(*file, {1});
  ASSERT_EQ(back.num_columns(), 1u);
  EXPECT_EQ(back.schema()->field(0).name, "price");
  EXPECT_EQ(back.column(0).f64(), table.column(1).f64());
}

TEST(ReaderTest, StatsEnableRowGroupPruning) {
  // The id column is sorted: each row group covers a distinct range.
  TableChunk table = MakeTable(9000);
  WriterOptions opts;
  opts.row_group_rows = 3000;
  auto file = FileWriter::WriteTable(table, opts);
  ASSERT_TRUE(file.ok());
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(*file)));
  std::shared_ptr<FileReader> reader;
  sim::Spawn([](std::shared_ptr<InMemorySource> src,
                std::shared_ptr<FileReader>* out) -> sim::Async<void> {
    auto r = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(r.ok());
    *out = *r;
  }(source, &reader));
  sim.Run();
  ASSERT_NE(reader, nullptr);
  const auto& rgs = reader->metadata().row_groups;
  ASSERT_EQ(rgs.size(), 3u);
  EXPECT_EQ(rgs[0].columns[0].stats.min_i64, 0);
  EXPECT_EQ(rgs[0].columns[0].stats.max_i64, 2999);
  EXPECT_EQ(rgs[2].columns[0].stats.min_i64, 6000);
  EXPECT_EQ(rgs[2].columns[0].stats.max_i64, 8999);
}

TEST(ReaderTest, DictBoundsPreFilterRows) {
  TableChunk table = MixedEncodingTable(8000);
  WriterOptions wo;
  wo.row_group_rows = 2048;
  auto file = FileWriter::WriteTable(table, wo);
  ASSERT_TRUE(file.ok());
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(*file)));
  TableChunk got;
  int64_t dict_filtered = 0;
  bool empty_bound_empty = true;
  sim::Spawn([](std::shared_ptr<InMemorySource> src, TableChunk* out,
                int64_t* filtered, bool* all_empty) -> sim::Async<void> {
    auto reader = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(reader.ok());
    // "flag" is column 1 and dict-encoded; keep only flag == 2.
    std::map<int, ColumnBound> bounds;
    bounds.emplace(1, ColumnBound{2.0, 2.0});
    std::vector<int> proj;
    proj.push_back(0);
    proj.push_back(1);
    proj.push_back(3);
    std::vector<TableChunk> chunks;
    for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      auto chunk = co_await (*reader)->ReadRowGroup(rg, proj, 1, &bounds);
      CO_ASSERT_TRUE(chunk.ok());
      chunks.push_back(*std::move(chunk));
    }
    auto all = engine::ConcatChunks(chunks);
    CO_ASSERT_TRUE(all.ok());
    *out = *std::move(all);
    *filtered = (*reader)->rows_dict_filtered();
    // A bound no dictionary value intersects empties every row group
    // without decoding the other columns.
    std::map<int, ColumnBound> nothing;
    nothing.emplace(1, ColumnBound{100.0, 200.0});
    for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      auto chunk = co_await (*reader)->ReadRowGroup(rg, proj, 1, &nothing);
      CO_ASSERT_TRUE(chunk.ok());
      *all_empty = *all_empty && chunk->num_rows() == 0;
    }
  }(source, &got, &dict_filtered, &empty_bound_empty));
  sim.Run();
  // Reference: the rows of the original table with flag == 2.
  std::vector<bool> keep(table.num_rows());
  size_t expect = 0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    keep[i] = table.column(1).i64()[i] == 2;
    if (keep[i]) ++expect;
  }
  auto reference = table.Filter(keep).Project({0, 1, 3});
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(got.num_rows(), expect);
  EXPECT_EQ(dict_filtered,
            static_cast<int64_t>(table.num_rows() - expect));
  EXPECT_EQ(got.column(0).i64(), reference->column(0).i64());
  EXPECT_EQ(got.column(1).i64(), reference->column(1).i64());
  EXPECT_EQ(got.column(2).f64(), reference->column(2).f64());
  EXPECT_TRUE(empty_bound_empty);
}

TEST(ReaderTest, CoalescingMergesAdjacentRequests) {
  TableChunk table = MakeTable(6000);
  WriterOptions wo;
  wo.row_group_rows = 2048;
  auto file = FileWriter::WriteTable(table, wo);
  ASSERT_TRUE(file.ok());
  auto run = [&](int64_t gap) -> std::pair<int64_t, TableChunk> {
    cloud::Cloud cloud;
    LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
    LAMBADA_CHECK_OK(cloud.s3().PutDirect(
        "data", "t.lpq", Buffer::FromVector(std::vector<uint8_t>(*file))));
    TableChunk out;
    sim::Spawn([](cloud::Cloud* c, int64_t gap_bytes,
                  TableChunk* result) -> sim::Async<void> {
      cloud::S3Client client(&c->s3(), c->driver_net());
      auto source = std::make_shared<S3Source>(client, "data", "t.lpq");
      ReaderOptions opts;
      opts.sim = &c->sim();
      opts.coalesce_gap_bytes = gap_bytes;
      auto reader = co_await FileReader::Open(source, opts);
      CO_ASSERT_TRUE(reader.ok());
      std::vector<int> proj = {0, 1};
      std::vector<TableChunk> chunks;
      for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
        auto chunk = co_await (*reader)->ReadRowGroup(rg, proj, 2);
        CO_ASSERT_TRUE(chunk.ok());
        chunks.push_back(*std::move(chunk));
      }
      auto all = engine::ConcatChunks(chunks);
      CO_ASSERT_TRUE(all.ok());
      *result = *std::move(all);
    }(&cloud, gap, &out));
    cloud.sim().Run();
    return {cloud.ledger().totals().s3_get_requests, out};
  };
  auto [gets_coalesced, rows_coalesced] = run(1024 * 1024);
  auto [gets_split, rows_split] = run(0);
  // 3 row groups x 2 adjacent column chunks: coalescing halves the data
  // GETs (footer read + 3 vs footer read + 6)...
  EXPECT_EQ(gets_coalesced, 4);
  EXPECT_EQ(gets_split, 7);
  // ...and never changes the bytes produced.
  EXPECT_EQ(rows_coalesced.column(0).i64(), rows_split.column(0).i64());
  EXPECT_EQ(rows_coalesced.column(1).f64(), rows_split.column(1).f64());
}

TEST(ReaderTest, BytesFetchedTracksProjection) {
  TableChunk table = MakeTable(6000);
  auto file = FileWriter::WriteTable(table, WriterOptions{});
  ASSERT_TRUE(file.ok());
  auto bytes_for = [&](std::vector<int> proj) {
    sim::Simulator sim;
    auto source = std::make_shared<InMemorySource>(
        Buffer::FromVector(std::vector<uint8_t>(*file)));
    int64_t fetched = 0;
    sim::Spawn([](std::shared_ptr<InMemorySource> src, std::vector<int> cols,
                  int64_t* out) -> sim::Async<void> {
      auto reader = co_await FileReader::Open(src);
      CO_ASSERT_TRUE(reader.ok());
      for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
        auto chunk = co_await (*reader)->ReadRowGroup(rg, cols);
        CO_ASSERT_TRUE(chunk.ok());
      }
      *out = (*reader)->bytes_fetched();
    }(source, std::move(proj), &fetched));
    sim.Run();
    return fetched;
  };
  int64_t both = bytes_for({0, 1});
  int64_t one = bytes_for({1});
  EXPECT_GT(one, 0);
  EXPECT_GT(both, one);  // Projection narrows the bytes moved.
}

TEST(ReaderTest, CorruptMagicRejected) {
  auto file = FileWriter::WriteTable(MakeTable(100));
  ASSERT_TRUE(file.ok());
  auto bad = *file;
  bad[bad.size() - 1] = 'X';
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::move(bad)));
  Status status = Status::OK();
  sim::Spawn([](std::shared_ptr<InMemorySource> src,
                Status* out) -> sim::Async<void> {
    auto r = co_await FileReader::Open(src);
    *out = r.status();
  }(source, &status));
  sim.Run();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// S3Source integration (chunked concurrent reads, request accounting)
// ---------------------------------------------------------------------------

TEST(S3SourceTest, ReadsThroughSimulatedS3) {
  cloud::Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  TableChunk table = MakeTable(4000);
  auto file = FileWriter::WriteTable(table, WriterOptions{});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      cloud.s3().PutDirect("data", "t.lpq", Buffer::FromVector(*file)).ok());

  TableChunk back;
  sim::Spawn([](cloud::Cloud* c, TableChunk* out) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    auto source = std::make_shared<S3Source>(client, "data", "t.lpq");
    ReaderOptions opts;
    opts.sim = &c->sim();
    auto reader = co_await FileReader::Open(source, opts);
    CO_ASSERT_TRUE(reader.ok());
    std::vector<TableChunk> chunks;
    std::vector<int> proj = {0, 1};
    for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      auto chunk = co_await (*reader)->ReadRowGroup(rg, proj, 4);
      CO_ASSERT_TRUE(chunk.ok());
      chunks.push_back(*std::move(chunk));
    }
    auto all = engine::ConcatChunks(chunks);
    *out = *std::move(all);
  }(&cloud, &back));
  cloud.sim().Run();
  ASSERT_EQ(back.num_rows(), 4000u);
  EXPECT_EQ(back.column(0).i64(), table.column(0).i64());
  // Footer read + ONE coalesced GET for the adjacent column chunks (they
  // are contiguous in the file, so the default gap budget merges them).
  EXPECT_EQ(cloud.ledger().totals().s3_get_requests, 2);
}

TEST(S3SourceTest, ChunkedReadSplitsRequests) {
  cloud::Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  std::vector<uint8_t> blob(10 * kMiB);
  Rng rng(5);
  for (auto& b : blob) b = static_cast<uint8_t>(rng.Next());
  auto expected = blob;
  ASSERT_TRUE(cloud.s3()
                  .PutDirect("data", "blob", Buffer::FromVector(std::move(blob)))
                  .ok());
  S3Source::Options opts;
  opts.chunk_bytes = 1 * kMiB;
  opts.connections = 4;
  std::vector<uint8_t> got;
  int64_t requests = 0;
  sim::Spawn([](cloud::Cloud* c, S3Source::Options o,
                std::vector<uint8_t>* out, int64_t* reqs) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    S3Source source(client, "data", "blob", o);
    auto r = co_await source.ReadAt(0, 10 * kMiB);
    CO_ASSERT_TRUE(r.ok());
    out->assign((*r)->data(), (*r)->data() + (*r)->size());
    *reqs = source.request_count();
  }(&cloud, opts, &got, &requests));
  cloud.sim().Run();
  EXPECT_EQ(got, expected);
  EXPECT_EQ(requests, 10);  // 10 MiB / 1 MiB chunks.
}

TEST(S3SourceTest, MissingObjectReportsNotFound) {
  cloud::Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  Status status = Status::OK();
  sim::Spawn([](cloud::Cloud* c, Status* out) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    S3Source source(client, "data", "missing");
    auto r = co_await source.ReadTail(1024);
    *out = r.status();
  }(&cloud, &status));
  cloud.sim().Run();
  EXPECT_TRUE(status.IsNotFound());
}

}  // namespace
}  // namespace lambada::format
