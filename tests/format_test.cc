#include <gtest/gtest.h>

#include "test_util.h"

#include <cstring>
#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "common/rng.h"
#include "common/units.h"
#include "engine/table.h"
#include "format/encoding.h"
#include "format/metadata.h"
#include "format/reader.h"
#include "format/source.h"
#include "format/writer.h"

namespace lambada::format {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::SchemaPtr;
using engine::TableChunk;

SchemaPtr TwoColumnSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"id", DataType::kInt64}, {"price", DataType::kFloat64}});
}

TableChunk MakeTable(size_t rows, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<int64_t> ids;
  std::vector<double> prices;
  for (size_t i = 0; i < rows; ++i) {
    ids.push_back(static_cast<int64_t>(i));
    prices.push_back(rng.Uniform(0, 1000));
  }
  return TableChunk(TwoColumnSchema(),
                    {Column::Int64(std::move(ids)),
                     Column::Float64(std::move(prices))});
}

/// Opens a reader over in-memory bytes and reads everything back.
TableChunk ReadAll(const std::vector<uint8_t>& file,
                   std::vector<int> columns = {}) {
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(file)));
  TableChunk out;
  bool done = false;
  sim::Spawn([](std::shared_ptr<InMemorySource> src, std::vector<int> cols,
                TableChunk* result, bool* flag) -> sim::Async<void> {
    auto reader = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(reader.ok());
    std::vector<int> proj = cols;
    if (proj.empty()) {
      for (size_t i = 0; i < (*reader)->schema()->num_fields(); ++i) {
        proj.push_back(static_cast<int>(i));
      }
    }
    std::vector<TableChunk> chunks;
    for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      auto chunk = co_await (*reader)->ReadRowGroup(rg, proj);
      CO_ASSERT_TRUE(chunk.ok());
      chunks.push_back(*std::move(chunk));
    }
    auto all = engine::ConcatChunks(chunks);
    CO_ASSERT_TRUE(all.ok());
    *result = *std::move(all);
    *flag = true;
  }(source, std::move(columns), &out, &done));
  sim.Run();
  EXPECT_TRUE(done);
  return out;
}

// ---------------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------------

TEST(EncodingTest, PlainRoundTripInt64) {
  Column c = Column::Int64({1, -5, 1000000, 0});
  auto bytes = EncodeColumn(c, Encoding::kPlain);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kPlain, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), c.i64());
}

TEST(EncodingTest, PlainRoundTripFloat64) {
  Column c = Column::Float64({1.5, -2.25, 0.0, 1e300});
  auto bytes = EncodeColumn(c, Encoding::kPlain);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kFloat64,
                           Encoding::kPlain, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->f64(), c.f64());
}

TEST(EncodingTest, DeltaRoundTripAndCompact) {
  std::vector<int64_t> sorted;
  for (int64_t i = 0; i < 10000; ++i) sorted.push_back(10000 + i / 3);
  Column c = Column::Int64(sorted);
  auto bytes = EncodeColumn(c, Encoding::kDelta);
  ASSERT_TRUE(bytes.ok());
  // Sorted data: ~1 byte per value vs 8 plain.
  EXPECT_LT(bytes->size(), sorted.size() * 2);
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kDelta, sorted.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), sorted);
}

TEST(EncodingTest, DeltaHandlesNegativesAndExtremes) {
  std::vector<int64_t> v = {INT64_MAX, INT64_MIN, 0, -1, 1};
  Column c = Column::Int64(v);
  auto bytes = EncodeColumn(c, Encoding::kDelta);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kDelta, v.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), v);
}

TEST(EncodingTest, DictRoundTripLowCardinality) {
  Rng rng(3);
  std::vector<int64_t> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.UniformInt(0, 2));
  Column c = Column::Int64(v);
  auto bytes = EncodeColumn(c, Encoding::kDict);
  ASSERT_TRUE(bytes.ok());
  EXPECT_LT(bytes->size(), v.size() * 2);
  auto back = DecodeColumn(bytes->data(), bytes->size(), DataType::kInt64,
                           Encoding::kDict, v.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->i64(), v);
}

TEST(EncodingTest, DeltaRejectedForFloat) {
  Column c = Column::Float64({1.0});
  EXPECT_FALSE(EncodeColumn(c, Encoding::kDelta).ok());
  EXPECT_FALSE(EncodeColumn(c, Encoding::kDict).ok());
}

TEST(EncodingTest, AutoPicksCompactEncoding) {
  // Low-cardinality: dict or delta must beat plain.
  Rng rng(9);
  std::vector<int64_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.UniformInt(0, 4));
  auto enc = EncodeColumnAuto(Column::Int64(v));
  EXPECT_NE(enc.encoding, Encoding::kPlain);
  EXPECT_LT(enc.bytes.size(), v.size() * 8);
}

TEST(EncodingTest, CorruptDataFailsCleanly) {
  std::vector<uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kDelta, 100)
                   .ok());
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kDict, 100)
                   .ok());
  EXPECT_FALSE(DecodeColumn(garbage.data(), garbage.size(),
                            DataType::kInt64, Encoding::kPlain, 100)
                   .ok());
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

TEST(MetadataTest, StatsComputed) {
  auto s = ColumnStats::Compute(Column::Int64({5, -2, 9}));
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.min_i64, -2);
  EXPECT_EQ(s.max_i64, 9);
  auto f = ColumnStats::Compute(Column::Float64({1.5, 0.25}));
  EXPECT_DOUBLE_EQ(f.min_f64, 0.25);
  EXPECT_DOUBLE_EQ(f.max_f64, 1.5);
  auto e = ColumnStats::Compute(Column::Int64({}));
  EXPECT_FALSE(e.valid);
}

TEST(MetadataTest, FooterRoundTrip) {
  FileMetadata meta;
  meta.schema = *TwoColumnSchema();
  meta.num_rows = 100;
  RowGroupMeta rg;
  rg.num_rows = 100;
  ColumnChunkMeta c0;
  c0.offset = 4;
  c0.compressed_size = 50;
  c0.uncompressed_size = 800;
  c0.encoding = Encoding::kDelta;
  c0.codec = compress::CodecId::kHeavy;
  c0.stats.valid = true;
  c0.stats.min_i64 = 0;
  c0.stats.max_i64 = 99;
  ColumnChunkMeta c1;
  c1.offset = 54;
  c1.compressed_size = 700;
  c1.uncompressed_size = 800;
  c1.codec = compress::CodecId::kLz;
  c1.stats.valid = true;
  c1.stats.min_f64 = 0.5;
  c1.stats.max_f64 = 999.5;
  rg.columns = {c0, c1};
  meta.row_groups.push_back(rg);

  auto bytes = meta.Serialize();
  auto parsed = FileMetadata::Parse(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, meta.schema);
  EXPECT_EQ(parsed->num_rows, 100u);
  ASSERT_EQ(parsed->row_groups.size(), 1u);
  const auto& prg = parsed->row_groups[0];
  EXPECT_EQ(prg.columns[0].stats.max_i64, 99);
  EXPECT_EQ(prg.columns[0].encoding, Encoding::kDelta);
  EXPECT_EQ(prg.columns[1].codec, compress::CodecId::kLz);
  EXPECT_DOUBLE_EQ(prg.columns[1].stats.max_f64, 999.5);
}

TEST(MetadataTest, ParseRejectsCorruption) {
  FileMetadata meta;
  meta.schema = *TwoColumnSchema();
  auto bytes = meta.Serialize();
  // Truncated.
  EXPECT_FALSE(FileMetadata::Parse(bytes.data(), bytes.size() / 2).ok());
  // Bad version.
  auto bad = bytes;
  bad[0] = 99;
  EXPECT_FALSE(FileMetadata::Parse(bad.data(), bad.size()).ok());
}

// ---------------------------------------------------------------------------
// Writer + Reader round trips
// ---------------------------------------------------------------------------

class WriterCodecTest : public ::testing::TestWithParam<compress::CodecId> {};

INSTANTIATE_TEST_SUITE_P(Codecs, WriterCodecTest,
                         ::testing::Values(compress::CodecId::kNone,
                                           compress::CodecId::kRle,
                                           compress::CodecId::kLz,
                                           compress::CodecId::kHeavy),
                         [](const auto& info) {
                           return std::string(
                               compress::CodecName(info.param));
                         });

TEST_P(WriterCodecTest, RoundTripAllCodecs) {
  TableChunk table = MakeTable(5000);
  WriterOptions opts;
  opts.codec = GetParam();
  opts.row_group_rows = 1024;
  auto file = FileWriter::WriteTable(table, opts);
  ASSERT_TRUE(file.ok());
  TableChunk back = ReadAll(*file);
  ASSERT_EQ(back.num_rows(), table.num_rows());
  EXPECT_EQ(back.column(0).i64(), table.column(0).i64());
  EXPECT_EQ(back.column(1).f64(), table.column(1).f64());
}

TEST(WriterTest, RowGroupsCutAtConfiguredSize) {
  TableChunk table = MakeTable(10000);
  WriterOptions opts;
  opts.row_group_rows = 3000;
  auto file = FileWriter::WriteTable(table, opts);
  ASSERT_TRUE(file.ok());
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(*file)));
  std::shared_ptr<FileReader> reader;
  sim::Spawn([](std::shared_ptr<InMemorySource> src,
                std::shared_ptr<FileReader>* out) -> sim::Async<void> {
    auto r = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(r.ok());
    *out = *r;
  }(source, &reader));
  sim.Run();
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->num_row_groups(), 4);  // 3000+3000+3000+1000.
  EXPECT_EQ(reader->metadata().row_groups[3].num_rows, 1000u);
  EXPECT_EQ(reader->metadata().num_rows, 10000u);
}

TEST(WriterTest, MultipleAppendsAccumulate) {
  FileWriter writer(TwoColumnSchema(), WriterOptions{});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.Append(MakeTable(100, i)).ok());
  }
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(ReadAll(*file).num_rows(), 500u);
}

TEST(WriterTest, EmptyTableProducesValidFile) {
  auto file = FileWriter::WriteTable(TableChunk::Empty(TwoColumnSchema()));
  ASSERT_TRUE(file.ok());
  TableChunk back = ReadAll(*file);
  EXPECT_EQ(back.num_rows(), 0u);
}

TEST(WriterTest, SchemaMismatchRejected) {
  FileWriter writer(TwoColumnSchema(), WriterOptions{});
  auto other = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::kInt64}});
  TableChunk wrong(other, {Column::Int64({1})});
  EXPECT_FALSE(writer.Append(wrong).ok());
}

TEST(ReaderTest, ProjectionReadsOnlyRequestedColumns) {
  TableChunk table = MakeTable(2000);
  auto file = FileWriter::WriteTable(table, WriterOptions{});
  ASSERT_TRUE(file.ok());
  TableChunk back = ReadAll(*file, {1});
  ASSERT_EQ(back.num_columns(), 1u);
  EXPECT_EQ(back.schema()->field(0).name, "price");
  EXPECT_EQ(back.column(0).f64(), table.column(1).f64());
}

TEST(ReaderTest, StatsEnableRowGroupPruning) {
  // The id column is sorted: each row group covers a distinct range.
  TableChunk table = MakeTable(9000);
  WriterOptions opts;
  opts.row_group_rows = 3000;
  auto file = FileWriter::WriteTable(table, opts);
  ASSERT_TRUE(file.ok());
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::vector<uint8_t>(*file)));
  std::shared_ptr<FileReader> reader;
  sim::Spawn([](std::shared_ptr<InMemorySource> src,
                std::shared_ptr<FileReader>* out) -> sim::Async<void> {
    auto r = co_await FileReader::Open(src);
    CO_ASSERT_TRUE(r.ok());
    *out = *r;
  }(source, &reader));
  sim.Run();
  ASSERT_NE(reader, nullptr);
  const auto& rgs = reader->metadata().row_groups;
  ASSERT_EQ(rgs.size(), 3u);
  EXPECT_EQ(rgs[0].columns[0].stats.min_i64, 0);
  EXPECT_EQ(rgs[0].columns[0].stats.max_i64, 2999);
  EXPECT_EQ(rgs[2].columns[0].stats.min_i64, 6000);
  EXPECT_EQ(rgs[2].columns[0].stats.max_i64, 8999);
}

TEST(ReaderTest, CorruptMagicRejected) {
  auto file = FileWriter::WriteTable(MakeTable(100));
  ASSERT_TRUE(file.ok());
  auto bad = *file;
  bad[bad.size() - 1] = 'X';
  sim::Simulator sim;
  auto source = std::make_shared<InMemorySource>(
      Buffer::FromVector(std::move(bad)));
  Status status = Status::OK();
  sim::Spawn([](std::shared_ptr<InMemorySource> src,
                Status* out) -> sim::Async<void> {
    auto r = co_await FileReader::Open(src);
    *out = r.status();
  }(source, &status));
  sim.Run();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// S3Source integration (chunked concurrent reads, request accounting)
// ---------------------------------------------------------------------------

TEST(S3SourceTest, ReadsThroughSimulatedS3) {
  cloud::Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  TableChunk table = MakeTable(4000);
  auto file = FileWriter::WriteTable(table, WriterOptions{});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      cloud.s3().PutDirect("data", "t.lpq", Buffer::FromVector(*file)).ok());

  TableChunk back;
  sim::Spawn([](cloud::Cloud* c, TableChunk* out) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    auto source = std::make_shared<S3Source>(client, "data", "t.lpq");
    ReaderOptions opts;
    opts.sim = &c->sim();
    auto reader = co_await FileReader::Open(source, opts);
    CO_ASSERT_TRUE(reader.ok());
    std::vector<TableChunk> chunks;
    std::vector<int> proj = {0, 1};
    for (int rg = 0; rg < (*reader)->num_row_groups(); ++rg) {
      auto chunk = co_await (*reader)->ReadRowGroup(rg, proj, 4);
      CO_ASSERT_TRUE(chunk.ok());
      chunks.push_back(*std::move(chunk));
    }
    auto all = engine::ConcatChunks(chunks);
    *out = *std::move(all);
  }(&cloud, &back));
  cloud.sim().Run();
  ASSERT_EQ(back.num_rows(), 4000u);
  EXPECT_EQ(back.column(0).i64(), table.column(0).i64());
  // Footer read + one GET per column chunk.
  EXPECT_GE(cloud.ledger().totals().s3_get_requests, 3);
}

TEST(S3SourceTest, ChunkedReadSplitsRequests) {
  cloud::Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  std::vector<uint8_t> blob(10 * kMiB);
  Rng rng(5);
  for (auto& b : blob) b = static_cast<uint8_t>(rng.Next());
  auto expected = blob;
  ASSERT_TRUE(cloud.s3()
                  .PutDirect("data", "blob", Buffer::FromVector(std::move(blob)))
                  .ok());
  S3Source::Options opts;
  opts.chunk_bytes = 1 * kMiB;
  opts.connections = 4;
  std::vector<uint8_t> got;
  int64_t requests = 0;
  sim::Spawn([](cloud::Cloud* c, S3Source::Options o,
                std::vector<uint8_t>* out, int64_t* reqs) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    S3Source source(client, "data", "blob", o);
    auto r = co_await source.ReadAt(0, 10 * kMiB);
    CO_ASSERT_TRUE(r.ok());
    out->assign((*r)->data(), (*r)->data() + (*r)->size());
    *reqs = source.request_count();
  }(&cloud, opts, &got, &requests));
  cloud.sim().Run();
  EXPECT_EQ(got, expected);
  EXPECT_EQ(requests, 10);  // 10 MiB / 1 MiB chunks.
}

TEST(S3SourceTest, MissingObjectReportsNotFound) {
  cloud::Cloud cloud;
  ASSERT_TRUE(cloud.s3().CreateBucket("data").ok());
  Status status = Status::OK();
  sim::Spawn([](cloud::Cloud* c, Status* out) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    S3Source source(client, "data", "missing");
    auto r = co_await source.ReadTail(1024);
    *out = r.status();
  }(&cloud, &status));
  cloud.sim().Run();
  EXPECT_TRUE(status.IsNotFound());
}

}  // namespace
}  // namespace lambada::format
