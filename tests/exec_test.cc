#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "compress/block_codec.h"
#include "engine/chunk_serde.h"
#include "engine/partition.h"
#include "exec/exec_context.h"
#include "exec/parallel_for.h"
#include "exec/request_batcher.h"
#include "exec/thread_pool.h"
#include "format/encoding.h"
#include "sim/async.h"
#include "sim/simulator.h"

namespace lambada {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::TableChunk;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  exec::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  const int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < kTasks) {
    std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, StressManySubmittersAndNestedTasks) {
  exec::ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  std::atomic<int> done{0};
  const int kOuter = 64;
  const int kInner = 32;
  // Several external submitter threads, each task spawning nested tasks
  // from inside the pool (exercises the local-deque push path and
  // stealing under contention).
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kOuter; ++i) {
        pool.Submit([&] {
          for (int j = 0; j < kInner; ++j) {
            pool.Submit([&] {
              sum.fetch_add(1, std::memory_order_relaxed);
              done.fetch_add(1, std::memory_order_release);
            });
          }
          done.fetch_add(1, std::memory_order_release);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  const int kTotal = 4 * kOuter * (1 + kInner);
  while (done.load(std::memory_order_acquire) < kTotal) {
    std::this_thread::yield();
  }
  EXPECT_EQ(sum.load(), 4 * kOuter * kInner);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  // The destructor joins after the queues drain.
  EXPECT_EQ(count.load(), 100);
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelReduce
// ---------------------------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads, 64);
    std::vector<std::atomic<int>> hits(10007);
    exec::ParallelFor(ctx, 0, hits.size(), [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, MorselBoundariesIgnoreThreadCount) {
  auto boundaries = [](int threads) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads, 100);
    std::vector<std::pair<size_t, size_t>> morsels(
        exec::NumMorsels(ctx, 1234));
    exec::ParallelFor(ctx, 0, 1234, [&](size_t m, size_t b, size_t e) {
      morsels[m] = {b, e};
    });
    return morsels;
  };
  auto one = boundaries(1);
  EXPECT_EQ(one.size(), 13u);
  EXPECT_EQ(one.front(), (std::pair<size_t, size_t>{0, 100}));
  EXPECT_EQ(one.back(), (std::pair<size_t, size_t>{1200, 1234}));
  EXPECT_EQ(one, boundaries(2));
  EXPECT_EQ(one, boundaries(8));
}

TEST(ParallelReduceTest, FloatSumIsBitIdenticalAcrossThreadCounts) {
  Rng rng(17);
  std::vector<double> values(100000);
  for (auto& v : values) v = rng.NextDouble() * 1e6 - 5e5;
  auto sum_with = [&](int threads) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads, 1024);
    return exec::ParallelReduce<double>(
        ctx, 0, values.size(), 0.0,
        [&](size_t b, size_t e) {
          double s = 0;
          for (size_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  double serial = sum_with(1);
  // Exact bit equality: the morsel fold order is thread-count independent.
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ParallelForTest, EmptyRangeAndSingleMorsel) {
  exec::ExecContext ctx = exec::ExecContext::Parallel(4, 1000);
  int calls = 0;
  exec::ParallelFor(ctx, 5, 5, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  exec::ParallelFor(ctx, 0, 10, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // A pool smaller than the caller fan-out, outer morsels of one element,
  // and a nested ParallelFor per element: without the helping wait in
  // RunMorsels, pool threads block on their inner helpers (which sit in
  // the blocked threads' own deques) and this hangs.
  exec::ThreadPool pool(2);
  exec::ExecContext ctx = exec::ExecContext::Parallel(4, 1);
  ctx.pool = &pool;
  const size_t kOuter = 64;
  const size_t kInner = 50;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  exec::ParallelFor(ctx, 0, kOuter, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      exec::ParallelFor(ctx, 0, kInner, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) hits[o * kInner + i].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Kernel determinism across thread counts
// ---------------------------------------------------------------------------

TableChunk MakeChunk(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> keys(rows);
  std::vector<double> vals(rows);
  for (size_t i = 0; i < rows; ++i) {
    keys[i] = rng.UniformInt(0, 1 << 20);
    vals[i] = rng.NextDouble();
  }
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  return TableChunk(schema, {Column::Int64(std::move(keys)),
                             Column::Float64(std::move(vals))});
}

TEST(KernelDeterminismTest, PartitionIdenticalAcrossThreadCounts) {
  TableChunk chunk = MakeChunk(20000, 3);
  auto partition_with = [&](int threads) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads, 777);
    auto parts = engine::HashPartition(chunk, {0}, 13, ctx);
    EXPECT_TRUE(parts.ok());
    std::vector<std::vector<uint8_t>> blobs;
    for (const auto& p : *parts) blobs.push_back(engine::SerializeChunk(p));
    return blobs;
  };
  auto serial = partition_with(1);
  size_t total = 0;
  for (const auto& b : serial) total += b.size();
  EXPECT_GT(total, 20000u * 16);
  EXPECT_EQ(serial, partition_with(2));
  EXPECT_EQ(serial, partition_with(8));
}

TEST(KernelDeterminismTest, SerdeRoundTripsAndMatchesAcrossThreadCounts) {
  TableChunk chunk = MakeChunk(50000, 4);
  auto serial = engine::SerializeChunk(chunk);
  for (int threads : {2, 8}) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads, 999);
    EXPECT_EQ(serial, engine::SerializeChunk(chunk, ctx));
    auto back = engine::DeserializeChunk(serial.data(), serial.size(), ctx);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(engine::SerializeChunk(*back), serial);
  }
}

TEST(KernelDeterminismTest, CombinedSerdeMatchesAcrossThreadCounts) {
  std::vector<TableChunk> chunks;
  for (uint64_t i = 0; i < 9; ++i) chunks.push_back(MakeChunk(1000 + i, i));
  auto serial = engine::SerializeChunksCombined(chunks);
  for (int threads : {2, 8}) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads);
    auto parallel = engine::SerializeChunksCombined(chunks, ctx);
    EXPECT_EQ(serial.bytes, parallel.bytes);
    EXPECT_EQ(serial.offsets, parallel.offsets);
  }
}

TEST(KernelDeterminismTest, BlockCodecRoundTripsAndMatches) {
  Rng rng(8);
  std::vector<uint8_t> input(700000);
  for (auto& b : input) {
    b = static_cast<uint8_t>(rng.UniformInt(0, 20));  // Compressible.
  }
  const auto& codec = compress::GetCodec(compress::CodecId::kLz);
  auto serial = compress::CompressBlocks(codec, input);
  EXPECT_LT(serial.size(), input.size());
  for (int threads : {2, 8}) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads);
    EXPECT_EQ(serial, compress::CompressBlocks(codec, input, ctx));
    auto back = compress::DecompressBlocks(codec, serial, ctx);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, input);
  }
}

TEST(KernelDeterminismTest, EncodeColumnAutoMatchesAcrossThreadCounts) {
  Rng rng(5);
  std::vector<int64_t> low_card(30000);
  for (auto& v : low_card) v = rng.UniformInt(0, 4);
  Column col = Column::Int64(std::move(low_card));
  auto serial = format::EncodeColumnAuto(col);
  for (int threads : {2, 8}) {
    exec::ExecContext ctx = exec::ExecContext::Parallel(threads);
    auto parallel = format::EncodeColumnAuto(col, ctx);
    EXPECT_EQ(serial.encoding, parallel.encoding);
    EXPECT_EQ(serial.bytes, parallel.bytes);
  }
}

// ---------------------------------------------------------------------------
// RequestBatcher (simulated time)
// ---------------------------------------------------------------------------

sim::Async<int> FakeRequest(sim::Simulator* sim, double latency, int value,
                            int* in_flight, int* max_in_flight) {
  ++*in_flight;
  *max_in_flight = std::max(*max_in_flight, *in_flight);
  co_await sim::Sleep(sim, latency);
  --*in_flight;
  co_return value;
}

TEST(RequestBatcherTest, BoundsInFlightAndKeepsSlotOrder) {
  sim::Simulator sim;
  int in_flight = 0;
  int max_in_flight = 0;
  std::vector<int> results;
  sim::Spawn([](sim::Simulator* s, int* inf, int* maxf,
                std::vector<int>* out) -> sim::Async<void> {
    exec::RequestBatcher batcher(s, 3);
    std::vector<std::function<sim::Async<int>()>> thunks;
    for (int i = 0; i < 10; ++i) {
      // Later slots finish *faster*: slot order must still hold.
      double latency = 1.0 - 0.09 * i;
      thunks.push_back([s, latency, i, inf, maxf] {
        return FakeRequest(s, latency, i, inf, maxf);
      });
    }
    *out = co_await batcher.Run(std::move(thunks));
  }(&sim, &in_flight, &max_in_flight, &results));
  sim.Run();
  EXPECT_EQ(max_in_flight, 3);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(results, expected);
}

TEST(RequestBatcherTest, DepthOneMatchesSequentialSchedule) {
  auto run_with = [](int depth) {
    sim::Simulator sim;
    double elapsed = -1;
    sim::Spawn([](sim::Simulator* s, int depth_arg,
                  double* out) -> sim::Async<void> {
      exec::RequestBatcher batcher(s, depth_arg);
      int in_flight = 0;
      int max_in_flight = 0;
      std::vector<std::function<sim::Async<int>()>> thunks;
      for (int i = 0; i < 5; ++i) {
        thunks.push_back([s, i, &in_flight, &max_in_flight] {
          return FakeRequest(s, 0.5, i, &in_flight, &max_in_flight);
        });
      }
      (void)co_await batcher.Run(std::move(thunks));
      *out = s->Now();
    }(&sim, depth, &elapsed));
    sim.Run();
    return elapsed;
  };
  // Depth 1 is the sequential schedule: 5 * 0.5s back to back.
  EXPECT_DOUBLE_EQ(run_with(1), 2.5);
  // Depth 5 overlaps all requests.
  EXPECT_DOUBLE_EQ(run_with(5), 0.5);
}

TEST(RequestBatcherTest, EmptyBatch) {
  sim::Simulator sim;
  bool done = false;
  sim::Spawn([](sim::Simulator* s, bool* out) -> sim::Async<void> {
    exec::RequestBatcher batcher(s, 4);
    auto results = co_await batcher.Run(
        std::vector<std::function<sim::Async<int>()>>{});
    *out = results.empty();
  }(&sim, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace lambada
