#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/cloud.h"
#include "cloud/meta_cache.h"
#include "cloud/scan_share.h"
#include "core/driver.h"
#include "core/session_manager.h"
#include "engine/chunk_serde.h"
#include "workload/tpch.h"

namespace lambada {
namespace {

using core::Query;
using core::QueryReport;
using core::QueryService;
using core::RunOptions;
using core::ServingOptions;
using core::TenantOptions;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void LoadData(cloud::Cloud* cloud, int64_t rows = 8000, int files = 4) {
  workload::LoadOptions load;
  load.num_rows = rows;
  load.num_files = files;
  load.seed = 5;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud->s3(), "tpch", "li/", load));
  workload::LoadOptions oload = load;
  oload.num_rows = rows / 4;
  LAMBADA_CHECK_OK(workload::LoadOrders(&cloud->s3(), "tpch", "ord/", oload));
}

Query QueryByIndex(int i) {
  switch (i % 3) {
    case 0:
      return workload::TpchQ1("s3://tpch/li/*.lpq");
    case 1:
      return workload::TpchQ6("s3://tpch/li/*.lpq");
    default:
      return workload::TpchQ12("s3://tpch/li/*.lpq", "s3://tpch/ord/*.lpq");
  }
}

/// Submits every (tenant, query) either all at virtual time zero
/// (concurrent) or strictly one after the other (solo), runs the
/// simulation dry, and returns the per-submission outcomes in order.
std::vector<Result<QueryReport>> SubmitAll(
    cloud::Cloud* cloud, QueryService* svc,
    std::vector<std::pair<std::string, Query>> submissions,
    bool concurrent) {
  auto out = std::make_shared<std::vector<Result<QueryReport>>>(
      submissions.size(), Status::Internal("pending"));
  auto subs = std::make_shared<std::vector<std::pair<std::string, Query>>>(
      std::move(submissions));
  if (concurrent) {
    for (size_t i = 0; i < subs->size(); ++i) {
      sim::Spawn(
          [](QueryService* s,
             std::shared_ptr<std::vector<std::pair<std::string, Query>>> sub,
             std::shared_ptr<std::vector<Result<QueryReport>>> res,
             size_t idx) -> sim::Async<void> {
            // Named local, not a prvalue: GCC 12 bitwise-copies braced
            // prvalue aggregates when promoting them into coroutine frames.
            RunOptions ro;
            (*res)[idx] = co_await s->Submit((*sub)[idx].first,
                                             (*sub)[idx].second, ro);
          }(svc, subs, out, i));
    }
  } else {
    sim::Spawn(
        [](QueryService* s,
           std::shared_ptr<std::vector<std::pair<std::string, Query>>> sub,
           std::shared_ptr<std::vector<Result<QueryReport>>> res)
            -> sim::Async<void> {
          RunOptions ro;
          for (size_t i = 0; i < sub->size(); ++i) {
            (*res)[i] = co_await s->Submit((*sub)[i].first, (*sub)[i].second,
                                           ro);
          }
        }(svc, subs, out));
  }
  cloud->sim().Run();
  return std::move(*out);
}

std::vector<uint8_t> ResultBytes(const QueryReport& r) {
  return engine::SerializeChunk(r.result);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServingAdmissionTest, FifoOrderIsDeterministicInVirtualTime) {
  auto run = [] {
    cloud::Cloud cloud;
    LoadData(&cloud);
    ServingOptions sopts;
    sopts.max_concurrent = 1;  // Serialize everything through the queue.
    QueryService svc(&cloud, sopts);
    TenantOptions t;
    t.id = "acme";
    t.max_concurrent = 1;
    t.queue_deadline_s = 1e9;
    LAMBADA_CHECK_OK(svc.AddTenant(t));
    std::vector<std::pair<std::string, Query>> subs;
    for (int i = 0; i < 4; ++i) subs.emplace_back("acme", QueryByIndex(1));
    auto results = SubmitAll(&cloud, &svc, std::move(subs), true);
    for (const auto& r : results) EXPECT_TRUE(r.ok());
    return svc.admission_log();
  };

  auto log_a = run();
  // All four admitted, in ticket (submission) order.
  ASSERT_EQ(log_a.size(), 4u);
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].outcome, "admitted");
    EXPECT_EQ(log_a[i].ticket, i);
    if (i > 0) {
      EXPECT_GE(log_a[i].decided_s, log_a[i - 1].decided_s);
    }
  }
  // Identical deployment, identical workload: the admission schedule is a
  // deterministic function of virtual time, down to the decision stamps.
  auto log_b = run();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].tenant, log_b[i].tenant);
    EXPECT_EQ(log_a[i].ticket, log_b[i].ticket);
    EXPECT_EQ(log_a[i].outcome, log_b[i].outcome);
    EXPECT_DOUBLE_EQ(log_a[i].submitted_s, log_b[i].submitted_s);
    EXPECT_DOUBLE_EQ(log_a[i].decided_s, log_b[i].decided_s);
  }
}

TEST(ServingAdmissionTest, UnknownTenantRejectedByName) {
  cloud::Cloud cloud;
  LoadData(&cloud);
  QueryService svc(&cloud, ServingOptions{});
  auto results = SubmitAll(&cloud, &svc, {{"nobody", QueryByIndex(1)}}, true);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(results[0].status().ToString().find("nobody"), std::string::npos);
}

TEST(ServingAdmissionTest, BudgetExhaustionRejectsWithTypedStatus) {
  cloud::Cloud cloud;
  LoadData(&cloud);
  QueryService svc(&cloud, ServingOptions{});
  TenantOptions t;
  t.id = "shoestring";
  t.budget_usd = 1e-9;  // The first completed query exceeds this.
  LAMBADA_CHECK_OK(svc.AddTenant(t));

  auto first = SubmitAll(&cloud, &svc, {{"shoestring", QueryByIndex(1)}},
                         true);
  ASSERT_TRUE(first[0].ok()) << first[0].status().ToString();
  EXPECT_GT(svc.Usage("shoestring").spent_usd, 1e-9);

  auto second = SubmitAll(&cloud, &svc, {{"shoestring", QueryByIndex(1)}},
                          true);
  ASSERT_FALSE(second[0].ok());
  EXPECT_EQ(second[0].status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second[0].status().ToString().find("shoestring"),
            std::string::npos);
  EXPECT_NE(second[0].status().ToString().find("budget"), std::string::npos);
  EXPECT_EQ(svc.Usage("shoestring").rejected, 1);
  EXPECT_EQ(svc.metrics().counter(obs::Metric::kRejectedQueries), 1);
}

TEST(ServingAdmissionTest, QueueDepthLimitRejects) {
  cloud::Cloud cloud;
  LoadData(&cloud);
  QueryService svc(&cloud, ServingOptions{});
  TenantOptions t;
  t.id = "bursty";
  t.max_concurrent = 1;
  t.max_queue_depth = 1;
  t.queue_deadline_s = 1e9;
  LAMBADA_CHECK_OK(svc.AddTenant(t));
  std::vector<std::pair<std::string, Query>> subs(
      3, {"bursty", QueryByIndex(1)});
  auto results = SubmitAll(&cloud, &svc, std::move(subs), true);
  int ok = 0, rejected = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
    } else {
      ++rejected;
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      EXPECT_NE(r.status().ToString().find("bursty"), std::string::npos);
    }
  }
  EXPECT_EQ(ok, 2);        // One running + one queued.
  EXPECT_EQ(rejected, 1);  // The third found the queue full.
}

TEST(ServingAdmissionTest, QueueDeadlineExpiresWithTenantName) {
  cloud::Cloud cloud;
  LoadData(&cloud);
  QueryService svc(&cloud, ServingOptions{});
  TenantOptions t;
  t.id = "impatient";
  t.max_concurrent = 1;
  t.queue_deadline_s = 0.001;  // Far shorter than any query.
  LAMBADA_CHECK_OK(svc.AddTenant(t));
  std::vector<std::pair<std::string, Query>> subs(
      2, {"impatient", QueryByIndex(1)});
  auto results = SubmitAll(&cloud, &svc, std::move(subs), true);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(results[1].status().ToString().find("impatient"),
            std::string::npos);
  // The expired waiter must leave no phantom queue depth behind.
  EXPECT_EQ(svc.Usage("impatient").queued, 0);
  EXPECT_EQ(svc.running(), 0);
}

// ---------------------------------------------------------------------------
// Result correctness under concurrency
// ---------------------------------------------------------------------------

/// Runs `n` queries (cycling Q1/Q6/Q12) through a fresh deployment and
/// returns the serialized result bytes per submission.
std::vector<std::vector<uint8_t>> ServeBytes(int n, bool concurrent,
                                             int worker_threads) {
  cloud::Cloud cloud;
  LoadData(&cloud);
  ServingOptions sopts;
  sopts.max_concurrent = 64;
  sopts.worker_exec = worker_threads > 1
                          ? exec::ExecContext::Parallel(worker_threads)
                          : exec::ExecContext::Serial();
  QueryService svc(&cloud, sopts);
  TenantOptions t;
  t.id = "fleet";
  t.max_concurrent = 64;
  t.queue_deadline_s = 1e9;
  LAMBADA_CHECK_OK(svc.AddTenant(t));
  std::vector<std::pair<std::string, Query>> subs;
  for (int i = 0; i < n; ++i) subs.emplace_back("fleet", QueryByIndex(i));
  auto results = SubmitAll(&cloud, &svc, std::move(subs), concurrent);
  std::vector<std::vector<uint8_t>> bytes;
  for (const auto& r : results) {
    LAMBADA_CHECK(r.ok()) << r.status().ToString();
    bytes.push_back(ResultBytes(*r));
  }
  return bytes;
}

TEST(ServingConcurrencyTest, ConcurrentResultsByteIdenticalToSolo) {
  // 64 concurrent submissions against one deployment must produce, per
  // query, exactly the bytes a solo (sequential) deployment produces —
  // at every worker thread count. Thread counts must also agree with
  // each other (the morsel runtime's determinism contract).
  const int kQueries = 64;
  const std::vector<std::vector<uint8_t>> solo = ServeBytes(
      kQueries, /*concurrent=*/false, /*worker_threads=*/1);
  ASSERT_EQ(solo.size(), static_cast<size_t>(kQueries));
  for (int threads : {1, 2, 8}) {
    const auto concurrent =
        ServeBytes(kQueries, /*concurrent=*/true, threads);
    ASSERT_EQ(concurrent.size(), solo.size());
    for (size_t i = 0; i < solo.size(); ++i) {
      EXPECT_EQ(concurrent[i], solo[i])
          << "query " << i << " diverged at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Metadata cache correctness
// ---------------------------------------------------------------------------

TEST(ServingCacheTest, WarmRunByteIdenticalAndCheaperThanCold) {
  cloud::Cloud cloud;
  LoadData(&cloud);
  QueryService svc(&cloud, ServingOptions{});
  TenantOptions t;
  t.id = "repeat";
  LAMBADA_CHECK_OK(svc.AddTenant(t));
  auto runs = SubmitAll(&cloud, &svc,
                        {{"repeat", QueryByIndex(0)},
                         {"repeat", QueryByIndex(0)}},
                        /*concurrent=*/false);
  ASSERT_TRUE(runs[0].ok()) << runs[0].status().ToString();
  ASSERT_TRUE(runs[1].ok()) << runs[1].status().ToString();
  const QueryReport& cold = *runs[0];
  const QueryReport& warm = *runs[1];
  EXPECT_EQ(ResultBytes(cold), ResultBytes(warm));
  // The warm run served its LIST and footers from the cache.
  EXPECT_GT(svc.meta_cache()->hits(), 0);
  EXPECT_EQ(warm.cost.s3_list_requests, 0);
  EXPECT_LT(warm.cost.s3_list_requests, cold.cost.s3_list_requests);
  // And it is strictly cheaper end to end: the cold run paid the LIST,
  // the footer GETs, and the cache-fill writes.
  EXPECT_LT(warm.cost.TotalUsd(cloud.pricing()),
            cold.cost.TotalUsd(cloud.pricing()));
}

TEST(ServingCacheTest, RewriteBumpsVersionSoStaleIsNeverServed) {
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("b"));
  cloud::MetadataCache cache(&cloud.ddb(), &cloud.s3(), "mc");
  auto done = std::make_shared<bool>(false);
  sim::Spawn([](cloud::Cloud* c, cloud::MetadataCache* mc,
                std::shared_ptr<bool> done) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    std::vector<uint8_t> v1(100, 0x11);
    LAMBADA_CHECK_OK(co_await client.Put("b", "k", Buffer::FromVector(v1)));
    const std::string key_v1 = mc->FooterKey("b", "k", 10);

    auto tail = co_await client.GetTail("b", "k", 10);
    LAMBADA_CHECK(tail.ok());
    LAMBADA_CHECK_OK(
        co_await mc->PutFooter(c->driver_net(), "b", "k", 10, *tail));
    auto hit = co_await mc->GetFooter(c->driver_net(), "b", "k", 10);
    LAMBADA_CHECK(hit.ok());

    // Rewrite the object: the write observer bumps the version, the cache
    // key changes, and the stale entry is simply never addressed again.
    std::vector<uint8_t> v2(100, 0x22);
    LAMBADA_CHECK_OK(co_await client.Put("b", "k", Buffer::FromVector(v2)));
    LAMBADA_CHECK(mc->FooterKey("b", "k", 10) != key_v1);
    auto stale = co_await mc->GetFooter(c->driver_net(), "b", "k", 10);
    LAMBADA_CHECK(!stale.ok());
    LAMBADA_CHECK(stale.status().code() == StatusCode::kNotFound);

    // Refill at the new version and verify the new bytes come back.
    auto tail2 = co_await client.GetTail("b", "k", 10);
    LAMBADA_CHECK(tail2.ok());
    LAMBADA_CHECK_OK(
        co_await mc->PutFooter(c->driver_net(), "b", "k", 10, *tail2));
    auto hit2 = co_await mc->GetFooter(c->driver_net(), "b", "k", 10);
    LAMBADA_CHECK(hit2.ok());
    LAMBADA_CHECK(hit2->data->size() == 10);
    LAMBADA_CHECK(hit2->data->data()[0] == 0x22);
    *done = true;
  }(&cloud, &cache, done));
  cloud.sim().Run();
  EXPECT_TRUE(*done);
}

TEST(ServingCacheTest, OversizeValuesSplitAcrossItemsAtTheBoundary) {
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("b"));
  cloud::MetadataCache cache(&cloud.ddb(), &cloud.s3(), "mc");
  auto done = std::make_shared<bool>(false);
  sim::Spawn([](cloud::Cloud* c, cloud::MetadataCache* mc,
                std::shared_ptr<bool> done) -> sim::Async<void> {
    cloud::S3Client client(&c->s3(), c->driver_net());
    // A ~1 MB footer: far above DynamoDB's 400 KB item limit, so the blob
    // must split across part items yet round-trip byte-identically.
    const int64_t kBig = 1000 * 1000;
    std::vector<uint8_t> big(static_cast<size_t>(kBig));
    for (size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<uint8_t>(i * 2654435761u >> 13);
    }
    LAMBADA_CHECK_OK(co_await client.Put("b", "big", Buffer::FromVector(big)));
    auto tail = co_await client.GetTail("b", "big", kBig);
    LAMBADA_CHECK(tail.ok());
    LAMBADA_CHECK_OK(
        co_await mc->PutFooter(c->driver_net(), "b", "big", kBig, *tail));
    const std::string head = mc->FooterKey("b", "big", kBig);
    LAMBADA_CHECK(c->ddb().GetDirect("mc", head).ok());
    LAMBADA_CHECK(c->ddb().GetDirect("mc", head + "#0").ok());
    LAMBADA_CHECK(c->ddb().GetDirect("mc", head + "#1").ok());
    auto round = co_await mc->GetFooter(c->driver_net(), "b", "big", kBig);
    LAMBADA_CHECK(round.ok());
    LAMBADA_CHECK(round->object_size == kBig);
    LAMBADA_CHECK(round->data->size() == static_cast<size_t>(kBig));
    LAMBADA_CHECK(std::equal(big.begin(), big.end(), round->data->data()));

    // Walk footer sizes across the split threshold: every size must
    // round-trip, and the single-item -> multi-item switch must be
    // monotonic (no size both inlines and splits).
    bool seen_split = false;
    bool seen_inline = false;
    for (int64_t n = 399960; n <= 400010; n += 5) {
      const std::string key = "edge" + std::to_string(n);
      std::vector<uint8_t> data(static_cast<size_t>(n),
                                static_cast<uint8_t>(n & 0xff));
      LAMBADA_CHECK_OK(
          co_await client.Put("b", key, Buffer::FromVector(data)));
      auto t = co_await client.GetTail("b", key, n);
      LAMBADA_CHECK(t.ok());
      LAMBADA_CHECK_OK(
          co_await mc->PutFooter(c->driver_net(), "b", key, n, *t));
      const bool split =
          c->ddb().GetDirect("mc", mc->FooterKey("b", key, n) + "#0").ok();
      if (!split) {
        seen_inline = true;
        LAMBADA_CHECK(!seen_split) << "split is not monotonic in size";
      } else {
        seen_split = true;
      }
      auto r = co_await mc->GetFooter(c->driver_net(), "b", key, n);
      LAMBADA_CHECK(r.ok());
      LAMBADA_CHECK(r->data->size() == static_cast<size_t>(n));
      LAMBADA_CHECK(
          std::equal(data.begin(), data.end(), r->data->data()));
    }
    LAMBADA_CHECK(seen_inline);
    LAMBADA_CHECK(seen_split);
    *done = true;
  }(&cloud, &cache, done));
  cloud.sim().Run();
  EXPECT_TRUE(*done);
}

// ---------------------------------------------------------------------------
// Shared scans
// ---------------------------------------------------------------------------

TEST(SharedScanTest, ConcurrentReadersShareOneFetchAndSplitTheBill) {
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("b"));
  cloud::SharedScanBroker broker(&cloud.sim());
  auto ok = std::make_shared<int>(0);
  auto led_a = std::make_shared<cloud::CostLedger>();
  auto led_b = std::make_shared<cloud::CostLedger>();
  sim::Spawn([](cloud::Cloud* c, cloud::SharedScanBroker* br,
                std::shared_ptr<int> ok, std::shared_ptr<cloud::CostLedger> la,
                std::shared_ptr<cloud::CostLedger> lb) -> sim::Async<void> {
    {
      cloud::S3Client setup(&c->s3(), c->driver_net());
      std::vector<uint8_t> data(64 * 1024);
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(i);
      }
      LAMBADA_CHECK_OK(
          co_await setup.Put("b", "obj", Buffer::FromVector(data)));
    }
    const auto before = c->ledger().Snapshot();
    // Two "queries" read the same extent concurrently, each through a
    // client carrying its own attribution ledger.
    auto read = [](cloud::Cloud* c, cloud::SharedScanBroker* br,
                   cloud::CostLedger* led,
                   std::shared_ptr<int> ok) -> sim::Async<void> {
      cloud::NetContext net = c->driver_net();
      net.attribution = led;
      cloud::S3Client client(&c->s3(), net);
      auto r = co_await br->Get(&client, "b", "obj", 0, 64 * 1024);
      LAMBADA_CHECK(r.ok()) << r.status().ToString();
      LAMBADA_CHECK((*r)->size() == 64 * 1024);
      LAMBADA_CHECK((*r)->data()[5] == 5);
      ++*ok;
    };
    std::vector<sim::Async<void>> readers;
    readers.push_back(read(c, br, la.get(), ok));
    readers.push_back(read(c, br, lb.get(), ok));
    co_await sim::WhenAllVoid(&c->sim(), std::move(readers));
    // One physical GET hit the global ledger; the per-query ledgers each
    // carry half a request.
    const auto delta = c->ledger().Snapshot() - before;
    LAMBADA_CHECK(delta.s3_get_requests == 1) << delta.s3_get_requests;
    LAMBADA_CHECK(la->Snapshot().s3_shared_get_requests == 0.5);
    LAMBADA_CHECK(lb->Snapshot().s3_shared_get_requests == 0.5);
  }(&cloud, &broker, ok, led_a, led_b));
  cloud.sim().Run();
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(broker.stats().fetches, 1);
  EXPECT_EQ(broker.stats().attaches, 1);
  EXPECT_EQ(broker.stats().rearms, 0);
}

}  // namespace
}  // namespace lambada
