#include <gtest/gtest.h>

#include <vector>

#include "sim/async.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace lambada::sim {
namespace {

// ---------------------------------------------------------------------------
// Simulator event loop
// ---------------------------------------------------------------------------

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(1.0, [&, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CallbackCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.ScheduleAfter(1.0, tick);
  };
  sim.ScheduleAt(0.0, tick);
  sim.Run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.0);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// Coroutines
// ---------------------------------------------------------------------------

Async<int> ReturnAfter(Simulator* sim, double dt, int v) {
  co_await Sleep(sim, dt);
  co_return v;
}

TEST(AsyncTest, SleepAdvancesVirtualTime) {
  Simulator sim;
  double done_at = -1;
  Spawn([](Simulator* s, double* out) -> Async<void> {
    co_await Sleep(s, 1.5);
    *out = s->Now();
  }(&sim, &done_at));
  sim.Run();
  EXPECT_DOUBLE_EQ(done_at, 1.5);
}

TEST(AsyncTest, NestedAwaitPropagatesValue) {
  Simulator sim;
  int result = 0;
  Spawn([](Simulator* s, int* out) -> Async<void> {
    int a = co_await ReturnAfter(s, 1.0, 20);
    int b = co_await ReturnAfter(s, 2.0, 22);
    *out = a + b;
  }(&sim, &result));
  sim.Run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(AsyncTest, WhenAllRunsConcurrently) {
  Simulator sim;
  std::vector<int> results;
  double done_at = -1;
  Spawn([](Simulator* s, std::vector<int>* out,
           double* t) -> Async<void> {
    std::vector<Async<int>> tasks;
    tasks.push_back(ReturnAfter(s, 3.0, 1));
    tasks.push_back(ReturnAfter(s, 1.0, 2));
    tasks.push_back(ReturnAfter(s, 2.0, 3));
    *out = co_await WhenAll(s, std::move(tasks));
    *t = s->Now();
  }(&sim, &results, &done_at));
  sim.Run();
  // Concurrent: total time is the max, not the sum.
  EXPECT_DOUBLE_EQ(done_at, 3.0);
  // Results in input order regardless of completion order.
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
}

TEST(AsyncTest, WhenAllVoidAndEmpty) {
  Simulator sim;
  bool done = false;
  Spawn([](Simulator* s, bool* out) -> Async<void> {
    co_await WhenAllVoid(s, {});
    std::vector<Async<void>> tasks;
    tasks.push_back([](Simulator* s2) -> Async<void> {
      co_await Sleep(s2, 1.0);
    }(s));
    co_await WhenAllVoid(s, std::move(tasks));
    *out = true;
  }(&sim, &done));
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
}

TEST(AsyncTest, EventWakesAllWaiters) {
  Simulator sim;
  Event ev(&sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    Spawn([](Event* e, int* n) -> Async<void> {
      co_await e->Wait();
      ++*n;
    }(&ev, &woken));
  }
  sim.ScheduleAt(2.0, [&] { ev.Set(); });
  sim.Run();
  EXPECT_EQ(woken, 3);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
}

TEST(AsyncTest, EventAlreadySetDoesNotBlock) {
  Simulator sim;
  Event ev(&sim);
  ev.Set();
  bool done = false;
  Spawn([](Event* e, bool* out) -> Async<void> {
    co_await e->Wait();
    *out = true;
  }(&ev, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(AsyncTest, SemaphoreBoundsConcurrency) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  int active = 0, max_active = 0, completed = 0;
  for (int i = 0; i < 6; ++i) {
    Spawn([](Simulator* s, Semaphore* sm, int* a, int* m,
             int* c) -> Async<void> {
      co_await sm->Acquire();
      ++*a;
      if (*a > *m) *m = *a;
      co_await Sleep(s, 1.0);
      --*a;
      ++*c;
      sm->Release();
    }(&sim, &sem, &active, &max_active, &completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(max_active, 2);
  // 6 jobs of 1s with concurrency 2 => 3s.
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, BurstIsFree) {
  TokenBucket tb(/*rate=*/10.0, /*burst=*/5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tb.ReserveDelay(/*now=*/0.0), 0.0);
  }
  // Sixth request must wait 1/rate.
  EXPECT_NEAR(tb.ReserveDelay(0.0), 0.1, 1e-12);
}

TEST(TokenBucketTest, QueueBuildsUp) {
  TokenBucket tb(1.0, 1.0);
  EXPECT_DOUBLE_EQ(tb.ReserveDelay(0.0), 0.0);
  EXPECT_NEAR(tb.ReserveDelay(0.0), 1.0, 1e-12);
  EXPECT_NEAR(tb.ReserveDelay(0.0), 2.0, 1e-12);
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket tb(2.0, 4.0);
  for (int i = 0; i < 4; ++i) tb.ReserveDelay(0.0);
  // After 1 second, 2 tokens refilled.
  EXPECT_DOUBLE_EQ(tb.ReserveDelay(1.0), 0.0);
  EXPECT_DOUBLE_EQ(tb.ReserveDelay(1.0), 0.0);
  EXPECT_NEAR(tb.ReserveDelay(1.0), 0.5, 1e-12);
}

TEST(TokenBucketTest, CurrentDelayDoesNotMutate) {
  TokenBucket tb(1.0, 1.0);
  tb.ReserveDelay(0.0);
  double d1 = tb.CurrentDelay(0.0);
  double d2 = tb.CurrentDelay(0.0);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_NEAR(d1, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// ProcessorSharing
// ---------------------------------------------------------------------------

TEST(ProcessorSharingTest, SingleJobRunsAtUnitRate) {
  Simulator sim;
  ProcessorSharing cpu(&sim, /*capacity=*/1.678);
  double done_at = -1;
  Spawn([](Simulator* s, ProcessorSharing* c, double* t) -> Async<void> {
    co_await c->Consume(2.0);  // 2 vCPU-seconds.
    *t = s->Now();
  }(&sim, &cpu, &done_at));
  sim.Run();
  // Per-job cap of 1 vCPU: 2 vCPU-s take 2 wall seconds.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(ProcessorSharingTest, SmallFunctionIsProportionallySlower) {
  // 512 MiB worker: capacity = 512/1792 = 0.2857 vCPU.
  Simulator sim;
  ProcessorSharing cpu(&sim, 512.0 / 1792.0);
  double done_at = -1;
  Spawn([](Simulator* s, ProcessorSharing* c, double* t) -> Async<void> {
    co_await c->Consume(1.0);
    *t = s->Now();
  }(&sim, &cpu, &done_at));
  sim.Run();
  EXPECT_NEAR(done_at, 1792.0 / 512.0, 1e-9);
}

TEST(ProcessorSharingTest, TwoThreadsShareLargeFunction) {
  // 3008 MiB worker: capacity 1.678; two 1-vCPU-s jobs should finish
  // together at 2/1.678 s (each running at 0.839).
  Simulator sim;
  ProcessorSharing cpu(&sim, 3008.0 / 1792.0);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    Spawn([](Simulator* s, ProcessorSharing* c,
             std::vector<double>* d) -> Async<void> {
      co_await c->Consume(1.0);
      d->push_back(s->Now());
    }(&sim, &cpu, &done));
  }
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0 / (3008.0 / 1792.0), 1e-9);
  EXPECT_NEAR(done[1], done[0], 1e-9);
}

TEST(ProcessorSharingTest, TwoThreadsOnOneCpuNoSpeedup) {
  Simulator sim;
  ProcessorSharing cpu(&sim, 1.0);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    Spawn([](Simulator* s, ProcessorSharing* c,
             std::vector<double>* d) -> Async<void> {
      co_await c->Consume(1.0);
      d->push_back(s->Now());
    }(&sim, &cpu, &done));
  }
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  // 2 vCPU-s of total work on 1 vCPU: 2 seconds.
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(ProcessorSharingTest, StaggeredArrivalsShareFairly) {
  Simulator sim;
  ProcessorSharing cpu(&sim, 1.0);
  std::vector<double> done(2, -1);
  Spawn([](Simulator* s, ProcessorSharing* c, double* t) -> Async<void> {
    co_await c->Consume(2.0);
    *t = s->Now();
  }(&sim, &cpu, &done[0]));
  Spawn([](Simulator* s, ProcessorSharing* c, double* t) -> Async<void> {
    co_await Sleep(s, 1.0);
    co_await c->Consume(1.0);
    *t = s->Now();
  }(&sim, &cpu, &done[1]));
  sim.Run();
  // Job A: 1s alone (1 vCPU-s done), then shares 0.5 each. A has 1
  // remaining => 2 more seconds => done at 3. B has 1 => done at 3.
  EXPECT_NEAR(done[0], 3.0, 1e-9);
  EXPECT_NEAR(done[1], 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// SharedLink
// ---------------------------------------------------------------------------

constexpr double kMiBd = 1024.0 * 1024.0;

SharedLink::Config LinkConfig(double sustained_mib, double peak_mib,
                              double credit_mib, double per_conn_mib) {
  return SharedLink::Config{sustained_mib * kMiBd, peak_mib * kMiBd,
                            credit_mib * kMiBd, per_conn_mib * kMiBd};
}

TEST(SharedLinkTest, LargeTransferRunsAtSustainedRate) {
  Simulator sim;
  // 90 MiB/s sustained, 300 peak, 400 MiB credits, 90 per connection.
  SharedLink link(&sim, LinkConfig(90, 300, 400, 90));
  double done_at = -1;
  Spawn([](Simulator* s, SharedLink* l, double* t) -> Async<void> {
    co_await l->Transfer(900 * kMiBd);
    *t = s->Now();
  }(&sim, &link, &done_at));
  sim.Run();
  // One connection capped at 90 MiB/s: 900 MiB takes 10 s exactly
  // (credits never bind because demand == sustained).
  EXPECT_NEAR(done_at, 10.0, 1e-6);
}

TEST(SharedLinkTest, FourConnectionsBurstThenThrottle) {
  Simulator sim;
  SharedLink link(&sim, LinkConfig(90, 300, 420, 90));
  double done_at = -1;
  Spawn([](Simulator* s, SharedLink* l, double* t) -> Async<void> {
    std::vector<Async<void>> tasks;
    for (int i = 0; i < 4; ++i) {
      tasks.push_back(l->Transfer(150 * kMiBd));
    }
    co_await WhenAllVoid(s, std::move(tasks));
    *t = s->Now();
  }(&sim, &link, &done_at));
  sim.Run();
  // Aggregate demand 4*90=360 capped at peak 300. Credits drain at
  // 300-90=210 MiB/s; 420 MiB of credits last 2 s, delivering 600 MiB.
  // At t=2, each transfer has exactly 150 done. So exactly 2 s.
  EXPECT_NEAR(done_at, 2.0, 1e-6);
}

TEST(SharedLinkTest, AfterCreditsThroughputDropsToSustained) {
  Simulator sim;
  SharedLink link(&sim, LinkConfig(90, 300, 210, 90));
  double done_at = -1;
  Spawn([](Simulator* s, SharedLink* l, double* t) -> Async<void> {
    std::vector<Async<void>> tasks;
    for (int i = 0; i < 4; ++i) {
      tasks.push_back(l->Transfer(120 * kMiBd));
    }
    co_await WhenAllVoid(s, std::move(tasks));
    *t = s->Now();
  }(&sim, &link, &done_at));
  sim.Run();
  // Credits 210 MiB at drain 210 MiB/s => 1 s of burst at 300 => 300 MiB
  // delivered (75 each). Remaining 180 MiB at 90 MiB/s => 2 s more.
  EXPECT_NEAR(done_at, 3.0, 1e-6);
}

TEST(SharedLinkTest, CreditsRefillWhenIdle) {
  Simulator sim;
  SharedLink link(&sim, LinkConfig(90, 300, 210, 90));
  std::vector<double> durations;
  Spawn([](Simulator* s, SharedLink* l,
           std::vector<double>* out) -> Async<void> {
    // Burst 1: 4 connections, 300 MiB total at 300 MiB/s => 1 s.
    auto run_burst = [&]() -> Async<void> {
      std::vector<Async<void>> tasks;
      for (int i = 0; i < 4; ++i) tasks.push_back(l->Transfer(75 * kMiBd));
      co_await WhenAllVoid(s, std::move(tasks));
    };
    double t0 = s->Now();
    co_await run_burst();
    out->push_back(s->Now() - t0);
    // Idle long enough for a full credit refill (210 MiB at 90 MiB/s).
    co_await Sleep(s, 3.0);
    t0 = s->Now();
    co_await run_burst();
    out->push_back(s->Now() - t0);
  }(&sim, &link, &durations));
  sim.Run();
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_NEAR(durations[0], 1.0, 1e-6);
  EXPECT_NEAR(durations[1], 1.0, 1e-6);
}

TEST(SharedLinkTest, PerConnectionCapLimitsSingleStream) {
  Simulator sim;
  SharedLink link(&sim, LinkConfig(90, 300, 1000, 90));
  double done_at = -1;
  Spawn([](Simulator* s, SharedLink* l, double* t) -> Async<void> {
    co_await l->Transfer(90 * kMiBd);
    *t = s->Now();
  }(&sim, &link, &done_at));
  sim.Run();
  // Even with credits available, one connection gets at most 90 MiB/s.
  EXPECT_NEAR(done_at, 1.0, 1e-6);
}

}  // namespace
}  // namespace lambada::sim
