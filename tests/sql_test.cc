#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/sql.h"
#include "workload/tpch.h"

namespace lambada::core {
namespace {

TEST(SqlTest, SimpleProjection) {
  auto q = ParseSql("SELECT a, b AS bee FROM 's3://d/*.lpq'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->pattern(), "s3://d/*.lpq");
  ASSERT_EQ(q->ops().size(), 1u);
  EXPECT_EQ(q->ops()[0].kind, PlanOp::Kind::kSelect);
  EXPECT_EQ(q->ops()[0].names, (std::vector<std::string>{"a", "bee"}));
}

TEST(SqlTest, WhereBecomesFilter) {
  auto q = ParseSql(
      "SELECT x FROM 's3://d/*' WHERE x >= 0.05 AND y < 24");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ops().size(), 2u);
  EXPECT_EQ(q->ops()[0].kind, PlanOp::Kind::kFilter);
  EXPECT_NE(q->ops()[0].expr->ToString().find("and"), std::string::npos);
}

TEST(SqlTest, GroupByAggregates) {
  auto q = ParseSql(
      "SELECT g, SUM(x * y) AS s, COUNT(*) AS n, AVG(x) AS a "
      "FROM 's3://d/*' GROUP BY g");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ops().size(), 1u);
  const auto& op = q->ops()[0];
  EXPECT_EQ(op.kind, PlanOp::Kind::kAggregate);
  EXPECT_EQ(op.group_by, (std::vector<std::string>{"g"}));
  ASSERT_EQ(op.aggs.size(), 3u);
  EXPECT_EQ(op.aggs[0].kind, engine::AggKind::kSum);
  EXPECT_EQ(op.aggs[1].kind, engine::AggKind::kCount);
  EXPECT_EQ(op.aggs[2].kind, engine::AggKind::kAvg);
  EXPECT_EQ(op.aggs[1].output_name, "n");
}

TEST(SqlTest, GlobalAggregateWithoutGroupBy) {
  auto q = ParseSql("SELECT SUM(v) FROM 's3://d/*' WHERE v > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& op = q->ops().back();
  EXPECT_EQ(op.kind, PlanOp::Kind::kAggregate);
  EXPECT_TRUE(op.group_by.empty());
}

TEST(SqlTest, BetweenExpandsToRange) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM 's3://d/*' WHERE d BETWEEN 5 AND 9");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto bounds = engine::ExtractColumnBounds(q->ops()[0].expr);
  ASSERT_TRUE(bounds.count("d"));
  EXPECT_DOUBLE_EQ(bounds["d"].lo, 5);
  EXPECT_DOUBLE_EQ(bounds["d"].hi, 9);
}

TEST(SqlTest, DateLiteralMatchesTpchDays) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM 's3://d/*' "
      "WHERE l_shipdate < DATE '1995-01-01'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto bounds = engine::ExtractColumnBounds(q->ops()[0].expr);
  ASSERT_TRUE(bounds.count("l_shipdate"));
  EXPECT_DOUBLE_EQ(bounds["l_shipdate"].hi,
                   static_cast<double>(workload::TpchDate(1995, 1, 1)));
}

TEST(SqlTest, TpchQ6InSqlPlansLikeBuilderQ6) {
  auto sql = ParseSql(
      "SELECT SUM(l_extendedprice * l_discount) AS revenue "
      "FROM 's3://tpch/li/*.lpq' "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.05 AND 0.07 "
      "AND l_quantity < 24.0");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto phys = PlanQuery(*sql);
  ASSERT_TRUE(phys.ok());
  // Same pruning bounds as the builder version of Q6.
  auto bounds = engine::ExtractColumnBounds(phys->fragment.scan_filter);
  EXPECT_DOUBLE_EQ(bounds["l_shipdate"].lo,
                   static_cast<double>(workload::TpchDate(1994, 1, 1)));
  EXPECT_DOUBLE_EQ(bounds["l_discount"].lo, 0.05);
  EXPECT_DOUBLE_EQ(bounds["l_quantity"].hi, 24.0);
  // Projection push-down covers exactly the four referenced columns.
  EXPECT_EQ(phys->fragment.scan_projection.size(), 4u);
  EXPECT_TRUE(phys->has_final_aggregate);
}

TEST(SqlTest, OperatorPrecedence) {
  auto q = ParseSql("SELECT a + b * c AS v FROM 's3://d/*'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ops()[0].exprs[0]->ToString(), "(a + (b * c))");
  auto q2 = ParseSql("SELECT (a + b) * c AS v FROM 's3://d/*'");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ops()[0].exprs[0]->ToString(), "((a + b) * c)");
}

TEST(SqlTest, UnaryMinus) {
  auto q = ParseSql("SELECT -x AS neg FROM 's3://d/*'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ops()[0].exprs[0]->ToString(), "(0 - x)");
}

TEST(SqlTest, CaseInsensitiveKeywords) {
  auto q = ParseSql("select Sum(x) from 's3://d/*' where x > 1 group by g");
  // "group by g" with no g in select: valid (keys need not be selected).
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(SqlTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM 's3://d/*'").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM no_quotes").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM 's3://d/*' WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a, SUM(b) FROM 's3://d/*'").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM 's3://d/*' GROUP BY").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM 's3://d/*' trailing junk").ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(a FROM 's3://d/*'").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM 's3://d/*' WHERE x ! 1").ok());
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM 's3://d/*' WHERE d < DATE 'oops'").ok());
}

// ---------------------------------------------------------------------------
// JOIN ... ON
// ---------------------------------------------------------------------------

TEST(SqlJoinTest, InnerJoinParsesToJoinOp) {
  auto q = ParseSql(
      "SELECT l_shipmode, COUNT(*) AS n "
      "FROM 's3://tpch/li/*.lpq' "
      "JOIN 's3://tpch/orders/*.lpq' ON l_orderkey = o_orderkey "
      "WHERE o_orderpriority <= 1 "
      "GROUP BY l_shipmode");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ops().size(), 3u);  // join, filter (WHERE), aggregate.
  const auto& jop = q->ops()[0];
  ASSERT_EQ(jop.kind, PlanOp::Kind::kJoin);
  EXPECT_EQ(jop.join->type, engine::JoinType::kInner);
  EXPECT_EQ(jop.join->probe_keys, (std::vector<std::string>{"l_orderkey"}));
  EXPECT_EQ(jop.join->build_keys, (std::vector<std::string>{"o_orderkey"}));
  EXPECT_EQ(jop.join->build_pattern, "s3://tpch/orders/*.lpq");
  EXPECT_TRUE(jop.join->build_ops.empty());
  EXPECT_EQ(q->ops()[1].kind, PlanOp::Kind::kFilter);
  // And the whole thing plans as a two-sided exchange fragment.
  auto phys = PlanQuery(*q);
  ASSERT_TRUE(phys.ok()) << phys.status().ToString();
  ASSERT_EQ(phys->build_inputs.size(), 1u);
  EXPECT_EQ(phys->build_inputs[0].pattern, "s3://tpch/orders/*.lpq");
  EXPECT_GE(phys->fragment.JoinIndex(), 1);
}

TEST(SqlJoinTest, SemiJoinVariants) {
  for (const char* prefix : {"SEMI JOIN", "LEFT SEMI JOIN"}) {
    auto q = ParseSql(std::string("SELECT COUNT(*) FROM 's3://d/a/*' ") +
                      prefix + " 's3://d/b/*' ON k = k2");
    ASSERT_TRUE(q.ok()) << prefix << ": " << q.status().ToString();
    ASSERT_EQ(q->ops()[0].kind, PlanOp::Kind::kJoin);
    EXPECT_EQ(q->ops()[0].join->type, engine::JoinType::kLeftSemi);
  }
}

TEST(SqlJoinTest, MultiKeyOnConjunction) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM 's3://d/a/*' JOIN 's3://d/b/*' "
      "ON k = k2 AND j = j2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->ops()[0].join->probe_keys,
            (std::vector<std::string>{"k", "j"}));
  EXPECT_EQ(q->ops()[0].join->build_keys,
            (std::vector<std::string>{"k2", "j2"}));
}

TEST(SqlJoinTest, BuildKeyReferencesRewriteToProbeKey) {
  // The join output drops o_orderkey (build key), so references to it in
  // WHERE / SELECT / GROUP BY must resolve to l_orderkey instead.
  auto q = ParseSql(
      "SELECT o_orderkey, COUNT(*) AS n FROM 's3://d/li/*' "
      "JOIN 's3://d/orders/*' ON l_orderkey = o_orderkey "
      "WHERE o_orderkey > 100 GROUP BY o_orderkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ops().size(), 3u);  // join, filter, aggregate.
  const auto& filter = q->ops()[1];
  ASSERT_EQ(filter.kind, PlanOp::Kind::kFilter);
  EXPECT_NE(filter.expr->ToString().find("l_orderkey"), std::string::npos);
  EXPECT_EQ(filter.expr->ToString().find("o_orderkey"), std::string::npos);
  EXPECT_EQ(q->ops().back().group_by,
            (std::vector<std::string>{"l_orderkey"}));
  ASSERT_TRUE(PlanQuery(*q).ok());
}

TEST(SqlJoinTest, MalformedJoinRejected) {
  // Missing build pattern.
  EXPECT_FALSE(
      ParseSql("SELECT a FROM 's3://d/a/*' JOIN ON k = k2").ok());
  // Unquoted build pattern.
  EXPECT_FALSE(
      ParseSql("SELECT a FROM 's3://d/a/*' JOIN tbl ON k = k2").ok());
  // Missing ON clause.
  EXPECT_FALSE(ParseSql("SELECT a FROM 's3://d/a/*' JOIN 's3://d/b/*'").ok());
  // ON with a non-equality comparison.
  EXPECT_FALSE(
      ParseSql("SELECT a FROM 's3://d/a/*' JOIN 's3://d/b/*' ON k < k2")
          .ok());
  // ON with a literal operand.
  EXPECT_FALSE(
      ParseSql("SELECT a FROM 's3://d/a/*' JOIN 's3://d/b/*' ON k = 5")
          .ok());
  // Trailing AND.
  EXPECT_FALSE(
      ParseSql(
          "SELECT a FROM 's3://d/a/*' JOIN 's3://d/b/*' ON k = k2 AND")
          .ok());
  // LEFT without SEMI JOIN.
  EXPECT_FALSE(
      ParseSql("SELECT a FROM 's3://d/a/*' LEFT JOIN 's3://d/b/*' "
               "ON k = k2")
          .ok());
  // A second JOIN clause chains (multi-join pipeline).
  auto two = ParseSql(
      "SELECT a FROM 's3://d/a/*' JOIN 's3://d/b/*' ON k = k2 "
      "JOIN 's3://d/c/*' ON j = j2");
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  ASSERT_EQ(two->ops().size(), 3u);  // join, join, select.
  EXPECT_EQ(two->ops()[0].kind, PlanOp::Kind::kJoin);
  EXPECT_EQ(two->ops()[1].kind, PlanOp::Kind::kJoin);
  EXPECT_EQ(two->ops()[1].join->build_pattern, "s3://d/c/*");
}

TEST(SqlJoinTest, RenamesChainAcrossJoins) {
  // The first join drops build key `k2` in favour of probe key `k`; the
  // second ON clause may still say `k2` and must be rewritten to `k`.
  auto q = ParseSql(
      "SELECT a FROM 's3://d/a/*' JOIN 's3://d/b/*' ON k = k2 "
      "JOIN 's3://d/c/*' ON k2 = k3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ops().size(), 3u);
  ASSERT_EQ(q->ops()[1].join->probe_keys.size(), 1u);
  EXPECT_EQ(q->ops()[1].join->probe_keys[0], "k");
  EXPECT_EQ(q->ops()[1].join->build_keys[0], "k3");
}

TEST(SqlHavingTest, HavingBecomesTrailingFilter) {
  auto q = ParseSql(
      "SELECT g, SUM(x) AS s FROM 's3://d/t/*' GROUP BY g HAVING s > 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ops().size(), 2u);
  EXPECT_EQ(q->ops()[0].kind, PlanOp::Kind::kAggregate);
  EXPECT_EQ(q->ops()[1].kind, PlanOp::Kind::kFilter);

  // The planner hoists the post-aggregate filter into the driver scope.
  auto phys = PlanQuery(*q);
  ASSERT_TRUE(phys.ok()) << phys.status().ToString();
  EXPECT_TRUE(phys->has_final_aggregate);
  ASSERT_EQ(phys->driver_ops.size(), 1u);
  EXPECT_EQ(phys->driver_ops[0].kind, PlanOp::Kind::kFilter);
}

TEST(SqlHavingTest, HavingWithoutGroupByRejected) {
  EXPECT_FALSE(
      ParseSql("SELECT a FROM 's3://d/t/*' HAVING a > 5").ok());
}

TEST(SqlExplainTest, GoldenJoinPlan) {
  // Golden text for a catalog-less join plan: the optimizer keeps the
  // syntactic order, picks partitioned exchanges, and renders unknown
  // cardinalities as "?". Any change here is a deliberate format change.
  auto text = ExplainSql(
      "EXPLAIN SELECT l_shipmode, COUNT(*) AS n "
      "FROM 's3://tpch/li/*.lpq' "
      "JOIN 's3://tpch/orders/*.lpq' ON l_orderkey = o_orderkey "
      "GROUP BY l_shipmode");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "plan for s3://tpch/li/*.lpq\n"
            "  scan probe=s3://tpch/li/*.lpq projection=[*]\n"
            "  exchange keys=[l_orderkey] levels=2\n"
            "  join[0] inner build=s3://tpch/orders/*.lpq"
            " on l_orderkey=o_orderkey strategy=partitioned\n"
            "    est rows: probe=? build=? out=?\n"
            "    cost: partitioned=$0.000022 broadcast=n/a\n"
            "  aggregate group=[l_shipmode] aggs=[count as n]\n");
}

TEST(SqlExplainTest, GoldenSingleTablePlan) {
  auto text = ExplainSql(
      "EXPLAIN SELECT g, SUM(x) AS s FROM 's3://d/t/*' "
      "WHERE x > 3 GROUP BY g HAVING s > 5");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "plan for s3://d/t/*\n"
            "  scan s3://d/t/* filter=(x > 3) projection=[g, x]\n"
            "  aggregate group=[g] aggs=[sum as s]\n"
            "  having (s > 5)\n");
}

TEST(SqlExplainTest, ExplainRequiresKeyword) {
  auto r = ExplainSql("SELECT a FROM 's3://d/t/*'");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace lambada::core
