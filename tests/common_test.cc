#include <gtest/gtest.h>

#include <cstring>

#include "common/binio.h"
#include "common/buffer.h"
#include "common/glob.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace lambada {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key x");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key x");
}

TEST(StatusTest, RetriableCodes) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetriable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetriable());
  EXPECT_TRUE(Status::Timeout("x").IsRetriable());
  EXPECT_FALSE(Status::Invalid("x").IsRetriable());
  EXPECT_FALSE(Status::OK().IsRetriable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err = Status::Invalid("bad");
  EXPECT_EQ(std::move(err).ValueOr(7), 7);
  Result<int> ok = 3;
  EXPECT_EQ(std::move(ok).ValueOr(7), 3);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::Invalid("not positive");
  return x;
}

Result<int> DoubleOf(int x) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleOf(4), 8);
  EXPECT_FALSE(DoubleOf(-1).ok());
}

Status CheckEven(int x) {
  RETURN_NOT_OK(ParsePositive(x));
  if (x % 2 != 0) return Status::Invalid("odd");
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
  EXPECT_FALSE(CheckEven(-2).ok());
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

TEST(BufferTest, FromStringRoundTrip) {
  auto b = Buffer::FromString("hello");
  EXPECT_EQ(b->size(), 5u);
  EXPECT_EQ(b->ToString(), "hello");
}

TEST(BufferTest, SliceIsZeroCopyView) {
  auto b = Buffer::FromString("hello world");
  auto s = b->Slice(6, 5);
  EXPECT_EQ(s->ToString(), "world");
  EXPECT_EQ(s->data(), b->data() + 6);
}

TEST(BufferTest, SliceKeepsParentAlive) {
  BufferPtr s;
  {
    auto b = Buffer::FromString("hello world");
    s = b->Slice(0, 5);
  }
  EXPECT_EQ(s->ToString(), "hello");
}

TEST(BufferTest, EmptySlice) {
  auto b = Buffer::FromString("abc");
  auto s = b->Slice(3, 0);
  EXPECT_EQ(s->size(), 0u);
}

// ---------------------------------------------------------------------------
// BinaryWriter / BinaryReader
// ---------------------------------------------------------------------------

TEST(BinIoTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(1ull << 40);
  w.PutI64(-42);
  w.PutF64(3.25);
  BinaryReader r(w.bytes());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 123456u);
  EXPECT_EQ(*r.GetU64(), 1ull << 40);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetF64(), 3.25);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinIoTest, VarintRoundTripBoundaries) {
  BinaryWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                             (1ull << 32), ~0ull};
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r(w.bytes());
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(BinIoTest, StringAndBytesRoundTrip) {
  BinaryWriter w;
  w.PutString("abc");
  w.PutString("");
  w.PutBytes({1, 2, 3});
  BinaryReader r(w.bytes());
  EXPECT_EQ(*r.GetString(), "abc");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetBytes(), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(BinIoTest, TruncatedInputReportsIOError) {
  BinaryWriter w;
  w.PutU64(1);
  BinaryReader r(w.bytes().data(), 3);  // Truncate.
  auto got = r.GetU64();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST(BinIoTest, CorruptVarintLengthDoesNotCrash) {
  std::vector<uint8_t> bytes = {0xFF, 0xFF};  // Claims a huge length.
  BinaryReader r(bytes);
  EXPECT_FALSE(r.GetString().ok());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(1, 5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 1);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LognormalMedianApproximatelyCorrect) {
  Rng r(11);
  std::vector<double> v;
  for (int i = 0; i < 20001; ++i) v.push_back(r.Lognormal(0.02, 0.3));
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 0.02, 0.002);
}

TEST(RngTest, ParetoLowerBound) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.Pareto(1.5, 2.0), 1.5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kMiB), "2.00 MiB");
  EXPECT_EQ(FormatBytes(3 * kGiB), "3.00 GiB");
}

TEST(UnitsTest, FormatUsd) {
  EXPECT_EQ(FormatUsd(0.0), "$0");
  EXPECT_EQ(FormatUsd(0.033), "3.3 c");
  EXPECT_EQ(FormatUsd(12.3), "$12.30");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.125), "125 ms");
  EXPECT_EQ(FormatSeconds(3.42), "3.42 s");
  EXPECT_EQ(FormatSeconds(600), "10.0 min");
}

// ---------------------------------------------------------------------------
// Glob
// ---------------------------------------------------------------------------

TEST(GlobTest, Basics) {
  EXPECT_TRUE(GlobMatch("*.lpq", "part-0001.lpq"));
  EXPECT_FALSE(GlobMatch("*.lpq", "part-0001.csv"));
  EXPECT_TRUE(GlobMatch("data/*.lpq", "data/x.lpq"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_TRUE(GlobMatch("**", "anything/at/all"));
  EXPECT_TRUE(GlobMatch("exact", "exact"));
  EXPECT_FALSE(GlobMatch("exact", "exactly"));
}

TEST(GlobTest, StarCrossesSlashes) {
  EXPECT_TRUE(GlobMatch("data/*", "data/a/b/c"));
}

TEST(GlobTest, ParseS3Uri) {
  std::string bucket, key;
  ASSERT_TRUE(ParseS3Uri("s3://my-bucket/path/to/key", &bucket, &key));
  EXPECT_EQ(bucket, "my-bucket");
  EXPECT_EQ(key, "path/to/key");
  ASSERT_TRUE(ParseS3Uri("s3://b", &bucket, &key));
  EXPECT_EQ(bucket, "b");
  EXPECT_EQ(key, "");
  EXPECT_FALSE(ParseS3Uri("http://x/y", &bucket, &key));
}

TEST(GlobTest, LiteralPrefix) {
  EXPECT_EQ(GlobLiteralPrefix("data/part-*.lpq"), "data/part-");
  EXPECT_EQ(GlobLiteralPrefix("nometa"), "nometa");
  EXPECT_EQ(GlobLiteralPrefix("*x"), "");
}

}  // namespace
}  // namespace lambada
