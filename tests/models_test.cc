#include <gtest/gtest.h>

#include "models/costmodel.h"
#include "models/qaas.h"

namespace lambada::models {
namespace {

TEST(CostModelTest, JobScopedIaasTimeDropsCostRises) {
  auto pts = JobScopedIaas();
  ASSERT_GE(pts.size(), 2u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].running_time_s, pts[i - 1].running_time_s);
    EXPECT_GT(pts[i].cost_usd, pts[i - 1].cost_usd);
  }
  // Time converges to the startup floor (2 min).
  EXPECT_GT(pts.back().running_time_s, 120.0);
  EXPECT_LT(pts.back().running_time_s, 140.0);
}

TEST(CostModelTest, JobScopedFaasCostNearlyConstant) {
  auto pts = JobScopedFaas();
  double lo = pts[0].cost_usd, hi = pts[0].cost_usd;
  for (const auto& p : pts) {
    lo = std::min(lo, p.cost_usd);
    hi = std::max(hi, p.cost_usd);
  }
  EXPECT_LT(hi / lo, 1.05);  // Scan cost independent of parallelism.
  // Time converges to the FaaS startup floor (4 s).
  EXPECT_LT(pts.back().running_time_s, 10.0);
}

TEST(CostModelTest, FaasCheaperAtLowFrequencyIaasAtHigh) {
  auto series = AlwaysOnComparison();
  ASSERT_EQ(series.size(), 5u);
  const auto& dram = series[2];
  const auto& faas = series[4];
  // At 1 query/hour FaaS is far cheaper than any always-on option.
  EXPECT_LT(faas.hourly_cost_usd.front(), dram.hourly_cost_usd.front());
  // At 64 queries/hour the VMs win.
  EXPECT_GT(faas.hourly_cost_usd.back(), dram.hourly_cost_usd.back());
}

TEST(CostModelTest, QaasAlwaysAboveFaas) {
  auto series = AlwaysOnComparison();
  const auto& qaas = series[3];
  const auto& faas = series[4];
  for (size_t i = 0; i < qaas.hourly_cost_usd.size(); ++i) {
    EXPECT_GT(qaas.hourly_cost_usd[i], faas.hourly_cost_usd[i]);
  }
}

TEST(QaasModelTest, AthenaPricesSelectedRowsOnly) {
  AthenaModel athena;
  QaasAnchors anchors;
  QaasQuery q1{7.0 / 16, 0.98, 1.0};
  QaasQuery q6{4.0 / 16, 0.02, 1.0};
  auto e1 = athena.Estimate(q1, anchors.athena_q1_s);
  auto e6 = athena.Estimate(q6, anchors.athena_q6_s);
  // Q1 scans ~65 GiB => ~$0.32; Q6 scans ~0.75 GiB => ~$0.004.
  EXPECT_NEAR(e1.cost_usd, 0.32, 0.05);
  EXPECT_NEAR(e6.cost_usd, 0.004, 0.002);
  EXPECT_EQ(e1.load_time_s, 0);
}

TEST(QaasModelTest, AthenaLatencyScalesLinearly) {
  AthenaModel athena;
  QaasQuery small{0.5, 1.0, 1.0}, big{0.5, 1.0, 10.0};
  auto a = athena.Estimate(small, 38.0);
  auto b = athena.Estimate(big, 38.0);
  EXPECT_NEAR(b.latency_s / a.latency_s, 9.6, 0.5);
}

TEST(QaasModelTest, BigQueryBillsFullColumns) {
  BigQueryModel bq;
  QaasQuery q1{7.0 / 16, 0.98, 1.0};
  QaasQuery q6{4.0 / 16, 0.02, 1.0};
  auto e1 = bq.Estimate(q1, 3.9);
  auto e6 = bq.Estimate(q6, 1.6);
  // Selection does NOT reduce the bill: Q6 still pays for 4 full columns.
  EXPECT_NEAR(e1.cost_usd, 1.76, 0.2);
  EXPECT_NEAR(e6.cost_usd, 1.0, 0.15);
  // Loading takes ~40 min at SF 1k and scales linearly.
  EXPECT_NEAR(e1.load_time_s, 2400.0, 1.0);
  auto e1_10k = bq.Estimate(QaasQuery{7.0 / 16, 0.98, 10.0}, 3.9);
  EXPECT_NEAR(e1_10k.load_time_s, 24000.0, 10.0);
  // Sublinear latency growth.
  EXPECT_LT(e1_10k.latency_s, 10 * e1.latency_s);
  EXPECT_GT(e1_10k.latency_s, 5 * e1.latency_s);
}

}  // namespace
}  // namespace lambada::models
