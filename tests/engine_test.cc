#include <gtest/gtest.h>

#include "test_util.h"

#include <set>

#include "cloud/cloud.h"
#include "common/rng.h"
#include "engine/aggregate.h"
#include "engine/chunk_serde.h"
#include "engine/expr.h"
#include "engine/join.h"
#include "engine/partition.h"
#include "engine/scan.h"
#include "engine/sort.h"
#include "engine/table.h"
#include "format/writer.h"

namespace lambada::engine {
namespace {

SchemaPtr S3Schema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64},
      {"x", DataType::kFloat64},
      {"y", DataType::kInt64}});
}

TableChunk SampleChunk() {
  return TableChunk(S3Schema(), {Column::Int64({1, 2, 1, 3}),
                                 Column::Float64({0.5, 1.5, 2.5, 3.5}),
                                 Column::Int64({10, 20, 30, 40})});
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(ExprTest, ColumnAndLiteralEvaluation) {
  TableChunk t = SampleChunk();
  auto col = Col("y")->Evaluate(t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->i64(), (std::vector<int64_t>{10, 20, 30, 40}));
  auto lit = Lit(7)->Evaluate(t);
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(lit->i64(), (std::vector<int64_t>{7, 7, 7, 7}));
}

TEST(ExprTest, ArithmeticTypePromotion) {
  TableChunk t = SampleChunk();
  // int64 * int64 stays int64.
  auto ii = (Col("k") * Col("y"))->Evaluate(t);
  ASSERT_TRUE(ii.ok());
  EXPECT_EQ(ii->type(), DataType::kInt64);
  EXPECT_EQ(ii->i64(), (std::vector<int64_t>{10, 40, 30, 120}));
  // int64 * float64 promotes to float64.
  auto fi = (Col("x") * Col("y"))->Evaluate(t);
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(fi->type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(fi->f64()[1], 30.0);
}

TEST(ExprTest, ComparisonsYieldBoolInt) {
  TableChunk t = SampleChunk();
  auto ge = (Col("x") >= Lit(1.5))->Evaluate(t);
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->i64(), (std::vector<int64_t>{0, 1, 1, 1}));
  auto both = ((Col("x") >= Lit(1.5)) && (Col("k") == Lit(1)))->Evaluate(t);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->i64(), (std::vector<int64_t>{0, 0, 1, 0}));
}

TEST(ExprTest, DivisionByZeroYieldsZero) {
  TableChunk t = SampleChunk();
  auto div = (Col("y") / Lit(0))->Evaluate(t);
  ASSERT_TRUE(div.ok());
  EXPECT_EQ(div->i64(), (std::vector<int64_t>{0, 0, 0, 0}));
}

TEST(ExprTest, UnknownColumnFails) {
  TableChunk t = SampleChunk();
  EXPECT_FALSE(Col("nope")->Evaluate(t).ok());
  EXPECT_FALSE(Col("nope")->Validate(*t.schema()).ok());
  EXPECT_TRUE(Col("x")->Validate(*t.schema()).ok());
}

TEST(ExprTest, CollectColumns) {
  auto e = (Col("a") + Col("b")) * Lit(2) >= Col("c");
  std::set<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"a", "b", "c"}));
}

TEST(ExprTest, SerializationRoundTrip) {
  auto e = ((Col("x") >= Lit(0.05)) && (Col("y") < Lit(24))) ||
           (Col("k") == Lit(3));
  BinaryWriter w;
  e->Serialize(&w);
  BinaryReader r(w.bytes());
  auto back = Expr::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->ToString(), e->ToString());
  // Behavioural equivalence.
  TableChunk t = SampleChunk();
  EXPECT_EQ((*back)->Evaluate(t)->i64(), e->Evaluate(t)->i64());
}

TEST(ExprTest, ExtractBoundsFromConjunction) {
  auto e = (Col("d") >= Lit(19940101)) && (Col("d") < Lit(19950101)) &&
           (Col("q") < Lit(24.0));
  auto bounds = ExtractColumnBounds(e);
  ASSERT_TRUE(bounds.count("d"));
  EXPECT_DOUBLE_EQ(bounds["d"].lo, 19940101);
  EXPECT_DOUBLE_EQ(bounds["d"].hi, 19950101);
  EXPECT_DOUBLE_EQ(bounds["q"].hi, 24.0);
  EXPECT_TRUE(bounds["d"].Intersects(19940500, 19940600));
  EXPECT_FALSE(bounds["d"].Intersects(19960101, 19970101));
}

TEST(ExprTest, ExtractBoundsIgnoresDisjunction) {
  // OR cannot tighten bounds for either column.
  auto e = (Col("a") < Lit(5)) || (Col("b") > Lit(7));
  auto bounds = ExtractColumnBounds(e);
  EXPECT_TRUE(bounds.empty());
}

TEST(ExprTest, ExtractBoundsFlippedComparison) {
  auto e = Lit(10) >= Col("a");  // means a <= 10.
  auto bounds = ExtractColumnBounds(e);
  ASSERT_TRUE(bounds.count("a"));
  EXPECT_DOUBLE_EQ(bounds["a"].hi, 10);
}

// ---------------------------------------------------------------------------
// HashAggregator
// ---------------------------------------------------------------------------

TEST(AggregateTest, GroupedSumCountAvg) {
  HashAggregator agg({"k"}, {Sum(Col("x"), "sx"), Count("n"),
                             Avg(Col("y"), "ay")});
  ASSERT_TRUE(agg.ConsumeInput(SampleChunk()).ok());
  TableChunk out = agg.Finalize();
  // Groups sorted by key: k=1 (rows 0,2), k=2 (row 1), k=3 (row 3).
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column(0).i64(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(out.column(1).f64()[0], 3.0);   // 0.5 + 2.5
  EXPECT_EQ(out.column(2).i64()[0], 2);            // count
  EXPECT_DOUBLE_EQ(out.column(3).f64()[0], 20.0);  // (10+30)/2
}

TEST(AggregateTest, MinMax) {
  HashAggregator agg({}, {Min(Col("x"), "mn"), Max(Col("x"), "mx")});
  ASSERT_TRUE(agg.ConsumeInput(SampleChunk()).ok());
  TableChunk out = agg.Finalize();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.column(0).f64()[0], 0.5);
  EXPECT_DOUBLE_EQ(out.column(1).f64()[0], 3.5);
}

TEST(AggregateTest, PartialMergeEqualsDirect) {
  // Split input across two "workers", merge partials, compare to direct.
  auto specs = [] {
    return std::vector<AggSpec>{Sum(Col("x") * Col("y"), "sxy"), Count("n"),
                                Avg(Col("x"), "ax"), Min(Col("y"), "mn")};
  };
  TableChunk full = SampleChunk();
  HashAggregator direct({"k"}, specs());
  ASSERT_TRUE(direct.ConsumeInput(full).ok());

  HashAggregator w1({"k"}, specs()), w2({"k"}, specs());
  ASSERT_TRUE(w1.ConsumeInput(full.Filter({true, true, false, false})).ok());
  ASSERT_TRUE(w2.ConsumeInput(full.Filter({false, false, true, true})).ok());
  HashAggregator merger({"k"}, specs());
  ASSERT_TRUE(merger.MergePartial(w1.PartialState()).ok());
  ASSERT_TRUE(merger.MergePartial(w2.PartialState()).ok());

  TableChunk a = direct.Finalize();
  TableChunk b = merger.Finalize();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column(c).type() == DataType::kInt64) {
      EXPECT_EQ(a.column(c).i64(), b.column(c).i64());
    } else {
      for (size_t r = 0; r < a.num_rows(); ++r) {
        EXPECT_DOUBLE_EQ(a.column(c).f64()[r], b.column(c).f64()[r]);
      }
    }
  }
}

TEST(AggregateTest, EmptyInputEmptyOutput) {
  HashAggregator agg({"k"}, {Sum(Col("x"), "s")});
  TableChunk out = agg.Finalize();
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(agg.num_groups(), 0u);
}

TEST(AggregateTest, GlobalAggregateWithoutGroups) {
  HashAggregator agg({}, {Sum(Col("y"), "s")});
  ASSERT_TRUE(agg.ConsumeInput(SampleChunk()).ok());
  ASSERT_TRUE(agg.ConsumeInput(SampleChunk()).ok());
  TableChunk out = agg.Finalize();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.column(0).f64()[0], 200.0);
}

TEST(AggregateTest, PartialSchemaExpandsAvg) {
  HashAggregator agg({"k"}, {Avg(Col("x"), "a")});
  auto partial = agg.PartialSchema();
  ASSERT_EQ(partial->num_fields(), 3u);
  EXPECT_EQ(partial->field(1).name, "a$sum");
  EXPECT_EQ(partial->field(2).name, "a$count");
  auto final_schema = agg.FinalSchema();
  ASSERT_EQ(final_schema->num_fields(), 2u);
  EXPECT_EQ(final_schema->field(1).name, "a");
}

TEST(AggregateTest, MergeRejectsWrongSchema) {
  HashAggregator agg({"k"}, {Sum(Col("x"), "s")});
  EXPECT_FALSE(agg.MergePartial(SampleChunk()).ok());
}

TEST(AggregateTest, NonInt64GroupKeyRejected) {
  HashAggregator agg({"x"}, {Count("n")});
  EXPECT_FALSE(agg.ConsumeInput(SampleChunk()).ok());
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(PartitionTest, EveryRowLandsInExactlyOnePartition) {
  Rng rng(1);
  std::vector<int64_t> keys;
  std::vector<double> vals;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(rng.UniformInt(0, 1000));
    vals.push_back(rng.NextDouble());
  }
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  TableChunk t(schema, {Column::Int64(keys), Column::Float64(vals)});
  auto parts = HashPartition(t, {0}, 16);
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  double sum = 0;
  for (const auto& p : *parts) {
    total += p.num_rows();
    for (double v : p.column(1).f64()) sum += v;
  }
  EXPECT_EQ(total, t.num_rows());
  double expect_sum = 0;
  for (double v : vals) expect_sum += v;
  EXPECT_NEAR(sum, expect_sum, 1e-6);
}

TEST(PartitionTest, SameKeySamePartition) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"k", DataType::kInt64}});
  TableChunk t(schema, {Column::Int64({42, 7, 42, 7, 42})});
  auto ids = ComputePartitionIds(t, {0}, 8);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ((*ids)[0], (*ids)[2]);
  EXPECT_EQ((*ids)[0], (*ids)[4]);
  EXPECT_EQ((*ids)[1], (*ids)[3]);
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"k", DataType::kInt64}});
  std::vector<int64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(i * 37);
  TableChunk t(schema, {Column::Int64(keys)});
  auto a = ComputePartitionIds(t, {0}, 13);
  auto b = ComputePartitionIds(t, {0}, 13);
  EXPECT_EQ(*a, *b);
}

TEST(PartitionTest, ReasonablyBalanced) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"k", DataType::kInt64}});
  std::vector<int64_t> keys;
  for (int i = 0; i < 64000; ++i) keys.push_back(i);
  TableChunk t(schema, {Column::Int64(keys)});
  auto parts = HashPartition(t, {0}, 64);
  ASSERT_TRUE(parts.ok());
  for (const auto& p : *parts) {
    EXPECT_GT(p.num_rows(), 700u);   // Expected 1000.
    EXPECT_LT(p.num_rows(), 1300u);
  }
}

TEST(PartitionTest, InvalidArgumentsRejected) {
  TableChunk t = SampleChunk();
  EXPECT_FALSE(HashPartition(t, {0}, 0).ok());
  EXPECT_FALSE(HashPartition(t, {99}, 4).ok());
}

// ---------------------------------------------------------------------------
// Chunk serde
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

TableChunk ProbeChunk() {
  // Keys 1,2,2,3,5 with a payload identifying each row.
  return TableChunk(
      std::make_shared<Schema>(std::vector<Field>{
          {"pk", DataType::kInt64}, {"pv", DataType::kFloat64}}),
      {Column::Int64({1, 2, 2, 3, 5}),
       Column::Float64({0.1, 0.2, 0.3, 0.4, 0.5})});
}

TableChunk BuildChunk() {
  // Key 2 appears twice (rows 1 and 3 in build order); probe key 5 has no
  // build partner.
  return TableChunk(
      std::make_shared<Schema>(std::vector<Field>{
          {"bk", DataType::kInt64}, {"bv", DataType::kInt64}}),
      {Column::Int64({1, 2, 3, 2}), Column::Int64({100, 200, 300, 201})});
}

TEST(HashJoinTest, InnerEmitsProbeOrderThenBuildOrder) {
  auto joined = HashJoin(ProbeChunk(), {0}, BuildChunk(), {0},
                         JoinType::kInner);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Output columns: pk, pv, bv (build key dropped).
  ASSERT_EQ(joined->num_columns(), 3u);
  EXPECT_EQ(joined->schema()->field(2).name, "bv");
  // Probe rows in order; probe key 2 matches build rows 1 then 3.
  EXPECT_EQ(joined->column(0).i64(),
            (std::vector<int64_t>{1, 2, 2, 2, 2, 3}));
  EXPECT_EQ(joined->column(2).i64(),
            (std::vector<int64_t>{100, 200, 201, 200, 201, 300}));
}

TEST(HashJoinTest, LeftSemiKeepsProbeColumnsOnce) {
  auto joined = HashJoin(ProbeChunk(), {0}, BuildChunk(), {0},
                         JoinType::kLeftSemi);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_EQ(joined->num_columns(), 2u);  // Probe columns only.
  // Probe keys 1, 2, 2, 3 match (each probe row at most once); 5 does not.
  EXPECT_EQ(joined->column(0).i64(), (std::vector<int64_t>{1, 2, 2, 3}));
  EXPECT_EQ(joined->column(1).f64(),
            (std::vector<double>{0.1, 0.2, 0.3, 0.4}));
}

TEST(HashJoinTest, MultiColumnKeysAndNoMatches) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"a", DataType::kInt64}, {"b", DataType::kInt64}});
  TableChunk probe(schema, {Column::Int64({1, 1, 2}),
                            Column::Int64({10, 11, 10})});
  TableChunk build(
      std::make_shared<Schema>(std::vector<Field>{
          {"c", DataType::kInt64}, {"d", DataType::kInt64},
          {"tag", DataType::kInt64}}),
      {Column::Int64({1, 2}), Column::Int64({10, 99}),
       Column::Int64({7, 8})});
  auto joined = HashJoin(probe, {0, 1}, build, {0, 1}, JoinType::kInner);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Only (1,10) matches; (1,11) and (2,10) share one key half each.
  ASSERT_EQ(joined->num_rows(), 1u);
  EXPECT_EQ(joined->column(0).i64()[0], 1);
  EXPECT_EQ(joined->column(2).i64()[0], 7);
}

TEST(HashJoinTest, EmptySidesProduceEmptyOutput) {
  TableChunk empty_probe = TableChunk::Empty(ProbeChunk().schema());
  auto a = HashJoin(empty_probe, {0}, BuildChunk(), {0}, JoinType::kInner);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_rows(), 0u);
  EXPECT_EQ(a->num_columns(), 3u);  // Schema still complete.
  TableChunk empty_build = TableChunk::Empty(BuildChunk().schema());
  auto b = HashJoin(ProbeChunk(), {0}, empty_build, {0}, JoinType::kInner);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_rows(), 0u);
}

TEST(HashJoinTest, RejectsBadKeysAndDuplicateNames) {
  // Float key.
  EXPECT_FALSE(HashJoin(ProbeChunk(), {1}, BuildChunk(), {0},
                        JoinType::kInner)
                   .ok());
  // Mismatched key list lengths / empty keys.
  EXPECT_FALSE(HashJoin(ProbeChunk(), {0}, BuildChunk(), {0, 1},
                        JoinType::kInner)
                   .ok());
  EXPECT_FALSE(HashJoin(ProbeChunk(), {}, BuildChunk(), {},
                        JoinType::kInner)
                   .ok());
  // Key index out of range.
  EXPECT_FALSE(HashJoin(ProbeChunk(), {5}, BuildChunk(), {0},
                        JoinType::kInner)
                   .ok());
  // Duplicate output name: build payload column named like a probe column.
  TableChunk clash(
      std::make_shared<Schema>(std::vector<Field>{
          {"bk", DataType::kInt64}, {"pv", DataType::kFloat64}}),
      {Column::Int64({1}), Column::Float64({9.0})});
  EXPECT_FALSE(
      HashJoin(ProbeChunk(), {0}, clash, {0}, JoinType::kInner).ok());
  // The semi join drops build columns, so the same clash is fine there.
  EXPECT_TRUE(
      HashJoin(ProbeChunk(), {0}, clash, {0}, JoinType::kLeftSemi).ok());
}

TEST(HashJoinTest, ParallelEqualsSequentialByteForByte) {
  // Large skewed input: many duplicate keys so morsels emit variable
  // match counts — the hard case for deterministic scatter windows.
  Rng rng(11);
  const size_t n_probe = 50000, n_build = 8000;
  std::vector<int64_t> pk(n_probe), pv(n_probe);
  for (size_t i = 0; i < n_probe; ++i) {
    pk[i] = rng.UniformInt(0, 4000);
    pv[i] = static_cast<int64_t>(i);
  }
  std::vector<int64_t> bk(n_build);
  std::vector<double> bv(n_build);
  for (size_t i = 0; i < n_build; ++i) {
    bk[i] = rng.UniformInt(0, 4000);
    bv[i] = rng.NextDouble();
  }
  TableChunk probe(std::make_shared<Schema>(std::vector<Field>{
                       {"k", DataType::kInt64}, {"pv", DataType::kInt64}}),
                   {Column::Int64(std::move(pk)),
                    Column::Int64(std::move(pv))});
  TableChunk build(std::make_shared<Schema>(std::vector<Field>{
                       {"k2", DataType::kInt64},
                       {"bv", DataType::kFloat64}}),
                   {Column::Int64(std::move(bk)),
                    Column::Float64(std::move(bv))});
  for (JoinType type : {JoinType::kInner, JoinType::kLeftSemi}) {
    auto serial = HashJoin(probe, {0}, build, {0}, type);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_GT(serial->num_rows(), 0u);
    for (int threads : {2, 8}) {
      auto parallel = HashJoin(probe, {0}, build, {0}, type,
                               exec::ExecContext::Parallel(threads, 1024));
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(SerializeChunk(*serial), SerializeChunk(*parallel))
          << JoinTypeName(type) << " at " << threads << " threads";
    }
  }
}

TEST(ChunkSerdeTest, RoundTrip) {
  TableChunk t = SampleChunk();
  auto bytes = SerializeChunk(t);
  auto back = DeserializeChunk(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back->schema(), *t.schema());
  EXPECT_EQ(back->column(0).i64(), t.column(0).i64());
  EXPECT_EQ(back->column(1).f64(), t.column(1).f64());
}

TEST(ChunkSerdeTest, EmptyChunk) {
  TableChunk t = TableChunk::Empty(S3Schema());
  auto back = DeserializeChunk(SerializeChunk(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(*back->schema(), *t.schema());
}

TEST(ChunkSerdeTest, CorruptionDetected) {
  auto bytes = SerializeChunk(SampleChunk());
  EXPECT_FALSE(DeserializeChunk(bytes.data(), bytes.size() / 2).ok());
  EXPECT_FALSE(DeserializeChunk(bytes.data(), 0).ok());
}

TEST(ChunkSerdeTest, CombinedOffsetsDelimitChunks) {
  std::vector<TableChunk> chunks = {SampleChunk(),
                                    TableChunk::Empty(S3Schema()),
                                    SampleChunk()};
  auto combined = SerializeChunksCombined(chunks);
  ASSERT_EQ(combined.offsets.size(), 4u);
  EXPECT_EQ(combined.offsets.back(), combined.bytes.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    auto back = DeserializeChunk(
        combined.bytes.data() + combined.offsets[i],
        combined.offsets[i + 1] - combined.offsets[i]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->num_rows(), chunks[i].num_rows());
  }
}

// ---------------------------------------------------------------------------
// S3 scan operator (integration with simulated cloud)
// ---------------------------------------------------------------------------

class ScanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cloud_.s3().CreateBucket("data").ok());
    // Three files, ids sorted globally across files => min/max pruning on
    // "id" can skip whole files.
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"id", DataType::kInt64}, {"v", DataType::kFloat64}});
    int64_t next_id = 0;
    for (int f = 0; f < 3; ++f) {
      std::vector<int64_t> ids;
      std::vector<double> vs;
      for (int i = 0; i < 3000; ++i) {
        ids.push_back(next_id++);
        vs.push_back(static_cast<double>(i % 100));
      }
      TableChunk t(schema, {Column::Int64(std::move(ids)),
                            Column::Float64(std::move(vs))});
      format::WriterOptions wo;
      wo.row_group_rows = 1000;
      auto file = format::FileWriter::WriteTable(t, wo);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(cloud_.s3()
                      .PutDirect("data", "part-" + std::to_string(f) + ".lpq",
                                 Buffer::FromVector(*std::move(file)))
                      .ok());
    }
  }

  /// Runs a scan inside a worker and returns (stats, total rows seen).
  std::pair<ScanStats, int64_t> RunScan(ScanOptions options) {
    ScanStats stats;
    int64_t rows = 0;
    cloud::FunctionConfig fn;
    fn.name = "scanner";
    fn.memory_mib = 2048;
    fn.handler = [&](cloud::WorkerEnv& env,
                     std::string) -> sim::Async<Status> {
      std::vector<FileRef> files;
      for (int f = 0; f < 3; ++f) {
        files.push_back(FileRef{"data", "part-" + std::to_string(f) + ".lpq"});
      }
      auto r = co_await S3ParquetScan(env, files, options,
                                      [&](const TableChunk& chunk) {
                                        rows += chunk.num_rows();
                                        return Status::OK();
                                      });
      if (!r.ok()) co_return r.status();
      stats = *r;
      co_return Status::OK();
    };
    LAMBADA_CHECK_OK(cloud_.faas().CreateFunction(fn));
    sim::Spawn([](cloud::Cloud* c) -> sim::Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "scanner", "");
    }(&cloud_));
    cloud_.sim().Run();
    LAMBADA_CHECK_EQ(cloud_.faas().failed_handlers(), 0);
    return {stats, rows};
  }

  cloud::Cloud cloud_;
};

TEST_F(ScanFixture, FullScanSeesAllRows) {
  auto [stats, rows] = RunScan(ScanOptions{});
  EXPECT_EQ(rows, 9000);
  EXPECT_EQ(stats.files(), 3);
  EXPECT_EQ(stats.row_groups_total(), 9);
  EXPECT_EQ(stats.row_groups_pruned(), 0);
}

TEST_F(ScanFixture, PredicatePrunesRowGroups) {
  ScanOptions opts;
  // ids 2000..2999 live in row group 2 of file 0 only. Bounds are
  // inclusive (min/max pruning treats < as <= conservatively), so use <=
  // to make the adjacent group [3000..3999] prunable.
  opts.filter = (Col("id") >= Lit(2000)) && (Col("id") <= Lit(2999));
  opts.projection = {"id", "v"};
  auto [stats, rows] = RunScan(opts);
  EXPECT_EQ(rows, 1000);
  EXPECT_EQ(stats.row_groups_pruned(), 8);
  EXPECT_EQ(stats.rows_scanned(), 1000);
}

TEST_F(ScanFixture, ResidualFilterAppliedWithinRowGroup) {
  ScanOptions opts;
  opts.filter = Col("v") < Lit(10.0);  // 10% of rows, no pruning possible.
  auto [stats, rows] = RunScan(opts);
  EXPECT_EQ(stats.row_groups_pruned(), 0);
  EXPECT_EQ(rows, 900);
}

TEST_F(ScanFixture, ProjectionNarrowsChunks) {
  ScanOptions opts;
  opts.projection = {"v"};
  ScanStats stats;
  int64_t cols_seen = -1;
  cloud::FunctionConfig fn;
  fn.name = "proj";
  fn.memory_mib = 2048;
  fn.handler = [&](cloud::WorkerEnv& env, std::string) -> sim::Async<Status> {
    std::vector<FileRef> files = {FileRef{"data", "part-0.lpq"}};
    auto r = co_await S3ParquetScan(
        env, files, opts,
        [&](const TableChunk& chunk) {
          cols_seen = static_cast<int64_t>(chunk.num_columns());
          return Status::OK();
        });
    co_return r.ok() ? Status::OK() : r.status();
  };
  ASSERT_TRUE(cloud_.faas().CreateFunction(fn).ok());
  sim::Spawn([](cloud::Cloud* c) -> sim::Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "proj", "");
  }(&cloud_));
  cloud_.sim().Run();
  EXPECT_EQ(cols_seen, 1);
}

TEST_F(ScanFixture, ScaledObjectsDescaleChunkAndCoalescingBudgets) {
  // A virtually-scaled file models scale x more bytes per real byte, so
  // the scan must descale both the request ("chunk") size and the
  // coalescing budget: the scaled scan then splits its reads into many
  // more GETs (the modeled request pattern) while producing identical
  // rows.
  auto scan = [&](const std::string& bucket) {
    ScanOptions opts;
    opts.filter = Col("id") >= Lit(0);
    opts.source.chunk_bytes = 4 * 1024;  // Modeled bytes.
    ScanStats stats;
    int64_t rows = 0;
    static int counter = 0;
    cloud::FunctionConfig fn;
    fn.name = "scaled-scanner-" + std::to_string(counter++);
    fn.memory_mib = 2048;
    fn.handler = [&, bucket](cloud::WorkerEnv& env,
                             std::string) -> sim::Async<Status> {
      std::vector<FileRef> files = {FileRef{bucket, "part-0.lpq"}};
      auto r = co_await S3ParquetScan(env, files, opts,
                                      [&](const TableChunk& chunk) {
                                        rows += chunk.num_rows();
                                        return Status::OK();
                                      });
      if (!r.ok()) co_return r.status();
      stats = *r;
      co_return Status::OK();
    };
    LAMBADA_CHECK_OK(cloud_.faas().CreateFunction(fn));
    sim::Spawn([](cloud::Cloud* c, std::string name) -> sim::Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), name, "");
    }(&cloud_, fn.name));
    cloud_.sim().Run();
    return std::make_pair(stats, rows);
  };
  // Re-upload file 0 into a second bucket with a x100 virtual scale.
  auto blob = cloud_.s3().GetDirect("data", "part-0.lpq");
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(cloud_.s3().CreateBucket("scaled").ok());
  ASSERT_TRUE(cloud_.s3()
                  .PutDirect("scaled", "part-0.lpq", *blob, 100.0)
                  .ok());
  auto [plain_stats, plain_rows] = scan("data");
  auto [scaled_stats, scaled_rows] = scan("scaled");
  EXPECT_EQ(scaled_rows, plain_rows);
  // The descaled chunk (4 KiB / 100 = ~41 B real) splits each row-group
  // extent (a few hundred real bytes — the codec crushes these columns)
  // into several GETs; the unscaled scan reads each extent whole.
  EXPECT_GT(scaled_stats.get_requests(), 2 * plain_stats.get_requests());
}

TEST_F(ScanFixture, MissingFileFailsHandler) {
  ScanStats stats;
  Status scan_status = Status::OK();
  cloud::FunctionConfig fn;
  fn.name = "missing";
  fn.memory_mib = 2048;
  fn.handler = [&](cloud::WorkerEnv& env, std::string) -> sim::Async<Status> {
    std::vector<FileRef> files = {FileRef{"data", "nope.lpq"}};
    auto r = co_await S3ParquetScan(env, files, ScanOptions{},
                                    [](const TableChunk&) {
                                      return Status::OK();
                                    });
    scan_status = r.status();
    co_return Status::OK();
  };
  ASSERT_TRUE(cloud_.faas().CreateFunction(fn).ok());
  sim::Spawn([](cloud::Cloud* c) -> sim::Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "missing", "");
  }(&cloud_));
  cloud_.sim().Run();
  EXPECT_TRUE(scan_status.IsNotFound());
}

}  // namespace
}  // namespace lambada::engine

// ---------------------------------------------------------------------------
// Sort / TopK
// ---------------------------------------------------------------------------

namespace lambada::engine {
namespace {

TEST(SortTest, SingleKeyAscendingDescending) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  TableChunk t(schema, {Column::Int64({3, 1, 2}),
                        Column::Float64({0.3, 0.1, 0.2})});
  auto asc = SortChunk(t, {{"k", true}});
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(asc->column(0).i64(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(asc->column(1).f64()[0], 0.1);
  auto desc = SortChunk(t, {{"k", false}});
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->column(0).i64(), (std::vector<int64_t>{3, 2, 1}));
}

TEST(SortTest, SecondaryKeyBreaksTiesStably) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"a", DataType::kInt64}, {"b", DataType::kInt64}});
  TableChunk t(schema, {Column::Int64({1, 1, 0, 0}),
                        Column::Int64({9, 8, 7, 9})});
  auto sorted = SortChunk(t, {{"a", true}, {"b", false}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->column(0).i64(), (std::vector<int64_t>{0, 0, 1, 1}));
  EXPECT_EQ(sorted->column(1).i64(), (std::vector<int64_t>{9, 7, 9, 8}));
}

TEST(SortTest, TopKLimits) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"v", DataType::kFloat64}});
  TableChunk t(schema, {Column::Float64({5, 1, 4, 2, 3})});
  auto top = TopK(t, {{"v", false}}, 2);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(top->column(0).f64()[0], 5);
  EXPECT_DOUBLE_EQ(top->column(0).f64()[1], 4);
  // Limit beyond size returns everything.
  auto all = TopK(t, {{"v", true}}, 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 5u);
}

TEST(SortTest, UnknownColumnFails) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"v", DataType::kFloat64}});
  TableChunk t(schema, {Column::Float64({1})});
  EXPECT_FALSE(SortChunk(t, {{"nope", true}}).ok());
}

}  // namespace
}  // namespace lambada::engine
