#!/usr/bin/env python3
"""Diffs regenerated BENCH_*.json against committed baselines.

The bench tables use unitless numeric cells with the unit in the header
("time [s]", "cost [USD]", "bandwidth [MiB/s]"), so perf metrics diff
numerically. This script matches rows between a baseline (a git ref by
default) and the working-tree files, classifies each column as
lower-is-better (times, costs) or higher-is-better (rates/bandwidth) from
its header, and flags changes beyond a threshold.

Exit code: 0 when clean or when only warnings were found without --strict;
1 when regressions were found and --strict is set; 2 on usage errors.

Usage:
  scripts/check_bench_regression.py                      # HEAD vs worktree
  scripts/check_bench_regression.py --threshold 0.05 --strict
  scripts/check_bench_regression.py --baseline-dir /tmp/old BENCH_fig09.json
"""

import argparse
import glob
import json
import os
import subprocess
import sys

LOWER_BETTER_MARKS = ("[s]", "[ms]", "[min]", "[usd", "time", "cost",
                      "latency")
HIGHER_BETTER_MARKS = ("ib/s]", "b/s]", "[1/s]", "bandwidth", "throughput")


def classify(header):
    """Returns 'lower', 'higher', or None for a column header."""
    h = header.lower()
    if any(m in h for m in HIGHER_BETTER_MARKS):
        return "higher"
    if any(m in h for m in LOWER_BETTER_MARKS):
        return "lower"
    return None


def as_number(cell):
    if isinstance(cell, (int, float)) and not isinstance(cell, bool):
        return float(cell)
    return None


def rows_by_key(table):
    """Maps a row's identity — its non-numeric cells — to its rows, in
    table order. Every numeric cell is treated as a metric: unit-headed
    ones get a direction, unit-less ones (counts, request totals) are
    diffed as plain changes. Keying on numeric cells would let a changed
    count silently un-key its row and dodge the diff entirely. Rows that
    share a string key (e.g. one per worker count) match positionally,
    which is stable because the sim benches emit rows deterministically.
    """
    out = {}
    for row in table.get("rows", []):
        key = tuple(str(cell) for cell in row if as_number(cell) is None)
        out.setdefault(key, []).append(row)
    return out


def iter_tables(doc):
    for ei, exp in enumerate(doc.get("experiments", [])):
        for i, table in enumerate(exp.get("tables", [])):
            # The experiment ordinal keeps labels unique: several
            # experiments in one file share an id (e.g. four 'Figure 12'
            # entries), and without it their tables would collide and be
            # diffed against the wrong baseline.
            caption = table.get("caption", "") or f"table{i}"
            yield f"{exp.get('id', '?')}#{ei} / {caption}", table


def compare_lambada(name, baseline, current, threshold, report):
    base_tables = dict(iter_tables(baseline))
    for label, table in iter_tables(current):
        base = base_tables.get(label)
        if base is None:
            report.note(f"{name}: new table '{label}' (no baseline)")
            continue
        headers = table.get("headers", [])
        if headers != base.get("headers", []):
            report.note(f"{name}: headers changed in '{label}' "
                        "(skipping row diff)")
            continue
        base_rows = rows_by_key(base)
        cur_rows = rows_by_key(table)
        for key in base_rows:
            if key not in cur_rows:
                report.note(f"{name}: {label} :: baseline row "
                            f"'{' '.join(key) or '(row)'}' disappeared; "
                            "not diffed")
        for key, rows in cur_rows.items():
            olds = base_rows.get(key)
            if olds is None or len(olds) != len(rows):
                # A key mismatch means an identity cell changed (rows keyed
                # by their non-metric cells) — a silent skip here would
                # hide whatever regressed alongside it, so say so.
                report.note(f"{name}: {label} :: row "
                            f"'{' '.join(key) or '(row)'}' has no matching "
                            "baseline (identity cells changed?); not diffed")
                continue
            for old_row, new_row in zip(olds, rows):
                for col, header in enumerate(headers):
                    old = as_number(old_row[col])
                    new = as_number(new_row[col])
                    if old is None or new is None or old <= 0:
                        continue
                    direction = classify(header)
                    delta = (new - old) / old
                    if direction == "higher":
                        delta = -delta
                    where = (f"{name}: {label} :: {' '.join(key) or '(row)'}"
                             f" :: {header}")
                    if direction is None:
                        # No unit to give a direction: any sizeable change
                        # in a deterministic figure is suspect, so flag it
                        # (counts as a regression under --strict).
                        if abs(delta) > threshold:
                            report.change(where, old, new, abs(delta))
                    elif delta > threshold:
                        report.regression(where, old, new, delta)
                    elif delta < -threshold:
                        report.improvement(where, old, new, -delta)


def compare_google_benchmark(name, baseline, current, threshold, report):
    base = {b.get("name"): b for b in baseline.get("benchmarks", [])}
    for bench in current.get("benchmarks", []):
        old_bench = base.get(bench.get("name"))
        if old_bench is None:
            continue
        old = as_number(old_bench.get("real_time"))
        new = as_number(bench.get("real_time"))
        if old is None or new is None or old <= 0:
            continue
        delta = (new - old) / old
        where = f"{name}: {bench.get('name')} real_time"
        if delta > threshold:
            report.regression(where, old, new, delta)
        elif delta < -threshold:
            report.improvement(where, old, new, -delta)


class Report:
    def __init__(self):
        self.regressions = []
        self.improvements = []
        self.notes = []

    def regression(self, where, old, new, delta):
        self.regressions.append(
            f"REGRESSION {where}: {old:g} -> {new:g} (+{delta:.1%})")

    def change(self, where, old, new, delta):
        self.regressions.append(
            f"CHANGED {where}: {old:g} -> {new:g} "
            f"(±{delta:.1%}, unclassified metric)")

    def improvement(self, where, old, new, delta):
        self.improvements.append(
            f"improvement {where}: {old:g} -> {new:g} (-{delta:.1%})")

    def note(self, text):
        self.notes.append(f"note: {text}")


def load_baseline(path, args, repo_root):
    if args.baseline_dir:
        candidate = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(candidate):
            return None
        with open(candidate, encoding="utf-8") as f:
            return json.load(f)
    rel = os.path.relpath(path, repo_root)
    proc = subprocess.run(
        ["git", "show", f"{args.baseline_ref}:{rel}"],
        cwd=repo_root, capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(
        description="Flag perf regressions between BENCH_*.json snapshots")
    parser.add_argument("files", nargs="*",
                        help="bench JSON files (default: BENCH_*.json)")
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding the baselines (default HEAD)")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory of baseline files (overrides the ref)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when regressions are found")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = args.files or sorted(glob.glob(os.path.join(repo_root,
                                                        "BENCH_*.json")))
    if not files:
        print("check_bench_regression: no BENCH_*.json files found",
              file=sys.stderr)
        return 2

    report = Report()
    compared = 0
    for path in files:
        name = os.path.basename(path)
        try:
            with open(path, encoding="utf-8") as f:
                current = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_bench_regression: cannot read {name}: {e}",
                  file=sys.stderr)
            return 2
        baseline = load_baseline(path, args, repo_root)
        if baseline is None:
            # Machine-local files (BENCH_micro_kernels.json) have no
            # committed baseline; that is expected, not an error.
            report.note(f"{name}: no baseline, skipped")
            continue
        compared += 1
        if current.get("schema") == "lambada-bench-v1":
            compare_lambada(name, baseline, current, args.threshold, report)
        elif "benchmarks" in current:
            compare_google_benchmark(name, baseline, current,
                                     args.threshold, report)
        else:
            report.note(f"{name}: unknown schema, skipped")

    for line in report.notes + report.improvements + report.regressions:
        print(line)
    print(f"check_bench_regression: {compared} file(s) compared, "
          f"{len(report.regressions)} regression(s), "
          f"{len(report.improvements)} improvement(s) beyond "
          f"{args.threshold:.0%}")
    if report.regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
