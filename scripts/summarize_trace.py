#!/usr/bin/env python3
"""Aggregates a lambada Chrome trace JSON (QueryReport::trace_path) into a
per-phase virtual-time breakdown.

The tracer's span taxonomy (docs/OBSERVABILITY.md) nests request-level
spans under operator spans, so a naive sum over every event double-counts.
This script sums only the top operator spans of each phase:

  scan      "scan" / "scan-build" spans (cat "scan")
  exchange  "exchange" spans (cat "exchange")
  join      "join" spans (cat "join")
  merge     the driver's "merge" span (cat "driver")

and reports, per phase: total virtual seconds across the fleet, the span
count, and min/max per span. Driver phases (plan, upload-plan, invoke,
collect) and instant-event tallies (faults, retries, hedges, re-invokes)
are listed separately. All times are virtual (simulated) seconds.

Usage: scripts/summarize_trace.py <trace.json>
Exit code: 0 on success, 1 on malformed input.
"""

import json
import sys
from collections import defaultdict

# (phase, category, span-name) selectors for the operator rows.
PHASES = [
    ("scan", "scan", {"scan", "scan-build"}),
    ("exchange", "exchange", {"exchange"}),
    ("join", "join", {"join"}),
    ("merge", "driver", {"merge"}),
]

DRIVER_PHASES = ["plan", "upload-plan", "invoke", "collect", "merge"]


def instant_group(name):
    """Folds instant-event names into stable tally keys."""
    if name.startswith("reinvoke "):
        return "reinvoke"
    return name


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-3].strip(), file=sys.stderr)
        return 1
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            trace = json.load(f)
        events = trace["traceEvents"]
    except (OSError, ValueError, KeyError) as e:
        print(f"error: cannot read trace: {e}", file=sys.stderr)
        return 1

    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]

    print(f"{argv[1]}: {len(spans)} spans, {len(instants)} instants, "
          f"{len({e['pid'] for e in spans})} tracks")

    root = next((e for e in spans if e.get("name") == "query"), None)
    if root is not None:
        print(f"query: {root['dur'] / 1e6:.6f} s virtual")

    print("\nper-phase virtual time (top operator spans only):")
    print(f"  {'phase':<10} {'total [s]':>12} {'spans':>7} "
          f"{'min [s]':>10} {'max [s]':>10}")
    for phase, cat, names in PHASES:
        durs = [e["dur"] / 1e6 for e in spans
                if e.get("cat") == cat and e.get("name") in names]
        if not durs:
            print(f"  {phase:<10} {'-':>12} {0:>7}")
            continue
        print(f"  {phase:<10} {sum(durs):>12.6f} {len(durs):>7} "
              f"{min(durs):>10.6f} {max(durs):>10.6f}")

    driver = {e["name"]: e["dur"] / 1e6 for e in spans
              if e.get("cat") == "driver" and e.get("name") in DRIVER_PHASES}
    if driver:
        print("\ndriver phases:")
        for name in DRIVER_PHASES:
            if name in driver:
                print(f"  {name:<12} {driver[name]:.6f} s")

    if instants:
        tallies = defaultdict(int)
        for e in instants:
            tallies[instant_group(e.get("name", "?"))] += 1
        print("\ninstant events:")
        for name in sorted(tallies):
            print(f"  {name:<24} {tallies[name]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
