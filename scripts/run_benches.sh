#!/usr/bin/env bash
# Runs every paper-figure bench binary and writes BENCH_<figure>.json files
# to the repo root — the perf-trajectory record that optimisation PRs diff
# against. Console benches emit JSON via the bench_util.h reporter
# (LAMBADA_BENCH_JSON); bench_micro_kernels uses google-benchmark's native
# JSON writer.
#
# Usage: scripts/run_benches.sh [build-dir]   (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S "$ROOT"
fi
cmake --build "$BUILD" --target benches -j "$JOBS"

# bench_fig01_architectures -> fig01; bench_tab03_exchange -> tab03;
# bench_join_exchange -> join; bench_ablation_stats_index stays whole.
figure_name() {
  local stem="${1#bench_}"
  case "$stem" in
    fig[0-9]*|tab[0-9]*) echo "${stem%%_*}" ;;
    join_*) echo "join" ;;
    *) echo "$stem" ;;
  esac
}

ran=0
for bin in "$BUILD"/bench/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  base="$(basename "$bin")"
  fig="$(figure_name "$base")"
  out="$ROOT/BENCH_${fig}.json"
  echo "== $base -> BENCH_${fig}.json"
  # Write to a temp file and move into place only after validation, so the
  # committed trajectory files are never left stale, deleted, or mixed
  # across runs when a bench fails mid-loop.
  tmp="$out.tmp"
  rm -f "$tmp"
  if [ "$base" = "bench_micro_kernels" ]; then
    "$bin" --benchmark_min_time=0.05 \
           --benchmark_out="$tmp" --benchmark_out_format=json >/dev/null
  else
    LAMBADA_BENCH_JSON="$tmp" "$bin" >/dev/null
  fi
  [ -s "$tmp" ] || { echo "error: $base produced no JSON" >&2; exit 1; }
  if command -v python3 >/dev/null; then
    python3 -m json.tool "$tmp" >/dev/null \
      || { echo "error: $base wrote invalid JSON" >&2; exit 1; }
  fi
  mv "$tmp" "$out"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench binaries found under $BUILD/bench" >&2
  exit 1
fi
echo "wrote $ran BENCH_*.json files to $ROOT"

# Flag slowdowns beyond the threshold against the committed baselines.
# Warn-only by default (the CI freshness gate is what enforces determinism);
# set LAMBADA_BENCH_STRICT=1 to fail on regressions.
if command -v python3 >/dev/null; then
  strict_flag=""
  [ "${LAMBADA_BENCH_STRICT:-0}" = "1" ] && strict_flag="--strict"
  python3 "$ROOT/scripts/check_bench_regression.py" \
    --baseline-ref HEAD ${strict_flag:+$strict_flag}
fi
