#!/usr/bin/env python3
"""Keeps the docs from rotting. Six checks, run in CI:

1. Every bench binary (bench/bench_*.cc) must appear in the README's
   figure tables, and every committed BENCH_*.json trajectory file must
   be named there too, so new figures cannot land undocumented.
2. Every intra-repo markdown link ([text](path), non-http, non-anchor)
   in the repo's markdown files must resolve to an existing file or
   directory.
3. docs/FORMAT.md's encoding-tag table must match the Encoding enum in
   src/format/encoding.h exactly (same names, same values), so the
   on-disk spec cannot silently drift from the code.
4. Every TPC-H query the workload declares (TpchQ<N> in
   src/workload/tpch.h) must have a row in the README's TPC-H coverage
   matrix, and every matrix row must name a declared query, so the
   matrix can neither lag behind nor overstate the implementation.
5. docs/OBSERVABILITY.md's metric-name registry table must match the
   declaration table in src/obs/metrics.cc exactly (same names, same
   types, both directions), so the documented observability surface
   cannot drift from the code.
6. docs/SERVING.md must name every serving-surface metric declared in
   src/obs/metrics.cc (the meta_cache.*, shared_scan.*, and serving.*
   families) in backticks, and every backticked name in those families
   must be declared, so the serving doc cannot drift from the code.

Exit code: 0 when clean, 1 with one line per violation otherwise.

Usage: scripts/check_docs.py [repo-root]
"""

import glob
import os
import re
import sys

# Markdown files to scan for links; build trees and vendored dirs are not
# documentation.
SKIP_DIRS = {"build", "build-tsan", ".git", ".claude"}

# [text](target) — excluding images is unnecessary (same resolution rule).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def check_bench_rows(root, errors):
    readme_path = os.path.join(root, "README.md")
    try:
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
    except OSError as e:
        errors.append(f"README.md: unreadable ({e})")
        return
    for src in sorted(glob.glob(os.path.join(root, "bench", "bench_*.cc"))):
        name = os.path.splitext(os.path.basename(src))[0]
        if name == "bench_main":
            continue  # The shared JSON reporter, not a bench binary.
        if f"`{name}`" not in readme:
            errors.append(
                f"README.md: bench binary {name} has no figure-table row "
                f"(add `| ... | `{name}` | BENCH_*.json |`)")
    # The committed trajectory files are the repo's perf record; each one
    # must be documented alongside the binary that produces it.
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        name = os.path.basename(path)
        if f"`{name}`" not in readme:
            errors.append(
                f"README.md: trajectory file {name} is committed but never "
                f"mentioned (add it to the figure table)")


def check_links(root, errors):
    for md in markdown_files(root):
        rel_md = os.path.relpath(md, root)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z]+:", target):  # http:, https:, mailto: ...
                continue
            path = target.split("#", 1)[0]
            if not path:  # Pure anchor.
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md),
                                                     path))
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}: broken link -> {target}")


# `kName = N,` entries inside the `enum class Encoding` block.
ENUM_ENTRY_RE = re.compile(r"^\s*(k\w+)\s*=\s*(\d+)\s*,", re.MULTILINE)
# FORMAT.md encoding-table rows: `| 0   | `kPlain` | ... |`.
DOC_TAG_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`(k\w+)`", re.MULTILINE)


def check_encoding_tags(root, errors):
    header_path = os.path.join(root, "src", "format", "encoding.h")
    doc_path = os.path.join(root, "docs", "FORMAT.md")
    try:
        with open(header_path, encoding="utf-8") as f:
            header = f.read()
        with open(doc_path, encoding="utf-8") as f:
            doc = f.read()
    except OSError as e:
        errors.append(f"encoding tag check: unreadable input ({e})")
        return
    enum_match = re.search(r"enum class Encoding[^{]*\{(.*?)\};", header,
                           re.DOTALL)
    if not enum_match:
        errors.append("src/format/encoding.h: Encoding enum not found")
        return
    enum_tags = {name: int(value)
                 for name, value in ENUM_ENTRY_RE.findall(enum_match.group(1))}
    if not enum_tags:
        errors.append("src/format/encoding.h: Encoding enum has no entries")
        return
    # The doc's value-encoding table lists `| value | `kName` |` rows; codec
    # rows reuse names like `kRle`, so compare (value, name) pairs from the
    # section between the "Value encodings" and "Compression" headings.
    section = doc.split("## Value encodings", 1)
    section = section[1].split("## Compression", 1)[0] if len(section) == 2 \
        else ""
    doc_tags = {name: int(value)
                for value, name in DOC_TAG_ROW_RE.findall(section)}
    for name, value in sorted(enum_tags.items(), key=lambda kv: kv[1]):
        if name not in doc_tags:
            errors.append(
                f"docs/FORMAT.md: encoding tag {name} (= {value}) missing "
                f"from the value-encodings table")
        elif doc_tags[name] != value:
            errors.append(
                f"docs/FORMAT.md: encoding tag {name} documented as "
                f"{doc_tags[name]} but the enum says {value}")
    for name in sorted(doc_tags):
        if name not in enum_tags:
            errors.append(
                f"docs/FORMAT.md: encoding tag {name} documented but not in "
                f"src/format/encoding.h")


# `core::Query TpchQ3(` declarations in the workload header.
TPCH_DECL_RE = re.compile(r"core::Query\s+TpchQ(\d+)\s*\(")
# Coverage-matrix rows: `| Q12 (shipping modes) | ... |`.
TPCH_ROW_RE = re.compile(r"^\|\s*Q(\d+)\b", re.MULTILINE)


def check_tpch_matrix(root, errors):
    header_path = os.path.join(root, "src", "workload", "tpch.h")
    readme_path = os.path.join(root, "README.md")
    try:
        with open(header_path, encoding="utf-8") as f:
            header = f.read()
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
    except OSError as e:
        errors.append(f"tpch matrix check: unreadable input ({e})")
        return
    declared = set(TPCH_DECL_RE.findall(header))
    if not declared:
        errors.append("src/workload/tpch.h: no TpchQ<N> declarations found")
        return
    section = readme.split("## TPC-H coverage", 1)
    if len(section) != 2:
        errors.append("README.md: '## TPC-H coverage' section not found")
        return
    body = section[1].split("\n## ", 1)[0]
    documented = set(TPCH_ROW_RE.findall(body))
    for q in sorted(declared - documented, key=int):
        errors.append(
            f"README.md: TpchQ{q} is implemented (src/workload/tpch.h) but "
            f"has no row in the TPC-H coverage matrix")
    for q in sorted(documented - declared, key=int):
        errors.append(
            f"README.md: the TPC-H coverage matrix lists Q{q} but "
            f"src/workload/tpch.h declares no TpchQ{q}")


# metrics.cc declaration-table entries keep id, name, and type on one line:
# `{Metric::kRowsScanned, "scan.rows_scanned", MetricType::kCounter,`.
METRIC_DECL_RE = re.compile(
    r"\{Metric::k\w+,\s*\"([\w.]+)\",\s*MetricType::k(\w+),")
# OBSERVABILITY.md registry rows: `| `scan.rows_scanned` | counter | ... |`.
METRIC_DOC_ROW_RE = re.compile(
    r"^\|\s*`([\w.]+)`\s*\|\s*(counter|gauge|histogram)\s*\|", re.MULTILINE)


def check_metric_registry(root, errors):
    src_path = os.path.join(root, "src", "obs", "metrics.cc")
    doc_path = os.path.join(root, "docs", "OBSERVABILITY.md")
    try:
        with open(src_path, encoding="utf-8") as f:
            src = f.read()
        with open(doc_path, encoding="utf-8") as f:
            doc = f.read()
    except OSError as e:
        errors.append(f"metric registry check: unreadable input ({e})")
        return
    declared = {name: mtype.lower()
                for name, mtype in METRIC_DECL_RE.findall(src)}
    if not declared:
        errors.append("src/obs/metrics.cc: no metric declarations found")
        return
    section = doc.split("## Metric name registry", 1)
    body = section[1].split("\n## ", 1)[0] if len(section) == 2 else ""
    documented = dict(METRIC_DOC_ROW_RE.findall(body))
    if not documented:
        errors.append(
            "docs/OBSERVABILITY.md: '## Metric name registry' table not found")
        return
    for name in sorted(set(declared) - set(documented)):
        errors.append(
            f"docs/OBSERVABILITY.md: metric {name} is declared "
            f"(src/obs/metrics.cc) but missing from the registry table")
    for name in sorted(set(documented) - set(declared)):
        errors.append(
            f"docs/OBSERVABILITY.md: metric {name} is documented but "
            f"src/obs/metrics.cc declares no such metric")
    for name in sorted(set(declared) & set(documented)):
        if declared[name] != documented[name]:
            errors.append(
                f"docs/OBSERVABILITY.md: metric {name} documented as "
                f"{documented[name]} but declared as {declared[name]}")


# The serving-surface metric families SERVING.md must stay in sync with.
SERVING_METRIC_PREFIXES = ("meta_cache.", "shared_scan.", "serving.")
# Backticked dotted names in SERVING.md prose: `meta_cache.hits`.
SERVING_DOC_NAME_RE = re.compile(r"`([a-z_]+\.[a-z_.]+)`")


def check_serving_metrics(root, errors):
    src_path = os.path.join(root, "src", "obs", "metrics.cc")
    doc_path = os.path.join(root, "docs", "SERVING.md")
    try:
        with open(src_path, encoding="utf-8") as f:
            src = f.read()
        with open(doc_path, encoding="utf-8") as f:
            doc = f.read()
    except OSError as e:
        errors.append(f"serving metric check: unreadable input ({e})")
        return
    declared = {name for name, _ in METRIC_DECL_RE.findall(src)
                if name.startswith(SERVING_METRIC_PREFIXES)}
    if not declared:
        errors.append(
            "src/obs/metrics.cc: no serving-surface metrics declared "
            "(expected meta_cache.*/shared_scan.*/serving.* entries)")
        return
    documented = {name for name in SERVING_DOC_NAME_RE.findall(doc)
                  if name.startswith(SERVING_METRIC_PREFIXES)}
    for name in sorted(declared - documented):
        errors.append(
            f"docs/SERVING.md: metric {name} is declared "
            f"(src/obs/metrics.cc) but never named in the serving doc")
    for name in sorted(documented - declared):
        errors.append(
            f"docs/SERVING.md: metric {name} is named but "
            f"src/obs/metrics.cc declares no such metric")


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir))
    errors = []
    check_bench_rows(root, errors)
    check_links(root, errors)
    check_encoding_tags(root, errors)
    check_tpch_matrix(root, errors)
    check_metric_registry(root, errors)
    check_serving_metrics(root, errors)
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        return 1
    print("check_docs: README bench rows, trajectory files, markdown links, "
          "encoding tags, the TPC-H matrix, the metric registry, and the "
          "serving metric names are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
