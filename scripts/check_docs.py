#!/usr/bin/env python3
"""Keeps the docs from rotting. Two checks, run in CI:

1. Every bench binary (bench/bench_*.cc) must appear in the README's
   figure tables, so new figures cannot land undocumented.
2. Every intra-repo markdown link ([text](path), non-http, non-anchor)
   in the repo's markdown files must resolve to an existing file or
   directory.

Exit code: 0 when clean, 1 with one line per violation otherwise.

Usage: scripts/check_docs.py [repo-root]
"""

import glob
import os
import re
import sys

# Markdown files to scan for links; build trees and vendored dirs are not
# documentation.
SKIP_DIRS = {"build", "build-tsan", ".git", ".claude"}

# [text](target) — excluding images is unnecessary (same resolution rule).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def check_bench_rows(root, errors):
    readme_path = os.path.join(root, "README.md")
    try:
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
    except OSError as e:
        errors.append(f"README.md: unreadable ({e})")
        return
    for src in sorted(glob.glob(os.path.join(root, "bench", "bench_*.cc"))):
        name = os.path.splitext(os.path.basename(src))[0]
        if name == "bench_main":
            continue  # The shared JSON reporter, not a bench binary.
        if f"`{name}`" not in readme:
            errors.append(
                f"README.md: bench binary {name} has no figure-table row "
                f"(add `| ... | `{name}` | BENCH_*.json |`)")


def check_links(root, errors):
    for md in markdown_files(root):
        rel_md = os.path.relpath(md, root)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z]+:", target):  # http:, https:, mailto: ...
                continue
            path = target.split("#", 1)[0]
            if not path:  # Pure anchor.
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md),
                                                     path))
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}: broken link -> {target}")


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir))
    errors = []
    check_bench_rows(root, errors)
    check_links(root, errors)
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        return 1
    print("check_docs: README bench rows and markdown links are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
