// Straggler/failure mitigation study (ROADMAP "fault-tolerant fleets"):
// p50/p99 query latency and cost of a TPC-H Q1 fleet under injected worker
// crashes, degraded-host stragglers, and flaky service requests — with the
// driver's mitigation (progress deadlines, speculative re-invocation,
// first-result-wins dedup, GET hedging) switched off and on. The paper's
// economics hinge on the slowest worker: without mitigation a single crashed
// worker pins the query at the timeout, and a degraded host stretches the
// tail by the slowdown factor.

#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

namespace {

// Short virtual timeout so unmitigated runs with a dead worker end at the
// deadline instead of the default hour; a clean fleet finishes well under it.
constexpr double kTimeoutS = 60.0;
constexpr int kReps = 12;

struct RunSample {
  double latency_s = 0;
  double cost_usd = 0;
  int64_t attempts = 0;
  int reinvoked = 0;
  int64_t s3_retries = 0;
  int64_t hedge_wins = 0;
  bool completed = false;
};

struct Scenario {
  std::string name;
  cloud::FaultPlan plan;  ///< Seed is overwritten per rep.
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> out;
  out.push_back({"clean", {}});
  cloud::FaultPlan crash2;
  crash2.enabled = true;
  crash2.worker_crash_rate = 0.02;
  out.push_back({"crash 2%", crash2});
  cloud::FaultPlan crash5 = crash2;
  crash5.worker_crash_rate = 0.05;
  out.push_back({"crash 5%", crash5});
  cloud::FaultPlan strag;
  strag.enabled = true;
  strag.straggler_rate = 0.3;
  strag.straggler_cpu_factor = 0.05;
  strag.straggler_net_factor = 0.05;
  out.push_back({"straggler 30%", strag});
  cloud::FaultPlan mixed;
  mixed.enabled = true;
  mixed.worker_crash_rate = 0.05;
  mixed.straggler_rate = 0.2;
  mixed.straggler_cpu_factor = 0.05;
  mixed.straggler_net_factor = 0.05;
  mixed.s3_get_error_rate = 0.01;
  mixed.s3_put_error_rate = 0.01;
  mixed.s3_slowdown_rate = 0.05;
  mixed.invoke_error_rate = 0.02;
  out.push_back({"mixed", mixed});
  return out;
}

/// One fresh deployment, one Q1 fleet. A timed-out run is charged the full
/// deadline as latency and whatever the ledger accrued as cost.
RunSample RunOnce(cloud::FaultPlan plan, uint64_t seed, bool mitigate) {
  plan.seed = seed;
  cloud::CloudConfig cfg;
  cfg.fault = plan;
  cloud::Cloud cloud(cfg);
  core::DriverOptions dopts;
  dopts.query_timeout_s = kTimeoutS;
  core::Driver driver(&cloud, dopts);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions li;
  li.num_rows = 8000;
  li.num_files = 8;
  li.row_groups_per_file = 4;
  li.seed = 77;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));

  cloud::CostSnapshot before = cloud.ledger().Snapshot();
  core::RunOptions ropts;
  ropts.mitigation.enabled = mitigate;
  ropts.mitigation.max_attempts = 6;
  ropts.mitigation.stall_timeout_s = 10.0;
  ropts.hedge_gets = mitigate;
  auto report =
      driver.RunToCompletion(workload::TpchQ1("s3://tpch/li/*.lpq"), ropts);

  RunSample s;
  s.cost_usd = (cloud.ledger().Snapshot() - before).TotalUsd(cloud.pricing());
  if (report.ok()) {
    s.completed = true;
    s.latency_s = report->latency_s;
    s.attempts = report->total_attempts;
    s.reinvoked = report->reinvoked_workers;
    s.s3_retries = report->worker_s3_retries;
    s.hedge_wins = report->hedge_wins;
  } else {
    LAMBADA_CHECK(report.status().code() == StatusCode::kDeadlineExceeded)
        << report.status().ToString();
    s.latency_s = kTimeoutS;
  }
  return s;
}

}  // namespace

int main() {
  Banner("Straggler",
         "fleet latency/cost under injected faults, mitigation off vs on");
  Notef("TPC-H Q1, 8 workers, %d seeded reps per cell, %.0f s virtual "
        "query timeout; mitigation = progress deadlines + speculative "
        "re-invocation + result dedup + GET hedging",
        kReps, kTimeoutS);
  Table t({"scenario", "mitigation", "p50 [s]", "p99 [s]", "cost p50 [USD]",
           "attempts", "reinvoked", "timeouts"},
          "Q1 fleet under fault plans");
  // Mitigation telemetry totals across every mitigated cell — the PR 6
  // machinery's own account of what it did (re-invocation attempts, S3
  // retries absorbed by workers, hedged GETs won by the backup request).
  int64_t mitigated_attempts = 0;
  int64_t mitigated_s3_retries = 0;
  int64_t mitigated_hedge_wins = 0;
  for (const Scenario& sc : Scenarios()) {
    for (bool mitigate : {false, true}) {
      std::vector<double> lat;
      std::vector<double> cost;
      int64_t attempts = 0;
      int64_t reinvoked = 0;
      int timeouts = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        RunSample s = RunOnce(sc.plan, 1000 + 17 * rep, mitigate);
        lat.push_back(s.latency_s);
        cost.push_back(s.cost_usd);
        attempts += s.attempts;
        reinvoked += s.reinvoked;
        if (!s.completed) ++timeouts;
        if (mitigate) {
          mitigated_attempts += s.attempts;
          mitigated_s3_retries += s.s3_retries;
          mitigated_hedge_wins += s.hedge_wins;
        }
      }
      t.Row({sc.name, mitigate ? "on" : "off",
             Fmt("%.3f", Percentile(lat, 0.5)), Fmt("%.3f", Percentile(lat, 0.99)),
             Fmt("%.6f", Percentile(cost, 0.5)), FmtInt(attempts),
             FmtInt(reinvoked), FmtInt(timeouts)});
    }
  }
  Notef("mitigation telemetry (all mitigated cells): total_attempts=%lld "
        "worker_s3_retries=%lld hedge_wins=%lld",
        static_cast<long long>(mitigated_attempts),
        static_cast<long long>(mitigated_s3_retries),
        static_cast<long long>(mitigated_hedge_wins));
  std::printf(
      "\nUnmitigated fleets pin crashed-worker queries at the deadline and "
      "ride out degraded hosts; mitigation re-invokes and hedges instead.\n");
  return 0;
}
