// Reproduces Figure 7 of the paper: impact of the request ("chunk") size
// on scan bandwidth and request cost. A 1 GB file is downloaded with
// requests of 0.5-16 MiB over 1/2/4 connections; the cost line shows the
// price of the GET requests for 1000 runs, annotated with its ratio to the
// worker cost of the same scan.
//
// A second experiment runs the tradeoff through the real storage format:
// an encoded .lpq LINEITEM dataset is scanned (Q6-style projection +
// filter push-down) at several chunk sizes plus the adaptive choice
// (core::AdaptiveChunkBytes), reporting the post-encoding bytes actually
// moved — and, against a plain-encoded copy of the same rows, the bytes
// the dictionary/RLE/delta encodings save.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/planner.h"
#include "engine/scan.h"
#include "format/source.h"
#include "workload/tpch.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

struct ChunkResult {
  double bandwidth_mib_s = 0;
  int64_t requests = 0;
  double worker_seconds = 0;
};

ChunkResult DownloadChunked(int64_t chunk_bytes, int connections) {
  const int64_t kFileBytes = 1000 * kMB;
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  // Real bytes equal to the virtual size in "request space": the source
  // issues one GET per chunk of the real range, so real size must equal
  // the modeled file size for request counts to be faithful. Use a small
  // real buffer with scale 1 per chunk... instead we create a real-sized
  // sparse stand-in: 1 byte per KiB scaled 1024x would distort ranges, so
  // we allocate the file at 1/1024 of the size and scale chunk counts by
  // issuing ranges over the virtual extent.
  //
  // Simpler and exact: allocate the file for real. 1 GB of zeros is cheap.
  std::vector<uint8_t> blob(static_cast<size_t>(kFileBytes), 0);
  LAMBADA_CHECK_OK(
      cloud.s3().PutDirect("data", "file", Buffer::FromVector(std::move(blob))));

  ChunkResult result;
  cloud::FunctionConfig fn;
  fn.name = "downloader";
  fn.memory_mib = 3008;  // "the largest available serverless workers".
  fn.handler = [&, chunk_bytes, connections](cloud::WorkerEnv& env,
                                             std::string) -> Async<Status> {
    cloud::S3Client client(env.services().s3, env.net());
    format::S3Source::Options opts;
    opts.chunk_bytes = chunk_bytes;
    opts.connections = connections;
    format::S3Source source(client, "data", "file", opts);
    double t0 = env.sim()->Now();
    auto r = co_await source.ReadAt(0, kFileBytes);
    LAMBADA_CHECK(r.ok());
    double elapsed = env.sim()->Now() - t0;
    result.bandwidth_mib_s = static_cast<double>(kFileBytes) / elapsed / kMiB;
    result.requests = source.request_count();
    result.worker_seconds = elapsed;
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  sim::Spawn([](cloud::Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "downloader", "");
  }(&cloud));
  cloud.sim().Run();
  return result;
}

struct LpqScanResult {
  double seconds = 0;
  int64_t gets = 0;
  int64_t bytes_moved = 0;
  int64_t rows_emitted = 0;
  int64_t rows_dict_filtered = 0;
};

/// Scans every file under `prefix` with the given projection and filter
/// pushed down, at the given request size, inside one simulated worker.
LpqScanResult ScanLineitem(cloud::Cloud& cloud, const std::string& prefix,
                           int num_files, int64_t chunk_bytes,
                           int connections,
                           std::vector<std::string> projection,
                           engine::ExprPtr filter) {
  // The handler outlives this call inside the Cloud's function registry,
  // so it must own everything it touches: the result lives behind a
  // shared_ptr and all parameters are captured by value. Names are still
  // unique per call because CreateFunction is idempotent and would keep
  // the previous handler.
  auto result = std::make_shared<LpqScanResult>();
  cloud::FunctionConfig fn;
  static int run_counter = 0;
  fn.name = "lpq-scan-" + std::to_string(run_counter++);
  fn.memory_mib = 3008;
  fn.handler = [result, prefix, num_files, chunk_bytes, connections,
                projection,
                filter](cloud::WorkerEnv& env, std::string) -> Async<Status> {
    engine::ScanOptions opts;
    opts.projection = projection;
    opts.filter = filter;
    opts.source.chunk_bytes = chunk_bytes;
    opts.source.connections = connections;
    std::vector<engine::FileRef> files;
    for (int f = 0; f < num_files; ++f) {
      char name[64];
      std::snprintf(name, sizeof(name), "%spart-%04d.lpq", prefix.c_str(), f);
      files.push_back(engine::FileRef{"tpch", name});
    }
    double t0 = env.sim()->Now();
    auto stats = co_await engine::S3ParquetScan(
        env, files, opts, [](const engine::TableChunk&) {
          return Status::OK();
        });
    LAMBADA_CHECK(stats.ok()) << stats.status().ToString();
    result->seconds = env.sim()->Now() - t0;
    result->gets = stats->get_requests();
    result->bytes_moved = stats->bytes_moved();
    result->rows_emitted = stats->rows_emitted();
    result->rows_dict_filtered = stats->rows_dict_filtered();
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  sim::Spawn([](cloud::Cloud* c, std::string name) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              name, "");
  }(&cloud, fn.name));
  cloud.sim().Run();
  return *result;
}

}  // namespace

int main() {
  Banner("Figure 7", "chunk size vs scan bandwidth and request cost");
  cloud::Pricing pricing;
  Table t({"chunk [MiB]", "conns", "bandwidth [MiB/s]", "requests",
           "cost 1k runs [USD]", "req/worker [x]"},
          19);
  for (int64_t chunk_mib : {1, 2, 4, 8, 16}) {
    // (0.5 MiB handled separately below to keep the loop integral.)
    for (int conns : {1, 2, 4}) {
      auto r = DownloadChunked(chunk_mib * kMiB, conns);
      double request_cost_1k =
          static_cast<double>(r.requests) * pricing.s3_get * 1000.0;
      double worker_cost_1k = r.worker_seconds * 2.0 *
                              pricing.lambda_gib_second * 1000.0;
      t.Row({Fmt("%.1f", static_cast<double>(chunk_mib)),
             FmtInt(conns), Fmt("%.0f", r.bandwidth_mib_s),
             FmtInt(r.requests), Fmt("%.4g", request_cost_1k),
             Fmt("%.2f", request_cost_1k / worker_cost_1k)});
    }
  }
  {
    auto r = DownloadChunked(kMiB / 2, 4);
    double request_cost_1k =
        static_cast<double>(r.requests) * pricing.s3_get * 1000.0;
    double worker_cost_1k =
        r.worker_seconds * 2.0 * pricing.lambda_gib_second * 1000.0;
    t.Row({"0.5", "4", Fmt("%.0f", r.bandwidth_mib_s),
           FmtInt(r.requests), Fmt("%.4g", request_cost_1k),
           Fmt("%.2f", request_cost_1k / worker_cost_1k)});
  }
  std::printf(
      "\nPaper: 1 connection needs 16 MB chunks to approach peak; 4\n"
      "connections reach it with 1 MB chunks; at 1 MiB chunks the requests\n"
      "cost ~1.7x the workers, dropping to ~0.11x at 16 MiB.\n");

  // ---- The tradeoff through the storage format: encoded bytes moved. ----
  Banner("Figure 7b",
         "encoded .lpq scan: chunk size, adaptive choice, bytes moved");
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("tpch"));
  workload::LoadOptions load;
  // Big enough that one row group's projected columns span several chunks
  // (the sweep below actually exercises the request-size tradeoff).
  load.num_rows = 2000000;
  load.num_files = 2;
  load.row_groups_per_file = 2;
  // Light block codec: with GZIP-class compression on top, the codec
  // absorbs most of what the value encodings save and the bytes-moved
  // delta shrinks to a few percent; the lightweight pairing is where
  // encodings carry the compression (and where real engines run them).
  load.codec = compress::CodecId::kLz;
  auto encoded = workload::LoadLineitem(&cloud.s3(), "tpch", "enc/", load);
  LAMBADA_CHECK_OK(encoded.status());
  load.auto_encoding = false;
  auto plain = workload::LoadLineitem(&cloud.s3(), "tpch", "plain/", load);
  LAMBADA_CHECK_OK(plain.status());

  const int64_t adaptive =
      core::AdaptiveChunkBytes(encoded->real_bytes, 1);
  Notef("dataset: %lld rows, %d files, %.1f MiB auto-encoded vs %.1f MiB "
        "plain; adaptive chunk = %.1f MiB",
        static_cast<long long>(encoded->rows), encoded->files,
        static_cast<double>(encoded->real_bytes) / kMiB,
        static_cast<double>(plain->real_bytes) / kMiB,
        static_cast<double>(adaptive) / kMiB);

  // Q1's scan shape: 7 attributes, 98% of rows selected — the figure's
  // worst case for pruning and therefore the honest one for bytes moved.
  using engine::Col;
  using engine::Lit;
  const std::vector<std::string> q1_proj = {
      "l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
      "l_discount",   "l_tax",        "l_shipdate"};
  auto q1_filter = [] {
    return Col("l_shipdate") <= Lit(workload::Q1CutoffDate());
  };
  LpqScanResult adaptive_run;
  {
    Table t({"chunk [MiB]", "time [s]", "GETs", "bytes moved [MiB]"},
            Table::kDefaultWidth + 4, "Q1 scan, auto-encoded, 1 connection");
    for (int64_t chunk_mib : {1, 4, 8, 16}) {
      auto r = ScanLineitem(cloud, "enc/", load.num_files, chunk_mib * kMiB,
                            1, q1_proj, q1_filter());
      t.Row({Fmt("%.1f", static_cast<double>(chunk_mib)),
             Fmt("%.3f", r.seconds), FmtInt(r.gets),
             Fmt("%.2f", static_cast<double>(r.bytes_moved) / kMiB)});
    }
    adaptive_run = ScanLineitem(cloud, "enc/", load.num_files, adaptive, 1,
                                q1_proj, q1_filter());
    t.Row({Fmt("%.1f", static_cast<double>(adaptive) / kMiB),
           Fmt("%.3f", adaptive_run.seconds), FmtInt(adaptive_run.gets),
           Fmt("%.2f", static_cast<double>(adaptive_run.bytes_moved) / kMiB)});
    Notef("last row is the adaptive choice (AdaptiveChunkBytes)");
  }
  {
    Table t({"encoding", "file [MiB]", "bytes moved [MiB]", "GETs",
             "time [s]"},
            Table::kDefaultWidth + 6, "encoding ablation at adaptive chunk");
    const LpqScanResult& enc_r = adaptive_run;  // Same scan, same inputs.
    auto plain_r = ScanLineitem(cloud, "plain/", load.num_files, adaptive, 1,
                                q1_proj, q1_filter());
    LAMBADA_CHECK_EQ(enc_r.rows_emitted, plain_r.rows_emitted);
    t.Row({"auto", Fmt("%.2f", static_cast<double>(encoded->real_bytes) / kMiB),
           Fmt("%.2f", static_cast<double>(enc_r.bytes_moved) / kMiB),
           FmtInt(enc_r.gets), Fmt("%.3f", enc_r.seconds)});
    t.Row({"plain",
           Fmt("%.2f", static_cast<double>(plain->real_bytes) / kMiB),
           Fmt("%.2f", static_cast<double>(plain_r.bytes_moved) / kMiB),
           FmtInt(plain_r.gets), Fmt("%.3f", plain_r.seconds)});
    Notef("encoding saves %.0f%% of the bytes moved by this scan",
          100.0 * (1.0 - static_cast<double>(enc_r.bytes_moved) /
                             static_cast<double>(plain_r.bytes_moved)));
  }
  {
    // An equality filter on a dict-encoded column: the reader maps it to a
    // code range and drops rows before materialization and the residual.
    Table t({"encoding", "rows emitted", "rows dict-filtered",
             "bytes moved [MiB]"},
            Table::kDefaultWidth + 6, "dictionary-code predicate push-down");
    std::vector<std::string> proj = {"l_shipmode", "l_extendedprice"};
    auto mode_filter = [] { return Col("l_shipmode") == Lit(3); };
    auto enc_r = ScanLineitem(cloud, "enc/", load.num_files, adaptive, 1,
                              proj, mode_filter());
    auto plain_r = ScanLineitem(cloud, "plain/", load.num_files, adaptive, 1,
                                proj, mode_filter());
    LAMBADA_CHECK_EQ(enc_r.rows_emitted, plain_r.rows_emitted);
    t.Row({"auto", FmtInt(enc_r.rows_emitted),
           FmtInt(enc_r.rows_dict_filtered),
           Fmt("%.2f", static_cast<double>(enc_r.bytes_moved) / kMiB)});
    t.Row({"plain", FmtInt(plain_r.rows_emitted),
           FmtInt(plain_r.rows_dict_filtered),
           Fmt("%.2f", static_cast<double>(plain_r.bytes_moved) / kMiB)});
  }
  return 0;
}
