// Reproduces Figure 7 of the paper: impact of the request ("chunk") size
// on scan bandwidth and request cost. A 1 GB file is downloaded with
// requests of 0.5-16 MiB over 1/2/4 connections; the cost line shows the
// price of the GET requests for 1000 runs, annotated with its ratio to the
// worker cost of the same scan.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "format/source.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

struct ChunkResult {
  double bandwidth_mib_s = 0;
  int64_t requests = 0;
  double worker_seconds = 0;
};

ChunkResult DownloadChunked(int64_t chunk_bytes, int connections) {
  const int64_t kFileBytes = 1000 * kMB;
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  // Real bytes equal to the virtual size in "request space": the source
  // issues one GET per chunk of the real range, so real size must equal
  // the modeled file size for request counts to be faithful. Use a small
  // real buffer with scale 1 per chunk... instead we create a real-sized
  // sparse stand-in: 1 byte per KiB scaled 1024x would distort ranges, so
  // we allocate the file at 1/1024 of the size and scale chunk counts by
  // issuing ranges over the virtual extent.
  //
  // Simpler and exact: allocate the file for real. 1 GB of zeros is cheap.
  std::vector<uint8_t> blob(static_cast<size_t>(kFileBytes), 0);
  LAMBADA_CHECK_OK(
      cloud.s3().PutDirect("data", "file", Buffer::FromVector(std::move(blob))));

  ChunkResult result;
  cloud::FunctionConfig fn;
  fn.name = "downloader";
  fn.memory_mib = 3008;  // "the largest available serverless workers".
  fn.handler = [&, chunk_bytes, connections](cloud::WorkerEnv& env,
                                             std::string) -> Async<Status> {
    cloud::S3Client client(env.services().s3, env.net());
    format::S3Source::Options opts;
    opts.chunk_bytes = chunk_bytes;
    opts.connections = connections;
    format::S3Source source(client, "data", "file", opts);
    double t0 = env.sim()->Now();
    auto r = co_await source.ReadAt(0, kFileBytes);
    LAMBADA_CHECK(r.ok());
    double elapsed = env.sim()->Now() - t0;
    result.bandwidth_mib_s = static_cast<double>(kFileBytes) / elapsed / kMiB;
    result.requests = source.request_count();
    result.worker_seconds = elapsed;
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  sim::Spawn([](cloud::Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "downloader", "");
  }(&cloud));
  cloud.sim().Run();
  return result;
}

}  // namespace

int main() {
  Banner("Figure 7", "chunk size vs scan bandwidth and request cost");
  cloud::Pricing pricing;
  Table t({"chunk [MiB]", "conns", "bandwidth [MiB/s]", "requests",
           "cost 1k runs [USD]", "req/worker [x]"},
          19);
  for (int64_t chunk_mib : {1, 2, 4, 8, 16}) {
    // (0.5 MiB handled separately below to keep the loop integral.)
    for (int conns : {1, 2, 4}) {
      auto r = DownloadChunked(chunk_mib * kMiB, conns);
      double request_cost_1k =
          static_cast<double>(r.requests) * pricing.s3_get * 1000.0;
      double worker_cost_1k = r.worker_seconds * 2.0 *
                              pricing.lambda_gib_second * 1000.0;
      t.Row({Fmt("%.1f", static_cast<double>(chunk_mib)),
             FmtInt(conns), Fmt("%.0f", r.bandwidth_mib_s),
             FmtInt(r.requests), Fmt("%.4g", request_cost_1k),
             Fmt("%.2f", request_cost_1k / worker_cost_1k)});
    }
  }
  {
    auto r = DownloadChunked(kMiB / 2, 4);
    double request_cost_1k =
        static_cast<double>(r.requests) * pricing.s3_get * 1000.0;
    double worker_cost_1k =
        r.worker_seconds * 2.0 * pricing.lambda_gib_second * 1000.0;
    t.Row({"0.5", "4", Fmt("%.0f", r.bandwidth_mib_s),
           FmtInt(r.requests), Fmt("%.4g", request_cost_1k),
           Fmt("%.2f", request_cost_1k / worker_cost_1k)});
  }
  std::printf(
      "\nPaper: 1 connection needs 16 MB chunks to approach peak; 4\n"
      "connections reach it with 1 MB chunks; at 1 MiB chunks the requests\n"
      "cost ~1.7x the workers, dropping to ~0.11x at 16 MiB.\n");
  return 0;
}
