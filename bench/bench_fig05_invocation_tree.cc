// Reproduces and extends Figure 5 of the paper: the tree-structured
// invocation process starting large serverless fleets from a cold
// function. The historical experiment ran exactly 4096 workers through a
// hardcoded 64x64 two-level tree; this sweep drives every configuration
// through the shared invocation-tree planner (core/invocation_tree.h) —
// depth 2 with explicit per-child payloads versus depth 3 with batched
// subtree-range payloads — at fleet sizes up to 16384, and reports the
// measured all-running time next to the cost model's prediction plus the
// modeled invocation bill.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/invocation_tree.h"
#include "core/messages.h"
#include "models/costmodel.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

/// The planner's cost parameters for a deployment, derived exactly like
/// the driver derives them (core/driver.cc): Table 1 invocation profile
/// plus the cold-start window of the FaaS config.
core::TreeOptions TreeOptionsFor(cloud::Cloud& cloud, int depth) {
  core::TreeOptions topt;
  topt.depth = depth;
  topt.cost.driver_invoke_latency_s = cloud.region().remote_invoke_latency_s;
  topt.cost.driver_rate_per_s = cloud.region().remote_client_rate_per_s;
  topt.cost.driver_threads = 128;
  topt.cost.worker_invoke_latency_s = cloud.region().intra_invoke_latency_s;
  topt.cost.worker_start_s = cloud.faas().config().cold_start_median_s +
                             cloud.faas().config().cold_init_cpu_s;
  return topt;
}

std::string FanoutString(const core::TreePlan& plan) {
  std::string s;
  for (size_t i = 0; i < plan.fanout.size(); ++i) {
    if (i > 0) s += "x";
    s += std::to_string(plan.fanout[i]);
  }
  return s;
}

struct SweepResult {
  core::TreePlan plan;
  double driver_done = 0;   ///< Driver finished issuing root Invokes.
  double all_running = 0;   ///< Last worker's handler started.
  double modeled_s = 0;     ///< models::TreeAllRunningTime prediction.
  double cost_usd = 0;      ///< Invocations + billed start windows.
  size_t started = 0;
  bool ids_exact = false;   ///< Every worker id started exactly once.
};

/// Starts a `workers`-strong fleet through a forced depth-`depth` tree in
/// a fresh deployment and measures the invocation timeline. Depth 2 uses
/// the historical explicit child payloads; depth 3 uses batched
/// subtree-range payloads (a two-level payload cannot carry grandchild
/// inputs), mirroring the driver's auto-batching rule.
SweepResult RunSweep(uint32_t workers, int depth) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 24000;
  cloud::Cloud cloud(cfg);

  SweepResult out;
  core::TreeOptions topt = TreeOptionsFor(cloud, depth);
  out.plan = core::PlanInvocationTree(workers, topt);
  out.modeled_s =
      models::TreeAllRunningTime(out.plan.fanout, workers, topt.cost);
  const bool range_mode = depth >= 3;

  std::vector<int> started_count(workers, 0);
  std::vector<double> started;
  started.reserve(workers);

  cloud::FunctionConfig fn;
  fn.name = "tree";
  fn.memory_mib = 2048;
  fn.handler = [&](cloud::WorkerEnv& env, std::string raw) -> Async<Status> {
    auto payload = core::InvocationPayload::Parse(raw);
    if (!payload.ok()) co_return payload.status();
    started.push_back(env.sim()->Now());
    if (payload->self.worker_id < started_count.size()) {
      ++started_count[payload->self.worker_id];
    }
    if (!payload->to_invoke.empty() || payload->tree.active()) {
      auto invoked = co_await core::InvokeTreeChildren(env, *payload);
      if (!invoked.ok()) co_return invoked.status();
    }
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));

  // Driver: invoke the planner's generation-1 roots over 128 invocation
  // threads (Section 4.2); each root recursively starts its ID range.
  double driver_done = 0;
  sim::Spawn([](cloud::Cloud* c, const core::TreePlan* plan, uint32_t total,
                bool ranges, double* done_at) -> Async<void> {
    auto gate = std::make_shared<sim::Semaphore>(&c->sim(), 128);
    std::vector<Async<void>> calls;
    for (const core::TreeNode& root : core::TreeRoots(*plan)) {
      core::InvocationPayload p;
      p.query_id = "fig5";
      p.total_workers = total;
      p.self.worker_id = root.begin;
      if (ranges) {
        p.tree.subtree_end = root.end;
        p.tree.generation = root.generation;
        p.tree.fanout = plan->fanout;
      } else {
        for (uint32_t id = root.begin + 1; id < root.end; ++id) {
          core::WorkerInput child;
          child.worker_id = id;
          p.to_invoke.push_back(child);
        }
      }
      calls.push_back(
          [](cloud::Cloud* cl, std::shared_ptr<sim::Semaphore> gt,
             std::string payload) -> Async<void> {
            co_await gt->Acquire();
            Status s = co_await cl->faas().Invoke(
                cl->driver_invoker_profile(), &cl->driver_rng(), "tree",
                std::move(payload));
            if (!s.ok()) {
              LAMBADA_LOG(Warning) << "invoke failed: " << s.ToString();
            }
            gt->Release();
          }(c, gate, p.Serialize()));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(calls));
    *done_at = c->sim().Now();
  }(&cloud, &out.plan, workers, range_mode, &driver_done));
  cloud.sim().Run();

  std::sort(started.begin(), started.end());
  out.driver_done = driver_done;
  out.all_running = started.empty() ? 0.0 : started.back();
  out.started = started.size();
  out.ids_exact =
      started.size() == workers &&
      std::all_of(started_count.begin(), started_count.end(),
                  [](int c) { return c == 1; });
  out.cost_usd = cloud.ledger().Snapshot().TotalUsd(cloud.pricing());
  return out;
}

}  // namespace

int main() {
  Banner("Figure 5",
         "invocation trees: cold fleets to 16384 workers, depth 2 vs 3");

  // The planner's unforced choice per fleet size (pure cost model, no
  // simulation): depth 2 up to ~4k workers, depth 3 beyond.
  {
    cloud::Cloud cloud;
    core::TreeOptions topt = TreeOptionsFor(cloud, 0);
    Table t({"workers", "auto depth", "fanout", "modeled [s]"}, 16,
            "planner auto depth");
    const std::vector<uint32_t> fleets = {64, 1024, 4096, 10000, 16384};
    for (uint32_t w : fleets) {
      core::TreePlan plan = core::PlanInvocationTree(w, topt);
      t.Row({FmtInt(w), FmtInt(plan.depth()), FanoutString(plan),
             Fmt("%.2f", models::TreeAllRunningTime(plan.fanout, w,
                                                    topt.cost))});
    }
  }

  std::printf("\n");
  Table t({"workers", "depth", "payload", "driver done [s]",
           "all running [s]", "modeled [s]", "cost [USD]"},
          16, "measured tree sweep");
  const std::vector<uint32_t> fleets = {4096, 10000, 16384};
  bool all_exact = true;
  for (uint32_t w : fleets) {
    for (int depth = 2; depth <= 3; ++depth) {
      SweepResult r = RunSweep(w, depth);
      t.Row({FmtInt(w), FmtInt(depth), depth >= 3 ? "range" : "explicit",
             Fmt("%.2f", r.driver_done), Fmt("%.2f", r.all_running),
             Fmt("%.2f", r.modeled_s), Fmt("%.4f", r.cost_usd)});
      if (!r.ids_exact) {
        all_exact = false;
        Notef("ERROR: %u-worker depth-%d run started %zu workers", w, depth,
              r.started);
      }
    }
  }

  std::printf("\n");
  Notef("every worker id started exactly once: %s",
        all_exact ? "yes" : "NO");
  std::printf(
      "\nPaper: all 4096 running in ~3 s through the two-level tree; a\n"
      "naive driver-only invocation of 16384 workers would need ~%.1f s\n"
      "at 294 inv/s, the depth-3 tree starts them in a cold-start-bound\n"
      "window instead.\n",
      16384 / 294.0);
  return 0;
}
