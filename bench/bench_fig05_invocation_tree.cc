// Reproduces Figure 5 of the paper: the two-level invocation process
// starting 4096 serverless workers from a cold function. For each
// first-generation worker (in driver invocation order) we report the time
// before its own invocation was initiated, the time its invocation took,
// and the time it spent invoking its second generation — plus the headline
// number: when all 4096 workers were running.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/messages.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

int main() {
  const int kWorkers = 4096;
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 5000;
  cloud::Cloud cloud(cfg);

  struct Gen1Record {
    double initiated = 0;
    double running = 0;
    double children_done = 0;
  };
  std::vector<Gen1Record> gen1;
  std::vector<double> started;  // Start time of every worker.
  started.reserve(kWorkers);

  cloud::FunctionConfig fn;
  fn.name = "tree";
  fn.memory_mib = 2048;
  fn.handler = [&](cloud::WorkerEnv& env, std::string raw) -> Async<Status> {
    started.push_back(env.sim()->Now());
    auto payload = core::InvocationPayload::Parse(raw);
    if (!payload.ok()) co_return payload.status();
    if (!payload->to_invoke.empty()) {
      Gen1Record rec;
      rec.initiated = env.metrics().invoke_initiated;
      rec.running = env.sim()->Now();
      for (const auto& child : payload->to_invoke) {
        core::InvocationPayload cp = *payload;
        cp.self = child;
        cp.to_invoke.clear();
        co_await env.services().faas->Invoke(env.invoker_profile(),
                                             &env.rng(),
                                             env.function_name(),
                                             cp.Serialize());
      }
      rec.children_done = env.sim()->Now();
      gen1.push_back(rec);
    }
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));

  // Driver: invoke sqrt(P) first-generation workers, each carrying the IDs
  // of its second generation (Section 4.2), over 128 invocation threads.
  double driver_done = 0;
  sim::Spawn([](cloud::Cloud* c, int workers,
                double* done_at) -> Async<void> {
    int group = 64;  // sqrt(4096).
    auto gate = std::make_shared<sim::Semaphore>(&c->sim(), 128);
    std::vector<Async<void>> calls;
    for (int g = 0; g < workers / group; ++g) {
      core::InvocationPayload p;
      p.query_id = "fig5";
      p.total_workers = static_cast<uint32_t>(workers);
      p.self.worker_id = static_cast<uint32_t>(g * group);
      for (int i = 1; i < group; ++i) {
        core::WorkerInput child;
        child.worker_id = static_cast<uint32_t>(g * group + i);
        p.to_invoke.push_back(child);
      }
      calls.push_back(
          [](cloud::Cloud* cl, std::shared_ptr<sim::Semaphore> gt,
             std::string payload) -> Async<void> {
            co_await gt->Acquire();
            Status s = co_await cl->faas().Invoke(
                cl->driver_invoker_profile(), &cl->driver_rng(), "tree",
                std::move(payload));
            if (!s.ok()) {
              LAMBADA_LOG(Warning) << "invoke failed: " << s.ToString();
            }
            gt->Release();
          }(c, gate, p.Serialize()));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(calls));
    *done_at = c->sim().Now();
  }(&cloud, kWorkers, &driver_done));
  cloud.sim().Run();

  Banner("Figure 5", "two-level invocation of 4096 workers (cold start)");
  Table t({"gen1 worker", "before own inv [s]", "own inv [s]",
           "invoking kids [s]"},
          20);
  for (size_t i = 0; i < gen1.size(); i += 8) {
    const auto& r = gen1[i];
    t.Row({FmtInt(static_cast<int64_t>(i)), Fmt("%.2f", r.initiated),
           Fmt("%.2f", r.running - r.initiated),
           Fmt("%.2f", r.children_done - r.running)});
  }
  std::sort(started.begin(), started.end());
  std::printf("\n");
  Notef("workers started:        %zu", started.size());
  Notef("driver done invoking:   %.2f s", driver_done);
  Notef("last gen-1 initiated:   %.2f s",
        gen1.empty() ? 0.0 : gen1.back().initiated);
  Notef("all workers running at: %.2f s", started.back());
  double naive = kWorkers / 294.0;
  std::printf(
      "\nPaper: last worker initiated ~2.5 s, all 4096 running in ~3 s;\n"
      "naive driver-only invocation would need ~%.1f s at 294 inv/s.\n",
      naive);
  return 0;
}
