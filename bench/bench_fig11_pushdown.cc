// Reproduces Figure 11 of the paper: the distribution of per-worker
// processing time for TPC-H Q1 and Q6 (F=1, M=1792 MiB). Workers whose
// row groups are fully pruned by the min/max statistics on l_shipdate
// return after the metadata round trip (100-200 ms); the others decompress
// and scan their projected columns (2-3 s).

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

namespace {

struct Distribution {
  std::vector<double> processing_s;  // Sorted ascending.
  int64_t pruned = 0, total = 0;
  int64_t bytes_moved = 0;  // Post-encoding scan bytes across the fleet.
  int64_t rows_dict_filtered = 0;
};

Distribution RunQuery(core::Driver& driver, const core::Query& q) {
  core::RunOptions opts;
  opts.memory_mib = 1792;
  opts.files_per_worker = 1;
  auto report = driver.RunToCompletion(q, opts);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();
  Distribution d;
  for (const auto& wr : report->worker_results) {
    d.processing_s.push_back(wr.metrics.processing_time_s());
    d.pruned += wr.metrics.row_groups_pruned();
    d.total += wr.metrics.row_groups_total();
    d.bytes_moved += wr.metrics.scan_bytes_moved();
    d.rows_dict_filtered += wr.metrics.rows_dict_filtered();
  }
  std::sort(d.processing_s.begin(), d.processing_s.end());
  return d;
}

void Describe(const char* name, const Distribution& d) {
  std::printf("\n");
  Notef("%s: %zu workers, %lld/%lld row groups pruned (%.0f%%)", name,
        d.processing_s.size(), static_cast<long long>(d.pruned),
        static_cast<long long>(d.total), 100.0 * d.pruned / d.total);
  Notef("scan bytes moved (post-encoding): %.2f MiB across the fleet; "
        "%lld rows dict-filtered pre-materialization",
        static_cast<double>(d.bytes_moved) / kMiB,
        static_cast<long long>(d.rows_dict_filtered));
  Table t({"percentile", "processing time [s]"},
          Table::kDefaultWidth + 6, std::string(name));
  for (double p : {0.0, 0.05, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    t.Row({Fmt("p%.0f", p * 100),
           Fmt("%.3f", Percentile(d.processing_s, p))});
  }
  // Count the two worker categories of the paper.
  int fast = 0;
  for (double s : d.processing_s) {
    if (s < 0.5) ++fast;
  }
  Notef("workers returning after metadata only: %d of %zu (%.0f%%)", fast,
        d.processing_s.size(), 100.0 * fast / d.processing_s.size());
}

}  // namespace

int main() {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 400;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  workload::LoadOptions load;
  load.num_rows = 320 * 400;
  load.num_files = 320;
  load.row_groups_per_file = 4;
  load.virtual_bytes_per_file = 500 * kMB;
  LAMBADA_CHECK_OK(
      workload::LoadLineitem(&cloud.s3(), "tpch", "sf1000/", load));

  Banner("Figure 11", "per-worker processing time distribution (Q1 vs Q6)");
  auto q1 = RunQuery(driver, workload::TpchQ1("s3://tpch/sf1000/*.lpq"));
  Describe("Q1 (98% selected, 7 attributes)", q1);
  auto q6 = RunQuery(driver, workload::TpchQ6("s3://tpch/sf1000/*.lpq"));
  Describe("Q6 (2% selected, 4 attributes)", q6);
  std::printf(
      "\nPaper: two categories — ~100-200 ms (all row groups pruned via\n"
      "min/max on l_shipdate) and 2-3 s (full scan of projected columns);\n"
      "~2%% of Q1 workers prune everything vs ~80%% for Q6.\n");
  return 0;
}
