// Kernel microbenchmarks (google-benchmark): the real-CPU building blocks
// of the engine — codecs, encodings, partitioning, hash aggregation, and
// file round trips. These measure host CPU, complementing the virtual-time
// experiment harnesses.

#include <benchmark/benchmark.h>

#include <cstring>

#include "common/rng.h"
#include "compress/block_codec.h"
#include "compress/codec.h"
#include "engine/aggregate.h"
#include "engine/chunk_serde.h"
#include "engine/expr.h"
#include "engine/partition.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "format/encoding.h"
#include "format/reader.h"
#include "format/writer.h"

namespace {

using namespace lambada;  // NOLINT

std::vector<uint8_t> ColumnarBytes(size_t values) {
  Rng rng(42);
  std::vector<int64_t> v;
  v.reserve(values);
  for (size_t i = 0; i < values; ++i) v.push_back(rng.UniformInt(0, 1000));
  std::vector<uint8_t> bytes(values * 8);
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

void BM_Compress(benchmark::State& state, compress::CodecId id) {
  auto input = ColumnarBytes(1 << 16);
  const auto& codec = compress::GetCodec(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Compress(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK_CAPTURE(BM_Compress, rle, compress::CodecId::kRle);
BENCHMARK_CAPTURE(BM_Compress, lz, compress::CodecId::kLz);
BENCHMARK_CAPTURE(BM_Compress, heavy, compress::CodecId::kHeavy);

void BM_Decompress(benchmark::State& state, compress::CodecId id) {
  auto input = ColumnarBytes(1 << 16);
  const auto& codec = compress::GetCodec(id);
  auto compressed = codec.Compress(input);
  for (auto _ : state) {
    auto out = codec.Decompress(compressed.data(), compressed.size(),
                                input.size());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK_CAPTURE(BM_Decompress, rle, compress::CodecId::kRle);
BENCHMARK_CAPTURE(BM_Decompress, lz, compress::CodecId::kLz);
BENCHMARK_CAPTURE(BM_Decompress, heavy, compress::CodecId::kHeavy);

void BM_DeltaEncode(benchmark::State& state) {
  std::vector<int64_t> sorted;
  for (int64_t i = 0; i < (1 << 16); ++i) sorted.push_back(1000 + i / 3);
  engine::Column col = engine::Column::Int64(sorted);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        format::EncodeColumn(col, format::Encoding::kDelta));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          sorted.size() * 8);
}
BENCHMARK(BM_DeltaEncode);

engine::TableChunk BenchChunk(size_t rows) {
  Rng rng(7);
  std::vector<int64_t> keys;
  std::vector<double> vals;
  for (size_t i = 0; i < rows; ++i) {
    keys.push_back(rng.UniformInt(0, 4));
    vals.push_back(rng.NextDouble());
  }
  auto schema = std::make_shared<engine::Schema>(std::vector<engine::Field>{
      {"k", engine::DataType::kInt64}, {"v", engine::DataType::kFloat64}});
  return engine::TableChunk(schema, {engine::Column::Int64(std::move(keys)),
                                     engine::Column::Float64(
                                         std::move(vals))});
}

void BM_HashPartition(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::HashPartition(chunk, {0}, static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.num_rows());
}
BENCHMARK(BM_HashPartition)->Arg(16)->Arg(64);

void BM_HashAggregate(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 16);
  for (auto _ : state) {
    engine::HashAggregator agg({"k"},
                               {engine::Sum(engine::Col("v"), "s"),
                                engine::Count("n")});
    benchmark::DoNotOptimize(agg.ConsumeInput(chunk));
    benchmark::DoNotOptimize(agg.Finalize());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.num_rows());
}
BENCHMARK(BM_HashAggregate);

void BM_ExprEvaluate(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 16);
  auto expr = (engine::Col("v") >= engine::Lit(0.05)) &&
              (engine::Col("k") == engine::Lit(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Evaluate(chunk));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.num_rows());
}
BENCHMARK(BM_ExprEvaluate);

void BM_ChunkSerde(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 16);
  for (auto _ : state) {
    auto bytes = engine::SerializeChunk(chunk);
    benchmark::DoNotOptimize(
        engine::DeserializeChunk(bytes.data(), bytes.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.memory_bytes());
}
BENCHMARK(BM_ChunkSerde);

void BM_FileWrite(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 15);
  format::WriterOptions opts;
  opts.codec = compress::CodecId::kLz;
  for (auto _ : state) {
    benchmark::DoNotOptimize(format::FileWriter::WriteTable(chunk, opts));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.memory_bytes());
}
BENCHMARK(BM_FileWrite);

// ---------------------------------------------------------------------------
// Morsel-parallel kernels (src/exec): the same partition/serde/codec
// kernels on 1-8 worker threads. Real time, not CPU time: the work runs on
// pool threads. On a multi-core host the 4- and 8-thread variants show the
// speedup the serverless workers get from their extra vCPUs; outputs stay
// byte-identical by construction (see exec/parallel_for.h).
// ---------------------------------------------------------------------------

exec::ExecContext BenchCtx(benchmark::State& state) {
  exec::ExecContext ctx =
      exec::ExecContext::Parallel(static_cast<int>(state.range(0)));
  return ctx;
}

void BM_HashPartitionParallel(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 20);
  exec::ExecContext ctx = BenchCtx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::HashPartition(chunk, {0}, 64, ctx));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.num_rows());
}
BENCHMARK(BM_HashPartitionParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ChunkSerdeParallel(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 21);
  exec::ExecContext ctx = BenchCtx(state);
  for (auto _ : state) {
    auto bytes = engine::SerializeChunk(chunk, ctx);
    benchmark::DoNotOptimize(
        engine::DeserializeChunk(bytes.data(), bytes.size(), ctx));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.memory_bytes());
}
BENCHMARK(BM_ChunkSerdeParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BlockCompressParallel(benchmark::State& state) {
  auto input = ColumnarBytes(1 << 21);
  exec::ExecContext ctx = BenchCtx(state);
  const auto& codec = compress::GetCodec(compress::CodecId::kLz);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::CompressBlocks(codec, input, ctx));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK(BM_BlockCompressParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BlockDecompressParallel(benchmark::State& state) {
  auto input = ColumnarBytes(1 << 21);
  exec::ExecContext ctx = BenchCtx(state);
  const auto& codec = compress::GetCodec(compress::CodecId::kHeavy);
  auto frame = compress::CompressBlocks(codec, input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compress::DecompressBlocks(codec, frame.data(), frame.size(), ctx));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK(BM_BlockDecompressParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_FileWriteParallel(benchmark::State& state) {
  auto chunk = BenchChunk(1 << 17);
  format::WriterOptions opts;
  opts.codec = compress::CodecId::kLz;
  opts.exec = BenchCtx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(format::FileWriter::WriteTable(chunk, opts));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          chunk.memory_bytes());
}
BENCHMARK(BM_FileWriteParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
