// Reproduces Figure 1 of the paper: the architecture comparison that
// motivates serverless analytics on cold data.
//   (a) Job-scoped resources: cost vs running time for IaaS VMs and FaaS
//       workers scanning 1 TB from S3.
//   (b) Always-on resources: hourly cost vs query frequency for VM tiers,
//       QaaS, and FaaS.

#include <algorithm>

#include "bench_util.h"
#include "models/costmodel.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

int main() {
  Banner("Figure 1a", "job-scoped resources: 1 TB scan, cost vs time");
  {
    Table t({"series", "workers", "time [s]", "cost [USD]"});
    for (const auto& p : models::JobScopedIaas()) {
      t.Row({"IaaS (VM)", FmtInt(p.workers), Fmt("%.2f", p.running_time_s),
             Fmt("%.4g", p.cost_usd)});
    }
    for (const auto& p : models::JobScopedFaas()) {
      t.Row({"FaaS", FmtInt(p.workers), Fmt("%.2f", p.running_time_s),
             Fmt("%.4g", p.cost_usd)});
    }
    auto iaas = models::JobScopedIaas();
    auto faas = models::JobScopedFaas();
    double cheapest_iaas = iaas.front().cost_usd;
    double cheapest_faas = faas.front().cost_usd;
    double fastest_iaas = iaas.back().running_time_s;
    double fastest_faas = faas.back().running_time_s;
    std::printf("\n");
    Notef(
        "Shape check: cheapest IaaS %s vs cheapest FaaS %s (IaaS ~%0.0fx "
        "cheaper);\n  fastest IaaS %s vs fastest FaaS %s (FaaS wins on "
        "latency)",
        FormatUsd(cheapest_iaas).c_str(), FormatUsd(cheapest_faas).c_str(),
        cheapest_faas / cheapest_iaas, FormatSeconds(fastest_iaas).c_str(),
        FormatSeconds(fastest_faas).c_str());
  }

  Banner("Figure 1b",
         "always-on resources: hourly cost vs queries per hour");
  {
    models::AlwaysOnParams params;
    auto series = models::AlwaysOnComparison(params);
    std::vector<std::string> headers = {"queries/h"};
    for (const auto& s : series) headers.push_back(s.label + " [USD/h]");
    Table t(headers, 16);
    for (size_t i = 0; i < params.queries_per_hour.size(); ++i) {
      std::vector<std::string> row = {
          Fmt("%.0f", params.queries_per_hour[i])};
      for (const auto& s : series) {
        row.push_back(Fmt("%.4g", s.hourly_cost_usd[i]));
      }
      t.Row(row);
    }
    // Crossover: FaaS vs the cheapest always-on tier (3 DRAM VMs).
    double dram = series[2].hourly_cost_usd[0];
    double faas_per_query = series[4].hourly_cost_usd[0] /
                            params.queries_per_hour[0];
    std::printf("\n");
    Notef(
        "Shape check: FaaS ($%.2f/query) is cheaper than 3 DRAM VMs "
        "($%.2f/h) below ~%.0f queries/hour",
        faas_per_query, dram, dram / faas_per_query);
  }
  return 0;
}
