// Reproduces Figure 6 of the paper: network (ingress) bandwidth of
// serverless workers when downloading (a) large files (1 GB) and (b) small
// files (100 MB) from S3, for various worker sizes and connection counts.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

/// Median per-worker scan bandwidth (MiB/s) of 10 workers downloading a
/// file of `file_bytes` with `connections` concurrent connections.
double ScanBandwidth(int memory_mib, int connections, int64_t file_bytes) {
  cloud::Cloud cloud;
  LAMBADA_CHECK_OK(cloud.s3().CreateBucket("data"));
  // Small placeholder object scaled to the experiment's file size: the
  // data plane is simulated, only sizes matter here.
  std::vector<uint8_t> blob(1024, 1);
  LAMBADA_CHECK_OK(cloud.s3().PutDirect(
      "data", "file", Buffer::FromVector(std::move(blob)),
      static_cast<double>(file_bytes) / 1024.0));

  std::vector<double> bandwidths;
  cloud::FunctionConfig fn;
  fn.name = "downloader";
  fn.memory_mib = memory_mib;
  fn.handler = [&, connections, file_bytes](cloud::WorkerEnv& env,
                                            std::string) -> Async<Status> {
    double t0 = env.sim()->Now();
    // Split the object into one range per connection, fetched together.
    std::vector<Async<void>> fetches;
    int64_t part = 1024 / connections;
    for (int c = 0; c < connections; ++c) {
      fetches.push_back([](cloud::WorkerEnv* e, int64_t off,
                           int64_t len) -> Async<void> {
        auto r = co_await e->services().s3->Get(e->net(), "data", "file",
                                                off, len);
        LAMBADA_CHECK(r.ok());
      }(&env, c * part, part));
    }
    co_await sim::WhenAllVoid(env.sim(), std::move(fetches));
    double elapsed = env.sim()->Now() - t0;
    bandwidths.push_back(static_cast<double>(file_bytes) / elapsed / kMiB);
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  for (int w = 0; w < 10; ++w) {
    sim::Spawn([](cloud::Cloud* c) -> Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "downloader", "");
    }(&cloud));
  }
  cloud.sim().Run();
  return Median(bandwidths);
}

void RunSeries(const char* title, int64_t file_bytes) {
  Banner("Figure 6", title);
  Table t({"memory [MiB]", "1 conn [MiB/s]", "2 conns [MiB/s]",
           "4 conns [MiB/s]"},
          16);
  for (int mem : {512, 1024, 2048, 3008}) {
    std::vector<std::string> row = {FmtInt(mem)};
    for (int conns : {1, 2, 4}) {
      row.push_back(Fmt("%.0f", ScanBandwidth(mem, conns, file_bytes)));
    }
    t.Row(row);
  }
}

}  // namespace

int main() {
  RunSeries("(a) large files (1 GB): stable ~90 MiB/s", 1000 * kMB);
  RunSeries("(b) small files (100 MB): bursts with memory + connections",
            100 * kMB);
  std::printf(
      "\nPaper: large files capped at ~90 MiB/s regardless of size or\n"
      "connections; small files burst up to ~300 MiB/s on large workers\n"
      "with several concurrent connections (credit-based shaping).\n");
  return 0;
}
