// Reproduces Table 3 of the paper: running time of S3-based exchange
// operators on a 100 GB dataset for 250/500/1000 workers, next to the
// published numbers of Pocket (VM-based and S3 baselines) and Locus.
// Also runs the 1 TB and 3 TB configurations reported in the text.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/exchange.h"
#include "engine/table.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

/// Runs a two-level write-combining exchange of `total_bytes` over P
/// workers; returns the end-to-end running time (all workers done).
double RunExchangeAtScale(int P, double total_bytes, int memory_mib,
                          int num_buckets = 32) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = P + 64;
  cloud::Cloud cloud(cfg);
  core::ExchangeSpec spec;
  spec.keys = {"k"};
  spec.levels = 2;
  spec.write_combining = true;
  spec.offsets_in_name = true;
  spec.num_buckets = num_buckets;
  spec.exchange_id = "tab3";
  LAMBADA_CHECK_OK(core::CreateExchangeBuckets(&cloud.s3(), spec));

  auto schema = std::make_shared<engine::Schema>(std::vector<engine::Field>{
      {"k", engine::DataType::kInt64}, {"v", engine::DataType::kFloat64}});
  const int kRealRows = 2000;
  const double real_bytes_per_worker = kRealRows * 16.0;
  const double scale =
      total_bytes / P / real_bytes_per_worker;  // Virtual scaling.

  double finished_at = 0;
  int done = 0;
  cloud::FunctionConfig fn;
  fn.name = "xchg";
  fn.memory_mib = memory_mib;
  fn.timeout_s = 900;
  fn.handler = [&, schema, scale](cloud::WorkerEnv& env,
                                  std::string payload) -> Async<Status> {
    int p = std::stoi(payload);
    env.data_scale = scale;
    Rng rng(1000 + static_cast<uint64_t>(p));
    std::vector<int64_t> keys(kRealRows);
    std::vector<double> vals(kRealRows);
    for (int i = 0; i < kRealRows; ++i) {
      keys[i] = rng.UniformInt(0, 1 << 30);
      vals[i] = rng.NextDouble();
    }
    engine::TableChunk input(
        *&schema, {engine::Column::Int64(std::move(keys)),
                   engine::Column::Float64(std::move(vals))});
    auto out = co_await core::RunExchange(env, spec, p, P, std::move(input));
    if (!out.ok()) co_return out.status();
    ++done;
    finished_at = env.sim()->Now();
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  // Start all workers near-simultaneously (the exchange is an operator
  // inside an already-running query; invocation is not part of Table 3).
  for (int p = 0; p < P; ++p) {
    sim::Spawn([](cloud::Cloud* c, int worker) -> Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "xchg",
                                std::to_string(worker));
    }(&cloud, p));
  }
  double t0 = 0.5;  // Invocations land within the first ~0.5 s.
  cloud.sim().Run();
  LAMBADA_CHECK_EQ(done, P);
  return finished_at - t0;
}

}  // namespace

int main() {
  Banner("Table 3", "running time of S3-based exchange on 100 GB");
  Table t({"system", "workers", "storage", "time [s]"}, 16);
  t.Row({"Pocket [18]", "250", "VMs", "58"});
  t.Row({"Pocket [18]", "500", "VMs", "28"});
  t.Row({"Pocket [18]", "1000", "VMs", "18"});
  t.Row({"Pocket base", "250", "S3", "98"});
  // The published Locus range becomes two rows so both edges diff
  // numerically.
  t.Row({"Locus [21] fast", "dynamic", "VMs+S3", "80"});
  t.Row({"Locus [21] slow", "dynamic", "VMs+S3", "140"});
  for (int P : {250, 500, 1000}) {
    double s = RunExchangeAtScale(P, 100e9, 2048);
    t.Row({"Lambada", FmtInt(P), "S3", Fmt("%.0f", s)});
  }
  std::printf("\nPaper: Lambada 22 s / 15 s / 13 s — 5x faster than the\n"
              "S3 baseline at 250 workers and faster than Pocket-on-VMs\n"
              "at every scale, with no always-on infrastructure.\n");

  Banner("Section 5.5", "larger datasets");
  Table t2({"dataset", "workers", "time [s]"}, 16);
  {
    double s1 = RunExchangeAtScale(1250, 1e12, 2048);
    t2.Row({"1 TB", "1250", Fmt("%.0f", s1)});
    double s3 = RunExchangeAtScale(2500, 3e12, 2048);
    t2.Row({"3 TB", "2500", Fmt("%.0f", s3)});
  }
  std::printf(
      "\nPaper: 56 s on 1 TB with 1250 workers; 159 s on 3 TB with 2500\n"
      "workers (dominated by stragglers and waiting; see Figure 13).\n");
  return 0;
}
