// Reproduces Figure 9 of the paper: monetary cost per worker of the
// S3-based exchange algorithm family (1/2/3 levels, with and without
// write combining) as the worker count grows, next to the band of worker
// running costs that puts the request costs into perspective.

#include "bench_util.h"
#include "cloud/pricing.h"
#include "core/exchange.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

int main() {
  Banner("Figure 9", "cost of S3-based exchange algorithms per worker");
  cloud::Pricing pricing;
  Table t({"P", "variant", "reads", "writes+lists", "cost/worker [USD]"},
          18);
  struct Variant {
    const char* name;
    int levels;
    bool wc;
  };
  const Variant variants[] = {{"1l", 1, false},   {"1l-wc", 1, true},
                              {"2l", 2, false},   {"2l-wc", 2, true},
                              {"3l", 3, false},   {"3l-wc", 3, true}};
  for (int P : {64, 256, 1024, 4096, 16384}) {
    for (const auto& v : variants) {
      auto c = core::PredictExchangeRequests(P, v.levels, v.wc);
      double cost = c.reads * pricing.s3_get +
                    c.writes * pricing.s3_put + c.lists * pricing.s3_list;
      t.Row({FmtInt(P), v.name, Fmt("%.0f", c.reads),
             Fmt("%.0f", c.writes + c.lists), Fmt("%.4g", cost / P)});
    }
    // Worker-cost band: one scan of 100 MiB up to three scans of 1 GiB at
    // 85 MiB/s, at the 2 GiB worker price (the paper's horizontal range).
    // Two rows so both band edges stay numeric.
    double second_price = 2.0 * pricing.lambda_gib_second;
    double lo = (100.0 / 85.0) * second_price;
    double hi = 3.0 * (1024.0 / 85.0) * second_price;
    t.Row({FmtInt(P), "worker cost lo", "-", "-", Fmt("%.4g", lo)});
    t.Row({FmtInt(P), "worker cost hi", "-", "-", Fmt("%.4g", hi)});
  }
  auto c1l = core::PredictExchangeRequests(4096, 1, false);
  double cost_4k = c1l.reads * pricing.s3_get + c1l.writes * pricing.s3_put;
  std::printf("\n");
  Notef(
      "Shape check: BasicExchange (1l) with 4k workers costs %s in\n"
      "requests alone (paper: ~$100); 3l-wc brings requests below the\n"
      "worker cost everywhere.",
      FormatUsd(cost_4k).c_str());
  return 0;
}
