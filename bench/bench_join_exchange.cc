// The operator the exchange machinery was built for: TPC-H Q12 (LINEITEM
// x ORDERS) and Q14 (LINEITEM x PART) as distributed hash joins. Both
// inputs hash-partition through the serverless exchange on their join
// keys — one two-level exchange round per side — and the join runs
// co-partitioned on every worker. The table tracks end-to-end latency,
// query cost, the exchange request traffic of both sides, and the join
// output cardinality across fleet sizes.
//
// The second table is the optimizer ablation on the three-relation Q3:
// the same query forced all-partitioned, forced all-broadcast, and with
// the cost-based choice, which must land on the cheaper alternative of
// its per-join traffic model.

#include <memory>
#include <string>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;         // NOLINT
using namespace lambada::bench;  // NOLINT

namespace {

constexpr int64_t kLineitemRows = 120000;
constexpr int kLineitemFiles = 16;

struct JoinRun {
  double time_s = 0;
  double cost_usd = 0;
  int64_t exchange_puts = 0;
  int64_t exchange_gets = 0;
  int64_t rows_joined = 0;
};

JoinRun RunQuery(int query, int workers, int64_t orders_rows) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = workers + 64;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  workload::LoadOptions li;
  li.num_rows = kLineitemRows;
  li.num_files = kLineitemFiles;
  li.seed = 7;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));

  core::Query q = [&] {
    if (query == 12) {
      workload::LoadOptions oo;
      oo.num_rows = orders_rows;
      oo.num_files = 8;
      oo.seed = 13;
      LAMBADA_CHECK_OK(
          workload::LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
      return workload::TpchQ12("s3://tpch/li/*.lpq",
                               "s3://tpch/orders/*.lpq");
    }
    workload::LoadOptions po;
    po.num_rows = workload::kPartCount;
    po.num_files = 8;
    po.seed = 13;
    LAMBADA_CHECK_OK(workload::LoadPart(&cloud.s3(), "tpch", "part/", po));
    return workload::TpchQ14("s3://tpch/li/*.lpq", "s3://tpch/part/*.lpq");
  }();

  core::RunOptions opts;
  opts.num_workers = workers;
  // This table measures the two-sided exchange path; left to itself the
  // optimizer broadcasts these small build sides (see the Q3 ablation).
  opts.join_strategy = core::JoinStrategyOverride::kForcePartitioned;
  auto report = driver.RunToCompletion(q, opts);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();
  LAMBADA_CHECK_EQ(report->workers, workers);

  JoinRun out;
  out.time_s = report->latency_s;
  out.cost_usd = report->CostUsd(cloud.pricing());
  for (const auto& wr : report->worker_results) {
    out.exchange_puts += wr.metrics.exchange_put_requests();
    out.exchange_gets += wr.metrics.exchange_get_requests();
    out.rows_joined += wr.metrics.rows_joined();
  }
  return out;
}

struct AblationRun {
  double time_s = 0;
  double cost_usd = 0;
  int64_t exchange_puts = 0;
  double modeled_usd = 0;      // Sum of the chosen strategies' model cost.
  int broadcast_joins = 0;
  size_t result_rows = 0;
};

AblationRun RunQ3(core::JoinStrategyOverride strategy, int workers,
                  int64_t orders_rows) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = workers + 64;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  workload::LoadOptions li;
  li.num_rows = kLineitemRows;
  li.num_files = kLineitemFiles;
  li.seed = 7;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));
  workload::LoadOptions oo;
  oo.num_rows = orders_rows;
  oo.num_files = 8;
  oo.seed = 13;
  LAMBADA_CHECK_OK(workload::LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
  workload::LoadOptions co;
  co.num_rows = workload::kCustomerCount;
  co.num_files = 4;
  co.seed = 17;
  LAMBADA_CHECK_OK(
      workload::LoadCustomer(&cloud.s3(), "tpch", "customer/", co));

  core::Query q =
      workload::TpchQ3("s3://tpch/li/*.lpq", "s3://tpch/orders/*.lpq",
                       "s3://tpch/customer/*.lpq");
  core::RunOptions opts;
  opts.num_workers = workers;
  opts.join_strategy = strategy;
  auto report = driver.RunToCompletion(q, opts);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();

  AblationRun out;
  out.time_s = report->latency_s;
  out.cost_usd = report->CostUsd(cloud.pricing());
  out.result_rows = report->result.num_rows();
  for (const auto& wr : report->worker_results) {
    out.exchange_puts += wr.metrics.exchange_put_requests();
  }
  for (const auto& c : report->join_choices) {
    out.modeled_usd += c.broadcast ? c.broadcast_usd : c.partitioned_usd;
    if (c.broadcast) ++out.broadcast_joins;
  }
  return out;
}

}  // namespace

int main() {
  const int64_t orders_rows =
      workload::MaxOrderKey(workload::GenerateLineitem(kLineitemRows, 7));

  Banner("Join exchange",
         "TPC-H Q12/Q14 as two-sided partitioned-exchange hash joins");
  Table t({"query", "workers", "time [s]", "cost [USD]", "exchange PUTs",
           "exchange GETs", "rows joined"},
          15, "distributed hash join across fleet sizes");
  int64_t q12_rows = -1, q14_rows = -1;
  for (int query : {12, 14}) {
    for (int workers : {4, 8, 16}) {
      JoinRun r = RunQuery(query, workers, orders_rows);
      t.Row({"Q" + std::to_string(query), FmtInt(workers),
             Fmt("%.2f", r.time_s), Fmt("%.5f", r.cost_usd),
             FmtInt(r.exchange_puts), FmtInt(r.exchange_gets),
             FmtInt(r.rows_joined)});
      // The join result must not depend on the fleet size.
      int64_t& expect = query == 12 ? q12_rows : q14_rows;
      if (expect < 0) {
        expect = r.rows_joined;
      } else {
        LAMBADA_CHECK_EQ(expect, r.rows_joined);
      }
    }
  }
  Notef("join cardinality is fleet-size invariant: Q12 joins %lld rows, "
        "Q14 joins %lld rows at 4/8/16 workers",
        static_cast<long long>(q12_rows), static_cast<long long>(q14_rows));

  Table t2({"Q3 strategy", "time [s]", "cost [USD]", "modeled [USD]",
            "broadcast joins", "exchange PUTs", "result rows"},
           16, "broadcast vs partitioned ablation, 8 workers");
  AblationRun part =
      RunQ3(core::JoinStrategyOverride::kForcePartitioned, 8, orders_rows);
  AblationRun bcast =
      RunQ3(core::JoinStrategyOverride::kForceBroadcast, 8, orders_rows);
  AblationRun automatic =
      RunQ3(core::JoinStrategyOverride::kAuto, 8, orders_rows);
  auto ablation_row = [&](const char* name, const AblationRun& r) {
    t2.Row({name, Fmt("%.2f", r.time_s), Fmt("%.5f", r.cost_usd),
            Fmt("%.6f", r.modeled_usd), FmtInt(r.broadcast_joins),
            FmtInt(r.exchange_puts), FmtInt(static_cast<int64_t>(r.result_rows))});
  };
  ablation_row("partitioned", part);
  ablation_row("broadcast", bcast);
  ablation_row("auto", automatic);
  // The cost-based choice must sit on the cheaper modeled alternative,
  // and all three strategies must agree on the result cardinality.
  LAMBADA_CHECK(automatic.modeled_usd <=
                std::min(part.modeled_usd, bcast.modeled_usd) + 1e-12);
  LAMBADA_CHECK_EQ(part.result_rows, bcast.result_rows);
  LAMBADA_CHECK_EQ(part.result_rows, automatic.result_rows);
  Notef("Q3 optimizer picks the cheaper modeled plan: auto $%.6f vs "
        "all-partitioned $%.6f / all-broadcast $%.6f",
        automatic.modeled_usd, part.modeled_usd, bcast.modeled_usd);

  std::printf(
      "\nEach side of the join pays one two-level exchange (write-combined:"
      "\n2P PUTs and <= 2P*sqrt(P) ranged GETs per side), which is what"
      "\nmakes full relational analytics viable on functions + S3.\n");
  return 0;
}
