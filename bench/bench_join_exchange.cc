// The operator the exchange machinery was built for: TPC-H Q12 (LINEITEM
// x ORDERS) and Q14 (LINEITEM x PART) as distributed hash joins. Both
// inputs hash-partition through the serverless exchange on their join
// keys — one two-level exchange round per side — and the join runs
// co-partitioned on every worker. The table tracks end-to-end latency,
// query cost, the exchange request traffic of both sides, and the join
// output cardinality across fleet sizes.

#include <memory>
#include <string>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;         // NOLINT
using namespace lambada::bench;  // NOLINT

namespace {

constexpr int64_t kLineitemRows = 120000;
constexpr int kLineitemFiles = 16;

struct JoinRun {
  double time_s = 0;
  double cost_usd = 0;
  int64_t exchange_puts = 0;
  int64_t exchange_gets = 0;
  int64_t rows_joined = 0;
};

JoinRun RunQuery(int query, int workers, int64_t orders_rows) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = workers + 64;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());

  workload::LoadOptions li;
  li.num_rows = kLineitemRows;
  li.num_files = kLineitemFiles;
  li.seed = 7;
  LAMBADA_CHECK_OK(workload::LoadLineitem(&cloud.s3(), "tpch", "li/", li));

  core::Query q = [&] {
    if (query == 12) {
      workload::LoadOptions oo;
      oo.num_rows = orders_rows;
      oo.num_files = 8;
      oo.seed = 13;
      LAMBADA_CHECK_OK(
          workload::LoadOrders(&cloud.s3(), "tpch", "orders/", oo));
      return workload::TpchQ12("s3://tpch/li/*.lpq",
                               "s3://tpch/orders/*.lpq");
    }
    workload::LoadOptions po;
    po.num_rows = workload::kPartCount;
    po.num_files = 8;
    po.seed = 13;
    LAMBADA_CHECK_OK(workload::LoadPart(&cloud.s3(), "tpch", "part/", po));
    return workload::TpchQ14("s3://tpch/li/*.lpq", "s3://tpch/part/*.lpq");
  }();

  core::RunOptions opts;
  opts.num_workers = workers;
  auto report = driver.RunToCompletion(q, opts);
  LAMBADA_CHECK(report.ok()) << report.status().ToString();
  LAMBADA_CHECK_EQ(report->workers, workers);

  JoinRun out;
  out.time_s = report->latency_s;
  out.cost_usd = report->CostUsd(cloud.pricing());
  for (const auto& wr : report->worker_results) {
    out.exchange_puts += wr.metrics.exchange_put_requests;
    out.exchange_gets += wr.metrics.exchange_get_requests;
    out.rows_joined += wr.metrics.rows_joined;
  }
  return out;
}

}  // namespace

int main() {
  const int64_t orders_rows =
      workload::MaxOrderKey(workload::GenerateLineitem(kLineitemRows, 7));

  Banner("Join exchange",
         "TPC-H Q12/Q14 as two-sided partitioned-exchange hash joins");
  Table t({"query", "workers", "time [s]", "cost [USD]", "exchange PUTs",
           "exchange GETs", "rows joined"},
          15, "distributed hash join across fleet sizes");
  int64_t q12_rows = -1, q14_rows = -1;
  for (int query : {12, 14}) {
    for (int workers : {4, 8, 16}) {
      JoinRun r = RunQuery(query, workers, orders_rows);
      t.Row({"Q" + std::to_string(query), FmtInt(workers),
             Fmt("%.2f", r.time_s), Fmt("%.5f", r.cost_usd),
             FmtInt(r.exchange_puts), FmtInt(r.exchange_gets),
             FmtInt(r.rows_joined)});
      // The join result must not depend on the fleet size.
      int64_t& expect = query == 12 ? q12_rows : q14_rows;
      if (expect < 0) {
        expect = r.rows_joined;
      } else {
        LAMBADA_CHECK_EQ(expect, r.rows_joined);
      }
    }
  }
  Notef("join cardinality is fleet-size invariant: Q12 joins %lld rows, "
        "Q14 joins %lld rows at 4/8/16 workers",
        static_cast<long long>(q12_rows), static_cast<long long>(q14_rows));
  std::printf(
      "\nEach side of the join pays one two-level exchange (write-combined:"
      "\n2P PUTs and <= 2P*sqrt(P) ranged GETs per side), which is what"
      "\nmakes full relational analytics viable on functions + S3.\n");
  return 0;
}
