// Reproduces Figure 13 of the paper: break-down and per-phase running time
// distribution of TwoLevelExchange on 1 TB (1250 workers) and 3 TB (2500
// workers). For each phase we report the fastest worker (the informal
// lower bound the paper plots) and the distribution across workers, plus
// the share of end-to-end time attributable to stragglers and waiting.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/exchange.h"
#include "engine/table.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

struct BreakdownResult {
  std::vector<core::ExchangeMetrics> metrics;  // Per worker.
  std::vector<double> total_s;                 // Per worker, end-to-end.
  double end_to_end = 0;
};

BreakdownResult RunBreakdown(int P, double total_bytes) {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = P + 64;
  cloud::Cloud cloud(cfg);
  core::ExchangeSpec spec;
  spec.keys = {"k"};
  spec.levels = 2;
  spec.write_combining = true;
  spec.num_buckets = 32;
  spec.exchange_id = "fig13";
  LAMBADA_CHECK_OK(core::CreateExchangeBuckets(&cloud.s3(), spec));

  auto schema = std::make_shared<engine::Schema>(std::vector<engine::Field>{
      {"k", engine::DataType::kInt64}, {"v", engine::DataType::kFloat64}});
  const int kRealRows = 2000;
  const double scale = total_bytes / P / (kRealRows * 16.0);

  BreakdownResult result;
  result.metrics.resize(static_cast<size_t>(P));
  result.total_s.resize(static_cast<size_t>(P));
  cloud::FunctionConfig fn;
  fn.name = "xchg";
  fn.memory_mib = 2048;
  fn.timeout_s = 1800;
  fn.handler = [&, schema, scale](cloud::WorkerEnv& env,
                                  std::string payload) -> Async<Status> {
    int p = std::stoi(payload);
    env.data_scale = scale;
    Rng rng(99 + static_cast<uint64_t>(p));
    std::vector<int64_t> keys(kRealRows);
    std::vector<double> vals(kRealRows);
    for (int i = 0; i < kRealRows; ++i) {
      keys[i] = rng.UniformInt(0, 1 << 30);
      vals[i] = rng.NextDouble();
    }
    engine::TableChunk input(
        *&schema, {engine::Column::Int64(std::move(keys)),
                   engine::Column::Float64(std::move(vals))});
    double t0 = env.sim()->Now();
    auto out = co_await core::RunExchange(
        env, spec, p, P, std::move(input),
        &result.metrics[static_cast<size_t>(p)]);
    if (!out.ok()) co_return out.status();
    result.total_s[static_cast<size_t>(p)] = env.sim()->Now() - t0;
    result.end_to_end = std::max(result.end_to_end, env.sim()->Now());
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  for (int p = 0; p < P; ++p) {
    sim::Spawn([](cloud::Cloud* c, int worker) -> Async<void> {
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "xchg",
                                std::to_string(worker));
    }(&cloud, p));
  }
  cloud.sim().Run();
  return result;
}

void Describe(const char* title, const BreakdownResult& r) {
  std::printf("\n--- %s ---\n", title);
  // Per-phase distributions (two rounds: write / wait / read).
  for (int round = 0; round < 2; ++round) {
    std::vector<double> write, wait, read;
    for (const auto& m : r.metrics) {
      if (static_cast<size_t>(round) >= m.rounds.size()) continue;
      write.push_back(m.rounds[round].partition_s + m.rounds[round].write_s);
      wait.push_back(m.rounds[round].wait_s);
      read.push_back(m.rounds[round].read_s);
    }
    Table t({"phase", "fastest [s]", "median [s]", "p95 [s]",
             "slowest [s]"},
            std::string(title) + ", round " + std::to_string(round + 1));
    auto row = [&](const char* name, std::vector<double> v) {
      t.Row({name, Fmt("%.3f", Percentile(v, 0.0)),
             Fmt("%.3f", Percentile(v, 0.5)),
             Fmt("%.3f", Percentile(v, 0.95)),
             Fmt("%.3f", Percentile(v, 1.0))});
    };
    std::printf("round %d:\n", round + 1);
    row("write", write);
    row("wait", wait);
    row("read", read);
  }
  // Lower bound vs actual (the paper's "fastest worker" line).
  double fastest_total = Percentile(r.total_s, 0.0);
  double slowest_total = Percentile(r.total_s, 1.0);
  double sum_fastest_phases = 0;
  for (int round = 0; round < 2; ++round) {
    double w = 1e300, rd = 1e300;
    for (const auto& m : r.metrics) {
      if (static_cast<size_t>(round) >= m.rounds.size()) continue;
      w = std::min(w, m.rounds[round].partition_s + m.rounds[round].write_s);
      rd = std::min(rd, m.rounds[round].read_s);
    }
    sum_fastest_phases += w + rd;
  }
  double total_wait = 0, total_time = 0;
  for (const auto& m : r.metrics) {
    for (const auto& round : m.rounds) total_wait += round.wait_s;
  }
  for (double t : r.total_s) total_time += t;
  std::printf("\n");
  Notef("fastest worker end-to-end: %s (%.0f%% of slowest %s)",
        FormatSeconds(fastest_total).c_str(),
        100.0 * fastest_total / slowest_total,
        FormatSeconds(slowest_total).c_str());
  Notef("sum of fastest phases (lower bound): %s",
        FormatSeconds(sum_fastest_phases).c_str());
  Notef("share of worker time spent waiting: %.0f%%",
        100.0 * total_wait / total_time);
}

}  // namespace

int main() {
  Banner("Figure 13", "TwoLevelExchange break-down and stragglers");
  auto small = RunBreakdown(1250, 1e12);
  Describe("1 TB, 1250 workers", small);
  auto big = RunBreakdown(2500, 3e12);
  Describe("3 TB, 2500 workers", big);
  std::printf(
      "\nPaper: on 1 TB the fastest worker takes ~85%% of the slowest and\n"
      "is close to the lower bound; on 3 TB more than half of the\n"
      "execution is stragglers and waiting — slow writers delay their\n"
      "whole group, and the delays propagate into round 2.\n");
  return 0;
}
