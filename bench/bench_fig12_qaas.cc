// Reproduces Figure 12 of the paper: Lambada (F=1, varying M) vs the
// commercial Query-as-a-Service systems Amazon Athena and Google BigQuery,
// on TPC-H Q1 and Q6 at scale factors 1k and 10k. SF 10k is produced by
// replicating each SF 1k file ten times, exactly as in the paper.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "core/session_manager.h"
#include "models/qaas.h"
#include "workload/tpch.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

namespace {

void LoadDatasets(cloud::Cloud& cloud) {
  workload::LoadOptions load;
  load.num_rows = 320 * 600;
  load.num_files = 320;
  load.row_groups_per_file = 4;
  load.virtual_bytes_per_file = 500 * kMB;
  LAMBADA_CHECK_OK(
      workload::LoadLineitem(&cloud.s3(), "tpch", "sf1000/", load));
  // SF 10k: "we replicate the files of SF 1000 accordingly".
  auto files = cloud.s3().ListDirect("tpch", "sf1000/");
  int counter = 0;
  for (const auto& f : files) {
    auto data = cloud.s3().GetDirect("tpch", f.key);
    auto scale = cloud.s3().Scale("tpch", f.key);
    LAMBADA_CHECK(data.ok());
    for (int r = 0; r < 10; ++r) {
      char name[64];
      std::snprintf(name, sizeof(name), "sf10000/part-%05d.lpq", counter++);
      LAMBADA_CHECK_OK(cloud.s3().PutDirect("tpch", name, *data, *scale));
    }
  }
}

struct LambadaRun {
  double cold_s, hot_s, cold_usd, hot_usd;
};

LambadaRun RunLambada(cloud::Cloud& cloud, core::Driver& driver,
                      const core::Query& q, int memory_mib) {
  core::RunOptions opts;
  opts.memory_mib = memory_mib;
  opts.files_per_worker = 1;
  driver.ResetWarm(memory_mib);
  auto cold = driver.RunToCompletion(q, opts);
  LAMBADA_CHECK(cold.ok()) << cold.status().ToString();
  auto hot = driver.RunToCompletion(q, opts);
  LAMBADA_CHECK(hot.ok()) << hot.status().ToString();
  return {cold->latency_s, hot->latency_s, cold->CostUsd(cloud.pricing()),
          hot->CostUsd(cloud.pricing())};
}

/// Serving throughput: the QaaS comparison extended from one query at a
/// time to a served fleet. N tenants' worth of Q6 arrive at once at a
/// QueryService over one shared deployment; the sweep measures queries/s
/// and cost/query at each concurrency level, first against an empty
/// metadata cache (cold) and then again with the cache warm. Shared scans
/// are on in both phases, so the warm delta isolates what the cache saves.
void ServingThroughputSweep() {
  Banner("Figure 12", "Serving throughput: Q6 fleet, cold vs warm cache");
  Table t({"cache", "batch", "queries/s [1/s]", "cost/query [USD]"}, 18,
          "serving-throughput");
  for (int c : {1, 4, 16, 64}) {
    cloud::CloudConfig cfg;
    cfg.concurrency_limit = 4000;
    cloud::Cloud cloud(cfg);
    workload::LoadOptions load;
    load.num_rows = 24000;
    load.num_files = 16;
    load.row_groups_per_file = 2;
    LAMBADA_CHECK_OK(
        workload::LoadLineitem(&cloud.s3(), "tpch", "li/", load));
    core::ServingOptions sopts;
    sopts.max_concurrent = c;
    core::QueryService svc(&cloud, sopts);
    core::TenantOptions tenant;
    tenant.id = "fleet";
    tenant.max_concurrent = c;
    tenant.queue_deadline_s = 1e9;
    LAMBADA_CHECK_OK(svc.AddTenant(tenant));
    for (const char* mode : {"cold", "warm"}) {
      auto reports =
          std::make_shared<std::vector<Result<core::QueryReport>>>(
              c, Status::Internal("pending"));
      const double t0 = cloud.sim().Now();
      for (int i = 0; i < c; ++i) {
        sim::Spawn(
            [](core::QueryService* s,
               std::shared_ptr<std::vector<Result<core::QueryReport>>> out,
               size_t idx) -> sim::Async<void> {
              // Named local, not a prvalue: GCC 12 bitwise-copies braced
              // prvalue aggregates promoted into coroutine frames.
              core::RunOptions ro;
              ro.files_per_worker = 4;
              (*out)[idx] = co_await s->Submit(
                  "fleet", workload::TpchQ6("s3://tpch/li/*.lpq"), ro);
            }(&svc, reports, static_cast<size_t>(i)));
      }
      cloud.sim().Run();
      const double makespan_s = cloud.sim().Now() - t0;
      double usd = 0;
      for (const auto& r : *reports) {
        LAMBADA_CHECK(r.ok()) << r.status().ToString();
        usd += r->CostUsd(cloud.pricing());
      }
      t.Row({mode, "n=" + std::to_string(c),
             Fmt("%.3f", static_cast<double>(c) / makespan_s),
             Fmt("%.4g", usd / static_cast<double>(c))});
    }
  }
  Note("warm rows reuse the cold batch's metadata cache; shared scans on "
       "in both");
}

}  // namespace

int main() {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 4000;  // Raised via support request (Section 5.1).
  // Real S3 partitions hot buckets by key prefix, so a large static
  // dataset sustains far more than the per-prefix floor; our simulator
  // applies limits per bucket, so model the sharded dataset bucket
  // explicitly (3200 concurrent scanners at SF 10k).
  cfg.s3.read_rate_per_bucket = 40000.0;
  cfg.s3.rate_burst = 4000.0;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  LoadDatasets(cloud);

  models::AthenaModel athena;
  models::BigQueryModel bigquery;
  models::QaasAnchors anchors;

  struct Workload {
    const char* name;
    const char* pattern;
    double sf_ratio;
    bool is_q1;
  };
  const Workload workloads[] = {
      {"Q1, SF 1k", "s3://tpch/sf1000/*.lpq", 1.0, true},
      {"Q1, SF 10k", "s3://tpch/sf10000/*.lpq", 10.0, true},
      {"Q6, SF 1k", "s3://tpch/sf1000/*.lpq", 1.0, false},
      {"Q6, SF 10k", "s3://tpch/sf10000/*.lpq", 10.0, false},
  };
  for (const auto& w : workloads) {
    Banner("Figure 12", w.name);
    Table t({"system", "time [s]", "cost [USD]"}, 22);
    core::Query q = w.is_q1 ? workload::TpchQ1(w.pattern)
                            : workload::TpchQ6(w.pattern);
    double lambada_hot = 0;
    for (int mem : {1792, 3008}) {
      auto r = RunLambada(cloud, driver, q, mem);
      if (mem == 1792) lambada_hot = r.hot_s;
      t.Row({"Lambada cold M=" + std::to_string(mem),
             Fmt("%.2f", r.cold_s), Fmt("%.4g", r.cold_usd)});
      t.Row({"Lambada hot  M=" + std::to_string(mem),
             Fmt("%.2f", r.hot_s), Fmt("%.4g", r.hot_usd)});
    }
    models::QaasQuery mq;
    mq.used_column_fraction = w.is_q1 ? 7.0 / 16 : 4.0 / 16;
    mq.row_selectivity = w.is_q1 ? 0.98 : 0.02;
    mq.sf_ratio = w.sf_ratio;
    auto a = athena.Estimate(
        mq, w.is_q1 ? anchors.athena_q1_s : anchors.athena_q6_s);
    t.Row({"Athena", Fmt("%.2f", a.latency_s), Fmt("%.4g", a.cost_usd)});
    auto b = bigquery.Estimate(
        mq, w.is_q1 ? anchors.bigquery_q1_s : anchors.bigquery_q6_s);
    t.Row({"BigQuery hot", Fmt("%.2f", b.latency_s),
           Fmt("%.4g", b.cost_usd)});
    t.Row({"BigQuery cold (load)",
           Fmt("%.2f", b.latency_s + b.load_time_s),
           Fmt("%.4g", b.cost_usd)});
    Notef("speedup vs Athena: %.1fx", a.latency_s / lambada_hot);
  }
  ServingThroughputSweep();
  std::printf(
      "\nPaper: Lambada ~4x faster than Athena on Q1 / on par on Q6 at\n"
      "SF 1k; ~26x and ~15x at SF 10k; one to two orders of magnitude\n"
      "cheaper than Athena/BigQuery except Q6 SF 1k (Athena's selection-\n"
      "aware pricing); BigQuery hot is fastest at SF 1k but loads for\n"
      "40 min / 6.7 h first.\n");
  return 0;
}
