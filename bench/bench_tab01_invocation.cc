// Reproduces Table 1 of the paper: characteristics of function invocations
// per region — single invocation latency, concurrent rate with 128 driver
// threads, and the intra-region (in-datacenter) rate.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

cloud::FunctionConfig NopFunction() {
  cloud::FunctionConfig fn;
  fn.name = "nop";
  fn.memory_mib = 1792;
  fn.handler = [](cloud::WorkerEnv&, std::string) -> Async<Status> {
    co_return Status::OK();
  };
  return fn;
}

/// Median latency of single driver invocations.
double SingleInvocationLatency(const std::string& region) {
  cloud::CloudConfig cfg;
  cfg.region = region;
  cloud::Cloud cloud(cfg);
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(NopFunction()));
  std::vector<double> latencies;
  sim::Spawn([](cloud::Cloud* c, std::vector<double>* out) -> Async<void> {
    for (int i = 0; i < 21; ++i) {
      double t0 = c->sim().Now();
      co_await c->faas().Invoke(c->driver_invoker_profile(),
                                &c->driver_rng(), "nop", "");
      out->push_back(c->sim().Now() - t0);
      co_await sim::Sleep(&c->sim(), 1.0);  // Avoid client-bucket effects.
    }
  }(&cloud, &latencies));
  cloud.sim().Run();
  return Median(latencies);
}

/// Aggregate rate with 128 concurrent invocation threads.
double ConcurrentRate(const std::string& region) {
  cloud::CloudConfig cfg;
  cfg.region = region;
  cfg.concurrency_limit = 8000;
  cloud::Cloud cloud(cfg);
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(NopFunction()));
  const int kCalls = 1024;
  double elapsed = 0;
  sim::Spawn([](cloud::Cloud* c, int calls, double* out) -> Async<void> {
    double t0 = c->sim().Now();
    auto gate = std::make_shared<sim::Semaphore>(&c->sim(), 128);
    std::vector<Async<void>> tasks;
    for (int i = 0; i < calls; ++i) {
      tasks.push_back(
          [](cloud::Cloud* cl,
             std::shared_ptr<sim::Semaphore> g) -> Async<void> {
            co_await g->Acquire();
            co_await cl->faas().Invoke(cl->driver_invoker_profile(),
                                       &cl->driver_rng(), "nop", "");
            g->Release();
          }(c, gate));
    }
    co_await sim::WhenAllVoid(&c->sim(), std::move(tasks));
    *out = c->sim().Now() - t0;
  }(&cloud, kCalls, &elapsed));
  cloud.sim().Run();
  return kCalls / elapsed;
}

/// Sequential invocation rate from inside the region (one worker thread).
double IntraRegionRate(const std::string& region) {
  cloud::CloudConfig cfg;
  cfg.region = region;
  cfg.concurrency_limit = 8000;
  cloud::Cloud cloud(cfg);
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(NopFunction()));
  double rate = 0;
  cloud::FunctionConfig parent;
  parent.name = "parent";
  parent.memory_mib = 2048;
  parent.handler = [&rate](cloud::WorkerEnv& env,
                           std::string) -> Async<Status> {
    const int kCalls = 200;
    double t0 = env.sim()->Now();
    for (int i = 0; i < kCalls; ++i) {
      co_await env.services().faas->Invoke(env.invoker_profile(),
                                           &env.rng(), "nop", "");
    }
    rate = kCalls / (env.sim()->Now() - t0);
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(parent));
  sim::Spawn([](cloud::Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "parent", "");
  }(&cloud));
  cloud.sim().Run();
  return rate;
}

}  // namespace

int main() {
  Banner("Table 1", "characteristics of function invocations by region");
  Table t({"metric", "eu", "us", "sa", "ap"});
  std::vector<std::string> lat = {"single inv. [ms]"};
  std::vector<std::string> conc = {"concurrent [1/s]"};
  std::vector<std::string> intra = {"intra-region [1/s]"};
  for (const char* region : {"eu", "us", "sa", "ap"}) {
    lat.push_back(Fmt("%.0f", SingleInvocationLatency(region) * 1000));
    conc.push_back(Fmt("%.0f", ConcurrentRate(region)));
    intra.push_back(Fmt("%.0f", IntraRegionRate(region)));
  }
  t.Row(lat);
  t.Row(conc);
  t.Row(intra);
  std::printf(
      "\nPaper (Table 1): single 36/363/474/536 ms; concurrent "
      "294/276/243/222 /s; intra-region 81/79/84/81 /s\n");
  return 0;
}
