#ifndef LAMBADA_BENCH_BENCH_UTIL_H_
#define LAMBADA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.h"

namespace lambada::bench {

/// Structured mirror of the console output. Every Banner / Table / Row call
/// is also recorded here, and when the environment variable
/// LAMBADA_BENCH_JSON names a file, the recording is flushed to it as JSON at
/// process exit (see scripts/run_benches.sh, which sets the variable to
/// BENCH_<figure>.json per binary). When the variable is unset the reporter
/// is a cheap in-memory no-op, so bench binaries behave exactly as before.
///
/// JSON shape ("lambada-bench-v1"):
///   { "schema": "lambada-bench-v1",
///     "experiments": [ { "id": "Figure 7", "title": "...",
///                        "tables": [ { "headers": [...],
///                                      "rows": [[...], ...] } ] } ] }
/// Cells that parse as numbers are emitted as JSON numbers so that perf
/// trajectories can be diffed numerically across PRs.
class JsonReport {
 public:
  /// Process-wide singleton; registers an atexit flush on first use.
  static JsonReport& Get();

  /// Starts a new experiment section (one per Banner call).
  void BeginExperiment(const std::string& id, const std::string& title);

  /// Starts a new table under the current experiment. The caption labels
  /// the table in the JSON (e.g. which query a distribution belongs to) so
  /// regression tooling need not rely on table order.
  void BeginTable(const std::vector<std::string>& headers,
                  const std::string& caption);

  /// Appends a row to the current table.
  void AddRow(const std::vector<std::string>& cells);

  /// Records a free-form headline metric line under the current experiment.
  void AddNote(const std::string& note);

  /// Writes the report to $LAMBADA_BENCH_JSON. No-op when the variable is
  /// unset or empty, or when nothing was recorded. Idempotent.
  void Flush();

 private:
  struct TableData {
    std::string caption;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  struct Experiment {
    std::string id;
    std::string title;
    std::vector<std::string> notes;
    std::vector<TableData> tables;
  };

  void WriteExperiments(std::FILE* f);

  std::vector<Experiment> experiments_;
  bool flushed_ = false;
};

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
  JsonReport::Get().BeginExperiment(id, title);
}

/// Prints a headline metric line and records it in the JSON report.
inline void Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
  JsonReport::Get().AddNote(text);
}

/// printf-style Note, sized exactly — no fixed buffer at call sites.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline void
Notef(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string s;
  if (n > 0) {
    s.resize(static_cast<size_t>(n));
    std::vsnprintf(s.data(), s.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  Note(s);
}

/// Fixed-width row printer for the experiment tables. The optional caption
/// is JSON-only metadata labelling the table (console output unchanged).
class Table {
 public:
  static constexpr int kDefaultWidth = 14;

  explicit Table(std::vector<std::string> headers, int width = kDefaultWidth,
                 std::string caption = "")
      : width_(width), cols_(headers.size()) {
    for (const auto& h : headers) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < cols_ * static_cast<size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
    JsonReport::Get().BeginTable(headers, caption);
  }

  /// Captioned table at the default width.
  Table(std::vector<std::string> headers, std::string caption)
      : Table(std::move(headers), kDefaultWidth, std::move(caption)) {}

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
    JsonReport::Get().AddRow(cells);
  }

 private:
  int width_;
  size_t cols_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// Median of a (copied) vector.
inline double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

inline double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace lambada::bench

#endif  // LAMBADA_BENCH_BENCH_UTIL_H_
