#ifndef LAMBADA_BENCH_BENCH_UTIL_H_
#define LAMBADA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.h"

namespace lambada::bench {

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
}

/// Fixed-width row printer for the experiment tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : width_(width), cols_(headers.size()) {
    for (const auto& h : headers) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < cols_ * static_cast<size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  int width_;
  size_t cols_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// Median of a (copied) vector.
inline double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

inline double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace lambada::bench

#endif  // LAMBADA_BENCH_BENCH_UTIL_H_
