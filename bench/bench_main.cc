// Shared JSON reporter backing bench_util.h. Linked into every console
// bench binary (lambada_bench_common); holds the JsonReport singleton and
// the serializer so the header stays declaration-only.

#include "bench_util.h"

#include <cstdlib>
#include <string>

namespace lambada::bench {
namespace {

/// JSON string escaping for the banner/header/cell text we emit. Control
/// characters below 0x20 are \u-escaped; everything else passes through.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// True if the whole cell is a valid JSON number ("36", "0.042", "1e3",
/// "-2.5E+7"). Stricter than strtod on purpose: forms like "0x1f", ".5",
/// "5.", "036", "inf" would be invalid JSON unquoted, so they (and cells
/// with units, "36 ms") stay strings.
bool IsNumber(const std::string& s) {
  size_t i = 0;
  const size_t n = s.size();
  if (i < n && s[i] == '-') ++i;
  if (i >= n || !IsDigit(s[i])) return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (i < n && IsDigit(s[i])) ++i;
  }
  if (i < n && s[i] == '.') {
    ++i;
    if (i >= n || !IsDigit(s[i])) return false;
    while (i < n && IsDigit(s[i])) ++i;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= n || !IsDigit(s[i])) return false;
    while (i < n && IsDigit(s[i])) ++i;
  }
  return i == n;
}

/// A cell: raw JSON number when it parses as one, quoted string otherwise.
std::string CellJson(const std::string& s) {
  if (IsNumber(s)) return s;
  return "\"" + Escape(s) + "\"";
}

void FlushAtExit() { JsonReport::Get().Flush(); }

}  // namespace

JsonReport& JsonReport::Get() {
  static JsonReport* report = [] {
    auto* r = new JsonReport();
    std::atexit(FlushAtExit);
    return r;
  }();
  return *report;
}

void JsonReport::BeginExperiment(const std::string& id,
                                 const std::string& title) {
  experiments_.push_back(Experiment{id, title, {}, {}});
}

void JsonReport::BeginTable(const std::vector<std::string>& headers,
                            const std::string& caption) {
  // A Table created before any Banner gets an anonymous experiment.
  if (experiments_.empty()) {
    experiments_.push_back(Experiment{"", "", {}, {}});
  }
  experiments_.back().tables.push_back(TableData{caption, headers, {}});
}

void JsonReport::AddRow(const std::vector<std::string>& cells) {
  if (experiments_.empty() || experiments_.back().tables.empty()) return;
  experiments_.back().tables.back().rows.push_back(cells);
}

void JsonReport::AddNote(const std::string& note) {
  if (experiments_.empty()) {
    experiments_.push_back(Experiment{"", "", {}, {}});
  }
  experiments_.back().notes.push_back(note);
}

void JsonReport::Flush() {
  if (flushed_) return;
  const char* path = std::getenv("LAMBADA_BENCH_JSON");
  if (path == nullptr || path[0] == '\0' || experiments_.empty()) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for JSON report\n", path);
    return;
  }
  flushed_ = true;
  std::fprintf(f, "{\n  \"schema\": \"lambada-bench-v1\",\n");
  std::fprintf(f, "  \"experiments\": [");
  WriteExperiments(f);
  std::fprintf(f, "\n  ]\n}\n");
  // A truncated report (disk full, IO error) must not look like a fresh
  // measurement: delete it so run_benches.sh's non-empty check fails.
  bool bad = std::ferror(f) != 0;
  bad = (std::fclose(f) != 0) || bad;
  if (bad) {
    std::fprintf(stderr, "bench: failed writing JSON report %s\n", path);
    std::remove(path);
  }
}

void JsonReport::WriteExperiments(std::FILE* f) {
  for (size_t e = 0; e < experiments_.size(); ++e) {
    const Experiment& exp = experiments_[e];
    std::fprintf(f, "%s\n    {\"id\": \"%s\", \"title\": \"%s\",", e ? "," : "",
                 Escape(exp.id).c_str(), Escape(exp.title).c_str());
    if (!exp.notes.empty()) {
      std::fprintf(f, "\n     \"notes\": [");
      for (size_t m = 0; m < exp.notes.size(); ++m) {
        std::fprintf(f, "%s\n      \"%s\"", m ? "," : "",
                     Escape(exp.notes[m]).c_str());
      }
      std::fprintf(f, "\n     ],");
    }
    std::fprintf(f, " \"tables\": [");
    for (size_t t = 0; t < exp.tables.size(); ++t) {
      const TableData& tab = exp.tables[t];
      std::fprintf(f, "%s\n      {", t ? "," : "");
      if (!tab.caption.empty()) {
        std::fprintf(f, "\"caption\": \"%s\",\n       ",
                     Escape(tab.caption).c_str());
      }
      std::fprintf(f, "\"headers\": [");
      for (size_t h = 0; h < tab.headers.size(); ++h) {
        std::fprintf(f, "%s\"%s\"", h ? ", " : "",
                     Escape(tab.headers[h]).c_str());
      }
      std::fprintf(f, "],\n       \"rows\": [");
      for (size_t r = 0; r < tab.rows.size(); ++r) {
        std::fprintf(f, "%s\n        [", r ? "," : "");
        for (size_t c = 0; c < tab.rows[r].size(); ++c) {
          std::fprintf(f, "%s%s", c ? ", " : "",
                       CellJson(tab.rows[r][c]).c_str());
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "%s]}", tab.rows.empty() ? "" : "\n       ");
    }
    std::fprintf(f, "%s]}", exp.tables.empty() ? "" : "\n    ");
  }
}

}  // namespace lambada::bench
