// Reproduces Figure 10 of the paper: TPC-H Query 1 at SF 1000 under
// varying worker memory (M) and files per worker (F). Each configuration
// runs on a fresh function: the first run is cold, the second hot.

#include <memory>

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "workload/tpch.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

namespace {

struct ConfigResult {
  double cold_s = 0, hot_s = 0;
  double cold_usd = 0, hot_usd = 0;
};

/// Shared deployment: the dataset is loaded once; each configuration
/// resets the warm pool, which is equivalent to the paper's "fresh
/// function for each configuration" (first run cold, second hot).
struct Deployment {
  Deployment() : cloud(MakeConfig()), driver(&cloud) {
    LAMBADA_CHECK_OK(driver.Install());
    workload::LoadOptions load;
    load.num_rows = 320 * 400;  // 320 files, SF 1000 shape.
    load.num_files = 320;
    load.row_groups_per_file = 4;
    load.virtual_bytes_per_file = 500 * kMB;  // "files of about 500 MB".
    LAMBADA_CHECK_OK(
        workload::LoadLineitem(&cloud.s3(), "tpch", "sf1000/", load));
  }
  static cloud::CloudConfig MakeConfig() {
    cloud::CloudConfig cfg;
    cfg.concurrency_limit = 400;
    return cfg;
  }
  cloud::Cloud cloud;
  core::Driver driver;
};

ConfigResult RunConfig(Deployment& dep, int memory_mib,
                       int files_per_worker) {
  auto q1 = workload::TpchQ1("s3://tpch/sf1000/*.lpq");
  core::RunOptions opts;
  opts.memory_mib = memory_mib;
  opts.files_per_worker = files_per_worker;
  dep.driver.ResetWarm(memory_mib);

  ConfigResult out;
  auto cold = dep.driver.RunToCompletion(q1, opts);
  LAMBADA_CHECK(cold.ok()) << cold.status().ToString();
  out.cold_s = cold->latency_s;
  out.cold_usd = cold->CostUsd(dep.cloud.pricing());
  auto hot = dep.driver.RunToCompletion(q1, opts);
  LAMBADA_CHECK(hot.ok()) << hot.status().ToString();
  out.hot_s = hot->latency_s;
  out.hot_usd = hot->CostUsd(dep.cloud.pricing());
  return out;
}

}  // namespace

int main() {
  Deployment dep;
  Banner("Figure 10a", "Q1, F=1 (320 workers), varying memory M");
  {
    Table t({"M [MiB]", "cold time [s]", "cold cost [USD]", "hot time [s]",
             "hot cost [USD]"},
            16);
    for (int mem : {512, 1024, 1792, 2048, 3008}) {
      auto r = RunConfig(dep, mem, 1);
      t.Row({FmtInt(mem), Fmt("%.2f", r.cold_s), Fmt("%.4g", r.cold_usd),
             Fmt("%.2f", r.hot_s), Fmt("%.4g", r.hot_usd)});
    }
  }
  Banner("Figure 10b", "Q1, M=1792 MiB, varying files per worker F");
  {
    Table t({"F", "workers", "cold time [s]", "cold cost [USD]",
             "hot time [s]", "hot cost [USD]"},
            16);
    for (int f : {4, 2, 1}) {
      auto r = RunConfig(dep, 1792, f);
      t.Row({FmtInt(f), FmtInt(320 / f), Fmt("%.2f", r.cold_s),
             Fmt("%.4g", r.cold_usd), Fmt("%.2f", r.hot_s),
             Fmt("%.4g", r.hot_usd)});
    }
  }
  Banner("Figure 10c", "Q1, all M x F combinations (hot runs)");
  {
    Table t({"M [MiB]", "F", "time [s]", "cost [USD]"});
    for (int mem : {512, 1024, 1792, 2048, 3008}) {
      for (int f : {4, 2, 1}) {
        auto r = RunConfig(dep, mem, f);
        t.Row({FmtInt(mem), FmtInt(f), Fmt("%.2f", r.hot_s),
               Fmt("%.4g", r.hot_usd)});
      }
    }
  }
  std::printf(
      "\nPaper: 512->1792 MiB gets significantly faster (GZIP scans are\n"
      "CPU-bound) and slightly cheaper; beyond 1792 MiB price rises with\n"
      "no speedup; more workers (smaller F) is faster at diminishing\n"
      "returns; cold runs ~20%% slower; all under 10 s at M>=1792, F=1.\n");
  return 0;
}
