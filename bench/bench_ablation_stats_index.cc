// Ablation for the Section 5.3 extension: a central min/max statistics
// index (DynamoDB) consulted by the driver before fan-out. The paper notes
// that with such an index, workers whose files are fully pruned "would not
// even be started". We compare Q6 (highly prunable) and Q1 (barely
// prunable) with and without the index.

#include "bench_util.h"
#include "cloud/cloud.h"
#include "core/driver.h"
#include "core/stats_index.h"
#include "workload/tpch.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT

int main() {
  cloud::CloudConfig cfg;
  cfg.concurrency_limit = 400;
  cloud::Cloud cloud(cfg);
  core::Driver driver(&cloud);
  LAMBADA_CHECK_OK(driver.Install());
  core::StatsIndex index(&cloud.ddb());

  workload::LoadOptions load;
  load.num_rows = 320 * 600;
  load.num_files = 320;
  load.row_groups_per_file = 4;
  load.virtual_bytes_per_file = 500 * kMB;
  load.stats_index = &index;
  load.dataset = "tpch/sf1000/";
  LAMBADA_CHECK_OK(
      workload::LoadLineitem(&cloud.s3(), "tpch", "sf1000/", load));

  Banner("Ablation", "central min/max index (Section 5.3 extension)");
  Table t({"query", "index", "workers", "time [s]", "cost [USD]"}, 14);
  for (bool is_q1 : {false, true}) {
    core::Query q = is_q1 ? workload::TpchQ1("s3://tpch/sf1000/*.lpq")
                          : workload::TpchQ6("s3://tpch/sf1000/*.lpq");
    const char* name = is_q1 ? "Q1" : "Q6";
    for (bool use_index : {false, true}) {
      core::RunOptions opts;
      opts.use_stats_index = use_index;
      // Warm-up run so both variants compare hot.
      LAMBADA_CHECK(driver.RunToCompletion(q, opts).ok());
      auto report = driver.RunToCompletion(q, opts);
      LAMBADA_CHECK(report.ok()) << report.status().ToString();
      t.Row({name, use_index ? "yes" : "no", FmtInt(report->workers),
             Fmt("%.2f", report->latency_s),
             Fmt("%.4g", report->CostUsd(cloud.pricing()))});
    }
  }
  std::printf(
      "\nQ6 selects one of ~6.8 years of a relation sorted by l_shipdate:\n"
      "the index lets the driver start ~1/6 of the workers, cutting cost\n"
      "without changing the result. Q1 selects 98%% of the relation, so\n"
      "the index cannot help it.\n");
  return 0;
}
