// Reproduces Figure 4 of the paper: relative compute performance of
// serverless workers vs memory size, with one or two threads. A fixed
// amount of number crunching runs inside workers of various sizes; the
// throughput relative to a single-threaded 1792 MiB worker is reported.

#include "bench_util.h"
#include "cloud/cloud.h"

using namespace lambada;        // NOLINT
using namespace lambada::bench; // NOLINT
using sim::Async;

namespace {

/// Time to complete `work_per_thread` vCPU-seconds on `threads` threads in
/// a worker of the given size.
double MeasureCompute(int memory_mib, int threads,
                      double work_per_thread = 1.0) {
  cloud::Cloud cloud;
  cloud::FunctionConfig fn;
  fn.name = "crunch";
  fn.memory_mib = memory_mib;
  double duration = -1;
  fn.handler = [&, threads, work_per_thread](
                   cloud::WorkerEnv& env, std::string) -> Async<Status> {
    double t0 = env.sim()->Now();
    std::vector<Async<void>> tasks;
    for (int i = 0; i < threads; ++i) {
      tasks.push_back(env.Compute(work_per_thread));
    }
    co_await sim::WhenAllVoid(env.sim(), std::move(tasks));
    duration = env.sim()->Now() - t0;
    co_return Status::OK();
  };
  LAMBADA_CHECK_OK(cloud.faas().CreateFunction(fn));
  sim::Spawn([](cloud::Cloud* c) -> Async<void> {
    co_await c->faas().Invoke(c->driver_invoker_profile(), &c->driver_rng(),
                              "crunch", "");
  }(&cloud));
  cloud.sim().Run();
  return duration;
}

}  // namespace

int main() {
  Banner("Figure 4", "relative compute performance vs memory size");
  // Baseline: single thread at 1792 MiB (exactly one vCPU).
  const double base_throughput = 1.0 / MeasureCompute(1792, 1);
  Table t({"memory [MiB]", "1 thread [%]", "2 threads [%]"});
  for (int mem : {256, 512, 1024, 1792, 2048, 2560, 3008}) {
    double t1 = MeasureCompute(mem, 1);
    double t2 = MeasureCompute(mem, 2);
    // Two threads do 2x the total work; throughput = work / time.
    double rel1 = (1.0 / t1) / base_throughput * 100.0;
    double rel2 = (2.0 / t2) / base_throughput * 100.0;
    t.Row({FmtInt(mem), Fmt("%.0f", rel1), Fmt("%.0f", rel2)});
  }
  std::printf(
      "\nPaper: performance proportional to memory below 1792 MiB; one\n"
      "thread caps at 100%%; two threads reach ~167%% at 3008 MiB.\n");
  return 0;
}
