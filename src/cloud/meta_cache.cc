#include "cloud/meta_cache.h"

#include <algorithm>
#include <utility>

#include "common/binio.h"
#include "common/buffer.h"
#include "common/logging.h"

namespace lambada::cloud {

namespace {

/// Head items leave room for the part-count varint; part items carry raw
/// payload bytes with no framing, so each can use the full item limit.
constexpr size_t kHeadOverheadBytes = 10;

std::string TakeString(BinaryWriter* w) {
  std::vector<uint8_t> bytes = w->Take();
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

MetadataCache::MetadataCache(KeyValueStore* kv, ObjectStore* s3,
                             std::string table, obs::MetricsRegistry* metrics)
    : kv_(kv), s3_(s3), table_(std::move(table)), metrics_(metrics) {
  Status st = kv_->CreateTable(table_);
  LAMBADA_CHECK(st.ok()) << "metadata cache table: " << st.ToString();
  s3_->set_write_observer([this](const std::string& bucket,
                                 const std::string& key) {
    OnWrite(bucket, key);
  });
}

MetadataCache::~MetadataCache() { s3_->set_write_observer(nullptr); }

void MetadataCache::OnWrite(const std::string& bucket,
                            const std::string& key) {
  if (key.empty()) {
    // Bucket-wide change (ClearBucket): a new epoch retires every cached
    // entry of the bucket at once.
    ++bucket_epoch_[bucket];
    return;
  }
  ++object_version_[{bucket, key}];
  ++bucket_list_version_[bucket];
}

uint64_t MetadataCache::Epoch(const std::string& bucket) const {
  auto it = bucket_epoch_.find(bucket);
  return it == bucket_epoch_.end() ? 0 : it->second;
}

uint64_t MetadataCache::ObjectVersion(const std::string& bucket,
                                      const std::string& key) const {
  auto it = object_version_.find({bucket, key});
  return it == object_version_.end() ? 0 : it->second;
}

uint64_t MetadataCache::ListVersion(const std::string& bucket) const {
  auto it = bucket_list_version_.find(bucket);
  return it == bucket_list_version_.end() ? 0 : it->second;
}

std::string MetadataCache::FooterKey(const std::string& bucket,
                                     const std::string& key,
                                     int64_t suffix_length) const {
  return "f/" + std::to_string(Epoch(bucket)) + "." +
         std::to_string(ObjectVersion(bucket, key)) + "/" + bucket + "/" +
         key + "@" + std::to_string(suffix_length);
}

std::string MetadataCache::ListingKey(const std::string& bucket,
                                      const std::string& prefix) const {
  return "l/" + std::to_string(Epoch(bucket)) + "." +
         std::to_string(ListVersion(bucket)) + "/" + bucket + "/" + prefix;
}

void MetadataCache::CountHit() {
  ++hits_;
  if (metrics_ != nullptr) metrics_->Add(obs::Metric::kMetaCacheHits, 1);
}

void MetadataCache::CountMiss() {
  ++misses_;
  if (metrics_ != nullptr) metrics_->Add(obs::Metric::kMetaCacheMisses, 1);
}

sim::Async<Result<std::string>> MetadataCache::GetBlob(NetContext ctx,
                                                       std::string key) {
  auto head = co_await kv_->Get(ctx, table_, key);
  if (!head.ok()) co_return head.status();
  BinaryReader r(reinterpret_cast<const uint8_t*>(head->data()),
                 head->size());
  auto nparts_r = r.GetVarint();
  if (!nparts_r.ok()) co_return nparts_r.status();
  uint64_t nparts = *nparts_r;
  if (nparts == 0) {
    co_return head->substr(head->size() - r.remaining());
  }
  std::string blob;
  for (uint64_t i = 0; i < nparts; ++i) {
    auto part =
        co_await kv_->Get(ctx, table_, key + "#" + std::to_string(i));
    // A torn fill (part never written) reads as a miss.
    if (!part.ok()) co_return part.status();
    blob += *part;
  }
  co_return blob;
}

sim::Async<Status> MetadataCache::PutBlob(NetContext ctx, std::string key,
                                          std::string blob) {
  const size_t limit = 400 * 1000;  // DynamoDB item limit (kv enforces it).
  BinaryWriter head;
  if (blob.size() + kHeadOverheadBytes <= limit) {
    head.PutVarint(0);
    head.PutRaw(blob.data(), blob.size());
    co_return co_await kv_->Put(ctx, table_, std::move(key),
                                TakeString(&head));
  }
  // Oversize blob: raw-byte parts at `key#i`, head holds the part count.
  size_t nparts = (blob.size() + limit - 1) / limit;
  for (size_t i = 0; i < nparts; ++i) {
    size_t off = i * limit;
    CO_RETURN_NOT_OK(co_await kv_->Put(
        ctx, table_, key + "#" + std::to_string(i),
        blob.substr(off, std::min(limit, blob.size() - off))));
  }
  head.PutVarint(nparts);
  co_return co_await kv_->Put(ctx, table_, std::move(key),
                              TakeString(&head));
}

sim::Async<Result<ObjectStore::TailResult>> MetadataCache::GetFooter(
    NetContext ctx, std::string bucket, std::string key,
    int64_t suffix_length) {
  auto blob = co_await GetBlob(ctx, FooterKey(bucket, key, suffix_length));
  if (!blob.ok()) {
    CountMiss();
    co_return blob.status();
  }
  BinaryReader r(reinterpret_cast<const uint8_t*>(blob->data()),
                 blob->size());
  ObjectStore::TailResult tail;
  auto size_r = r.GetI64();
  if (!size_r.ok()) co_return size_r.status();
  tail.object_size = *size_r;
  auto data_r = r.GetBytes();
  if (!data_r.ok()) co_return data_r.status();
  tail.data = Buffer::FromVector(std::move(*data_r));
  CountHit();
  co_return tail;
}

sim::Async<Status> MetadataCache::PutFooter(NetContext ctx,
                                            std::string bucket,
                                            std::string key,
                                            int64_t suffix_length,
                                            ObjectStore::TailResult tail) {
  BinaryWriter w;
  w.PutI64(tail.object_size);
  w.PutVarint(tail.data->size());
  w.PutRaw(tail.data->data(), tail.data->size());
  co_return co_await PutBlob(ctx, FooterKey(bucket, key, suffix_length),
                             TakeString(&w));
}

sim::Async<Result<std::vector<ObjectInfo>>> MetadataCache::GetListing(
    NetContext ctx, std::string bucket, std::string prefix) {
  auto blob = co_await GetBlob(ctx, ListingKey(bucket, prefix));
  if (!blob.ok()) {
    CountMiss();
    co_return blob.status();
  }
  BinaryReader r(reinterpret_cast<const uint8_t*>(blob->data()),
                 blob->size());
  auto n_r = r.GetVarint();
  if (!n_r.ok()) co_return n_r.status();
  uint64_t n = *n_r;
  std::vector<ObjectInfo> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ObjectInfo info;
    auto key_r = r.GetString();
    if (!key_r.ok()) co_return key_r.status();
    info.key = std::move(*key_r);
    auto isize_r = r.GetI64();
    if (!isize_r.ok()) co_return isize_r.status();
    info.size = *isize_r;
    out.push_back(std::move(info));
  }
  CountHit();
  co_return out;
}

sim::Async<Status> MetadataCache::PutListing(NetContext ctx,
                                             std::string bucket,
                                             std::string prefix,
                                             std::vector<ObjectInfo> listing) {
  BinaryWriter w;
  w.PutVarint(listing.size());
  for (const auto& info : listing) {
    w.PutString(info.key);
    w.PutI64(info.size);
  }
  co_return co_await PutBlob(ctx, ListingKey(bucket, prefix),
                             TakeString(&w));
}

}  // namespace lambada::cloud
