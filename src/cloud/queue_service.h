#ifndef LAMBADA_CLOUD_QUEUE_SERVICE_H_
#define LAMBADA_CLOUD_QUEUE_SERVICE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cost_ledger.h"
#include "cloud/net.h"
#include "common/status.h"
#include "sim/async.h"
#include "sim/simulator.h"

namespace lambada::cloud {

/// Simulated Amazon SQS. Workers post their (small) results and error
/// reports here; the driver polls until it has heard from every worker
/// (Section 3.3).
struct QueueServiceConfig {
  double request_latency_median_s = 0.010;
  double request_latency_sigma = 0.3;
  /// SQS rejects message bodies larger than 256 KiB.
  size_t max_message_bytes = 256 * 1024;
  /// Maximum messages returned per receive call (SQS: 10).
  int max_receive_batch = 10;
};

class QueueService {
 public:
  QueueService(sim::Simulator* sim, CostLedger* ledger,
               const QueueServiceConfig& config = {});

  /// Creates a queue. Idempotent; free control-plane operation.
  Status CreateQueue(const std::string& name);
  bool QueueExists(const std::string& name) const;
  /// Drops all pending messages (between experiment repetitions).
  void PurgeQueue(const std::string& name);

  /// Sends one message. Fails with InvalidArgument beyond the size limit.
  sim::Async<Status> Send(NetContext ctx, std::string queue,
                          std::string body);

  /// Long-poll receive: waits up to `wait_time_s` for at least one message,
  /// returns up to `max_messages` (capped at the service batch limit).
  /// Returns an empty vector on timeout. Each call is one billed request.
  sim::Async<Result<std::vector<std::string>>> Receive(
      NetContext ctx, std::string queue, int max_messages,
      double wait_time_s);

  /// Number of messages currently in the queue (host-side inspection).
  size_t DepthDirect(const std::string& name) const;

 private:
  struct Queue {
    std::deque<std::string> messages;
    std::unique_ptr<sim::Event> arrival;  // Pulsed on every send.
  };

  Queue* FindQueue(const std::string& name);

  sim::Simulator* sim_;
  CostLedger* ledger_;
  QueueServiceConfig config_;
  std::map<std::string, Queue> queues_;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_QUEUE_SERVICE_H_
