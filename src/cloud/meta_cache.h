#ifndef LAMBADA_CLOUD_META_CACHE_H_
#define LAMBADA_CLOUD_META_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cloud/kv_store.h"
#include "cloud/net.h"
#include "cloud/object_store.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/async.h"

namespace lambada::cloud {

/// Warm metadata cache in front of the object store's control traffic:
/// LIST results and file footers land in DynamoDB items so repeat queries
/// skip the cold LIST + footer round-trips (a DynamoDB read costs 0.25 µ$
/// and ~5 ms against an S3 GET's 0.4 µ$ and ~25 ms, and a LIST's 5 µ$ and
/// ~60 ms).
///
/// Correctness rests on versioned keys, not invalidation: the cache
/// observes every object-store write (ObjectStore::set_write_observer) and
/// bumps host-side version counters; the version is part of the cache key,
/// so after a table rewrite the old entry is simply never addressed again.
/// Values above DynamoDB's 400 KB item limit split across `key#i` part
/// items referenced from the head item.
///
/// All lookups are real simulated DynamoDB requests through the caller's
/// NetContext — latency and cost are modeled, not free.
class MetadataCache {
 public:
  /// Creates `table` in `kv` and installs the write observer on `s3`.
  /// `metrics` (optional) receives hit/miss counters.
  MetadataCache(KeyValueStore* kv, ObjectStore* s3, std::string table,
                obs::MetricsRegistry* metrics = nullptr);

  /// Uninstalls the write observer (the store outlives the cache).
  ~MetadataCache();

  MetadataCache(const MetadataCache&) = delete;
  MetadataCache& operator=(const MetadataCache&) = delete;

  /// Cached suffix-range fetch. NotFound means "cache miss" — the caller
  /// does the real GetTail and offers the result back via PutFooter.
  sim::Async<Result<ObjectStore::TailResult>> GetFooter(NetContext ctx,
                                                        std::string bucket,
                                                        std::string key,
                                                        int64_t suffix_length);
  sim::Async<Status> PutFooter(NetContext ctx, std::string bucket,
                               std::string key, int64_t suffix_length,
                               ObjectStore::TailResult tail);

  /// Cached LIST. NotFound means "cache miss".
  sim::Async<Result<std::vector<ObjectInfo>>> GetListing(NetContext ctx,
                                                         std::string bucket,
                                                         std::string prefix);
  sim::Async<Status> PutListing(NetContext ctx, std::string bucket,
                                std::string prefix,
                                std::vector<ObjectInfo> listing);

  /// Version-bump hook; public so tests can simulate out-of-band writes.
  void OnWrite(const std::string& bucket, const std::string& key);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

  /// Current versioned cache key for a footer / listing (tests pin these).
  std::string FooterKey(const std::string& bucket, const std::string& key,
                        int64_t suffix_length) const;
  std::string ListingKey(const std::string& bucket,
                         const std::string& prefix) const;

 private:
  uint64_t Epoch(const std::string& bucket) const;
  uint64_t ObjectVersion(const std::string& bucket,
                         const std::string& key) const;
  uint64_t ListVersion(const std::string& bucket) const;

  /// Reads a (possibly multi-part) blob; NotFound on any absent piece.
  sim::Async<Result<std::string>> GetBlob(NetContext ctx, std::string key);
  /// Writes a blob, splitting into `key#i` parts above the item limit.
  sim::Async<Status> PutBlob(NetContext ctx, std::string key,
                             std::string blob);

  void CountHit();
  void CountMiss();

  KeyValueStore* kv_;
  ObjectStore* s3_;
  std::string table_;
  obs::MetricsRegistry* metrics_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;

  /// Host-side version state fed by the write observer.
  std::map<std::string, uint64_t> bucket_epoch_;
  std::map<std::string, uint64_t> bucket_list_version_;
  std::map<std::pair<std::string, std::string>, uint64_t> object_version_;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_META_CACHE_H_
