#ifndef LAMBADA_CLOUD_COST_LEDGER_H_
#define LAMBADA_CLOUD_COST_LEDGER_H_

#include <cstdint>
#include <string>

#include "cloud/pricing.h"

namespace lambada::cloud {

/// Cumulative usage counters for every serverless service. The driver takes
/// a snapshot before and after a query and reports the difference, which is
/// exactly the pay-per-use bill of that query.
struct CostSnapshot {
  double lambda_gib_seconds = 0;
  int64_t lambda_invocations = 0;
  int64_t s3_get_requests = 0;
  int64_t s3_put_requests = 0;
  int64_t s3_list_requests = 0;
  int64_t s3_bytes_read = 0;     ///< Virtual (modeled) bytes.
  int64_t s3_bytes_written = 0;  ///< Virtual (modeled) bytes.
  int64_t sqs_requests = 0;
  int64_t ddb_reads = 0;
  int64_t ddb_writes = 0;
  /// Fractional GET requests from shared scans: when N concurrent queries
  /// attach to one in-flight ranged GET, each is billed 1/N of the request
  /// (and its share of the bytes) so the fleet-wide sum still matches the
  /// single physical request.
  double s3_shared_get_requests = 0;
  double s3_shared_bytes_read = 0;  ///< Virtual (modeled) bytes, fractional.

  CostSnapshot operator-(const CostSnapshot& base) const {
    CostSnapshot d = *this;
    d.lambda_gib_seconds -= base.lambda_gib_seconds;
    d.lambda_invocations -= base.lambda_invocations;
    d.s3_get_requests -= base.s3_get_requests;
    d.s3_put_requests -= base.s3_put_requests;
    d.s3_list_requests -= base.s3_list_requests;
    d.s3_bytes_read -= base.s3_bytes_read;
    d.s3_bytes_written -= base.s3_bytes_written;
    d.sqs_requests -= base.sqs_requests;
    d.ddb_reads -= base.ddb_reads;
    d.ddb_writes -= base.ddb_writes;
    d.s3_shared_get_requests -= base.s3_shared_get_requests;
    d.s3_shared_bytes_read -= base.s3_shared_bytes_read;
    return d;
  }

  double LambdaUsd(const Pricing& p) const {
    return lambda_gib_seconds * p.lambda_gib_second +
           static_cast<double>(lambda_invocations) * p.lambda_per_invocation;
  }
  double S3RequestUsd(const Pricing& p) const {
    return static_cast<double>(s3_get_requests) * p.s3_get +
           s3_shared_get_requests * p.s3_get +
           static_cast<double>(s3_put_requests) * p.s3_put +
           static_cast<double>(s3_list_requests) * p.s3_list;
  }
  double SqsUsd(const Pricing& p) const {
    return static_cast<double>(sqs_requests) * p.sqs_request;
  }
  double DdbUsd(const Pricing& p) const {
    return static_cast<double>(ddb_reads) * p.ddb_read +
           static_cast<double>(ddb_writes) * p.ddb_write;
  }
  /// Total pay-per-use cost in USD.
  double TotalUsd(const Pricing& p) const {
    return LambdaUsd(p) + S3RequestUsd(p) + SqsUsd(p) + DdbUsd(p);
  }

  /// Multi-line human-readable breakdown.
  std::string ToString(const Pricing& p) const;
};

/// The running bill of a simulated cloud deployment.
class CostLedger {
 public:
  void AddLambda(double gib_seconds) {
    totals_.lambda_gib_seconds += gib_seconds;
  }
  void AddInvocation() { ++totals_.lambda_invocations; }
  void AddS3Get(int64_t bytes) {
    ++totals_.s3_get_requests;
    totals_.s3_bytes_read += bytes;
  }
  /// A query's fractional share of one shared ranged GET.
  void AddSharedS3Get(double bytes, double request_fraction) {
    totals_.s3_shared_get_requests += request_fraction;
    totals_.s3_shared_bytes_read += bytes;
  }
  void AddS3Put(int64_t bytes) {
    ++totals_.s3_put_requests;
    totals_.s3_bytes_written += bytes;
  }
  void AddS3List() { ++totals_.s3_list_requests; }
  void AddSqsRequest() { ++totals_.sqs_requests; }
  void AddDdbRead() { ++totals_.ddb_reads; }
  void AddDdbWrite() { ++totals_.ddb_writes; }

  const CostSnapshot& totals() const { return totals_; }
  CostSnapshot Snapshot() const { return totals_; }

 private:
  CostSnapshot totals_;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_COST_LEDGER_H_
