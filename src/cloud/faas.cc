#include "cloud/faas.h"

#include <algorithm>
#include <cmath>

#include "cloud/pricing.h"
#include "common/units.h"

namespace lambada::cloud {

namespace {

/// Degrades a NIC profile by the straggler factor of a worker's fate.
sim::SharedLink::Config ScaleNic(sim::SharedLink::Config c, double factor) {
  c.sustained_bps *= factor;
  c.peak_bps *= factor;
  c.per_conn_bps *= factor;
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerEnv
// ---------------------------------------------------------------------------

WorkerEnv::WorkerEnv(Services services, std::string function_name,
                     int memory_mib, uint64_t seed, bool cold,
                     WorkerFate fate)
    : services_(services),
      function_name_(std::move(function_name)),
      memory_mib_(memory_mib),
      cold_(cold),
      rng_(seed),
      fate_(fate),
      // A straggler fate shrinks the *actual* CPU share and NIC of this
      // host; cpu_share() keeps reporting the nominal value (the worker
      // does not know it landed on a degraded host).
      cpu_(services.sim, memory_mib / 1792.0 * fate.cpu_factor,
           /*per_job_cap=*/1.0),
      nic_(services.sim,
           ScaleNic(WorkerNicConfig(memory_mib), fate.net_factor)) {}

InvokerProfile WorkerEnv::invoker_profile() {
  // Workers invoke within their own region; no client-side cap is needed
  // (Table 1: "Intra-region rate").
  InvokerProfile p;
  p.latency_median_s = 0.012;
  p.latency_sigma = 0.15;
  p.client_bucket = nullptr;
  return p;
}

int64_t WorkerEnv::memory_budget_bytes() const {
  // The event handler reserves a slice of the function's memory for the
  // language runtime and starts the engine with the remainder
  // (Section 3.3: "a memory limit slightly lower than that of the
  // serverless function").
  constexpr int64_t kRuntimeOverheadBytes = 96LL * kMiB;
  return static_cast<int64_t>(memory_mib_) * kMiB - kRuntimeOverheadBytes;
}

Status WorkerEnv::ReserveMemory(int64_t bytes) {
  if (memory_used_ + bytes > memory_budget_bytes()) {
    return Status::OutOfMemory(
        "worker exceeded memory budget: " + FormatBytes(memory_used_ + bytes) +
        " > " + FormatBytes(memory_budget_bytes()));
  }
  memory_used_ += bytes;
  return Status::OK();
}

void WorkerEnv::ReleaseMemory(int64_t bytes) {
  memory_used_ -= bytes;
  LAMBADA_DCHECK(memory_used_ >= 0);
}

void WorkerEnv::RecordPhase(const std::string& label, double start) {
  metrics_.phases.push_back(
      WorkerMetrics::Phase{label, start, services_.sim->Now()});
}

// ---------------------------------------------------------------------------
// FaasService
// ---------------------------------------------------------------------------

FaasService::FaasService(sim::Simulator* sim, CostLedger* ledger,
                         Services services, const FaasConfig& config)
    : sim_(sim),
      ledger_(ledger),
      services_(services),
      config_(config),
      api_rate_(config.concurrency_limit * config.invocation_rate_multiple,
                config.concurrency_limit * config.invocation_rate_multiple) {
  services_.faas = this;
}

Status FaasService::CreateFunction(FunctionConfig config) {
  if (config.name.empty()) return Status::Invalid("empty function name");
  if (config.memory_mib < 128 || config.memory_mib > 3008) {
    return Status::Invalid("function memory must be in [128, 3008] MiB");
  }
  if (!config.handler) return Status::Invalid("function has no handler");
  // Idempotent: re-creating an existing function keeps its warm pool and,
  // crucially, never swaps the handler out from under running workers.
  if (functions_.find(config.name) != functions_.end()) {
    return Status::OK();
  }
  // Copy the key first: the RHS (which moves `config`) is sequenced
  // before the subscript expression in an assignment.
  std::string name = config.name;
  functions_[name] = Function{std::move(config), {}};
  return Status::OK();
}

void FaasService::ResetWarmPool(const std::string& name) {
  auto it = functions_.find(name);
  if (it != functions_.end()) it->second.warm_pool.clear();
}

sim::Async<Status> FaasService::Invoke(InvokerProfile profile,
                                       Rng* caller_rng, std::string function,
                                       std::string payload,
                                       CostLedger* attribution) {
  // Client-side throughput cap (WAN-bound drivers).
  double client_delay = 0.0;
  if (profile.client_bucket != nullptr) {
    client_delay = profile.client_bucket->ReserveDelay(sim_->Now());
  }
  double latency =
      caller_rng->Lognormal(profile.latency_median_s, profile.latency_sigma);
  co_await sim::Sleep(sim_, client_delay + latency);

  auto it = functions_.find(function);
  if (it == functions_.end()) {
    co_return Status::NotFound("no such function: " + function);
  }
  Function* fn = &it->second;
  if (payload.size() > config_.max_payload_bytes) {
    co_return Status::Invalid("invocation payload exceeds 256 KB");
  }
  if (fault_ != nullptr) {
    // Injected control-plane failure; retriable, like a real 500 from
    // the Invoke API.
    Status injected = fault_->InjectRequestFault(FaultOp::kInvoke);
    if (!injected.ok()) {
      if (tracer_ != nullptr) {
        tracer_->Instant(tracer_->root(), "fault.invoke_error");
      }
      co_return injected;
    }
  }
  // Account-wide invocation-rate limit.
  if (api_rate_.CurrentDelay(sim_->Now()) > 0.5) {
    co_return Status::ResourceExhausted("Rate exceeded (invocation rate)");
  }
  api_rate_.ReserveDelay(sim_->Now());
  // Concurrency limit.
  if (active_ >= config_.concurrency_limit) {
    co_return Status::ResourceExhausted(
        "TooManyRequestsException: concurrency limit reached");
  }

  ++active_;
  ++total_invocations_;
  ledger_->AddInvocation();
  if (attribution != nullptr) attribution->AddInvocation();
  // Warm container available?
  bool cold = true;
  while (!fn->warm_pool.empty()) {
    double expiry = fn->warm_pool.front();
    fn->warm_pool.pop_front();
    if (expiry >= sim_->Now()) {
      cold = false;
      break;
    }
  }
  double initiated = sim_->Now() - client_delay - latency;
  sim::Spawn(RunWorker(fn, std::move(payload), cold, initiated, sim_->Now(),
                       attribution));
  co_return Status::OK();
}

sim::Async<void> FaasService::RunWorker(Function* fn, std::string payload,
                                        bool cold, double invoke_initiated,
                                        double accepted_at,
                                        CostLedger* attribution) {
  const FunctionConfig& cfg = fn->config;
  double start_latency =
      cold ? Rng(next_worker_seed_++)
                 .Lognormal(config_.cold_start_median_s,
                            config_.cold_start_sigma)
           : Rng(next_worker_seed_++)
                 .Lognormal(config_.warm_start_median_s,
                            config_.warm_start_sigma);
  co_await sim::Sleep(sim_, start_latency);

  WorkerFate fate;
  if (fault_ != nullptr) fate = fault_->DrawWorkerFate();
  auto env = std::make_unique<WorkerEnv>(services_, cfg.name, cfg.memory_mib,
                                         next_worker_seed_++, cold, fate);
  env->set_tracer(tracer_);
  env->set_fault_injector(fault_);
  env->attribution = attribution;
  env->meta_cache = meta_cache_;
  env->scan_broker = scan_broker_;
  env->metrics().invoke_initiated = invoke_initiated;
  env->metrics().invoke_accepted = accepted_at;
  env->metrics().handler_start = sim_->Now();
  env->metrics().cold_start = cold;

  double billed_from = sim_->Now();
  if (cold && config_.cold_init_cpu_s > 0) {
    // Loading the dependency layer / execution framework.
    co_await env->Compute(config_.cold_init_cpu_s);
  }
  Status handler_status = co_await cfg.handler(*env, std::move(payload));
  if (!handler_status.ok()) {
    ++failed_handlers_;
    LAMBADA_LOG(Warning) << "worker handler failed: "
                         << handler_status.ToString();
  }
  env->metrics().handler_end = sim_->Now();

  // Billing: duration in 100 ms increments times configured memory,
  // capped at the function timeout.
  double duration = std::min(sim_->Now() - billed_from, cfg.timeout_s);
  double billed = std::ceil(duration / kLambdaBillingQuantumSeconds) *
                  kLambdaBillingQuantumSeconds;
  ledger_->AddLambda(billed * cfg.memory_mib / 1024.0);
  if (attribution != nullptr) {
    attribution->AddLambda(billed * cfg.memory_mib / 1024.0);
  }

  // Hedge losers may still be in flight against this environment's NIC
  // and RNG (detached request coroutines); let them drain before the
  // environment dies. Billing was measured above, at handler end.
  while (env->request_stats().inflight_requests > 0) {
    co_await sim::Sleep(sim_, 0.001);
  }

  completed_metrics_.push_back(env->metrics());
  --active_;
  fn->warm_pool.push_back(sim_->Now() + config_.warm_container_ttl_s);
}

}  // namespace lambada::cloud
