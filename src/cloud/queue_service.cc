#include "cloud/queue_service.h"

#include <algorithm>

namespace lambada::cloud {

QueueService::QueueService(sim::Simulator* sim, CostLedger* ledger,
                           const QueueServiceConfig& config)
    : sim_(sim), ledger_(ledger), config_(config) {}

Status QueueService::CreateQueue(const std::string& name) {
  if (name.empty()) return Status::Invalid("empty queue name");
  auto it = queues_.find(name);
  if (it == queues_.end()) {
    Queue q;
    q.arrival = std::make_unique<sim::Event>(sim_);
    queues_.emplace(name, std::move(q));
  }
  return Status::OK();
}

bool QueueService::QueueExists(const std::string& name) const {
  return queues_.find(name) != queues_.end();
}

void QueueService::PurgeQueue(const std::string& name) {
  auto it = queues_.find(name);
  if (it != queues_.end()) it->second.messages.clear();
}

QueueService::Queue* QueueService::FindQueue(const std::string& name) {
  auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : &it->second;
}

sim::Async<Status> QueueService::Send(NetContext ctx, std::string queue,
                                      std::string body) {
  Queue* q = FindQueue(queue);
  if (q == nullptr) co_return Status::NotFound("no such queue: " + queue);
  if (body.size() > config_.max_message_bytes) {
    co_return Status::Invalid("SQS message exceeds 256 KiB limit");
  }
  double latency = ctx.rng->Lognormal(config_.request_latency_median_s,
                                      config_.request_latency_sigma);
  co_await sim::Sleep(sim_, latency);
  ledger_->AddSqsRequest();
  if (ctx.attribution != nullptr) ctx.attribution->AddSqsRequest();
  q->messages.push_back(std::move(body));
  // Wake all long-pollers; they re-check and re-arm.
  q->arrival->Set();
  q->arrival->Reset();
  co_return Status::OK();
}

sim::Async<Result<std::vector<std::string>>> QueueService::Receive(
    NetContext ctx, std::string queue, int max_messages,
    double wait_time_s) {
  Queue* q = FindQueue(queue);
  if (q == nullptr) co_return Status::NotFound("no such queue: " + queue);
  double latency = ctx.rng->Lognormal(config_.request_latency_median_s,
                                      config_.request_latency_sigma);
  co_await sim::Sleep(sim_, latency);
  ledger_->AddSqsRequest();
  if (ctx.attribution != nullptr) ctx.attribution->AddSqsRequest();
  max_messages = std::min(max_messages, config_.max_receive_batch);
  double deadline = sim_->Now() + wait_time_s;
  while (q->messages.empty() && sim_->Now() < deadline) {
    // Long poll: wait for an arrival pulse, re-checking the deadline with a
    // coarse poll so that timeouts fire (the pulse may never come).
    co_await sim::Sleep(sim_, std::min(0.05, deadline - sim_->Now()));
  }
  std::vector<std::string> out;
  while (!q->messages.empty() &&
         out.size() < static_cast<size_t>(max_messages)) {
    out.push_back(std::move(q->messages.front()));
    q->messages.pop_front();
  }
  co_return out;
}

size_t QueueService::DepthDirect(const std::string& name) const {
  auto it = queues_.find(name);
  return it == queues_.end() ? 0 : it->second.messages.size();
}

}  // namespace lambada::cloud
