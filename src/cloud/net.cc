#include "cloud/net.h"

#include <algorithm>

#include "common/units.h"

namespace lambada::cloud {

sim::SharedLink::Config WorkerNicConfig(int memory_mib) {
  // Sustained bandwidth: ~90 MiB/s for all sizes; functions below 1 GiB see
  // slightly less (Figure 6a: "only workers with less than 1 GB ... see a
  // slightly lower ingress bandwidth").
  double sustained = 90.0 * kMiB;
  if (memory_mib < 1024) {
    sustained = (78.0 + 12.0 * memory_mib / 1024.0) * kMiB;
  }
  // Burst peak grows with memory (Figure 6b): small workers barely burst,
  // the largest reach almost 300 MiB/s.
  double peak =
      std::max(sustained, (40.0 + 260.0 * memory_mib / 3008.0) * kMiB);
  // The burst window is "a small number of seconds" (Section 4.3.1): the
  // credit bucket holds about 2.5 s of (peak - sustained) headroom.
  double credits = (peak - sustained) * 2.5;
  // S3 serves each HTTP connection at about the sustained per-stream rate.
  double per_conn = 90.0 * kMiB;
  return sim::SharedLink::Config{sustained, peak, credits, per_conn};
}

sim::SharedLink::Config DriverNicConfig() {
  double g = 1000.0 * kMiB;
  return sim::SharedLink::Config{g, g, 0.0, g};
}

}  // namespace lambada::cloud
