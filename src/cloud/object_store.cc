#include "cloud/object_store.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "cloud/fault.h"
#include "common/logging.h"
#include "exec/request_batcher.h"
#include "obs/trace.h"

namespace lambada::cloud {

namespace {

/// Stamps an injected request fault onto the caller's current span.
void AnnotateInjectedFault(const NetContext& ctx, const Status& injected,
                           const char* op) {
  if (ctx.tracer == nullptr) return;
  // InjectRequestFault reports throttles as ResourceExhausted ("SlowDown")
  // and server errors as Unavailable.
  ctx.tracer->Instant(ctx.span,
                      injected.code() == StatusCode::kResourceExhausted
                          ? std::string("fault.s3_slowdown")
                          : std::string("fault.s3_") + op + "_error");
}

}  // namespace

ObjectStore::ObjectStore(sim::Simulator* sim, CostLedger* ledger,
                         const ObjectStoreConfig& config)
    : sim_(sim), ledger_(ledger), config_(config), latency_rng_(0x53335333) {}

Status ObjectStore::CreateBucket(const std::string& bucket) {
  if (bucket.empty()) return Status::Invalid("empty bucket name");
  if (buckets_.find(bucket) == buckets_.end()) {
    buckets_.emplace(bucket, std::make_unique<Bucket>(config_));
  }
  return Status::OK();
}

bool ObjectStore::BucketExists(const std::string& bucket) const {
  return buckets_.find(bucket) != buckets_.end();
}

ObjectStore::Bucket* ObjectStore::FindBucket(const std::string& bucket) {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : it->second.get();
}

const ObjectStore::Bucket* ObjectStore::FindBucket(
    const std::string& bucket) const {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : it->second.get();
}

Result<double> ObjectStore::AdmitRequest(sim::TokenBucket* limiter) {
  double now = sim_->Now();
  if (limiter->CurrentDelay(now) > config_.slowdown_queue_threshold_s) {
    return Status::ResourceExhausted("SlowDown: rate limit exceeded");
  }
  return limiter->ReserveDelay(now);
}

sim::Async<Result<BufferPtr>> ObjectStore::Get(NetContext ctx,
                                               std::string bucket,
                                               std::string key,
                                               int64_t offset,
                                               int64_t length) {
  Bucket* b = FindBucket(bucket);
  if (b == nullptr) co_return Status::NotFound("no such bucket: " + bucket);
  auto admitted = AdmitRequest(&b->read_limiter);
  if (!admitted.ok()) {
    // The rejection itself still takes a round trip.
    co_await sim::Sleep(sim_, config_.get_latency_median_s);
    co_return admitted.status();
  }
  if (fault_ != nullptr) {
    // Injected server-side failure: the request was admitted, burned a
    // round trip, and is billed like any failed request.
    Status injected = fault_->InjectRequestFault(FaultOp::kS3Get);
    if (!injected.ok()) {
      AnnotateInjectedFault(ctx, injected, "get");
      co_await sim::Sleep(sim_, *admitted + config_.get_latency_median_s);
      ledger_->AddS3Get(0);
      if (ctx.attribution != nullptr) ctx.attribution->AddS3Get(0);
      co_return injected;
    }
  }
  double latency = ctx.rng->Lognormal(config_.get_latency_median_s,
                                      config_.get_latency_sigma);
  co_await sim::Sleep(sim_, *admitted + latency);
  auto it = b->objects.find(key);
  if (it == b->objects.end()) {
    // A failed lookup is still a billed request.
    ledger_->AddS3Get(0);
    if (ctx.attribution != nullptr) ctx.attribution->AddS3Get(0);
    co_return Status::NotFound("no such key: s3://" + bucket + "/" + key);
  }
  const Object& obj = it->second;
  int64_t size = static_cast<int64_t>(obj.data->size());
  if (offset < 0 || offset > size) {
    ledger_->AddS3Get(0);
    if (ctx.attribution != nullptr) ctx.attribution->AddS3Get(0);
    co_return Status::OutOfRange("range start beyond object size");
  }
  int64_t end = length < 0 ? size : std::min<int64_t>(size, offset + length);
  BufferPtr slice = obj.data->Slice(static_cast<size_t>(offset),
                                    static_cast<size_t>(end - offset));
  // The object's stored scale already includes any caller scaling applied
  // at PUT time; applying ctx.data_scale again would double-count.
  int64_t virtual_bytes = static_cast<int64_t>(
      static_cast<double>(slice->size()) * obj.scale);
  ledger_->AddS3Get(virtual_bytes);
  if (ctx.attribution != nullptr) ctx.attribution->AddS3Get(virtual_bytes);
  if (ctx.nic != nullptr && virtual_bytes > 0) {
    co_await ctx.nic->Transfer(static_cast<double>(virtual_bytes));
  }
  co_return slice;
}

sim::Async<Result<ObjectStore::TailResult>> ObjectStore::GetTail(
    NetContext ctx, std::string bucket, std::string key,
    int64_t suffix_length) {
  Bucket* b = FindBucket(bucket);
  if (b == nullptr) co_return Status::NotFound("no such bucket: " + bucket);
  auto admitted = AdmitRequest(&b->read_limiter);
  if (!admitted.ok()) {
    co_await sim::Sleep(sim_, config_.get_latency_median_s);
    co_return admitted.status();
  }
  if (fault_ != nullptr) {
    Status injected = fault_->InjectRequestFault(FaultOp::kS3Get);
    if (!injected.ok()) {
      AnnotateInjectedFault(ctx, injected, "get");
      co_await sim::Sleep(sim_, *admitted + config_.get_latency_median_s);
      ledger_->AddS3Get(0);
      if (ctx.attribution != nullptr) ctx.attribution->AddS3Get(0);
      co_return injected;
    }
  }
  double latency = ctx.rng->Lognormal(config_.get_latency_median_s,
                                      config_.get_latency_sigma);
  co_await sim::Sleep(sim_, *admitted + latency);
  auto it = b->objects.find(key);
  if (it == b->objects.end()) {
    ledger_->AddS3Get(0);
    if (ctx.attribution != nullptr) ctx.attribution->AddS3Get(0);
    co_return Status::NotFound("no such key: s3://" + bucket + "/" + key);
  }
  const Object& obj = it->second;
  int64_t size = static_cast<int64_t>(obj.data->size());
  int64_t len = std::min<int64_t>(size, std::max<int64_t>(0, suffix_length));
  BufferPtr slice = obj.data->Slice(static_cast<size_t>(size - len),
                                    static_cast<size_t>(len));
  // Footer reads are small control traffic: the suffix bytes are real
  // bytes, not scaled (a bigger file does not have a bigger footer).
  ledger_->AddS3Get(static_cast<int64_t>(slice->size()));
  if (ctx.attribution != nullptr) {
    ctx.attribution->AddS3Get(static_cast<int64_t>(slice->size()));
  }
  if (ctx.nic != nullptr && slice->size() > 0) {
    co_await ctx.nic->Transfer(static_cast<double>(slice->size()));
  }
  co_return TailResult{slice, size};
}

sim::Async<Status> ObjectStore::Put(NetContext ctx, std::string bucket,
                                    std::string key, BufferPtr data,
                                    double scale) {
  Bucket* b = FindBucket(bucket);
  if (b == nullptr) co_return Status::NotFound("no such bucket: " + bucket);
  if (key.size() > config_.max_key_bytes) {
    co_return Status::Invalid("object key exceeds 1 KiB limit");
  }
  auto admitted = AdmitRequest(&b->write_limiter);
  if (!admitted.ok()) {
    co_await sim::Sleep(sim_, config_.put_latency_median_s);
    co_return admitted.status();
  }
  if (fault_ != nullptr) {
    // An injected PUT failure leaves the object untouched: either the old
    // version stays visible or the key stays absent, never a torn write.
    Status injected = fault_->InjectRequestFault(FaultOp::kS3Put);
    if (!injected.ok()) {
      AnnotateInjectedFault(ctx, injected, "put");
      co_await sim::Sleep(sim_, *admitted + config_.put_latency_median_s);
      ledger_->AddS3Put(0);
      if (ctx.attribution != nullptr) ctx.attribution->AddS3Put(0);
      co_return injected;
    }
  }
  int64_t virtual_bytes = static_cast<int64_t>(
      static_cast<double>(data->size()) * scale * ctx.data_scale);
  double latency = ctx.rng->Lognormal(config_.put_latency_median_s,
                                      config_.put_latency_sigma);
  // Heavy straggler tail (Figure 13): rare PUTs take much longer — a
  // fixed component plus one proportional to the upload size (slow
  // server-side throughput). This is the source of the exchange tail
  // latencies the paper analyzes.
  if (ctx.rng->NextDouble() < config_.put_tail_prob) {
    double nominal_transfer =
        static_cast<double>(virtual_bytes) / (90.0 * 1024 * 1024);
    latency += ctx.rng->Pareto(config_.put_tail_scale_s,
                               config_.put_tail_alpha) +
               nominal_transfer * ctx.rng->Pareto(0.25, 1.6);
  }
  co_await sim::Sleep(sim_, *admitted + latency);
  if (ctx.nic != nullptr && virtual_bytes > 0) {
    co_await ctx.nic->Transfer(static_cast<double>(virtual_bytes));
  }
  ledger_->AddS3Put(virtual_bytes);
  if (ctx.attribution != nullptr) ctx.attribution->AddS3Put(virtual_bytes);
  // Visible once the last byte arrived.
  b->objects[key] = Object{std::move(data), scale * ctx.data_scale};
  NotifyWrite(bucket, key);
  co_return Status::OK();
}

sim::Async<Result<std::vector<ObjectInfo>>> ObjectStore::List(
    NetContext ctx, std::string bucket, std::string prefix) {
  Bucket* b = FindBucket(bucket);
  if (b == nullptr) co_return Status::NotFound("no such bucket: " + bucket);
  // LIST shares the write-rate pool and price class (Section 4.4.3).
  auto admitted = AdmitRequest(&b->write_limiter);
  if (!admitted.ok()) {
    co_await sim::Sleep(sim_, config_.list_latency_median_s);
    co_return admitted.status();
  }
  double latency = ctx.rng->Lognormal(config_.list_latency_median_s,
                                      config_.list_latency_sigma);
  co_await sim::Sleep(sim_, *admitted + latency);
  ledger_->AddS3List();
  if (ctx.attribution != nullptr) ctx.attribution->AddS3List();
  std::vector<ObjectInfo> out;
  for (auto it = b->objects.lower_bound(prefix); it != b->objects.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(ObjectInfo{it->first, it->second.VirtualSize()});
  }
  co_return out;
}

Status ObjectStore::PutDirect(const std::string& bucket,
                              const std::string& key, BufferPtr data,
                              double scale) {
  Bucket* b = FindBucket(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  b->objects[key] = Object{std::move(data), scale};
  NotifyWrite(bucket, key);
  return Status::OK();
}

Result<BufferPtr> ObjectStore::GetDirect(const std::string& bucket,
                                         const std::string& key) const {
  const Bucket* b = FindBucket(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  auto it = b->objects.find(key);
  if (it == b->objects.end()) {
    return Status::NotFound("no such key: " + key);
  }
  return it->second.data;
}

Result<int64_t> ObjectStore::VirtualSize(const std::string& bucket,
                                         const std::string& key) const {
  const Bucket* b = FindBucket(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  auto it = b->objects.find(key);
  if (it == b->objects.end()) {
    return Status::NotFound("no such key: " + key);
  }
  return it->second.VirtualSize();
}

Result<double> ObjectStore::Scale(const std::string& bucket,
                                  const std::string& key) const {
  const Bucket* b = FindBucket(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  auto it = b->objects.find(key);
  if (it == b->objects.end()) {
    return Status::NotFound("no such key: " + key);
  }
  return it->second.scale;
}

std::vector<ObjectInfo> ObjectStore::ListDirect(
    const std::string& bucket, const std::string& prefix) const {
  std::vector<ObjectInfo> out;
  const Bucket* b = FindBucket(bucket);
  if (b == nullptr) return out;
  for (auto it = b->objects.lower_bound(prefix); it != b->objects.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(ObjectInfo{it->first, it->second.VirtualSize()});
  }
  return out;
}

Status ObjectStore::Delete(const std::string& bucket,
                           const std::string& key) {
  Bucket* b = FindBucket(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  b->objects.erase(key);
  NotifyWrite(bucket, key);
  return Status::OK();
}

void ObjectStore::ClearBucket(const std::string& bucket) {
  Bucket* b = FindBucket(bucket);
  if (b != nullptr) b->objects.clear();
  NotifyWrite(bucket, "");
}

// ---------------------------------------------------------------------------
// S3Client
// ---------------------------------------------------------------------------

namespace {

/// Ceiling on the exponential backoff between retries. Never reached at
/// the default budget (6 retries top out at 1.6 s), so default schedules
/// are unchanged; it matters when callers raise max_retries under chaos.
constexpr double kMaxBackoffS = 5.0;

/// Annotates a gave-up retriable status with its retry count.
Status AfterRetries(const Status& s, int retries) {
  if (retries == 0) return s;
  return Status(s.code(), s.message() + " (gave up after " +
                              std::to_string(retries) + " retries)");
}

/// Shared state of one hedged-GET race, held by shared_ptr so the losing
/// request coroutine can outlive the caller's frame.
struct HedgeRace {
  explicit HedgeRace(sim::Simulator* sim) : first_done(sim) {}
  sim::Event first_done;
  Result<BufferPtr> result = Status::Internal("hedge race pending");
  bool settled = false;
  bool hedge_won = false;
};

/// One racer of a hedged GET. Deliberately touches only the store (which
/// outlives the simulation) and the copied NetContext, whose pointers
/// live on the caller's environment — the environment drains
/// `stats->inflight_requests` to zero before dying, so a loser finishing
/// late never dangles. It must NOT touch the S3Client, which may already
/// be destroyed when the loser completes.
sim::Async<void> HedgeAttempt(ObjectStore* store, NetContext ctx,
                              std::shared_ptr<HedgeRace> race,
                              std::string bucket, std::string key,
                              int64_t offset, int64_t length,
                              bool is_hedge) {
  if (ctx.stats != nullptr) ++ctx.stats->inflight_requests;
  auto r = co_await store->Get(ctx, bucket, key, offset, length);
  if (ctx.stats != nullptr) --ctx.stats->inflight_requests;
  if (!race->settled) {
    race->settled = true;
    race->hedge_won = is_hedge;
    race->result = std::move(r);
    race->first_done.Set();
  }
}

/// Arms the duplicate: sleeps the hedge delay, then issues the second
/// request unless the primary already settled the race.
sim::Async<void> HedgeArm(ObjectStore* store, NetContext ctx,
                          std::shared_ptr<HedgeRace> race, double delay,
                          std::string bucket, std::string key,
                          int64_t offset, int64_t length) {
  co_await sim::Sleep(store->simulator(), delay);
  if (race->settled) co_return;
  if (ctx.stats != nullptr) ++ctx.stats->hedged_requests;
  if (ctx.tracer != nullptr) ctx.tracer->Instant(ctx.span, "s3.hedge_armed");
  co_await HedgeAttempt(store, ctx, std::move(race), std::move(bucket),
                        std::move(key), offset, length, /*is_hedge=*/true);
}

}  // namespace

double S3Client::HedgeDelay() const {
  std::vector<double> s(get_samples_);
  size_t idx = static_cast<size_t>(ctx_.hedge->quantile *
                                   static_cast<double>(s.size() - 1));
  std::nth_element(s.begin(), s.begin() + static_cast<ptrdiff_t>(idx),
                   s.end());
  return std::max(ctx_.hedge->min_delay_s, s[idx]);
}

sim::Async<Result<BufferPtr>> S3Client::HedgedGet(std::string bucket,
                                                  std::string key,
                                                  int64_t offset,
                                                  int64_t length) {
  auto race = std::make_shared<HedgeRace>(store_->simulator());
  sim::Spawn(HedgeAttempt(store_, ctx_, race, bucket, key, offset, length,
                          /*is_hedge=*/false));
  if (!race->settled) {
    sim::Spawn(HedgeArm(store_, ctx_, race, HedgeDelay(), std::move(bucket),
                        std::move(key), offset, length));
    co_await race->first_done.Wait();
  }
  if (race->hedge_won) {
    if (ctx_.stats != nullptr) ++ctx_.stats->hedge_wins;
    if (ctx_.tracer != nullptr) {
      ctx_.tracer->Instant(ctx_.span, "s3.hedge_win");
    }
  }
  co_return std::move(race->result);
}

sim::Async<Result<BufferPtr>> S3Client::DoGet(std::string bucket,
                                              std::string key,
                                              int64_t offset,
                                              int64_t length) {
  const bool hedging = ctx_.hedge != nullptr && ctx_.hedge->enabled;
  if (!hedging) {
    co_return co_await store_->Get(ctx_, std::move(bucket), std::move(key),
                                   offset, length);
  }
  const double t0 = store_->simulator()->Now();
  Result<BufferPtr> r = Status::Internal("unreached");
  if (static_cast<int>(get_samples_.size()) < ctx_.hedge->min_samples) {
    r = co_await store_->Get(ctx_, std::move(bucket), std::move(key),
                             offset, length);
  } else {
    r = co_await HedgedGet(std::move(bucket), std::move(key), offset,
                           length);
  }
  if (r.ok()) {
    // Observed (possibly hedged) completion latency feeds the quantile;
    // bound the window so the policy tracks current conditions.
    if (get_samples_.size() >= 256) {
      get_samples_.erase(get_samples_.begin());
    }
    get_samples_.push_back(store_->simulator()->Now() - t0);
  }
  co_return r;
}

sim::Async<Result<BufferPtr>> S3Client::Get(std::string bucket,
                                            std::string key, int64_t offset,
                                            int64_t length) {
  double backoff = initial_backoff_s_;
  for (int attempt = 0;; ++attempt) {
    auto r = co_await DoGet(bucket, key, offset, length);
    if (r.ok() || !r.status().IsRetriable()) co_return r;
    if (attempt >= max_retries_) {
      co_return AfterRetries(r.status(), attempt);
    }
    if (ctx_.stats != nullptr) ++ctx_.stats->s3_retries;
    if (ctx_.tracer != nullptr) ctx_.tracer->Instant(ctx_.span, "s3.retry");
    co_await sim::Sleep(store_->simulator(),
                        std::min(backoff, kMaxBackoffS) *
                            (0.5 + ctx_.rng->NextDouble()));
    backoff *= 2;
  }
}

sim::Async<Result<ObjectStore::TailResult>> S3Client::GetTail(
    std::string bucket, std::string key, int64_t suffix_length) {
  double backoff = initial_backoff_s_;
  for (int attempt = 0;; ++attempt) {
    auto r = co_await store_->GetTail(ctx_, bucket, key, suffix_length);
    if (r.ok() || !r.status().IsRetriable()) co_return r;
    if (attempt >= max_retries_) {
      co_return Result<ObjectStore::TailResult>(
          AfterRetries(r.status(), attempt));
    }
    if (ctx_.stats != nullptr) ++ctx_.stats->s3_retries;
    if (ctx_.tracer != nullptr) ctx_.tracer->Instant(ctx_.span, "s3.retry");
    co_await sim::Sleep(store_->simulator(),
                        std::min(backoff, kMaxBackoffS) *
                            (0.5 + ctx_.rng->NextDouble()));
    backoff *= 2;
  }
}

sim::Async<Status> S3Client::Put(std::string bucket, std::string key,
                                 BufferPtr data, double scale) {
  double backoff = initial_backoff_s_;
  for (int attempt = 0;; ++attempt) {
    Status s = co_await store_->Put(ctx_, bucket, key, data, scale);
    if (s.ok() || !s.IsRetriable()) co_return s;
    if (attempt >= max_retries_) {
      co_return AfterRetries(s, attempt);
    }
    if (ctx_.stats != nullptr) ++ctx_.stats->s3_retries;
    if (ctx_.tracer != nullptr) ctx_.tracer->Instant(ctx_.span, "s3.retry");
    co_await sim::Sleep(store_->simulator(),
                        std::min(backoff, kMaxBackoffS) *
                            (0.5 + ctx_.rng->NextDouble()));
    backoff *= 2;
  }
}

sim::Async<Result<std::vector<ObjectInfo>>> S3Client::List(
    std::string bucket, std::string prefix) {
  double backoff = initial_backoff_s_;
  for (int attempt = 0;; ++attempt) {
    auto r = co_await store_->List(ctx_, bucket, prefix);
    if (r.ok() || !r.status().IsRetriable()) co_return r;
    if (attempt >= max_retries_) {
      co_return Result<std::vector<ObjectInfo>>(
          AfterRetries(r.status(), attempt));
    }
    if (ctx_.stats != nullptr) ++ctx_.stats->s3_retries;
    if (ctx_.tracer != nullptr) ctx_.tracer->Instant(ctx_.span, "s3.retry");
    co_await sim::Sleep(store_->simulator(),
                        std::min(backoff, kMaxBackoffS) *
                            (0.5 + ctx_.rng->NextDouble()));
    backoff *= 2;
  }
}

sim::Async<Result<BufferPtr>> S3Client::GetWhenAvailable(
    std::string bucket, std::string key, double poll_interval_s,
    double timeout_s) {
  double deadline = store_->simulator()->Now() + timeout_s;
  while (true) {
    auto r = co_await store_->Get(ctx_, bucket, key);
    if (r.ok()) co_return r;
    if (!r.status().IsNotFound() && !r.status().IsRetriable()) co_return r;
    if (store_->simulator()->Now() >= deadline) {
      co_return Status::Timeout("object did not appear: s3://" + bucket +
                                "/" + key);
    }
    co_await sim::Sleep(store_->simulator(), poll_interval_s);
  }
}

sim::Async<std::vector<Result<BufferPtr>>> S3Client::BatchGet(
    std::vector<RangeRequest> requests, int depth) {
  exec::RequestBatcher batcher(store_->simulator(), depth);
  std::vector<std::function<sim::Async<Result<BufferPtr>>()>> thunks;
  thunks.reserve(requests.size());
  for (auto& req : requests) {
    thunks.push_back([this, req = std::move(req)]() {
      return Get(req.bucket, req.key, req.offset, req.length);
    });
  }
  co_return co_await batcher.Run(std::move(thunks));
}

sim::Async<std::vector<Status>> S3Client::BatchPut(
    std::vector<PutRequest> requests, int depth) {
  exec::RequestBatcher batcher(store_->simulator(), depth);
  std::vector<std::function<sim::Async<Status>()>> thunks;
  thunks.reserve(requests.size());
  for (auto& req : requests) {
    thunks.push_back([this, req = std::move(req)]() mutable {
      return Put(req.bucket, req.key, std::move(req.data), req.scale);
    });
  }
  co_return co_await batcher.Run(std::move(thunks));
}

sim::Async<std::vector<Result<BufferPtr>>> S3Client::BatchGetWhenAvailable(
    std::vector<KeyRequest> requests, double poll_interval_s,
    double timeout_s, int depth) {
  exec::RequestBatcher batcher(store_->simulator(), depth);
  std::vector<std::function<sim::Async<Result<BufferPtr>>()>> thunks;
  thunks.reserve(requests.size());
  for (auto& req : requests) {
    thunks.push_back([this, req = std::move(req), poll_interval_s,
                      timeout_s]() {
      return GetWhenAvailable(req.bucket, req.key, poll_interval_s,
                              timeout_s);
    });
  }
  co_return co_await batcher.Run(std::move(thunks));
}

}  // namespace lambada::cloud
