#include "cloud/cost_ledger.h"

#include <sstream>

#include "common/units.h"

namespace lambada::cloud {

std::string CostSnapshot::ToString(const Pricing& p) const {
  std::ostringstream os;
  os << "lambda: " << lambda_gib_seconds << " GiB-s, " << lambda_invocations
     << " invocations (" << FormatUsd(LambdaUsd(p)) << ")\n";
  os << "s3:     " << s3_get_requests << " GET / " << s3_put_requests
     << " PUT / " << s3_list_requests << " LIST ("
     << FormatUsd(S3RequestUsd(p)) << "), read "
     << FormatBytes(s3_bytes_read) << ", wrote "
     << FormatBytes(s3_bytes_written) << "\n";
  if (s3_shared_get_requests > 0) {
    os << "        + " << s3_shared_get_requests
       << " shared GET shares, read "
       << FormatBytes(static_cast<int64_t>(s3_shared_bytes_read)) << "\n";
  }
  os << "sqs:    " << sqs_requests << " requests ("
     << FormatUsd(SqsUsd(p)) << ")\n";
  os << "ddb:    " << ddb_reads << " reads / " << ddb_writes << " writes ("
     << FormatUsd(DdbUsd(p)) << ")\n";
  os << "total:  " << FormatUsd(TotalUsd(p));
  return os.str();
}

}  // namespace lambada::cloud
