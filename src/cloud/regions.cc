#include "cloud/regions.h"

namespace lambada::cloud {

const RegionProfile& GetRegion(const std::string& name) {
  for (const auto& r : AllRegions()) {
    if (r.name == name) return r;
  }
  return AllRegions().front();
}

}  // namespace lambada::cloud
