#include "cloud/fault.h"

#include <string>

namespace lambada::cloud {

void FaultInjector::Notify(FaultEvent::Kind kind, CrashSite site) {
  FaultEvent e;
  e.kind = kind;
  e.time = sim_->Now();
  e.crash_site = site;
  for (const auto& obs : observers_) obs(e);
}

Status FaultInjector::InjectRequestFault(FaultOp op) {
  if (!plan_.enabled) return Status::OK();
  // One draw per request, segmented: [0, slowdown) -> SlowDown,
  // [slowdown, slowdown + error) -> 500, rest -> OK. Invokes have no
  // SlowDown segment.
  const double u = rng_.NextDouble();
  switch (op) {
    case FaultOp::kS3Get:
    case FaultOp::kS3Put: {
      const double error_rate = op == FaultOp::kS3Get
                                    ? plan_.s3_get_error_rate
                                    : plan_.s3_put_error_rate;
      if (u < plan_.s3_slowdown_rate) {
        ++injected_request_faults_;
        Notify(FaultEvent::Kind::kS3SlowDown);
        return Status::ResourceExhausted(
            "SlowDown: injected throttle (fault plan)");
      }
      if (u < plan_.s3_slowdown_rate + error_rate) {
        ++injected_request_faults_;
        const bool get = op == FaultOp::kS3Get;
        Notify(get ? FaultEvent::Kind::kS3GetError
                   : FaultEvent::Kind::kS3PutError);
        return Status::Unavailable(
            std::string("InternalError: injected S3 ") +
            (get ? "GET" : "PUT") + " failure (fault plan)");
      }
      return Status::OK();
    }
    case FaultOp::kInvoke:
      if (u < plan_.invoke_error_rate) {
        ++injected_request_faults_;
        Notify(FaultEvent::Kind::kInvokeError);
        return Status::Unavailable(
            "ServiceException: injected invoke failure (fault plan)");
      }
      return Status::OK();
  }
  return Status::OK();
}

WorkerFate FaultInjector::DrawWorkerFate() {
  WorkerFate fate;
  if (!plan_.enabled) return fate;
  // Exactly two draws per invocation. The crash draw doubles as the site
  // selector: u1/crash_rate is uniform in [0,1) given a crash, so no extra
  // draw is needed and the stream stays rate-independent.
  const double u1 = rng_.NextDouble();
  const double u2 = rng_.NextDouble();
  if (plan_.worker_crash_rate > 0 && u1 < plan_.worker_crash_rate) {
    const double w_before = plan_.crash_before_weight;
    const double w_during = plan_.crash_during_weight;
    const double w_after = plan_.crash_after_weight;
    const double total = w_before + w_during + w_after;
    const double v = total > 0 ? (u1 / plan_.worker_crash_rate) * total : 0;
    if (total <= 0 || v < w_before) {
      fate.crash_site = CrashSite::kBeforeExchangeWrites;
    } else if (v < w_before + w_during) {
      fate.crash_site = CrashSite::kDuringExchangeWrites;
    } else {
      fate.crash_site = CrashSite::kAfterExchangeWrites;
    }
    ++crashes_armed_;
    Notify(FaultEvent::Kind::kWorkerCrashArmed, fate.crash_site);
  }
  if (plan_.straggler_rate > 0 && u2 < plan_.straggler_rate) {
    fate.cpu_factor = plan_.straggler_cpu_factor;
    fate.net_factor = plan_.straggler_net_factor;
    ++stragglers_armed_;
    Notify(FaultEvent::Kind::kStragglerArmed);
  }
  return fate;
}

CrashSite FaultInjector::DrawInvokerFate(int generation) {
  if (!plan_.enabled) return CrashSite::kNone;
  // Exactly two draws per invoker, from the dedicated invoker stream:
  // the crash draw and the site draw. Generation gating applies after the
  // draws so sweeping max_generation never shifts this stream either.
  const double u1 = invoker_rng_.NextDouble();
  const double u2 = invoker_rng_.NextDouble();
  if (plan_.invoker_crash_rate <= 0 || u1 >= plan_.invoker_crash_rate) {
    return CrashSite::kNone;
  }
  if (generation > plan_.invoker_crash_max_generation) {
    return CrashSite::kNone;
  }
  const double w_before = plan_.invoker_crash_before_weight;
  const double w_during = plan_.invoker_crash_during_weight;
  const double total = w_before + w_during;
  const CrashSite site = (total <= 0 || u2 * total < w_before)
                             ? CrashSite::kBeforeInvokingChildren
                             : CrashSite::kWhileInvokingChildren;
  ++invoker_crashes_armed_;
  Notify(FaultEvent::Kind::kInvokerCrashArmed, site);
  return site;
}

}  // namespace lambada::cloud
