#ifndef LAMBADA_CLOUD_OBJECT_STORE_H_
#define LAMBADA_CLOUD_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cost_ledger.h"
#include "cloud/net.h"
#include "common/buffer.h"
#include "common/status.h"
#include "sim/async.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace lambada::cloud {

class FaultInjector;

/// Behavioural knobs of the simulated S3, with defaults matching the
/// paper's measurements and the service limits it cites (Section 4.4.1).
struct ObjectStoreConfig {
  /// Per-bucket request-rate limits (requests/s). AWS raised these to
  /// 3500 writes/s and 5500 reads/s in July 2018; the historic limits were
  /// 300 and 800 (both quoted in the paper).
  double read_rate_per_bucket = 5500.0;
  double write_rate_per_bucket = 3500.0;
  /// Rate-limiter burst allowance (requests).
  double rate_burst = 200.0;
  /// Queueing delay beyond which the service replies "503 SlowDown"
  /// instead of absorbing the request.
  double slowdown_queue_threshold_s = 1.0;
  /// First-byte latency: lognormal median/sigma per request type.
  double get_latency_median_s = 0.025;
  double get_latency_sigma = 0.35;
  double put_latency_median_s = 0.030;
  double put_latency_sigma = 0.40;
  double list_latency_median_s = 0.060;
  double list_latency_sigma = 0.30;
  /// Heavy straggler tail on PUTs (Figure 13): with `put_tail_prob` a PUT
  /// draws an extra Pareto(put_tail_scale_s, put_tail_alpha) delay.
  double put_tail_prob = 0.005;
  double put_tail_scale_s = 1.0;
  double put_tail_alpha = 1.3;
  /// Maximum key length (S3: 1 KiB), relevant for the write-combining
  /// variant that encodes offsets in the file name (Section 4.4.3).
  size_t max_key_bytes = 1024;
};

/// Listing entry returned by List().
struct ObjectInfo {
  std::string key;
  int64_t size = 0;  ///< Virtual (scaled) size in bytes.
};

/// Simulated Amazon S3: buckets of immutable objects with range GETs,
/// per-bucket request-rate limits, request pricing, and per-worker
/// bandwidth shaping (through the caller's NetContext).
///
/// Each object may carry a `scale` factor: the stored bytes are the real
/// payload, while transfer time, request accounting, and reported sizes
/// behave as if the object were `scale` times larger. This implements the
/// virtual scaling described in DESIGN.md.
class ObjectStore {
 public:
  ObjectStore(sim::Simulator* sim, CostLedger* ledger,
              const ObjectStoreConfig& config = {});

  // -- Control plane (free, done at installation time) ---------------------

  /// Creates a bucket. Idempotent.
  Status CreateBucket(const std::string& bucket);
  bool BucketExists(const std::string& bucket) const;

  // -- Data plane (simulated requests) --------------------------------------

  /// Downloads `[offset, offset+length)` of an object ("Ranges" GET).
  /// `length < 0` means "to the end"; ranges are clamped to the object size
  /// like HTTP range requests. Offsets address *real* bytes (callers see
  /// real file layouts); transfer time uses scaled bytes.
  sim::Async<Result<BufferPtr>> Get(NetContext ctx, std::string bucket,
                                    std::string key, int64_t offset = 0,
                                    int64_t length = -1);

  /// Suffix-range GET ("Range: bytes=-N"): returns the last
  /// min(suffix_length, size) bytes together with the object's total real
  /// size. This is how format readers bootstrap footer parsing with a
  /// single request.
  struct TailResult {
    BufferPtr data;
    int64_t object_size = 0;  ///< Real bytes.
  };
  sim::Async<Result<TailResult>> GetTail(NetContext ctx, std::string bucket,
                                         std::string key,
                                         int64_t suffix_length);

  /// Uploads an object. `scale` multiplies the object's virtual size.
  sim::Async<Status> Put(NetContext ctx, std::string bucket, std::string key,
                         BufferPtr data, double scale = 1.0);

  /// Lists keys with the given prefix (sorted). One LIST request.
  sim::Async<Result<std::vector<ObjectInfo>>> List(NetContext ctx,
                                                   std::string bucket,
                                                   std::string prefix);

  // -- Host-side access (setup and verification; no simulated cost) --------

  Status PutDirect(const std::string& bucket, const std::string& key,
                   BufferPtr data, double scale = 1.0);
  Result<BufferPtr> GetDirect(const std::string& bucket,
                              const std::string& key) const;
  Result<int64_t> VirtualSize(const std::string& bucket,
                              const std::string& key) const;
  Result<double> Scale(const std::string& bucket,
                       const std::string& key) const;
  std::vector<ObjectInfo> ListDirect(const std::string& bucket,
                                     const std::string& prefix) const;
  Status Delete(const std::string& bucket, const std::string& key);
  /// Removes all objects in a bucket (between experiment repetitions).
  void ClearBucket(const std::string& bucket);

  const ObjectStoreConfig& config() const { return config_; }
  sim::Simulator* simulator() const { return sim_; }

  /// Installs the region's fault injector (null = no injection). Request
  /// hooks consult it after rate-limit admission, so injected errors are
  /// indistinguishable from organic ones to every caller.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  /// Observer fired whenever a bucket's contents change: after a PUT becomes
  /// visible, on Delete, on PutDirect, and on ClearBucket (with an empty
  /// key). The metadata cache uses this to version-bump its entries so a
  /// rewritten table can never be served from a stale cache line.
  using WriteObserver =
      std::function<void(const std::string& bucket, const std::string& key)>;
  void set_write_observer(WriteObserver observer) {
    write_observer_ = std::move(observer);
  }

 private:
  void NotifyWrite(const std::string& bucket, const std::string& key) {
    if (write_observer_) write_observer_(bucket, key);
  }

  struct Object {
    BufferPtr data;
    double scale = 1.0;
    int64_t VirtualSize() const {
      return static_cast<int64_t>(static_cast<double>(data->size()) * scale);
    }
  };

  struct Bucket {
    std::map<std::string, Object> objects;
    sim::TokenBucket read_limiter;
    sim::TokenBucket write_limiter;
    Bucket(const ObjectStoreConfig& c)
        : read_limiter(c.read_rate_per_bucket, c.rate_burst),
          write_limiter(c.write_rate_per_bucket, c.rate_burst) {}
  };

  /// Applies the request-rate limiter; returns SlowDown when the queue is
  /// too deep, otherwise the admission delay.
  Result<double> AdmitRequest(sim::TokenBucket* limiter);

  Bucket* FindBucket(const std::string& bucket);
  const Bucket* FindBucket(const std::string& bucket) const;

  sim::Simulator* sim_;
  CostLedger* ledger_;
  ObjectStoreConfig config_;
  std::map<std::string, std::unique_ptr<Bucket>> buckets_;
  Rng latency_rng_;
  FaultInjector* fault_ = nullptr;
  WriteObserver write_observer_;
};

/// Retrying wrapper implementing the "aggressive timeouts and retries"
/// the paper applies against SlowDown responses and tail latencies
/// (footnote 17). Retries retriable failures with exponential backoff.
class S3Client {
 public:
  S3Client(ObjectStore* store, NetContext ctx, int max_retries = 6,
           double initial_backoff_s = 0.05)
      : store_(store),
        ctx_(ctx),
        max_retries_(max_retries),
        initial_backoff_s_(initial_backoff_s) {}

  sim::Async<Result<BufferPtr>> Get(std::string bucket, std::string key,
                                    int64_t offset = 0, int64_t length = -1);
  sim::Async<Result<ObjectStore::TailResult>> GetTail(std::string bucket,
                                                      std::string key,
                                                      int64_t suffix_length);
  sim::Async<Status> Put(std::string bucket, std::string key, BufferPtr data,
                         double scale = 1.0);
  sim::Async<Result<std::vector<ObjectInfo>>> List(std::string bucket,
                                                   std::string prefix);

  /// Polls Get until the object exists (exchange receivers must "repeat
  /// reading a file until that file exists"). Non-NotFound errors still
  /// retry up to the budget; gives up after `timeout_s`.
  sim::Async<Result<BufferPtr>> GetWhenAvailable(std::string bucket,
                                                 std::string key,
                                                 double poll_interval_s,
                                                 double timeout_s);

  // -- Batched entry points --------------------------------------------------
  // Fan out several requests with at most `depth` in flight (see
  // exec::RequestBatcher: slot-ordered issue and results; depth 1 is the
  // exact sequential schedule). Retry/backoff applies per request as in
  // the single-request verbs. These are the object-store's public batch
  // seam (covered by cloud_test) for callers whose unit of work is a
  // whole request — e.g. a future real-S3 backend; the exchange drives
  // RequestBatcher directly instead because its slots interleave
  // deserialization and compute charging with each request.

  struct RangeRequest {
    std::string bucket;
    std::string key;
    int64_t offset = 0;
    int64_t length = -1;  ///< < 0: to the end.
  };
  sim::Async<std::vector<Result<BufferPtr>>> BatchGet(
      std::vector<RangeRequest> requests, int depth);

  struct PutRequest {
    std::string bucket;
    std::string key;
    BufferPtr data;
    double scale = 1.0;
  };
  sim::Async<std::vector<Status>> BatchPut(std::vector<PutRequest> requests,
                                           int depth);

  /// Batched polling GET of whole objects (wait-then-read).
  struct KeyRequest {
    std::string bucket;
    std::string key;
  };
  sim::Async<std::vector<Result<BufferPtr>>> BatchGetWhenAvailable(
      std::vector<KeyRequest> requests, double poll_interval_s,
      double timeout_s, int depth);

  const NetContext& ctx() const { return ctx_; }
  ObjectStore* store() { return store_; }

 private:
  /// One GET through the hedging policy: plain request until enough
  /// latency samples exist, then a duplicate is armed at the observed
  /// latency quantile and the first response wins.
  sim::Async<Result<BufferPtr>> DoGet(std::string bucket, std::string key,
                                      int64_t offset, int64_t length);
  sim::Async<Result<BufferPtr>> HedgedGet(std::string bucket,
                                          std::string key, int64_t offset,
                                          int64_t length);
  double HedgeDelay() const;

  ObjectStore* store_;
  NetContext ctx_;
  int max_retries_;
  double initial_backoff_s_;
  /// Latencies of completed GETs, kept only while hedging is enabled;
  /// feeds the hedge-delay quantile.
  std::vector<double> get_samples_;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_OBJECT_STORE_H_
