#ifndef LAMBADA_CLOUD_NET_H_
#define LAMBADA_CLOUD_NET_H_

#include <memory>

#include "common/rng.h"
#include "sim/resources.h"

namespace lambada::cloud {

/// Network-side identity of a caller (a worker or the driver): its NIC and
/// its private randomness stream for latency sampling. Every service call
/// takes a NetContext so that transfer time is charged against the right
/// link and latency draws are reproducible per caller.
struct NetContext {
  sim::SharedLink* nic = nullptr;  ///< May be null for zero-size transfers.
  Rng* rng = nullptr;
  /// Multiplier applied to transferred byte counts to model datasets larger
  /// than the real bytes held in memory (see DESIGN.md "virtual scaling").
  double data_scale = 1.0;
};

/// The paper-measured NIC profile of a serverless worker (Figure 6):
/// ~90 MiB/s sustained ingress/egress, with a credit-based burst whose
/// peak grows with the function's memory size.
sim::SharedLink::Config WorkerNicConfig(int memory_mib);

/// The driver's uplink (a development machine): effectively unshaped for
/// our purposes.
sim::SharedLink::Config DriverNicConfig();

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_NET_H_
