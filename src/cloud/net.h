#ifndef LAMBADA_CLOUD_NET_H_
#define LAMBADA_CLOUD_NET_H_

#include <memory>

#include "common/rng.h"
#include "sim/resources.h"

namespace lambada::obs {
class Tracer;
}

namespace lambada::cloud {

class CostLedger;

/// Per-caller request telemetry, accumulated by S3Client and friends and
/// shipped home in WorkerResultMetrics. Also tracks the detached request
/// coroutines a hedged GET can leave in flight, so a worker environment is
/// only torn down once they have drained.
struct RequestStats {
  int64_t s3_retries = 0;        ///< Backoff retries across all S3 calls.
  int64_t hedged_requests = 0;   ///< Duplicate GETs issued by hedging.
  int64_t hedge_wins = 0;        ///< Hedged GETs whose duplicate won.
  int inflight_requests = 0;     ///< Detached request coroutines still live.
};

/// Policy for hedged object-store GETs: after the caller-observed latency
/// quantile elapses without a response, issue a duplicate request and take
/// whichever answer lands first (the tail-tolerance trick of Dean &
/// Barroso's "The Tail at Scale"). Disabled by default; the driver enables
/// it per query via RunOptions.
struct HedgeConfig {
  bool enabled = false;
  double quantile = 0.9;     ///< Latency quantile that arms the duplicate.
  int min_samples = 8;       ///< Observations required before hedging.
  double min_delay_s = 0.02; ///< Floor on the hedge delay.
};

/// Network-side identity of a caller (a worker or the driver): its NIC and
/// its private randomness stream for latency sampling. Every service call
/// takes a NetContext so that transfer time is charged against the right
/// link and latency draws are reproducible per caller.
struct NetContext {
  sim::SharedLink* nic = nullptr;  ///< May be null for zero-size transfers.
  Rng* rng = nullptr;
  /// Multiplier applied to transferred byte counts to model datasets larger
  /// than the real bytes held in memory (see DESIGN.md "virtual scaling").
  double data_scale = 1.0;
  /// Optional request telemetry sink (owned by the caller's environment).
  RequestStats* stats = nullptr;
  /// Optional hedging policy; null or disabled means plain requests.
  const HedgeConfig* hedge = nullptr;
  /// Optional tracing sink: request-level events (injected faults, backoff
  /// retries, hedges) become instant annotations on `span`, which is the
  /// operation span current when this context was minted (scan, exchange,
  /// or the worker/driver root).
  obs::Tracer* tracer = nullptr;
  uint64_t span = 0;
  /// Optional per-query cost attribution ledger. Services charge the global
  /// account ledger as always; when set, they mirror the same charge here so
  /// concurrent queries over one CloudEnv each get an exact bill.
  CostLedger* attribution = nullptr;
};

/// The paper-measured NIC profile of a serverless worker (Figure 6):
/// ~90 MiB/s sustained ingress/egress, with a credit-based burst whose
/// peak grows with the function's memory size.
sim::SharedLink::Config WorkerNicConfig(int memory_mib);

/// The driver's uplink (a development machine): effectively unshaped for
/// our purposes.
sim::SharedLink::Config DriverNicConfig();

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_NET_H_
