#ifndef LAMBADA_CLOUD_FAULT_H_
#define LAMBADA_CLOUD_FAULT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace lambada::cloud {

/// Where in a worker's lifetime an injected crash fires, relative to its
/// exchange writes. The exchange protocol's correctness argument hinges on
/// these three windows: before any partition byte exists, after some slots
/// are durable but not all (torn write), and after the full partition is
/// durable but before the result message is sent.
enum class CrashSite {
  kNone = 0,
  kBeforeExchangeWrites,
  kDuringExchangeWrites,
  kAfterExchangeWrites,
  // Invoker-loss sites (drawn per invoker from the separate invoker
  // stream, not the worker-fate stream): a worker responsible for a
  // subtree dies before invoking any child, or after half its children
  // went out — the silent-branch and partially-started-branch cases the
  // driver's subtree recovery must detect.
  kBeforeInvokingChildren,
  kWhileInvokingChildren,
};

/// The fate drawn for one worker invocation: whether (and where) its
/// handler dies, and how degraded its host is. Factors of 1.0 mean a
/// healthy host; a straggler gets shrunken CPU share and NIC bandwidth.
struct WorkerFate {
  CrashSite crash_site = CrashSite::kNone;
  double cpu_factor = 1.0;
  double net_factor = 1.0;
};

/// The request class a fault draw applies to.
enum class FaultOp {
  kS3Get = 0,
  kS3Put,
  kInvoke,
};

/// Declarative chaos schedule for a simulated region. All probabilities
/// are per-request (or per-invocation for worker fates); every draw comes
/// from one seeded stream consumed in virtual-time order, so a given
/// (plan, workload) pair replays the exact same fault schedule on every
/// run. Disabled plans draw nothing at all, which keeps every existing
/// RNG stream — and therefore every committed benchmark byte — intact.
struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 1234;

  // Per-request injected error rates.
  double s3_get_error_rate = 0.0;   ///< GET answered with a 500.
  double s3_put_error_rate = 0.0;   ///< PUT answered with a 500.
  double s3_slowdown_rate = 0.0;    ///< GET/PUT answered "503 SlowDown".
  double invoke_error_rate = 0.0;   ///< Invoke answered with a 500.

  // Per-invocation worker fates.
  double worker_crash_rate = 0.0;   ///< Handler dies mid-run.
  /// Relative weights of the three crash windows (normalized internally).
  double crash_before_weight = 1.0;
  double crash_during_weight = 1.0;
  double crash_after_weight = 1.0;

  double straggler_rate = 0.0;      ///< Worker lands on a degraded host.
  double straggler_cpu_factor = 0.3;
  double straggler_net_factor = 0.3;

  // Per-invoker fates: a worker with a subtree to start dies before (or
  // halfway through) invoking it. Drawn from an RNG stream derived from
  // `seed` but separate from the request/fate stream above, so turning
  // invoker chaos on never shifts the draws the other hooks consume —
  // committed fault benchmarks stay bit-identical.
  double invoker_crash_rate = 0.0;
  double invoker_crash_before_weight = 1.0;  ///< Die before any child.
  double invoker_crash_during_weight = 1.0;  ///< Die mid-branch.
  /// Apply invoker crashes only to generations <= this (1 = gen-1 roots
  /// only; 2 adds the gen-2 inner nodes of a three-level tree).
  int invoker_crash_max_generation = 1;
};

/// One injected fault, reported to observers as it happens (virtual time).
struct FaultEvent {
  enum class Kind {
    kS3GetError,
    kS3PutError,
    kS3SlowDown,
    kInvokeError,
    kWorkerCrashArmed,
    kStragglerArmed,
    kInvokerCrashArmed,
  };
  Kind kind;
  double time = 0;  ///< Virtual time of the draw.
  CrashSite crash_site = CrashSite::kNone;  ///< For kWorkerCrashArmed.
};

/// Executes a FaultPlan: services consult it at their request hooks
/// (pre-request) and the FaaS layer asks it for a fate when a handler
/// starts. Observer callbacks fire post-draw for every injected fault, so
/// tests and benches can audit exactly what chaos a run experienced.
///
/// Determinism contract: each request hook consumes exactly one uniform
/// draw and each fate draw exactly two, *regardless of the configured
/// rates*, so changing a rate never shifts the stream consumed by the
/// other draws — fault schedules stay comparable across sweep points.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator* sim, const FaultPlan& plan)
      : sim_(sim), plan_(plan), rng_(plan.seed) {}

  bool enabled() const { return plan_.enabled; }
  const FaultPlan& plan() const { return plan_; }

  /// Draws whether this request fails with an injected error. Returns OK
  /// normally; a non-OK result is always retriable (Unavailable for 500s,
  /// ResourceExhausted for SlowDown). Draws nothing when disabled.
  Status InjectRequestFault(FaultOp op);

  /// Draws the fate of one worker invocation. Healthy fate (and no draw)
  /// when disabled.
  WorkerFate DrawWorkerFate();

  /// Draws the fate of one invoker — a generation-`generation` worker
  /// about to start its child subtrees. Exactly two draws from the
  /// invoker stream regardless of rates (none when disabled), keeping the
  /// request/fate stream untouched. Returns kNone, or one of the
  /// kBeforeInvokingChildren / kWhileInvokingChildren sites.
  CrashSite DrawInvokerFate(int generation);

  /// Registers a post-draw observer; called synchronously for every
  /// injected fault.
  void AddObserver(std::function<void(const FaultEvent&)> observer) {
    observers_.push_back(std::move(observer));
  }

  // Injection counters (everything the observers saw, aggregated).
  int64_t injected_request_faults() const { return injected_request_faults_; }
  int64_t crashes_armed() const { return crashes_armed_; }
  int64_t stragglers_armed() const { return stragglers_armed_; }
  int64_t invoker_crashes_armed() const { return invoker_crashes_armed_; }

 private:
  void Notify(FaultEvent::Kind kind, CrashSite site = CrashSite::kNone);

  sim::Simulator* sim_;
  FaultPlan plan_;
  Rng rng_;
  /// Separate stream for invoker fates (see FaultPlan::invoker_crash_rate).
  Rng invoker_rng_{plan_.seed ^ 0x1e7ee5eedULL};
  std::vector<std::function<void(const FaultEvent&)>> observers_;
  int64_t injected_request_faults_ = 0;
  int64_t crashes_armed_ = 0;
  int64_t stragglers_armed_ = 0;
  int64_t invoker_crashes_armed_ = 0;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_FAULT_H_
