#ifndef LAMBADA_CLOUD_KV_STORE_H_
#define LAMBADA_CLOUD_KV_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/cost_ledger.h"
#include "cloud/net.h"
#include "common/status.h"
#include "sim/async.h"
#include "sim/simulator.h"

namespace lambada::cloud {

/// Simulated Amazon DynamoDB: a serverless key-value store used by Lambada
/// for small amounts of shared data (installation metadata, query state).
struct KeyValueStoreConfig {
  double request_latency_median_s = 0.005;
  double request_latency_sigma = 0.3;
  /// DynamoDB limits items to 400 KB.
  size_t max_item_bytes = 400 * 1000;
};

class KeyValueStore {
 public:
  KeyValueStore(sim::Simulator* sim, CostLedger* ledger,
                const KeyValueStoreConfig& config = {});

  /// Creates a table. Idempotent; free control-plane operation.
  Status CreateTable(const std::string& table);
  bool TableExists(const std::string& table) const;

  sim::Async<Status> Put(NetContext ctx, std::string table, std::string key,
                         std::string value);
  sim::Async<Result<std::string>> Get(NetContext ctx, std::string table,
                                      std::string key);
  sim::Async<Status> Delete(NetContext ctx, std::string table,
                            std::string key);

  /// Atomic counter increment; returns the new value. DynamoDB supports
  /// this via UpdateItem with an ADD action.
  sim::Async<Result<int64_t>> Increment(NetContext ctx, std::string table,
                                        std::string key, int64_t delta);

  /// Host-side access (setup/tests; no simulated cost).
  Result<std::string> GetDirect(const std::string& table,
                                const std::string& key) const;
  Status PutDirect(const std::string& table, const std::string& key,
                   std::string value);

 private:
  sim::Async<Status> Latency(NetContext& ctx);

  sim::Simulator* sim_;
  CostLedger* ledger_;
  KeyValueStoreConfig config_;
  std::map<std::string, std::map<std::string, std::string>> tables_;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_KV_STORE_H_
