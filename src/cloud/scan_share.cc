#include "cloud/scan_share.h"

#include <utility>

#include "cloud/cost_ledger.h"
#include "cloud/object_store.h"

namespace lambada::cloud {

sim::Async<Result<BufferPtr>> SharedScanBroker::Get(S3Client* client,
                                                    std::string bucket,
                                                    std::string key,
                                                    int64_t offset,
                                                    int64_t length) {
  const std::string extent = bucket + "|" + key + "|" +
                             std::to_string(offset) + ":" +
                             std::to_string(length);
  CostLedger* attribution = client->ctx().attribution;
  bool was_waiter = false;
  for (;;) {
    auto it = inflight_.find(extent);
    if (it != inflight_.end()) {
      // Attach: await the in-flight fetch and share its buffer.
      std::shared_ptr<Entry> entry = it->second;
      if (attribution != nullptr) entry->sharers.push_back(attribution);
      ++stats_.attaches;
      if (metrics_ != nullptr) {
        metrics_->Add(obs::Metric::kSharedScanAttaches, 1);
      }
      co_await entry->done.Wait();
      if (entry->completed) co_return entry->result;
      // The fetcher failed. Waiters wake in FIFO order; the first finds no
      // in-flight entry and re-arms as the new fetcher, the rest re-attach.
      was_waiter = true;
      continue;
    }

    // Fetch: issue the physical GET through an attribution-stripped client
    // so the global ledger sees exactly one request, then split the bill.
    auto entry = std::make_shared<Entry>(sim_);
    inflight_[extent] = entry;
    if (attribution != nullptr) entry->sharers.push_back(attribution);
    ++stats_.fetches;
    if (metrics_ != nullptr) {
      metrics_->Add(obs::Metric::kSharedScanFetches, 1);
    }
    if (was_waiter) {
      ++stats_.rearms;
      if (metrics_ != nullptr) {
        metrics_->Add(obs::Metric::kSharedScanRearms, 1);
      }
    }
    NetContext bare = client->ctx();
    bare.attribution = nullptr;
    S3Client fetcher(client->store(), bare);
    auto r = co_await fetcher.Get(bucket, key, offset, length);
    inflight_.erase(extent);
    if (!r.ok()) {
      // Only the fetcher carries the error; waiters re-arm.
      entry->done.Set();
      co_return r;
    }
    {
      entry->completed = true;
      // The extent's modeled size: the store already charged the global
      // ledger `real bytes x object scale`; mirror the same quantity into
      // each sharer's slice.
      double scale = 1.0;
      auto scale_r = client->store()->Scale(bucket, key);
      if (scale_r.ok()) scale = *scale_r;
      double virtual_bytes = static_cast<double>((*r)->size()) * scale;
      double n = static_cast<double>(entry->sharers.size());
      for (CostLedger* sharer : entry->sharers) {
        sharer->AddSharedS3Get(virtual_bytes / n, 1.0 / n);
      }
      entry->result = std::move(r);
    }
    entry->done.Set();
    co_return entry->result;
  }
}

}  // namespace lambada::cloud
