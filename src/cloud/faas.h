#ifndef LAMBADA_CLOUD_FAAS_H_
#define LAMBADA_CLOUD_FAAS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cost_ledger.h"
#include "cloud/fault.h"
#include "cloud/kv_store.h"
#include "cloud/net.h"
#include "cloud/object_store.h"
#include "cloud/queue_service.h"
#include "cloud/regions.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "obs/trace.h"
#include "sim/async.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace lambada::cloud {

class FaasService;
class MetadataCache;
class SharedScanBroker;

/// Handles to every serverless service a worker (or the driver) can reach.
struct Services {
  sim::Simulator* sim = nullptr;
  ObjectStore* s3 = nullptr;
  QueueService* sqs = nullptr;
  KeyValueStore* ddb = nullptr;
  FaasService* faas = nullptr;
  CostLedger* ledger = nullptr;
};

/// How a caller reaches the Invoke API: its network latency to the API
/// endpoint and an optional client-side throughput cap (the paper's driver
/// peaks at 220-290 invocations/s from Zurich regardless of thread count).
struct InvokerProfile {
  double latency_median_s = 0.012;
  double latency_sigma = 0.15;
  sim::TokenBucket* client_bucket = nullptr;  ///< Borrowed; may be null.
};

/// Per-invocation timing record collected for the paper's figures. In the
/// real system these travel in the worker's SQS result message; keeping
/// them host-side is free observability that does not perturb the model.
struct WorkerMetrics {
  int64_t worker_id = -1;        ///< Filled in by the handler.
  double invoke_initiated = 0;   ///< Caller called Invoke.
  double invoke_accepted = 0;    ///< API call returned to the caller.
  double handler_start = 0;      ///< Container ready, handler running.
  double handler_end = 0;
  bool cold_start = false;
  /// Driver attempt id this invocation ran as (0 = first); stamped by the
  /// handler from its payload so per-worker attempt timelines can be
  /// reconstructed from completed_metrics().
  int64_t attempt = 0;
  /// Query this invocation worked for; stamped by the handler from its
  /// payload so concurrent queries over one FaasService can slice
  /// completed_metrics() without cross-talk.
  std::string query_id;
  /// Named sub-phases recorded by the handler, as (label, start, end).
  struct Phase {
    std::string label;
    double start;
    double end;
  };
  std::vector<Phase> phases;
};

/// Execution environment of one serverless worker invocation: its CPU
/// share, its shaped NIC, its memory budget, its randomness, and handles
/// to all shared services.
class WorkerEnv {
 public:
  WorkerEnv(Services services, std::string function_name, int memory_mib,
            uint64_t seed, bool cold, WorkerFate fate = {});

  Services& services() { return services_; }
  /// Name of the function this invocation runs as (cf. the
  /// AWS_LAMBDA_FUNCTION_NAME environment variable) — used by workers to
  /// invoke further instances of themselves (Section 4.2).
  const std::string& function_name() const { return function_name_; }
  sim::Simulator* sim() { return services_.sim; }
  int memory_mib() const { return memory_mib_; }
  bool cold_start() const { return cold_; }
  Rng& rng() { return rng_; }

  /// The vCPU share of this function: memory/1792, as documented by AWS
  /// and confirmed in Figure 4.
  double cpu_share() const { return memory_mib_ / 1792.0; }
  sim::ProcessorSharing& cpu() { return cpu_; }
  sim::SharedLink& nic() { return nic_; }

  /// Runs `vcpu_seconds` of single-threaded computation on this worker's
  /// CPU share (one "thread" of Figure 4).
  sim::Async<void> Compute(double vcpu_seconds) {
    return cpu_.Consume(vcpu_seconds);
  }

  /// Network context for service calls made by this worker. `data_scale`
  /// multiplies modeled byte counts (see DESIGN.md virtual scaling).
  NetContext net() {
    return NetContext{&nic_,   &rng_,   data_scale, &request_stats_,
                      &hedge_, tracer_, trace_span_, attribution};
  }

  // -- Tracing ---------------------------------------------------------------

  /// Query-scoped tracer, or null when tracing is off. Handed to each
  /// environment by FaasService at invocation start.
  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// The span enclosing whatever this worker is currently doing (the
  /// worker-attempt span, or a scan/exchange child). Service clients
  /// minted via net() attach request-level annotations to it.
  uint64_t trace_span() const { return trace_span_; }
  void set_trace_span(uint64_t span) { trace_span_ = span; }

  // -- Fault plan ------------------------------------------------------------

  /// The fate this invocation drew from the region's FaultInjector.
  const WorkerFate& fate() const { return fate_; }
  /// Consumes the armed crash at `site`: returns true exactly once, when
  /// this invocation was fated to die at that point in its lifetime. The
  /// handler must then abandon its work without reporting a result.
  bool MaybeCrash(CrashSite site) {
    if (crashed_ || fate_.crash_site != site) return false;
    crashed_ = true;
    if (tracer_ != nullptr) tracer_->Instant(trace_span_, "fault.crash");
    return true;
  }
  /// Kills this invocation at a site drawn outside its WorkerFate — the
  /// invoker-loss fates of core/invocation_tree.h, drawn per invoker from
  /// the fault plan's dedicated stream. The handler must then abandon its
  /// work without reporting a result, exactly as after MaybeCrash.
  void CrashNow() {
    crashed_ = true;
    if (tracer_ != nullptr) tracer_->Instant(trace_span_, "fault.crash");
  }
  bool crashed() const { return crashed_; }

  /// The region's fault injector, for fates that can only be drawn inside
  /// the handler (invoker loss: whether a worker has children to invoke
  /// is known only after its payload is parsed). Host-side like the
  /// serving hooks — never serialized; null when injection is off.
  FaultInjector* fault_injector() const { return fault_injector_; }
  void set_fault_injector(FaultInjector* fault) { fault_injector_ = fault; }

  /// Request telemetry accumulated by this worker's service clients.
  RequestStats& request_stats() { return request_stats_; }
  /// Hedging policy handed to service clients via net(); the handler
  /// enables it from the invocation payload.
  HedgeConfig& hedge_config() { return hedge_; }

  /// Profile for invoking further workers from inside the region
  /// (Section 4.2 two-level invocation).
  InvokerProfile invoker_profile();

  // -- Memory accounting ----------------------------------------------------
  // The event handler starts the engine with a budget slightly below the
  // function size so that out-of-memory is reported rather than the worker
  // dying silently (Section 3.3).

  int64_t memory_budget_bytes() const;
  Status ReserveMemory(int64_t bytes);
  void ReleaseMemory(int64_t bytes);
  int64_t memory_used() const { return memory_used_; }

  // -- Metrics ---------------------------------------------------------------

  WorkerMetrics& metrics() { return metrics_; }
  /// Records a named phase spanning [start, now].
  void RecordPhase(const std::string& label, double start);

  /// Scale factor applied to modeled data sizes and compute work.
  double data_scale = 1.0;

  /// Morsel-driven runtime knobs for this worker's local kernels
  /// (partition/serde/codec) and its batched exchange I/O. Host-side
  /// configuration like data_scale: it never travels in payloads, and the
  /// default is strictly serial, which keeps default virtual-time
  /// schedules identical to the pre-exec runtime.
  exec::ExecContext exec;

  // -- Serving hooks ---------------------------------------------------------
  // Host-side like data_scale/exec: set by FaasService from the invocation,
  // never serialized. All default to null, so solo drivers are untouched.

  /// Per-query cost ledger; mirrored into net() so every service call this
  /// worker makes is attributed to its query.
  CostLedger* attribution = nullptr;
  /// Warm metadata cache consulted by scans for LISTs and footers.
  MetadataCache* meta_cache = nullptr;
  /// Shared-scan broker: concurrent queries over one extent share the GET.
  SharedScanBroker* scan_broker = nullptr;

 private:
  Services services_;
  std::string function_name_;
  int memory_mib_;
  bool cold_;
  Rng rng_;
  WorkerFate fate_;
  bool crashed_ = false;
  FaultInjector* fault_injector_ = nullptr;
  sim::ProcessorSharing cpu_;
  sim::SharedLink nic_;
  int64_t memory_used_ = 0;
  WorkerMetrics metrics_;
  RequestStats request_stats_;
  HedgeConfig hedge_;
  obs::Tracer* tracer_ = nullptr;
  uint64_t trace_span_ = 0;
};

/// RAII child span scoped to a worker operation: opens a child of the
/// environment's current span, makes it current, and on destruction closes
/// it and restores the previous one. A no-op when tracing is off. Safe in
/// coroutines — the destructor runs when the frame unwinds, so an early
/// co_return (a crashed worker) still closes the span at crash time.
class EnvSpan {
 public:
  EnvSpan(WorkerEnv* env, std::string cat, std::string name) : env_(env) {
    prev_ = env->trace_span();
    id_ = obs::Begin(env->tracer(), prev_, std::move(cat), std::move(name));
    if (id_ != 0) env->set_trace_span(id_);
  }
  EnvSpan(const EnvSpan&) = delete;
  EnvSpan& operator=(const EnvSpan&) = delete;
  ~EnvSpan() {
    if (id_ != 0) {
      env_->tracer()->EndSpan(id_);
      env_->set_trace_span(prev_);
    }
  }
  uint64_t id() const { return id_; }

 private:
  WorkerEnv* env_;
  uint64_t prev_ = 0;
  uint64_t id_ = 0;
};

/// The handler run by each invocation: the query-engine entry point.
using Handler =
    std::function<sim::Async<Status>(WorkerEnv&, std::string payload)>;

/// Registered function: handler code plus resources, as configured at
/// installation time (Section 3.3).
struct FunctionConfig {
  std::string name;
  int memory_mib = 2048;
  double timeout_s = 300.0;
  Handler handler;
};

/// Service-level behaviour of the simulated AWS Lambda.
struct FaasConfig {
  /// Default account limit on concurrent executions (the paper had to
  /// raise it via a support request for the 3200/4096-worker runs).
  int concurrency_limit = 1000;
  /// Invocation-rate limit: "ten times the limit on the number of
  /// concurrent invocations per second" (Section 4.2).
  double invocation_rate_multiple = 10.0;
  /// Container start latencies.
  double cold_start_median_s = 0.25;
  double cold_start_sigma = 0.35;
  double warm_start_median_s = 0.015;
  double warm_start_sigma = 0.2;
  /// Cold containers additionally load code from the dependency layer;
  /// modeled as extra CPU work at handler start (the paper observes ~20%
  /// slower cold executions).
  double cold_init_cpu_s = 0.6;
  /// Idle warm containers are reclaimed after this long.
  double warm_container_ttl_s = 600.0;
  /// Async invocation payload limit (AWS: 256 KB).
  size_t max_payload_bytes = 256 * 1024;
};

/// Simulated AWS Lambda: function registry, invocation admission
/// (concurrency + rate limits), cold/warm container pool, per-invocation
/// billing, and the bridge into handler coroutines.
class FaasService {
 public:
  FaasService(sim::Simulator* sim, CostLedger* ledger, Services services,
              const FaasConfig& config = {});

  /// Registers (or replaces) a function. Free control-plane operation.
  Status CreateFunction(FunctionConfig config);
  /// Deletes warm state, forcing cold starts (used between experiment
  /// configurations, which the paper does by re-creating the function).
  void ResetWarmPool(const std::string& name);

  /// Asynchronous invocation ("Event" type): returns once the API call has
  /// been accepted; the worker runs detached. Fails with ResourceExhausted
  /// when the concurrency or rate limit is hit (the caller may retry).
  /// `attribution` (optional) is the per-query cost ledger: the invocation
  /// and the worker's compute/requests are mirrored into it, and the worker
  /// environment inherits it (plus the serving hooks installed below).
  sim::Async<Status> Invoke(InvokerProfile profile, Rng* caller_rng,
                            std::string function, std::string payload,
                            CostLedger* attribution = nullptr);

  int active_executions() const { return active_; }
  int64_t total_invocations() const { return total_invocations_; }

  /// Timing records of completed invocations, in completion order.
  const std::vector<WorkerMetrics>& completed_metrics() const {
    return completed_metrics_;
  }
  void ClearMetrics() { completed_metrics_.clear(); }

  /// Number of invocations that ended with a non-OK handler status.
  int64_t failed_handlers() const { return failed_handlers_; }

  const FaasConfig& config() const { return config_; }
  void set_concurrency_limit(int limit) { config_.concurrency_limit = limit; }

  /// Installs the region's fault injector (null = no injection): Invoke
  /// draws per-request failures, and each started handler draws a
  /// WorkerFate (crash site, straggler slowdown).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  /// Installs the query-scoped tracer (null = tracing off). Every worker
  /// environment started while it is set gets a handle; host-side like
  /// the fault injector, so payload bytes never change.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs the serving layer's shared caches (null = off). Host-side
  /// like the fault injector: every worker environment started while they
  /// are set gets the handles, and payload bytes never change.
  void set_serving(MetadataCache* meta_cache, SharedScanBroker* scan_broker) {
    meta_cache_ = meta_cache;
    scan_broker_ = scan_broker;
  }

 private:
  struct Function {
    FunctionConfig config;
    /// Expiry times of idle warm containers.
    std::deque<double> warm_pool;
  };

  sim::Async<void> RunWorker(Function* fn, std::string payload, bool cold,
                             double invoke_initiated, double accepted_at,
                             CostLedger* attribution);

  sim::Simulator* sim_;
  CostLedger* ledger_;
  Services services_;
  FaasConfig config_;
  sim::TokenBucket api_rate_;
  std::map<std::string, Function> functions_;
  int active_ = 0;
  int64_t total_invocations_ = 0;
  int64_t failed_handlers_ = 0;
  uint64_t next_worker_seed_ = 0x1a3bada0;
  std::vector<WorkerMetrics> completed_metrics_;
  FaultInjector* fault_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  MetadataCache* meta_cache_ = nullptr;
  SharedScanBroker* scan_broker_ = nullptr;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_FAAS_H_
