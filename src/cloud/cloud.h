#ifndef LAMBADA_CLOUD_CLOUD_H_
#define LAMBADA_CLOUD_CLOUD_H_

#include <memory>
#include <string>

#include "cloud/cost_ledger.h"
#include "cloud/faas.h"
#include "cloud/fault.h"
#include "cloud/kv_store.h"
#include "cloud/object_store.h"
#include "cloud/pricing.h"
#include "cloud/queue_service.h"
#include "cloud/regions.h"
#include "sim/simulator.h"

namespace lambada::cloud {

/// Configuration of a simulated cloud deployment.
struct CloudConfig {
  std::string region = "eu";
  int concurrency_limit = 1000;
  uint64_t seed = 42;
  ObjectStoreConfig s3;
  QueueServiceConfig sqs;
  KeyValueStoreConfig ddb;
  FaasConfig faas;
  Pricing pricing;
  /// Chaos schedule for this region; disabled by default (and a disabled
  /// plan draws no randomness, leaving fault-free runs bit-identical).
  FaultPlan fault;
};

/// One simulated AWS region with all serverless services wired together,
/// plus the driver-side resources (uplink NIC, invocation thread pool cap,
/// randomness). This is the "world" that experiments instantiate.
class Cloud {
 public:
  explicit Cloud(const CloudConfig& config = {})
      : config_(config),
        region_(GetRegion(config.region)),
        s3_(&sim_, &ledger_, config.s3),
        sqs_(&sim_, &ledger_, config.sqs),
        ddb_(&sim_, &ledger_, config.ddb),
        faas_(&sim_, &ledger_, MakeServices(), MakeFaasConfig(config)),
        driver_nic_(&sim_, DriverNicConfig()),
        driver_invoke_bucket_(region_.remote_client_rate_per_s,
                              region_.remote_client_rate_per_s / 4),
        driver_rng_(config.seed),
        fault_(&sim_, config.fault) {
    s3_.set_fault_injector(&fault_);
    faas_.set_fault_injector(&fault_);
  }

  sim::Simulator& sim() { return sim_; }
  CostLedger& ledger() { return ledger_; }
  ObjectStore& s3() { return s3_; }
  QueueService& sqs() { return sqs_; }
  KeyValueStore& ddb() { return ddb_; }
  FaasService& faas() { return faas_; }
  const Pricing& pricing() const { return config_.pricing; }
  const RegionProfile& region() const { return region_; }
  const CloudConfig& config() const { return config_; }

  /// Services bundle as seen from inside the region.
  Services services() { return MakeServices(); }

  /// Network context of the driver machine. Driver-side request events
  /// annotate the trace's root span.
  NetContext driver_net() {
    NetContext ctx{&driver_nic_, &driver_rng_, 1.0};
    ctx.tracer = tracer_;
    ctx.span = tracer_ != nullptr ? tracer_->root() : 0;
    return ctx;
  }

  /// Invoker profile of the driver: WAN latency to the region plus the
  /// client-side rate cap of Table 1.
  InvokerProfile driver_invoker_profile() {
    InvokerProfile p;
    p.latency_median_s = region_.remote_invoke_latency_s;
    p.latency_sigma = 0.10;
    p.client_bucket = &driver_invoke_bucket_;
    return p;
  }

  Rng& driver_rng() { return driver_rng_; }

  /// The region's fault injector (executes config().fault).
  FaultInjector& fault() { return fault_; }

  /// Installs (or clears, with null) the query-scoped tracer. Wired like
  /// the fault injector: host-side, reaching workers through FaasService,
  /// so enabling tracing never changes payload bytes or request schedules.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    faas_.set_tracer(tracer);
  }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  Services MakeServices() {
    Services s;
    s.sim = &sim_;
    s.s3 = &s3_;
    s.sqs = &sqs_;
    s.ddb = &ddb_;
    s.faas = &faas_;  // Overwritten by FaasService's own constructor.
    s.ledger = &ledger_;
    return s;
  }

  static FaasConfig MakeFaasConfig(const CloudConfig& c) {
    FaasConfig f = c.faas;
    f.concurrency_limit = c.concurrency_limit;
    return f;
  }

  CloudConfig config_;
  RegionProfile region_;
  sim::Simulator sim_;
  CostLedger ledger_;
  ObjectStore s3_;
  QueueService sqs_;
  KeyValueStore ddb_;
  FaasService faas_;
  sim::SharedLink driver_nic_;
  sim::TokenBucket driver_invoke_bucket_;
  Rng driver_rng_;
  FaultInjector fault_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_CLOUD_H_
