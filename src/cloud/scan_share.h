#ifndef LAMBADA_CLOUD_SCAN_SHARE_H_
#define LAMBADA_CLOUD_SCAN_SHARE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/async.h"
#include "sim/simulator.h"

namespace lambada::cloud {

class CostLedger;
class S3Client;

/// Shared scans: when concurrent queries read the same extent of the same
/// object, only the first requester issues the ranged GET; later arrivals
/// attach to the in-flight request and await the same result buffer. The
/// single physical request's bytes move once, and its cost is split evenly
/// across the queries that shared it (CostLedger::AddSharedS3Get).
///
/// Failure semantics: only the fetcher sees the error (after its client's
/// own retry budget). Waiters wake, and the first of them re-arms the GET
/// as the new fetcher with its own client; the rest attach to the new
/// entry. Each failed round removes one participant, so the recovery loop
/// is bounded.
class SharedScanBroker {
 public:
  explicit SharedScanBroker(sim::Simulator* sim,
                            obs::MetricsRegistry* metrics = nullptr)
      : sim_(sim), metrics_(metrics) {}

  /// Drop-in for S3Client::Get over `client`. The returned buffer is shared
  /// (zero-copy) between all queries that attached to the same fetch.
  sim::Async<Result<BufferPtr>> Get(S3Client* client, std::string bucket,
                                    std::string key, int64_t offset,
                                    int64_t length);

  struct Stats {
    int64_t fetches = 0;   ///< Physical GETs issued.
    int64_t attaches = 0;  ///< Requests served by piggybacking.
    int64_t rearms = 0;    ///< Fetches re-armed after a fetcher failure.
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    explicit Entry(sim::Simulator* sim) : done(sim) {}
    sim::Event done;
    Result<BufferPtr> result = Status::Internal("shared fetch pending");
    bool completed = false;
    /// Per-query attribution ledgers of everyone sharing this fetch.
    std::vector<CostLedger*> sharers;
  };

  sim::Simulator* sim_;
  obs::MetricsRegistry* metrics_;
  Stats stats_;
  std::map<std::string, std::shared_ptr<Entry>> inflight_;
};

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_SCAN_SHARE_H_
