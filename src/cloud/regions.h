#ifndef LAMBADA_CLOUD_REGIONS_H_
#define LAMBADA_CLOUD_REGIONS_H_

#include <string>
#include <vector>

namespace lambada::cloud {

/// Invocation characteristics of a data center as measured from the
/// paper's driver location (Zurich), Table 1.
struct RegionProfile {
  std::string name;
  /// Latency of a single Invoke API call from the driver ("Single
  /// invocation time").
  double remote_invoke_latency_s;
  /// Aggregate rate the driver achieves with 128 concurrent invocation
  /// threads ("Concurrent inv. rate"); modeled as a client-side throughput
  /// cap (TLS/WAN bound).
  double remote_client_rate_per_s;
  /// Latency of an Invoke API call from inside the region; its inverse is
  /// the single-threaded "Intra-region rate" of Table 1.
  double intra_invoke_latency_s;
};

/// The four regions of Table 1.
inline const std::vector<RegionProfile>& AllRegions() {
  static const std::vector<RegionProfile> kRegions = {
      {"eu", 0.036, 294.0, 1.0 / 81.0},
      {"us", 0.363, 276.0, 1.0 / 79.0},
      {"sa", 0.474, 243.0, 1.0 / 84.0},
      {"ap", 0.536, 222.0, 1.0 / 81.0},
  };
  return kRegions;
}

/// Looks up a region by name; falls back to "eu".
const RegionProfile& GetRegion(const std::string& name);

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_REGIONS_H_
