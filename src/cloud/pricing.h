#ifndef LAMBADA_CLOUD_PRICING_H_
#define LAMBADA_CLOUD_PRICING_H_

namespace lambada::cloud {

/// AWS us-east-1 prices as quoted in the paper (Sections 4.3.1, 4.4.1,
/// Figure 9). All values in USD.
struct Pricing {
  /// Lambda: $ per GiB-second of configured memory. The paper quotes
  /// $3.3e-5 per second for a 2 GiB worker => $1.65e-5 per GiB-s.
  double lambda_gib_second = 3.3e-5 / 2.0;
  /// Lambda: $ per 1M invocation requests ($0.20 per 1M).
  double lambda_per_invocation = 0.20e-6;
  /// S3 GET: $0.4 per 1M requests.
  double s3_get = 0.4e-6;
  /// S3 PUT/COPY/POST: $5 per 1M requests.
  double s3_put = 5.0e-6;
  /// S3 LIST is charged at the PUT rate (Section 4.4.3).
  double s3_list = 5.0e-6;
  /// SQS: $0.40 per 1M requests.
  double sqs_request = 0.4e-6;
  /// DynamoDB on-demand: per read / write request unit.
  double ddb_read = 0.25e-6;
  double ddb_write = 1.25e-6;
};

/// Lambda bills in 100 ms increments (pricing model at the time of the
/// paper).
inline constexpr double kLambdaBillingQuantumSeconds = 0.1;

}  // namespace lambada::cloud

#endif  // LAMBADA_CLOUD_PRICING_H_
