#include "cloud/kv_store.h"

#include <cstdlib>

namespace lambada::cloud {

KeyValueStore::KeyValueStore(sim::Simulator* sim, CostLedger* ledger,
                             const KeyValueStoreConfig& config)
    : sim_(sim), ledger_(ledger), config_(config) {}

Status KeyValueStore::CreateTable(const std::string& table) {
  if (table.empty()) return Status::Invalid("empty table name");
  tables_.try_emplace(table);
  return Status::OK();
}

bool KeyValueStore::TableExists(const std::string& table) const {
  return tables_.find(table) != tables_.end();
}

sim::Async<Status> KeyValueStore::Latency(NetContext& ctx) {
  double latency = ctx.rng->Lognormal(config_.request_latency_median_s,
                                      config_.request_latency_sigma);
  co_await sim::Sleep(sim_, latency);
  co_return Status::OK();
}

sim::Async<Status> KeyValueStore::Put(NetContext ctx, std::string table,
                                      std::string key, std::string value) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    co_return Status::NotFound("no such table: " + table);
  }
  if (value.size() > config_.max_item_bytes) {
    co_return Status::Invalid("item exceeds 400 KB DynamoDB limit");
  }
  co_await Latency(ctx);
  ledger_->AddDdbWrite();
  if (ctx.attribution != nullptr) ctx.attribution->AddDdbWrite();
  it->second[key] = std::move(value);
  co_return Status::OK();
}

sim::Async<Result<std::string>> KeyValueStore::Get(NetContext ctx,
                                                   std::string table,
                                                   std::string key) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    co_return Status::NotFound("no such table: " + table);
  }
  co_await Latency(ctx);
  ledger_->AddDdbRead();
  if (ctx.attribution != nullptr) ctx.attribution->AddDdbRead();
  auto kit = it->second.find(key);
  if (kit == it->second.end()) {
    co_return Status::NotFound("no such item: " + key);
  }
  co_return kit->second;
}

sim::Async<Status> KeyValueStore::Delete(NetContext ctx, std::string table,
                                         std::string key) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    co_return Status::NotFound("no such table: " + table);
  }
  co_await Latency(ctx);
  ledger_->AddDdbWrite();
  if (ctx.attribution != nullptr) ctx.attribution->AddDdbWrite();
  it->second.erase(key);
  co_return Status::OK();
}

sim::Async<Result<int64_t>> KeyValueStore::Increment(NetContext ctx,
                                                     std::string table,
                                                     std::string key,
                                                     int64_t delta) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    co_return Status::NotFound("no such table: " + table);
  }
  co_await Latency(ctx);
  ledger_->AddDdbWrite();
  if (ctx.attribution != nullptr) ctx.attribution->AddDdbWrite();
  int64_t current = 0;
  auto kit = it->second.find(key);
  if (kit != it->second.end()) {
    current = std::strtoll(kit->second.c_str(), nullptr, 10);
  }
  current += delta;
  it->second[key] = std::to_string(current);
  co_return current;
}

Status KeyValueStore::PutDirect(const std::string& table,
                                const std::string& key, std::string value) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table");
  if (value.size() > config_.max_item_bytes) {
    return Status::Invalid("item exceeds 400 KB DynamoDB limit");
  }
  it->second[key] = std::move(value);
  return Status::OK();
}

Result<std::string> KeyValueStore::GetDirect(const std::string& table,
                                             const std::string& key) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table");
  auto kit = it->second.find(key);
  if (kit == it->second.end()) return Status::NotFound("no such item");
  return kit->second;
}

}  // namespace lambada::cloud
