#ifndef LAMBADA_COMMON_STATUS_H_
#define LAMBADA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace lambada {

/// Error categories used across the system. Modeled after the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  ///< Quotas, rate limits (e.g., S3 SlowDown).
  kFailedPrecondition,
  kUnavailable,  ///< Transient failure; the caller may retry.
  kInternal,
  kNotImplemented,
  kIOError,
  kCancelled,
  kTimeout,
  kOutOfMemory,  ///< Worker exceeded its memory budget.
  /// A caller-imposed deadline expired (e.g., the driver's query timeout).
  /// Unlike kTimeout this is terminal: the operation was abandoned, not
  /// merely slow, so IsRetriable() is false.
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g., "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// OK statuses carry no allocation. Non-OK statuses carry a code and a
/// message. Functions that can fail return `Status` (or `Result<T>` when
/// they also produce a value); exceptions are not used for error flow.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True if a retry may succeed (transient failures and throttling).
  bool IsRetriable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kTimeout;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. `Result` is the return type
/// of fallible functions that produce a value.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::Invalid(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    // An OK status without a value would be a logic error; normalize it.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value. Precondition: ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set... (normalized in ctor)
};

namespace internal {
inline Status ToStatus(const Status& s) { return s; }
inline Status ToStatus(Status&& s) { return std::move(s); }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Propagates errors to the caller: `RETURN_NOT_OK(DoThing());`.
#define RETURN_NOT_OK(expr)                                  \
  do {                                                       \
    auto _lambada_status_or = (expr);                        \
    if (!_lambada_status_or.ok()) {                          \
      return ::lambada::internal::ToStatus(                  \
          std::move(_lambada_status_or));                    \
    }                                                        \
  } while (false)

/// RETURN_NOT_OK for coroutine bodies (plain `return` is illegal there).
#define CO_RETURN_NOT_OK(expr)                               \
  do {                                                       \
    auto _lambada_co_status = ::lambada::internal::ToStatus( \
        (expr));                                             \
    if (!_lambada_co_status.ok()) {                          \
      co_return _lambada_co_status;                          \
    }                                                        \
  } while (false)

#define LAMBADA_CONCAT_IMPL(a, b) a##b
#define LAMBADA_CONCAT(a, b) LAMBADA_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise assigns
/// the value: `ASSIGN_OR_RETURN(auto file, OpenFile(path));`.
#define ASSIGN_OR_RETURN(lhs, rexpr)                             \
  LAMBADA_ASSIGN_OR_RETURN_IMPL(                                 \
      LAMBADA_CONCAT(_lambada_result_, __LINE__), lhs, rexpr)

#define LAMBADA_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) {                                     \
    return result.status();                               \
  }                                                       \
  lhs = std::move(result).value()

}  // namespace lambada

#endif  // LAMBADA_COMMON_STATUS_H_
