#ifndef LAMBADA_COMMON_RNG_H_
#define LAMBADA_COMMON_RNG_H_

#include <cstdint>

namespace lambada {

/// Deterministic 64-bit PRNG (xoshiro256**). Every stochastic component of
/// the simulator owns a seeded Rng so that runs are exactly reproducible;
/// std engines are avoided because their streams are not portable across
/// standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }

  /// Standard normal via Box-Muller.
  double Normal();

  /// Lognormal with given median and sigma (of the underlying normal).
  double Lognormal(double median, double sigma);

  /// Pareto with scale xm and shape alpha (heavy tail for alpha small).
  double Pareto(double xm, double alpha);

  /// Exponential with the given mean.
  double Exponential(double mean);

  /// Derives an independent child stream; used to give each simulated
  /// component its own stream from one experiment seed.
  Rng Fork() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace lambada

#endif  // LAMBADA_COMMON_RNG_H_
