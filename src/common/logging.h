#ifndef LAMBADA_COMMON_LOGGING_H_
#define LAMBADA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lambada {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();
/// Sets the process-wide minimum emitted level (default: kWarning, so that
/// tests and benchmarks stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

// Discards the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LAMBADA_LOG(level)                                          \
  ::lambada::internal::LogMessage(::lambada::LogLevel::k##level,    \
                                  __FILE__, __LINE__)

/// Unconditional fatal error: logs and aborts.
#define LAMBADA_FATAL()                                             \
  ::lambada::internal::LogMessage(::lambada::LogLevel::kError,      \
                                  __FILE__, __LINE__, /*fatal=*/true)

/// Invariant check; always on (used for programmer errors, not data errors).
#define LAMBADA_CHECK(cond)                                   \
  if (!(cond))                                                \
  LAMBADA_FATAL() << "Check failed: " #cond " "

#define LAMBADA_CHECK_OK(expr)                                       \
  do {                                                               \
    auto _lambada_check_status = ::lambada::internal::ToStatus(expr);\
    if (!_lambada_check_status.ok()) {                               \
      LAMBADA_FATAL() << "Status not OK: "                           \
                      << _lambada_check_status.ToString();           \
    }                                                                \
  } while (false)

#define LAMBADA_CHECK_EQ(a, b) \
  LAMBADA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMBADA_CHECK_NE(a, b) \
  LAMBADA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMBADA_CHECK_LE(a, b) \
  LAMBADA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMBADA_CHECK_LT(a, b) \
  LAMBADA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMBADA_CHECK_GE(a, b) \
  LAMBADA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LAMBADA_CHECK_GT(a, b) \
  LAMBADA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define LAMBADA_DCHECK(cond) \
  while (false) ::lambada::internal::NullStream()
#else
#define LAMBADA_DCHECK(cond) LAMBADA_CHECK(cond)
#endif

}  // namespace lambada

#endif  // LAMBADA_COMMON_LOGGING_H_
