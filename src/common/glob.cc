#include "common/glob.h"

namespace lambada {

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative wildcard matcher with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool ParseS3Uri(std::string_view uri, std::string* bucket, std::string* key) {
  constexpr std::string_view kScheme = "s3://";
  if (uri.substr(0, kScheme.size()) != kScheme) return false;
  std::string_view rest = uri.substr(kScheme.size());
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    *bucket = std::string(rest);
    key->clear();
  } else {
    *bucket = std::string(rest.substr(0, slash));
    *key = std::string(rest.substr(slash + 1));
  }
  return !bucket->empty();
}

std::string GlobLiteralPrefix(std::string_view pattern) {
  size_t n = pattern.find_first_of("*?");
  if (n == std::string_view::npos) n = pattern.size();
  return std::string(pattern.substr(0, n));
}

}  // namespace lambada
