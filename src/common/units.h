#ifndef LAMBADA_COMMON_UNITS_H_
#define LAMBADA_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace lambada {

// Byte units. The paper (and AWS) mixes binary and decimal units; we keep
// both explicit so that calibration constants can be copied verbatim.
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;
inline constexpr int64_t kTiB = 1024 * kGiB;
inline constexpr int64_t kKB = 1000;
inline constexpr int64_t kMB = 1000 * kKB;
inline constexpr int64_t kGB = 1000 * kMB;
inline constexpr int64_t kTB = 1000 * kGB;

/// Formats a byte count with a binary-unit suffix ("1.5 GiB").
std::string FormatBytes(int64_t bytes);

/// Formats US dollars with sensible precision ("$0.0123", "3.4 c",
/// "$12.30"). Used in benchmark tables mirroring the paper's cost axes.
std::string FormatUsd(double usd);

/// Formats a duration in seconds ("3.42 s", "125 ms", "2.1 min").
std::string FormatSeconds(double seconds);

}  // namespace lambada

#endif  // LAMBADA_COMMON_UNITS_H_
