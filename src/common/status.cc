#include "common/status.h"

namespace lambada {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lambada
