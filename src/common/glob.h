#ifndef LAMBADA_COMMON_GLOB_H_
#define LAMBADA_COMMON_GLOB_H_

#include <string>
#include <string_view>

namespace lambada {

/// Shell-style glob matching with `*` (any run, including '/') and `?`
/// (any single char). Used by the driver to expand patterns like
/// `s3://bucket/data/*.lpq` against object listings.
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Splits an `s3://bucket/key` URI. Returns false if the scheme is missing.
bool ParseS3Uri(std::string_view uri, std::string* bucket, std::string* key);

/// Longest prefix of `pattern` that contains no glob metacharacter; used to
/// narrow LIST requests.
std::string GlobLiteralPrefix(std::string_view pattern);

}  // namespace lambada

#endif  // LAMBADA_COMMON_GLOB_H_
