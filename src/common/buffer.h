#ifndef LAMBADA_COMMON_BUFFER_H_
#define LAMBADA_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"

namespace lambada {

/// An immutable, reference-counted byte buffer. Slicing is zero-copy: a
/// slice shares ownership of the parent storage. This is the currency of
/// the storage and format layers (objects in the store, column chunks, ...).
class Buffer {
 public:
  Buffer() = default;

  /// Takes ownership of `data`.
  static std::shared_ptr<Buffer> FromVector(std::vector<uint8_t> data) {
    auto storage = std::make_shared<std::vector<uint8_t>>(std::move(data));
    auto buf = std::make_shared<Buffer>();
    buf->storage_ = storage;
    buf->data_ = storage->data();
    buf->size_ = storage->size();
    return buf;
  }

  static std::shared_ptr<Buffer> FromString(const std::string& s) {
    return FromVector(std::vector<uint8_t>(s.begin(), s.end()));
  }

  /// Copies `size` bytes starting at `data`.
  static std::shared_ptr<Buffer> CopyOf(const void* data, size_t size) {
    std::vector<uint8_t> v(size);
    if (size > 0) std::memcpy(v.data(), data, size);
    return FromVector(std::move(v));
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Zero-copy sub-range view sharing ownership with this buffer.
  std::shared_ptr<Buffer> Slice(size_t offset, size_t length) const {
    LAMBADA_CHECK_LE(offset, size_);
    LAMBADA_CHECK_LE(offset + length, size_);
    auto buf = std::make_shared<Buffer>();
    buf->storage_ = storage_;
    buf->data_ = data_ + offset;
    buf->size_ = length;
    return buf;
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  std::shared_ptr<std::vector<uint8_t>> storage_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

using BufferPtr = std::shared_ptr<Buffer>;

}  // namespace lambada

#endif  // LAMBADA_COMMON_BUFFER_H_
