#ifndef LAMBADA_COMMON_BINIO_H_
#define LAMBADA_COMMON_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace lambada {

/// Little-endian binary encoder used for file footers, plan fragments, and
/// chunk serialization. Appends to an internal byte vector.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  /// Unsigned LEB128; compact for small counts.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(v));
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutBytes(const std::vector<uint8_t>& b) {
    PutVarint(b.size());
    PutRaw(b.data(), b.size());
  }

  void PutRaw(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Little-endian binary decoder over a borrowed byte range. All getters
/// bounds-check and report corruption via Status rather than crashing.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  Result<uint8_t> GetU8() {
    RETURN_NOT_OK(Require(1));
    return data_[pos_++];
  }
  Result<uint32_t> GetU32() { return GetRaw<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetRaw<uint64_t>(); }
  Result<int64_t> GetI64() { return GetRaw<int64_t>(); }
  Result<double> GetF64() { return GetRaw<double>(); }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      RETURN_NOT_OK(Require(1));
      uint8_t b = data_[pos_++];
      if (shift >= 64) return Status::IOError("varint overflow");
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  Result<std::string> GetString() {
    ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    RETURN_NOT_OK(Require(n));
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Result<std::vector<uint8_t>> GetBytes() {
    ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    RETURN_NOT_OK(Require(n));
    std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  Status Skip(size_t n) {
    RETURN_NOT_OK(Require(n));
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Require(size_t n) const {
    if (pos_ + n > size_) {
      return Status::IOError("binary reader: truncated input");
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> GetRaw() {
    RETURN_NOT_OK(Require(sizeof(T)));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace lambada

#endif  // LAMBADA_COMMON_BINIO_H_
