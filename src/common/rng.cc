#include "common/rng.h"

#include <cmath>

namespace lambada {

double Rng::Normal() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Lognormal(double median, double sigma) {
  return median * std::exp(sigma * Normal());
}

double Rng::Pareto(double xm, double alpha) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace lambada
