#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace lambada {

namespace {
std::string Format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string FormatBytes(int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kTiB) return Format("%.2f TiB", b / kTiB);
  if (bytes >= kGiB) return Format("%.2f GiB", b / kGiB);
  if (bytes >= kMiB) return Format("%.2f MiB", b / kMiB);
  if (bytes >= kKiB) return Format("%.2f KiB", b / kKiB);
  return Format("%.0f B", b);
}

std::string FormatUsd(double usd) {
  if (usd == 0.0) return "$0";
  const double a = std::fabs(usd);
  if (a < 0.01) return Format("%.3f c", usd * 100.0);
  if (a < 1.0) return Format("%.1f c", usd * 100.0);
  return Format("$%.2f", usd);
}

std::string FormatSeconds(double seconds) {
  const double a = std::fabs(seconds);
  if (a < 1.0) return Format("%.0f ms", seconds * 1000.0);
  if (a < 120.0) return Format("%.2f s", seconds);
  if (a < 7200.0) return Format("%.1f min", seconds / 60.0);
  return Format("%.2f h", seconds / 3600.0);
}

}  // namespace lambada
