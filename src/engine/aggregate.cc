#include "engine/aggregate.h"

#include <algorithm>
#include <limits>

namespace lambada::engine {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

void AggSpec::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutString(output_name);
  w->PutU8(input != nullptr ? 1 : 0);
  if (input != nullptr) input->Serialize(w);
}

Result<AggSpec> AggSpec::Deserialize(BinaryReader* r) {
  ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(AggKind::kAvg)) {
    return Status::IOError("bad aggregate kind");
  }
  ASSIGN_OR_RETURN(std::string name, r->GetString());
  ASSIGN_OR_RETURN(uint8_t has_input, r->GetU8());
  ExprPtr input;
  if (has_input != 0) {
    ASSIGN_OR_RETURN(input, Expr::Deserialize(r));
  }
  return AggSpec{static_cast<AggKind>(kind), std::move(input),
                 std::move(name)};
}

namespace {

/// Number of state columns for one aggregate.
size_t StateColumns(AggKind kind) {
  return kind == AggKind::kAvg ? 2 : 1;
}

}  // namespace

HashAggregator::HashAggregator(std::vector<std::string> group_by,
                               std::vector<AggSpec> aggs)
    : group_by_(std::move(group_by)), aggs_(std::move(aggs)) {}

size_t HashAggregator::StateWidth() const {
  size_t width = 0;
  for (const auto& a : aggs_) width += StateColumns(a.kind);
  return width;
}

HashAggregator::GroupState& HashAggregator::GetOrCreateGroup(
    const std::vector<int64_t>& keys) {
  auto it = index_.find(keys);
  if (it != index_.end()) return groups_[it->second];
  GroupState gs;
  gs.keys = keys;
  gs.acc.assign(StateWidth(), 0.0);
  gs.seen.assign(StateWidth(), false);
  groups_.push_back(std::move(gs));
  index_.emplace(keys, groups_.size() - 1);
  return groups_.back();
}

Status HashAggregator::ConsumeInput(const TableChunk& chunk) {
  size_t n = chunk.num_rows();
  if (n == 0) return Status::OK();
  // Resolve group-by key columns.
  std::vector<const Column*> key_cols;
  key_cols.reserve(group_by_.size());
  for (const auto& name : group_by_) {
    ASSIGN_OR_RETURN(size_t idx, chunk.schema()->RequireField(name));
    if (chunk.column(idx).type() != DataType::kInt64) {
      return Status::Invalid("group-by key must be int64: " + name);
    }
    key_cols.push_back(&chunk.column(idx));
  }
  // Evaluate aggregate inputs.
  std::vector<Column> inputs;
  inputs.reserve(aggs_.size());
  for (const auto& a : aggs_) {
    if (a.input != nullptr) {
      ASSIGN_OR_RETURN(Column c, a.input->Evaluate(chunk));
      inputs.push_back(std::move(c));
    } else {
      inputs.emplace_back(DataType::kInt64);  // Placeholder for COUNT.
    }
  }
  std::vector<int64_t> keys(group_by_.size());
  for (size_t row = 0; row < n; ++row) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      keys[k] = key_cols[k]->i64()[row];
    }
    GroupState& gs = GetOrCreateGroup(keys);
    size_t slot = 0;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].kind) {
        case AggKind::kSum:
          gs.acc[slot] += inputs[a].ValueAsDouble(row);
          break;
        case AggKind::kMin: {
          double v = inputs[a].ValueAsDouble(row);
          if (!gs.seen[slot] || v < gs.acc[slot]) gs.acc[slot] = v;
          gs.seen[slot] = true;
          break;
        }
        case AggKind::kMax: {
          double v = inputs[a].ValueAsDouble(row);
          if (!gs.seen[slot] || v > gs.acc[slot]) gs.acc[slot] = v;
          gs.seen[slot] = true;
          break;
        }
        case AggKind::kCount:
          gs.acc[slot] += 1;
          break;
        case AggKind::kAvg:
          gs.acc[slot] += inputs[a].ValueAsDouble(row);
          gs.acc[slot + 1] += 1;
          break;
      }
      slot += StateColumns(aggs_[a].kind);
    }
  }
  return Status::OK();
}

Status HashAggregator::MergePartial(const TableChunk& partial) {
  SchemaPtr expected = PartialSchema();
  if (!(*partial.schema() == *expected)) {
    return Status::Invalid("partial chunk schema mismatch: got " +
                           partial.schema()->ToString() + ", want " +
                           expected->ToString());
  }
  size_t n = partial.num_rows();
  std::vector<int64_t> keys(group_by_.size());
  for (size_t row = 0; row < n; ++row) {
    for (size_t k = 0; k < group_by_.size(); ++k) {
      keys[k] = partial.column(k).i64()[row];
    }
    GroupState& gs = GetOrCreateGroup(keys);
    size_t slot = 0;
    size_t col = group_by_.size();
    for (const auto& a : aggs_) {
      switch (a.kind) {
        case AggKind::kSum:
          gs.acc[slot] += partial.column(col).f64()[row];
          break;
        case AggKind::kMin: {
          double v = partial.column(col).f64()[row];
          if (!gs.seen[slot] || v < gs.acc[slot]) gs.acc[slot] = v;
          gs.seen[slot] = true;
          break;
        }
        case AggKind::kMax: {
          double v = partial.column(col).f64()[row];
          if (!gs.seen[slot] || v > gs.acc[slot]) gs.acc[slot] = v;
          gs.seen[slot] = true;
          break;
        }
        case AggKind::kCount:
          gs.acc[slot] += static_cast<double>(partial.column(col).i64()[row]);
          break;
        case AggKind::kAvg:
          gs.acc[slot] += partial.column(col).f64()[row];
          gs.acc[slot + 1] +=
              static_cast<double>(partial.column(col + 1).i64()[row]);
          break;
      }
      slot += StateColumns(a.kind);
      col += StateColumns(a.kind);
    }
  }
  return Status::OK();
}

SchemaPtr HashAggregator::PartialSchema() const {
  std::vector<Field> fields;
  for (const auto& g : group_by_) {
    fields.push_back(Field{g, DataType::kInt64});
  }
  for (const auto& a : aggs_) {
    switch (a.kind) {
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax:
        fields.push_back(Field{a.output_name, DataType::kFloat64});
        break;
      case AggKind::kCount:
        fields.push_back(Field{a.output_name, DataType::kInt64});
        break;
      case AggKind::kAvg:
        fields.push_back(Field{a.output_name + "$sum", DataType::kFloat64});
        fields.push_back(Field{a.output_name + "$count", DataType::kInt64});
        break;
    }
  }
  return std::make_shared<Schema>(std::move(fields));
}

SchemaPtr HashAggregator::FinalSchema() const {
  std::vector<Field> fields;
  for (const auto& g : group_by_) {
    fields.push_back(Field{g, DataType::kInt64});
  }
  for (const auto& a : aggs_) {
    fields.push_back(Field{a.output_name, a.kind == AggKind::kCount
                                              ? DataType::kInt64
                                              : DataType::kFloat64});
  }
  return std::make_shared<Schema>(std::move(fields));
}

TableChunk HashAggregator::PartialState() const {
  SchemaPtr schema = PartialSchema();
  std::vector<Column> cols;
  for (const auto& f : schema->fields()) cols.emplace_back(f.type);
  // Deterministic output order: sort groups by key.
  std::vector<const GroupState*> ordered;
  ordered.reserve(groups_.size());
  for (const auto& g : groups_) ordered.push_back(&g);
  std::sort(ordered.begin(), ordered.end(),
            [](const GroupState* a, const GroupState* b) {
              return a->keys < b->keys;
            });
  for (const GroupState* g : ordered) {
    size_t col = 0;
    for (size_t k = 0; k < group_by_.size(); ++k, ++col) {
      cols[col].mutable_i64().push_back(g->keys[k]);
    }
    size_t slot = 0;
    for (const auto& a : aggs_) {
      switch (a.kind) {
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          cols[col++].mutable_f64().push_back(g->acc[slot]);
          break;
        case AggKind::kCount:
          cols[col++].mutable_i64().push_back(
              static_cast<int64_t>(g->acc[slot]));
          break;
        case AggKind::kAvg:
          cols[col++].mutable_f64().push_back(g->acc[slot]);
          cols[col++].mutable_i64().push_back(
              static_cast<int64_t>(g->acc[slot + 1]));
          break;
      }
      slot += StateColumns(a.kind);
    }
  }
  return TableChunk(std::move(schema), std::move(cols));
}

TableChunk HashAggregator::Finalize() const {
  SchemaPtr schema = FinalSchema();
  std::vector<Column> cols;
  for (const auto& f : schema->fields()) cols.emplace_back(f.type);
  std::vector<const GroupState*> ordered;
  ordered.reserve(groups_.size());
  for (const auto& g : groups_) ordered.push_back(&g);
  std::sort(ordered.begin(), ordered.end(),
            [](const GroupState* a, const GroupState* b) {
              return a->keys < b->keys;
            });
  for (const GroupState* g : ordered) {
    size_t col = 0;
    for (size_t k = 0; k < group_by_.size(); ++k, ++col) {
      cols[col].mutable_i64().push_back(g->keys[k]);
    }
    size_t slot = 0;
    for (const auto& a : aggs_) {
      switch (a.kind) {
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          cols[col++].mutable_f64().push_back(g->acc[slot]);
          break;
        case AggKind::kCount:
          cols[col++].mutable_i64().push_back(
              static_cast<int64_t>(g->acc[slot]));
          break;
        case AggKind::kAvg: {
          double count = g->acc[slot + 1];
          cols[col++].mutable_f64().push_back(
              count > 0 ? g->acc[slot] / count : 0.0);
          break;
        }
      }
      slot += StateColumns(a.kind);
    }
  }
  return TableChunk(std::move(schema), std::move(cols));
}

}  // namespace lambada::engine
