#ifndef LAMBADA_ENGINE_CHUNK_SERDE_H_
#define LAMBADA_ENGINE_CHUNK_SERDE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/table.h"

namespace lambada::engine {

/// Serializes a chunk (schema + columns) into a self-contained byte blob.
/// This is the wire format of exchange partition files and worker result
/// messages. Values are raw little-endian: exchange data is written and
/// read once, so cheap serialization beats compression here.
std::vector<uint8_t> SerializeChunk(const TableChunk& chunk);

/// Inverse of SerializeChunk; validates sizes and reports corruption.
Result<TableChunk> DeserializeChunk(const uint8_t* data, size_t size);
inline Result<TableChunk> DeserializeChunk(const std::vector<uint8_t>& b) {
  return DeserializeChunk(b.data(), b.size());
}

/// Serializes several chunks back-to-back, returning the blob and the
/// byte offset of each chunk — the layout of a write-combined exchange
/// file (Section 4.4.3: "writing all partitions produced by one worker
/// into a single file").
struct CombinedChunks {
  std::vector<uint8_t> bytes;
  std::vector<uint64_t> offsets;  ///< Start of each chunk; size = n+1
                                  ///< (last entry = total size).
};
CombinedChunks SerializeChunksCombined(const std::vector<TableChunk>& chunks);

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_CHUNK_SERDE_H_
