#ifndef LAMBADA_ENGINE_CHUNK_SERDE_H_
#define LAMBADA_ENGINE_CHUNK_SERDE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "exec/exec_context.h"

namespace lambada::engine {

/// Serializes a chunk (schema + columns) into a self-contained byte blob.
/// This is the wire format of exchange partition files and worker result
/// messages. Values are raw little-endian: exchange data is written and
/// read once, so cheap serialization beats compression here.
///
/// Serde is morsel-parallel under a threaded ExecContext: the blob layout
/// is computed up front (SerializedChunkSize is exact), so column payloads
/// copy into disjoint slices concurrently and the bytes are identical for
/// every thread count. The default context runs serially.
std::vector<uint8_t> SerializeChunk(const TableChunk& chunk,
                                    const exec::ExecContext& ctx = {});

/// Exact size of SerializeChunk(chunk)'s output, without serializing.
/// This is what lets combined files be laid out before any byte is copied.
size_t SerializedChunkSize(const TableChunk& chunk);

/// Serializes `chunk` into `dst`, which must have room for exactly
/// SerializedChunkSize(chunk) bytes.
void SerializeChunkInto(const TableChunk& chunk, uint8_t* dst,
                        const exec::ExecContext& ctx = {});

/// Inverse of SerializeChunk; validates sizes and reports corruption.
Result<TableChunk> DeserializeChunk(const uint8_t* data, size_t size,
                                    const exec::ExecContext& ctx = {});
inline Result<TableChunk> DeserializeChunk(const std::vector<uint8_t>& b) {
  return DeserializeChunk(b.data(), b.size());
}

/// Serializes several chunks back-to-back, returning the blob and the
/// byte offset of each chunk — the layout of a write-combined exchange
/// file (Section 4.4.3: "writing all partitions produced by one worker
/// into a single file"). Chunks serialize in parallel into their
/// precomputed slices when the context asks for threads.
struct CombinedChunks {
  std::vector<uint8_t> bytes;
  std::vector<uint64_t> offsets;  ///< Start of each chunk; size = n+1
                                  ///< (last entry = total size).
};
CombinedChunks SerializeChunksCombined(const std::vector<TableChunk>& chunks,
                                       const exec::ExecContext& ctx = {});

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_CHUNK_SERDE_H_
