#ifndef LAMBADA_ENGINE_EXPR_H_
#define LAMBADA_ENGINE_EXPR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/binio.h"
#include "common/status.h"
#include "engine/table.h"

namespace lambada::engine {

/// Binary operators of the expression language. Comparisons and logical
/// operators yield int64 0/1; arithmetic follows the usual numeric
/// promotion (any float operand makes the result float).
enum class BinaryOp : uint8_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

std::string_view BinaryOpName(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable, serializable scalar expression tree. Expressions are
/// introspectable (unlike opaque UDF lambdas), which is what allows the
/// optimizer to push selections into the scan and prune row groups with
/// min/max statistics — the paper's framework achieves the same by
/// compiling Python UDFs through an inspectable IR (Section 3.2).
class Expr {
 public:
  enum class Kind : uint8_t {
    kColumn = 0,
    kLiteralInt = 1,
    kLiteralFloat = 2,
    kBinary = 3,
  };

  static ExprPtr Column(std::string name);
  static ExprPtr LiteralInt(int64_t value);
  static ExprPtr LiteralFloat(double value);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return column_; }
  int64_t int_value() const { return int_value_; }
  double float_value() const { return float_value_; }
  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Vectorized evaluation against a chunk; columns are resolved by name.
  Result<engine::Column> Evaluate(const TableChunk& chunk) const;

  /// Adds every referenced column name to `out`.
  void CollectColumns(std::set<std::string>* out) const;

  /// Validates that all referenced columns exist in `schema`.
  Status Validate(const Schema& schema) const;

  std::string ToString() const;

  void Serialize(BinaryWriter* w) const;
  static Result<ExprPtr> Deserialize(BinaryReader* r);

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteralInt;
  std::string column_;
  int64_t int_value_ = 0;
  double float_value_ = 0;
  BinaryOp op_ = BinaryOp::kAdd;
  ExprPtr left_;
  ExprPtr right_;
};

// -- Builder sugar (Listing 1 style) ----------------------------------------

inline ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }
inline ExprPtr Lit(int64_t v) { return Expr::LiteralInt(v); }
inline ExprPtr Lit(int v) { return Expr::LiteralInt(v); }
inline ExprPtr Lit(double v) { return Expr::LiteralFloat(v); }

inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
inline ExprPtr operator==(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr operator!=(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr operator<(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr operator<=(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr operator>(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr operator>=(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr operator&&(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr operator||(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kOr, std::move(a), std::move(b));
}

// -- Predicate analysis for row-group pruning --------------------------------

/// A closed interval in double space; defaults to (-inf, +inf).
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool Intersects(double min_value, double max_value) const {
    return max_value >= lo && min_value <= hi;
  }
};

/// Extracts per-column value bounds implied by `predicate` when it holds.
/// Handles conjunctions of comparisons between a column and a literal;
/// anything else contributes no bound (safe over-approximation, so pruning
/// with these intervals never drops matching rows).
std::map<std::string, Interval> ExtractColumnBounds(const ExprPtr& predicate);

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_EXPR_H_
