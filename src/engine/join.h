#ifndef LAMBADA_ENGINE_JOIN_H_
#define LAMBADA_ENGINE_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "exec/exec_context.h"

namespace lambada::engine {

/// Join types supported by the distributed hash join. The paper's exchange
/// operator exists to make exactly this class of operator viable on
/// serverless infrastructure (Section 4.4); inner and left-semi cover the
/// TPC-H joins we reproduce (Q12, Q14).
enum class JoinType : uint8_t {
  kInner = 0,     ///< One output row per (probe, build) key match.
  kLeftSemi = 1,  ///< Probe rows with at least one build match, probe
                  ///< columns only, each probe row at most once.
};

std::string_view JoinTypeName(JoinType type);

/// Worker-local hash join kernel: builds a hash table over `build`'s key
/// columns, probes it with `probe`'s key columns, and materializes the
/// result. Both inputs are expected to be co-partitioned by the two-sided
/// exchange, so the kernel itself is oblivious to distribution.
///
/// Output schema:
///   kInner    -> all probe columns, then all build columns except the
///                build key columns (the keys are equal by definition);
///   kLeftSemi -> the probe columns.
/// Duplicate output column names are rejected.
///
/// Key columns must be int64 on both sides and pair up positionally
/// (probe_keys[i] joins build_keys[i]).
///
/// Determinism contract (mirrors exec/parallel_for.h): output rows appear
/// in probe-row order, and the matches of one probe row in build-row
/// order. The probe phase is morsel-parallel — a counting pass fixes each
/// morsel's write window, then rows scatter into preallocated columns —
/// so the result is byte-identical for every thread count, including the
/// serial default.
Result<TableChunk> HashJoin(const TableChunk& probe,
                            const std::vector<int>& probe_keys,
                            const TableChunk& build,
                            const std::vector<int>& build_keys,
                            JoinType type,
                            const exec::ExecContext& ctx = {});

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_JOIN_H_
