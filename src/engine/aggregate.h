#ifndef LAMBADA_ENGINE_AGGREGATE_H_
#define LAMBADA_ENGINE_AGGREGATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace lambada::engine {

/// Aggregate functions. AVG is computed as SUM + COUNT in the partial
/// phase and finalized by the driver scope (the classic two-phase plan the
/// paper's data-parallel transformation produces).
enum class AggKind : uint8_t { kSum = 0, kMin, kMax, kCount, kAvg };

std::string_view AggKindName(AggKind kind);

/// One aggregate in a group-by: its function, input expression (null for
/// COUNT(*)), and output column name.
struct AggSpec {
  AggKind kind;
  ExprPtr input;  ///< May be null for kCount.
  std::string output_name;

  void Serialize(BinaryWriter* w) const;
  static Result<AggSpec> Deserialize(BinaryReader* r);
};

inline AggSpec Sum(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kSum, std::move(e), std::move(name)};
}
inline AggSpec Min(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kMin, std::move(e), std::move(name)};
}
inline AggSpec Max(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kMax, std::move(e), std::move(name)};
}
inline AggSpec Count(std::string name) {
  return AggSpec{AggKind::kCount, nullptr, std::move(name)};
}
inline AggSpec Avg(ExprPtr e, std::string name) {
  return AggSpec{AggKind::kAvg, std::move(e), std::move(name)};
}

/// Grouped hash aggregation with explicit partial/merge/final phases.
///
/// Partial state schema ("partial chunk"): the int64 group-key columns
/// followed, per aggregate, by its state columns —
///   SUM, MIN, MAX -> one float64 column
///   COUNT         -> one int64 column
///   AVG           -> one float64 sum column + one int64 count column.
/// Partial chunks are what workers ship to the driver (or through the
/// exchange); they merge associatively in any order.
class HashAggregator {
 public:
  /// `group_by`: names of int64 key columns (may be empty for a global
  /// aggregate); `aggs`: the aggregates to compute.
  HashAggregator(std::vector<std::string> group_by, std::vector<AggSpec> aggs);

  /// Consumes a chunk of raw input rows.
  Status ConsumeInput(const TableChunk& chunk);

  /// Merges a partial-state chunk produced by another aggregator.
  Status MergePartial(const TableChunk& partial);

  /// Extracts the partial state accumulated so far.
  TableChunk PartialState() const;

  /// Finalizes into the user-visible result (group keys + one column per
  /// aggregate, AVG divided out).
  TableChunk Finalize() const;

  /// Schema of partial-state chunks for these specs.
  SchemaPtr PartialSchema() const;
  /// Schema of the final result.
  SchemaPtr FinalSchema() const;

  size_t num_groups() const { return groups_.size(); }

 private:
  struct GroupState {
    std::vector<int64_t> keys;
    std::vector<double> acc;     // One slot per state column (sums, counts
                                 // held as doubles; exact for our ranges).
    std::vector<bool> seen;      // For min/max initialization.
  };

  size_t StateWidth() const;
  GroupState& GetOrCreateGroup(const std::vector<int64_t>& keys);

  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;

  struct KeyHash {
    size_t operator()(const std::vector<int64_t>& k) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (int64_t v : k) {
        h ^= static_cast<size_t>(v);
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<int64_t>, size_t, KeyHash> index_;
  std::vector<GroupState> groups_;
};

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_AGGREGATE_H_
