#include "engine/chunk_serde.h"

#include <cstring>

#include "common/binio.h"
#include "exec/parallel_for.h"

namespace lambada::engine {

namespace {

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Header: varint(num_cols), per field (varint(name len), name, type byte),
/// varint(num_rows). Column payloads follow, 8 bytes per value.
size_t HeaderSize(const TableChunk& chunk) {
  size_t n = VarintSize(chunk.num_columns());
  for (const auto& f : chunk.schema()->fields()) {
    n += VarintSize(f.name.size()) + f.name.size() + 1;
  }
  return n + VarintSize(chunk.num_rows());
}

const uint8_t* ColumnBytes(const Column& col) {
  return col.type() == DataType::kInt64
             ? reinterpret_cast<const uint8_t*>(col.i64().data())
             : reinterpret_cast<const uint8_t*>(col.f64().data());
}

}  // namespace

size_t SerializedChunkSize(const TableChunk& chunk) {
  return HeaderSize(chunk) + chunk.num_columns() * chunk.num_rows() * 8;
}

void SerializeChunkInto(const TableChunk& chunk, uint8_t* dst,
                        const exec::ExecContext& ctx) {
  BinaryWriter w;
  w.PutVarint(chunk.num_columns());
  for (const auto& f : chunk.schema()->fields()) {
    w.PutString(f.name);
    w.PutU8(static_cast<uint8_t>(f.type));
  }
  w.PutVarint(chunk.num_rows());
  const size_t header = w.size();
  LAMBADA_DCHECK(header == HeaderSize(chunk));
  std::memcpy(dst, w.bytes().data(), header);
  const size_t rows = chunk.num_rows();
  // Column payloads land at fixed offsets; morsels copy disjoint slices.
  exec::ParallelFor(ctx, 0, rows, [&](size_t b, size_t e) {
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      uint8_t* col_dst = dst + header + c * rows * 8;
      std::memcpy(col_dst + b * 8, ColumnBytes(chunk.column(c)) + b * 8,
                  (e - b) * 8);
    }
  });
}

std::vector<uint8_t> SerializeChunk(const TableChunk& chunk,
                                    const exec::ExecContext& ctx) {
  std::vector<uint8_t> out(SerializedChunkSize(chunk));
  SerializeChunkInto(chunk, out.data(), ctx);
  return out;
}

Result<TableChunk> DeserializeChunk(const uint8_t* data, size_t size,
                                    const exec::ExecContext& ctx) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(uint64_t num_cols, r.GetVarint());
  if (num_cols > 100000) return Status::IOError("implausible column count");
  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (uint64_t i = 0; i < num_cols; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.GetString());
    ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    if (type > 1) return Status::IOError("bad column type");
    fields.push_back(Field{std::move(name), static_cast<DataType>(type)});
  }
  ASSIGN_OR_RETURN(uint64_t num_rows, r.GetVarint());
  if (num_cols > 0 && num_rows > size / (8 * num_cols)) {
    return Status::IOError("chunk truncated");
  }
  if (r.remaining() < num_rows * num_cols * 8) {
    return Status::IOError("chunk truncated in column data");
  }
  if (r.remaining() > num_rows * num_cols * 8) {
    return Status::IOError("chunk trailing bytes");
  }
  auto schema = std::make_shared<Schema>(std::move(fields));
  const uint8_t* payload = data + r.position();
  std::vector<Column> cols;
  cols.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    if (schema->field(c).type == DataType::kInt64) {
      cols.push_back(Column::Int64(std::vector<int64_t>(num_rows)));
    } else {
      cols.push_back(Column::Float64(std::vector<double>(num_rows)));
    }
  }
  // Guard: with zero columns there is no payload to copy, and num_rows is
  // attacker-controlled (nothing above bounds it), so don't cut it into
  // an astronomically long run of empty morsels.
  if (num_cols > 0) {
    exec::ParallelFor(ctx, 0, num_rows, [&](size_t b, size_t e) {
      for (uint64_t c = 0; c < num_cols; ++c) {
        const uint8_t* src = payload + c * num_rows * 8;
        uint8_t* dst =
            cols[c].type() == DataType::kInt64
                ? reinterpret_cast<uint8_t*>(cols[c].mutable_i64().data())
                : reinterpret_cast<uint8_t*>(cols[c].mutable_f64().data());
        std::memcpy(dst + b * 8, src + b * 8, (e - b) * 8);
      }
    });
  }
  return TableChunk(std::move(schema), std::move(cols));
}

CombinedChunks SerializeChunksCombined(const std::vector<TableChunk>& chunks,
                                       const exec::ExecContext& ctx) {
  CombinedChunks out;
  out.offsets.reserve(chunks.size() + 1);
  size_t total = 0;
  for (const auto& chunk : chunks) {
    out.offsets.push_back(total);
    total += SerializedChunkSize(chunk);
  }
  out.offsets.push_back(total);
  out.bytes.resize(total);
  // One task per chunk: the write-combined file's chunks are disjoint
  // slices whose offsets were just fixed above, so they serialize
  // concurrently without changing a single byte of the layout.
  exec::ParallelForEach(ctx, chunks.size(), [&](size_t i) {
    SerializeChunkInto(chunks[i], out.bytes.data() + out.offsets[i]);
  });
  return out;
}

}  // namespace lambada::engine
