#include "engine/chunk_serde.h"

#include <cstring>

#include "common/binio.h"

namespace lambada::engine {

std::vector<uint8_t> SerializeChunk(const TableChunk& chunk) {
  BinaryWriter w;
  w.PutVarint(chunk.num_columns());
  for (const auto& f : chunk.schema()->fields()) {
    w.PutString(f.name);
    w.PutU8(static_cast<uint8_t>(f.type));
  }
  w.PutVarint(chunk.num_rows());
  for (const auto& col : chunk.columns()) {
    if (col.type() == DataType::kInt64) {
      w.PutRaw(col.i64().data(), col.size() * 8);
    } else {
      w.PutRaw(col.f64().data(), col.size() * 8);
    }
  }
  return w.Take();
}

Result<TableChunk> DeserializeChunk(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(uint64_t num_cols, r.GetVarint());
  if (num_cols > 100000) return Status::IOError("implausible column count");
  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (uint64_t i = 0; i < num_cols; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.GetString());
    ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    if (type > 1) return Status::IOError("bad column type");
    fields.push_back(Field{std::move(name), static_cast<DataType>(type)});
  }
  ASSIGN_OR_RETURN(uint64_t num_rows, r.GetVarint());
  if (num_rows * num_cols * 8 > size) {
    return Status::IOError("chunk truncated");
  }
  auto schema = std::make_shared<Schema>(std::move(fields));
  std::vector<Column> cols;
  cols.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    RETURN_NOT_OK(r.Skip(0));  // Keep reader position logic uniform.
    if (schema->field(c).type == DataType::kInt64) {
      std::vector<int64_t> v(num_rows);
      if (r.remaining() < num_rows * 8) {
        return Status::IOError("chunk truncated in column data");
      }
      std::memcpy(v.data(), data + r.position(), num_rows * 8);
      RETURN_NOT_OK(r.Skip(num_rows * 8));
      cols.push_back(Column::Int64(std::move(v)));
    } else {
      std::vector<double> v(num_rows);
      if (r.remaining() < num_rows * 8) {
        return Status::IOError("chunk truncated in column data");
      }
      std::memcpy(v.data(), data + r.position(), num_rows * 8);
      RETURN_NOT_OK(r.Skip(num_rows * 8));
      cols.push_back(Column::Float64(std::move(v)));
    }
  }
  if (r.remaining() != 0) return Status::IOError("chunk trailing bytes");
  return TableChunk(std::move(schema), std::move(cols));
}

CombinedChunks SerializeChunksCombined(
    const std::vector<TableChunk>& chunks) {
  CombinedChunks out;
  out.offsets.reserve(chunks.size() + 1);
  for (const auto& chunk : chunks) {
    out.offsets.push_back(out.bytes.size());
    auto blob = SerializeChunk(chunk);
    out.bytes.insert(out.bytes.end(), blob.begin(), blob.end());
  }
  out.offsets.push_back(out.bytes.size());
  return out;
}

}  // namespace lambada::engine
