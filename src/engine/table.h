#ifndef LAMBADA_ENGINE_TABLE_H_
#define LAMBADA_ENGINE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace lambada::engine {

/// Column data types. The paper's prototype supports numbers only ("our
/// prototype does not support strings yet", Section 5.1); so does ours.
enum class DataType : uint8_t { kInt64 = 0, kFloat64 = 1 };

std::string_view DataTypeName(DataType t);

/// A named, typed column in a schema.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const = default;
};

/// An ordered list of fields. Shared immutably between chunks and plans.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the field named `name`, or -1.
  int FieldIndex(std::string_view name) const;
  Result<size_t> RequireField(std::string_view name) const;

  /// Schema of the given column subset, in the given order.
  Schema Project(const std::vector<int>& indices) const;

  bool operator==(const Schema& other) const = default;
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// A single column of values. Exactly one representation is active,
/// according to `type()`.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {
    if (type == DataType::kInt64) {
      data_ = std::vector<int64_t>{};
    } else {
      data_ = std::vector<double>{};
    }
  }

  static Column Int64(std::vector<int64_t> values) {
    Column c(DataType::kInt64);
    c.data_ = std::move(values);
    return c;
  }
  static Column Float64(std::vector<double> values) {
    Column c(DataType::kFloat64);
    c.data_ = std::move(values);
    return c;
  }

  DataType type() const { return type_; }
  size_t size() const {
    return type_ == DataType::kInt64 ? i64().size() : f64().size();
  }

  const std::vector<int64_t>& i64() const {
    LAMBADA_DCHECK(type_ == DataType::kInt64);
    return std::get<std::vector<int64_t>>(data_);
  }
  std::vector<int64_t>& mutable_i64() {
    LAMBADA_DCHECK(type_ == DataType::kInt64);
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& f64() const {
    LAMBADA_DCHECK(type_ == DataType::kFloat64);
    return std::get<std::vector<double>>(data_);
  }
  std::vector<double>& mutable_f64() {
    LAMBADA_DCHECK(type_ == DataType::kFloat64);
    return std::get<std::vector<double>>(data_);
  }

  /// Value of row `i` widened to double (for expressions mixing types).
  double ValueAsDouble(size_t i) const {
    return type_ == DataType::kInt64 ? static_cast<double>(i64()[i])
                                     : f64()[i];
  }
  /// Value of row `i` as int64 (truncates doubles).
  int64_t ValueAsInt64(size_t i) const {
    return type_ == DataType::kInt64 ? i64()[i]
                                     : static_cast<int64_t>(f64()[i]);
  }

  void AppendFrom(const Column& src, size_t row) {
    if (type_ == DataType::kInt64) {
      mutable_i64().push_back(src.i64()[row]);
    } else {
      mutable_f64().push_back(src.f64()[row]);
    }
  }

  /// New column containing the rows where `keep` is true.
  Column Filter(const std::vector<bool>& keep) const;

  /// Heap bytes held by this column.
  int64_t memory_bytes() const {
    return static_cast<int64_t>(size()) * 8;
  }

 private:
  DataType type_;
  std::variant<std::vector<int64_t>, std::vector<double>> data_;
};

/// A horizontal slice of a table: equal-length columns plus their schema.
/// This is the unit of data flowing between operators and through the
/// exchange.
class TableChunk {
 public:
  TableChunk() : schema_(std::make_shared<Schema>()) {}
  TableChunk(SchemaPtr schema, std::vector<Column> columns);

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// An empty chunk with the given schema (zero rows, right column types).
  static TableChunk Empty(SchemaPtr schema);

  /// Chunk containing the given columns only (shares nothing; copies).
  Result<TableChunk> Project(const std::vector<int>& indices) const;

  /// Chunk containing rows where `keep` is true.
  TableChunk Filter(const std::vector<bool>& keep) const;

  /// Appends all rows of `other` (schemas must match).
  Status Append(const TableChunk& other);

  int64_t memory_bytes() const;

 private:
  SchemaPtr schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Concatenates chunks (schemas must match). Empty input gives an empty
/// chunk with a null schema.
Result<TableChunk> ConcatChunks(const std::vector<TableChunk>& chunks);

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_TABLE_H_
