#include "engine/table.h"

#include <sstream>

namespace lambada::engine {

std::string_view DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
  }
  return "unknown";
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::RequireField(std::string_view name) const {
  int i = FieldIndex(name);
  if (i < 0) {
    return Status::Invalid("no such column: " + std::string(name));
  }
  return static_cast<size_t>(i);
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (int i : indices) {
    LAMBADA_CHECK_GE(i, 0);
    LAMBADA_CHECK_LT(static_cast<size_t>(i), fields_.size());
    out.push_back(fields_[i]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ": " << DataTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

Column Column::Filter(const std::vector<bool>& keep) const {
  LAMBADA_CHECK_EQ(keep.size(), size());
  Column out(type_);
  if (type_ == DataType::kInt64) {
    const auto& src = i64();
    auto& dst = out.mutable_i64();
    for (size_t i = 0; i < src.size(); ++i) {
      if (keep[i]) dst.push_back(src[i]);
    }
  } else {
    const auto& src = f64();
    auto& dst = out.mutable_f64();
    for (size_t i = 0; i < src.size(); ++i) {
      if (keep[i]) dst.push_back(src[i]);
    }
  }
  return out;
}

TableChunk::TableChunk(SchemaPtr schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  LAMBADA_CHECK(schema_ != nullptr);
  LAMBADA_CHECK_EQ(schema_->num_fields(), columns_.size());
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  for (const auto& c : columns_) {
    LAMBADA_CHECK_EQ(c.size(), num_rows_);
  }
}

TableChunk TableChunk::Empty(SchemaPtr schema) {
  std::vector<Column> cols;
  cols.reserve(schema->num_fields());
  for (const auto& f : schema->fields()) {
    cols.emplace_back(f.type);
  }
  return TableChunk(std::move(schema), std::move(cols));
}

Result<TableChunk> TableChunk::Project(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || static_cast<size_t>(i) >= columns_.size()) {
      return Status::Invalid("projection index out of range");
    }
    cols.push_back(columns_[static_cast<size_t>(i)]);
  }
  auto schema = std::make_shared<Schema>(schema_->Project(indices));
  return TableChunk(std::move(schema), std::move(cols));
}

TableChunk TableChunk::Filter(const std::vector<bool>& keep) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    cols.push_back(c.Filter(keep));
  }
  return TableChunk(schema_, std::move(cols));
}

Status TableChunk::Append(const TableChunk& other) {
  if (!(*schema_ == *other.schema_)) {
    return Status::Invalid("appending chunk with different schema");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].type() == DataType::kInt64) {
      auto& dst = columns_[c].mutable_i64();
      const auto& src = other.columns_[c].i64();
      dst.insert(dst.end(), src.begin(), src.end());
    } else {
      auto& dst = columns_[c].mutable_f64();
      const auto& src = other.columns_[c].f64();
      dst.insert(dst.end(), src.begin(), src.end());
    }
  }
  num_rows_ += other.num_rows_;
  return Status::OK();
}

int64_t TableChunk::memory_bytes() const {
  int64_t total = 0;
  for (const auto& c : columns_) total += c.memory_bytes();
  return total;
}

Result<TableChunk> ConcatChunks(const std::vector<TableChunk>& chunks) {
  if (chunks.empty()) return TableChunk();
  TableChunk out = TableChunk::Empty(chunks[0].schema());
  for (const auto& c : chunks) {
    RETURN_NOT_OK(out.Append(c));
  }
  return out;
}

}  // namespace lambada::engine
