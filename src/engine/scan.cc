#include "engine/scan.h"

#include <memory>
#include <optional>

namespace lambada::engine {

namespace {

using format::FileReader;
using format::S3Source;

/// Per-file state shared between the metadata prefetcher and the scan loop.
struct FileState {
  FileRef ref;
  double scale = 1.0;
  std::shared_ptr<S3Source> source;
  Result<std::shared_ptr<FileReader>> reader = Status::Internal("pending");
  std::unique_ptr<sim::Event> ready;
};

sim::Async<void> OpenReader(FileState* state,
                            format::ReaderOptions reader_options) {
  state->reader = co_await FileReader::Open(state->source, reader_options);
  state->ready->Set();
}

/// True if the row group may contain rows satisfying the bounds.
bool RowGroupSurvives(const format::RowGroupMeta& rg,
                      const engine::Schema& schema,
                      const std::map<std::string, Interval>& bounds) {
  for (const auto& [column, interval] : bounds) {
    int idx = schema.FieldIndex(column);
    if (idx < 0) continue;  // Unknown column: cannot prune.
    const auto& stats = rg.columns[static_cast<size_t>(idx)].stats;
    if (!stats.valid) continue;
    double min_v, max_v;
    if (schema.field(static_cast<size_t>(idx)).type == DataType::kInt64) {
      min_v = static_cast<double>(stats.min_i64);
      max_v = static_cast<double>(stats.max_i64);
    } else {
      min_v = stats.min_f64;
      max_v = stats.max_f64;
    }
    if (!interval.Intersects(min_v, max_v)) return false;
  }
  return true;
}

}  // namespace

sim::Async<Result<ScanStats>> S3ParquetScan(
    cloud::WorkerEnv& env, std::vector<FileRef> files,
    const ScanOptions& options,
    std::function<Status(const TableChunk&)> sink) {
  ScanStats stats;
  auto* sim = env.sim();
  auto& services = env.services();

  // Build per-file state. The object's virtual scale drives both byte
  // accounting (in the store) and the CPU hook below.
  // Shared with the prefetcher coroutine, which may outlive an early
  // error return from this scan.
  auto states = std::make_shared<std::vector<FileState>>(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    (*states)[i].ref = files[i];
    auto scale = services.s3->Scale(files[i].bucket, files[i].key);
    (*states)[i].scale = scale.ok() ? *scale : 1.0;
    cloud::S3Client client(services.s3, env.net());
    // chunk_bytes is a MODELED request size (the planner derives it from
    // virtual byte counts), but S3Source splits real ranges — so descale
    // it per file, like the coalescing budget below: a x250-scaled file
    // then issues ~virtual_extent/chunk_bytes requests, the pattern the
    // Figure 7/8 tradeoffs are about, instead of one giant GET.
    format::S3Source::Options src = options.source;
    // Serving hooks ride on the worker environment, not the plan: the
    // shared-scan broker and metadata cache are host-side and default off.
    src.share = env.scan_broker;
    src.meta = env.meta_cache;
    if (src.chunk_bytes > 0 && (*states)[i].scale > 1.0) {
      src.chunk_bytes = std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(src.chunk_bytes) /
                                  (*states)[i].scale));
    }
    (*states)[i].source = std::make_shared<S3Source>(
        client, files[i].bucket, files[i].key, src);
    (*states)[i].ready = std::make_unique<sim::Event>(sim);
  }

  cloud::WorkerEnv* env_ptr = &env;
  auto reader_options_for = [env_ptr, sim, &options](const FileState& st) {
    format::ReaderOptions ro;
    ro.sim = sim;
    ro.cpu.compute = [env_ptr](double vcpu) { return env_ptr->Compute(vcpu); };
    ro.cpu.scale = st.scale;
    // The coalescing budget is a transfer-time-vs-request-latency
    // breakeven in MODELED bytes. A virtually-scaled object transfers
    // scale x more virtual bytes per real byte, so the budget on real
    // file offsets shrinks by the scale — without this, merging across a
    // 100 KB real gap on a x250-scaled file would buy one request with a
    // ~25 MB virtual transfer.
    ro.coalesce_gap_bytes = static_cast<int64_t>(
        static_cast<double>(options.coalesce_gap_bytes) /
        std::max(1.0, st.scale));
    ro.tracer = env_ptr->tracer();
    return ro;
  };

  // The prefetcher references the worker env (CPU, NIC); the scan must
  // not return — even on error — while it is still running.
  auto prefetch_done = std::make_shared<sim::Event>(sim);
  if (options.prefetch_metadata) {
    // Level (4): a dedicated thread downloads the metadata for all files
    // that should be scanned, hiding the latency of these small requests.
    sim::Spawn([](std::shared_ptr<std::vector<FileState>> sts,
                  std::shared_ptr<sim::Event> done,
                  std::function<format::ReaderOptions(const FileState&)>
                      make_opts) -> sim::Async<void> {
      for (auto& st : *sts) {
        co_await OpenReader(&st, make_opts(st));
      }
      done->Set();
    }(states, prefetch_done, reader_options_for));
  } else {
    prefetch_done->Set();
  }

  auto bounds = ExtractColumnBounds(options.filter);
  Status scan_error = Status::OK();
  // Row-group task spans parent here (the scan span current at entry), not
  // at env.trace_span() task-run time: a concurrently running sibling could
  // have swapped the env's current span by then.
  const uint64_t scan_span = env.trace_span();

  for (auto& st : *states) {
    stats.registry.Add(obs::Metric::kScanFiles, 1);
    if (options.prefetch_metadata) {
      co_await st.ready->Wait();
    } else {
      co_await OpenReader(&st, reader_options_for(st));
    }
    if (!st.reader.ok()) {
      scan_error = st.reader.status();
      break;
    }
    const std::shared_ptr<FileReader>& reader = *st.reader;
    const engine::Schema& file_schema = reader->metadata().schema;

    // Resolve the projection against this file's schema.
    std::vector<int> proj;
    if (options.projection.empty()) {
      for (size_t c = 0; c < file_schema.num_fields(); ++c) {
        proj.push_back(static_cast<int>(c));
      }
    } else {
      for (const auto& name : options.projection) {
        int idx = file_schema.FieldIndex(name);
        if (idx < 0) {
          scan_error =
              Status::Invalid("scan projection column not in file: " + name);
          break;
        }
        proj.push_back(idx);
      }
    }
    if (!scan_error.ok()) break;

    // Push the filter's per-column value intervals into the reader (keyed
    // by file-schema column index): dict-encoded chunks evaluate them on
    // dictionary codes before materialization. Only when the residual
    // filter runs — raw row-group readers must see every row.
    std::map<int, format::ColumnBound> dict_bounds;
    if (options.filter != nullptr && options.apply_residual_filter) {
      for (const auto& [column, interval] : bounds) {
        int idx = file_schema.FieldIndex(column);
        if (idx >= 0) {
          dict_bounds[idx] = format::ColumnBound{interval.lo, interval.hi};
        }
      }
    }

    // Prune row groups on min/max statistics (Section 5.3): workers whose
    // files are fully pruned return after the metadata round trip.
    std::vector<int> surviving;
    for (int rg = 0; rg < reader->num_row_groups(); ++rg) {
      stats.registry.Add(obs::Metric::kRowGroupsTotal, 1);
      if (RowGroupSurvives(reader->metadata().row_groups[rg], file_schema,
                           bounds)) {
        surviving.push_back(rg);
      } else {
        stats.registry.Add(obs::Metric::kRowGroupsPruned, 1);
      }
    }

    // Level (3): download up to row_group_parallelism row groups
    // asynchronously, overlapping download with decompression and the
    // downstream pipeline.
    sim::Semaphore gate(sim, std::max(1, options.row_group_parallelism));
    Status sink_status = Status::OK();
    // Completed chunks park here until every lower-indexed row group has
    // been emitted: the sink runs synchronously (zero virtual time), so
    // flushing in row-group index order makes the downstream accumulation
    // order independent of download completion order — worker partials stay
    // byte-identical under straggler/fault timing perturbations — without
    // changing the simulated schedule.
    std::vector<std::optional<TableChunk>> pending(surviving.size());
    size_t next_emit = 0;
    std::vector<sim::Async<void>> tasks;
    tasks.reserve(surviving.size());
    for (size_t slot = 0; slot < surviving.size(); ++slot) {
      int rg = surviving[slot];
      tasks.push_back([](cloud::WorkerEnv* e, const ScanOptions* opts,
                         std::shared_ptr<FileReader> rdr, double scale,
                         int rg_idx, std::vector<int> proj_cols,
                         const std::map<int, format::ColumnBound>* bnds,
                         sim::Semaphore* g, ScanStats* out,
                         const std::function<Status(const TableChunk&)>* snk,
                         Status* sink_st,
                         std::vector<std::optional<TableChunk>>* pend,
                         size_t* next_out, size_t my_slot,
                         const std::string* file_key,
                         uint64_t parent_span) -> sim::Async<void> {
        co_await g->Acquire();
        obs::Tracer* tracer = e->tracer();
        const double rg_start = e->sim()->Now();
        uint64_t rg_span =
            obs::Begin(tracer, parent_span, "scan", "rowgroup");
        if (rg_span != 0) {
          tracer->AddArg(rg_span, "key", *file_key);
          tracer->AddArg(rg_span, "rg", static_cast<int64_t>(rg_idx));
        }
        // Level (2): column chunks of this group fetched concurrently
        // (coalesced into extents), with dict-code predicate push-down.
        auto chunk = co_await rdr->ReadRowGroup(
            rg_idx, proj_cols, opts->column_fetch_parallelism, bnds, rg_span);
        if (!chunk.ok()) {
          if (sink_st->ok()) *sink_st = chunk.status();
          obs::End(tracer, rg_span);
          g->Release();
          co_return;
        }
        Status mem = e->ReserveMemory(chunk->memory_bytes());
        if (!mem.ok()) {
          if (sink_st->ok()) *sink_st = mem;
          obs::End(tracer, rg_span);
          g->Release();
          co_return;
        }
        out->registry.Add(obs::Metric::kRowsScanned,
                          static_cast<int64_t>(chunk->num_rows()));
        if (rg_span != 0) {
          tracer->AddArg(rg_span, "rows",
                         static_cast<int64_t>(chunk->num_rows()));
        }
        TableChunk result = *std::move(chunk);
        if (opts->filter != nullptr && opts->apply_residual_filter) {
          // Residual predicate on the decoded rows; charged as pipeline
          // CPU work (the JIT-compiled tight loop of the paper).
          co_await e->Compute(static_cast<double>(result.num_rows()) *
                              kFilterCpuSecondsPerRow * scale);
          auto mask_col = opts->filter->Evaluate(result);
          if (!mask_col.ok()) {
            if (sink_st->ok()) *sink_st = mask_col.status();
            e->ReleaseMemory(result.memory_bytes());
            obs::End(tracer, rg_span);
            g->Release();
            co_return;
          }
          std::vector<bool> keep(result.num_rows());
          for (size_t i = 0; i < keep.size(); ++i) {
            keep[i] = mask_col->ValueAsInt64(i) != 0;
          }
          int64_t before = result.memory_bytes();
          result = result.Filter(keep);
          e->ReleaseMemory(before - result.memory_bytes());
        }
        (*pend)[my_slot] = std::move(result);
        while (*next_out < pend->size() && (*pend)[*next_out].has_value()) {
          TableChunk ready = *std::move((*pend)[*next_out]);
          (*pend)[*next_out].reset();
          ++*next_out;
          out->registry.Add(obs::Metric::kRowsEmitted,
                            static_cast<int64_t>(ready.num_rows()));
          Status s = (*snk)(ready);
          if (!s.ok() && sink_st->ok()) *sink_st = s;
          e->ReleaseMemory(ready.memory_bytes());
        }
        out->registry.Observe(obs::Metric::kScanRowGroupTime,
                              e->sim()->Now() - rg_start);
        obs::End(tracer, rg_span);
        g->Release();
      }(&env, &options, reader, st.scale, rg, proj, &dict_bounds, &gate,
        &stats, &sink, &sink_status, &pending, &next_emit, slot, &st.ref.key,
        scan_span));
    }
    co_await sim::WhenAllVoid(sim, std::move(tasks));
    // A failed row group leaves a hole that blocks the in-order flush;
    // release whatever stayed parked behind it.
    for (auto& leftover : pending) {
      if (leftover.has_value()) {
        env.ReleaseMemory(leftover->memory_bytes());
        leftover.reset();
      }
    }
    // Report MODELED bytes: a virtually-scaled object moves scale x more
    // bytes through the simulated network than its real backing store.
    stats.registry.Add(obs::Metric::kScanBytesMoved,
                       static_cast<int64_t>(
                           static_cast<double>(reader->bytes_fetched()) *
                           st.scale));
    stats.registry.Add(obs::Metric::kRowsDictFiltered,
                       reader->rows_dict_filtered());
    if (!sink_status.ok()) {
      scan_error = sink_status;
      break;
    }
    stats.registry.Add(obs::Metric::kScanGetRequests,
                       st.source->request_count());
  }
  // Drain the prefetcher before returning so nothing outlives the worker.
  co_await prefetch_done->Wait();
  if (!scan_error.ok()) co_return scan_error;
  co_return stats;
}

}  // namespace lambada::engine
