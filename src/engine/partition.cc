#include "engine/partition.h"

namespace lambada::engine {

namespace {
// 64-bit mix (SplitMix64 finalizer): cheap and well distributed.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

uint64_t HashRow(const TableChunk& chunk, const std::vector<int>& key_columns,
                 size_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : key_columns) {
    const Column& col = chunk.column(static_cast<size_t>(c));
    uint64_t v;
    if (col.type() == DataType::kInt64) {
      v = static_cast<uint64_t>(col.i64()[row]);
    } else {
      double d = col.f64()[row];
      static_assert(sizeof(d) == sizeof(v));
      __builtin_memcpy(&v, &d, sizeof(v));
    }
    h = Mix(h ^ v);
  }
  return h;
}

Result<std::vector<uint32_t>> ComputePartitionIds(
    const TableChunk& chunk, const std::vector<int>& key_columns,
    int num_partitions) {
  if (num_partitions <= 0) {
    return Status::Invalid("num_partitions must be positive");
  }
  for (int c : key_columns) {
    if (c < 0 || static_cast<size_t>(c) >= chunk.num_columns()) {
      return Status::Invalid("partition key column out of range");
    }
  }
  std::vector<uint32_t> ids(chunk.num_rows());
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    ids[row] = static_cast<uint32_t>(
        HashRow(chunk, key_columns, row) %
        static_cast<uint64_t>(num_partitions));
  }
  return ids;
}

std::vector<TableChunk> PartitionBy(
    const TableChunk& chunk,
    const std::vector<uint32_t>& partition_of_row, int num_partitions) {
  LAMBADA_CHECK_EQ(partition_of_row.size(), chunk.num_rows());
  std::vector<TableChunk> out;
  out.reserve(static_cast<size_t>(num_partitions));
  for (int p = 0; p < num_partitions; ++p) {
    out.push_back(TableChunk::Empty(chunk.schema()));
  }
  // Row-at-a-time append; column-wise would be faster but this is clear
  // and partitioning cost is modeled in virtual time anyway.
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    uint32_t p = partition_of_row[row];
    LAMBADA_DCHECK(p < static_cast<uint32_t>(num_partitions));
    TableChunk& dst = out[p];
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      dst.mutable_column(c).AppendFrom(chunk.column(c), row);
    }
  }
  // Fix row counts: TableChunk tracks rows at construction; rebuild.
  std::vector<TableChunk> fixed;
  fixed.reserve(out.size());
  for (auto& part : out) {
    std::vector<Column> cols;
    cols.reserve(part.num_columns());
    for (size_t c = 0; c < part.num_columns(); ++c) {
      cols.push_back(part.column(c));
    }
    fixed.emplace_back(chunk.schema(), std::move(cols));
  }
  return fixed;
}

Result<std::vector<TableChunk>> HashPartition(
    const TableChunk& chunk, const std::vector<int>& key_columns,
    int num_partitions) {
  ASSIGN_OR_RETURN(auto ids,
                   ComputePartitionIds(chunk, key_columns, num_partitions));
  return PartitionBy(chunk, ids, num_partitions);
}

}  // namespace lambada::engine
