#include "engine/partition.h"

#include "exec/parallel_for.h"

namespace lambada::engine {

namespace {
// 64-bit mix (SplitMix64 finalizer): cheap and well distributed.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

uint64_t HashRow(const TableChunk& chunk, const std::vector<int>& key_columns,
                 size_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : key_columns) {
    const Column& col = chunk.column(static_cast<size_t>(c));
    uint64_t v;
    if (col.type() == DataType::kInt64) {
      v = static_cast<uint64_t>(col.i64()[row]);
    } else {
      double d = col.f64()[row];
      static_assert(sizeof(d) == sizeof(v));
      __builtin_memcpy(&v, &d, sizeof(v));
    }
    h = Mix(h ^ v);
  }
  return h;
}

Result<std::vector<uint32_t>> ComputePartitionIds(
    const TableChunk& chunk, const std::vector<int>& key_columns,
    int num_partitions, const exec::ExecContext& ctx) {
  if (num_partitions <= 0) {
    return Status::Invalid("num_partitions must be positive");
  }
  for (int c : key_columns) {
    if (c < 0 || static_cast<size_t>(c) >= chunk.num_columns()) {
      return Status::Invalid("partition key column out of range");
    }
  }
  std::vector<uint32_t> ids(chunk.num_rows());
  exec::ParallelFor(ctx, 0, chunk.num_rows(), [&](size_t b, size_t e) {
    for (size_t row = b; row < e; ++row) {
      ids[row] = static_cast<uint32_t>(
          HashRow(chunk, key_columns, row) %
          static_cast<uint64_t>(num_partitions));
    }
  });
  return ids;
}

std::vector<TableChunk> PartitionBy(
    const TableChunk& chunk,
    const std::vector<uint32_t>& partition_of_row, int num_partitions,
    const exec::ExecContext& ctx) {
  LAMBADA_CHECK_EQ(partition_of_row.size(), chunk.num_rows());
  const size_t parts = static_cast<size_t>(num_partitions);
  const size_t rows = chunk.num_rows();
  const size_t cols = chunk.num_columns();

  // Pass 1: per-morsel histograms. counts[m][p] = rows of morsel m headed
  // for partition p. Morsel boundaries are thread-count independent, so
  // the offsets derived below are too.
  const size_t num_morsels = exec::NumMorsels(ctx, rows);
  std::vector<std::vector<uint32_t>> counts(
      num_morsels, std::vector<uint32_t>(parts, 0));
  exec::ParallelFor(ctx, 0, rows, [&](size_t m, size_t b, size_t e) {
    auto& local = counts[m];
    for (size_t row = b; row < e; ++row) {
      uint32_t p = partition_of_row[row];
      LAMBADA_DCHECK(p < static_cast<uint32_t>(num_partitions));
      ++local[p];
    }
  });

  // Exclusive prefix sums over morsels give every (morsel, partition) its
  // contiguous write window; summing per partition sizes the outputs.
  std::vector<size_t> part_size(parts, 0);
  std::vector<std::vector<size_t>> offsets(
      num_morsels, std::vector<size_t>(parts, 0));
  for (size_t p = 0; p < parts; ++p) {
    size_t off = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      offsets[m][p] = off;
      off += counts[m][p];
    }
    part_size[p] = off;
  }

  // Preallocate output columns at final size.
  std::vector<std::vector<Column>> out_cols(parts);
  for (size_t p = 0; p < parts; ++p) {
    out_cols[p].reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      if (chunk.column(c).type() == DataType::kInt64) {
        out_cols[p].push_back(
            Column::Int64(std::vector<int64_t>(part_size[p])));
      } else {
        out_cols[p].push_back(
            Column::Float64(std::vector<double>(part_size[p])));
      }
    }
  }

  // Pass 2: scatter. Each morsel writes its own disjoint window of every
  // partition; rows keep input order within a partition (morsels are
  // ordered, rows within a morsel are scanned in order), matching the
  // sequential row-append result byte for byte.
  exec::ParallelFor(ctx, 0, rows, [&](size_t m, size_t b, size_t e) {
    std::vector<size_t> cursor = offsets[m];
    for (size_t row = b; row < e; ++row) {
      uint32_t p = partition_of_row[row];
      size_t dst = cursor[p]++;
      for (size_t c = 0; c < cols; ++c) {
        const Column& src = chunk.column(c);
        if (src.type() == DataType::kInt64) {
          out_cols[p][c].mutable_i64()[dst] = src.i64()[row];
        } else {
          out_cols[p][c].mutable_f64()[dst] = src.f64()[row];
        }
      }
    }
  });

  std::vector<TableChunk> out;
  out.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    out.emplace_back(chunk.schema(), std::move(out_cols[p]));
  }
  return out;
}

Result<std::vector<TableChunk>> HashPartition(
    const TableChunk& chunk, const std::vector<int>& key_columns,
    int num_partitions, const exec::ExecContext& ctx) {
  ASSIGN_OR_RETURN(auto ids, ComputePartitionIds(chunk, key_columns,
                                                 num_partitions, ctx));
  return PartitionBy(chunk, ids, num_partitions, ctx);
}

}  // namespace lambada::engine
