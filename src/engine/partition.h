#ifndef LAMBADA_ENGINE_PARTITION_H_
#define LAMBADA_ENGINE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "exec/exec_context.h"

namespace lambada::engine {

/// Stable 64-bit hash of one row's key columns. Deterministic across
/// workers (required for exchange correctness: every worker must route a
/// given key to the same partition).
uint64_t HashRow(const TableChunk& chunk, const std::vector<int>& key_columns,
                 size_t row);

/// In-memory partitioning routine (DramPartitioning in Algorithm 1):
/// splits `chunk` into `num_partitions` chunks by hash of the key columns.
/// Every input row lands in exactly one output partition.
///
/// All partition kernels take an ExecContext and run morsel-parallel when
/// it asks for threads; rows keep their input order within each output
/// partition, so the result is byte-identical for every thread count
/// (the default context runs serially on the calling thread).
Result<std::vector<TableChunk>> HashPartition(
    const TableChunk& chunk, const std::vector<int>& key_columns,
    int num_partitions, const exec::ExecContext& ctx = {});

/// Like HashPartition but with an arbitrary row -> partition projection
/// (used by the multi-level exchange, which partitions by coordinate).
/// Two deterministic passes: a per-morsel histogram fixes each morsel's
/// write offsets, then rows scatter into preallocated columns in parallel.
std::vector<TableChunk> PartitionBy(
    const TableChunk& chunk,
    const std::vector<uint32_t>& partition_of_row, int num_partitions,
    const exec::ExecContext& ctx = {});

/// Computes each row's target partition id.
Result<std::vector<uint32_t>> ComputePartitionIds(
    const TableChunk& chunk, const std::vector<int>& key_columns,
    int num_partitions, const exec::ExecContext& ctx = {});

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_PARTITION_H_
