#include "engine/sort.h"

#include <algorithm>
#include <numeric>

namespace lambada::engine {

namespace {

Result<std::vector<size_t>> SortedOrder(const TableChunk& chunk,
                                        const std::vector<SortKey>& keys) {
  std::vector<const Column*> cols;
  std::vector<bool> asc;
  cols.reserve(keys.size());
  for (const auto& k : keys) {
    ASSIGN_OR_RETURN(size_t idx, chunk.schema()->RequireField(k.column));
    cols.push_back(&chunk.column(idx));
    asc.push_back(k.ascending);
  }
  std::vector<size_t> order(chunk.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < cols.size(); ++k) {
      double va = cols[k]->ValueAsDouble(a);
      double vb = cols[k]->ValueAsDouble(b);
      if (va == vb) continue;
      return asc[k] ? va < vb : va > vb;
    }
    return false;
  });
  return order;
}

TableChunk Reorder(const TableChunk& chunk, const std::vector<size_t>& order,
                   size_t limit) {
  size_t n = std::min(limit, order.size());
  std::vector<Column> cols;
  cols.reserve(chunk.num_columns());
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    Column out(chunk.column(c).type());
    for (size_t i = 0; i < n; ++i) {
      out.AppendFrom(chunk.column(c), order[i]);
    }
    cols.push_back(std::move(out));
  }
  return TableChunk(chunk.schema(), std::move(cols));
}

}  // namespace

Result<TableChunk> SortChunk(const TableChunk& chunk,
                             const std::vector<SortKey>& keys) {
  ASSIGN_OR_RETURN(auto order, SortedOrder(chunk, keys));
  return Reorder(chunk, order, order.size());
}

Result<TableChunk> TopK(const TableChunk& chunk,
                        const std::vector<SortKey>& keys, size_t limit) {
  ASSIGN_OR_RETURN(auto order, SortedOrder(chunk, keys));
  return Reorder(chunk, order, limit);
}

}  // namespace lambada::engine
