#include "engine/expr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace lambada::engine {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::LiteralInt(int64_t value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteralInt;
  e->int_value_ = value;
  return e;
}

ExprPtr Expr::LiteralFloat(double value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteralFloat;
  e->float_value_ = value;
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  LAMBADA_CHECK(left != nullptr);
  LAMBADA_CHECK(right != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return true;
    default:
      return false;
  }
}

template <typename T>
T ApplyArith(BinaryOp op, T a, T b) {
  switch (op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kDiv:
      return b == T{} ? T{} : a / b;  // SQL-ish: avoid trapping.
    default:
      LAMBADA_FATAL() << "not an arithmetic op";
      return T{};
  }
}

int64_t ApplyCompare(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kEq:
      return a == b;
    case BinaryOp::kNe:
      return a != b;
    case BinaryOp::kLt:
      return a < b;
    case BinaryOp::kLe:
      return a <= b;
    case BinaryOp::kGt:
      return a > b;
    case BinaryOp::kGe:
      return a >= b;
    case BinaryOp::kAnd:
      return (a != 0) && (b != 0);
    case BinaryOp::kOr:
      return (a != 0) || (b != 0);
    default:
      LAMBADA_FATAL() << "not a comparison op";
      return 0;
  }
}

}  // namespace

Result<Column> Expr::Evaluate(const TableChunk& chunk) const {
  switch (kind_) {
    case Kind::kColumn: {
      int idx = chunk.schema()->FieldIndex(column_);
      if (idx < 0) {
        return Status::Invalid("unknown column in expression: " + column_);
      }
      return chunk.column(static_cast<size_t>(idx));
    }
    case Kind::kLiteralInt:
      return engine::Column::Int64(
          std::vector<int64_t>(chunk.num_rows(), int_value_));
    case Kind::kLiteralFloat:
      return engine::Column::Float64(
          std::vector<double>(chunk.num_rows(), float_value_));
    case Kind::kBinary: {
      ASSIGN_OR_RETURN(engine::Column lhs, left_->Evaluate(chunk));
      ASSIGN_OR_RETURN(engine::Column rhs, right_->Evaluate(chunk));
      size_t n = chunk.num_rows();
      if (IsComparison(op_)) {
        std::vector<int64_t> out(n);
        for (size_t i = 0; i < n; ++i) {
          out[i] = ApplyCompare(op_, lhs.ValueAsDouble(i),
                                rhs.ValueAsDouble(i));
        }
        return engine::Column::Int64(std::move(out));
      }
      // Arithmetic: int64 only if both sides are int64.
      if (lhs.type() == DataType::kInt64 &&
          rhs.type() == DataType::kInt64) {
        std::vector<int64_t> out(n);
        const auto& a = lhs.i64();
        const auto& b = rhs.i64();
        for (size_t i = 0; i < n; ++i) out[i] = ApplyArith(op_, a[i], b[i]);
        return engine::Column::Int64(std::move(out));
      }
      std::vector<double> out(n);
      for (size_t i = 0; i < n; ++i) {
        out[i] =
            ApplyArith(op_, lhs.ValueAsDouble(i), rhs.ValueAsDouble(i));
      }
      return engine::Column::Float64(std::move(out));
    }
  }
  return Status::Internal("unreachable expression kind");
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kColumn:
      out->insert(column_);
      break;
    case Kind::kBinary:
      left_->CollectColumns(out);
      right_->CollectColumns(out);
      break;
    default:
      break;
  }
}

Status Expr::Validate(const Schema& schema) const {
  std::set<std::string> cols;
  CollectColumns(&cols);
  for (const auto& c : cols) {
    if (schema.FieldIndex(c) < 0) {
      return Status::Invalid("expression references unknown column: " + c);
    }
  }
  return Status::OK();
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_;
    case Kind::kLiteralInt:
      return std::to_string(int_value_);
    case Kind::kLiteralFloat: {
      std::ostringstream os;
      os << float_value_;
      return os.str();
    }
    case Kind::kBinary:
      return "(" + left_->ToString() + " " +
             std::string(BinaryOpName(op_)) + " " + right_->ToString() + ")";
  }
  return "?";
}

void Expr::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case Kind::kColumn:
      w->PutString(column_);
      break;
    case Kind::kLiteralInt:
      w->PutI64(int_value_);
      break;
    case Kind::kLiteralFloat:
      w->PutF64(float_value_);
      break;
    case Kind::kBinary:
      w->PutU8(static_cast<uint8_t>(op_));
      left_->Serialize(w);
      right_->Serialize(w);
      break;
  }
}

Result<ExprPtr> Expr::Deserialize(BinaryReader* r) {
  ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  switch (static_cast<Kind>(kind)) {
    case Kind::kColumn: {
      ASSIGN_OR_RETURN(std::string name, r->GetString());
      return Column(std::move(name));
    }
    case Kind::kLiteralInt: {
      ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return LiteralInt(v);
    }
    case Kind::kLiteralFloat: {
      ASSIGN_OR_RETURN(double v, r->GetF64());
      return LiteralFloat(v);
    }
    case Kind::kBinary: {
      ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(BinaryOp::kOr)) {
        return Status::IOError("bad binary op in expression");
      }
      ASSIGN_OR_RETURN(ExprPtr left, Deserialize(r));
      ASSIGN_OR_RETURN(ExprPtr right, Deserialize(r));
      return Binary(static_cast<BinaryOp>(op), std::move(left),
                    std::move(right));
    }
  }
  return Status::IOError("bad expression kind");
}

namespace {

double LiteralAsDouble(const Expr& e) {
  return e.kind() == Expr::Kind::kLiteralInt
             ? static_cast<double>(e.int_value())
             : e.float_value();
}

bool IsLiteral(const ExprPtr& e) {
  return e->kind() == Expr::Kind::kLiteralInt ||
         e->kind() == Expr::Kind::kLiteralFloat;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

void Tighten(std::map<std::string, Interval>* bounds,
             const std::string& column, BinaryOp op, double literal) {
  Interval& iv = (*bounds)[column];
  switch (op) {
    case BinaryOp::kEq:
      iv.lo = std::max(iv.lo, literal);
      iv.hi = std::min(iv.hi, literal);
      break;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      // Min/max pruning works on closed intervals; treating < as <= is a
      // safe over-approximation.
      iv.hi = std::min(iv.hi, literal);
      break;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      iv.lo = std::max(iv.lo, literal);
      break;
    default:
      break;
  }
}

void WalkConjunction(const ExprPtr& e,
                     std::map<std::string, Interval>* bounds) {
  if (e->kind() != Expr::Kind::kBinary) return;
  if (e->op() == BinaryOp::kAnd) {
    WalkConjunction(e->left(), bounds);
    WalkConjunction(e->right(), bounds);
    return;
  }
  // column <op> literal, or literal <op> column.
  if (e->left()->kind() == Expr::Kind::kColumn && IsLiteral(e->right())) {
    Tighten(bounds, e->left()->column_name(), e->op(),
            LiteralAsDouble(*e->right()));
  } else if (IsLiteral(e->left()) &&
             e->right()->kind() == Expr::Kind::kColumn) {
    Tighten(bounds, e->right()->column_name(), FlipComparison(e->op()),
            LiteralAsDouble(*e->left()));
  }
}

}  // namespace

std::map<std::string, Interval> ExtractColumnBounds(
    const ExprPtr& predicate) {
  std::map<std::string, Interval> bounds;
  if (predicate != nullptr) {
    WalkConjunction(predicate, &bounds);
  }
  return bounds;
}

}  // namespace lambada::engine
