#ifndef LAMBADA_ENGINE_SORT_H_
#define LAMBADA_ENGINE_SORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"

namespace lambada::engine {

/// One sort key: column name and direction.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Returns `chunk` with rows reordered by the given keys (stable sort;
/// later keys break ties of earlier ones).
Result<TableChunk> SortChunk(const TableChunk& chunk,
                             const std::vector<SortKey>& keys);

/// Returns the top `limit` rows of `chunk` under the given ordering —
/// the driver-side post-processing step for "ORDER BY ... LIMIT k"
/// reports (small k; runs on the merged result, not in workers).
Result<TableChunk> TopK(const TableChunk& chunk,
                        const std::vector<SortKey>& keys, size_t limit);

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_SORT_H_
