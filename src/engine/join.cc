#include "engine/join.h"

#include <limits>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "engine/partition.h"
#include "exec/parallel_for.h"

namespace lambada::engine {

namespace {

constexpr uint32_t kNoRow = std::numeric_limits<uint32_t>::max();

/// Exact key comparison; the hash table chains by hash value only, so
/// collisions are resolved here.
bool KeysEqual(const TableChunk& probe, const std::vector<int>& probe_keys,
               size_t probe_row, const TableChunk& build,
               const std::vector<int>& build_keys, size_t build_row) {
  for (size_t k = 0; k < probe_keys.size(); ++k) {
    const auto& p = probe.column(static_cast<size_t>(probe_keys[k])).i64();
    const auto& b = build.column(static_cast<size_t>(build_keys[k])).i64();
    if (p[probe_row] != b[build_row]) return false;
  }
  return true;
}

Status ValidateKeys(const TableChunk& chunk, const std::vector<int>& keys,
                    const char* side) {
  for (int c : keys) {
    if (c < 0 || static_cast<size_t>(c) >= chunk.num_columns()) {
      return Status::Invalid(std::string("join ") + side +
                             " key column index out of range");
    }
    if (chunk.column(static_cast<size_t>(c)).type() != DataType::kInt64) {
      return Status::Invalid(std::string("join ") + side + " key column " +
                             chunk.schema()->field(static_cast<size_t>(c))
                                 .name +
                             " must be int64");
    }
  }
  return Status::OK();
}

/// One output column under construction: pre-sized storage that morsels
/// scatter into through their disjoint write windows.
struct OutputColumn {
  DataType type;
  const Column* src;  ///< Borrowed source column (probe or build side).
  bool from_probe;    ///< Row index comes from the probe (else build) row.
  std::vector<int64_t> i64;
  std::vector<double> f64;

  void Resize(size_t n) {
    if (type == DataType::kInt64) {
      i64.resize(n);
    } else {
      f64.resize(n);
    }
  }
  void Write(size_t pos, size_t src_row) {
    if (type == DataType::kInt64) {
      i64[pos] = src->i64()[src_row];
    } else {
      f64[pos] = src->f64()[src_row];
    }
  }
  Column Take() {
    return type == DataType::kInt64 ? Column::Int64(std::move(i64))
                                    : Column::Float64(std::move(f64));
  }
};

}  // namespace

std::string_view JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftSemi:
      return "left-semi";
  }
  return "?";
}

Result<TableChunk> HashJoin(const TableChunk& probe,
                            const std::vector<int>& probe_keys,
                            const TableChunk& build,
                            const std::vector<int>& build_keys,
                            JoinType type, const exec::ExecContext& ctx) {
  if (probe_keys.empty() || probe_keys.size() != build_keys.size()) {
    return Status::Invalid("join key lists must be non-empty and equal");
  }
  RETURN_NOT_OK(ValidateKeys(probe, probe_keys, "probe"));
  RETURN_NOT_OK(ValidateKeys(build, build_keys, "build"));

  // Output layout: probe columns, then (inner only) the build columns
  // minus the build keys — key values are equal across sides by
  // definition, so repeating them would only create name collisions.
  std::vector<Field> out_fields = probe.schema()->fields();
  std::vector<OutputColumn> out;
  out.reserve(probe.num_columns() + build.num_columns());
  for (size_t c = 0; c < probe.num_columns(); ++c) {
    out.push_back(OutputColumn{probe.column(c).type(), &probe.column(c),
                               /*from_probe=*/true, {}, {}});
  }
  if (type == JoinType::kInner) {
    std::set<int> key_set(build_keys.begin(), build_keys.end());
    for (size_t c = 0; c < build.num_columns(); ++c) {
      if (key_set.count(static_cast<int>(c))) continue;
      out_fields.push_back(build.schema()->field(c));
      out.push_back(OutputColumn{build.column(c).type(), &build.column(c),
                                 /*from_probe=*/false, {}, {}});
    }
  }
  {
    std::set<std::string> names;
    for (const auto& f : out_fields) {
      if (!names.insert(f.name).second) {
        return Status::Invalid("join output would duplicate column " +
                               f.name);
      }
    }
  }

  // Build a chained hash table over the build side. Rows insert in
  // descending order with head insertion, so every chain reads in
  // ascending build-row order — the order matches emit in.
  const size_t n_build = build.num_rows();
  const size_t n_probe = probe.num_rows();
  if (n_build > kNoRow - 1) return Status::Invalid("build side too large");
  std::vector<uint32_t> next(n_build, kNoRow);
  std::unordered_map<uint64_t, uint32_t> head;
  head.reserve(n_build * 2);
  for (size_t r = n_build; r-- > 0;) {
    uint64_t h = HashRow(build, build_keys, r);
    auto [it, inserted] = head.try_emplace(h, static_cast<uint32_t>(r));
    if (!inserted) {
      next[r] = it->second;
      it->second = static_cast<uint32_t>(r);
    }
  }

  // Walks probe row i's matches in build-row order; returns how many were
  // visited (semi joins stop at the first).
  auto for_each_match = [&](size_t i, auto&& emit) -> uint64_t {
    auto it = head.find(HashRow(probe, probe_keys, i));
    if (it == head.end()) return 0;
    uint64_t found = 0;
    for (uint32_t r = it->second; r != kNoRow; r = next[r]) {
      if (!KeysEqual(probe, probe_keys, i, build, build_keys, r)) continue;
      emit(r);
      ++found;
      if (type == JoinType::kLeftSemi) break;
    }
    return found;
  };

  // Pass 1: per-morsel match counts fix each morsel's write window, making
  // pass 2 scatter deterministically for any thread count.
  const size_t num_morsels = exec::NumMorsels(ctx, n_probe);
  std::vector<uint64_t> counts(num_morsels, 0);
  exec::ParallelFor(ctx, 0, n_probe, [&](size_t m, size_t b, size_t e) {
    uint64_t c = 0;
    for (size_t i = b; i < e; ++i) c += for_each_match(i, [](uint32_t) {});
    counts[m] = c;
  });
  std::vector<uint64_t> offsets(num_morsels + 1, 0);
  for (size_t m = 0; m < num_morsels; ++m) {
    offsets[m + 1] = offsets[m] + counts[m];
  }
  const size_t total = static_cast<size_t>(offsets[num_morsels]);
  for (auto& col : out) col.Resize(total);

  // Pass 2: re-walk and materialize into the precomputed windows.
  exec::ParallelFor(ctx, 0, n_probe, [&](size_t m, size_t b, size_t e) {
    size_t pos = static_cast<size_t>(offsets[m]);
    for (size_t i = b; i < e; ++i) {
      for_each_match(i, [&](uint32_t r) {
        for (auto& col : out) {
          col.Write(pos, col.from_probe ? i : static_cast<size_t>(r));
        }
        ++pos;
      });
    }
  });

  std::vector<Column> columns;
  columns.reserve(out.size());
  for (auto& col : out) columns.push_back(col.Take());
  return TableChunk(std::make_shared<Schema>(std::move(out_fields)),
                    std::move(columns));
}

}  // namespace lambada::engine
