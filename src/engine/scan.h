#ifndef LAMBADA_ENGINE_SCAN_H_
#define LAMBADA_ENGINE_SCAN_H_

#include <functional>
#include <string>
#include <vector>

#include "cloud/faas.h"
#include "common/status.h"
#include "engine/expr.h"
#include "engine/table.h"
#include "format/reader.h"
#include "format/source.h"
#include "obs/metrics.h"
#include "sim/async.h"

namespace lambada::engine {

/// One input file of a scan.
struct FileRef {
  std::string bucket;
  std::string key;
};

/// Configuration of the S3 scan operator (Section 4.3.2), exposing the
/// four levels of download concurrency:
///   (1) chunked requests within one read      -> source.chunk_bytes/conns
///   (2) concurrent column chunks of one group -> column_fetch_parallelism
///   (3) concurrent row groups                 -> row_group_parallelism
///   (4) metadata of all files ahead of data   -> prefetch_metadata
struct ScanOptions {
  /// Columns to materialize (projection push-down). Empty = all.
  std::vector<std::string> projection;
  /// Predicate for min/max row-group pruning AND residual evaluation.
  /// Null = scan everything.
  ExprPtr filter;
  /// Apply the residual filter to scanned rows (true in queries; false
  /// when the caller wants raw row groups).
  bool apply_residual_filter = true;
  int row_group_parallelism = 2;
  int column_fetch_parallelism = 4;
  format::S3Source::Options source;
  bool prefetch_metadata = true;
  /// Row-group IO coalescing budget forwarded to the reader (scaled down
  /// for virtually-scaled objects): a projected column chunk shares the
  /// preceding ranged read when that grows it by at most this many bytes
  /// (format::ReaderOptions::coalesce_gap_bytes). 0 disables.
  int64_t coalesce_gap_bytes = 1024 * 1024;
};

/// Metrics reported by one scan execution, kept in the shared registry
/// under the scan.* names (see src/obs/metrics.h). The accessors cover the
/// counters callers read.
struct ScanStats {
  obs::MetricsRegistry registry;

  int64_t files() const { return registry.counter(obs::Metric::kScanFiles); }
  int64_t row_groups_total() const {
    return registry.counter(obs::Metric::kRowGroupsTotal);
  }
  int64_t row_groups_pruned() const {
    return registry.counter(obs::Metric::kRowGroupsPruned);
  }
  /// Rows decoded (before residual filter).
  int64_t rows_scanned() const {
    return registry.counter(obs::Metric::kRowsScanned);
  }
  /// Rows after the residual filter.
  int64_t rows_emitted() const {
    return registry.counter(obs::Metric::kRowsEmitted);
  }
  int64_t get_requests() const {
    return registry.counter(obs::Metric::kScanGetRequests);
  }
  /// Modeled bytes fetched from storage (footers + column-chunk extents,
  /// including coalescing gaps, times each object's virtual scale): the
  /// post-encoding bytes moved, the number the paper's Figure 7/11
  /// tradeoffs are about. Equals real bytes on unscaled data.
  int64_t bytes_moved() const {
    return registry.counter(obs::Metric::kScanBytesMoved);
  }
  /// Rows dropped by dictionary-code predicate evaluation in the reader,
  /// before materialization and the residual filter.
  int64_t rows_dict_filtered() const {
    return registry.counter(obs::Metric::kRowsDictFiltered);
  }
};

/// Per-row CPU cost of the residual filter + downstream chunk handoff in
/// the fused pipeline (vCPU-seconds per row). Calibrated so that a full
/// Q1-style scan of a 500 MB file takes ~2-3 s of single-vCPU time
/// together with decompression (Figure 11).
inline constexpr double kFilterCpuSecondsPerRow = 4e-9;

/// Scans .lpq files from simulated S3 inside a serverless worker,
/// applying projection push-down and statistics-based row-group pruning,
/// and feeds surviving chunks to `sink`. The sink typically is the fused
/// (JIT-substituted) pipeline: filter residual -> aggregate.
sim::Async<Result<ScanStats>> S3ParquetScan(
    cloud::WorkerEnv& env, std::vector<FileRef> files,
    const ScanOptions& options,
    std::function<Status(const TableChunk&)> sink);

}  // namespace lambada::engine

#endif  // LAMBADA_ENGINE_SCAN_H_
