#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"

namespace lambada::obs {

namespace {

std::string FormatF(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Minimal JSON string escaper (names and args are ASCII identifiers and
/// key=value text; quotes/backslashes/control bytes are the only hazards).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(sim::Simulator* sim) : sim_(sim) {
  root_ = BeginSpan(0, "driver", "query");
}

Tracer::Span* Tracer::Find(uint64_t id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

uint64_t Tracer::BeginSpan(uint64_t parent, std::string cat,
                           std::string name) {
  Span s;
  s.id = spans_.size() + 1;
  s.parent = parent == 0 && !spans_.empty() ? root_ : parent;
  s.cat = std::move(cat);
  s.name = std::move(name);
  s.start = sim_->Now();
  if (Span* p = Find(s.parent)) s.track = p->track;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  Span* s = Find(id);
  if (s != nullptr && s->end < 0) s->end = sim_->Now();
}

void Tracer::AddArg(uint64_t id, const std::string& key, std::string value) {
  if (Span* s = Find(id)) s->args.emplace_back(key, std::move(value));
}

void Tracer::AddArg(uint64_t id, const std::string& key, int64_t value) {
  AddArg(id, key, std::to_string(value));
}

void Tracer::AddArgF(uint64_t id, const std::string& key, double value) {
  AddArg(id, key, FormatF(value));
}

void Tracer::Instant(uint64_t span, std::string text) {
  if (Span* s = Find(span)) s->instants.emplace_back(sim_->Now(),
                                                     std::move(text));
}

void Tracer::SetTrack(uint64_t id, int track) {
  if (Span* s = Find(id)) s->track = track;
}

std::string Tracer::ChromeTraceJson() const {
  // Open spans (a crashed worker's unreached EndSpan) render as zero-width.
  auto end_of = [](const Span& s) { return s.end < 0 ? s.start : s.end; };

  // Chrome nests "X" events on one (pid, tid) row only when their intervals
  // nest; concurrent row-group tasks overlap instead. Greedy interval
  // partitioning spreads overlapping siblings of one track across tids.
  std::vector<size_t> order(spans_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return spans_[a].start < spans_[b].start;
  });
  std::vector<int> tid(spans_.size(), 0);
  // lanes[track] = virtual end time per lane, grown on demand.
  std::map<int, std::vector<double>> lanes;
  for (size_t idx : order) {
    const Span& s = spans_[idx];
    std::vector<double>& track_lanes = lanes[s.track];
    // A child may share its parent's lane only if the parent encloses it;
    // that is exactly the "ends before my start" test failing, so the
    // child takes the parent's lane when nested and a fresh/free lane
    // otherwise. Chrome renders enclosure as nesting automatically.
    size_t lane = 0;
    if (const Span* p = s.parent > 0 ? &spans_[s.parent - 1] : nullptr;
        p != nullptr && p->track == s.track && end_of(*p) >= end_of(s)) {
      lane = static_cast<size_t>(tid[s.parent - 1]);
      if (lane >= track_lanes.size()) track_lanes.resize(lane + 1, -1);
    } else {
      while (lane < track_lanes.size() && track_lanes[lane] > s.start) ++lane;
      if (lane == track_lanes.size()) track_lanes.push_back(-1);
    }
    track_lanes[lane] = std::max(track_lanes[lane], end_of(s));
    tid[idx] = static_cast<int>(lane);
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                  "\"dur\":%.3f,",
                  s.track, tid[i], s.start * 1e6,
                  (end_of(s) - s.start) * 1e6);
    out += buf;
    out += "\"cat\":\"" + JsonEscape(s.cat) + "\",\"name\":\"" +
           JsonEscape(s.name) + "\"";
    if (!s.args.empty()) {
      out += ",\"args\":{";
      for (size_t a = 0; a < s.args.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"" + JsonEscape(s.args[a].first) + "\":\"" +
               JsonEscape(s.args[a].second) + "\"";
      }
      out += "}";
    }
    out += "}";
    for (const auto& [t, text] : s.instants) {
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"ts\":%.3f,",
                    s.track, tid[i], t * 1e6);
      out += buf;
      out += "\"cat\":\"" + JsonEscape(s.cat) + "\",\"name\":\"" +
             JsonEscape(text) + "\"}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::DeterministicText() const {
  // Children in creation (id) order per parent.
  std::vector<std::vector<uint64_t>> children(spans_.size() + 1);
  for (const Span& s : spans_) {
    if (s.id != root_) children[s.parent].push_back(s.id);
  }
  std::string out;
  // Iterative DFS; (id, depth), pushed in reverse so ids pop ascending.
  std::vector<std::pair<uint64_t, int>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Span& s = spans_[id - 1];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += "[" + FormatF(s.start) + " .. " +
           FormatF(s.end < 0 ? s.start : s.end) + "] " + s.name;
    if (s.end < 0) out += " (unclosed)";
    for (const auto& [k, v] : s.args) out += " " + k + "=" + v;
    out += "\n";
    for (const auto& [t, text] : s.instants) {
      out.append(static_cast<size_t>(depth) * 2 + 2, ' ');
      out += "@" + FormatF(t) + " " + text + "\n";
    }
    for (auto it = children[id].rbegin(); it != children[id].rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

}  // namespace lambada::obs
