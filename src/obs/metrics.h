#ifndef LAMBADA_OBS_METRICS_H_
#define LAMBADA_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"

namespace lambada::obs {

/// Every metric the system emits, by stable numeric id. The id is the wire
/// tag (WorkerResultMetrics rides inside ResultMessage), so entries are
/// append-only: never renumber, never reuse a retired id.
enum class Metric : uint16_t {
  kProcessingTime = 0,
  kRowsScanned = 1,
  kRowsEmitted = 2,
  kRowGroupsTotal = 3,
  kRowGroupsPruned = 4,
  kRowsDictFiltered = 5,
  kScanFiles = 6,
  kScanGetRequests = 7,
  kScanBytesMoved = 8,
  kRowsJoined = 9,
  kExchangeRounds = 10,
  kExchangePutRequests = 11,
  kExchangeGetRequests = 12,
  kExchangeListRequests = 13,
  kExchangeBytesWritten = 14,
  kExchangeBytesRead = 15,
  kS3Retries = 16,
  kHedgedRequests = 17,
  kHedgeWins = 18,
  kExchangeRoundTime = 19,
  kScanRowGroupTime = 20,
  kMetaCacheHits = 21,
  kMetaCacheMisses = 22,
  kSharedScanFetches = 23,
  kSharedScanAttaches = 24,
  kSharedScanRearms = 25,
  kServedQueries = 26,
  kQueuedQueries = 27,
  kRejectedQueries = 28,
  kCount,
};

enum class MetricType : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One row of the metric name registry. `name` is the stable public name
/// (docs/OBSERVABILITY.md lists the same table; scripts/check_docs.py
/// greps both against each other).
struct MetricDef {
  Metric id;
  const char* name;
  MetricType type;
  const char* unit;
  const char* help;
};

/// The full declaration table, indexed by metric id (dense, in id order).
const std::vector<MetricDef>& MetricTable();

/// Declaration row for one metric.
const MetricDef& DefOf(Metric m);

/// Bucket upper edges (seconds) shared by all virtual-time histograms.
/// A value lands in the first bucket whose edge is >= it; values beyond
/// the last edge land in the overflow bucket (edges.size()).
const std::vector<double>& VirtualTimeBucketEdges();

struct Histogram {
  std::vector<int64_t> buckets;  ///< edges.size() + 1 slots (last = overflow).
  double sum = 0;
  int64_t count = 0;
};

/// A sparse bag of named metric values. All updates happen on the simulator
/// thread; there is no locking. Registries serialize compactly (only
/// non-empty entries travel) and merge additively, which is how per-worker
/// registries roll up into the fleet-wide one on QueryReport.
class MetricsRegistry {
 public:
  /// Counter increment. DCHECKs that `m` is declared as a counter.
  void Add(Metric m, int64_t delta);
  /// Gauge assignment. DCHECKs that `m` is declared as a gauge.
  void Set(Metric m, double value);
  /// Histogram observation (virtual seconds).
  void Observe(Metric m, double value);

  int64_t counter(Metric m) const;
  double gauge(Metric m) const;
  /// Null when the histogram has no observations.
  const Histogram* histogram(Metric m) const;

  /// Additive merge: counters and histogram buckets add; gauges add too
  /// (summing worker processing time across a fleet is the useful total).
  void Merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }

  /// Wire format (inside ResultMessage): three sections — counters, gauges,
  /// histograms — each a varint count followed by (varint id, payload)
  /// entries in ascending id order. Only non-empty entries are written.
  void Serialize(BinaryWriter* w) const;
  static Result<MetricsRegistry> Deserialize(BinaryReader* r);

  /// Deterministic "name = value" lines in id order, for debugging and for
  /// the EXPLAIN ANALYZE footer.
  std::string ToText() const;

 private:
  std::map<uint16_t, int64_t> counters_;
  std::map<uint16_t, double> gauges_;
  std::map<uint16_t, Histogram> hists_;
};

}  // namespace lambada::obs

#endif  // LAMBADA_OBS_METRICS_H_
