#include "obs/metrics.h"

#include <cstdio>

#include "common/logging.h"

namespace lambada::obs {

// The declaration table is the single source of truth for metric names and
// types. docs/OBSERVABILITY.md carries the same table for humans, and
// scripts/check_docs.py (check 5) greps the two against each other — keep
// each entry's id, name, and type on one line so the check can parse them.
const std::vector<MetricDef>& MetricTable() {
  static const std::vector<MetricDef> kTable = {
      {Metric::kProcessingTime, "worker.processing_time_s", MetricType::kGauge,
       "s", "virtual time inside the worker handler"},
      {Metric::kRowsScanned, "scan.rows_scanned", MetricType::kCounter,
       "rows", "rows decoded from row groups (post dict-filter)"},
      {Metric::kRowsEmitted, "scan.rows_emitted", MetricType::kCounter,
       "rows", "rows surviving the scan's residual filter"},
      {Metric::kRowGroupsTotal, "scan.row_groups_total", MetricType::kCounter,
       "groups", "row groups in scanned files"},
      {Metric::kRowGroupsPruned, "scan.row_groups_pruned", MetricType::kCounter,
       "groups", "row groups skipped via min/max statistics"},
      {Metric::kRowsDictFiltered, "scan.rows_dict_filtered", MetricType::kCounter,
       "rows", "rows eliminated on dictionary codes before decode"},
      {Metric::kScanFiles, "scan.files", MetricType::kCounter,
       "files", "files opened by the scan"},
      {Metric::kScanGetRequests, "scan.get_requests", MetricType::kCounter,
       "requests", "object-store GETs issued by the scan"},
      {Metric::kScanBytesMoved, "scan.bytes_moved", MetricType::kCounter,
       "bytes", "modeled bytes fetched from the object store"},
      {Metric::kRowsJoined, "join.rows", MetricType::kCounter,
       "rows", "rows emitted by hash-join probes"},
      {Metric::kExchangeRounds, "exchange.rounds", MetricType::kCounter,
       "rounds", "exchange rounds executed"},
      {Metric::kExchangePutRequests, "exchange.put_requests", MetricType::kCounter,
       "requests", "partition PUTs issued by exchanges"},
      {Metric::kExchangeGetRequests, "exchange.get_requests", MetricType::kCounter,
       "requests", "partition GETs issued by exchanges"},
      {Metric::kExchangeListRequests, "exchange.list_requests", MetricType::kCounter,
       "requests", "LIST polls issued by exchanges"},
      {Metric::kExchangeBytesWritten, "exchange.bytes_written", MetricType::kCounter,
       "bytes", "modeled bytes written through exchanges"},
      {Metric::kExchangeBytesRead, "exchange.bytes_read", MetricType::kCounter,
       "bytes", "modeled bytes read through exchanges"},
      {Metric::kS3Retries, "s3.retries", MetricType::kCounter,
       "requests", "retried object-store requests (backoff loop)"},
      {Metric::kHedgedRequests, "s3.hedged_requests", MetricType::kCounter,
       "requests", "duplicate GETs armed by the hedging policy"},
      {Metric::kHedgeWins, "s3.hedge_wins", MetricType::kCounter,
       "requests", "hedged GETs where the duplicate finished first"},
      {Metric::kExchangeRoundTime, "exchange.round_s", MetricType::kHistogram,
       "s", "virtual time per exchange round"},
      {Metric::kScanRowGroupTime, "scan.rowgroup_s", MetricType::kHistogram,
       "s", "virtual time per scanned row group (fetch + decode)"},
      {Metric::kMetaCacheHits, "meta_cache.hits", MetricType::kCounter,
       "lookups", "LIST/footer lookups served from the metadata cache"},
      {Metric::kMetaCacheMisses, "meta_cache.misses", MetricType::kCounter,
       "lookups", "metadata-cache lookups that fell through to S3"},
      {Metric::kSharedScanFetches, "shared_scan.fetches", MetricType::kCounter,
       "requests", "ranged GETs actually issued by the shared-scan broker"},
      {Metric::kSharedScanAttaches, "shared_scan.attaches", MetricType::kCounter,
       "requests", "scan reads that attached to an in-flight shared GET"},
      {Metric::kSharedScanRearms, "shared_scan.rearms", MetricType::kCounter,
       "requests", "shared GETs re-armed by a waiter after the fetcher failed"},
      {Metric::kServedQueries, "serving.queries", MetricType::kCounter,
       "queries", "queries admitted and run by the query service"},
      {Metric::kQueuedQueries, "serving.queued", MetricType::kCounter,
       "queries", "submissions that waited in the admission queue"},
      {Metric::kRejectedQueries, "serving.rejected", MetricType::kCounter,
       "queries", "submissions rejected (budget, queue depth, or deadline)"},
  };
  return kTable;
}

const MetricDef& DefOf(Metric m) {
  const auto& table = MetricTable();
  auto idx = static_cast<size_t>(m);
  LAMBADA_CHECK(idx < table.size()) << "undeclared metric id " << idx;
  LAMBADA_DCHECK(table[idx].id == m);
  return table[idx];
}

const std::vector<double>& VirtualTimeBucketEdges() {
  static const std::vector<double> kEdges = {
      0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0};
  return kEdges;
}

void MetricsRegistry::Add(Metric m, int64_t delta) {
  LAMBADA_DCHECK(DefOf(m).type == MetricType::kCounter);
  if (delta == 0) return;
  counters_[static_cast<uint16_t>(m)] += delta;
}

void MetricsRegistry::Set(Metric m, double value) {
  LAMBADA_DCHECK(DefOf(m).type == MetricType::kGauge);
  gauges_[static_cast<uint16_t>(m)] = value;
}

void MetricsRegistry::Observe(Metric m, double value) {
  LAMBADA_DCHECK(DefOf(m).type == MetricType::kHistogram);
  const auto& edges = VirtualTimeBucketEdges();
  Histogram& h = hists_[static_cast<uint16_t>(m)];
  if (h.buckets.empty()) h.buckets.assign(edges.size() + 1, 0);
  size_t slot = 0;
  while (slot < edges.size() && value > edges[slot]) ++slot;
  ++h.buckets[slot];
  h.sum += value;
  ++h.count;
}

int64_t MetricsRegistry::counter(Metric m) const {
  auto it = counters_.find(static_cast<uint16_t>(m));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(Metric m) const {
  auto it = gauges_.find(static_cast<uint16_t>(m));
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::histogram(Metric m) const {
  auto it = hists_.find(static_cast<uint16_t>(m));
  return it == hists_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [id, v] : other.counters_) counters_[id] += v;
  for (const auto& [id, v] : other.gauges_) gauges_[id] += v;
  for (const auto& [id, h] : other.hists_) {
    Histogram& mine = hists_[id];
    if (mine.buckets.empty()) mine.buckets.assign(h.buckets.size(), 0);
    for (size_t i = 0; i < h.buckets.size() && i < mine.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
    mine.sum += h.sum;
    mine.count += h.count;
  }
}

void MetricsRegistry::Serialize(BinaryWriter* w) const {
  w->PutVarint(counters_.size());
  for (const auto& [id, v] : counters_) {
    w->PutVarint(id);
    w->PutI64(v);
  }
  w->PutVarint(gauges_.size());
  for (const auto& [id, v] : gauges_) {
    w->PutVarint(id);
    w->PutF64(v);
  }
  w->PutVarint(hists_.size());
  for (const auto& [id, h] : hists_) {
    w->PutVarint(id);
    w->PutVarint(h.buckets.size());
    for (int64_t b : h.buckets) w->PutI64(b);
    w->PutF64(h.sum);
    w->PutI64(h.count);
  }
}

namespace {

/// A metric id from the wire must be declared with the expected type.
Status CheckWireId(uint64_t id, MetricType want) {
  if (id >= static_cast<uint64_t>(Metric::kCount)) {
    return Status::IOError("unknown metric id " + std::to_string(id));
  }
  if (DefOf(static_cast<Metric>(id)).type != want) {
    return Status::IOError("metric id " + std::to_string(id) +
                           " has mismatched type on the wire");
  }
  return Status::OK();
}

}  // namespace

Result<MetricsRegistry> MetricsRegistry::Deserialize(BinaryReader* r) {
  MetricsRegistry reg;
  ASSIGN_OR_RETURN(uint64_t nc, r->GetVarint());
  if (nc > static_cast<uint64_t>(Metric::kCount)) {
    return Status::IOError("implausible metric count");
  }
  for (uint64_t i = 0; i < nc; ++i) {
    ASSIGN_OR_RETURN(uint64_t id, r->GetVarint());
    RETURN_NOT_OK(CheckWireId(id, MetricType::kCounter));
    ASSIGN_OR_RETURN(int64_t v, r->GetI64());
    reg.counters_[static_cast<uint16_t>(id)] = v;
  }
  ASSIGN_OR_RETURN(uint64_t ng, r->GetVarint());
  if (ng > static_cast<uint64_t>(Metric::kCount)) {
    return Status::IOError("implausible metric count");
  }
  for (uint64_t i = 0; i < ng; ++i) {
    ASSIGN_OR_RETURN(uint64_t id, r->GetVarint());
    RETURN_NOT_OK(CheckWireId(id, MetricType::kGauge));
    ASSIGN_OR_RETURN(double v, r->GetF64());
    reg.gauges_[static_cast<uint16_t>(id)] = v;
  }
  ASSIGN_OR_RETURN(uint64_t nh, r->GetVarint());
  if (nh > static_cast<uint64_t>(Metric::kCount)) {
    return Status::IOError("implausible metric count");
  }
  for (uint64_t i = 0; i < nh; ++i) {
    ASSIGN_OR_RETURN(uint64_t id, r->GetVarint());
    RETURN_NOT_OK(CheckWireId(id, MetricType::kHistogram));
    ASSIGN_OR_RETURN(uint64_t nb, r->GetVarint());
    if (nb > 64) return Status::IOError("implausible bucket count");
    Histogram h;
    h.buckets.reserve(nb);
    for (uint64_t b = 0; b < nb; ++b) {
      ASSIGN_OR_RETURN(int64_t c, r->GetI64());
      h.buckets.push_back(c);
    }
    ASSIGN_OR_RETURN(h.sum, r->GetF64());
    ASSIGN_OR_RETURN(h.count, r->GetI64());
    reg.hists_[static_cast<uint16_t>(id)] = std::move(h);
  }
  return reg;
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  char buf[160];
  for (const auto& def : MetricTable()) {
    auto id = static_cast<uint16_t>(def.id);
    switch (def.type) {
      case MetricType::kCounter: {
        auto it = counters_.find(id);
        if (it == counters_.end()) continue;
        std::snprintf(buf, sizeof(buf), "%s = %lld\n", def.name,
                      static_cast<long long>(it->second));
        break;
      }
      case MetricType::kGauge: {
        auto it = gauges_.find(id);
        if (it == gauges_.end()) continue;
        std::snprintf(buf, sizeof(buf), "%s = %.6f\n", def.name, it->second);
        break;
      }
      case MetricType::kHistogram: {
        auto it = hists_.find(id);
        if (it == hists_.end()) continue;
        std::snprintf(buf, sizeof(buf), "%s: count=%lld sum=%.6f\n", def.name,
                      static_cast<long long>(it->second.count),
                      it->second.sum);
        break;
      }
    }
    out += buf;
  }
  return out;
}

}  // namespace lambada::obs
