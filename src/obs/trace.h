#ifndef LAMBADA_OBS_TRACE_H_
#define LAMBADA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace lambada::obs {

/// Query-scoped span tracer stamped from the simulator's virtual clock.
///
/// Spans form a tree rooted at the driver's "query" span. Every begin/end/
/// annotate happens on the simulator thread (spans are never created inside
/// ParallelFor kernels), and span ids are assigned in creation order, so for
/// a fixed (workload, seed) the whole trace — ids, timestamps, args — is
/// identical across runs and across worker thread counts. Tracing draws no
/// randomness and sleeps for no virtual time: enabling it cannot perturb a
/// simulation.
///
/// Span id 0 is "no span": every mutator is a no-op on id 0, so call sites
/// hold a plain uint64_t and never need a tracer-null check after Begin.
class Tracer {
 public:
  struct Span {
    uint64_t id = 0;
    uint64_t parent = 0;  ///< 0 only for the root.
    int track = 0;        ///< Chrome pid: 0 = driver, worker_id + 1 = worker.
    std::string cat;
    std::string name;
    double start = 0;
    double end = -1;  ///< < 0 while open.
    /// Insertion-ordered key/value annotations.
    std::vector<std::pair<std::string, std::string>> args;
    /// Timestamped point annotations (fault events, retries, hedges).
    std::vector<std::pair<double, std::string>> instants;
  };

  /// Creates the root "query" span (cat "driver") at the current time.
  explicit Tracer(sim::Simulator* sim);

  uint64_t root() const { return root_; }
  sim::Simulator* simulator() const { return sim_; }

  /// Opens a child of `parent` (root if parent is 0) at the current time.
  uint64_t BeginSpan(uint64_t parent, std::string cat, std::string name);
  /// Closes `id` at the current time. Idempotent; no-op on id 0.
  void EndSpan(uint64_t id);

  void AddArg(uint64_t id, const std::string& key, std::string value);
  void AddArg(uint64_t id, const std::string& key, int64_t value);
  /// Fixed %.6f formatting so text exports stay byte-stable.
  void AddArgF(uint64_t id, const std::string& key, double value);
  /// Point annotation at the current virtual time.
  void Instant(uint64_t span, std::string text);
  /// Chrome track (pid) for a span; children inherit at BeginSpan.
  void SetTrack(uint64_t id, int track);

  const std::vector<Span>& spans() const { return spans_; }
  const Span& span(uint64_t id) const { return spans_[id - 1]; }

  /// Chrome `trace_event` JSON (chrome://tracing, Perfetto). Complete "X"
  /// events plus "i" instants; overlapping spans of one track are spread
  /// across tids by greedy interval partitioning.
  std::string ChromeTraceJson() const;

  /// Indented deterministic tree rendering, the golden-test format:
  ///   [start .. end] name | k=v k=v
  ///     @time annotation
  std::string DeterministicText() const;

 private:
  Span* Find(uint64_t id);

  sim::Simulator* sim_;
  std::vector<Span> spans_;  ///< spans_[id - 1]; ids are dense from 1.
  uint64_t root_ = 0;
};

/// Begin helper tolerating a null tracer (tracing disabled => id 0).
inline uint64_t Begin(Tracer* t, uint64_t parent, std::string cat,
                      std::string name) {
  return t == nullptr
             ? 0
             : t->BeginSpan(parent, std::move(cat), std::move(name));
}

inline void End(Tracer* t, uint64_t id) {
  if (t != nullptr) t->EndSpan(id);
}

}  // namespace lambada::obs

#endif  // LAMBADA_OBS_TRACE_H_
