#ifndef LAMBADA_WORKLOAD_TPCH_H_
#define LAMBADA_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>

#include "cloud/object_store.h"
#include "common/status.h"
#include "compress/codec.h"
#include "core/dataflow.h"
#include "core/stats_index.h"
#include "engine/table.h"

namespace lambada::workload {

/// Modified TPC-H dbgen for the LINEITEM relation, numbers instead of
/// strings (Section 5.1: "Since our prototype does not support strings
/// yet, we modify dbgen to generate numbers instead of strings") and the
/// relation sorted by l_shipdate "to show the effect of selection push
/// downs on that attribute".
///
/// Columns (16, all int64/float64):
///   l_orderkey, l_partkey, l_suppkey, l_linenumber        int64
///   l_quantity, l_extendedprice, l_discount, l_tax        float64
///   l_returnflag (0=A,1=N,2=R), l_linestatus (0=F,1=O)    int64
///   l_shipdate, l_commitdate, l_receiptdate               int64 (day number)
///   l_shipinstruct, l_shipmode, l_comment                 int64

/// Days since 1992-01-01 for a proleptic Gregorian date.
int64_t TpchDate(int year, int month, int day);

/// LINEITEM rows per unit scale factor (TPC-H: ~6M at SF 1).
inline constexpr int64_t kLineitemRowsPerScaleFactor = 6001215;

engine::SchemaPtr LineitemSchema();

/// Generates `num_rows` LINEITEM rows with TPC-H value distributions,
/// sorted by l_shipdate.
engine::TableChunk GenerateLineitem(int64_t num_rows, uint64_t seed);

/// How a generated dataset is laid out on (simulated) S3.
struct LoadOptions {
  int64_t num_rows = 100000;
  int num_files = 8;
  /// Row groups per file — matched to the row-group count a real ~500 MB
  /// Parquet file would have, so that request patterns are faithful.
  int row_groups_per_file = 8;
  compress::CodecId codec = compress::CodecId::kHeavy;
  /// Virtual size each file models (0 = its real size). The paper's files
  /// are "about 500 MB" (Section 5.1).
  int64_t virtual_bytes_per_file = 0;
  uint64_t seed = 7;
  /// When set, each file's min/max statistics are registered in this
  /// central index under `dataset` (Section 5.3 extension).
  core::StatsIndex* stats_index = nullptr;
  std::string dataset;
};

struct DatasetInfo {
  int64_t rows = 0;
  int files = 0;
  int64_t real_bytes = 0;
  int64_t virtual_bytes = 0;
};

/// Generates, sorts, splits, encodes and uploads LINEITEM as
/// "{prefix}part-NNNN.lpq" objects. Host-side (no simulated cost): this is
/// the dataset that exists before the experiment starts.
Result<DatasetInfo> LoadLineitem(cloud::ObjectStore* s3,
                                 const std::string& bucket,
                                 const std::string& prefix,
                                 const LoadOptions& options);

// -- Queries -----------------------------------------------------------------

/// TPC-H Q1 (pricing summary report): selects ~98 % of LINEITEM on
/// l_shipdate, aggregates into 4 groups with 8 aggregates.
core::Query TpchQ1(const std::string& pattern);

/// TPC-H Q6 (forecasting revenue change): selects ~2 % of LINEITEM,
/// global SUM(l_extendedprice * l_discount).
core::Query TpchQ6(const std::string& pattern);

/// The Q1 ship-date cutoff (1998-12-01 minus 90 days).
int64_t Q1CutoffDate();

// -- Reference results (computed directly, for validating the system) -------

engine::TableChunk ReferenceQ1(const engine::TableChunk& lineitem);
double ReferenceQ6(const engine::TableChunk& lineitem);

}  // namespace lambada::workload

#endif  // LAMBADA_WORKLOAD_TPCH_H_
