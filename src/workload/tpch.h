#ifndef LAMBADA_WORKLOAD_TPCH_H_
#define LAMBADA_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>

#include "cloud/object_store.h"
#include "common/status.h"
#include "compress/codec.h"
#include "core/dataflow.h"
#include "core/stats_index.h"
#include "engine/table.h"

namespace lambada::workload {

/// Modified TPC-H dbgen for the LINEITEM relation, numbers instead of
/// strings (Section 5.1: "Since our prototype does not support strings
/// yet, we modify dbgen to generate numbers instead of strings") and the
/// relation sorted by l_shipdate "to show the effect of selection push
/// downs on that attribute".
///
/// Columns (16, all int64/float64):
///   l_orderkey, l_partkey, l_suppkey, l_linenumber        int64
///   l_quantity, l_extendedprice, l_discount, l_tax        float64
///   l_returnflag (0=A,1=N,2=R), l_linestatus (0=F,1=O)    int64
///   l_shipdate, l_commitdate, l_receiptdate               int64 (day number)
///   l_shipinstruct, l_shipmode, l_comment                 int64

/// Days since 1992-01-01 for a proleptic Gregorian date.
int64_t TpchDate(int year, int month, int day);

/// LINEITEM rows per unit scale factor (TPC-H: ~6M at SF 1).
inline constexpr int64_t kLineitemRowsPerScaleFactor = 6001215;

/// The l_partkey / p_partkey domain of the generator (1..kPartCount): a
/// GeneratePart(kPartCount, ...) relation covers every lineitem part key.
inline constexpr int64_t kPartCount = 200000;

/// Numeric stand-ins for the string attributes the joins read.
/// l_shipmode draws uniformly from 0..6 (7 TPC-H modes); Q12's MAIL and
/// SHIP are these two values.
inline constexpr int64_t kShipmodeMail = 2;
inline constexpr int64_t kShipmodeShip = 4;
/// The o_custkey / c_custkey domain of the generator (1..kCustomerCount):
/// a GenerateCustomer(kCustomerCount, ...) relation covers every
/// o_custkey (TPC-H: 150k customers at SF 1).
inline constexpr int64_t kCustomerCount = 150000;
/// c_mktsegment draws uniformly from 0..4 (5 TPC-H segments); Q3's
/// BUILDING is this value.
inline constexpr int64_t kMktSegmentBuilding = 0;
/// o_orderpriority draws uniformly from 0..4 (0='1-URGENT', 1='2-HIGH',
/// ...); Q12 counts priorities <= this value as "high".
inline constexpr int64_t kHighPriorityMax = 1;
/// p_type draws uniformly from 0..149 (TPC-H has 150 types, 25 of which
/// start with PROMO); Q14 treats types below this cutoff as promotional.
inline constexpr int64_t kPromoTypeCutoff = 25;

engine::SchemaPtr LineitemSchema();

/// Generates `num_rows` LINEITEM rows with TPC-H value distributions,
/// sorted by l_shipdate.
engine::TableChunk GenerateLineitem(int64_t num_rows, uint64_t seed);

/// ORDERS, numbers-only like LINEITEM (9 columns):
///   o_orderkey, o_custkey, o_orderstatus (0=F,1=O,2=P)        int64
///   o_totalprice                                              float64
///   o_orderdate (day number), o_orderpriority (0..4),
///   o_clerk, o_shippriority, o_comment                        int64
engine::SchemaPtr OrdersSchema();

/// Generates ORDERS rows with o_orderkey 1..num_orders, sorted by key.
/// GenerateOrders(MaxOrderKey(lineitem), ...) covers every l_orderkey of
/// a GenerateLineitem relation.
engine::TableChunk GenerateOrders(int64_t num_orders, uint64_t seed);

/// PART, numbers-only (8 columns):
///   p_partkey, p_name, p_mfgr (0..4), p_brand (0..24),
///   p_type (0..149), p_size (1..50)                           int64
///   p_retailprice                                             float64
///   p_comment                                                 int64
engine::SchemaPtr PartSchema();

/// Generates PART rows with p_partkey 1..num_parts, sorted by key.
engine::TableChunk GeneratePart(int64_t num_parts, uint64_t seed);

/// CUSTOMER, numbers-only (6 columns):
///   c_custkey, c_name, c_nationkey (0..24),
///   c_mktsegment (0..4), c_comment                             int64
///   c_acctbal                                                  float64
engine::SchemaPtr CustomerSchema();

/// Generates CUSTOMER rows with c_custkey 1..num_customers, sorted by
/// key. GenerateCustomer(kCustomerCount, ...) covers every o_custkey of
/// a GenerateOrders relation.
engine::TableChunk GenerateCustomer(int64_t num_customers, uint64_t seed);

/// Largest l_orderkey in a generated LINEITEM chunk — the ORDERS row
/// count that covers it.
int64_t MaxOrderKey(const engine::TableChunk& lineitem);

/// How a generated dataset is laid out on (simulated) S3.
struct LoadOptions {
  int64_t num_rows = 100000;
  int num_files = 8;
  /// Row groups per file — matched to the row-group count a real ~500 MB
  /// Parquet file would have, so that request patterns are faithful.
  int row_groups_per_file = 8;
  compress::CodecId codec = compress::CodecId::kHeavy;
  /// Per-column auto-selection of the value encoding (plain/delta/dict/
  /// rle). Off writes plain-encoded fixtures — the ablation baseline the
  /// bytes-moved benches compare against.
  bool auto_encoding = true;
  /// Virtual size each file's PLAIN-encoded form models (0 = real size).
  /// The paper's files are "about 500 MB" (Section 5.1). With
  /// auto_encoding on, the written file's virtual size comes out BELOW
  /// this target by exactly the encodings' savings — the scale factor is
  /// anchored to a plain reference write so encodings shrink modeled
  /// bytes instead of inflating the per-byte scale.
  int64_t virtual_bytes_per_file = 0;
  uint64_t seed = 7;
  /// When set, each file's min/max statistics are registered in this
  /// central index under `dataset` (Section 5.3 extension).
  core::StatsIndex* stats_index = nullptr;
  std::string dataset;
};

struct DatasetInfo {
  int64_t rows = 0;
  int files = 0;
  int64_t real_bytes = 0;
  int64_t virtual_bytes = 0;
};

/// Splits an already-generated table into `options.num_files` row-group
/// encoded "{prefix}part-NNNN.lpq" objects and uploads them. Host-side
/// (no simulated cost): this is the dataset that exists before the
/// experiment starts. `options.num_rows` is ignored (the chunk decides).
Result<DatasetInfo> LoadTableChunk(cloud::ObjectStore* s3,
                                   const std::string& bucket,
                                   const std::string& prefix,
                                   const engine::TableChunk& all,
                                   const LoadOptions& options);

/// Generates, sorts, splits, encodes and uploads LINEITEM as
/// "{prefix}part-NNNN.lpq" objects (LoadTableChunk of GenerateLineitem).
Result<DatasetInfo> LoadLineitem(cloud::ObjectStore* s3,
                                 const std::string& bucket,
                                 const std::string& prefix,
                                 const LoadOptions& options);

/// LoadTableChunk of GenerateOrders(options.num_rows, options.seed).
Result<DatasetInfo> LoadOrders(cloud::ObjectStore* s3,
                               const std::string& bucket,
                               const std::string& prefix,
                               const LoadOptions& options);

/// LoadTableChunk of GeneratePart(options.num_rows, options.seed).
Result<DatasetInfo> LoadPart(cloud::ObjectStore* s3,
                             const std::string& bucket,
                             const std::string& prefix,
                             const LoadOptions& options);

/// LoadTableChunk of GenerateCustomer(options.num_rows, options.seed).
Result<DatasetInfo> LoadCustomer(cloud::ObjectStore* s3,
                                 const std::string& bucket,
                                 const std::string& prefix,
                                 const LoadOptions& options);

// -- Queries -----------------------------------------------------------------

/// TPC-H Q1 (pricing summary report): selects ~98 % of LINEITEM on
/// l_shipdate, aggregates into 4 groups with 8 aggregates.
core::Query TpchQ1(const std::string& pattern);

/// TPC-H Q6 (forecasting revenue change): selects ~2 % of LINEITEM,
/// global SUM(l_extendedprice * l_discount).
core::Query TpchQ6(const std::string& pattern);

/// TPC-H Q12 (shipping modes and order priority): LINEITEM joined with
/// ORDERS on the order key through the two-sided partitioned exchange;
/// counts high/low-priority lines per ship mode for two modes shipped in
/// 1994. The CASE WHEN of the original becomes arithmetic over the 0/1
/// comparison results.
core::Query TpchQ12(const std::string& lineitem_pattern,
                    const std::string& orders_pattern);

/// TPC-H Q14 (promotion effect): LINEITEM joined with PART on the part
/// key; returns SUM(promo revenue) and SUM(total revenue) for one month
/// of shipments — the published percentage is 100 * promo / total.
core::Query TpchQ14(const std::string& lineitem_pattern,
                    const std::string& part_pattern);

/// TPC-H Q3 (shipping priority): the first three-relation query. LINEITEM
/// (shipped after 1995-03-15) joins ORDERS (placed before that date),
/// then semi-joins CUSTOMER restricted to the BUILDING market segment;
/// revenue per (l_orderkey, o_orderdate, o_shippriority) group. The
/// cost-based optimizer orders the two joins and picks partitioned or
/// broadcast exchanges per join from the relation statistics.
core::Query TpchQ3(const std::string& lineitem_pattern,
                   const std::string& orders_pattern,
                   const std::string& customer_pattern);

/// TPC-H Q18 (large volume customer): LINEITEM joins ORDERS, semi-joins
/// CUSTOMER, then groups per order and keeps groups with
/// SUM(l_quantity) > min_quantity — the HAVING clause, which the planner
/// runs in the driver after the distributed aggregate. The original's
/// o_totalprice group key is float64, so it rides along as
/// MAX(o_totalprice) (constant within an order, max = the value).
/// TPC-H specifies 300; the generator's 1..7 lines per order make that
/// nearly empty at test scale, so it is a parameter.
core::Query TpchQ18(const std::string& lineitem_pattern,
                    const std::string& orders_pattern,
                    const std::string& customer_pattern,
                    double min_quantity = 300.0);

/// TPC-H Q19 (discounted revenue): LINEITEM joins PART with a disjunction
/// of three brand/size/quantity clauses that references both sides, so it
/// can only run after the join; returns SUM(revenue). The string
/// predicates become numeric stand-ins (see the constants in tpch.cc).
core::Query TpchQ19(const std::string& lineitem_pattern,
                    const std::string& part_pattern);

/// The Q1 ship-date cutoff (1998-12-01 minus 90 days).
int64_t Q1CutoffDate();

// -- Reference results (computed directly, for validating the system) -------

engine::TableChunk ReferenceQ1(const engine::TableChunk& lineitem);
double ReferenceQ6(const engine::TableChunk& lineitem);

/// Q12 reference: rows (l_shipmode, high_line_count, low_line_count)
/// ascending by ship mode, float64 counts like the engine's SUM emits.
engine::TableChunk ReferenceQ12(const engine::TableChunk& lineitem,
                                const engine::TableChunk& orders);

struct Q14Result {
  double promo_revenue = 0;
  double total_revenue = 0;
  double promo_pct() const {
    return total_revenue == 0 ? 0 : 100.0 * promo_revenue / total_revenue;
  }
};
Q14Result ReferenceQ14(const engine::TableChunk& lineitem,
                       const engine::TableChunk& part);

/// Q3 reference: rows (l_orderkey, o_orderdate, o_shippriority, revenue)
/// ascending by order key — the engine's group layout, sorted.
engine::TableChunk ReferenceQ3(const engine::TableChunk& lineitem,
                               const engine::TableChunk& orders,
                               const engine::TableChunk& customer);

/// Q18 reference: rows (o_custkey, l_orderkey, o_orderdate, sum_qty,
/// o_totalprice) ascending by order key, only groups with
/// sum_qty > min_quantity.
engine::TableChunk ReferenceQ18(const engine::TableChunk& lineitem,
                                const engine::TableChunk& orders,
                                const engine::TableChunk& customer,
                                double min_quantity);

/// Q19 reference: the revenue sum.
double ReferenceQ19(const engine::TableChunk& lineitem,
                    const engine::TableChunk& part);

}  // namespace lambada::workload

#endif  // LAMBADA_WORKLOAD_TPCH_H_
