#include "workload/tpch.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "engine/aggregate.h"
#include "format/writer.h"

#include <cstring>

namespace lambada::workload {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::SchemaPtr;
using engine::TableChunk;

int64_t TpchDate(int year, int month, int day) {
  // Days-from-civil (Howard Hinnant's algorithm), offset to 1992-01-01.
  auto days_from_civil = [](int y, int m, int d) -> int64_t {
    y -= m <= 2;
    int era = (y >= 0 ? y : y - 399) / 400;
    unsigned yoe = static_cast<unsigned>(y - era * 400);
    unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
  };
  return days_from_civil(year, month, day) - days_from_civil(1992, 1, 1);
}

SchemaPtr LineitemSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(
      std::vector<Field>{{"l_orderkey", DataType::kInt64},
                         {"l_partkey", DataType::kInt64},
                         {"l_suppkey", DataType::kInt64},
                         {"l_linenumber", DataType::kInt64},
                         {"l_quantity", DataType::kFloat64},
                         {"l_extendedprice", DataType::kFloat64},
                         {"l_discount", DataType::kFloat64},
                         {"l_tax", DataType::kFloat64},
                         {"l_returnflag", DataType::kInt64},
                         {"l_linestatus", DataType::kInt64},
                         {"l_shipdate", DataType::kInt64},
                         {"l_commitdate", DataType::kInt64},
                         {"l_receiptdate", DataType::kInt64},
                         {"l_shipinstruct", DataType::kInt64},
                         {"l_shipmode", DataType::kInt64},
                         {"l_comment", DataType::kInt64}});
  return kSchema;
}

TableChunk GenerateLineitem(int64_t num_rows, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(num_rows);
  std::vector<int64_t> orderkey(n), partkey(n), suppkey(n), linenumber(n);
  std::vector<double> quantity(n), extendedprice(n), discount(n), tax(n);
  std::vector<int64_t> returnflag(n), linestatus(n);
  std::vector<int64_t> shipdate(n), commitdate(n), receiptdate(n);
  std::vector<int64_t> shipinstruct(n), shipmode(n), comment(n);

  const int64_t order_min_date = TpchDate(1992, 1, 1);
  const int64_t order_max_date = TpchDate(1998, 8, 2);
  // TPC-H "current date" used for return flags and line status.
  const int64_t current_date = TpchDate(1995, 6, 17);

  int64_t next_orderkey = 1;
  size_t row = 0;
  while (row < n) {
    // Orders have 1-7 lineitems (TPC-H random(1,7)).
    int64_t lines = rng.UniformInt(1, 7);
    int64_t orderdate = rng.UniformInt(order_min_date, order_max_date);
    for (int64_t l = 1; l <= lines && row < n; ++l, ++row) {
      orderkey[row] = next_orderkey;
      partkey[row] = rng.UniformInt(1, 200000);
      suppkey[row] = rng.UniformInt(1, 10000);
      linenumber[row] = l;
      double qty = static_cast<double>(rng.UniformInt(1, 50));
      quantity[row] = qty;
      // Simplified retail price per part.
      double price_per_unit =
          900.0 + static_cast<double>(rng.UniformInt(1, 120000)) / 100.0;
      extendedprice[row] = qty * price_per_unit;
      discount[row] =
          static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
      tax[row] = static_cast<double>(rng.UniformInt(0, 8)) / 100.0;
      int64_t ship = orderdate + rng.UniformInt(1, 121);
      shipdate[row] = ship;
      commitdate[row] = orderdate + rng.UniformInt(30, 90);
      receiptdate[row] = ship + rng.UniformInt(1, 30);
      if (receiptdate[row] <= current_date) {
        // Returned or accepted: R or A with equal probability.
        returnflag[row] = rng.UniformInt(0, 1) == 0 ? 0 : 2;  // A or R.
      } else {
        returnflag[row] = 1;  // N.
      }
      linestatus[row] = ship > current_date ? 1 : 0;  // O : F.
      shipinstruct[row] = rng.UniformInt(0, 3);
      shipmode[row] = rng.UniformInt(0, 6);
      comment[row] = static_cast<int64_t>(rng.Next() >> 16);
    }
    ++next_orderkey;
  }

  // Sort by l_shipdate (Section 5.1).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shipdate[a] != shipdate[b]) return shipdate[a] < shipdate[b];
    return orderkey[a] < orderkey[b];
  });
  auto permute_i = [&](std::vector<int64_t>& v) {
    std::vector<int64_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = v[order[i]];
    v = std::move(out);
  };
  auto permute_f = [&](std::vector<double>& v) {
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = v[order[i]];
    v = std::move(out);
  };
  permute_i(orderkey);
  permute_i(partkey);
  permute_i(suppkey);
  permute_i(linenumber);
  permute_f(quantity);
  permute_f(extendedprice);
  permute_f(discount);
  permute_f(tax);
  permute_i(returnflag);
  permute_i(linestatus);
  permute_i(shipdate);
  permute_i(commitdate);
  permute_i(receiptdate);
  permute_i(shipinstruct);
  permute_i(shipmode);
  permute_i(comment);

  return TableChunk(
      LineitemSchema(),
      {Column::Int64(std::move(orderkey)), Column::Int64(std::move(partkey)),
       Column::Int64(std::move(suppkey)),
       Column::Int64(std::move(linenumber)),
       Column::Float64(std::move(quantity)),
       Column::Float64(std::move(extendedprice)),
       Column::Float64(std::move(discount)), Column::Float64(std::move(tax)),
       Column::Int64(std::move(returnflag)),
       Column::Int64(std::move(linestatus)),
       Column::Int64(std::move(shipdate)),
       Column::Int64(std::move(commitdate)),
       Column::Int64(std::move(receiptdate)),
       Column::Int64(std::move(shipinstruct)),
       Column::Int64(std::move(shipmode)), Column::Int64(std::move(comment))});
}

Result<DatasetInfo> LoadLineitem(cloud::ObjectStore* s3,
                                 const std::string& bucket,
                                 const std::string& prefix,
                                 const LoadOptions& options) {
  RETURN_NOT_OK(s3->CreateBucket(bucket));
  TableChunk all = GenerateLineitem(options.num_rows, options.seed);
  DatasetInfo info;
  info.rows = options.num_rows;
  info.files = options.num_files;
  size_t n = all.num_rows();
  for (int f = 0; f < options.num_files; ++f) {
    size_t begin = n * static_cast<size_t>(f) /
                   static_cast<size_t>(options.num_files);
    size_t end = n * (static_cast<size_t>(f) + 1) /
                 static_cast<size_t>(options.num_files);
    std::vector<bool> keep(n, false);
    for (size_t i = begin; i < end; ++i) keep[i] = true;
    TableChunk part = all.Filter(keep);
    format::WriterOptions wo;
    wo.codec = options.codec;
    wo.row_group_rows = std::max<int64_t>(
        1, static_cast<int64_t>(part.num_rows() + options.row_groups_per_file -
                                1) /
               options.row_groups_per_file);
    ASSIGN_OR_RETURN(auto bytes, format::FileWriter::WriteTable(part, wo));
    char fname[64];
    std::snprintf(fname, sizeof(fname), "part-%04d.lpq", f);
    if (options.stats_index != nullptr) {
      // Re-parse the footer we just wrote and register its statistics.
      uint32_t footer_len;
      std::memcpy(&footer_len, bytes.data() + bytes.size() - 8, 4);
      auto meta = format::FileMetadata::Parse(
          bytes.data() + bytes.size() - 8 - footer_len, footer_len);
      RETURN_NOT_OK(meta);
      RETURN_NOT_OK(options.stats_index->RegisterFileDirect(
          options.dataset, prefix + fname, *meta));
    }
    double scale = 1.0;
    if (options.virtual_bytes_per_file > 0) {
      scale = static_cast<double>(options.virtual_bytes_per_file) /
              static_cast<double>(bytes.size());
    }
    info.real_bytes += static_cast<int64_t>(bytes.size());
    info.virtual_bytes +=
        static_cast<int64_t>(static_cast<double>(bytes.size()) * scale);
    RETURN_NOT_OK(s3->PutDirect(bucket, prefix + fname,
                                Buffer::FromVector(std::move(bytes)),
                                scale));
  }
  return info;
}

int64_t Q1CutoffDate() { return TpchDate(1998, 12, 1) - 90; }

core::Query TpchQ1(const std::string& pattern) {
  using engine::Avg;
  using engine::Col;
  using engine::Count;
  using engine::Lit;
  using engine::Sum;
  auto disc_price =
      Col("l_extendedprice") * (Lit(1.0) - Col("l_discount"));
  auto charge = disc_price * (Lit(1.0) + Col("l_tax"));
  return core::Query::FromParquet(pattern)
      .Filter(Col("l_shipdate") <= Lit(Q1CutoffDate()))
      .Aggregate({"l_returnflag", "l_linestatus"},
                 {Sum(Col("l_quantity"), "sum_qty"),
                  Sum(Col("l_extendedprice"), "sum_base_price"),
                  Sum(disc_price, "sum_disc_price"), Sum(charge, "sum_charge"),
                  Avg(Col("l_quantity"), "avg_qty"),
                  Avg(Col("l_extendedprice"), "avg_price"),
                  Avg(Col("l_discount"), "avg_disc"),
                  Count("count_order")});
}

core::Query TpchQ6(const std::string& pattern) {
  using engine::Col;
  using engine::Lit;
  return core::Query::FromParquet(pattern)
      .Filter(Col("l_shipdate") >= Lit(TpchDate(1994, 1, 1)))
      .Filter(Col("l_shipdate") < Lit(TpchDate(1995, 1, 1)))
      .Filter(Col("l_discount") >= Lit(0.05) && Col("l_discount") <= Lit(0.07))
      .Filter(Col("l_quantity") < Lit(24.0))
      .Map(Col("l_extendedprice") * Col("l_discount"), "revenue_item")
      .ReduceSum("revenue_item");
}

engine::TableChunk ReferenceQ1(const TableChunk& li) {
  engine::HashAggregator agg(
      {"l_returnflag", "l_linestatus"},
      {engine::Sum(engine::Col("l_quantity"), "sum_qty"),
       engine::Sum(engine::Col("l_extendedprice"), "sum_base_price"),
       engine::Sum(engine::Col("l_extendedprice") *
                       (engine::Lit(1.0) - engine::Col("l_discount")),
                   "sum_disc_price"),
       engine::Sum(engine::Col("l_extendedprice") *
                       (engine::Lit(1.0) - engine::Col("l_discount")) *
                       (engine::Lit(1.0) + engine::Col("l_tax")),
                   "sum_charge"),
       engine::Avg(engine::Col("l_quantity"), "avg_qty"),
       engine::Avg(engine::Col("l_extendedprice"), "avg_price"),
       engine::Avg(engine::Col("l_discount"), "avg_disc"),
       engine::Count("count_order")});
  auto mask = (engine::Col("l_shipdate") <= engine::Lit(Q1CutoffDate()))
                  ->Evaluate(li);
  LAMBADA_CHECK(mask.ok());
  std::vector<bool> keep(li.num_rows());
  for (size_t i = 0; i < keep.size(); ++i) keep[i] = mask->i64()[i] != 0;
  LAMBADA_CHECK_OK(agg.ConsumeInput(li.Filter(keep)));
  return agg.Finalize();
}

double ReferenceQ6(const TableChunk& li) {
  size_t ship = static_cast<size_t>(li.schema()->FieldIndex("l_shipdate"));
  size_t disc = static_cast<size_t>(li.schema()->FieldIndex("l_discount"));
  size_t qty = static_cast<size_t>(li.schema()->FieldIndex("l_quantity"));
  size_t price =
      static_cast<size_t>(li.schema()->FieldIndex("l_extendedprice"));
  const int64_t lo = TpchDate(1994, 1, 1), hi = TpchDate(1995, 1, 1);
  double revenue = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int64_t d = li.column(ship).i64()[i];
    double dc = li.column(disc).f64()[i];
    if (d >= lo && d < hi && dc >= 0.05 && dc <= 0.07 &&
        li.column(qty).f64()[i] < 24.0) {
      revenue += li.column(price).f64()[i] * dc;
    }
  }
  return revenue;
}

}  // namespace lambada::workload
