#include "workload/tpch.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "engine/aggregate.h"
#include "format/writer.h"

#include <cstring>

namespace lambada::workload {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::SchemaPtr;
using engine::TableChunk;

int64_t TpchDate(int year, int month, int day) {
  // Days-from-civil (Howard Hinnant's algorithm), offset to 1992-01-01.
  auto days_from_civil = [](int y, int m, int d) -> int64_t {
    y -= m <= 2;
    int era = (y >= 0 ? y : y - 399) / 400;
    unsigned yoe = static_cast<unsigned>(y - era * 400);
    unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
  };
  return days_from_civil(year, month, day) - days_from_civil(1992, 1, 1);
}

SchemaPtr LineitemSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(
      std::vector<Field>{{"l_orderkey", DataType::kInt64},
                         {"l_partkey", DataType::kInt64},
                         {"l_suppkey", DataType::kInt64},
                         {"l_linenumber", DataType::kInt64},
                         {"l_quantity", DataType::kFloat64},
                         {"l_extendedprice", DataType::kFloat64},
                         {"l_discount", DataType::kFloat64},
                         {"l_tax", DataType::kFloat64},
                         {"l_returnflag", DataType::kInt64},
                         {"l_linestatus", DataType::kInt64},
                         {"l_shipdate", DataType::kInt64},
                         {"l_commitdate", DataType::kInt64},
                         {"l_receiptdate", DataType::kInt64},
                         {"l_shipinstruct", DataType::kInt64},
                         {"l_shipmode", DataType::kInt64},
                         {"l_comment", DataType::kInt64}});
  return kSchema;
}

TableChunk GenerateLineitem(int64_t num_rows, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(num_rows);
  std::vector<int64_t> orderkey(n), partkey(n), suppkey(n), linenumber(n);
  std::vector<double> quantity(n), extendedprice(n), discount(n), tax(n);
  std::vector<int64_t> returnflag(n), linestatus(n);
  std::vector<int64_t> shipdate(n), commitdate(n), receiptdate(n);
  std::vector<int64_t> shipinstruct(n), shipmode(n), comment(n);

  const int64_t order_min_date = TpchDate(1992, 1, 1);
  const int64_t order_max_date = TpchDate(1998, 8, 2);
  // TPC-H "current date" used for return flags and line status.
  const int64_t current_date = TpchDate(1995, 6, 17);

  int64_t next_orderkey = 1;
  size_t row = 0;
  while (row < n) {
    // Orders have 1-7 lineitems (TPC-H random(1,7)).
    int64_t lines = rng.UniformInt(1, 7);
    int64_t orderdate = rng.UniformInt(order_min_date, order_max_date);
    for (int64_t l = 1; l <= lines && row < n; ++l, ++row) {
      orderkey[row] = next_orderkey;
      partkey[row] = rng.UniformInt(1, 200000);
      suppkey[row] = rng.UniformInt(1, 10000);
      linenumber[row] = l;
      double qty = static_cast<double>(rng.UniformInt(1, 50));
      quantity[row] = qty;
      // Simplified retail price per part.
      double price_per_unit =
          900.0 + static_cast<double>(rng.UniformInt(1, 120000)) / 100.0;
      extendedprice[row] = qty * price_per_unit;
      discount[row] =
          static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
      tax[row] = static_cast<double>(rng.UniformInt(0, 8)) / 100.0;
      int64_t ship = orderdate + rng.UniformInt(1, 121);
      shipdate[row] = ship;
      commitdate[row] = orderdate + rng.UniformInt(30, 90);
      receiptdate[row] = ship + rng.UniformInt(1, 30);
      if (receiptdate[row] <= current_date) {
        // Returned or accepted: R or A with equal probability.
        returnflag[row] = rng.UniformInt(0, 1) == 0 ? 0 : 2;  // A or R.
      } else {
        returnflag[row] = 1;  // N.
      }
      linestatus[row] = ship > current_date ? 1 : 0;  // O : F.
      shipinstruct[row] = rng.UniformInt(0, 3);
      shipmode[row] = rng.UniformInt(0, 6);
      comment[row] = static_cast<int64_t>(rng.Next() >> 16);
    }
    ++next_orderkey;
  }

  // Sort by l_shipdate (Section 5.1).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shipdate[a] != shipdate[b]) return shipdate[a] < shipdate[b];
    return orderkey[a] < orderkey[b];
  });
  auto permute_i = [&](std::vector<int64_t>& v) {
    std::vector<int64_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = v[order[i]];
    v = std::move(out);
  };
  auto permute_f = [&](std::vector<double>& v) {
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = v[order[i]];
    v = std::move(out);
  };
  permute_i(orderkey);
  permute_i(partkey);
  permute_i(suppkey);
  permute_i(linenumber);
  permute_f(quantity);
  permute_f(extendedprice);
  permute_f(discount);
  permute_f(tax);
  permute_i(returnflag);
  permute_i(linestatus);
  permute_i(shipdate);
  permute_i(commitdate);
  permute_i(receiptdate);
  permute_i(shipinstruct);
  permute_i(shipmode);
  permute_i(comment);

  return TableChunk(
      LineitemSchema(),
      {Column::Int64(std::move(orderkey)), Column::Int64(std::move(partkey)),
       Column::Int64(std::move(suppkey)),
       Column::Int64(std::move(linenumber)),
       Column::Float64(std::move(quantity)),
       Column::Float64(std::move(extendedprice)),
       Column::Float64(std::move(discount)), Column::Float64(std::move(tax)),
       Column::Int64(std::move(returnflag)),
       Column::Int64(std::move(linestatus)),
       Column::Int64(std::move(shipdate)),
       Column::Int64(std::move(commitdate)),
       Column::Int64(std::move(receiptdate)),
       Column::Int64(std::move(shipinstruct)),
       Column::Int64(std::move(shipmode)), Column::Int64(std::move(comment))});
}

SchemaPtr OrdersSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(
      std::vector<Field>{{"o_orderkey", DataType::kInt64},
                         {"o_custkey", DataType::kInt64},
                         {"o_orderstatus", DataType::kInt64},
                         {"o_totalprice", DataType::kFloat64},
                         {"o_orderdate", DataType::kInt64},
                         {"o_orderpriority", DataType::kInt64},
                         {"o_clerk", DataType::kInt64},
                         {"o_shippriority", DataType::kInt64},
                         {"o_comment", DataType::kInt64}});
  return kSchema;
}

TableChunk GenerateOrders(int64_t num_orders, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(num_orders);
  std::vector<int64_t> orderkey(n), custkey(n), orderstatus(n);
  std::vector<double> totalprice(n);
  std::vector<int64_t> orderdate(n), orderpriority(n), clerk(n),
      shippriority(n), comment(n);
  const int64_t order_min_date = TpchDate(1992, 1, 1);
  const int64_t order_max_date = TpchDate(1998, 8, 2);
  for (size_t i = 0; i < n; ++i) {
    orderkey[i] = static_cast<int64_t>(i) + 1;
    custkey[i] = rng.UniformInt(1, 150000);
    orderstatus[i] = rng.UniformInt(0, 2);
    totalprice[i] =
        1000.0 + static_cast<double>(rng.UniformInt(0, 45000000)) / 100.0;
    orderdate[i] = rng.UniformInt(order_min_date, order_max_date);
    orderpriority[i] = rng.UniformInt(0, 4);
    clerk[i] = rng.UniformInt(1, 1000);
    shippriority[i] = 0;
    comment[i] = static_cast<int64_t>(rng.Next() >> 16);
  }
  return TableChunk(
      OrdersSchema(),
      {Column::Int64(std::move(orderkey)), Column::Int64(std::move(custkey)),
       Column::Int64(std::move(orderstatus)),
       Column::Float64(std::move(totalprice)),
       Column::Int64(std::move(orderdate)),
       Column::Int64(std::move(orderpriority)),
       Column::Int64(std::move(clerk)),
       Column::Int64(std::move(shippriority)),
       Column::Int64(std::move(comment))});
}

SchemaPtr PartSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(
      std::vector<Field>{{"p_partkey", DataType::kInt64},
                         {"p_name", DataType::kInt64},
                         {"p_mfgr", DataType::kInt64},
                         {"p_brand", DataType::kInt64},
                         {"p_type", DataType::kInt64},
                         {"p_size", DataType::kInt64},
                         {"p_retailprice", DataType::kFloat64},
                         {"p_comment", DataType::kInt64}});
  return kSchema;
}

TableChunk GeneratePart(int64_t num_parts, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(num_parts);
  std::vector<int64_t> partkey(n), name(n), mfgr(n), brand(n), type(n),
      size_col(n);
  std::vector<double> retailprice(n);
  std::vector<int64_t> comment(n);
  for (size_t i = 0; i < n; ++i) {
    partkey[i] = static_cast<int64_t>(i) + 1;
    name[i] = static_cast<int64_t>(rng.Next() >> 32);
    mfgr[i] = rng.UniformInt(0, 4);
    brand[i] = mfgr[i] * 5 + rng.UniformInt(0, 4);
    type[i] = rng.UniformInt(0, 149);
    size_col[i] = rng.UniformInt(1, 50);
    // TPC-H retail price formula modulo the string parts.
    retailprice[i] =
        90000.0 + static_cast<double>((partkey[i] / 10) % 20001) +
        100.0 * static_cast<double>(partkey[i] % 1000);
    comment[i] = static_cast<int64_t>(rng.Next() >> 16);
  }
  return TableChunk(
      PartSchema(),
      {Column::Int64(std::move(partkey)), Column::Int64(std::move(name)),
       Column::Int64(std::move(mfgr)), Column::Int64(std::move(brand)),
       Column::Int64(std::move(type)), Column::Int64(std::move(size_col)),
       Column::Float64(std::move(retailprice)),
       Column::Int64(std::move(comment))});
}

SchemaPtr CustomerSchema() {
  static const SchemaPtr kSchema = std::make_shared<Schema>(
      std::vector<Field>{{"c_custkey", DataType::kInt64},
                         {"c_name", DataType::kInt64},
                         {"c_nationkey", DataType::kInt64},
                         {"c_mktsegment", DataType::kInt64},
                         {"c_acctbal", DataType::kFloat64},
                         {"c_comment", DataType::kInt64}});
  return kSchema;
}

TableChunk GenerateCustomer(int64_t num_customers, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(num_customers);
  std::vector<int64_t> custkey(n), name(n), nationkey(n), mktsegment(n),
      comment(n);
  std::vector<double> acctbal(n);
  for (size_t i = 0; i < n; ++i) {
    custkey[i] = static_cast<int64_t>(i) + 1;
    name[i] = static_cast<int64_t>(rng.Next() >> 32);
    nationkey[i] = rng.UniformInt(0, 24);
    mktsegment[i] = rng.UniformInt(0, 4);
    // TPC-H: -999.99 .. 9999.99.
    acctbal[i] =
        static_cast<double>(rng.UniformInt(-99999, 999999)) / 100.0;
    comment[i] = static_cast<int64_t>(rng.Next() >> 16);
  }
  return TableChunk(
      CustomerSchema(),
      {Column::Int64(std::move(custkey)), Column::Int64(std::move(name)),
       Column::Int64(std::move(nationkey)),
       Column::Int64(std::move(mktsegment)),
       Column::Float64(std::move(acctbal)),
       Column::Int64(std::move(comment))});
}

int64_t MaxOrderKey(const TableChunk& lineitem) {
  int idx = lineitem.schema()->FieldIndex("l_orderkey");
  LAMBADA_CHECK(idx >= 0);
  int64_t max_key = 0;
  for (int64_t k : lineitem.column(static_cast<size_t>(idx)).i64()) {
    if (k > max_key) max_key = k;
  }
  return max_key;
}

Result<DatasetInfo> LoadTableChunk(cloud::ObjectStore* s3,
                                   const std::string& bucket,
                                   const std::string& prefix,
                                   const TableChunk& all,
                                   const LoadOptions& options) {
  RETURN_NOT_OK(s3->CreateBucket(bucket));
  DatasetInfo info;
  info.rows = static_cast<int64_t>(all.num_rows());
  info.files = options.num_files;
  size_t n = all.num_rows();
  for (int f = 0; f < options.num_files; ++f) {
    size_t begin = n * static_cast<size_t>(f) /
                   static_cast<size_t>(options.num_files);
    size_t end = n * (static_cast<size_t>(f) + 1) /
                 static_cast<size_t>(options.num_files);
    std::vector<bool> keep(n, false);
    for (size_t i = begin; i < end; ++i) keep[i] = true;
    TableChunk part = all.Filter(keep);
    format::WriterOptions wo;
    wo.codec = options.codec;
    wo.auto_encoding = options.auto_encoding;
    wo.row_group_rows = std::max<int64_t>(
        1, static_cast<int64_t>(part.num_rows() + options.row_groups_per_file -
                                1) /
               options.row_groups_per_file);
    ASSIGN_OR_RETURN(auto bytes, format::FileWriter::WriteTable(part, wo));
    char fname[64];
    std::snprintf(fname, sizeof(fname), "part-%04d.lpq", f);
    if (options.stats_index != nullptr) {
      // Re-parse the footer we just wrote and register its statistics.
      uint32_t footer_len;
      std::memcpy(&footer_len, bytes.data() + bytes.size() - 8, 4);
      auto meta = format::FileMetadata::Parse(
          bytes.data() + bytes.size() - 8 - footer_len, footer_len);
      RETURN_NOT_OK(meta);
      RETURN_NOT_OK(options.stats_index->RegisterFileDirect(
          options.dataset, prefix + fname, *meta));
    }
    double scale = 1.0;
    if (options.virtual_bytes_per_file > 0) {
      // The virtual size describes the PLAIN-encoded file of this shape
      // (the paper's "about 500 MB" Parquet files), so the scale is
      // anchored to a plain reference write. Value encodings then shrink
      // the modeled bytes below the target instead of silently inflating
      // the per-byte scale — without this, a better encoding would make
      // every remaining byte model proportionally more virtual bytes and
      // scaled benches could never show the encoding win.
      int64_t reference_size = static_cast<int64_t>(bytes.size());
      if (options.auto_encoding) {
        format::WriterOptions plain_wo = wo;
        plain_wo.auto_encoding = false;
        ASSIGN_OR_RETURN(auto plain_bytes,
                         format::FileWriter::WriteTable(part, plain_wo));
        reference_size = static_cast<int64_t>(plain_bytes.size());
      }
      scale = static_cast<double>(options.virtual_bytes_per_file) /
              static_cast<double>(reference_size);
    }
    info.real_bytes += static_cast<int64_t>(bytes.size());
    info.virtual_bytes +=
        static_cast<int64_t>(static_cast<double>(bytes.size()) * scale);
    RETURN_NOT_OK(s3->PutDirect(bucket, prefix + fname,
                                Buffer::FromVector(std::move(bytes)),
                                scale));
  }
  return info;
}

Result<DatasetInfo> LoadLineitem(cloud::ObjectStore* s3,
                                 const std::string& bucket,
                                 const std::string& prefix,
                                 const LoadOptions& options) {
  return LoadTableChunk(s3, bucket, prefix,
                        GenerateLineitem(options.num_rows, options.seed),
                        options);
}

Result<DatasetInfo> LoadOrders(cloud::ObjectStore* s3,
                               const std::string& bucket,
                               const std::string& prefix,
                               const LoadOptions& options) {
  return LoadTableChunk(s3, bucket, prefix,
                        GenerateOrders(options.num_rows, options.seed),
                        options);
}

Result<DatasetInfo> LoadPart(cloud::ObjectStore* s3,
                             const std::string& bucket,
                             const std::string& prefix,
                             const LoadOptions& options) {
  return LoadTableChunk(s3, bucket, prefix,
                        GeneratePart(options.num_rows, options.seed),
                        options);
}

Result<DatasetInfo> LoadCustomer(cloud::ObjectStore* s3,
                                 const std::string& bucket,
                                 const std::string& prefix,
                                 const LoadOptions& options) {
  return LoadTableChunk(s3, bucket, prefix,
                        GenerateCustomer(options.num_rows, options.seed),
                        options);
}

int64_t Q1CutoffDate() { return TpchDate(1998, 12, 1) - 90; }

core::Query TpchQ1(const std::string& pattern) {
  using engine::Avg;
  using engine::Col;
  using engine::Count;
  using engine::Lit;
  using engine::Sum;
  auto disc_price =
      Col("l_extendedprice") * (Lit(1.0) - Col("l_discount"));
  auto charge = disc_price * (Lit(1.0) + Col("l_tax"));
  return core::Query::FromParquet(pattern)
      .Filter(Col("l_shipdate") <= Lit(Q1CutoffDate()))
      .Aggregate({"l_returnflag", "l_linestatus"},
                 {Sum(Col("l_quantity"), "sum_qty"),
                  Sum(Col("l_extendedprice"), "sum_base_price"),
                  Sum(disc_price, "sum_disc_price"), Sum(charge, "sum_charge"),
                  Avg(Col("l_quantity"), "avg_qty"),
                  Avg(Col("l_extendedprice"), "avg_price"),
                  Avg(Col("l_discount"), "avg_disc"),
                  Count("count_order")});
}

core::Query TpchQ6(const std::string& pattern) {
  using engine::Col;
  using engine::Lit;
  return core::Query::FromParquet(pattern)
      .Filter(Col("l_shipdate") >= Lit(TpchDate(1994, 1, 1)))
      .Filter(Col("l_shipdate") < Lit(TpchDate(1995, 1, 1)))
      .Filter(Col("l_discount") >= Lit(0.05) && Col("l_discount") <= Lit(0.07))
      .Filter(Col("l_quantity") < Lit(24.0))
      .Map(Col("l_extendedprice") * Col("l_discount"), "revenue_item")
      .ReduceSum("revenue_item");
}

core::Query TpchQ12(const std::string& lineitem_pattern,
                    const std::string& orders_pattern) {
  using engine::Col;
  using engine::Lit;
  using engine::Sum;
  // Build side: only the key and the priority survive the Select, so the
  // planner pushes a two-column projection into the ORDERS scan.
  auto orders =
      core::Query::FromParquet(orders_pattern)
          .Select({Col("o_orderkey"), Col("o_orderpriority")},
                  {"o_orderkey", "o_orderpriority"});
  // CASE WHEN priority IN ('1-URGENT','2-HIGH') -> the 0/1 comparison.
  auto high = Col("o_orderpriority") <= Lit(kHighPriorityMax);
  return core::Query::FromParquet(lineitem_pattern)
      .Filter(Col("l_shipmode") == Lit(kShipmodeMail) ||
              Col("l_shipmode") == Lit(kShipmodeShip))
      .Filter(Col("l_commitdate") < Col("l_receiptdate"))
      .Filter(Col("l_shipdate") < Col("l_commitdate"))
      .Filter(Col("l_receiptdate") >= Lit(TpchDate(1994, 1, 1)))
      .Filter(Col("l_receiptdate") < Lit(TpchDate(1995, 1, 1)))
      .JoinWith(orders, {"l_orderkey"}, {"o_orderkey"})
      .Aggregate({"l_shipmode"}, {Sum(high, "high_line_count"),
                                  Sum(Lit(1) - high, "low_line_count")});
}

core::Query TpchQ14(const std::string& lineitem_pattern,
                    const std::string& part_pattern) {
  using engine::Col;
  using engine::Lit;
  using engine::Sum;
  auto part = core::Query::FromParquet(part_pattern)
                  .Select({Col("p_partkey"), Col("p_type")},
                          {"p_partkey", "p_type"});
  auto disc_price =
      Col("l_extendedprice") * (Lit(1.0) - Col("l_discount"));
  // CASE WHEN p_type LIKE 'PROMO%' -> the 0/1 comparison as a factor.
  auto promo = Col("p_type") < Lit(kPromoTypeCutoff);
  return core::Query::FromParquet(lineitem_pattern)
      .Filter(Col("l_shipdate") >= Lit(TpchDate(1995, 9, 1)))
      .Filter(Col("l_shipdate") < Lit(TpchDate(1995, 10, 1)))
      .JoinWith(part, {"l_partkey"}, {"p_partkey"})
      .Aggregate({}, {Sum(promo * disc_price, "promo_revenue"),
                      Sum(disc_price, "total_revenue")});
}

namespace {
// Q19's string predicates as numeric stand-ins. p_brand draws 0..24 and
// l_shipmode 0..6; "DELIVER IN PERSON" is l_shipinstruct == 0 and
// "AIR / AIR REG" is l_shipmode <= 1. Each clause pairs a brand with a
// size range and a quantity band, like the original's three disjuncts.
constexpr int64_t kQ19Brand1 = 3, kQ19Brand2 = 12, kQ19Brand3 = 21;
constexpr int64_t kQ19Size1 = 5, kQ19Size2 = 10, kQ19Size3 = 15;
constexpr double kQ19Qty1 = 1.0, kQ19Qty2 = 10.0, kQ19Qty3 = 20.0;
constexpr double kQ19QtySpan = 10.0;
constexpr int64_t kQ19ShipinstructInPerson = 0;
constexpr int64_t kQ19ShipmodeAirMax = 1;
}  // namespace

core::Query TpchQ3(const std::string& lineitem_pattern,
                   const std::string& orders_pattern,
                   const std::string& customer_pattern) {
  using engine::Col;
  using engine::Lit;
  using engine::Sum;
  const int64_t cutoff = TpchDate(1995, 3, 15);
  auto orders = core::Query::FromParquet(orders_pattern)
                    .Filter(Col("o_orderdate") < Lit(cutoff))
                    .Select({Col("o_orderkey"), Col("o_custkey"),
                             Col("o_orderdate"), Col("o_shippriority")},
                            {"o_orderkey", "o_custkey", "o_orderdate",
                             "o_shippriority"});
  auto customer =
      core::Query::FromParquet(customer_pattern)
          .Filter(Col("c_mktsegment") == Lit(kMktSegmentBuilding))
          .Select({Col("c_custkey")}, {"c_custkey"});
  return core::Query::FromParquet(lineitem_pattern)
      .Filter(Col("l_shipdate") > Lit(cutoff))
      .JoinWith(orders, {"l_orderkey"}, {"o_orderkey"})
      .JoinWith(customer, {"o_custkey"}, {"c_custkey"},
                engine::JoinType::kLeftSemi)
      .Map(Col("l_extendedprice") * (Lit(1.0) - Col("l_discount")),
           "revenue_item")
      .Aggregate({"l_orderkey", "o_orderdate", "o_shippriority"},
                 {Sum(Col("revenue_item"), "revenue")});
}

core::Query TpchQ18(const std::string& lineitem_pattern,
                    const std::string& orders_pattern,
                    const std::string& customer_pattern,
                    double min_quantity) {
  using engine::Col;
  using engine::Lit;
  using engine::Max;
  using engine::Sum;
  auto orders = core::Query::FromParquet(orders_pattern)
                    .Select({Col("o_orderkey"), Col("o_custkey"),
                             Col("o_orderdate"), Col("o_totalprice")},
                            {"o_orderkey", "o_custkey", "o_orderdate",
                             "o_totalprice"});
  auto customer = core::Query::FromParquet(customer_pattern)
                      .Select({Col("c_custkey")}, {"c_custkey"});
  return core::Query::FromParquet(lineitem_pattern)
      .JoinWith(orders, {"l_orderkey"}, {"o_orderkey"})
      .JoinWith(customer, {"o_custkey"}, {"c_custkey"},
                engine::JoinType::kLeftSemi)
      .Aggregate({"o_custkey", "l_orderkey", "o_orderdate"},
                 {Sum(Col("l_quantity"), "sum_qty"),
                  Max(Col("o_totalprice"), "o_totalprice")})
      .Filter(Col("sum_qty") > Lit(min_quantity));  // HAVING.
}

core::Query TpchQ19(const std::string& lineitem_pattern,
                    const std::string& part_pattern) {
  using engine::Col;
  using engine::Lit;
  auto part = core::Query::FromParquet(part_pattern)
                  .Select({Col("p_partkey"), Col("p_brand"), Col("p_size")},
                          {"p_partkey", "p_brand", "p_size"});
  auto clause = [](int64_t brand, int64_t max_size, double min_qty) {
    return Col("p_brand") == Lit(brand) && Col("p_size") >= Lit(int64_t{1}) &&
           Col("p_size") <= Lit(max_size) && Col("l_quantity") >= Lit(min_qty) &&
           Col("l_quantity") <= Lit(min_qty + kQ19QtySpan);
  };
  return core::Query::FromParquet(lineitem_pattern)
      .Filter(Col("l_shipinstruct") == Lit(kQ19ShipinstructInPerson))
      .Filter(Col("l_shipmode") <= Lit(kQ19ShipmodeAirMax))
      .JoinWith(part, {"l_partkey"}, {"p_partkey"})
      // The disjunction references both sides, so it must follow the join.
      .Filter(clause(kQ19Brand1, kQ19Size1, kQ19Qty1) ||
              clause(kQ19Brand2, kQ19Size2, kQ19Qty2) ||
              clause(kQ19Brand3, kQ19Size3, kQ19Qty3))
      .Map(Col("l_extendedprice") * (Lit(1.0) - Col("l_discount")),
           "revenue_item")
      .ReduceSum("revenue_item");
}

engine::TableChunk ReferenceQ1(const TableChunk& li) {
  engine::HashAggregator agg(
      {"l_returnflag", "l_linestatus"},
      {engine::Sum(engine::Col("l_quantity"), "sum_qty"),
       engine::Sum(engine::Col("l_extendedprice"), "sum_base_price"),
       engine::Sum(engine::Col("l_extendedprice") *
                       (engine::Lit(1.0) - engine::Col("l_discount")),
                   "sum_disc_price"),
       engine::Sum(engine::Col("l_extendedprice") *
                       (engine::Lit(1.0) - engine::Col("l_discount")) *
                       (engine::Lit(1.0) + engine::Col("l_tax")),
                   "sum_charge"),
       engine::Avg(engine::Col("l_quantity"), "avg_qty"),
       engine::Avg(engine::Col("l_extendedprice"), "avg_price"),
       engine::Avg(engine::Col("l_discount"), "avg_disc"),
       engine::Count("count_order")});
  auto mask = (engine::Col("l_shipdate") <= engine::Lit(Q1CutoffDate()))
                  ->Evaluate(li);
  LAMBADA_CHECK(mask.ok());
  std::vector<bool> keep(li.num_rows());
  for (size_t i = 0; i < keep.size(); ++i) keep[i] = mask->i64()[i] != 0;
  LAMBADA_CHECK_OK(agg.ConsumeInput(li.Filter(keep)));
  return agg.Finalize();
}

double ReferenceQ6(const TableChunk& li) {
  size_t ship = static_cast<size_t>(li.schema()->FieldIndex("l_shipdate"));
  size_t disc = static_cast<size_t>(li.schema()->FieldIndex("l_discount"));
  size_t qty = static_cast<size_t>(li.schema()->FieldIndex("l_quantity"));
  size_t price =
      static_cast<size_t>(li.schema()->FieldIndex("l_extendedprice"));
  const int64_t lo = TpchDate(1994, 1, 1), hi = TpchDate(1995, 1, 1);
  double revenue = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int64_t d = li.column(ship).i64()[i];
    double dc = li.column(disc).f64()[i];
    if (d >= lo && d < hi && dc >= 0.05 && dc <= 0.07 &&
        li.column(qty).f64()[i] < 24.0) {
      revenue += li.column(price).f64()[i] * dc;
    }
  }
  return revenue;
}

TableChunk ReferenceQ12(const TableChunk& li, const TableChunk& orders) {
  std::unordered_map<int64_t, int64_t> priority_of;
  {
    size_t ok = static_cast<size_t>(
        orders.schema()->FieldIndex("o_orderkey"));
    size_t op = static_cast<size_t>(
        orders.schema()->FieldIndex("o_orderpriority"));
    priority_of.reserve(orders.num_rows() * 2);
    for (size_t i = 0; i < orders.num_rows(); ++i) {
      priority_of[orders.column(ok).i64()[i]] = orders.column(op).i64()[i];
    }
  }
  size_t okey = static_cast<size_t>(li.schema()->FieldIndex("l_orderkey"));
  size_t mode = static_cast<size_t>(li.schema()->FieldIndex("l_shipmode"));
  size_t ship = static_cast<size_t>(li.schema()->FieldIndex("l_shipdate"));
  size_t commit =
      static_cast<size_t>(li.schema()->FieldIndex("l_commitdate"));
  size_t receipt =
      static_cast<size_t>(li.schema()->FieldIndex("l_receiptdate"));
  const int64_t lo = TpchDate(1994, 1, 1), hi = TpchDate(1995, 1, 1);
  std::map<int64_t, std::pair<int64_t, int64_t>> counts;  // mode -> (hi,lo)
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int64_t m = li.column(mode).i64()[i];
    if (m != kShipmodeMail && m != kShipmodeShip) continue;
    int64_t r = li.column(receipt).i64()[i];
    if (li.column(commit).i64()[i] >= r) continue;
    if (li.column(ship).i64()[i] >= li.column(commit).i64()[i]) continue;
    if (r < lo || r >= hi) continue;
    auto it = priority_of.find(li.column(okey).i64()[i]);
    if (it == priority_of.end()) continue;  // Inner join drops it.
    auto& c = counts[m];
    if (it->second <= kHighPriorityMax) {
      ++c.first;
    } else {
      ++c.second;
    }
  }
  std::vector<int64_t> modes;
  std::vector<double> high, low;
  for (const auto& [m, c] : counts) {
    modes.push_back(m);
    high.push_back(static_cast<double>(c.first));
    low.push_back(static_cast<double>(c.second));
  }
  return TableChunk(
      std::make_shared<Schema>(
          std::vector<Field>{{"l_shipmode", DataType::kInt64},
                             {"high_line_count", DataType::kFloat64},
                             {"low_line_count", DataType::kFloat64}}),
      {Column::Int64(std::move(modes)), Column::Float64(std::move(high)),
       Column::Float64(std::move(low))});
}

Q14Result ReferenceQ14(const TableChunk& li, const TableChunk& part) {
  std::unordered_map<int64_t, int64_t> type_of;
  {
    size_t pk = static_cast<size_t>(part.schema()->FieldIndex("p_partkey"));
    size_t pt = static_cast<size_t>(part.schema()->FieldIndex("p_type"));
    type_of.reserve(part.num_rows() * 2);
    for (size_t i = 0; i < part.num_rows(); ++i) {
      type_of[part.column(pk).i64()[i]] = part.column(pt).i64()[i];
    }
  }
  size_t pkey = static_cast<size_t>(li.schema()->FieldIndex("l_partkey"));
  size_t ship = static_cast<size_t>(li.schema()->FieldIndex("l_shipdate"));
  size_t price =
      static_cast<size_t>(li.schema()->FieldIndex("l_extendedprice"));
  size_t disc = static_cast<size_t>(li.schema()->FieldIndex("l_discount"));
  const int64_t lo = TpchDate(1995, 9, 1), hi = TpchDate(1995, 10, 1);
  Q14Result out;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int64_t d = li.column(ship).i64()[i];
    if (d < lo || d >= hi) continue;
    auto it = type_of.find(li.column(pkey).i64()[i]);
    if (it == type_of.end()) continue;
    double revenue =
        li.column(price).f64()[i] * (1.0 - li.column(disc).f64()[i]);
    if (it->second < kPromoTypeCutoff) out.promo_revenue += revenue;
    out.total_revenue += revenue;
  }
  return out;
}

namespace {

size_t ColIdx(const TableChunk& t, const char* name) {
  int idx = t.schema()->FieldIndex(name);
  LAMBADA_CHECK(idx >= 0);
  return static_cast<size_t>(idx);
}

}  // namespace

TableChunk ReferenceQ3(const TableChunk& li, const TableChunk& orders,
                       const TableChunk& customer) {
  const int64_t cutoff = TpchDate(1995, 3, 15);
  std::unordered_map<int64_t, bool> building;
  {
    size_t ck = ColIdx(customer, "c_custkey");
    size_t seg = ColIdx(customer, "c_mktsegment");
    building.reserve(customer.num_rows() * 2);
    for (size_t i = 0; i < customer.num_rows(); ++i) {
      if (customer.column(seg).i64()[i] == kMktSegmentBuilding) {
        building[customer.column(ck).i64()[i]] = true;
      }
    }
  }
  struct OrderInfo {
    int64_t orderdate;
    int64_t shippriority;
  };
  std::unordered_map<int64_t, OrderInfo> order_of;
  {
    size_t ok = ColIdx(orders, "o_orderkey");
    size_t ck = ColIdx(orders, "o_custkey");
    size_t od = ColIdx(orders, "o_orderdate");
    size_t sp = ColIdx(orders, "o_shippriority");
    order_of.reserve(orders.num_rows());
    for (size_t i = 0; i < orders.num_rows(); ++i) {
      if (orders.column(od).i64()[i] >= cutoff) continue;
      if (building.find(orders.column(ck).i64()[i]) == building.end()) {
        continue;  // Semi join drops it.
      }
      order_of[orders.column(ok).i64()[i]] = {
          orders.column(od).i64()[i], orders.column(sp).i64()[i]};
    }
  }
  size_t okey = ColIdx(li, "l_orderkey");
  size_t ship = ColIdx(li, "l_shipdate");
  size_t price = ColIdx(li, "l_extendedprice");
  size_t disc = ColIdx(li, "l_discount");
  std::map<int64_t, double> revenue;  // Ordered: ascending order key.
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (li.column(ship).i64()[i] <= cutoff) continue;
    auto it = order_of.find(li.column(okey).i64()[i]);
    if (it == order_of.end()) continue;
    revenue[it->first] +=
        li.column(price).f64()[i] * (1.0 - li.column(disc).f64()[i]);
  }
  std::vector<int64_t> keys, dates, prios;
  std::vector<double> revs;
  for (const auto& [k, r] : revenue) {
    const OrderInfo& o = order_of[k];
    keys.push_back(k);
    dates.push_back(o.orderdate);
    prios.push_back(o.shippriority);
    revs.push_back(r);
  }
  return TableChunk(
      std::make_shared<Schema>(
          std::vector<Field>{{"l_orderkey", DataType::kInt64},
                             {"o_orderdate", DataType::kInt64},
                             {"o_shippriority", DataType::kInt64},
                             {"revenue", DataType::kFloat64}}),
      {Column::Int64(std::move(keys)), Column::Int64(std::move(dates)),
       Column::Int64(std::move(prios)), Column::Float64(std::move(revs))});
}

TableChunk ReferenceQ18(const TableChunk& li, const TableChunk& orders,
                        const TableChunk& customer, double min_quantity) {
  std::unordered_map<int64_t, bool> has_customer;
  {
    size_t ck = ColIdx(customer, "c_custkey");
    has_customer.reserve(customer.num_rows() * 2);
    for (size_t i = 0; i < customer.num_rows(); ++i) {
      has_customer[customer.column(ck).i64()[i]] = true;
    }
  }
  struct OrderInfo {
    int64_t custkey;
    int64_t orderdate;
    double totalprice;
  };
  std::unordered_map<int64_t, OrderInfo> order_of;
  {
    size_t ok = ColIdx(orders, "o_orderkey");
    size_t ck = ColIdx(orders, "o_custkey");
    size_t od = ColIdx(orders, "o_orderdate");
    size_t tp = ColIdx(orders, "o_totalprice");
    order_of.reserve(orders.num_rows());
    for (size_t i = 0; i < orders.num_rows(); ++i) {
      int64_t custkey = orders.column(ck).i64()[i];
      if (has_customer.find(custkey) == has_customer.end()) continue;
      order_of[orders.column(ok).i64()[i]] = {
          custkey, orders.column(od).i64()[i], orders.column(tp).f64()[i]};
    }
  }
  size_t okey = ColIdx(li, "l_orderkey");
  size_t qty = ColIdx(li, "l_quantity");
  std::map<int64_t, double> sum_qty;  // Ordered: ascending order key.
  for (size_t i = 0; i < li.num_rows(); ++i) {
    auto it = order_of.find(li.column(okey).i64()[i]);
    if (it == order_of.end()) continue;
    sum_qty[it->first] += li.column(qty).f64()[i];
  }
  std::vector<int64_t> custs, keys, dates;
  std::vector<double> qtys, prices;
  for (const auto& [k, q] : sum_qty) {
    if (!(q > min_quantity)) continue;  // HAVING.
    const OrderInfo& o = order_of[k];
    custs.push_back(o.custkey);
    keys.push_back(k);
    dates.push_back(o.orderdate);
    qtys.push_back(q);
    prices.push_back(o.totalprice);
  }
  return TableChunk(
      std::make_shared<Schema>(
          std::vector<Field>{{"o_custkey", DataType::kInt64},
                             {"l_orderkey", DataType::kInt64},
                             {"o_orderdate", DataType::kInt64},
                             {"sum_qty", DataType::kFloat64},
                             {"o_totalprice", DataType::kFloat64}}),
      {Column::Int64(std::move(custs)), Column::Int64(std::move(keys)),
       Column::Int64(std::move(dates)), Column::Float64(std::move(qtys)),
       Column::Float64(std::move(prices))});
}

double ReferenceQ19(const TableChunk& li, const TableChunk& part) {
  struct PartInfo {
    int64_t brand;
    int64_t size;
  };
  std::unordered_map<int64_t, PartInfo> part_of;
  {
    size_t pk = ColIdx(part, "p_partkey");
    size_t pb = ColIdx(part, "p_brand");
    size_t ps = ColIdx(part, "p_size");
    part_of.reserve(part.num_rows());
    for (size_t i = 0; i < part.num_rows(); ++i) {
      part_of[part.column(pk).i64()[i]] = {part.column(pb).i64()[i],
                                           part.column(ps).i64()[i]};
    }
  }
  size_t pkey = ColIdx(li, "l_partkey");
  size_t qty = ColIdx(li, "l_quantity");
  size_t price = ColIdx(li, "l_extendedprice");
  size_t disc = ColIdx(li, "l_discount");
  size_t instr = ColIdx(li, "l_shipinstruct");
  size_t mode = ColIdx(li, "l_shipmode");
  auto clause = [](const PartInfo& p, double q, int64_t brand,
                   int64_t max_size, double min_qty) {
    return p.brand == brand && p.size >= 1 && p.size <= max_size &&
           q >= min_qty && q <= min_qty + kQ19QtySpan;
  };
  double revenue = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (li.column(instr).i64()[i] != kQ19ShipinstructInPerson) continue;
    if (li.column(mode).i64()[i] > kQ19ShipmodeAirMax) continue;
    auto it = part_of.find(li.column(pkey).i64()[i]);
    if (it == part_of.end()) continue;
    double q = li.column(qty).f64()[i];
    if (clause(it->second, q, kQ19Brand1, kQ19Size1, kQ19Qty1) ||
        clause(it->second, q, kQ19Brand2, kQ19Size2, kQ19Qty2) ||
        clause(it->second, q, kQ19Brand3, kQ19Size3, kQ19Qty3)) {
      revenue += li.column(price).f64()[i] *
                 (1.0 - li.column(disc).f64()[i]);
    }
  }
  return revenue;
}

}  // namespace lambada::workload
