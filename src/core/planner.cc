#include "core/planner.h"

#include <algorithm>
#include <optional>
#include <set>

namespace lambada::core {

namespace {

using engine::BinaryOp;
using engine::Expr;
using engine::ExprPtr;

/// Columns required by one op (its own expressions + pass-through needs
/// are handled conservatively by unioning everything referenced anywhere).
void CollectOpColumns(const PlanOp& op, std::set<std::string>* cols) {
  switch (op.kind) {
    case PlanOp::Kind::kFilter:
    case PlanOp::Kind::kMap:
      op.expr->CollectColumns(cols);
      break;
    case PlanOp::Kind::kSelect:
      for (const auto& e : op.exprs) e->CollectColumns(cols);
      break;
    case PlanOp::Kind::kExchange:
      for (const auto& k : op.exchange->keys) cols->insert(k);
      break;
    case PlanOp::Kind::kAggregate:
      for (const auto& g : op.group_by) cols->insert(g);
      for (const auto& a : op.aggs) {
        if (a.input != nullptr) a.input->CollectColumns(cols);
      }
      break;
    case PlanOp::Kind::kJoin:
      // Probe-side needs only: the build side has its own pipeline and is
      // planned separately.
      for (const auto& k : op.join->probe_keys) cols->insert(k);
      break;
  }
}

/// Names of columns *introduced* by an op (Map/Select outputs): these must
/// not be pushed into the scan projection.
void CollectOpOutputs(const PlanOp& op, std::set<std::string>* produced) {
  switch (op.kind) {
    case PlanOp::Kind::kMap:
      produced->insert(op.name);
      break;
    case PlanOp::Kind::kSelect:
      for (const auto& n : op.names) produced->insert(n);
      break;
    case PlanOp::Kind::kAggregate:
      for (const auto& a : op.aggs) produced->insert(a.output_name);
      break;
    default:
      break;
  }
}

/// Folds the leading kFilter run of ops[*first_kept..] into one pushed-down
/// scan predicate and advances *first_kept past it.
ExprPtr FoldLeadingFilters(const std::vector<PlanOp>& ops,
                           size_t* first_kept) {
  ExprPtr folded;
  while (*first_kept < ops.size() &&
         ops[*first_kept].kind == PlanOp::Kind::kFilter) {
    folded = folded == nullptr
                 ? ops[*first_kept].expr
                 : Expr::Binary(BinaryOp::kAnd, folded,
                                ops[*first_kept].expr);
    ++*first_kept;
  }
  return folded;
}

/// Projection push-down over a linear op run: base columns referenced by
/// the pushed filter, the op run, and `extra_columns`, excluding derived
/// columns.
std::vector<std::string> PushdownProjection(
    const ExprPtr& scan_filter, const std::vector<PlanOp>& ops,
    const std::vector<std::string>& extra_columns) {
  std::set<std::string> referenced;
  if (scan_filter != nullptr) scan_filter->CollectColumns(&referenced);
  std::set<std::string> produced;
  for (const auto& op : ops) {
    std::set<std::string> cols;
    CollectOpColumns(op, &cols);
    for (const auto& c : cols) {
      if (produced.find(c) == produced.end()) referenced.insert(c);
    }
    CollectOpOutputs(op, &produced);
  }
  for (const auto& c : extra_columns) {
    if (produced.find(c) == produced.end()) referenced.insert(c);
  }
  return {referenced.begin(), referenced.end()};
}

bool IsRowOp(const PlanOp& op) {
  return op.kind == PlanOp::Kind::kFilter || op.kind == PlanOp::Kind::kMap ||
         op.kind == PlanOp::Kind::kSelect;
}

/// The closed output-column set of a row-op run, if any: a Select closes
/// the set to its names, later Maps extend it; without a Select the set
/// stays open (nullopt — the scan's columns flow through).
std::optional<std::set<std::string>> ClosedOutputSet(
    const std::vector<PlanOp>& ops) {
  std::optional<std::set<std::string>> closed;
  for (const auto& op : ops) {
    if (op.kind == PlanOp::Kind::kSelect) {
      closed.emplace(op.names.begin(), op.names.end());
    } else if (op.kind == PlanOp::Kind::kMap && closed.has_value()) {
      closed->insert(op.name);
    }
  }
  return closed;
}

/// Join keys must survive their side's pipeline: catching a key dropped
/// by a Select at plan time saves launching a fleet that can only fail in
/// the exchange.
Status ValidateKeysSurvive(
    const std::optional<std::set<std::string>>& closed,
    const std::vector<std::string>& keys, const char* side) {
  if (!closed.has_value()) return Status::OK();
  for (const auto& k : keys) {
    if (closed->find(k) == closed->end()) {
      return Status::Invalid(std::string("join ") + side + " key " + k +
                             " is dropped by a " + side + "-side Select");
    }
  }
  return Status::OK();
}

/// Plans the build side of a join: filter/projection push-down into the
/// build scan, and the build exchange keyed on build_keys. Returns the set
/// of columns the build side is known to emit, or nullopt when that set is
/// open (no terminal Select) — the caller then cannot attribute post-join
/// column references to a side and must scan conservatively.
Result<std::optional<std::set<std::string>>> PlanBuildSide(JoinSpec* join) {
  size_t first_kept = 0;
  join->build_scan_filter = FoldLeadingFilters(join->build_ops, &first_kept);
  std::vector<PlanOp> kept(join->build_ops.begin() +
                               static_cast<std::ptrdiff_t>(first_kept),
                           join->build_ops.end());
  for (const auto& op : kept) {
    if (!IsRowOp(op)) {
      return Status::Invalid(
          "join build side supports only Filter/Map/Select operators");
    }
  }

  std::optional<std::set<std::string>> build_out = ClosedOutputSet(kept);
  RETURN_NOT_OK(ValidateKeysSurvive(build_out, join->build_keys, "build"));
  // With a closed output set the referenced columns are exactly what the
  // build scan must read; an open set still pushes the local references
  // (the build pipeline output *is* the scanned columns plus Map adds,
  // so nothing downstream can need an unscanned column... except when the
  // pipeline is empty and the join forwards every stored column). Scan
  // everything in the open case to stay correct.
  if (build_out.has_value()) {
    join->build_scan_projection = PushdownProjection(
        join->build_scan_filter, kept, join->build_keys);
  } else {
    join->build_scan_projection.clear();  // Read all columns.
  }
  join->build_ops = std::move(kept);
  join->build_exchange.keys = join->build_keys;
  return build_out;
}

}  // namespace

int64_t AdaptiveChunkBytes(int64_t scan_bytes_per_worker, int connections) {
  constexpr int64_t kMiB = 1024 * 1024;
  constexpr int64_t kSaturationBytes = 16 * kMiB;  // Fig. 7: 1-conn knee.
  constexpr int64_t kMinChunk = kMiB;              // Fig. 7: cost floor.
  int64_t chunk = kSaturationBytes / std::max(1, connections);
  if (scan_bytes_per_worker > 0) {
    chunk = std::min(chunk, std::max(kMinChunk, scan_bytes_per_worker / 8));
  }
  return std::clamp(chunk, kMinChunk, kSaturationBytes);
}

Result<PhysicalQuery> PlanQuery(const Query& query,
                                const ScanTuning& tuning) {
  PhysicalQuery out;
  out.pattern = query.pattern();
  out.fragment.tuning = tuning;

  const auto& ops = query.ops();
  // An aggregate, if present, must be terminal; at most one join.
  int join_at = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == PlanOp::Kind::kAggregate && i + 1 != ops.size()) {
      return Status::Invalid("Aggregate must be the final operator");
    }
    if (ops[i].kind == PlanOp::Kind::kJoin) {
      if (join_at >= 0) {
        return Status::NotImplemented("at most one join per query");
      }
      join_at = static_cast<int>(i);
    }
  }

  // Selection push-down: fold leading filters (before any op that changes
  // the row set semantics) into the scan predicate.
  size_t first_kept = 0;
  out.fragment.scan_filter = FoldLeadingFilters(ops, &first_kept);

  if (join_at < 0) {
    // ---- Single-table query (the original plan shape). ----
    std::vector<PlanOp> kept(ops.begin() +
                                 static_cast<std::ptrdiff_t>(first_kept),
                             ops.end());
    out.fragment.scan_projection =
        PushdownProjection(out.fragment.scan_filter, kept, {});
    out.fragment.ops = std::move(kept);
  } else {
    // ---- Join query: two scan pipelines meeting in one fragment. ----
    // Probe ops split around the join; explicit exchanges are reserved for
    // the planner here (it inserts the two-sided join exchange itself).
    std::vector<PlanOp> pre(ops.begin() +
                                static_cast<std::ptrdiff_t>(first_kept),
                            ops.begin() + join_at);
    std::vector<PlanOp> post(ops.begin() + join_at + 1, ops.end());
    for (const auto& op : pre) {
      if (!IsRowOp(op)) {
        return Status::NotImplemented(
            "only row-wise operators may precede a join");
      }
    }
    for (const auto& op : post) {
      if (op.kind == PlanOp::Kind::kExchange ||
          op.kind == PlanOp::Kind::kJoin) {
        return Status::NotImplemented(
            "explicit exchanges after a join are not supported");
      }
    }

    JoinSpec join = *ops[static_cast<size_t>(join_at)].join;
    ASSIGN_OR_RETURN(std::optional<std::set<std::string>> build_out,
                     PlanBuildSide(&join));
    RETURN_NOT_OK(
        ValidateKeysSurvive(ClosedOutputSet(pre), join.probe_keys, "probe"));

    // Probe projection: probe-side references plus whatever post-join ops
    // read that the join does not provide from the build side. What the
    // join provides depends on its type: an inner join contributes the
    // build output minus the dropped build keys; a left-semi join
    // contributes nothing (probe columns only). Columns the build side
    // shadows are NOT provided before the join, so pre-join references
    // always read from the probe scan. An open build output set means
    // post-join references cannot be attributed — scan everything.
    if (build_out.has_value()) {
      std::set<std::string> referenced, produced;
      if (out.fragment.scan_filter != nullptr) {
        out.fragment.scan_filter->CollectColumns(&referenced);
      }
      auto consume = [&](const std::vector<PlanOp>& run) {
        for (const auto& op : run) {
          std::set<std::string> cols;
          CollectOpColumns(op, &cols);
          for (const auto& c : cols) {
            if (produced.find(c) == produced.end()) referenced.insert(c);
          }
          CollectOpOutputs(op, &produced);
        }
      };
      consume(pre);
      for (const auto& k : join.probe_keys) {
        if (produced.find(k) == produced.end()) referenced.insert(k);
      }
      if (join.type == engine::JoinType::kInner) {
        std::set<std::string> dropped_keys(join.build_keys.begin(),
                                           join.build_keys.end());
        for (const auto& c : *build_out) {
          if (dropped_keys.find(c) == dropped_keys.end()) {
            produced.insert(c);
          }
        }
      }
      consume(post);
      out.fragment.scan_projection.assign(referenced.begin(),
                                          referenced.end());
    } else {
      out.fragment.scan_projection.clear();  // Read all columns.
    }

    // Assemble: pre ops, probe exchange, join, post ops. Both exchanges
    // share the user-supplied template (levels, buckets, combining) so the
    // two sides traverse the same grid; the driver stamps distinct ids.
    ExchangeSpec probe_exchange = join.build_exchange;
    probe_exchange.keys = join.probe_keys;
    out.fragment.ops = std::move(pre);
    PlanOp ex;
    ex.kind = PlanOp::Kind::kExchange;
    ex.exchange = std::move(probe_exchange);
    out.fragment.ops.push_back(std::move(ex));
    PlanOp jop;
    jop.kind = PlanOp::Kind::kJoin;
    jop.join = std::move(join);
    out.fragment.ops.push_back(std::move(jop));
    out.fragment.ops.insert(out.fragment.ops.end(),
                            std::make_move_iterator(post.begin()),
                            std::make_move_iterator(post.end()));
    out.build_pattern =
        out.fragment.ops[static_cast<size_t>(out.fragment.JoinIndex())]
            .join->build_pattern;
  }

  if (out.fragment.EndsInAggregate()) {
    out.has_final_aggregate = true;
    out.final_group_by = out.fragment.ops.back().group_by;
    out.final_aggs = out.fragment.ops.back().aggs;
  }
  return out;
}

}  // namespace lambada::core
