#include "core/planner.h"

#include <algorithm>
#include <vector>

#include "core/logical_plan.h"
#include "core/optimizer.h"

namespace lambada::core {

int64_t AdaptiveChunkBytes(int64_t scan_bytes_per_worker, int connections) {
  constexpr int64_t kMiB = 1024 * 1024;
  constexpr int64_t kSaturationBytes = 16 * kMiB;  // Fig. 7: 1-conn knee.
  constexpr int64_t kMinChunk = kMiB;              // Fig. 7: cost floor.
  int64_t chunk = kSaturationBytes / std::max(1, connections);
  if (scan_bytes_per_worker > 0) {
    chunk = std::min(chunk, std::max(kMinChunk, scan_bytes_per_worker / 8));
  }
  return std::clamp(chunk, kMinChunk, kSaturationBytes);
}

Result<PhysicalQuery> PlanQuery(const Query& query,
                                const ScanTuning& tuning) {
  const auto& ops = query.ops();
  for (const auto& op : ops) {
    if (op.kind == PlanOp::Kind::kJoin) {
      // Join queries go through the cost-based optimizer. With no catalog
      // it has nothing to cost, so it preserves the query's join order and
      // partitioned strategy — the historical plan shape.
      OptimizerOptions opt;
      opt.tuning = tuning;
      return OptimizeQuery(query, Catalog{}, opt);
    }
  }

  // ---- Single-table query (the original plan shape). ----
  PhysicalQuery out;
  out.pattern = query.pattern();
  out.fragment.tuning = tuning;

  // An aggregate must be terminal, up to trailing HAVING filters, which
  // run in the driver scope against the finalized result.
  int agg_at = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == PlanOp::Kind::kAggregate) {
      agg_at = static_cast<int>(i);
      break;
    }
  }
  std::vector<PlanOp> main_ops;
  if (agg_at >= 0) {
    for (size_t i = static_cast<size_t>(agg_at) + 1; i < ops.size(); ++i) {
      if (ops[i].kind != PlanOp::Kind::kFilter) {
        return Status::Invalid("Aggregate must be the final operator");
      }
      out.driver_ops.push_back(ops[i]);
    }
    main_ops.assign(ops.begin(),
                    ops.begin() + static_cast<std::ptrdiff_t>(agg_at) + 1);
  } else {
    main_ops = ops;
  }

  // Selection push-down: fold leading filters into the scan predicate;
  // projection push-down: read only columns referenced downstream.
  size_t first_kept = 0;
  out.fragment.scan_filter = FoldLeadingFilters(main_ops, &first_kept);
  std::vector<PlanOp> kept(main_ops.begin() +
                               static_cast<std::ptrdiff_t>(first_kept),
                           main_ops.end());
  out.fragment.scan_projection =
      PushdownProjection(out.fragment.scan_filter, kept, {});
  out.fragment.ops = std::move(kept);

  if (out.fragment.EndsInAggregate()) {
    out.has_final_aggregate = true;
    out.final_group_by = out.fragment.ops.back().group_by;
    out.final_aggs = out.fragment.ops.back().aggs;
  }
  return out;
}

}  // namespace lambada::core
