#include "core/planner.h"

#include <set>

namespace lambada::core {

namespace {

using engine::BinaryOp;
using engine::Expr;
using engine::ExprPtr;

/// Columns required by one op (its own expressions + pass-through needs
/// are handled conservatively by unioning everything referenced anywhere).
void CollectOpColumns(const PlanOp& op, std::set<std::string>* cols) {
  switch (op.kind) {
    case PlanOp::Kind::kFilter:
    case PlanOp::Kind::kMap:
      op.expr->CollectColumns(cols);
      break;
    case PlanOp::Kind::kSelect:
      for (const auto& e : op.exprs) e->CollectColumns(cols);
      break;
    case PlanOp::Kind::kExchange:
      for (const auto& k : op.exchange->keys) cols->insert(k);
      break;
    case PlanOp::Kind::kAggregate:
      for (const auto& g : op.group_by) cols->insert(g);
      for (const auto& a : op.aggs) {
        if (a.input != nullptr) a.input->CollectColumns(cols);
      }
      break;
  }
}

/// Names of columns *introduced* by an op (Map/Select outputs): these must
/// not be pushed into the scan projection.
void CollectOpOutputs(const PlanOp& op, std::set<std::string>* produced) {
  switch (op.kind) {
    case PlanOp::Kind::kMap:
      produced->insert(op.name);
      break;
    case PlanOp::Kind::kSelect:
      for (const auto& n : op.names) produced->insert(n);
      break;
    case PlanOp::Kind::kAggregate:
      for (const auto& a : op.aggs) produced->insert(a.output_name);
      break;
    default:
      break;
  }
}

}  // namespace

Result<PhysicalQuery> PlanQuery(const Query& query,
                                const ScanTuning& tuning) {
  PhysicalQuery out;
  out.pattern = query.pattern();
  out.fragment.tuning = tuning;

  const auto& ops = query.ops();
  // An aggregate, if present, must be terminal.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == PlanOp::Kind::kAggregate && i + 1 != ops.size()) {
      return Status::Invalid("Aggregate must be the final operator");
    }
  }

  // Selection push-down: fold leading filters (before any op that changes
  // the row set semantics) into the scan predicate.
  size_t first_kept = 0;
  ExprPtr scan_filter;
  while (first_kept < ops.size() &&
         ops[first_kept].kind == PlanOp::Kind::kFilter) {
    scan_filter = scan_filter == nullptr
                      ? ops[first_kept].expr
                      : Expr::Binary(BinaryOp::kAnd, scan_filter,
                                     ops[first_kept].expr);
    ++first_kept;
  }
  out.fragment.scan_filter = scan_filter;

  // Remaining ops execute in the workers.
  std::vector<PlanOp> kept(ops.begin() + first_kept, ops.end());

  // Projection push-down: read only base columns referenced anywhere
  // (in the pushed filter or any kept op), excluding derived columns.
  std::set<std::string> referenced;
  if (scan_filter != nullptr) scan_filter->CollectColumns(&referenced);
  std::set<std::string> produced;
  for (const auto& op : kept) {
    std::set<std::string> cols;
    CollectOpColumns(op, &cols);
    for (const auto& c : cols) {
      if (produced.find(c) == produced.end()) referenced.insert(c);
    }
    CollectOpOutputs(op, &produced);
  }
  out.fragment.scan_projection.assign(referenced.begin(), referenced.end());
  // An empty projection with no ops means "select *": leave empty so the
  // scan reads everything.
  if (out.fragment.scan_projection.empty() && !kept.empty()) {
    // All kept ops are column-free (e.g., COUNT(*)): still need at least
    // one column to know row counts; pick none and let the scan read all.
  }

  out.fragment.ops = std::move(kept);
  if (out.fragment.EndsInAggregate()) {
    out.has_final_aggregate = true;
    out.final_group_by = out.fragment.ops.back().group_by;
    out.final_aggs = out.fragment.ops.back().aggs;
  }
  return out;
}

}  // namespace lambada::core
