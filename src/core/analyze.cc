#include "core/analyze.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lambada::core {

namespace {

std::string F6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Aggregate of every worker-side span instance of one exchange id.
struct ExchangeActuals {
  int spans = 0;
  double time_s = 0;
  int64_t bytes_written = 0;
  int64_t bytes_read = 0;
  int64_t puts = 0;
  int64_t gets = 0;
};

/// Aggregate of every join span of one build ordinal.
struct JoinActuals {
  int spans = 0;
  double time_s = 0;
  int64_t rows = 0;
};

/// Everything the annotator mines out of the trace (empty when the run
/// was not traced — annotations then omit virtual-time fields).
struct TraceActuals {
  bool present = false;
  double scan_time_s = 0;  ///< "scan" + "scan-build" spans, all workers.
  std::map<std::string, ExchangeActuals> exchanges;  ///< By exchange_id.
  std::map<int64_t, JoinActuals> joins;              ///< By ordinal.
  /// Driver phase durations by span name (plan, upload-plan, invoke,
  /// collect, merge), in first-seen order.
  std::vector<std::pair<std::string, double>> driver_phases;
};

int64_t ArgInt(const obs::Tracer::Span& s, const std::string& key) {
  for (const auto& [k, v] : s.args) {
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  }
  return 0;
}

const std::string* ArgStr(const obs::Tracer::Span& s,
                          const std::string& key) {
  for (const auto& [k, v] : s.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Duration(const obs::Tracer::Span& s) {
  return s.end < 0 ? 0.0 : s.end - s.start;
}

TraceActuals MineTrace(const QueryReport& report) {
  TraceActuals out;
  if (report.trace == nullptr) return out;
  out.present = true;
  for (const auto& s : report.trace->spans()) {
    if (s.cat == "scan" && (s.name == "scan" || s.name == "scan-build")) {
      out.scan_time_s += Duration(s);
    } else if (s.cat == "exchange" && s.name == "exchange") {
      const std::string* id = ArgStr(s, "exchange_id");
      if (id == nullptr) continue;
      ExchangeActuals& x = out.exchanges[*id];
      ++x.spans;
      x.time_s += Duration(s);
      x.bytes_written += ArgInt(s, "bytes_written");
      x.bytes_read += ArgInt(s, "bytes_read");
      x.puts += ArgInt(s, "puts");
      x.gets += ArgInt(s, "gets");
    } else if (s.cat == "join" && s.name == "join") {
      JoinActuals& j = out.joins[ArgInt(s, "ordinal")];
      ++j.spans;
      j.time_s += Duration(s);
      j.rows += ArgInt(s, "rows");
    } else if (s.cat == "driver" && s.parent == report.trace->root()) {
      out.driver_phases.emplace_back(s.name, Duration(s));
    }
  }
  return out;
}

std::string Indent(const std::string& line) {
  size_t n = 0;
  while (n < line.size() && line[n] == ' ') ++n;
  return std::string(n + 2, ' ');
}

std::string RenderExchangeActuals(const TraceActuals& t,
                                  const std::string& exchange_id) {
  auto it = t.exchanges.find(exchange_id);
  if (it == t.exchanges.end()) return "";
  const ExchangeActuals& x = it->second;
  std::ostringstream o;
  o << "bytes_written=" << x.bytes_written << " bytes_read=" << x.bytes_read
    << " puts=" << x.puts << " gets=" << x.gets
    << " time_s=" << F6(x.time_s);
  return o.str();
}

}  // namespace

std::string RenderExplainAnalyze(const PhysicalQuery& physical,
                                 const QueryReport& report) {
  const TraceActuals traced = MineTrace(report);
  const obs::MetricsRegistry& fleet = report.fleet_metrics;

  // Fragment-order lists of the exchange instances, matched positionally
  // to the explain text's operator lines below: the nth "exchange" line is
  // the nth kExchange op; the join[N] line is the kJoin op of ordinal N
  // (== its order of appearance).
  std::vector<const ExchangeSpec*> exchange_ops;
  std::vector<const JoinSpec*> join_ops;
  for (const auto& op : physical.fragment.ops) {
    if (op.kind == PlanOp::Kind::kExchange) {
      exchange_ops.push_back(&*op.exchange);
    } else if (op.kind == PlanOp::Kind::kJoin) {
      join_ops.push_back(&*op.join);
    }
  }

  std::ostringstream out;
  std::istringstream in(physical.explain_text);
  size_t next_exchange = 0;
  size_t next_join = 0;
  std::string line;
  while (std::getline(in, line)) {
    out << line << "\n";
    size_t first = line.find_first_not_of(' ');
    if (first == std::string::npos) continue;
    const std::string body = line.substr(first);
    const std::string pad = Indent(line);
    if (body.rfind("scan", 0) == 0) {
      // One annotation covers every scan of the fragment (a join fragment
      // runs the build-side scans too; the registry sums both sides).
      out << pad << "actual: rows_scanned="
          << fleet.counter(obs::Metric::kRowsScanned)
          << " rows_emitted=" << fleet.counter(obs::Metric::kRowsEmitted)
          << " row_groups=" << fleet.counter(obs::Metric::kRowGroupsTotal)
          << " pruned=" << fleet.counter(obs::Metric::kRowGroupsPruned)
          << " bytes_moved=" << fleet.counter(obs::Metric::kScanBytesMoved)
          << " gets=" << fleet.counter(obs::Metric::kScanGetRequests);
      if (traced.present) out << " time_s=" << F6(traced.scan_time_s);
      out << "\n";
    } else if (body.rfind("join[", 0) == 0) {
      const size_t j = next_join++;
      out << pad << "actual:";
      if (traced.present) {
        auto it = traced.joins.find(static_cast<int64_t>(j));
        if (it != traced.joins.end()) {
          out << " rows=" << it->second.rows
              << " time_s=" << F6(it->second.time_s);
        } else {
          out << " rows=0";
        }
      } else if (join_ops.size() == 1) {
        out << " rows=" << fleet.counter(obs::Metric::kRowsJoined);
      } else {
        out << " rows_all_joins=" << fleet.counter(obs::Metric::kRowsJoined);
      }
      if (traced.present && j < join_ops.size() &&
          join_ops[j]->strategy == JoinStrategy::kPartitioned) {
        std::string x = RenderExchangeActuals(
            traced, join_ops[j]->build_exchange.exchange_id);
        if (!x.empty()) out << "\n" << pad << "build exchange: " << x;
      }
      out << "\n";
    } else if (body.rfind("exchange", 0) == 0) {
      const size_t x = next_exchange++;
      if (traced.present && x < exchange_ops.size()) {
        std::string a =
            RenderExchangeActuals(traced, exchange_ops[x]->exchange_id);
        if (!a.empty()) out << pad << "actual: " << a << "\n";
      } else if (!traced.present && next_exchange == 1) {
        // Untraced runs cannot split traffic per exchange instance; report
        // the fleet totals once, on the first exchange line.
        out << pad << "actual (all exchanges): bytes_written="
            << fleet.counter(obs::Metric::kExchangeBytesWritten)
            << " bytes_read="
            << fleet.counter(obs::Metric::kExchangeBytesRead)
            << " puts=" << fleet.counter(obs::Metric::kExchangePutRequests)
            << " gets=" << fleet.counter(obs::Metric::kExchangeGetRequests)
            << " rounds=" << fleet.counter(obs::Metric::kExchangeRounds)
            << "\n";
      }
    }
  }

  out << "actual totals:\n"
      << "  workers=" << report.workers << " files=" << report.files
      << " attempts=" << report.total_attempts
      << " reinvoked=" << report.reinvoked_workers
      << " duplicates=" << report.duplicate_results
      << " result_rows=" << report.result.num_rows()
      << " latency_s=" << F6(report.latency_s) << "\n";
  if (traced.present && !traced.driver_phases.empty()) {
    out << "  driver:";
    for (const auto& [name, dur] : traced.driver_phases) {
      out << " " << name << "=" << F6(dur) << "s";
    }
    out << "\n";
  }
  std::string registry_text = fleet.ToText();
  if (!registry_text.empty()) {
    out << "fleet metrics:\n";
    std::istringstream rt(registry_text);
    while (std::getline(rt, line)) out << "  " << line << "\n";
  }
  return out.str();
}

}  // namespace lambada::core
