#include "core/worker.h"

#include <memory>
#include <string>
#include <vector>

#include "cloud/object_store.h"
#include "core/exchange.h"
#include "core/invocation_tree.h"
#include "core/messages.h"
#include "core/plan.h"
#include "engine/aggregate.h"
#include "engine/chunk_serde.h"
#include "engine/join.h"
#include "engine/scan.h"

namespace lambada::core {

namespace {

using engine::TableChunk;

/// Per-row CPU cost of one vectorized row-wise operator (vCPU-seconds).
constexpr double kRowOpCpuPerRow = 2e-9;
/// Per-row CPU cost of hash-aggregation consume.
constexpr double kAggCpuPerRow = 5e-9;
/// Per-row CPU cost of the hash join (charged for build + probe + output
/// rows: table insert, probe walk, and materialization).
constexpr double kJoinCpuPerRow = 8e-9;
/// Results larger than this spill to S3 (SQS limit is 256 KiB; leave room
/// for the envelope).
constexpr size_t kInlineResultLimit = 200 * 1024;

/// Applies a row-wise op (filter/map/select) to a chunk.
Result<TableChunk> ApplyRowOp(const PlanOp& op, TableChunk chunk) {
  switch (op.kind) {
    case PlanOp::Kind::kFilter: {
      ASSIGN_OR_RETURN(engine::Column mask, op.expr->Evaluate(chunk));
      std::vector<bool> keep(chunk.num_rows());
      for (size_t i = 0; i < keep.size(); ++i) {
        keep[i] = mask.ValueAsInt64(i) != 0;
      }
      return chunk.Filter(keep);
    }
    case PlanOp::Kind::kMap: {
      ASSIGN_OR_RETURN(engine::Column col, op.expr->Evaluate(chunk));
      std::vector<engine::Field> fields = chunk.schema()->fields();
      fields.push_back(engine::Field{op.name, col.type()});
      std::vector<engine::Column> cols = chunk.columns();
      cols.push_back(std::move(col));
      return TableChunk(
          std::make_shared<engine::Schema>(std::move(fields)),
          std::move(cols));
    }
    case PlanOp::Kind::kSelect: {
      std::vector<engine::Field> fields;
      std::vector<engine::Column> cols;
      for (size_t i = 0; i < op.exprs.size(); ++i) {
        ASSIGN_OR_RETURN(engine::Column col, op.exprs[i]->Evaluate(chunk));
        fields.push_back(engine::Field{op.names[i], col.type()});
        cols.push_back(std::move(col));
      }
      return TableChunk(
          std::make_shared<engine::Schema>(std::move(fields)),
          std::move(cols));
    }
    default:
      return Status::Internal("ApplyRowOp on non-row op");
  }
}

/// Builds the ScanOptions a fragment's tuning prescribes.
engine::ScanOptions MakeScanOptions(const ScanTuning& tuning,
                                    std::vector<std::string> projection,
                                    engine::ExprPtr filter) {
  engine::ScanOptions scan_options;
  scan_options.projection = std::move(projection);
  scan_options.filter = std::move(filter);
  scan_options.row_group_parallelism = tuning.row_group_parallelism;
  scan_options.column_fetch_parallelism = tuning.column_fetch_parallelism;
  scan_options.source.chunk_bytes = tuning.chunk_bytes;
  scan_options.source.connections = tuning.connections_per_read;
  scan_options.prefetch_metadata = tuning.prefetch_metadata;
  scan_options.coalesce_gap_bytes = tuning.coalesce_gap_bytes;
  return scan_options;
}

/// Scans `files` and streams every chunk through the row ops
/// [ops_begin, ops_end) of `ops`, concatenating the survivors: one scan
/// pipeline of a join fragment (the probe stage, or — with the JoinSpec's
/// op list — the build side). Scan counters accumulate into `metrics`.
sim::Async<Result<TableChunk>> RunScanPipeline(
    cloud::WorkerEnv& env, const std::vector<engine::FileRef>& files,
    engine::ScanOptions scan_options, const std::vector<PlanOp>& ops,
    size_t ops_begin, size_t ops_end, const char* phase_label,
    WorkerResultMetrics* metrics) {
  // Scope a scan span over the whole pipeline; the per-row-group child
  // spans created inside S3ParquetScan parent under it.
  cloud::EnvSpan span(&env, "scan", phase_label);
  std::vector<TableChunk> collected;
  int64_t collected_bytes = 0;
  auto sink = [&](const TableChunk& chunk) -> Status {
    TableChunk current = chunk;
    for (size_t i = ops_begin; i < ops_end; ++i) {
      auto next = ApplyRowOp(ops[i], std::move(current));
      if (!next.ok()) return next.status();
      current = *std::move(next);
    }
    RETURN_NOT_OK(env.ReserveMemory(current.memory_bytes()));
    collected_bytes += current.memory_bytes();
    collected.push_back(std::move(current));
    return Status::OK();
  };
  double scan_start = env.sim()->Now();
  auto scan_stats =
      co_await engine::S3ParquetScan(env, files, scan_options, sink);
  if (!scan_stats.ok()) co_return scan_stats.status();
  env.RecordPhase(phase_label, scan_start);
  metrics->registry.Merge(scan_stats->registry);
  if (span.id() != 0) {
    env.tracer()->AddArg(span.id(), "rows", scan_stats->rows_emitted());
    env.tracer()->AddArg(span.id(), "bytes", scan_stats->bytes_moved());
  }
  co_await env.Compute(static_cast<double>(scan_stats->rows_emitted()) *
                       kRowOpCpuPerRow *
                       static_cast<double>(ops_end - ops_begin) *
                       env.data_scale);
  auto out = engine::ConcatChunks(collected);
  env.ReleaseMemory(collected_bytes);
  if (!out.ok()) co_return out.status();
  co_return *std::move(out);
}

/// Accumulates one exchange run's traffic into the worker metrics.
/// `data_scale` converts the exchange's real partition bytes into modeled
/// bytes (virtually-scaled experiments shuffle scale x the real rows).
void AddExchangeMetrics(WorkerResultMetrics* metrics,
                        const ExchangeMetrics& xm, double data_scale) {
  const int64_t real_written = xm.bytes_written();
  const int64_t real_read = xm.bytes_read();
  metrics->registry.Merge(xm.registry);
  // The merge added the exchange's REAL serialized bytes; shift the two
  // byte counters so the totals are modeled bytes like everything else.
  metrics->registry.Add(
      obs::Metric::kExchangeBytesWritten,
      static_cast<int64_t>(static_cast<double>(real_written) * data_scale) -
          real_written);
  metrics->registry.Add(
      obs::Metric::kExchangeBytesRead,
      static_cast<int64_t>(static_cast<double>(real_read) * data_scale) -
          real_read);
}

/// Runs the tail of a fragment after its last pipeline breaker (exchange
/// or join): the row ops [begin, ops.size()) and the optional terminal
/// aggregate. A schema-less empty `current` — a worker that sent and
/// received nothing — short-circuits to the empty terminal, since row ops
/// cannot resolve their columns against no schema.
sim::Async<Result<TableChunk>> RunPostOps(cloud::WorkerEnv& env,
                                          const PlanFragment& fragment,
                                          size_t begin,
                                          TableChunk current) {
  size_t end = fragment.ops.size();
  bool aggregates = fragment.EndsInAggregate();
  if (aggregates) --end;
  if (current.num_columns() == 0) {
    if (aggregates) {
      const PlanOp& op = fragment.ops.back();
      engine::HashAggregator agg(op.group_by, op.aggs);
      co_return agg.PartialState();
    }
    co_return current;
  }
  for (size_t i = begin; i < end; ++i) {
    co_await env.Compute(static_cast<double>(current.num_rows()) *
                         kRowOpCpuPerRow * env.data_scale);
    auto next = ApplyRowOp(fragment.ops[i], std::move(current));
    if (!next.ok()) co_return next.status();
    current = *std::move(next);
  }
  if (aggregates) {
    const PlanOp& op = fragment.ops.back();
    engine::HashAggregator agg(op.group_by, op.aggs);
    co_await env.Compute(static_cast<double>(current.num_rows()) *
                         kAggCpuPerRow * env.data_scale);
    if (current.num_rows() > 0) {
      CO_RETURN_NOT_OK(agg.ConsumeInput(current));
    }
    co_return agg.PartialState();
  }
  co_return current;
}

/// Executes a join fragment (Section 4.4 put to work, generalized to a
/// chain of joins). The probe pipeline scans once; then, per kJoin op in
/// fragment order: build pipeline (scan -> row ops), the join's exchanges
/// for a partitioned join (build side first, then the probe side's
/// pending kExchange — every worker uses this order, so the rounds line
/// up across the fleet), or no exchange at all for a broadcast join
/// (every worker holds the whole build relation), then the local hash
/// join. Row ops between joins run on the current pipeline; a terminal
/// aggregate produces the partial state.
sim::Async<Result<TableChunk>> ExecuteJoinFragment(
    cloud::WorkerEnv& env, const PlanFragment& fragment,
    const InvocationPayload& payload, WorkerResultMetrics* metrics) {
  const int p = static_cast<int>(payload.self.worker_id);
  const int P = static_cast<int>(payload.total_workers);

  // Slice the payload's build files into per-join lists. An empty
  // build_counts is the single-join layout: everything belongs to the
  // first join.
  std::vector<std::vector<engine::FileRef>> build_files;
  if (payload.self.build_counts.empty()) {
    build_files.push_back(payload.self.build_files);
  } else {
    size_t offset = 0;
    for (uint32_t n : payload.self.build_counts) {
      if (offset + n > payload.self.build_files.size()) {
        co_return Status::Invalid("build_counts exceed the build file list");
      }
      build_files.emplace_back(
          payload.self.build_files.begin() + static_cast<std::ptrdiff_t>(offset),
          payload.self.build_files.begin() +
              static_cast<std::ptrdiff_t>(offset + n));
      offset += n;
    }
    if (offset != payload.self.build_files.size()) {
      co_return Status::Invalid("build_counts do not cover the file list");
    }
  }

  auto run_exchange = [&](const ExchangeSpec& spec, TableChunk in)
      -> sim::Async<Result<TableChunk>> {
    cloud::EnvSpan span(&env, "exchange", "exchange");
    if (span.id() != 0) {
      env.tracer()->AddArg(span.id(), "exchange_id", spec.exchange_id);
    }
    ExchangeMetrics xm;
    auto out = co_await RunExchange(env, spec, p, P, std::move(in), &xm);
    AddExchangeMetrics(metrics, xm, env.data_scale);
    if (span.id() != 0) {
      env.tracer()->AddArg(
          span.id(), "bytes_written",
          static_cast<int64_t>(static_cast<double>(xm.bytes_written()) *
                               env.data_scale));
      env.tracer()->AddArg(
          span.id(), "bytes_read",
          static_cast<int64_t>(static_cast<double>(xm.bytes_read()) *
                               env.data_scale));
      env.tracer()->AddArg(span.id(), "puts", xm.put_requests());
      env.tracer()->AddArg(span.id(), "gets", xm.get_requests());
    }
    co_return out;
  };

  // ---- Probe pipeline: scan through the leading row ops. ----
  size_t first_break = fragment.ops.size();
  for (size_t i = 0; i < fragment.ops.size(); ++i) {
    const PlanOp::Kind k = fragment.ops[i].kind;
    if (k != PlanOp::Kind::kFilter && k != PlanOp::Kind::kMap &&
        k != PlanOp::Kind::kSelect) {
      first_break = i;
      break;
    }
  }
  auto probe_local = co_await RunScanPipeline(
      env, payload.self.files,
      MakeScanOptions(fragment.tuning, fragment.scan_projection,
                      fragment.scan_filter),
      fragment.ops, 0, first_break, "scan", metrics);
  if (!probe_local.ok()) co_return probe_local.status();
  TableChunk current = *std::move(probe_local);

  size_t next_build = 0;               // Next join's build-file ordinal.
  const PlanOp* pending_exchange = nullptr;
  for (size_t i = first_break; i < fragment.ops.size(); ++i) {
    const PlanOp& op = fragment.ops[i];
    switch (op.kind) {
      case PlanOp::Kind::kExchange: {
        if (i + 1 < fragment.ops.size() &&
            fragment.ops[i + 1].kind == PlanOp::Kind::kJoin) {
          // The probe-side exchange of the next partitioned join. It runs
          // after that join's build side (see the function comment).
          pending_exchange = &op;
          break;
        }
        double t0 = env.sim()->Now();
        auto exchanged = co_await run_exchange(*op.exchange,
                                               std::move(current));
        if (!exchanged.ok()) co_return exchanged.status();
        current = *std::move(exchanged);
        env.RecordPhase("exchange", t0);
        break;
      }
      case PlanOp::Kind::kJoin: {
        const JoinSpec& join = *op.join;
        const bool partitioned =
            join.strategy == JoinStrategy::kPartitioned;
        if (partitioned && pending_exchange == nullptr) {
          co_return Status::Invalid(
              "join must be fed by a probe-side exchange");
        }
        if (!partitioned && pending_exchange != nullptr) {
          co_return Status::Invalid(
              "broadcast join cannot follow a probe-side exchange");
        }
        size_t ordinal = static_cast<size_t>(join.build_ordinal);
        if (ordinal != next_build) {
          co_return Status::Invalid("join build ordinal has no file list");
        }
        // Ordinals past the sliced lists are legal only when this worker
        // got no build files at all: the all-zero counts are elided from
        // the wire (messages.cc), so every join's slice is empty.
        static const std::vector<engine::FileRef> kNoFiles;
        const std::vector<engine::FileRef>* ordinal_files = &kNoFiles;
        if (ordinal < build_files.size()) {
          ordinal_files = &build_files[ordinal];
        } else if (!payload.self.build_files.empty()) {
          co_return Status::Invalid("join build ordinal has no file list");
        }
        ++next_build;

        // ---- Build side. ----
        auto build_local = co_await RunScanPipeline(
            env, *ordinal_files,
            MakeScanOptions(fragment.tuning, join.build_scan_projection,
                            join.build_scan_filter),
            join.build_ops, 0, join.build_ops.size(), "scan-build",
            metrics);
        if (!build_local.ok()) co_return build_local.status();
        TableChunk build_chunk = *std::move(build_local);
        if (partitioned) {
          double t0 = env.sim()->Now();
          auto build_side = co_await run_exchange(join.build_exchange,
                                                  std::move(build_chunk));
          if (!build_side.ok()) co_return build_side.status();
          build_chunk = *std::move(build_side);
          env.RecordPhase("exchange-build", t0);

          double t1 = env.sim()->Now();
          auto probe_side = co_await run_exchange(
              *pending_exchange->exchange, std::move(current));
          if (!probe_side.ok()) co_return probe_side.status();
          current = *std::move(probe_side);
          env.RecordPhase("exchange-probe", t1);
        }
        pending_exchange = nullptr;

        // ---- Join the pair. ----
        double t0 = env.sim()->Now();
        uint64_t join_span = obs::Begin(env.tracer(), env.trace_span(),
                                        "join", "join");
        if (join_span != 0) {
          env.tracer()->AddArg(join_span, "ordinal",
                               static_cast<int64_t>(ordinal));
        }
        if (current.num_columns() == 0) {
          // No probe rows reached this worker from anywhere: schema
          // unknown, output empty either way.
          current = TableChunk();
        } else if (build_chunk.num_columns() == 0) {
          // No build rows here, so no probe row can match (partitioned:
          // equal keys hash to the same worker; broadcast: this worker
          // holds the whole — empty — build relation). A semi join keeps
          // the probe schema; an inner join's output schema is unknowable
          // without the build columns.
          current = join.type == engine::JoinType::kLeftSemi
                        ? TableChunk::Empty(current.schema())
                        : TableChunk();
        } else {
          std::vector<int> probe_cols, build_cols;
          for (size_t k = 0; k < join.probe_keys.size(); ++k) {
            int pc = current.schema()->FieldIndex(join.probe_keys[k]);
            int bc = build_chunk.schema()->FieldIndex(join.build_keys[k]);
            if (pc < 0 || bc < 0) {
              co_return Status::Invalid("join key column not found: " +
                                        (pc < 0 ? join.probe_keys[k]
                                                : join.build_keys[k]));
            }
            probe_cols.push_back(pc);
            build_cols.push_back(bc);
          }
          co_await env.Compute(static_cast<double>(build_chunk.num_rows() +
                                                   current.num_rows()) *
                               kJoinCpuPerRow * env.data_scale);
          auto joined = engine::HashJoin(current, probe_cols, build_chunk,
                                         build_cols, join.type, env.exec);
          if (!joined.ok()) co_return joined.status();
          co_await env.Compute(static_cast<double>(joined->num_rows()) *
                               kJoinCpuPerRow * env.data_scale);
          current = *std::move(joined);
        }
        metrics->registry.Add(obs::Metric::kRowsJoined,
                              static_cast<int64_t>(current.num_rows()));
        if (join_span != 0) {
          env.tracer()->AddArg(join_span, "rows",
                               static_cast<int64_t>(current.num_rows()));
          env.tracer()->EndSpan(join_span);
        }
        env.RecordPhase("join", t0);
        build_chunk = TableChunk();
        break;
      }
      case PlanOp::Kind::kFilter:
      case PlanOp::Kind::kMap:
      case PlanOp::Kind::kSelect: {
        // A schema-less empty pipeline cannot resolve columns; row ops on
        // it are no-ops.
        if (current.num_columns() == 0) break;
        co_await env.Compute(static_cast<double>(current.num_rows()) *
                             kRowOpCpuPerRow * env.data_scale);
        auto next = ApplyRowOp(op, std::move(current));
        if (!next.ok()) co_return next.status();
        current = *std::move(next);
        break;
      }
      case PlanOp::Kind::kAggregate: {
        engine::HashAggregator agg(op.group_by, op.aggs);
        if (current.num_columns() != 0) {
          co_await env.Compute(static_cast<double>(current.num_rows()) *
                               kAggCpuPerRow * env.data_scale);
          if (current.num_rows() > 0) {
            CO_RETURN_NOT_OK(agg.ConsumeInput(current));
          }
        }
        co_return agg.PartialState();
      }
      default:
        co_return Status::Invalid("unexpected op in a join fragment");
    }
  }
  co_return current;
}

/// Executes the plan fragment over the worker's files; returns the
/// worker's partial result chunk.
sim::Async<Result<TableChunk>> ExecuteFragment(
    cloud::WorkerEnv& env, const PlanFragment& fragment,
    const InvocationPayload& payload, WorkerResultMetrics* metrics) {
  // Join fragments take the join path; the single-table pipeline below is
  // untouched.
  if (fragment.JoinIndex() >= 0) {
    co_return co_await ExecuteJoinFragment(env, fragment, payload, metrics);
  }
  // Split the pipeline at the exchange (a pipeline breaker).
  int exchange_at = -1;
  for (size_t i = 0; i < fragment.ops.size(); ++i) {
    if (fragment.ops[i].kind == PlanOp::Kind::kExchange) {
      if (exchange_at >= 0) {
        co_return Status::NotImplemented(
            "multiple exchanges in one fragment");
      }
      exchange_at = static_cast<int>(i);
    }
  }
  size_t stage1_end = exchange_at >= 0 ? static_cast<size_t>(exchange_at)
                                       : fragment.ops.size();
  // A terminal aggregate in stage 1 (no exchange after it)?
  bool stage1_aggregates = exchange_at < 0 && fragment.EndsInAggregate();
  if (stage1_aggregates) --stage1_end;

  std::unique_ptr<engine::HashAggregator> agg;
  if (stage1_aggregates) {
    const PlanOp& op = fragment.ops.back();
    agg = std::make_unique<engine::HashAggregator>(op.group_by, op.aggs);
  }
  std::vector<TableChunk> collected;
  int64_t collected_bytes = 0;

  engine::ScanOptions scan_options = MakeScanOptions(
      fragment.tuning, fragment.scan_projection, fragment.scan_filter);

  // The fused pipeline: row ops + terminal consumer, run per scanned
  // chunk. CPU for these stages is charged after the scan completes
  // (chunk sizes are known then); the dominant in-scan costs
  // (decompression, residual filter) are charged inside the scan.
  Status pipeline_status = Status::OK();
  auto sink = [&](const TableChunk& chunk) -> Status {
    TableChunk current = chunk;
    for (size_t i = 0; i < stage1_end; ++i) {
      auto next = ApplyRowOp(fragment.ops[i], std::move(current));
      if (!next.ok()) return next.status();
      current = *std::move(next);
    }
    if (agg != nullptr) {
      return agg->ConsumeInput(current);
    }
    RETURN_NOT_OK(env.ReserveMemory(current.memory_bytes()));
    collected_bytes += current.memory_bytes();
    collected.push_back(std::move(current));
    return Status::OK();
  };

  double scan_start = env.sim()->Now();
  Result<engine::ScanStats> scan_stats = Status::Internal("scan not run");
  {
    cloud::EnvSpan scan_span(&env, "scan", "scan");
    scan_stats = co_await engine::S3ParquetScan(
        env, payload.self.files, scan_options, sink);
    if (!scan_stats.ok()) co_return scan_stats.status();
    if (scan_span.id() != 0) {
      env.tracer()->AddArg(scan_span.id(), "rows",
                           scan_stats->rows_emitted());
      env.tracer()->AddArg(scan_span.id(), "bytes",
                           scan_stats->bytes_moved());
    }
  }
  env.RecordPhase("scan", scan_start);
  metrics->registry.Merge(scan_stats->registry);
  // Post-scan pipeline CPU (row ops + aggregation).
  double pipeline_rows = static_cast<double>(scan_stats->rows_emitted());
  double pipeline_cpu =
      pipeline_rows * kRowOpCpuPerRow * static_cast<double>(stage1_end);
  if (agg != nullptr) pipeline_cpu += pipeline_rows * kAggCpuPerRow;
  co_await env.Compute(pipeline_cpu * env.data_scale);
  if (!pipeline_status.ok()) co_return pipeline_status;

  if (agg != nullptr) {
    co_return agg->PartialState();
  }

  auto stage1_out = engine::ConcatChunks(collected);
  env.ReleaseMemory(collected_bytes);
  collected.clear();
  if (!stage1_out.ok()) co_return stage1_out.status();
  if (exchange_at < 0) {
    co_return *std::move(stage1_out);
  }

  // ---- Exchange + stage 2 ----
  const PlanOp& ex_op = fragment.ops[static_cast<size_t>(exchange_at)];
  double ex_start = env.sim()->Now();
  Result<TableChunk> exchanged = Status::Internal("exchange not run");
  {
    cloud::EnvSpan ex_span(&env, "exchange", "exchange");
    if (ex_span.id() != 0) {
      env.tracer()->AddArg(ex_span.id(), "exchange_id",
                           ex_op.exchange->exchange_id);
    }
    ExchangeMetrics xm;
    exchanged = co_await RunExchange(
        env, *ex_op.exchange, static_cast<int>(payload.self.worker_id),
        static_cast<int>(payload.total_workers), *std::move(stage1_out), &xm);
    if (!exchanged.ok()) co_return exchanged.status();
    AddExchangeMetrics(metrics, xm, env.data_scale);
    if (ex_span.id() != 0) {
      env.tracer()->AddArg(
          ex_span.id(), "bytes_written",
          static_cast<int64_t>(static_cast<double>(xm.bytes_written()) *
                               env.data_scale));
      env.tracer()->AddArg(
          ex_span.id(), "bytes_read",
          static_cast<int64_t>(static_cast<double>(xm.bytes_read()) *
                               env.data_scale));
      env.tracer()->AddArg(ex_span.id(), "puts", xm.put_requests());
      env.tracer()->AddArg(ex_span.id(), "gets", xm.get_requests());
    }
  }
  env.RecordPhase("exchange", ex_start);

  co_return co_await RunPostOps(env, fragment,
                                static_cast<size_t>(exchange_at) + 1,
                                *std::move(exchanged));
}

/// Sends the (success or error) result message, spilling large payloads
/// to S3.
sim::Async<Status> SendResult(cloud::WorkerEnv& env,
                              const InvocationPayload& payload,
                              ResultMessage message) {
  cloud::EnvSpan span(&env, "worker", "send-result");
  // Request telemetry accumulated by this attempt's service clients.
  message.metrics.registry.Add(obs::Metric::kS3Retries,
                               env.request_stats().s3_retries);
  message.metrics.registry.Add(obs::Metric::kHedgedRequests,
                               env.request_stats().hedged_requests);
  message.metrics.registry.Add(obs::Metric::kHedgeWins,
                               env.request_stats().hedge_wins);
  if (message.inline_result.size() > kInlineResultLimit) {
    cloud::S3Client client(env.services().s3, env.net());
    message.spill_bucket = payload.plan_bucket;
    // Attempt-stable key: a re-run attempt overwrites with byte-identical
    // content (last-writer-wins PUT), so whichever result message the
    // driver takes first points at valid bytes.
    message.spill_key = "results/" + payload.query_id + "/" +
                        std::to_string(message.worker_id);
    Status put = co_await client.Put(
        message.spill_bucket, message.spill_key,
        Buffer::FromVector(std::move(message.inline_result)));
    message.inline_result.clear();
    if (!put.ok()) {
      message.status_code = put.code();
      message.status_message = "result spill failed: " + put.message();
      message.spill_bucket.clear();
      message.spill_key.clear();
    }
  }
  co_return co_await env.services().sqs->Send(
      env.net(), payload.result_queue, message.Serialize());
}

sim::Async<Status> WorkerMain(cloud::WorkerEnv& env, std::string raw) {
  auto payload_or = InvocationPayload::Parse(raw);
  if (!payload_or.ok()) {
    // Without a payload there is no result queue to report to.
    co_return payload_or.status();
  }
  InvocationPayload payload = *std::move(payload_or);
  env.data_scale = payload.data_scale;
  env.metrics().worker_id = payload.self.worker_id;
  env.metrics().attempt = payload.self.attempt;
  env.metrics().query_id = payload.query_id;
  env.hedge_config().enabled = payload.hedge_gets;

  // The attempt's root span: every operation span below parents under it,
  // and it carries the worker's Chrome track plus its drawn fate.
  cloud::EnvSpan worker_span(&env, "worker", "worker");
  if (worker_span.id() != 0) {
    obs::Tracer* t = env.tracer();
    t->SetTrack(worker_span.id(),
                static_cast<int>(payload.self.worker_id) + 1);
    t->AddArg(worker_span.id(), "worker_id",
              static_cast<int64_t>(payload.self.worker_id));
    t->AddArg(worker_span.id(), "attempt",
              static_cast<int64_t>(payload.self.attempt));
    if (env.fate().crash_site != cloud::CrashSite::kNone) {
      t->AddArg(worker_span.id(), "fault.crash_armed",
                static_cast<int64_t>(env.fate().crash_site));
    }
    if (env.fate().cpu_factor < 1.0 || env.fate().net_factor < 1.0) {
      t->AddArgF(worker_span.id(), "fault.straggler_cpu",
                 env.fate().cpu_factor);
      t->AddArgF(worker_span.id(), "fault.straggler_net",
                 env.fate().net_factor);
    }
  }

  // ---- Invocation tree: start the next generations first (§4.2). ----
  // Both layouts go through core/invocation_tree.h: legacy explicit
  // to_invoke lists and batched subtree ranges. An invoker-loss fate
  // consumed inside marks the environment crashed — the branch dies
  // silently, exactly like a worker crash.
  const bool has_children =
      !payload.to_invoke.empty() ||
      (payload.tree.active() &&
       payload.tree.subtree_end > payload.self.worker_id + 1);
  if (has_children) {
    cloud::EnvSpan invoke_span(&env, "worker", "invoke-children");
    double t0 = env.sim()->Now();
    auto invoked = co_await InvokeTreeChildren(env, payload);
    if (!invoked.ok()) {
      LAMBADA_LOG(Warning) << "child invocation failed: "
                           << invoked.status().ToString();
    }
    if (env.crashed()) {
      co_return Status::Cancelled("injected invoker crash (fault plan)");
    }
    env.RecordPhase("invoke-children", t0);
  }

  ResultMessage result;
  result.query_id = payload.query_id;
  result.worker_id = payload.self.worker_id;
  result.attempt = payload.self.attempt;

  // ---- Batched invocation: fetch this worker's own inputs (§4.2). ----
  // The payload carried only the subtree range; the per-worker input
  // table in S3 holds everything that differs per worker. Two small
  // ranged GETs: the offset pair, then the blob.
  if (payload.tree.active() && !payload.tree.inputs_key.empty()) {
    cloud::EnvSpan fetch_span(&env, "worker", "fetch-inputs");
    cloud::S3Client client(env.services().s3, env.net());
    Status fetched = Status::OK();
    const uint32_t w = payload.self.worker_id;
    auto offsets = co_await client.Get(payload.plan_bucket,
                                       payload.tree.inputs_key,
                                       WorkerInputOffsetPos(w), 16);
    if (!offsets.ok()) {
      fetched = offsets.status();
    } else {
      BinaryReader r((*offsets)->data(), (*offsets)->size());
      uint64_t blob_begin = 0;
      uint64_t blob_end = 0;
      auto b = r.GetU64();
      auto e = b.ok() ? r.GetU64() : b;
      if (!b.ok() || !e.ok()) {
        fetched = Status::IOError("truncated worker-input table header");
      } else {
        blob_begin = *b;
        blob_end = *e;
      }
      if (fetched.ok() && blob_end < blob_begin) {
        fetched = Status::IOError("inverted worker-input table offsets");
      }
      if (fetched.ok()) {
        auto blob = co_await client.Get(
            payload.plan_bucket, payload.tree.inputs_key,
            WorkerInputTableHeaderBytes(payload.total_workers) +
                static_cast<int64_t>(blob_begin),
            static_cast<int64_t>(blob_end - blob_begin));
        if (!blob.ok()) {
          fetched = blob.status();
        } else {
          auto mine = DecodeWorkerInputEntry((*blob)->data(), (*blob)->size());
          if (!mine.ok()) {
            fetched = mine.status();
          } else if (mine->worker_id != w) {
            fetched = Status::Invalid("worker-input table entry for worker " +
                                      std::to_string(mine->worker_id) +
                                      " fetched by worker " +
                                      std::to_string(w));
          } else {
            // Splice in everything per-worker except the attempt id,
            // which the invoking side stamped.
            payload.self.files = std::move(mine->files);
            payload.self.build_files = std::move(mine->build_files);
            payload.self.build_counts = std::move(mine->build_counts);
          }
        }
      }
    }
    if (!fetched.ok()) {
      result.status_code = fetched.code();
      result.status_message = "worker-input fetch failed: " + fetched.message();
      co_return co_await SendResult(env, payload, std::move(result));
    }
  }

  // ---- Fetch the plan fragment from shared storage. ----
  Result<PlanFragment> fragment = Status::Internal("plan not loaded");
  {
    cloud::EnvSpan fetch_span(&env, "worker", "fetch-plan");
    cloud::S3Client client(env.services().s3, env.net());
    auto plan_bytes =
        co_await client.Get(payload.plan_bucket, payload.plan_key);
    if (plan_bytes.ok()) {
      fragment = PlanFragment::Deserialize((*plan_bytes)->data(),
                                           (*plan_bytes)->size());
    } else {
      fragment = plan_bytes.status();
    }
  }
  if (!fragment.ok()) {
    result.status_code = fragment.status().code();
    result.status_message = fragment.status().message();
    co_return co_await SendResult(env, payload, std::move(result));
  }

  // ---- Execute. ----
  double exec_start = env.sim()->Now();
  auto out =
      co_await ExecuteFragment(env, *fragment, payload, &result.metrics);
  result.metrics.registry.Set(obs::Metric::kProcessingTime,
                              env.sim()->Now() - exec_start);
  // ---- Fault plan: an invocation fated to crash dies silently. ----
  // A crash consumed mid-exchange surfaces as env.crashed(); fragments
  // with no exchange (nothing consumed the armed site) die here instead,
  // just before reporting. Either way no result message is sent — the
  // driver only learns of the loss through its progress deadlines.
  if (env.crashed() ||
      env.MaybeCrash(cloud::CrashSite::kBeforeExchangeWrites) ||
      env.MaybeCrash(cloud::CrashSite::kDuringExchangeWrites) ||
      env.MaybeCrash(cloud::CrashSite::kAfterExchangeWrites)) {
    co_return Status::Cancelled("injected worker crash (fault plan)");
  }
  if (!out.ok()) {
    result.status_code = out.status().code();
    result.status_message = out.status().message();
  } else {
    result.inline_result = engine::SerializeChunk(*out);
  }
  co_return co_await SendResult(env, payload, std::move(result));
}

}  // namespace

cloud::Handler MakeWorkerHandler(exec::ExecContext exec) {
  return [exec](cloud::WorkerEnv& env, std::string payload) {
    env.exec = exec;
    return WorkerMain(env, std::move(payload));
  };
}

}  // namespace lambada::core
