#include "core/worker.h"

#include <memory>
#include <string>
#include <vector>

#include "cloud/object_store.h"
#include "core/exchange.h"
#include "core/messages.h"
#include "core/plan.h"
#include "engine/aggregate.h"
#include "engine/chunk_serde.h"
#include "engine/scan.h"

namespace lambada::core {

namespace {

using engine::TableChunk;

/// Per-row CPU cost of one vectorized row-wise operator (vCPU-seconds).
constexpr double kRowOpCpuPerRow = 2e-9;
/// Per-row CPU cost of hash-aggregation consume.
constexpr double kAggCpuPerRow = 5e-9;
/// Results larger than this spill to S3 (SQS limit is 256 KiB; leave room
/// for the envelope).
constexpr size_t kInlineResultLimit = 200 * 1024;

/// Applies a row-wise op (filter/map/select) to a chunk.
Result<TableChunk> ApplyRowOp(const PlanOp& op, TableChunk chunk) {
  switch (op.kind) {
    case PlanOp::Kind::kFilter: {
      ASSIGN_OR_RETURN(engine::Column mask, op.expr->Evaluate(chunk));
      std::vector<bool> keep(chunk.num_rows());
      for (size_t i = 0; i < keep.size(); ++i) {
        keep[i] = mask.ValueAsInt64(i) != 0;
      }
      return chunk.Filter(keep);
    }
    case PlanOp::Kind::kMap: {
      ASSIGN_OR_RETURN(engine::Column col, op.expr->Evaluate(chunk));
      std::vector<engine::Field> fields = chunk.schema()->fields();
      fields.push_back(engine::Field{op.name, col.type()});
      std::vector<engine::Column> cols = chunk.columns();
      cols.push_back(std::move(col));
      return TableChunk(
          std::make_shared<engine::Schema>(std::move(fields)),
          std::move(cols));
    }
    case PlanOp::Kind::kSelect: {
      std::vector<engine::Field> fields;
      std::vector<engine::Column> cols;
      for (size_t i = 0; i < op.exprs.size(); ++i) {
        ASSIGN_OR_RETURN(engine::Column col, op.exprs[i]->Evaluate(chunk));
        fields.push_back(engine::Field{op.names[i], col.type()});
        cols.push_back(std::move(col));
      }
      return TableChunk(
          std::make_shared<engine::Schema>(std::move(fields)),
          std::move(cols));
    }
    default:
      return Status::Internal("ApplyRowOp on non-row op");
  }
}

/// Executes the plan fragment over the worker's files; returns the
/// worker's partial result chunk.
sim::Async<Result<TableChunk>> ExecuteFragment(
    cloud::WorkerEnv& env, const PlanFragment& fragment,
    const InvocationPayload& payload, WorkerResultMetrics* metrics) {
  // Split the pipeline at the exchange (a pipeline breaker).
  int exchange_at = -1;
  for (size_t i = 0; i < fragment.ops.size(); ++i) {
    if (fragment.ops[i].kind == PlanOp::Kind::kExchange) {
      if (exchange_at >= 0) {
        co_return Status::NotImplemented(
            "multiple exchanges in one fragment");
      }
      exchange_at = static_cast<int>(i);
    }
  }
  size_t stage1_end = exchange_at >= 0 ? static_cast<size_t>(exchange_at)
                                       : fragment.ops.size();
  // A terminal aggregate in stage 1 (no exchange after it)?
  bool stage1_aggregates = exchange_at < 0 && fragment.EndsInAggregate();
  if (stage1_aggregates) --stage1_end;

  std::unique_ptr<engine::HashAggregator> agg;
  if (stage1_aggregates) {
    const PlanOp& op = fragment.ops.back();
    agg = std::make_unique<engine::HashAggregator>(op.group_by, op.aggs);
  }
  std::vector<TableChunk> collected;
  int64_t collected_bytes = 0;

  engine::ScanOptions scan_options;
  scan_options.projection = fragment.scan_projection;
  scan_options.filter = fragment.scan_filter;
  scan_options.row_group_parallelism =
      fragment.tuning.row_group_parallelism;
  scan_options.column_fetch_parallelism =
      fragment.tuning.column_fetch_parallelism;
  scan_options.source.chunk_bytes = fragment.tuning.chunk_bytes;
  scan_options.source.connections = fragment.tuning.connections_per_read;
  scan_options.prefetch_metadata = fragment.tuning.prefetch_metadata;

  // The fused pipeline: row ops + terminal consumer, run per scanned
  // chunk. CPU for these stages is charged after the scan completes
  // (chunk sizes are known then); the dominant in-scan costs
  // (decompression, residual filter) are charged inside the scan.
  Status pipeline_status = Status::OK();
  auto sink = [&](const TableChunk& chunk) -> Status {
    TableChunk current = chunk;
    for (size_t i = 0; i < stage1_end; ++i) {
      auto next = ApplyRowOp(fragment.ops[i], std::move(current));
      if (!next.ok()) return next.status();
      current = *std::move(next);
    }
    if (agg != nullptr) {
      return agg->ConsumeInput(current);
    }
    RETURN_NOT_OK(env.ReserveMemory(current.memory_bytes()));
    collected_bytes += current.memory_bytes();
    collected.push_back(std::move(current));
    return Status::OK();
  };

  double scan_start = env.sim()->Now();
  auto scan_stats = co_await engine::S3ParquetScan(
      env, payload.self.files, scan_options, sink);
  if (!scan_stats.ok()) co_return scan_stats.status();
  env.RecordPhase("scan", scan_start);
  metrics->rows_scanned = scan_stats->rows_scanned;
  metrics->rows_emitted = scan_stats->rows_emitted;
  metrics->row_groups_total = scan_stats->row_groups_total;
  metrics->row_groups_pruned = scan_stats->row_groups_pruned;
  // Post-scan pipeline CPU (row ops + aggregation).
  double pipeline_rows = static_cast<double>(scan_stats->rows_emitted);
  double pipeline_cpu =
      pipeline_rows * kRowOpCpuPerRow * static_cast<double>(stage1_end);
  if (agg != nullptr) pipeline_cpu += pipeline_rows * kAggCpuPerRow;
  co_await env.Compute(pipeline_cpu * env.data_scale);
  if (!pipeline_status.ok()) co_return pipeline_status;

  if (agg != nullptr) {
    co_return agg->PartialState();
  }

  auto stage1_out = engine::ConcatChunks(collected);
  env.ReleaseMemory(collected_bytes);
  collected.clear();
  if (!stage1_out.ok()) co_return stage1_out.status();
  if (exchange_at < 0) {
    co_return *std::move(stage1_out);
  }

  // ---- Exchange + stage 2 ----
  const PlanOp& ex_op = fragment.ops[static_cast<size_t>(exchange_at)];
  double ex_start = env.sim()->Now();
  auto exchanged = co_await RunExchange(
      env, *ex_op.exchange, static_cast<int>(payload.self.worker_id),
      static_cast<int>(payload.total_workers), *std::move(stage1_out));
  if (!exchanged.ok()) co_return exchanged.status();
  env.RecordPhase("exchange", ex_start);

  TableChunk current = *std::move(exchanged);
  size_t stage2_begin = static_cast<size_t>(exchange_at) + 1;
  size_t stage2_end = fragment.ops.size();
  bool stage2_aggregates = fragment.EndsInAggregate();
  if (stage2_aggregates) --stage2_end;
  for (size_t i = stage2_begin; i < stage2_end; ++i) {
    co_await env.Compute(static_cast<double>(current.num_rows()) *
                         kRowOpCpuPerRow * env.data_scale);
    auto next = ApplyRowOp(fragment.ops[i], std::move(current));
    if (!next.ok()) co_return next.status();
    current = *std::move(next);
  }
  if (stage2_aggregates) {
    const PlanOp& op = fragment.ops.back();
    engine::HashAggregator agg2(op.group_by, op.aggs);
    co_await env.Compute(static_cast<double>(current.num_rows()) *
                         kAggCpuPerRow * env.data_scale);
    if (current.num_rows() > 0) {
      CO_RETURN_NOT_OK(agg2.ConsumeInput(current));
    }
    co_return agg2.PartialState();
  }
  co_return current;
}

/// Sends the (success or error) result message, spilling large payloads
/// to S3.
sim::Async<Status> SendResult(cloud::WorkerEnv& env,
                              const InvocationPayload& payload,
                              ResultMessage message) {
  if (message.inline_result.size() > kInlineResultLimit) {
    cloud::S3Client client(env.services().s3, env.net());
    message.spill_bucket = payload.plan_bucket;
    message.spill_key = "results/" + payload.query_id + "/" +
                        std::to_string(message.worker_id);
    Status put = co_await client.Put(
        message.spill_bucket, message.spill_key,
        Buffer::FromVector(std::move(message.inline_result)));
    message.inline_result.clear();
    if (!put.ok()) {
      message.status_code = put.code();
      message.status_message = "result spill failed: " + put.message();
      message.spill_bucket.clear();
      message.spill_key.clear();
    }
  }
  co_return co_await env.services().sqs->Send(
      env.net(), payload.result_queue, message.Serialize());
}

sim::Async<Status> WorkerMain(cloud::WorkerEnv& env, std::string raw) {
  auto payload_or = InvocationPayload::Parse(raw);
  if (!payload_or.ok()) {
    // Without a payload there is no result queue to report to.
    co_return payload_or.status();
  }
  InvocationPayload payload = *std::move(payload_or);
  env.data_scale = payload.data_scale;
  env.metrics().worker_id = payload.self.worker_id;

  // ---- Invocation tree: start the second generation first (§4.2). ----
  if (!payload.to_invoke.empty()) {
    double t0 = env.sim()->Now();
    for (const auto& child : payload.to_invoke) {
      InvocationPayload child_payload = payload;
      child_payload.self = child;
      child_payload.to_invoke.clear();
      std::string serialized = child_payload.Serialize();
      double backoff = 0.05;
      for (int attempt = 0;; ++attempt) {
        Status s = co_await env.services().faas->Invoke(
            env.invoker_profile(), &env.rng(), env.function_name(), serialized);
        if (s.ok() || !s.IsRetriable() || attempt >= 8) {
          if (!s.ok()) {
            LAMBADA_LOG(Warning)
                << "second-generation invoke failed: " << s.ToString();
          }
          break;
        }
        co_await sim::Sleep(env.sim(),
                            backoff * (0.5 + env.rng().NextDouble()));
        backoff *= 2;
      }
    }
    env.RecordPhase("invoke-children", t0);
  }

  ResultMessage result;
  result.query_id = payload.query_id;
  result.worker_id = payload.self.worker_id;

  // ---- Fetch the plan fragment from shared storage. ----
  cloud::S3Client client(env.services().s3, env.net());
  auto plan_bytes =
      co_await client.Get(payload.plan_bucket, payload.plan_key);
  Result<PlanFragment> fragment = Status::Internal("plan not loaded");
  if (plan_bytes.ok()) {
    fragment = PlanFragment::Deserialize((*plan_bytes)->data(),
                                         (*plan_bytes)->size());
  } else {
    fragment = plan_bytes.status();
  }
  if (!fragment.ok()) {
    result.status_code = fragment.status().code();
    result.status_message = fragment.status().message();
    co_return co_await SendResult(env, payload, std::move(result));
  }

  // ---- Execute. ----
  double exec_start = env.sim()->Now();
  auto out =
      co_await ExecuteFragment(env, *fragment, payload, &result.metrics);
  result.metrics.processing_time_s = env.sim()->Now() - exec_start;
  if (!out.ok()) {
    result.status_code = out.status().code();
    result.status_message = out.status().message();
  } else {
    result.inline_result = engine::SerializeChunk(*out);
  }
  co_return co_await SendResult(env, payload, std::move(result));
}

}  // namespace

cloud::Handler MakeWorkerHandler() {
  return [](cloud::WorkerEnv& env, std::string payload) {
    return WorkerMain(env, std::move(payload));
  };
}

}  // namespace lambada::core
