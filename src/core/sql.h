#ifndef LAMBADA_CORE_SQL_H_
#define LAMBADA_CORE_SQL_H_

#include <string>

#include "common/status.h"
#include "core/dataflow.h"
#include "sim/async.h"

namespace lambada::core {

/// Compiles a subset of SQL into a dataflow Query. The paper's framework
/// "supports a number of frontend languages, such as (a subset of) SQL
/// and a UDF-based library interface" (Section 3.2); this is the SQL one.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT select_item [, select_item]*
///   FROM 's3://bucket/pattern'
///   [[[LEFT] SEMI] JOIN 's3://bucket/pattern'
///     ON probe_col = build_col [AND probe_col = build_col]*]*
///   [WHERE predicate]
///   [GROUP BY column [, column]*]
///   [HAVING predicate]
///
///   select_item := expr [AS name]
///                | SUM(expr) | MIN(expr) | MAX(expr) | AVG(expr)
///                | COUNT(*)            each with optional [AS name]
///   expr        := arithmetic over columns and numeric literals with
///                  + - * /, comparisons = != <> < <= > >=, AND, OR,
///                  BETWEEN a AND b, and parentheses
///
/// Each JOIN compiles to the distributed hash join; a chain of JOIN
/// clauses becomes a multi-join pipeline that the cost-based optimizer
/// (core/optimizer.h) orders and assigns partitioned or broadcast
/// exchanges per join. The ON clause takes equality conjunctions only,
/// with the pipeline-so-far's column on the left of each `=` and the
/// joined relation's on the right (column names are disjoint across our
/// numeric TPC-H relations, so there is no table-qualification syntax);
/// residual predicates belong in WHERE, which is evaluated after the
/// joins and may reference any side. Each join's output drops the
/// build-side key columns (their values equal the probe keys);
/// references to them in later ON clauses / WHERE / SELECT / GROUP BY /
/// HAVING are rewritten to the probe-key name, so both spellings work.
/// HAVING filters the aggregated result; it runs in the driver scope and
/// references the SELECT list's output names.
///
/// Planning caveat: without relation schemas the SQL layer cannot tell
/// which WHERE conjuncts belong to which side, so in a join query the
/// whole WHERE evaluates after the join and both scans read all columns
/// — the unfiltered probe relation traverses the exchange. Queries that
/// need pre-join push-down (like workload::TpchQ12) should use the
/// dataflow API, where Filter-before-JoinWith and a build-side Select
/// give both scans exact predicates and projections.
///
/// Aggregates and plain expressions cannot be mixed unless the plain
/// expressions are GROUP BY keys. DATE 'YYYY-MM-DD' literals are turned
/// into day numbers compatible with the TPC-H date columns.
Result<Query> ParseSql(const std::string& sql);

/// Compiles `sql` (which must start with the EXPLAIN keyword, followed by
/// a query in the grammar above) and renders the physical plan it would
/// run as deterministic text — Query::Explain() for SQL. No data is read
/// and nothing executes.
Result<std::string> ExplainSql(const std::string& sql);

class Driver;      // core/driver.h
struct RunOptions;

/// Compiles `sql` (which must start with EXPLAIN ANALYZE, followed by a
/// query in the grammar above), RUNS it through `driver` with tracing
/// enabled, and renders the plan annotated with the actuals — rows,
/// modeled bytes, per-exchange traffic, attempts, per-operator virtual
/// time (core/analyze.h). Must be called from a simulation coroutine;
/// drive the simulator to completion around it like any Driver::Run.
/// `sql` and `options` must outlive the await (same contract as Run);
/// pass named lvalues, not call-site temporaries — GCC 12 double-destroys
/// full-expression temporaries held across a co_await suspension.
sim::Async<Result<std::string>> ExplainAnalyzeSql(Driver* driver,
                                                  const std::string& sql,
                                                  const RunOptions& options);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_SQL_H_
