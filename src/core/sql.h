#ifndef LAMBADA_CORE_SQL_H_
#define LAMBADA_CORE_SQL_H_

#include <string>

#include "common/status.h"
#include "core/dataflow.h"

namespace lambada::core {

/// Compiles a subset of SQL into a dataflow Query. The paper's framework
/// "supports a number of frontend languages, such as (a subset of) SQL
/// and a UDF-based library interface" (Section 3.2); this is the SQL one.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT select_item [, select_item]*
///   FROM 's3://bucket/pattern'
///   [WHERE predicate]
///   [GROUP BY column [, column]*]
///
///   select_item := expr [AS name]
///                | SUM(expr) | MIN(expr) | MAX(expr) | AVG(expr)
///                | COUNT(*)            each with optional [AS name]
///   expr        := arithmetic over columns and numeric literals with
///                  + - * /, comparisons = != <> < <= > >=, AND, OR,
///                  BETWEEN a AND b, and parentheses
///
/// Aggregates and plain expressions cannot be mixed unless the plain
/// expressions are GROUP BY keys. DATE 'YYYY-MM-DD' literals are turned
/// into day numbers compatible with the TPC-H date columns.
Result<Query> ParseSql(const std::string& sql);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_SQL_H_
