#ifndef LAMBADA_CORE_OPTIMIZER_H_
#define LAMBADA_CORE_OPTIMIZER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "core/logical_plan.h"
#include "core/planner.h"
#include "engine/expr.h"
#include "models/costmodel.h"

namespace lambada::core {

// ---------------------------------------------------------------------------
// The cost-based join optimizer
// ---------------------------------------------------------------------------
// Consumes the logical plan IR (core/logical_plan.h) and emits a physical
// query. Decisions, in order:
//
//  1. **Selection placement.** Filters floated between/after joins are
//     pushed into the single relation whose columns they reference (build
//     sides of inner joins, or the driving relation); OR-of-ANDs
//     predicates additionally push their per-relation implied disjunction
//     (the Q19 rewrite) while the original stays as a residual. Residuals
//     re-enter the pipeline at the earliest join prefix providing their
//     columns.
//  2. **Join order.** With per-relation stats, join edges are enumerated
//     with dynamic programming over edge subsets (left-deep, up to
//     `max_dp_relations` edges; greedy beyond), minimizing summed modeled
//     exchange traffic. Feasibility tracks key provenance: an edge whose
//     probe key is emitted by another build relation must follow that
//     edge. Exact cost ties preserve the query's syntax order, so the
//     optimizer is a no-op when it has no information to act on.
//  3. **Exchange strategy.** Each join independently picks partitioned
//     (both sides traverse the hash exchange) or broadcast (every worker
//     reads the whole build relation; no exchange) by comparing modeled
//     traffic (models::PartitionedExchangeTraffic vs BroadcastTraffic).
//     Unknown stats or an unknown worker count fall back to partitioned.
//
// Projection push-down then runs over the assembled multi-join pipeline,
// and the whole plan is rendered into PhysicalQuery::explain_text.

/// Per-relation statistics the driver assembles before planning (from file
/// listings and the stats index). Zero/empty means unknown.
struct RelationStats {
  double rows = 0;      ///< Total rows across matched files.
  double bytes = 0;     ///< Total post-encoding bytes across matched files.
  int64_t files = 0;    ///< Matched file count.
  /// Min/max per column, where the stats index has them.
  std::map<std::string, engine::Interval> columns;
};

/// Everything the optimizer knows about base relations, keyed by the exact
/// input glob the query names. Missing entries mean "no stats": the
/// optimizer still plans, with byte-based fallbacks and partitioned joins.
struct Catalog {
  std::map<std::string, RelationStats> relations;
};

/// Forcing knob for experiments (the BENCH_join ablation): kAuto lets the
/// cost model decide per join.
enum class JoinStrategyOverride : uint8_t {
  kAuto = 0,
  kForcePartitioned = 1,
  kForceBroadcast = 2,
};

struct OptimizerOptions {
  ScanTuning tuning;
  /// Fleet size the query will run with; 0 = unknown (disables the
  /// broadcast alternative, whose cost scales with the worker count).
  int workers = 0;
  /// Join-order DP bound: up to this many join edges are enumerated
  /// exactly; beyond it a greedy ordering is used.
  int max_dp_relations = 6;
  JoinStrategyOverride strategy = JoinStrategyOverride::kAuto;
  models::ExchangeTrafficParams traffic;
};

/// Compiles a join query into a physical plan (see file comment). The
/// query must contain at least one JoinWith; the planner's single-table
/// path (PlanQuery) handles the rest and never calls this.
Result<PhysicalQuery> OptimizeQuery(const Query& query, const Catalog& catalog,
                                    const OptimizerOptions& options);

/// Renders the chosen plan as deterministic text (scan filters and
/// projections, join order, per-join strategy decisions with both modeled
/// costs, aggregate, HAVING). Works for join-free queries too, via the
/// planner's single-table path. Backs Query::Explain() and SQL EXPLAIN.
Result<std::string> ExplainQuery(const Query& query,
                                 const Catalog& catalog = {},
                                 const OptimizerOptions& options = {});

/// Estimated fraction of rows satisfying `predicate`, given per-column
/// bounds and the relation's row count (both may be unknown). Conjunction
/// multiplies, disjunction adds with overlap correction, comparisons
/// against literals interpolate into the column's [min, max]; anything
/// unanalyzable contributes a fixed default. Exposed for tests.
double EstimateSelectivity(const engine::ExprPtr& predicate,
                           const std::map<std::string, engine::Interval>& cols,
                           double rows);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_OPTIMIZER_H_
