#include "core/invocation_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace lambada::core {

namespace {

/// Capacity of one generation-1 subtree when every inner level branches
/// `f` in a depth-`depth` tree (saturating).
uint64_t Cap1ForFanout(uint32_t f, int depth) {
  uint64_t cap = 1;
  for (int g = depth - 1; g >= 1; --g) {
    cap = 1 + static_cast<uint64_t>(f) * cap;
    if (cap > std::numeric_limits<uint32_t>::max()) {
      return std::numeric_limits<uint32_t>::max();
    }
  }
  return cap;
}

/// The fanout vector of one depth-`depth` plan for `workers` ids.
std::vector<uint32_t> FanoutForDepth(uint32_t workers, int depth) {
  if (depth <= 1) return {workers};
  if (depth == 2) {
    // The historical two-level grouping, byte-for-byte: group =
    // ceil(sqrt(P)) ids per generation-1 root, root included.
    const uint32_t group = static_cast<uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(workers))));
    const uint32_t roots = (workers + group - 1) / group;
    return {roots, group - 1};
  }
  // Deeper trees: the smallest uniform inner fanout f whose f roots cover
  // the fleet, ~P^(1/depth) — every level shares the serial invoke work.
  uint32_t f = 1;
  while (static_cast<uint64_t>(f) * Cap1ForFanout(f, depth) <
         static_cast<uint64_t>(workers)) {
    ++f;
  }
  const uint64_t cap1 = Cap1ForFanout(f, depth);
  const uint32_t roots =
      static_cast<uint32_t>((static_cast<uint64_t>(workers) + cap1 - 1) / cap1);
  std::vector<uint32_t> fanout(static_cast<size_t>(depth), f);
  fanout[0] = roots;
  return fanout;
}

}  // namespace

uint32_t TreePlan::SubtreeCapacity(int generation) const {
  const int d = depth();
  if (generation < 1 || generation > d) return 0;
  uint64_t cap = 1;
  for (int g = d - 1; g >= generation; --g) {
    cap = 1 + static_cast<uint64_t>(fanout[static_cast<size_t>(g)]) * cap;
    if (cap > std::numeric_limits<uint32_t>::max()) {
      return std::numeric_limits<uint32_t>::max();
    }
  }
  return static_cast<uint32_t>(cap);
}

TreePlan PlanInvocationTree(uint32_t workers, const TreeOptions& options) {
  TreePlan plan;
  plan.workers = workers;
  if (workers == 0) return plan;
  const int max_depth = std::max(1, options.max_depth);
  int depth = std::min(std::max(0, options.depth), max_depth);
  if (depth == 0) {
    if (workers <= options.direct_invoke_max) {
      depth = 1;
    } else {
      // Pick the depth with the best modeled all-running time; ties go to
      // the shallower tree (fewer serial container-start hops to recover
      // through).
      double best = std::numeric_limits<double>::infinity();
      for (int d = 2; d <= max_depth; ++d) {
        const double t = models::TreeAllRunningTime(FanoutForDepth(workers, d),
                                                    workers, options.cost);
        if (t < best) {
          best = t;
          depth = d;
        }
      }
    }
  }
  plan.fanout = FanoutForDepth(workers, depth);
  return plan;
}

std::vector<TreeNode> TreeRoots(const TreePlan& plan) {
  std::vector<TreeNode> roots;
  if (plan.workers == 0 || plan.fanout.empty()) return roots;
  const uint64_t cap1 = plan.SubtreeCapacity(1);
  roots.reserve(static_cast<size_t>((plan.workers + cap1 - 1) / cap1));
  for (uint64_t start = 0; start < plan.workers; start += cap1) {
    TreeNode n;
    n.begin = static_cast<uint32_t>(start);
    n.end = static_cast<uint32_t>(
        std::min<uint64_t>(start + cap1, plan.workers));
    n.generation = 1;
    roots.push_back(n);
  }
  return roots;
}

Result<std::vector<TreeNode>> TreeChildren(const TreePlan& plan,
                                           const TreeNode& node) {
  if (plan.workers == 0 || plan.fanout.empty()) {
    return Status::Invalid("empty invocation-tree plan");
  }
  const int depth = plan.depth();
  if (node.generation < 1 || static_cast<int>(node.generation) > depth) {
    return Status::Invalid("tree node generation " +
                           std::to_string(node.generation) +
                           " outside depth-" + std::to_string(depth) +
                           " plan");
  }
  if (node.end <= node.begin) {
    return Status::Invalid("empty or inverted subtree range");
  }
  if (node.end > plan.workers) {
    return Status::Invalid("subtree range [" + std::to_string(node.begin) +
                           ", " + std::to_string(node.end) +
                           ") beyond the fleet of " +
                           std::to_string(plan.workers));
  }
  const uint64_t cap = plan.SubtreeCapacity(static_cast<int>(node.generation));
  if (node.size() > cap) {
    // A range wider than the generation's capacity would overlap the next
    // sibling's claim.
    return Status::Invalid("subtree range of " + std::to_string(node.size()) +
                           " ids exceeds the generation-" +
                           std::to_string(node.generation) + " capacity of " +
                           std::to_string(cap));
  }
  std::vector<TreeNode> children;
  if (static_cast<int>(node.generation) == depth) return children;
  const uint64_t child_cap =
      plan.SubtreeCapacity(static_cast<int>(node.generation) + 1);
  for (uint64_t start = node.begin + 1; start < node.end;
       start += child_cap) {
    TreeNode c;
    c.begin = static_cast<uint32_t>(start);
    c.end =
        static_cast<uint32_t>(std::min<uint64_t>(start + child_cap, node.end));
    c.generation = node.generation + 1;
    children.push_back(c);
  }
  if (children.size() > plan.fanout[node.generation]) {
    return Status::Invalid("branching bound exceeded: " +
                           std::to_string(children.size()) +
                           " children of a generation-" +
                           std::to_string(node.generation) + " node, bound " +
                           std::to_string(plan.fanout[node.generation]));
  }
  return children;
}

sim::Async<Result<int>> InvokeTreeChildren(cloud::WorkerEnv& env,
                                           const InvocationPayload& payload) {
  // Derive the children first: the subtree ranges of a tree assignment,
  // or the explicit WorkerInputs of a legacy two-level payload.
  std::vector<InvocationPayload> children;
  int generation = 1;
  if (payload.tree.active()) {
    generation = static_cast<int>(payload.tree.generation);
    TreePlan plan;
    plan.workers = payload.total_workers;
    plan.fanout = payload.tree.fanout;
    TreeNode node;
    node.begin = payload.self.worker_id;
    node.end = payload.tree.subtree_end;
    node.generation = payload.tree.generation;
    auto nodes = TreeChildren(plan, node);
    if (!nodes.ok()) co_return nodes.status();
    children.reserve(nodes->size());
    for (const TreeNode& c : *nodes) {
      InvocationPayload child = payload;
      child.self = WorkerInput{};
      child.self.worker_id = c.begin;
      child.self.attempt = payload.self.attempt;
      child.tree.subtree_end = c.end;
      child.tree.generation = c.generation;
      children.push_back(std::move(child));
    }
  } else {
    children.reserve(payload.to_invoke.size());
    for (const WorkerInput& in : payload.to_invoke) {
      InvocationPayload child = payload;
      child.self = in;
      child.to_invoke.clear();
      children.push_back(std::move(child));
    }
  }
  if (children.empty()) co_return 0;

  // Invoker-loss fate: only nodes that actually invoke children consult
  // the plan's invoker stream, so leaf-heavy fleets draw nothing extra.
  cloud::CrashSite fate = cloud::CrashSite::kNone;
  if (env.fault_injector() != nullptr) {
    fate = env.fault_injector()->DrawInvokerFate(generation);
  }
  if (fate == cloud::CrashSite::kBeforeInvokingChildren) {
    env.CrashNow();
    co_return 0;
  }
  size_t stop = children.size();
  if (fate == cloud::CrashSite::kWhileInvokingChildren) {
    stop = children.size() / 2;  // Die with half the branch started.
  }

  int invoked = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    if (i >= stop) {
      env.CrashNow();
      co_return invoked;
    }
    std::string serialized = children[i].Serialize();
    double backoff = 0.05;
    for (int attempt = 0;; ++attempt) {
      Status s = co_await env.services().faas->Invoke(
          env.invoker_profile(), &env.rng(), env.function_name(), serialized,
          env.attribution);
      if (s.ok() || !s.IsRetriable() || attempt >= 8) {
        if (!s.ok()) {
          LAMBADA_LOG(Warning)
              << "child invoke failed: " << s.ToString();
        }
        break;
      }
      co_await sim::Sleep(env.sim(),
                          backoff * (0.5 + env.rng().NextDouble()));
      backoff *= 2;
    }
    ++invoked;
  }
  co_return invoked;
}

std::vector<uint8_t> EncodeWorkerInputTable(
    const std::vector<WorkerInput>& inputs) {
  BinaryWriter blobs;
  std::vector<uint64_t> offsets;
  offsets.reserve(inputs.size() + 1);
  offsets.push_back(0);
  for (const WorkerInput& in : inputs) {
    in.Serialize(&blobs);
    offsets.push_back(blobs.size());
  }
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(inputs.size()));
  for (uint64_t off : offsets) w.PutU64(off);
  w.PutRaw(blobs.bytes().data(), blobs.size());
  return w.Take();
}

Result<WorkerInput> DecodeWorkerInputEntry(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(WorkerInput in, WorkerInput::Deserialize(&r));
  if (r.remaining() != 0) {
    return Status::IOError("worker-input entry trailing bytes");
  }
  return in;
}

}  // namespace lambada::core
