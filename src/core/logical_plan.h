#ifndef LAMBADA_CORE_LOGICAL_PLAN_H_
#define LAMBADA_CORE_LOGICAL_PLAN_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataflow.h"
#include "core/plan.h"

namespace lambada::core {

// ---------------------------------------------------------------------------
// The logical plan IR
// ---------------------------------------------------------------------------
// Both frontends — the SQL layer and the Query builder — lower into this
// representation before any physical decision is made: an n-ary join graph
// (one driving relation plus one build relation per equi-join edge) with
// the query's predicates lifted out of operator order. The optimizer
// (core/optimizer.h) works exclusively on this IR: it attributes filters
// to relations, orders the join edges, picks an exchange strategy per
// edge, and only then emits the physical PlanFragment. The linear Query
// op chain is thus *syntax*; this IR is the first form where the join
// graph is explicit.

/// One base relation of the join graph: an input glob plus the row-wise
/// ops the query applies to it before any join (Filter/Map/Select only).
struct LogicalRelation {
  std::string pattern;
  std::vector<PlanOp> ops;
};

/// One equi-join edge. The probe side is whatever the driving relation
/// has accumulated by the time the edge executes; probe_keys may name
/// columns of the driving relation or of an earlier edge's build output.
struct LogicalJoinEdge {
  /// Index of the build relation in LogicalPlan::relations (>= 1).
  size_t build_relation = 1;
  std::vector<std::string> probe_keys;
  std::vector<std::string> build_keys;
  engine::JoinType type = engine::JoinType::kInner;
  /// User-supplied exchange template (levels, buckets, combining).
  ExchangeSpec exchange;
};

struct LogicalPlan {
  /// relations[0] is the driving (probe) relation; one more per edge.
  std::vector<LogicalRelation> relations;
  /// Join edges in syntax order (the optimizer may reorder them).
  std::vector<LogicalJoinEdge> joins;
  /// Filters the query states between or after joins, floated out of
  /// operator order: the optimizer pushes them into relations where it
  /// can and re-places the rest at the earliest join prefix that
  /// provides their columns.
  std::vector<engine::ExprPtr> filters;
  /// Ordered Map/Select/Filter tail applied after the last join and all
  /// floated filters (a Filter lands here instead of `filters` once a
  /// Map/Select precedes it — it may read a derived column).
  std::vector<PlanOp> tail;
  /// Terminal aggregate, if any.
  std::optional<PlanOp> aggregate;
  /// Driver-scope filters applied to the finalized aggregate (HAVING).
  std::vector<PlanOp> having;
};

/// Lowers a Query into the IR. Join-free queries come back with every op
/// in relations[0].ops / tail (the planner's single-table path consumes
/// the op chain directly and bypasses the optimizer entirely). For join
/// queries this validates the shape the optimizer supports: row ops only
/// before the first join and on build sides, filters-only between joins,
/// no explicit exchanges, aggregate terminal up to trailing HAVING
/// filters.
Result<LogicalPlan> BuildLogicalPlan(const Query& query);

// ---------------------------------------------------------------------------
// Rewrite helpers shared by the planner and the optimizer
// ---------------------------------------------------------------------------

/// Columns required by one op (its own expressions; a kJoin contributes
/// its probe keys — the build side is planned separately).
void CollectOpColumns(const PlanOp& op, std::set<std::string>* cols);

/// Names of columns *introduced* by an op (Map/Select/Aggregate outputs):
/// these must not be pushed into the scan projection.
void CollectOpOutputs(const PlanOp& op, std::set<std::string>* produced);

/// Folds the leading kFilter run of ops[*first_kept..] into one pushed-down
/// scan predicate and advances *first_kept past it.
engine::ExprPtr FoldLeadingFilters(const std::vector<PlanOp>& ops,
                                   size_t* first_kept);

/// Projection push-down over a linear op run: base columns referenced by
/// the pushed filter, the op run, and `extra_columns`, excluding derived
/// columns.
std::vector<std::string> PushdownProjection(
    const engine::ExprPtr& scan_filter, const std::vector<PlanOp>& ops,
    const std::vector<std::string>& extra_columns);

bool IsRowOp(const PlanOp& op);

/// The closed output-column set of a row-op run, if any: a Select closes
/// the set to its names, later Maps extend it; without a Select the set
/// stays open (nullopt — the scan's columns flow through).
std::optional<std::set<std::string>> ClosedOutputSet(
    const std::vector<PlanOp>& ops);

/// Join keys must survive their side's pipeline: catching a key dropped
/// by a Select at plan time saves launching a fleet that can only fail in
/// the exchange.
Status ValidateKeysSurvive(const std::optional<std::set<std::string>>& closed,
                           const std::vector<std::string>& keys,
                           const char* side);

/// Plans the build side of a join: filter/projection push-down into the
/// build scan, and the build exchange keyed on build_keys. Returns the set
/// of columns the build side is known to emit, or nullopt when that set is
/// open (no terminal Select) — the caller then cannot attribute post-join
/// column references to a side and must scan conservatively.
Result<std::optional<std::set<std::string>>> PlanBuildSide(JoinSpec* join);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_LOGICAL_PLAN_H_
