#include "core/stats_index.h"

#include <algorithm>
#include <set>

#include "common/binio.h"

namespace lambada::core {

namespace {

std::string ItemKey(const std::string& dataset, const std::string& column) {
  return dataset + "#" + column;
}

}  // namespace

Status StatsIndex::RegisterFileDirect(const std::string& dataset,
                                      const std::string& file_key,
                                      const format::FileMetadata& metadata) {
  // Fold all row groups of the file into one [min, max] per column.
  for (size_t c = 0; c < metadata.schema.num_fields(); ++c) {
    const auto& field = metadata.schema.field(c);
    bool valid = false;
    double mn = 0, mx = 0;
    for (const auto& rg : metadata.row_groups) {
      const auto& stats = rg.columns[c].stats;
      if (!stats.valid) continue;
      double lo, hi;
      if (field.type == engine::DataType::kInt64) {
        lo = static_cast<double>(stats.min_i64);
        hi = static_cast<double>(stats.max_i64);
      } else {
        lo = stats.min_f64;
        hi = stats.max_f64;
      }
      if (!valid) {
        mn = lo;
        mx = hi;
        valid = true;
      } else {
        mn = std::min(mn, lo);
        mx = std::max(mx, hi);
      }
    }
    if (!valid) continue;
    // Append to the (dataset, column) item.
    std::string key = ItemKey(dataset, field.name);
    std::string current =
        std::move(ddb_->GetDirect(table_, key)).ValueOr("");
    BinaryWriter w;
    w.PutRaw(current.data(), current.size());
    w.PutString(file_key);
    w.PutF64(mn);
    w.PutF64(mx);
    w.PutI64(static_cast<int64_t>(metadata.num_rows));
    auto bytes = w.Take();
    RETURN_NOT_OK(ddb_->PutDirect(
        table_, key, std::string(bytes.begin(), bytes.end())));
  }
  return Status::OK();
}

sim::Async<Result<std::vector<StatsIndex::FileBounds>>> StatsIndex::Lookup(
    cloud::NetContext ctx, std::string dataset, std::string column) {
  auto item = co_await ddb_->Get(ctx, table_, ItemKey(dataset, column));
  if (!item.ok()) co_return item.status();
  BinaryReader r(reinterpret_cast<const uint8_t*>(item->data()),
                 item->size());
  std::vector<FileBounds> out;
  while (r.remaining() > 0) {
    FileBounds fb;
    auto key = r.GetString();
    if (!key.ok()) co_return key.status();
    fb.file_key = *key;
    auto mn = r.GetF64();
    if (!mn.ok()) co_return mn.status();
    fb.min = *mn;
    auto mx = r.GetF64();
    if (!mx.ok()) co_return mx.status();
    fb.max = *mx;
    auto rows = r.GetI64();
    if (!rows.ok()) co_return rows.status();
    fb.rows = *rows;
    out.push_back(std::move(fb));
  }
  co_return out;
}

sim::Async<Result<std::vector<std::string>>> StatsIndex::PruneFiles(
    cloud::NetContext ctx, std::string dataset,
    std::vector<std::string> files, engine::ExprPtr predicate) {
  auto bounds = engine::ExtractColumnBounds(predicate);
  std::set<std::string> pruned;
  for (const auto& [column, interval] : bounds) {
    auto lookup = co_await Lookup(ctx, dataset, column);
    if (!lookup.ok()) {
      if (lookup.status().IsNotFound()) continue;  // Column not indexed.
      co_return lookup.status();
    }
    for (const auto& fb : *lookup) {
      if (!interval.Intersects(fb.min, fb.max)) {
        pruned.insert(fb.file_key);
      }
    }
  }
  std::vector<std::string> kept;
  kept.reserve(files.size());
  for (auto& f : files) {
    if (pruned.find(f) == pruned.end()) {
      kept.push_back(std::move(f));
    }
  }
  co_return kept;
}

}  // namespace lambada::core
