#ifndef LAMBADA_CORE_WORKER_H_
#define LAMBADA_CORE_WORKER_H_

#include "cloud/faas.h"

namespace lambada::core {

/// Builds the Lambda event handler of a Lambada worker (Section 3.3):
/// it parses the invocation payload, invokes second-generation workers of
/// the invocation tree (Section 4.2), fetches the plan fragment from S3,
/// executes it (scan -> pipeline -> optional exchange -> partial
/// aggregation), and posts the result — or the error — to the result
/// queue in SQS.
cloud::Handler MakeWorkerHandler();

}  // namespace lambada::core

#endif  // LAMBADA_CORE_WORKER_H_
