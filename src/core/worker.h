#ifndef LAMBADA_CORE_WORKER_H_
#define LAMBADA_CORE_WORKER_H_

#include "cloud/faas.h"
#include "exec/exec_context.h"

namespace lambada::core {

/// Builds the Lambda event handler of a Lambada worker (Section 3.3):
/// it parses the invocation payload, invokes second-generation workers of
/// the invocation tree (Section 4.2), fetches the plan fragment from S3,
/// executes it (scan -> pipeline -> exchange rounds -> join / partial
/// aggregation), and posts the result — or the error — to the result
/// queue in SQS.
///
/// `exec` configures the worker-local morsel runtime (host-side like
/// data_scale: it never travels in payloads). The serial default keeps
/// virtual-time schedules identical to the single-threaded runtime; any
/// other setting changes timing only, never result bytes.
cloud::Handler MakeWorkerHandler(exec::ExecContext exec = {});

}  // namespace lambada::core

#endif  // LAMBADA_CORE_WORKER_H_
