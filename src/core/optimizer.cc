#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lambada::core {

namespace {

using engine::BinaryOp;
using engine::Expr;
using engine::ExprPtr;
using engine::Interval;

// ---------------------------------------------------------------------------
// Selectivity estimation
// ---------------------------------------------------------------------------

bool LiteralValue(const ExprPtr& e, double* v) {
  if (e->kind() == Expr::Kind::kLiteralInt) {
    *v = static_cast<double>(e->int_value());
    return true;
  }
  if (e->kind() == Expr::Kind::kLiteralFloat) {
    *v = e->float_value();
    return true;
  }
  return false;
}

/// Mirror of a comparison when the literal is on the left: `lit < col`
/// holds iff `col > lit`.
BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq / kNe are symmetric.
  }
}

constexpr double kDefaultEqSel = 0.1;
constexpr double kDefaultRangeSel = 0.3;
constexpr double kDefaultOtherSel = 0.3;

double ColumnCompareSelectivity(
    BinaryOp op, const std::string& col, double lit,
    const std::map<std::string, Interval>& cols, double rows) {
  auto it = cols.find(col);
  bool bounded = it != cols.end() && std::isfinite(it->second.lo) &&
                 std::isfinite(it->second.hi) &&
                 it->second.hi >= it->second.lo;
  if (!bounded) {
    switch (op) {
      case BinaryOp::kEq: return kDefaultEqSel;
      case BinaryOp::kNe: return 1.0 - kDefaultEqSel;
      default: return kDefaultRangeSel;
    }
  }
  double lo = it->second.lo, hi = it->second.hi;
  double width = hi - lo;
  auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      if (width <= 0) return lit >= lo ? 1.0 : 0.0;
      return clamp01((lit - lo) / width);
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      if (width <= 0) return lit <= hi ? 1.0 : 0.0;
      return clamp01((hi - lit) / width);
    case BinaryOp::kEq: {
      if (lit < lo || lit > hi) return 0.0;
      double domain = width + 1.0;
      double ndv = rows > 0 ? std::min(rows, domain) : domain;
      return 1.0 / std::max(1.0, ndv);
    }
    case BinaryOp::kNe: {
      double eq = ColumnCompareSelectivity(BinaryOp::kEq, col, lit, cols,
                                           rows);
      return 1.0 - eq;
    }
    default:
      return kDefaultOtherSel;
  }
}

}  // namespace

double EstimateSelectivity(const ExprPtr& predicate,
                           const std::map<std::string, Interval>& cols,
                           double rows) {
  if (predicate == nullptr) return 1.0;
  if (predicate->kind() != Expr::Kind::kBinary) return kDefaultOtherSel;
  BinaryOp op = predicate->op();
  if (op == BinaryOp::kAnd) {
    return EstimateSelectivity(predicate->left(), cols, rows) *
           EstimateSelectivity(predicate->right(), cols, rows);
  }
  if (op == BinaryOp::kOr) {
    double a = EstimateSelectivity(predicate->left(), cols, rows);
    double b = EstimateSelectivity(predicate->right(), cols, rows);
    return a + b - a * b;  // Independence assumption.
  }
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return kDefaultOtherSel;  // Arithmetic in boolean position.
  }
  const ExprPtr& l = predicate->left();
  const ExprPtr& r = predicate->right();
  double lit = 0;
  if (l->kind() == Expr::Kind::kColumn && LiteralValue(r, &lit)) {
    return ColumnCompareSelectivity(op, l->column_name(), lit, cols, rows);
  }
  if (r->kind() == Expr::Kind::kColumn && LiteralValue(l, &lit)) {
    return ColumnCompareSelectivity(FlipComparison(op), r->column_name(), lit,
                                    cols, rows);
  }
  return kDefaultOtherSel;  // Column-vs-column or nested comparison.
}

namespace {

// ---------------------------------------------------------------------------
// Internal bookkeeping
// ---------------------------------------------------------------------------

/// A join edge being planned: its (already build-side-planned) JoinSpec
/// plus everything the enumerator needs to know about it.
struct EdgeInfo {
  JoinSpec spec;
  /// Raw build-side output set (nullopt = open, no terminal Select).
  std::optional<std::set<std::string>> build_out;
  /// What an inner join adds to the probe stream: build_out minus the
  /// dropped build keys. A left-semi edge provides nothing. nullopt for
  /// an open inner build side.
  std::optional<std::set<std::string>> provides;
  // Build-relation stats (0 = unknown).
  double rows = 0;       ///< Post-filter row estimate.
  double bytes = 0;      ///< Post-filter byte estimate.
  double raw_bytes = 0;  ///< Raw bytes a broadcast scan would move.
  int64_t files = 0;
  /// Join-cardinality denominator: max over key pairs of the larger
  /// side's distinct-value estimate (>= 1; 0 = unknown).
  double ndv = 0;
};

/// Running size estimate of the probe stream (0 = unknown).
struct Est {
  double rows = 0;
  double bytes = 0;
};

double NdvEstimate(const RelationStats* stats, const std::string& col,
                   double fallback_rows) {
  double rows = stats != nullptr && stats->rows > 0 ? stats->rows
                                                    : fallback_rows;
  if (stats != nullptr) {
    auto it = stats->columns.find(col);
    if (it != stats->columns.end() && std::isfinite(it->second.lo) &&
        std::isfinite(it->second.hi) && it->second.hi >= it->second.lo) {
      double domain = it->second.hi - it->second.lo + 1.0;
      return rows > 0 ? std::min(rows, domain) : domain;
    }
  }
  return rows;
}

Est ApplyEdge(const Est& in, const EdgeInfo& e) {
  bool inner = e.spec.type == engine::JoinType::kInner;
  Est out;
  if (in.rows > 0 && e.rows > 0 && e.ndv > 0) {
    out.rows = inner ? in.rows * e.rows / e.ndv
                     : in.rows * std::min(1.0, e.rows / e.ndv);
    out.rows = std::max(out.rows, 1.0);
  }
  if (in.bytes > 0) {
    if (out.rows > 0 && in.rows > 0) {
      double probe_width = in.bytes / in.rows;
      double build_width =
          inner && e.bytes > 0 && e.rows > 0 ? e.bytes / e.rows : 0.0;
      out.bytes = out.rows * (probe_width + build_width);
    } else if (inner) {
      // Unknown cardinalities: a matching inner join roughly appends the
      // smaller side's payload to the larger side's rows.
      out.bytes = in.bytes + std::min(in.bytes,
                                      e.bytes > 0 ? e.bytes : in.bytes);
    } else {
      out.bytes = 0.5 * in.bytes;  // Semi joins only shrink the probe.
    }
    out.bytes = std::max(out.bytes, 1.0);
  }
  return out;
}

/// Modeled traffic of both strategies for edge `e` joining a probe stream
/// of size `in`, plus the decision.
struct StrategyDecision {
  models::TrafficEstimate partitioned;
  models::TrafficEstimate broadcast;
  bool use_broadcast = false;
  double cost = 0;  ///< usd of the chosen strategy (enumeration metric).
};

StrategyDecision DecideStrategy(const EdgeInfo& e, const Est& in,
                                const OptimizerOptions& opt) {
  StrategyDecision d;
  int workers = std::max(1, opt.workers);
  d.partitioned = models::PartitionedExchangeTraffic(
      in.bytes, e.bytes, workers, e.spec.build_exchange.levels,
      e.spec.build_exchange.write_combining, opt.traffic);
  bool broadcast_known = opt.workers > 0 && e.raw_bytes > 0;
  if (broadcast_known) {
    d.broadcast = models::BroadcastTraffic(e.raw_bytes, e.files, opt.workers,
                                           opt.traffic);
  }
  switch (opt.strategy) {
    case JoinStrategyOverride::kForcePartitioned:
      d.use_broadcast = false;
      break;
    case JoinStrategyOverride::kForceBroadcast:
      d.use_broadcast = true;
      break;
    case JoinStrategyOverride::kAuto:
      // Broadcast needs evidence: a known fleet size, a known build size,
      // and a known probe size to compare against — otherwise the
      // exchange is the safe default.
      d.use_broadcast = broadcast_known && in.bytes > 0 &&
                        d.broadcast.usd < d.partitioned.usd;
      break;
  }
  d.cost = d.use_broadcast ? d.broadcast.usd : d.partitioned.usd;
  return d;
}

std::string FormatRows(double rows) {
  if (rows <= 0) return "?";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld",
                static_cast<long long>(std::llround(rows)));
  return buf;
}

std::string FormatUsd(double usd) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "$%.6f", usd);
  return buf;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

void FlattenBinary(const ExprPtr& e, BinaryOp op, std::vector<ExprPtr>* out) {
  if (e->kind() == Expr::Kind::kBinary && e->op() == op) {
    FlattenBinary(e->left(), op, out);
    FlattenBinary(e->right(), op, out);
  } else {
    out->push_back(e);
  }
}

ExprPtr AndAll(const std::vector<ExprPtr>& exprs) {
  ExprPtr out;
  for (const auto& e : exprs) {
    out = out == nullptr ? e : Expr::Binary(BinaryOp::kAnd, out, e);
  }
  return out;
}

ExprPtr OrAll(const std::vector<ExprPtr>& exprs) {
  ExprPtr out;
  for (const auto& e : exprs) {
    out = out == nullptr ? e : Expr::Binary(BinaryOp::kOr, out, e);
  }
  return out;
}

PlanOp MakeFilter(ExprPtr e) {
  PlanOp op;
  op.kind = PlanOp::Kind::kFilter;
  op.expr = std::move(e);
  return op;
}

bool Subset(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& x : a) {
    if (b.count(x)) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// OptimizeQuery
// ---------------------------------------------------------------------------

Result<PhysicalQuery> OptimizeQuery(const Query& query, const Catalog& catalog,
                                    const OptimizerOptions& options) {
  ASSIGN_OR_RETURN(LogicalPlan lp, BuildLogicalPlan(query));
  if (lp.joins.empty()) {
    return Status::Internal("OptimizeQuery requires at least one join");
  }
  const size_t m = lp.joins.size();
  if (m > 63) return Status::NotImplemented("more than 63 joins");

  // -- 1. Filter attribution ------------------------------------------------
  // Per-relation "provides" sets first (what each build adds to the probe
  // stream post-join); they drive both attribution and key provenance.
  std::vector<std::optional<std::set<std::string>>> edge_provides(m);
  for (size_t j = 0; j < m; ++j) {
    const LogicalJoinEdge& edge = lp.joins[j];
    if (edge.type == engine::JoinType::kLeftSemi) {
      edge_provides[j].emplace();  // Provides nothing, and that is known.
      continue;
    }
    auto emits = ClosedOutputSet(lp.relations[edge.build_relation].ops);
    if (!emits.has_value()) continue;  // Open: unknown provides.
    for (const auto& k : edge.build_keys) emits->erase(k);
    edge_provides[j] = std::move(*emits);
  }
  std::set<std::string> claimed;  // Known build-provided columns.
  bool any_open = false;
  for (size_t j = 0; j < m; ++j) {
    if (!edge_provides[j].has_value()) {
      any_open = true;
    } else {
      claimed.insert(edge_provides[j]->begin(), edge_provides[j]->end());
    }
  }
  std::optional<std::set<std::string>> probe_closed =
      ClosedOutputSet(lp.relations[0].ops);

  std::vector<ExprPtr> residuals;
  for (const ExprPtr& f : lp.filters) {
    std::set<std::string> cols;
    f->CollectColumns(&cols);
    // A filter local to one inner build side runs before that join.
    bool pushed = false;
    for (size_t j = 0; j < m && !pushed; ++j) {
      if (lp.joins[j].type != engine::JoinType::kInner) continue;
      if (edge_provides[j].has_value() && !edge_provides[j]->empty() &&
          Subset(cols, *edge_provides[j])) {
        lp.relations[lp.joins[j].build_relation].ops.push_back(MakeFilter(f));
        pushed = true;
      }
    }
    if (pushed) continue;
    // A filter touching no known build column runs on the driving
    // relation, before any join.
    if (!any_open && Disjoint(cols, claimed) &&
        (!probe_closed.has_value() || Subset(cols, *probe_closed))) {
      lp.relations[0].ops.push_back(MakeFilter(f));
      continue;
    }
    residuals.push_back(f);
  }

  // OR-of-ANDs residuals additionally push their per-relation implied
  // disjunction (each disjunct's conjuncts that are local to the target):
  // sound whenever every disjunct constrains the target, and exactly the
  // classic Q19 rewrite. The original predicate stays as the residual.
  for (const ExprPtr& f : residuals) {
    if (f->kind() != Expr::Kind::kBinary || f->op() != BinaryOp::kOr) {
      continue;
    }
    std::vector<ExprPtr> disjuncts;
    FlattenBinary(f, BinaryOp::kOr, &disjuncts);
    // Candidate targets: the driving relation plus each inner build side.
    for (size_t target = 0; target <= m; ++target) {
      size_t rel;
      std::optional<std::set<std::string>> local_cols;
      bool local_is_probe = false;
      if (target == m) {
        rel = 0;
        local_is_probe = true;
        if (any_open) continue;
      } else {
        if (lp.joins[target].type != engine::JoinType::kInner) continue;
        if (!edge_provides[target].has_value() ||
            edge_provides[target]->empty()) {
          continue;
        }
        rel = lp.joins[target].build_relation;
        local_cols = edge_provides[target];
      }
      std::vector<ExprPtr> implied;
      bool ok = true;
      for (const ExprPtr& d : disjuncts) {
        std::vector<ExprPtr> conjuncts, local;
        FlattenBinary(d, BinaryOp::kAnd, &conjuncts);
        for (const ExprPtr& c : conjuncts) {
          std::set<std::string> cols;
          c->CollectColumns(&cols);
          bool is_local = local_is_probe
                              ? Disjoint(cols, claimed) &&
                                    (!probe_closed.has_value() ||
                                     Subset(cols, *probe_closed))
                              : Subset(cols, *local_cols);
          if (is_local) local.push_back(c);
        }
        if (local.empty()) {
          ok = false;
          break;
        }
        implied.push_back(AndAll(local));
      }
      if (ok) lp.relations[rel].ops.push_back(MakeFilter(OrAll(implied)));
    }
  }

  // -- 2. Per-relation stats and edge construction --------------------------
  auto rel_stats = [&](const std::string& pattern) -> const RelationStats* {
    auto it = catalog.relations.find(pattern);
    return it == catalog.relations.end() ? nullptr : &it->second;
  };
  auto filtered_size = [&](size_t rel, double* rows, double* bytes,
                           const RelationStats* stats) {
    *rows = 0;
    *bytes = 0;
    if (stats == nullptr) return;
    double sel = 1.0;
    for (const PlanOp& op : lp.relations[rel].ops) {
      if (op.kind == PlanOp::Kind::kFilter) {
        sel *= EstimateSelectivity(op.expr, stats->columns, stats->rows);
      }
    }
    sel = std::max(sel, 1e-9);
    if (stats->rows > 0) *rows = std::max(1.0, stats->rows * sel);
    if (stats->bytes > 0) *bytes = std::max(1.0, stats->bytes * sel);
  };

  const RelationStats* probe_stats = rel_stats(lp.relations[0].pattern);
  Est probe0;
  filtered_size(0, &probe0.rows, &probe0.bytes, probe_stats);

  // Provider of a probe key column: the inner edge that emits it, else
  // the driving relation. Used for distinct-value estimates.
  auto key_provider_stats =
      [&](const std::string& key) -> std::pair<const RelationStats*, double> {
    for (size_t j = 0; j < m; ++j) {
      if (edge_provides[j].has_value() && edge_provides[j]->count(key)) {
        const RelationStats* s =
            rel_stats(lp.relations[lp.joins[j].build_relation].pattern);
        double rows, bytes;
        filtered_size(lp.joins[j].build_relation, &rows, &bytes, s);
        return {s, rows};
      }
    }
    return {probe_stats, probe0.rows};
  };

  std::vector<EdgeInfo> edges(m);
  for (size_t j = 0; j < m; ++j) {
    const LogicalJoinEdge& edge = lp.joins[j];
    EdgeInfo& e = edges[j];
    e.spec.type = edge.type;
    e.spec.probe_keys = edge.probe_keys;
    e.spec.build_keys = edge.build_keys;
    e.spec.build_pattern = lp.relations[edge.build_relation].pattern;
    e.spec.build_ops = lp.relations[edge.build_relation].ops;
    e.spec.build_exchange = edge.exchange;
    ASSIGN_OR_RETURN(e.build_out, PlanBuildSide(&e.spec));
    e.provides = edge_provides[j];

    const RelationStats* stats = rel_stats(e.spec.build_pattern);
    filtered_size(edge.build_relation, &e.rows, &e.bytes, stats);
    if (stats != nullptr) {
      e.raw_bytes = stats->bytes;
      e.files = stats->files;
    }
    // ndv = max over key pairs of the larger side's distinct count.
    for (size_t k = 0; k < edge.probe_keys.size(); ++k) {
      auto [prov_stats, prov_rows] = key_provider_stats(edge.probe_keys[k]);
      double ndv_p = NdvEstimate(prov_stats, edge.probe_keys[k], prov_rows);
      double ndv_b = NdvEstimate(stats, edge.build_keys[k], e.rows);
      e.ndv = std::max(e.ndv, std::max(ndv_p, ndv_b));
    }
    e.ndv = std::max(e.ndv, e.rows > 0 || probe0.rows > 0 ? 1.0 : 0.0);
  }

  // Probe keys nobody claims must come off the driving relation's scan;
  // catch a dropped key now rather than at fleet runtime.
  {
    std::vector<std::string> probe_provided;
    for (const auto& e : edges) {
      for (const auto& k : e.spec.probe_keys) {
        if (!claimed.count(k)) probe_provided.push_back(k);
      }
    }
    RETURN_NOT_OK(ValidateKeysSurvive(probe_closed, probe_provided, "probe"));
  }

  // -- 3. Feasibility and join-order enumeration ----------------------------
  // An edge may run once each of its probe keys is available: emitted by a
  // joined inner edge, possibly emitted by a joined open build, or never
  // claimed by any build (then it rides the probe stream from the scan).
  auto key_available = [&](const std::string& k, uint64_t prefix) {
    // Unclaimed columns ride the probe stream from the scan (validated
    // against the driving relation's closed set above). With an open
    // build in play provenance is uncertain, but then the optimizer never
    // reorders, so trusting the query's own order stays sound.
    if (!claimed.count(k)) return true;
    for (size_t j = 0; j < m; ++j) {
      if (!(prefix >> j & 1)) continue;
      if (!edges[j].provides.has_value()) return true;  // Open wildcard.
      if (edges[j].provides->count(k)) return true;
    }
    return false;
  };
  auto edge_feasible = [&](size_t e, uint64_t prefix) {
    for (const auto& k : edges[e].spec.probe_keys) {
      if (!key_available(k, prefix)) return false;
    }
    return true;
  };
  // Order-independent size estimate of a joined prefix (edges folded in
  // index order — an approximation that keeps the DP state a set).
  auto estimate_mask = [&](uint64_t mask) {
    Est est = probe0;
    for (size_t j = 0; j < m; ++j) {
      if (mask >> j & 1) est = ApplyEdge(est, edges[j]);
    }
    return est;
  };

  std::vector<size_t> order;
  bool have_stats = probe0.bytes > 0;
  if (m == 1) {
    order.push_back(0);
  } else if (any_open || !have_stats ||
             m > static_cast<size_t>(std::max(1, options.max_dp_relations))) {
    // Greedy (or syntax order when there is nothing to optimize with):
    // repeatedly take the cheapest feasible edge; ties keep syntax order.
    uint64_t mask = 0;
    for (size_t step = 0; step < m; ++step) {
      double best = std::numeric_limits<double>::infinity();
      size_t pick = m;
      Est in = estimate_mask(mask);
      for (size_t j = 0; j < m; ++j) {
        if (mask >> j & 1) continue;
        if (!edge_feasible(j, mask)) continue;
        double cost =
            have_stats ? DecideStrategy(edges[j], in, options).cost : 0.0;
        if (cost < best) {
          best = cost;
          pick = j;
        }
      }
      if (pick == m) {
        return Status::Invalid(
            "join probe key of join " + std::to_string(step) +
            " is not available: it is produced by a later join's build "
            "relation");
      }
      order.push_back(pick);
      mask |= uint64_t{1} << pick;
    }
  } else {
    // Left-deep DP over edge subsets, minimizing summed modeled traffic.
    // Candidates iterate descending with strict improvement so that exact
    // ties reconstruct to the query's syntax order.
    const uint64_t full = (uint64_t{1} << m) - 1;
    std::vector<double> best(full + 1,
                             std::numeric_limits<double>::infinity());
    std::vector<int> last(full + 1, -1);
    best[0] = 0;
    for (uint64_t mask = 1; mask <= full; ++mask) {
      for (size_t j = m; j-- > 0;) {
        if (!(mask >> j & 1)) continue;
        uint64_t prefix = mask & ~(uint64_t{1} << j);
        if (std::isinf(best[prefix])) continue;
        if (!edge_feasible(j, prefix)) continue;
        double cost =
            best[prefix] +
            DecideStrategy(edges[j], estimate_mask(prefix), options).cost;
        if (cost < best[mask]) {
          best[mask] = cost;
          last[mask] = static_cast<int>(j);
        }
      }
    }
    if (std::isinf(best[full])) {
      return Status::Invalid(
          "no feasible join order: a join's probe key is never available "
          "(dropped by a Select or emitted by no relation)");
    }
    for (uint64_t mask = full; mask != 0;) {
      size_t j = static_cast<size_t>(last[mask]);
      order.push_back(j);
      mask &= ~(uint64_t{1} << j);
    }
    std::reverse(order.begin(), order.end());
  }

  // -- 4. Residual placement ------------------------------------------------
  // Each residual re-enters at the earliest prefix providing its columns.
  std::vector<std::vector<ExprPtr>> residual_at(m + 1);
  for (const ExprPtr& f : residuals) {
    std::set<std::string> cols;
    f->CollectColumns(&cols);
    size_t at = m;
    // An open build may supply any column, so with one in play residuals
    // stay after every join (their original downstream position; moving a
    // filter later across inner/semi joins is always sound, moving it
    // earlier is not).
    for (size_t t = any_open ? m : 0; t <= m; ++t) {
      uint64_t prefix = 0;
      for (size_t i = 0; i < t; ++i) prefix |= uint64_t{1} << order[i];
      bool all = true;
      for (const auto& c : cols) {
        if (!key_available(c, prefix)) {
          all = false;
          break;
        }
      }
      if (all) {
        at = t;
        break;
      }
    }
    residual_at[at].push_back(f);
  }

  // -- 5. Assemble the physical fragment ------------------------------------
  PhysicalQuery out;
  out.pattern = lp.relations[0].pattern;
  out.fragment.tuning = options.tuning;
  for (size_t t = 0; t < residual_at[0].size(); ++t) {
    lp.relations[0].ops.push_back(MakeFilter(residual_at[0][t]));
  }
  size_t first_kept = 0;
  out.fragment.scan_filter =
      FoldLeadingFilters(lp.relations[0].ops, &first_kept);
  out.fragment.ops.assign(
      lp.relations[0].ops.begin() +
          static_cast<std::ptrdiff_t>(first_kept),
      lp.relations[0].ops.end());

  Est running = probe0;
  for (size_t t = 0; t < m; ++t) {
    EdgeInfo& e = edges[order[t]];
    StrategyDecision d = DecideStrategy(e, running, options);
    Est next = ApplyEdge(running, e);

    if (!d.use_broadcast) {
      ExchangeSpec probe_exchange = e.spec.build_exchange;
      probe_exchange.keys = e.spec.probe_keys;
      PlanOp ex;
      ex.kind = PlanOp::Kind::kExchange;
      ex.exchange = std::move(probe_exchange);
      out.fragment.ops.push_back(std::move(ex));
    }
    JoinChoice choice;
    choice.build_pattern = e.spec.build_pattern;
    choice.broadcast = d.use_broadcast;
    choice.est_probe_rows = running.rows;
    choice.est_build_rows = e.rows;
    choice.est_output_rows = next.rows;
    choice.partitioned_bytes = d.partitioned.bytes;
    choice.partitioned_usd = d.partitioned.usd;
    choice.broadcast_bytes = d.broadcast.bytes;
    choice.broadcast_usd = d.broadcast.usd;
    out.join_choices.push_back(choice);
    out.build_inputs.push_back(
        BuildInput{e.spec.build_pattern, d.use_broadcast});

    PlanOp jop;
    jop.kind = PlanOp::Kind::kJoin;
    e.spec.strategy = d.use_broadcast ? JoinStrategy::kBroadcast
                                      : JoinStrategy::kPartitioned;
    e.spec.build_ordinal = static_cast<int>(t);
    jop.join = e.spec;  // Copy: `edges` stays intact for projection below.
    out.fragment.ops.push_back(std::move(jop));

    for (const ExprPtr& f : residual_at[t + 1]) {
      out.fragment.ops.push_back(MakeFilter(f));
    }
    running = next;
  }
  for (const PlanOp& op : lp.tail) out.fragment.ops.push_back(op);
  if (lp.aggregate.has_value()) {
    out.fragment.ops.push_back(*lp.aggregate);
  }
  out.driver_ops = lp.having;

  // -- 6. Probe projection push-down over the assembled pipeline ------------
  // Mirrors the single-join planner: any open build output means post-join
  // references cannot be attributed to a side — scan everything.
  bool scan_all = false;
  for (const auto& e : edges) {
    if (!e.build_out.has_value()) scan_all = true;
  }
  if (scan_all) {
    out.fragment.scan_projection.clear();
  } else {
    std::set<std::string> referenced, produced;
    if (out.fragment.scan_filter != nullptr) {
      out.fragment.scan_filter->CollectColumns(&referenced);
    }
    size_t ordinal = 0;
    for (const PlanOp& op : out.fragment.ops) {
      if (op.kind == PlanOp::Kind::kJoin) {
        const EdgeInfo& e = edges[order[ordinal++]];
        for (const auto& k : op.join->probe_keys) {
          if (!produced.count(k)) referenced.insert(k);
        }
        if (op.join->type == engine::JoinType::kInner) {
          produced.insert(e.provides->begin(), e.provides->end());
        }
        continue;
      }
      std::set<std::string> cols;
      CollectOpColumns(op, &cols);
      for (const auto& c : cols) {
        if (!produced.count(c)) referenced.insert(c);
      }
      CollectOpOutputs(op, &produced);
    }
    out.fragment.scan_projection.assign(referenced.begin(),
                                        referenced.end());
  }

  if (out.fragment.EndsInAggregate()) {
    out.has_final_aggregate = true;
    out.final_group_by = out.fragment.ops.back().group_by;
    out.final_aggs = out.fragment.ops.back().aggs;
  }

  // -- 7. Explain text -------------------------------------------------------
  std::ostringstream ex;
  ex << "plan for " << out.pattern << "\n";
  ex << "  scan probe=" << out.pattern;
  if (out.fragment.scan_filter != nullptr) {
    ex << " filter=" << out.fragment.scan_filter->ToString();
  }
  ex << " projection=["
     << (out.fragment.scan_projection.empty()
             ? "*"
             : JoinNames(out.fragment.scan_projection))
     << "]\n";
  size_t ordinal = 0;
  for (const PlanOp& op : out.fragment.ops) {
    switch (op.kind) {
      case PlanOp::Kind::kJoin: {
        const JoinChoice& c = out.join_choices[ordinal++];
        const JoinSpec& js = *op.join;
        ex << "  join[" << ordinal - 1 << "] "
           << engine::JoinTypeName(js.type) << " build=" << js.build_pattern
           << " on ";
        for (size_t k = 0; k < js.probe_keys.size(); ++k) {
          if (k > 0) ex << ", ";
          ex << js.probe_keys[k] << "=" << js.build_keys[k];
        }
        ex << " strategy="
           << (c.broadcast ? "broadcast" : "partitioned") << "\n";
        if (js.build_scan_filter != nullptr) {
          ex << "    build filter=" << js.build_scan_filter->ToString()
             << "\n";
        }
        ex << "    est rows: probe=" << FormatRows(c.est_probe_rows)
           << " build=" << FormatRows(c.est_build_rows)
           << " out=" << FormatRows(c.est_output_rows) << "\n";
        ex << "    cost: partitioned=" << FormatUsd(c.partitioned_usd)
           << " broadcast="
           << (c.broadcast_bytes > 0 || c.broadcast_usd > 0
                   ? FormatUsd(c.broadcast_usd)
                   : "n/a")
           << "\n";
        break;
      }
      case PlanOp::Kind::kExchange:
        ex << "  exchange keys=[" << JoinNames(op.exchange->keys)
           << "] levels=" << op.exchange->levels << "\n";
        break;
      case PlanOp::Kind::kFilter:
        ex << "  filter " << op.expr->ToString() << "\n";
        break;
      case PlanOp::Kind::kMap:
        ex << "  map " << op.name << "=" << op.expr->ToString() << "\n";
        break;
      case PlanOp::Kind::kSelect:
        ex << "  select [" << JoinNames(op.names) << "]\n";
        break;
      case PlanOp::Kind::kAggregate: {
        ex << "  aggregate group=[" << JoinNames(op.group_by) << "] aggs=[";
        for (size_t a = 0; a < op.aggs.size(); ++a) {
          if (a > 0) ex << ", ";
          ex << engine::AggKindName(op.aggs[a].kind) << " as "
             << op.aggs[a].output_name;
        }
        ex << "]\n";
        break;
      }
      case PlanOp::Kind::kJoinV2:
        break;  // Never an in-memory kind.
    }
  }
  for (const PlanOp& op : out.driver_ops) {
    ex << "  having " << op.expr->ToString() << "\n";
  }
  out.explain_text = ex.str();
  return out;
}

Result<std::string> ExplainQuery(const Query& query, const Catalog& catalog,
                                 const OptimizerOptions& options) {
  bool has_join = false;
  for (const auto& op : query.ops()) {
    if (op.kind == PlanOp::Kind::kJoin) has_join = true;
  }
  if (has_join) {
    ASSIGN_OR_RETURN(PhysicalQuery phys,
                     OptimizeQuery(query, catalog, options));
    return phys.explain_text;
  }
  ASSIGN_OR_RETURN(PhysicalQuery phys, PlanQuery(query, options.tuning));
  std::ostringstream ex;
  ex << "plan for " << phys.pattern << "\n";
  ex << "  scan " << phys.pattern;
  if (phys.fragment.scan_filter != nullptr) {
    ex << " filter=" << phys.fragment.scan_filter->ToString();
  }
  ex << " projection=["
     << (phys.fragment.scan_projection.empty()
             ? "*"
             : JoinNames(phys.fragment.scan_projection))
     << "]\n";
  for (const PlanOp& op : phys.fragment.ops) {
    switch (op.kind) {
      case PlanOp::Kind::kFilter:
        ex << "  filter " << op.expr->ToString() << "\n";
        break;
      case PlanOp::Kind::kMap:
        ex << "  map " << op.name << "=" << op.expr->ToString() << "\n";
        break;
      case PlanOp::Kind::kSelect:
        ex << "  select [" << JoinNames(op.names) << "]\n";
        break;
      case PlanOp::Kind::kExchange:
        ex << "  exchange keys=[" << JoinNames(op.exchange->keys)
           << "] levels=" << op.exchange->levels << "\n";
        break;
      case PlanOp::Kind::kAggregate: {
        ex << "  aggregate group=[" << JoinNames(op.group_by) << "] aggs=[";
        for (size_t a = 0; a < op.aggs.size(); ++a) {
          if (a > 0) ex << ", ";
          ex << engine::AggKindName(op.aggs[a].kind) << " as "
             << op.aggs[a].output_name;
        }
        ex << "]\n";
        break;
      }
      default:
        break;
    }
  }
  for (const PlanOp& op : phys.driver_ops) {
    ex << "  having " << op.expr->ToString() << "\n";
  }
  return ex.str();
}

}  // namespace lambada::core
