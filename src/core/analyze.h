#ifndef LAMBADA_CORE_ANALYZE_H_
#define LAMBADA_CORE_ANALYZE_H_

#include <string>

#include "core/driver.h"
#include "core/planner.h"

namespace lambada::core {

/// EXPLAIN ANALYZE: the optimizer's deterministic plan rendering
/// (PhysicalQuery::explain_text) re-emitted with an "actual:" annotation
/// under every operator line, reporting what the fleet really did — rows,
/// modeled bytes, exchange traffic per exchange instance, invocation
/// attempts — followed by a totals footer listing the merged fleet metric
/// registry. Virtual-time-per-operator annotations come from the query's
/// trace and appear only when the run was traced
/// (RunOptions::trace.enabled); everything else is derived from
/// QueryReport::fleet_metrics and is always present.
///
/// The rendering is deterministic: a fixed (workload, seed) produces
/// byte-identical text across runs and worker thread counts, so goldens
/// can assert on it. Driver::Run fills QueryReport::explain_analyze_text
/// with this; the SQL frontend's "EXPLAIN ANALYZE <query>" surfaces it.
std::string RenderExplainAnalyze(const PhysicalQuery& physical,
                                 const QueryReport& report);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_ANALYZE_H_
