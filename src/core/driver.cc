#include "core/driver.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <set>

#include "cloud/meta_cache.h"
#include "common/glob.h"
#include "core/analyze.h"
#include "core/exchange.h"
#include "core/logical_plan.h"
#include "core/stats_index.h"
#include "core/worker.h"
#include "engine/aggregate.h"
#include "engine/chunk_serde.h"

namespace lambada::core {

namespace {

/// One expanded input glob: the matched files, their virtual (scaled)
/// sizes, and the derived stats-index dataset name.
struct PatternListing {
  std::string bucket;
  std::string key_pattern;
  std::string dataset;
  std::vector<engine::FileRef> files;
  std::map<std::string, int64_t> sizes;
  int64_t total_bytes = 0;
};

sim::Async<Result<PatternListing>> ListPattern(cloud::S3Client* client,
                                               const std::string& pattern,
                                               cloud::MetadataCache* meta) {
  PatternListing out;
  if (!ParseS3Uri(pattern, &out.bucket, &out.key_pattern)) {
    co_return Status::Invalid("bad input pattern: " + pattern);
  }
  const std::string prefix = GlobLiteralPrefix(out.key_pattern);
  Result<std::vector<cloud::ObjectInfo>> listing =
      Status::NotFound("not cached");
  if (meta != nullptr) {
    listing = co_await meta->GetListing(client->ctx(), out.bucket, prefix);
  }
  if (!listing.ok()) {
    listing = co_await client->List(out.bucket, prefix);
    if (!listing.ok()) co_return listing.status();
    if (meta != nullptr) {
      // Best-effort fill; a failed write just means the next query misses.
      co_await meta->PutListing(client->ctx(), out.bucket, prefix, *listing);
    }
  }
  for (const auto& obj : *listing) {
    if (GlobMatch(out.key_pattern, obj.key)) {
      out.files.push_back(engine::FileRef{out.bucket, obj.key});
      out.sizes[obj.key] = obj.size;
      out.total_bytes += obj.size;
    }
  }
  out.dataset = out.bucket + "/" + GlobLiteralPrefix(out.key_pattern);
  co_return out;
}

}  // namespace

Driver::Driver(cloud::Cloud* cloud, DriverOptions options)
    : cloud_(cloud), options_(std::move(options)) {}

Status Driver::Install() {
  RETURN_NOT_OK(cloud_->s3().CreateBucket(options_.system_bucket));
  RETURN_NOT_OK(cloud_->sqs().CreateQueue(options_.result_queue));
  RETURN_NOT_OK(cloud_->ddb().CreateTable("lambada-meta"));
  ExchangeSpec defaults;
  defaults.bucket_prefix = options_.exchange_bucket_prefix;
  defaults.num_buckets = options_.exchange_buckets;
  RETURN_NOT_OK(CreateExchangeBuckets(&cloud_->s3(), defaults));
  StatsIndex stats(&cloud_->ddb());
  RETURN_NOT_OK(stats.CreateTable());
  installed_ = true;
  return Status::OK();
}

Status Driver::EnsureFunction(int memory_mib) {
  std::string name =
      options_.function_prefix + std::to_string(memory_mib);
  cloud::FunctionConfig fn;
  fn.name = name;
  fn.memory_mib = memory_mib;
  fn.timeout_s = 900.0;
  fn.handler = MakeWorkerHandler(options_.worker_exec);
  return cloud_->faas().CreateFunction(std::move(fn));
}

void Driver::ResetWarm(int memory_mib) {
  cloud_->faas().ResetWarmPool(options_.function_prefix +
                               std::to_string(memory_mib));
}

sim::Async<Status> Driver::InvokeOne(const std::string& function,
                                     std::string payload,
                                     cloud::CostLedger* attribution) {
  double backoff = 0.05;
  for (int attempt = 0;; ++attempt) {
    Status s = co_await cloud_->faas().Invoke(
        cloud_->driver_invoker_profile(), &cloud_->driver_rng(), function,
        payload, attribution);
    if (s.ok() || !s.IsRetriable() || attempt >= options_.invoke_retries) {
      co_return s;
    }
    co_await sim::Sleep(&cloud_->sim(),
                        backoff * (0.5 + cloud_->driver_rng().NextDouble()));
    backoff *= 2;
  }
}

sim::Async<Status> Driver::InvokeWorkers(
    const std::vector<InvocationPayload>& payloads, const TreePlan& tree,
    bool batched, const std::string& inputs_key, const std::string& function,
    cloud::CostLedger* attribution) {
  // Invocation tree (Section 4.2, generalized): the driver invokes the
  // generation-1 roots; each recursively starts its claimed ID range.
  // Depth-2 roots reproduce the historical ~sqrt(P) grouping exactly.
  std::vector<InvocationPayload> first_gen;
  if (tree.depth() >= 2) {
    for (const TreeNode& root : TreeRoots(tree)) {
      InvocationPayload leader = payloads[root.begin];
      if (batched) {
        // The leader fetches its own inputs from the table like everyone
        // else; its payload carries only the range and the table pointer.
        leader.self.files.clear();
        leader.self.build_files.clear();
        leader.self.build_counts.clear();
        leader.tree.subtree_end = root.end;
        leader.tree.generation = root.generation;
        leader.tree.fanout = tree.fanout;
        leader.tree.inputs_key = inputs_key;
      } else {
        for (uint32_t id = root.begin + 1; id < root.end; ++id) {
          leader.to_invoke.push_back(payloads[id].self);
        }
      }
      first_gen.push_back(std::move(leader));
    }
  } else {
    first_gen = payloads;
  }

  // Fan the Invoke calls over a bounded pool of invocation threads.
  auto* sim = &cloud_->sim();
  auto gate =
      std::make_shared<sim::Semaphore>(sim, options_.invoke_threads);
  auto first_error = std::make_shared<Status>(Status::OK());
  std::vector<sim::Async<void>> calls;
  calls.reserve(first_gen.size());
  for (auto& p : first_gen) {
    calls.push_back([](Driver* self, std::shared_ptr<sim::Semaphore> g,
                       std::shared_ptr<Status> err, std::string fn,
                       std::string payload,
                       cloud::CostLedger* attr) -> sim::Async<void> {
      co_await g->Acquire();
      Status s = co_await self->InvokeOne(fn, std::move(payload), attr);
      if (!s.ok() && err->ok()) *err = s;
      g->Release();
    }(this, gate, first_error, function, p.Serialize(), attribution));
  }
  co_await sim::WhenAllVoid(sim, std::move(calls));
  co_return *first_error;
}

sim::Async<Result<QueryReport>> Driver::Run(const Query& query,
                                            const RunOptions& options) {
  if (!installed_) {
    CO_RETURN_NOT_OK(Install());
  }
  CO_RETURN_NOT_OK(EnsureFunction(options.memory_mib));
  const std::string function =
      options_.function_prefix + std::to_string(options.memory_mib);
  auto* sim = &cloud_->sim();
  const double t_start = sim->Now();
  const cloud::CostSnapshot cost_before = cloud_->ledger().Snapshot();
  const cloud::CostSnapshot attribution_before =
      options.attribution != nullptr ? options.attribution->Snapshot()
                                     : cloud::CostSnapshot{};
  const size_t metrics_before = cloud_->faas().completed_metrics().size();

  const std::string query_id = "q" + std::to_string(next_query_id_++);
  // Concurrent queries over one deployment must not steal each other's
  // result messages, so serving mode collects on a per-query queue
  // (workers read the queue name from their payload either way).
  const std::string result_queue =
      options_.serving_mode ? options_.result_queue + "-" + query_id
                            : options_.result_queue;
  if (options_.serving_mode) {
    CO_RETURN_NOT_OK(cloud_->sqs().CreateQueue(result_queue));
  }

  // ---- Tracing (docs/OBSERVABILITY.md). The tracer installs on the
  // deployment BEFORE the driver's S3 client is created, so every
  // NetContext minted for this query carries it; a RAII guard uninstalls
  // it on every exit path (including error co_returns). Error paths leave
  // the open spans unclosed on purpose — the trace then shows exactly
  // where the query died.
  std::shared_ptr<obs::Tracer> tracer;
  struct TracerGuard {
    cloud::Cloud* cloud = nullptr;
    ~TracerGuard() {
      if (cloud != nullptr) cloud->set_tracer(nullptr);
    }
  } tracer_guard;
  if (options.trace.enabled) {
    tracer = std::make_shared<obs::Tracer>(sim);
    cloud_->set_tracer(tracer.get());
    tracer_guard.cloud = cloud_;
  }
  obs::Tracer* tr = tracer.get();

  // ---- Compile (joins list their relations first, to build a catalog).
  const uint64_t plan_span = obs::Begin(tr, 0, "driver", "plan");
  cloud::NetContext dnet = cloud_->driver_net();
  dnet.attribution = options.attribution;
  cloud::S3Client client(&cloud_->s3(), dnet);
  bool has_join = false;
  for (const auto& op : query.ops()) {
    if (op.kind == PlanOp::Kind::kJoin) has_join = true;
  }

  Result<PhysicalQuery> physical = Status::Internal("not planned");
  Result<PatternListing> probe_listing_or = Status::Internal("not listed");
  std::map<std::string, PatternListing> build_listings;  // By pattern.
  if (!has_join) {
    // Single-table path: plan, then list (the original sequence).
    physical = PlanQuery(query, options.tuning);
    if (!physical.ok()) co_return physical.status();
    // PlanQuery leaves explain_text empty; regenerate the single-table
    // rendering so QueryReport::explain_text (and EXPLAIN ANALYZE) work
    // uniformly. Pure host-side recomputation: no requests, no RNG.
    OptimizerOptions explain_opt;
    explain_opt.tuning = options.tuning;
    auto explained = ExplainQuery(query, {}, explain_opt);
    if (explained.ok()) physical->explain_text = *std::move(explained);
    probe_listing_or =
        co_await ListPattern(&client, physical->pattern, options_.meta_cache);
    if (!probe_listing_or.ok()) co_return probe_listing_or.status();
  } else {
    // Join path: expand every relation's glob up front — the listings
    // feed the optimizer's catalog and later drive build-file
    // distribution.
    probe_listing_or =
        co_await ListPattern(&client, query.pattern(), options_.meta_cache);
    if (!probe_listing_or.ok()) co_return probe_listing_or.status();
    for (const auto& op : query.ops()) {
      if (op.kind != PlanOp::Kind::kJoin) continue;
      const std::string& bp = op.join->build_pattern;
      if (build_listings.count(bp) != 0) continue;
      auto bl = co_await ListPattern(&client, bp, options_.meta_cache);
      if (!bl.ok()) co_return bl.status();
      if (bl->files.empty()) {
        co_return Status::NotFound("no build input files match " + bp);
      }
      build_listings.emplace(bp, *std::move(bl));
    }

    // Assemble the optimizer's catalog: sizes from the listings; row
    // counts and column bounds from the stats index when enabled. Floated
    // filter columns are probed against every relation — lookups of
    // columns a relation does not have simply miss.
    std::set<std::string> filter_cols;
    std::set<std::string> probe_cols;
    std::map<std::string, std::set<std::string>> build_cols;
    for (const auto& op : query.ops()) {
      if (op.kind == PlanOp::Kind::kFilter && op.expr != nullptr) {
        op.expr->CollectColumns(&filter_cols);
      } else if (op.kind == PlanOp::Kind::kJoin) {
        auto& bc = build_cols[op.join->build_pattern];
        for (const auto& k : op.join->probe_keys) probe_cols.insert(k);
        for (const auto& k : op.join->build_keys) bc.insert(k);
        for (const auto& bop : op.join->build_ops) {
          CollectOpColumns(bop, &bc);
        }
      }
    }

    Catalog catalog;
    StatsIndex stats(&cloud_->ddb());
    auto add_relation = [&](const std::string& pattern,
                            const PatternListing& l,
                            std::set<std::string> cols)
        -> sim::Async<Status> {
      RelationStats rs;
      rs.bytes = static_cast<double>(l.total_bytes);
      rs.files = static_cast<int64_t>(l.files.size());
      if (options.use_stats_index) {
        cols.insert(filter_cols.begin(), filter_cols.end());
        std::set<std::string> listed;
        for (const auto& f : l.files) listed.insert(f.key);
        for (const auto& c : cols) {
          auto lookup =
              co_await stats.Lookup(cloud_->driver_net(), l.dataset, c);
          if (!lookup.ok()) {
            if (lookup.status().IsNotFound()) continue;  // Not indexed.
            co_return lookup.status();
          }
          engine::Interval iv;
          double rows = 0;
          bool any = false;
          for (const auto& fb : *lookup) {
            if (listed.find(fb.file_key) == listed.end()) continue;
            if (!any) {
              iv.lo = fb.min;
              iv.hi = fb.max;
            } else {
              iv.lo = std::min(iv.lo, fb.min);
              iv.hi = std::max(iv.hi, fb.max);
            }
            rows += static_cast<double>(fb.rows);
            any = true;
          }
          if (!any) continue;
          rs.columns[c] = iv;
          // Virtual scaling applies to rows like it does to bytes.
          rs.rows = std::max(rs.rows, rows * options.data_scale);
        }
      }
      catalog.relations[pattern] = std::move(rs);
      co_return Status::OK();
    };
    CO_RETURN_NOT_OK(co_await add_relation(query.pattern(),
                                           *probe_listing_or, probe_cols));
    for (const auto& [bp, bl] : build_listings) {
      CO_RETURN_NOT_OK(co_await add_relation(bp, bl, build_cols[bp]));
    }

    // Fleet-size estimate for the broadcast alternative's cost; the final
    // count is settled below, after pruning.
    int est_workers =
        options.num_workers > 0
            ? options.num_workers
            : static_cast<int>(
                  (probe_listing_or->files.size() +
                   static_cast<size_t>(options.files_per_worker) - 1) /
                  static_cast<size_t>(options.files_per_worker));
    est_workers = std::max(
        1, std::min<int>(est_workers,
                         static_cast<int>(probe_listing_or->files.size())));

    OptimizerOptions opt;
    opt.tuning = options.tuning;
    opt.workers = est_workers;
    opt.strategy = options.join_strategy;
    physical = OptimizeQuery(query, catalog, opt);
    if (!physical.ok()) co_return physical.status();
  }
  PatternListing& probe_listing = *probe_listing_or;
  std::vector<engine::FileRef>& files = probe_listing.files;
  std::map<std::string, int64_t>& file_sizes = probe_listing.sizes;
  if (files.empty()) {
    co_return Status::NotFound("no input files match " + physical->pattern);
  }

  // Stamp exchange instances with a unique id and ensure their buckets. A
  // partitioned join carries two: the probe-side kExchange op and the
  // build side's exchange inside the JoinSpec. A broadcast join carries
  // none.
  for (size_t i = 0; i < physical->fragment.ops.size(); ++i) {
    auto& op = physical->fragment.ops[i];
    if (op.kind == PlanOp::Kind::kExchange) {
      op.exchange->exchange_id = query_id + "-x" + std::to_string(i);
      CO_RETURN_NOT_OK(CreateExchangeBuckets(&cloud_->s3(), *op.exchange));
    } else if (op.kind == PlanOp::Kind::kJoin) {
      op.join->build_exchange.exchange_id =
          query_id + "-xb" + std::to_string(i);
      if (op.join->strategy == JoinStrategy::kPartitioned) {
        CO_RETURN_NOT_OK(
            CreateExchangeBuckets(&cloud_->s3(), op.join->build_exchange));
      }
    }
  }

  if (options.use_stats_index && physical->fragment.scan_filter != nullptr) {
    // Section 5.3 extension: central min/max index lets the driver skip
    // files before any worker is started.
    StatsIndex stats(&cloud_->ddb());
    std::vector<std::string> keys;
    keys.reserve(files.size());
    for (const auto& f : files) keys.push_back(f.key);
    auto kept = co_await stats.PruneFiles(dnet,
                                          probe_listing.dataset,
                                          std::move(keys),
                                          physical->fragment.scan_filter);
    if (kept.ok()) {
      std::set<std::string> keep_set(kept->begin(), kept->end());
      std::vector<engine::FileRef> kept_files;
      for (auto& f : files) {
        if (keep_set.count(f.key)) kept_files.push_back(std::move(f));
      }
      if (!kept_files.empty()) files = std::move(kept_files);
    }
  }

  // ---- Decide the worker count (W = files / F, Section 5.2). ----
  int workers;
  if (options.num_workers > 0) {
    workers = options.num_workers;
  } else {
    workers = static_cast<int>(
        (files.size() + options.files_per_worker - 1) /
        static_cast<size_t>(options.files_per_worker));
  }
  workers = std::max(1, std::min<int>(workers, static_cast<int>(files.size())));
  // Exchanges need a factorizable worker grid; round down if necessary.
  // Both exchanges of a partitioned join run over the same grid, so both
  // constrain it; a broadcast join has no exchange and constrains nothing.
  for (const auto& op : physical->fragment.ops) {
    const ExchangeSpec* specs[2] = {
        op.kind == PlanOp::Kind::kExchange ? &*op.exchange : nullptr,
        op.kind == PlanOp::Kind::kJoin &&
                op.join->strategy == JoinStrategy::kPartitioned
            ? &op.join->build_exchange
            : nullptr};
    for (const ExchangeSpec* spec : specs) {
      if (spec == nullptr) continue;
      int adjusted = LargestFactorizableWorkerCount(workers, spec->levels);
      if (adjusted != workers) {
        LAMBADA_LOG(Info) << "adjusting worker count " << workers << " -> "
                          << adjusted << " for the exchange grid";
        workers = adjusted;
      }
    }
  }

  // ---- Resolve adaptive scan tuning from table stats (Figure 7). ----
  // The listing gave the post-encoding (compressed) size of every input
  // file; together with the worker count that yields the bytes one worker
  // actually moves, which picks the request size balancing bandwidth
  // saturation against request count. The probe relation dominates a
  // join's scan traffic, so its files drive the choice for both sides.
  if (physical->fragment.tuning.chunk_bytes <= 0) {
    int64_t scan_bytes = 0;
    for (const auto& f : files) scan_bytes += file_sizes[f.key];
    physical->fragment.tuning.chunk_bytes = AdaptiveChunkBytes(
        scan_bytes / std::max(1, workers),
        physical->fragment.tuning.connections_per_read);
  }

  // ---- Plan the invocation tree (Section 4.2, generalized). ----
  TreeOptions topt;
  topt.depth = options_.invocation_tree_depth;
  if (options_.invocation_batching < 0) {
    // Unbatched payloads cannot carry a grandchild's inputs, so "never
    // batch" clamps the tree to the explicit two-level layout.
    topt.max_depth = 2;
    if (topt.depth > 2) topt.depth = 2;
  }
  if (!options_.two_level_invocation) topt.depth = 1;
  const cloud::RegionProfile& region = cloud_->region();
  topt.cost.driver_invoke_latency_s = region.remote_invoke_latency_s;
  topt.cost.driver_rate_per_s = region.remote_client_rate_per_s;
  topt.cost.driver_threads = options_.invoke_threads;
  topt.cost.worker_invoke_latency_s = region.intra_invoke_latency_s;
  topt.cost.worker_start_s = cloud_->faas().config().cold_start_median_s +
                             cloud_->faas().config().cold_init_cpu_s;
  const TreePlan tree =
      PlanInvocationTree(static_cast<uint32_t>(workers), topt);
  const bool batched =
      tree.depth() >= 2 &&
      (options_.invocation_batching == 1 ||
       (options_.invocation_batching == 0 && tree.depth() >= 3));
  const std::string inputs_key = "plans/" + query_id + ".inputs";

  if (tr != nullptr) {
    tr->AddArg(plan_span, "query_id", query_id);
    tr->AddArg(plan_span, "workers", static_cast<int64_t>(workers));
    tr->AddArg(plan_span, "files", static_cast<int64_t>(files.size()));
    tr->EndSpan(plan_span);
  }

  // ---- Upload the plan once; payloads carry the pointer. ----
  const uint64_t upload_span = obs::Begin(tr, 0, "driver", "upload-plan");
  std::string plan_key = "plans/" + query_id;
  CO_RETURN_NOT_OK(co_await client.Put(
      options_.system_bucket, plan_key,
      Buffer::FromVector(physical->fragment.Serialize())));
  obs::End(tr, upload_span);

  // ---- Build per-worker payloads (contiguous file ranges). ----
  std::vector<InvocationPayload> payloads;
  payloads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    InvocationPayload p;
    p.query_id = query_id;
    p.total_workers = static_cast<uint32_t>(workers);
    p.plan_bucket = options_.system_bucket;
    p.plan_key = plan_key;
    p.result_queue = result_queue;
    p.data_scale = options.data_scale;
    p.hedge_gets = options.hedge_gets;
    p.self.worker_id = static_cast<uint32_t>(w);
    size_t begin = files.size() * static_cast<size_t>(w) /
                   static_cast<size_t>(workers);
    size_t end = files.size() * (static_cast<size_t>(w) + 1) /
                 static_cast<size_t>(workers);
    p.self.files.assign(files.begin() + begin, files.begin() + end);
    for (size_t j = 0; j < physical->build_inputs.size(); ++j) {
      const auto& bi = physical->build_inputs[j];
      const auto& bfiles = build_listings.at(bi.pattern).files;
      size_t before = p.self.build_files.size();
      if (bi.broadcast) {
        // Broadcast join: every worker reads the whole build relation.
        p.self.build_files.insert(p.self.build_files.end(), bfiles.begin(),
                                  bfiles.end());
      } else {
        // Partitioned join: contiguous build-file ranges; workers beyond
        // the build file count get none (the exchange redistributes, so
        // local coverage does not matter for correctness).
        size_t bbegin = bfiles.size() * static_cast<size_t>(w) /
                        static_cast<size_t>(workers);
        size_t bend = bfiles.size() * (static_cast<size_t>(w) + 1) /
                      static_cast<size_t>(workers);
        p.self.build_files.insert(p.self.build_files.end(),
                                  bfiles.begin() + bbegin,
                                  bfiles.begin() + bend);
      }
      if (physical->build_inputs.size() > 1) {
        p.self.build_counts.push_back(
            static_cast<uint32_t>(p.self.build_files.size() - before));
      }
    }
    payloads.push_back(std::move(p));
  }

  // ---- Batched invocation: one table object holds every worker's
  // inputs; payloads then carry only their subtree ID range, so payload
  // bytes (and the bytes any one worker fetches) stay O(1) in the fleet
  // size.
  if (batched) {
    std::vector<WorkerInput> inputs;
    inputs.reserve(payloads.size());
    for (const auto& p : payloads) inputs.push_back(p.self);
    const uint64_t inputs_span = obs::Begin(tr, 0, "driver", "upload-inputs");
    CO_RETURN_NOT_OK(co_await client.Put(
        options_.system_bucket, inputs_key,
        Buffer::FromVector(EncodeWorkerInputTable(inputs))));
    obs::End(tr, inputs_span);
  }

  // ---- Invoke. ----
  // The payloads stay behind as the re-invocation templates of the
  // mitigation loop below.
  const uint64_t invoke_span = obs::Begin(tr, 0, "driver", "invoke");
  CO_RETURN_NOT_OK(co_await InvokeWorkers(payloads, tree, batched, inputs_key,
                                          function, options.attribution));
  const double t_invoked = sim->Now();
  obs::End(tr, invoke_span);

  // ---- Collect results from the queue (Section 3.3). ----
  // SQS delivery is at-least-once and the mitigation path can race
  // several attempts of one worker, so collection is first-result-wins
  // per worker id: later deliveries (redeliveries or superseded
  // attempts) are counted and dropped, never merged twice. Workers are
  // idempotent — any attempt's partial is byte-identical — so "first"
  // needs no attempt arbitration.
  MitigationOptions mit = options.mitigation;
  if (mit.enabled && mit.fleet_aware) {
    // Fleet-size-aware knobs: a 10k-worker tree takes longer to merely
    // start than a small fleet takes to finish, so the fixed defaults
    // either fire on healthy deep fleets or sleep through dead branches.
    // Derive them from the modeled start skew of this exact tree.
    const double skew = models::TreeStartSkew(
        tree.fanout, static_cast<uint32_t>(workers), topt.cost);
    mit.quantile = std::clamp(
        1.0 - 64.0 / static_cast<double>(workers), 0.5, 0.95);
    mit.stall_timeout_s = std::max(5.0, 3.0 * skew);
    mit.min_deadline_s = std::max(2.0, 2.0 * skew);
  }
  // Subtree-recovery branch list: every gen-1 root subtree and, for
  // deeper trees, the gen-2 subtrees within each root. Host-side state —
  // the driver kept the TreePlan it invoked with, so a lost branch can be
  // restarted without consulting any worker.
  std::vector<TreeNode> branches;
  if (mit.enabled && mit.subtree_recovery && tree.depth() >= 2) {
    for (const TreeNode& root : TreeRoots(tree)) {
      if (root.size() > 1) branches.push_back(root);
      if (tree.depth() >= 3) {
        auto kids = TreeChildren(tree, root);
        if (kids.ok()) {
          for (const TreeNode& k : *kids) {
            if (k.size() > 1) branches.push_back(k);
          }
        }
      }
    }
  }
  int subtree_reinvocations = 0;
  std::vector<ResultMessage> results;
  results.reserve(static_cast<size_t>(workers));
  std::vector<char> seen(static_cast<size_t>(workers), 0);
  std::vector<int> attempts(static_cast<size_t>(workers), 1);
  std::vector<double> invoked_at(static_cast<size_t>(workers), t_invoked);
  int64_t duplicate_results = 0;
  int reinvoked_workers = 0;
  // Progress-deadline state: armed once `quantile` of the fleet reported.
  const size_t quantile_need = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(mit.quantile * static_cast<double>(workers))));
  double straggler_budget_s = -1.0;  // < 0: not armed yet.
  double last_progress = t_invoked;
  const double deadline = t_start + options_.query_timeout_s;
  const uint64_t collect_span = obs::Begin(tr, 0, "driver", "collect");
  while (results.size() < static_cast<size_t>(workers)) {
    if (sim->Now() > deadline) {
      std::string missing;
      int listed = 0;
      for (int w = 0; w < workers; ++w) {
        if (seen[static_cast<size_t>(w)]) continue;
        if (listed == 16) {
          missing += ", ...";
          break;
        }
        if (listed++ > 0) missing += ", ";
        missing += std::to_string(w);
      }
      co_return Status::DeadlineExceeded(
          "query deadline of " + std::to_string(options_.query_timeout_s) +
          "s exceeded with " + std::to_string(results.size()) + "/" +
          std::to_string(workers) + " results; missing workers: [" +
          missing + "]");
    }
    auto batch = co_await cloud_->sqs().Receive(
        dnet, result_queue, 10, options_.result_poll_wait_s);
    if (!batch.ok()) co_return batch.status();
    for (auto& raw : *batch) {
      auto msg = ResultMessage::Parse(raw);
      if (!msg.ok()) co_return msg.status();
      if (msg->query_id != query_id) continue;  // Stale message.
      if (msg->worker_id >= static_cast<uint32_t>(workers)) continue;
      const size_t w = msg->worker_id;
      if (seen[w]) {
        ++duplicate_results;
        continue;
      }
      if (mit.enabled && msg->status_code != StatusCode::kOk &&
          Status(msg->status_code, "").IsRetriable() &&
          attempts[w] < mit.max_attempts) {
        // Transient worker failure with attempts left: re-invoke instead
        // of recording the failure.
        InvocationPayload retry = payloads[w];
        retry.self.attempt = static_cast<uint32_t>(attempts[w]++);
        retry.to_invoke.clear();
        invoked_at[w] = sim->Now();
        if (tr != nullptr) {
          tr->Instant(collect_span, "reinvoke w" + std::to_string(w));
        }
        Status s = co_await InvokeOne(function, retry.Serialize(),
                                      options.attribution);
        if (!s.ok()) {
          LAMBADA_LOG(Warning)
              << "re-invocation of worker " << w << " failed: "
              << s.ToString();
        }
        continue;
      }
      seen[w] = 1;
      last_progress = sim->Now();
      results.push_back(*std::move(msg));
    }
    if (!mit.enabled || results.size() >= static_cast<size_t>(workers)) {
      continue;
    }
    // Arm the straggler deadline at the quantile crossing: the budget is
    // the fleet's own pace times a slack multiplier.
    if (straggler_budget_s < 0 && results.size() >= quantile_need) {
      straggler_budget_s = std::max(
          mit.min_deadline_s,
          mit.straggler_multiplier * (sim->Now() - t_invoked));
    }
    // Speculative re-invocation: stragglers past their deadline, or the
    // whole missing set after a progress stall.
    const bool stalled =
        sim->Now() - last_progress > mit.stall_timeout_s;
    // Subtree recovery first: a completely silent branch (no worker in
    // its ID range ever reported — the signature of a lost invoker, not
    // of stragglers) is restarted with ONE Invoke call through its
    // gen-1/gen-2 invoker instead of branch-size individual calls. Every
    // member shares the fresh attempt id, so first-result-wins dedup and
    // attempt-stable exchange slice keys make the recovered branch
    // byte-identical. Branches list gen-1 roots before their gen-2
    // sub-branches, so the outermost silent subtree wins and the covered
    // mask keeps inner branches and the individual sweep off its range.
    std::vector<char> branch_covered(static_cast<size_t>(workers), 0);
    for (const TreeNode& b : branches) {
      bool silent = true;
      bool all_due = true;
      int branch_attempts = 0;
      for (uint32_t id = b.begin; id < b.end; ++id) {
        if (seen[id] || branch_covered[id]) {
          silent = false;
          break;
        }
        const bool due =
            stalled || (straggler_budget_s >= 0 &&
                        sim->Now() >= invoked_at[id] + straggler_budget_s);
        if (!due) all_due = false;
        branch_attempts = std::max(branch_attempts, attempts[id]);
      }
      if (!silent || !all_due) continue;
      if (branch_attempts >= mit.max_attempts) continue;
      const uint32_t attempt = static_cast<uint32_t>(branch_attempts);
      InvocationPayload retry = payloads[b.begin];
      retry.self.attempt = attempt;
      retry.to_invoke.clear();
      if (batched) {
        retry.self.files.clear();
        retry.self.build_files.clear();
        retry.self.build_counts.clear();
        retry.tree.subtree_end = b.end;
        retry.tree.generation = b.generation;
        retry.tree.fanout = tree.fanout;
        retry.tree.inputs_key = inputs_key;
      } else {
        for (uint32_t id = b.begin + 1; id < b.end; ++id) {
          WorkerInput child = payloads[id].self;
          child.attempt = attempt;
          retry.to_invoke.push_back(std::move(child));
        }
      }
      for (uint32_t id = b.begin; id < b.end; ++id) {
        branch_covered[id] = 1;
        attempts[id] = branch_attempts + 1;
        invoked_at[id] = sim->Now();
      }
      ++subtree_reinvocations;
      if (tr != nullptr) {
        tr->Instant(collect_span,
                    "reinvoke-branch g" + std::to_string(b.generation) +
                        " [" + std::to_string(b.begin) + "," +
                        std::to_string(b.end) + ")");
      }
      Status s = co_await InvokeOne(function, retry.Serialize(),
                                    options.attribution);
      if (!s.ok()) {
        LAMBADA_LOG(Warning)
            << "branch re-invocation [" << b.begin << "," << b.end
            << ") failed: " << s.ToString();
      }
    }
    for (int w = 0; w < workers; ++w) {
      const size_t wi = static_cast<size_t>(w);
      if (seen[wi] || branch_covered[wi] ||
          attempts[wi] >= mit.max_attempts) {
        continue;
      }
      const bool past_deadline =
          straggler_budget_s >= 0 &&
          sim->Now() >= invoked_at[wi] + straggler_budget_s;
      if (!past_deadline && !stalled) continue;
      InvocationPayload retry = payloads[wi];
      retry.self.attempt = static_cast<uint32_t>(attempts[wi]++);
      retry.to_invoke.clear();
      invoked_at[wi] = sim->Now();
      if (tr != nullptr) {
        tr->Instant(collect_span, "reinvoke w" + std::to_string(w));
      }
      Status s = co_await InvokeOne(function, retry.Serialize(),
                                    options.attribution);
      if (!s.ok()) {
        LAMBADA_LOG(Warning) << "re-invocation of worker " << w
                             << " failed: " << s.ToString();
      }
    }
    if (stalled) last_progress = sim->Now();  // One sweep per stall.
  }
  obs::End(tr, collect_span);

  // ---- Merge partial results (driver scope). ----
  const uint64_t merge_span = obs::Begin(tr, 0, "driver", "merge");
  for (const auto& r : results) {
    if (r.status_code != StatusCode::kOk) {
      co_return Status(r.status_code,
                       "worker " + std::to_string(r.worker_id) +
                           " failed: " + r.status_message);
    }
  }
  if (mit.enabled || options_.serving_mode) {
    // Retry schedules perturb arrival order; merge in worker order so
    // float accumulation (and thus result bytes) is schedule-invariant.
    // Serving mode sorts for the same reason: concurrent queries perturb
    // each other's arrival order, and a worker-order merge makes the
    // result byte-identical to a solo run. Without either, the historical
    // arrival-order merge is kept, preserving committed benchmark bytes.
    std::sort(results.begin(), results.end(),
              [](const ResultMessage& a, const ResultMessage& b) {
                return a.worker_id < b.worker_id;
              });
  }
  std::vector<engine::TableChunk> partials;
  partials.reserve(results.size());
  for (auto& r : results) {
    std::vector<uint8_t> bytes = r.inline_result;
    if (!r.spill_bucket.empty()) {
      auto spilled = co_await client.Get(r.spill_bucket, r.spill_key);
      if (!spilled.ok()) co_return spilled.status();
      bytes.assign((*spilled)->data(),
                   (*spilled)->data() + (*spilled)->size());
    }
    auto chunk = engine::DeserializeChunk(bytes.data(), bytes.size());
    if (!chunk.ok()) co_return chunk.status();
    partials.push_back(*std::move(chunk));
  }

  QueryReport report;
  if (physical->has_final_aggregate) {
    engine::HashAggregator merger(physical->final_group_by,
                                  physical->final_aggs);
    for (const auto& p : partials) {
      if (p.num_rows() == 0 && p.num_columns() == 0) continue;
      CO_RETURN_NOT_OK(merger.MergePartial(p));
    }
    report.result = merger.Finalize();
  } else {
    // Workers whose files were fully pruned emit empty chunks with no
    // schema; they contribute nothing to the concatenation.
    std::vector<engine::TableChunk> nonempty;
    for (auto& p : partials) {
      if (p.num_columns() > 0) nonempty.push_back(std::move(p));
    }
    auto merged = engine::ConcatChunks(nonempty);
    if (!merged.ok()) co_return merged.status();
    report.result = *std::move(merged);
  }

  // Driver-scope HAVING filters run against the finalized result.
  for (const auto& op : physical->driver_ops) {
    if (report.result.num_columns() == 0) break;
    auto mask = op.expr->Evaluate(report.result);
    if (!mask.ok()) co_return mask.status();
    std::vector<bool> keep(report.result.num_rows());
    for (size_t i = 0; i < keep.size(); ++i) {
      keep[i] = mask->ValueAsInt64(i) != 0;
    }
    report.result = report.result.Filter(keep);
  }
  if (tr != nullptr) {
    tr->AddArg(merge_span, "rows",
               static_cast<int64_t>(report.result.num_rows()));
    tr->EndSpan(merge_span);
  }

  report.latency_s = sim->Now() - t_start;
  report.invocation_issue_s = t_invoked - t_start;
  report.workers = workers;
  report.files = static_cast<int>(files.size());
  // Under concurrency the global-ledger diff would absorb every other
  // in-flight query, so serving queries bill from their own attribution
  // ledger instead.
  report.cost = options.attribution != nullptr
                    ? options.attribution->Snapshot() - attribution_before
                    : cloud_->ledger().Snapshot() - cost_before;
  for (int w = 0; w < workers; ++w) {
    report.total_attempts += attempts[static_cast<size_t>(w)];
    if (attempts[static_cast<size_t>(w)] > 1) ++reinvoked_workers;
  }
  report.reinvoked_workers = reinvoked_workers;
  report.subtree_reinvocations = subtree_reinvocations;
  report.tree_depth = tree.depth();
  report.batched_invocation = batched;
  report.duplicate_results = duplicate_results;
  for (const auto& r : results) {
    report.worker_s3_retries += r.metrics.s3_retries();
    report.hedged_gets += r.metrics.hedged_requests();
    report.hedge_wins += r.metrics.hedge_wins();
    // Fleet-wide registry: the winning attempt of every worker.
    report.fleet_metrics.Merge(r.metrics.registry);
  }
  report.worker_results = std::move(results);
  report.join_choices = physical->join_choices;
  report.explain_text = physical->explain_text;
  const auto& all_metrics = cloud_->faas().completed_metrics();
  if (options_.serving_mode) {
    // Concurrent queries interleave in the completion log; keep ours.
    for (auto it = all_metrics.begin() +
                   static_cast<std::ptrdiff_t>(metrics_before);
         it != all_metrics.end(); ++it) {
      if (it->query_id == query_id) report.worker_metrics.push_back(*it);
    }
  } else {
    report.worker_metrics.assign(all_metrics.begin() + metrics_before,
                                 all_metrics.end());
  }

  if (tr != nullptr) {
    tr->AddArg(tr->root(), "query_id", query_id);
    tr->AddArg(tr->root(), "workers", static_cast<int64_t>(workers));
    tr->AddArg(tr->root(), "attempts", report.total_attempts);
    tr->AddArgF(tr->root(), "latency_s", report.latency_s);
    tr->EndSpan(tr->root());
    report.trace = tracer;
    if (!options.trace.chrome_json_path.empty()) {
      std::ofstream out(options.trace.chrome_json_path,
                        std::ios::binary | std::ios::trunc);
      if (out) {
        out << tr->ChromeTraceJson();
        report.trace_path = options.trace.chrome_json_path;
      } else {
        LAMBADA_LOG(Warning) << "cannot write trace to "
                             << options.trace.chrome_json_path;
      }
    }
  }
  report.explain_analyze_text = RenderExplainAnalyze(*physical, report);
  co_return report;
}

Result<QueryReport> Driver::RunToCompletion(const Query& query,
                                            const RunOptions& options) {
  auto out = std::make_shared<Result<QueryReport>>(
      Status::Internal("query did not finish"));
  sim::Spawn([](Driver* self, const Query* q, const RunOptions* opts,
                std::shared_ptr<Result<QueryReport>> result)
                 -> sim::Async<void> {
    *result = co_await self->Run(*q, *opts);
  }(this, &query, &options, out));
  cloud_->sim().Run();
  return std::move(*out);
}

}  // namespace lambada::core
